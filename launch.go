package switchflow

import (
	"os"

	"switchflow/internal/launchcfg"
)

// InputSharingConfig mirrors the paper's Listing 1 launcher interface:
// input reuse between correlated models configured purely through TF_*
// environment variables (§4 — "It takes ... 5 LOCs to share the input
// preprocessing stage between two models").
type InputSharingConfig struct {
	// Enabled reports whether TF_SET_REUSE_INPUTS is true.
	Enabled bool
	// MasterX, MasterY name the master model's input ops.
	MasterX, MasterY string
	// SubX, SubY name the subsidiary models' input ops, pairwise.
	SubX, SubY []string
}

// Models returns the sharing-group size (master + subsidiaries), zero
// when disabled.
func (c InputSharingConfig) Models() int {
	if !c.Enabled {
		return 0
	}
	return 1 + len(c.SubX)
}

// InputSharingFromEnv parses the Listing 1 environment variables from the
// process environment.
func InputSharingFromEnv() (InputSharingConfig, error) {
	return inputSharingFrom(os.Getenv)
}

// InputSharingFromGetenv parses through a custom lookup (tests).
func InputSharingFromGetenv(getenv func(string) string) (InputSharingConfig, error) {
	return inputSharingFrom(getenv)
}

func inputSharingFrom(getenv func(string) string) (InputSharingConfig, error) {
	cfg, err := launchcfg.FromEnv(getenv)
	if err != nil {
		return InputSharingConfig{}, err
	}
	return InputSharingConfig{
		Enabled: cfg.ReuseInputs,
		MasterX: cfg.MasterX,
		MasterY: cfg.MasterY,
		SubX:    append([]string(nil), cfg.SubX...),
		SubY:    append([]string(nil), cfg.SubY...),
	}, nil
}
