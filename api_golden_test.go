package switchflow_test

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite api.golden from the current source")

// TestPublicAPISurface pins the exported surface of the root package to
// api.golden. Deleting or renaming an exported identifier is a breaking
// change and must show up in review as a diff to the golden file;
// regenerate it deliberately with:
//
//	go test -run TestPublicAPISurface -update .
func TestPublicAPISurface(t *testing.T) {
	got := strings.Join(exportedSurface(t, "."), "\n") + "\n"

	if *updateGolden {
		if err := os.WriteFile("api.golden", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	want, err := os.ReadFile("api.golden")
	if err != nil {
		t.Fatalf("read api.golden: %v (regenerate with go test -run TestPublicAPISurface -update .)", err)
	}
	if got != string(want) {
		t.Fatalf("exported API surface differs from api.golden.\n"+
			"If the change is intentional, regenerate with:\n"+
			"\tgo test -run TestPublicAPISurface -update .\n\n%s",
			surfaceDiff(string(want), got))
	}
}

// exportedSurface parses every non-test .go file in dir and returns one
// sorted line per exported identifier: package functions, types, methods,
// struct fields, interface methods, consts, and vars.
func exportedSurface(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for _, file := range files {
		if strings.HasSuffix(file, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", file, err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv == nil {
					add("func %s", d.Name.Name)
					continue
				}
				recv := receiverName(d.Recv.List[0].Type)
				if !ast.IsExported(recv) {
					continue
				}
				add("method (%s) %s", recv, d.Name.Name)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						add("type %s", s.Name.Name)
						describeType(s.Name.Name, s.Type, add)
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range s.Names {
							if name.IsExported() {
								add("%s %s", kind, name.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return lines
}

// describeType emits the exported members of struct and interface types.
func describeType(name string, expr ast.Expr, add func(string, ...any)) {
	switch tt := expr.(type) {
	case *ast.StructType:
		for _, field := range tt.Fields.List {
			for _, fn := range field.Names {
				if fn.IsExported() {
					add("field %s.%s", name, fn.Name)
				}
			}
		}
	case *ast.InterfaceType:
		for _, m := range tt.Methods.List {
			for _, mn := range m.Names {
				if mn.IsExported() {
					add("interface-method %s.%s", name, mn.Name)
				}
			}
		}
	}
}

func receiverName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// surfaceDiff renders the added/removed lines between two surfaces.
func surfaceDiff(want, got string) string {
	wantSet := make(map[string]bool)
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool)
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(got, "\n") {
		if l != "" && !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	for _, l := range strings.Split(want, "\n") {
		if l != "" && !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	return b.String()
}
