package switchflow

import (
	"fmt"
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/fault"
)

// Policy selects the scheduling policy for NewScheduler.
type Policy int

// Scheduling policies.
const (
	// PolicySwitchFlow is the paper's preemptive multitasking scheduler.
	PolicySwitchFlow Policy = iota
	// PolicyThreadedTF is multi-threaded TensorFlow: free GPU sharing
	// through per-job streams, OOM crashes possible.
	PolicyThreadedTF
	// PolicyTimeSlice is Gandiva-style session time slicing.
	PolicyTimeSlice
	// PolicyMPS is NVIDIA MPS: spatial sharing with per-process memory
	// reservations.
	PolicyMPS
)

// String implements fmt.Stringer; the names match Scheduler.Name.
func (p Policy) String() string {
	switch p {
	case PolicySwitchFlow:
		return "switchflow"
	case PolicyThreadedTF:
		return "threaded-tf"
	case PolicyTimeSlice:
		return "timeslice"
	case PolicyMPS:
		return "mps"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// DefaultCheckpointEvery is the periodic host-checkpoint interval used
// when a fault plan is attached without an explicit WithCheckpointEvery.
const DefaultCheckpointEvery = 10 * time.Second

// Option configures NewScheduler. Options that only apply to SwitchFlow
// (temp pool size, ablation toggles, checkpointing) are ignored by the
// baseline policies, mirroring how the real systems have no equivalent
// knobs.
type Option func(*schedulerConfig)

type schedulerConfig struct {
	core      core.Options
	faultPlan *FaultPlan
	err       error
}

// WithTempPoolThreads sizes SwitchFlow's temporary pool (§3.3);
// default 4.
func WithTempPoolThreads(n int) Option {
	return func(c *schedulerConfig) {
		if n <= 0 {
			c.err = fmt.Errorf("switchflow: temp pool threads must be positive, got %d", n)
			return
		}
		c.core.TempPoolThreads = n
	}
}

// WithFaultPlan attaches a fault-injection plan: the plan's events are
// applied to the simulated hardware and the scheduler reacts (SwitchFlow
// self-heals; the baselines lose jobs). SwitchFlow additionally enables
// periodic host checkpointing at DefaultCheckpointEvery unless
// WithCheckpointEvery overrides it.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *schedulerConfig) {
		if p == nil {
			c.err = fmt.Errorf("switchflow: WithFaultPlan(nil)")
			return
		}
		c.faultPlan = p
	}
}

// WithCheckpointEvery sets SwitchFlow's periodic host-checkpoint
// interval (fault recovery rolls jobs back to the last checkpoint).
func WithCheckpointEvery(d time.Duration) Option {
	return func(c *schedulerConfig) {
		if d <= 0 {
			c.err = fmt.Errorf("switchflow: checkpoint interval must be positive, got %v", d)
			return
		}
		c.core.CheckpointEvery = d
	}
}

// WithoutGPUExclusivity disables scheduling invariant 1 (ablation): GPU
// executors co-run and contend.
func WithoutGPUExclusivity() Option {
	return func(c *schedulerConfig) { c.core.DisableGPUExclusive = true }
}

// WithoutFreeCPUExecutors disables invariant 2 (ablation): input stages
// only run while the job holds the GPU.
func WithoutFreeCPUExecutors() Option {
	return func(c *schedulerConfig) { c.core.DisableFreeCPUExecutors = true }
}

// WithSyncStateTransfer makes migration state transfer block the
// preempting job (ablation of §3.3's asynchronous design).
func WithSyncStateTransfer() Option {
	return func(c *schedulerConfig) { c.core.SyncStateTransfer = true }
}

// WithoutTempPoolIsolation keeps preempted jobs on the global pool
// (ablation).
func WithoutTempPoolIsolation() Option {
	return func(c *schedulerConfig) { c.core.DisableTempPoolIsolation = true }
}

// WithCheckpointPreemption replaces SwitchFlow's abort-and-resume with
// Gandiva-style checkpoint-suspend-resume (§6 comparison).
func WithCheckpointPreemption() Option {
	return func(c *schedulerConfig) { c.core.CheckpointPreemption = true }
}

// WithoutDynamicBatching clamps serving jobs to single-request compute
// launches regardless of their MaxBatch (the batching-off arm of the
// serving experiment). Admission control still applies.
func WithoutDynamicBatching() Option {
	return func(c *schedulerConfig) { c.core.DisableDynamicBatching = true }
}

// NewSwitchFlowScheduler builds the SwitchFlow policy with its concrete
// type, for callers that need the extended surface (AddSharedGroup,
// preemption and recovery stats). Equivalent to NewScheduler(
// PolicySwitchFlow, opts...) plus the type assertion.
func (s *Simulation) NewSwitchFlowScheduler(opts ...Option) (*SwitchFlowScheduler, error) {
	sched, err := s.NewScheduler(PolicySwitchFlow, opts...)
	if err != nil {
		return nil, err
	}
	return sched.(*SwitchFlowScheduler), nil
}

// NewScheduler is the unified constructor for all four schedulers. It
// subsumes the legacy SwitchFlow/ThreadedTF/TimeSlice/MPS constructors,
// which remain as thin wrappers; a SwitchFlow scheduler built here can be
// asserted to *SwitchFlowScheduler for its extended stats surface.
func (s *Simulation) NewScheduler(policy Policy, opts ...Option) (Scheduler, error) {
	var cfg schedulerConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.err != nil {
		return nil, cfg.err
	}

	var sched Scheduler
	var handler fault.Handler
	switch policy {
	case PolicySwitchFlow:
		coreOpts := cfg.core
		if cfg.faultPlan != nil && coreOpts.CheckpointEvery == 0 {
			coreOpts.CheckpointEvery = DefaultCheckpointEvery
		}
		m := core.NewManager(s.eng, s.machine, coreOpts)
		sf := &SwitchFlowScheduler{m: m, sim: s}
		sched, handler = sf, m
	case PolicyThreadedTF:
		b := baseline.NewThreadedTF(s.eng, s.machine)
		sched = &baselineScheduler{name: policy.String(), sim: s,
			add: adaptThreaded(b), faults: b.FaultStats}
		handler = b
	case PolicyTimeSlice:
		b := baseline.NewTimeSlice(s.eng, s.machine)
		sched = &baselineScheduler{name: policy.String(), sim: s,
			add: adaptTimeSlice(b), faults: b.FaultStats}
		handler = b
	case PolicyMPS:
		b := baseline.NewMPS(s.eng, s.machine)
		sched = &baselineScheduler{name: policy.String(), sim: s,
			add: adaptMPS(b), faults: b.FaultStats}
		handler = b
	default:
		return nil, fmt.Errorf("switchflow: unknown policy %d", int(policy))
	}

	if cfg.faultPlan != nil {
		in := fault.NewInjector(s.eng, s.machine, cfg.faultPlan.inner)
		in.Attach(handler)
		in.Arm()
	}
	return sched, nil
}
