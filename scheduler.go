package switchflow

import (
	"errors"
	"fmt"
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/device"
	"switchflow/internal/metrics"
	"switchflow/internal/workload"
)

// ErrNotElastic is returned by elastic operations (Grow, Shrink, Rebind,
// Drain) on schedulers or jobs that do not support virtual-node
// placement: every baseline, and jobs admitted without Placement.VNodes.
// Test with errors.Is.
var ErrNotElastic = errors.New("elastic placement not supported")

// Scheduler is the common surface of SwitchFlow and the baselines.
type Scheduler interface {
	// AddJob admits a job described by spec. The spec is validated first;
	// errors wrap ErrInvalidJobSpec.
	AddJob(spec JobSpec) (*Job, error)
	// StopJob halts a job's loop.
	StopJob(*Job)
	// Name identifies the scheduling policy.
	Name() string
	// FaultStats reports fault-injection and recovery counters; all zero
	// when the scheduler was built without WithFaultPlan.
	FaultStats() FaultStats
	// Grow raises an elastic job's virtual-node count to n at its next
	// epoch-safe point, re-splitting the batch without a restart. Errors
	// wrap ErrNotElastic on baselines and non-elastic jobs.
	Grow(j *Job, n int) error
	// Shrink lowers an elastic job's virtual-node count to n, dropping
	// the highest-indexed vnodes and freeing replicas left unused.
	Shrink(j *Job, n int) error
	// Rebind moves virtual node vn of an elastic job onto GPU gpu at the
	// job's next epoch-safe point.
	Rebind(j *Job, vn, gpu int) error
	// Drain marks GPU gpu as draining: new placements avoid it and every
	// bound virtual node (or legacy job) is moved off it gracefully. Only
	// SwitchFlow can drain; baselines wrap ErrNotElastic.
	Drain(gpu int) error
}

// SwitchFlowScheduler is the preemptive multitasking scheduler (§3).
type SwitchFlowScheduler struct {
	m   *core.Manager
	sim *Simulation
}

var _ Scheduler = (*SwitchFlowScheduler)(nil)

// Name implements Scheduler.
func (s *SwitchFlowScheduler) Name() string { return "switchflow" }

// AddJob implements Scheduler. Admission fails when the spec is invalid
// or when the job's persistent state does not fit next to
// already-admitted jobs (§3.4's OOM-freedom).
func (s *SwitchFlowScheduler) AddJob(spec JobSpec) (*Job, error) {
	cfg, err := s.sim.specConfig(spec)
	if err != nil {
		return nil, err
	}
	inner, err := s.m.AddJob(cfg)
	if err != nil {
		return nil, err
	}
	return &Job{inner: inner}, nil
}

// StopJob implements Scheduler.
func (s *SwitchFlowScheduler) StopJob(j *Job) { s.m.StopJob(j.inner) }

// AddSharedGroup admits correlated jobs sharing one input pipeline
// (multi-task learning, §3.4/Listing 1). Members run in lockstep
// round-robin over each preprocessed batch.
func (s *SwitchFlowScheduler) AddSharedGroup(specs []JobSpec) (*SharedGroup, error) {
	cfgs := make([]workload.Config, len(specs))
	for i, spec := range specs {
		cfg, err := s.sim.specConfig(spec)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	group, inners, err := s.m.AddSharedGroup(cfgs)
	if err != nil {
		return nil, err
	}
	jobs := make([]*Job, len(inners))
	for i, inner := range inners {
		jobs[i] = &Job{inner: inner}
	}
	return &SharedGroup{group: group, jobs: jobs}, nil
}

// Preemptions returns the number of preemption events so far.
func (s *SwitchFlowScheduler) Preemptions() int { return s.m.Preemptions }

// Migrations returns the number of device migrations so far (preemptive
// and fault-driven).
func (s *SwitchFlowScheduler) Migrations() int { return s.m.Migrations }

// PreemptionP95 returns the 95th-percentile GPU-grant latency (§5.2.3).
func (s *SwitchFlowScheduler) PreemptionP95() time.Duration {
	return s.m.PreemptionLatencies.Percentile(95)
}

// FaultStats implements Scheduler.
func (s *SwitchFlowScheduler) FaultStats() FaultStats { return faultStatsFrom(s.m.FaultCounters()) }

// Grow implements Scheduler: the job's batch re-splits across n virtual
// nodes without a restart, extending onto idle placeable GPUs first.
func (s *SwitchFlowScheduler) Grow(j *Job, n int) error {
	if !j.inner.Elastic() {
		return fmt.Errorf("switchflow: grow %q: %w (admit with Placement.VNodes)", j.Name(), ErrNotElastic)
	}
	if n <= j.inner.Binding().Len() {
		return fmt.Errorf("switchflow: grow %q to %d vnodes: already has %d", j.Name(), n, j.inner.Binding().Len())
	}
	return s.m.Resize(j.inner, n)
}

// Shrink implements Scheduler.
func (s *SwitchFlowScheduler) Shrink(j *Job, n int) error {
	if !j.inner.Elastic() {
		return fmt.Errorf("switchflow: shrink %q: %w (admit with Placement.VNodes)", j.Name(), ErrNotElastic)
	}
	if n >= j.inner.Binding().Len() {
		return fmt.Errorf("switchflow: shrink %q to %d vnodes: only has %d", j.Name(), n, j.inner.Binding().Len())
	}
	return s.m.Resize(j.inner, n)
}

// Rebind implements Scheduler.
func (s *SwitchFlowScheduler) Rebind(j *Job, vn, gpu int) error {
	if !j.inner.Elastic() {
		return fmt.Errorf("switchflow: rebind %q: %w (admit with Placement.VNodes)", j.Name(), ErrNotElastic)
	}
	return s.m.RebindJob(j.inner, vn, device.GPUID(gpu))
}

// Drain implements Scheduler.
func (s *SwitchFlowScheduler) Drain(gpu int) error {
	return s.m.DrainDevice(device.GPUID(gpu))
}

// Undrain clears a drain mark so the GPU accepts placements again;
// bindings moved away do not move back automatically.
func (s *SwitchFlowScheduler) Undrain(gpu int) error {
	return s.m.UndrainDevice(device.GPUID(gpu))
}

// RecoveryP95 returns the 95th-percentile fault-to-serving-again latency
// across recovered jobs (migrations after device loss, restarts after
// transient errors).
func (s *SwitchFlowScheduler) RecoveryP95() time.Duration {
	return s.m.RecoveryLatencies.Percentile(95)
}

// JobDeviceName reports the device a job currently runs on ("gpu:1",
// "cpu:0"), reflecting migrations.
func (s *SwitchFlowScheduler) JobDeviceName(j *Job) string {
	return s.m.JobDevice(j.inner).String()
}

// SharedGroup is a set of jobs sharing the data preprocessing stage.
type SharedGroup struct {
	group *core.Group
	jobs  []*Job
}

// Jobs returns the member handles.
func (g *SharedGroup) Jobs() []*Job { return g.jobs }

// Stop halts the group.
func (g *SharedGroup) Stop() { g.group.Stop() }

// specConfig validates a spec against this simulation's machine and
// lowers it to a workload config.
func (s *Simulation) specConfig(spec JobSpec) (workload.Config, error) {
	if err := spec.Validate(); err != nil {
		return workload.Config{}, err
	}
	p, err := spec.placement()
	if err != nil {
		return workload.Config{}, err
	}
	if p.Device >= s.GPUCount() {
		return workload.Config{}, fmt.Errorf("%w: GPU index %d out of range (machine has %d GPUs)",
			ErrInvalidJobSpec, p.Device, s.GPUCount())
	}
	for _, g := range p.Fallbacks {
		if g >= s.GPUCount() {
			return workload.Config{}, fmt.Errorf("%w: fallback GPU index %d out of range (machine has %d GPUs)",
				ErrInvalidJobSpec, g, s.GPUCount())
		}
	}
	for _, g := range p.VNodes {
		if g >= s.GPUCount() {
			return workload.Config{}, fmt.Errorf("%w: virtual node GPU index %d out of range (machine has %d GPUs)",
				ErrInvalidJobSpec, g, s.GPUCount())
		}
	}
	return spec.toConfig()
}

// baselineScheduler adapts the three baselines to the Scheduler interface.
type baselineScheduler struct {
	name   string
	sim    *Simulation
	add    baselineOps
	faults func() metrics.FaultCounters
}

type baselineOps struct {
	addJob  func(workload.Config) (*workload.Job, error)
	stopJob func(*workload.Job)
}

var _ Scheduler = (*baselineScheduler)(nil)

func (b *baselineScheduler) Name() string { return b.name }

func (b *baselineScheduler) AddJob(spec JobSpec) (*Job, error) {
	cfg, err := b.sim.specConfig(spec)
	if err != nil {
		return nil, err
	}
	if len(cfg.VNodes) > 0 {
		return nil, fmt.Errorf("%s: job %q uses virtual nodes: %w", b.name, spec.Name, ErrNotElastic)
	}
	inner, err := b.add.addJob(cfg)
	if err != nil {
		return nil, err
	}
	return &Job{inner: inner}, nil
}

func (b *baselineScheduler) StopJob(j *Job) { b.add.stopJob(j.inner) }

func (b *baselineScheduler) FaultStats() FaultStats { return faultStatsFrom(b.faults()) }

// Grow implements Scheduler; baselines have no elastic path.
func (b *baselineScheduler) Grow(j *Job, n int) error {
	return fmt.Errorf("%s: grow: %w", b.name, ErrNotElastic)
}

// Shrink implements Scheduler; baselines have no elastic path.
func (b *baselineScheduler) Shrink(j *Job, n int) error {
	return fmt.Errorf("%s: shrink: %w", b.name, ErrNotElastic)
}

// Rebind implements Scheduler; baselines have no elastic path.
func (b *baselineScheduler) Rebind(j *Job, vn, gpu int) error {
	return fmt.Errorf("%s: rebind: %w", b.name, ErrNotElastic)
}

// Drain implements Scheduler; baselines cannot move a running job.
func (b *baselineScheduler) Drain(gpu int) error {
	return fmt.Errorf("%s: drain: %w", b.name, ErrNotElastic)
}

func adaptThreaded(s *baseline.ThreadedTF) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}

func adaptTimeSlice(s *baseline.TimeSlice) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}

func adaptMPS(s *baseline.MPS) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}
