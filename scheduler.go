package switchflow

import (
	"fmt"
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/metrics"
	"switchflow/internal/workload"
)

// Scheduler is the common surface of SwitchFlow and the baselines.
type Scheduler interface {
	// AddJob admits a job described by spec. The spec is validated first;
	// errors wrap ErrInvalidJobSpec.
	AddJob(spec JobSpec) (*Job, error)
	// StopJob halts a job's loop.
	StopJob(*Job)
	// Name identifies the scheduling policy.
	Name() string
	// FaultStats reports fault-injection and recovery counters; all zero
	// when the scheduler was built without WithFaultPlan.
	FaultStats() FaultStats
}

// SchedulerOptions tune the SwitchFlow manager; the zero value is the
// paper's design. The Disable* fields reproduce the ablations in
// DESIGN.md.
//
// Deprecated: use NewScheduler with functional options (WithTempPoolThreads,
// WithoutGPUExclusivity, ...) instead.
type SchedulerOptions struct {
	TempPoolThreads          int
	DisableGPUExclusive      bool
	DisableFreeCPUExecutors  bool
	SyncStateTransfer        bool
	DisableTempPoolIsolation bool
}

func (o SchedulerOptions) options() []Option {
	var opts []Option
	if o.TempPoolThreads > 0 {
		opts = append(opts, WithTempPoolThreads(o.TempPoolThreads))
	}
	if o.DisableGPUExclusive {
		opts = append(opts, WithoutGPUExclusivity())
	}
	if o.DisableFreeCPUExecutors {
		opts = append(opts, WithoutFreeCPUExecutors())
	}
	if o.SyncStateTransfer {
		opts = append(opts, WithSyncStateTransfer())
	}
	if o.DisableTempPoolIsolation {
		opts = append(opts, WithoutTempPoolIsolation())
	}
	return opts
}

// SwitchFlow creates the paper's scheduler on this simulation.
//
// Deprecated: use NewScheduler(PolicySwitchFlow, opts...) instead.
func (s *Simulation) SwitchFlow(opts ...SchedulerOptions) *SwitchFlowScheduler {
	var o SchedulerOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	sched, err := s.NewScheduler(PolicySwitchFlow, o.options()...)
	if err != nil {
		panic(err) // unreachable: every converted option is valid
	}
	return sched.(*SwitchFlowScheduler)
}

// SwitchFlowScheduler is the preemptive multitasking scheduler (§3).
type SwitchFlowScheduler struct {
	m   *core.Manager
	sim *Simulation
}

var _ Scheduler = (*SwitchFlowScheduler)(nil)

// Name implements Scheduler.
func (s *SwitchFlowScheduler) Name() string { return "switchflow" }

// AddJob implements Scheduler. Admission fails when the spec is invalid
// or when the job's persistent state does not fit next to
// already-admitted jobs (§3.4's OOM-freedom).
func (s *SwitchFlowScheduler) AddJob(spec JobSpec) (*Job, error) {
	cfg, err := s.sim.specConfig(spec)
	if err != nil {
		return nil, err
	}
	inner, err := s.m.AddJob(cfg)
	if err != nil {
		return nil, err
	}
	return &Job{inner: inner}, nil
}

// StopJob implements Scheduler.
func (s *SwitchFlowScheduler) StopJob(j *Job) { s.m.StopJob(j.inner) }

// AddSharedGroup admits correlated jobs sharing one input pipeline
// (multi-task learning, §3.4/Listing 1). Members run in lockstep
// round-robin over each preprocessed batch.
func (s *SwitchFlowScheduler) AddSharedGroup(specs []JobSpec) (*SharedGroup, error) {
	cfgs := make([]workload.Config, len(specs))
	for i, spec := range specs {
		cfg, err := s.sim.specConfig(spec)
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	group, inners, err := s.m.AddSharedGroup(cfgs)
	if err != nil {
		return nil, err
	}
	jobs := make([]*Job, len(inners))
	for i, inner := range inners {
		jobs[i] = &Job{inner: inner}
	}
	return &SharedGroup{group: group, jobs: jobs}, nil
}

// Preemptions returns the number of preemption events so far.
func (s *SwitchFlowScheduler) Preemptions() int { return s.m.Preemptions }

// Migrations returns the number of device migrations so far (preemptive
// and fault-driven).
func (s *SwitchFlowScheduler) Migrations() int { return s.m.Migrations }

// PreemptionP95 returns the 95th-percentile GPU-grant latency (§5.2.3).
func (s *SwitchFlowScheduler) PreemptionP95() time.Duration {
	return s.m.PreemptionLatencies.Percentile(95)
}

// FaultStats implements Scheduler.
func (s *SwitchFlowScheduler) FaultStats() FaultStats { return faultStatsFrom(s.m.FaultCounters()) }

// RecoveryP95 returns the 95th-percentile fault-to-serving-again latency
// across recovered jobs (migrations after device loss, restarts after
// transient errors).
func (s *SwitchFlowScheduler) RecoveryP95() time.Duration {
	return s.m.RecoveryLatencies.Percentile(95)
}

// JobDeviceName reports the device a job currently runs on ("gpu:1",
// "cpu:0"), reflecting migrations.
func (s *SwitchFlowScheduler) JobDeviceName(j *Job) string {
	return s.m.JobDevice(j.inner).String()
}

// SharedGroup is a set of jobs sharing the data preprocessing stage.
type SharedGroup struct {
	group *core.Group
	jobs  []*Job
}

// Jobs returns the member handles.
func (g *SharedGroup) Jobs() []*Job { return g.jobs }

// Stop halts the group.
func (g *SharedGroup) Stop() { g.group.Stop() }

// ThreadedTF creates the multi-threaded TensorFlow baseline: free GPU
// sharing through per-job streams, OOM crashes possible.
//
// Deprecated: use NewScheduler(PolicyThreadedTF) instead.
func (s *Simulation) ThreadedTF() Scheduler { return s.mustScheduler(PolicyThreadedTF) }

// TimeSlice creates the Gandiva-style session time-slicing baseline.
//
// Deprecated: use NewScheduler(PolicyTimeSlice) instead.
func (s *Simulation) TimeSlice() Scheduler { return s.mustScheduler(PolicyTimeSlice) }

// MPS creates the NVIDIA MPS baseline: spatial sharing with per-process
// memory reservations.
//
// Deprecated: use NewScheduler(PolicyMPS) instead.
func (s *Simulation) MPS() Scheduler { return s.mustScheduler(PolicyMPS) }

func (s *Simulation) mustScheduler(policy Policy) Scheduler {
	sched, err := s.NewScheduler(policy)
	if err != nil {
		panic(err) // unreachable: the policy constants are all valid
	}
	return sched
}

// specConfig validates a spec against this simulation's machine and
// lowers it to a workload config.
func (s *Simulation) specConfig(spec JobSpec) (workload.Config, error) {
	if err := spec.Validate(); err != nil {
		return workload.Config{}, err
	}
	if spec.GPU >= s.GPUCount() {
		return workload.Config{}, fmt.Errorf("%w: GPU index %d out of range (machine has %d GPUs)",
			ErrInvalidJobSpec, spec.GPU, s.GPUCount())
	}
	for _, g := range spec.FallbackGPUs {
		if g >= s.GPUCount() {
			return workload.Config{}, fmt.Errorf("%w: fallback GPU index %d out of range (machine has %d GPUs)",
				ErrInvalidJobSpec, g, s.GPUCount())
		}
	}
	return spec.toConfig()
}

// baselineScheduler adapts the three baselines to the Scheduler interface.
type baselineScheduler struct {
	name   string
	sim    *Simulation
	add    baselineOps
	faults func() metrics.FaultCounters
}

type baselineOps struct {
	addJob  func(workload.Config) (*workload.Job, error)
	stopJob func(*workload.Job)
}

var _ Scheduler = (*baselineScheduler)(nil)

func (b *baselineScheduler) Name() string { return b.name }

func (b *baselineScheduler) AddJob(spec JobSpec) (*Job, error) {
	cfg, err := b.sim.specConfig(spec)
	if err != nil {
		return nil, err
	}
	inner, err := b.add.addJob(cfg)
	if err != nil {
		return nil, err
	}
	return &Job{inner: inner}, nil
}

func (b *baselineScheduler) StopJob(j *Job) { b.add.stopJob(j.inner) }

func (b *baselineScheduler) FaultStats() FaultStats { return faultStatsFrom(b.faults()) }

func adaptThreaded(s *baseline.ThreadedTF) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}

func adaptTimeSlice(s *baseline.TimeSlice) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}

func adaptMPS(s *baseline.MPS) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}
