package switchflow

import (
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/workload"
)

// Scheduler is the common surface of SwitchFlow and the baselines.
type Scheduler interface {
	// AddJob admits a job described by spec.
	AddJob(spec JobSpec) (*Job, error)
	// StopJob halts a job's loop.
	StopJob(*Job)
	// Name identifies the scheduling policy.
	Name() string
}

// SchedulerOptions tune the SwitchFlow manager; the zero value is the
// paper's design. The Disable* fields reproduce the ablations in
// DESIGN.md.
type SchedulerOptions struct {
	TempPoolThreads          int
	DisableGPUExclusive      bool
	DisableFreeCPUExecutors  bool
	SyncStateTransfer        bool
	DisableTempPoolIsolation bool
}

// SwitchFlow creates the paper's scheduler on this simulation.
func (s *Simulation) SwitchFlow(opts ...SchedulerOptions) *SwitchFlowScheduler {
	var o SchedulerOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	m := core.NewManager(s.eng, s.machine, core.Options{
		TempPoolThreads:          o.TempPoolThreads,
		DisableGPUExclusive:      o.DisableGPUExclusive,
		DisableFreeCPUExecutors:  o.DisableFreeCPUExecutors,
		SyncStateTransfer:        o.SyncStateTransfer,
		DisableTempPoolIsolation: o.DisableTempPoolIsolation,
	})
	return &SwitchFlowScheduler{m: m}
}

// SwitchFlowScheduler is the preemptive multitasking scheduler (§3).
type SwitchFlowScheduler struct {
	m *core.Manager
}

var _ Scheduler = (*SwitchFlowScheduler)(nil)

// Name implements Scheduler.
func (s *SwitchFlowScheduler) Name() string { return "switchflow" }

// AddJob implements Scheduler. Admission fails when the job's persistent
// state does not fit next to already-admitted jobs (§3.4's OOM-freedom).
func (s *SwitchFlowScheduler) AddJob(spec JobSpec) (*Job, error) {
	cfg, err := spec.toConfig()
	if err != nil {
		return nil, err
	}
	inner, err := s.m.AddJob(cfg)
	if err != nil {
		return nil, err
	}
	return &Job{inner: inner}, nil
}

// StopJob implements Scheduler.
func (s *SwitchFlowScheduler) StopJob(j *Job) { s.m.StopJob(j.inner) }

// AddSharedGroup admits correlated jobs sharing one input pipeline
// (multi-task learning, §3.4/Listing 1). Members run in lockstep
// round-robin over each preprocessed batch.
func (s *SwitchFlowScheduler) AddSharedGroup(specs []JobSpec) (*SharedGroup, error) {
	cfgs := make([]workload.Config, len(specs))
	for i, spec := range specs {
		cfg, err := spec.toConfig()
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}
	group, inners, err := s.m.AddSharedGroup(cfgs)
	if err != nil {
		return nil, err
	}
	jobs := make([]*Job, len(inners))
	for i, inner := range inners {
		jobs[i] = &Job{inner: inner}
	}
	return &SharedGroup{group: group, jobs: jobs}, nil
}

// Preemptions returns the number of preemption events so far.
func (s *SwitchFlowScheduler) Preemptions() int { return s.m.Preemptions }

// Migrations returns the number of device migrations so far.
func (s *SwitchFlowScheduler) Migrations() int { return s.m.Migrations }

// PreemptionP95 returns the 95th-percentile GPU-grant latency (§5.2.3).
func (s *SwitchFlowScheduler) PreemptionP95() time.Duration {
	return s.m.PreemptionLatencies.Percentile(95)
}

// JobDeviceName reports the device a job currently runs on ("gpu:1",
// "cpu:0"), reflecting migrations.
func (s *SwitchFlowScheduler) JobDeviceName(j *Job) string {
	return s.m.JobDevice(j.inner).String()
}

// SharedGroup is a set of jobs sharing the data preprocessing stage.
type SharedGroup struct {
	group *core.Group
	jobs  []*Job
}

// Jobs returns the member handles.
func (g *SharedGroup) Jobs() []*Job { return g.jobs }

// Stop halts the group.
func (g *SharedGroup) Stop() { g.group.Stop() }

// ThreadedTF creates the multi-threaded TensorFlow baseline: free GPU
// sharing through per-job streams, OOM crashes possible.
func (s *Simulation) ThreadedTF() Scheduler {
	return &baselineScheduler{
		name: "threaded-tf",
		add:  adaptThreaded(baseline.NewThreadedTF(s.eng, s.machine)),
	}
}

// TimeSlice creates the Gandiva-style session time-slicing baseline.
func (s *Simulation) TimeSlice() Scheduler {
	return &baselineScheduler{
		name: "timeslice",
		add:  adaptTimeSlice(baseline.NewTimeSlice(s.eng, s.machine)),
	}
}

// MPS creates the NVIDIA MPS baseline: spatial sharing with per-process
// memory reservations.
func (s *Simulation) MPS() Scheduler {
	return &baselineScheduler{
		name: "mps",
		add:  adaptMPS(baseline.NewMPS(s.eng, s.machine)),
	}
}

// baselineScheduler adapts the three baselines to the Scheduler interface.
type baselineScheduler struct {
	name string
	add  baselineOps
}

type baselineOps struct {
	addJob  func(workload.Config) (*workload.Job, error)
	stopJob func(*workload.Job)
}

var _ Scheduler = (*baselineScheduler)(nil)

func (b *baselineScheduler) Name() string { return b.name }

func (b *baselineScheduler) AddJob(spec JobSpec) (*Job, error) {
	cfg, err := spec.toConfig()
	if err != nil {
		return nil, err
	}
	inner, err := b.add.addJob(cfg)
	if err != nil {
		return nil, err
	}
	return &Job{inner: inner}, nil
}

func (b *baselineScheduler) StopJob(j *Job) { b.add.stopJob(j.inner) }

func adaptThreaded(s *baseline.ThreadedTF) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}

func adaptTimeSlice(s *baseline.TimeSlice) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}

func adaptMPS(s *baseline.MPS) baselineOps {
	return baselineOps{addJob: s.AddJob, stopJob: s.StopJob}
}
