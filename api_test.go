package switchflow_test

import (
	"errors"
	"testing"
	"time"

	"switchflow"
)

func TestJobSpecValidate(t *testing.T) {
	valid := switchflow.JobSpec{
		Name: "ok", Model: "ResNet50", Batch: 8, ServeEvery: 50 * time.Millisecond,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*switchflow.JobSpec)
	}{
		{"zero batch", func(s *switchflow.JobSpec) { s.Batch = 0 }},
		{"negative batch", func(s *switchflow.JobSpec) { s.Batch = -4 }},
		{"unknown model", func(s *switchflow.JobSpec) { s.Model = "NoSuchNet" }},
		{"negative gpu", func(s *switchflow.JobSpec) { s.GPU = -1 }},
		{"negative fallback", func(s *switchflow.JobSpec) { s.FallbackGPUs = []int{-2} }},
		{"negative serve period", func(s *switchflow.JobSpec) { s.ServeEvery = -time.Second }},
		{"training with arrivals", func(s *switchflow.JobSpec) { s.Train = true }},
		{"training closed loop", func(s *switchflow.JobSpec) { s.Train = true; s.ServeEvery = 0; s.ClosedLoop = true }},
		{"closed loop and saturated", func(s *switchflow.JobSpec) { s.ServeEvery = 0; s.ClosedLoop = true; s.Saturated = true }},
		{"saturated with arrivals", func(s *switchflow.JobSpec) { s.Saturated = true }},
		{"closed loop with arrivals", func(s *switchflow.JobSpec) { s.ClosedLoop = true }},
		{"poisson without rate", func(s *switchflow.JobSpec) { s.ServeEvery = 0; s.PoissonArrivals = true }},
		{"serving without arrivals", func(s *switchflow.JobSpec) { s.ServeEvery = 0 }},
		{"negative SLO", func(s *switchflow.JobSpec) { s.SLO = -time.Millisecond }},
		{"negative max batch", func(s *switchflow.JobSpec) { s.MaxBatch = -1 }},
		{"negative batch wait", func(s *switchflow.JobSpec) { s.MaxBatch = 4; s.BatchWait = -time.Millisecond }},
		{"batch wait without batching", func(s *switchflow.JobSpec) { s.BatchWait = 5 * time.Millisecond }},
		{"training with SLO", func(s *switchflow.JobSpec) { s.Train = true; s.ServeEvery = 0; s.SLO = time.Second }},
		{"training with max batch", func(s *switchflow.JobSpec) { s.Train = true; s.ServeEvery = 0; s.MaxBatch = 4 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := valid
			tt.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatalf("spec %+v accepted", spec)
			}
			if !errors.Is(err, switchflow.ErrInvalidJobSpec) {
				t.Fatalf("error %v does not wrap ErrInvalidJobSpec", err)
			}
		})
	}
}

var allPolicies = []switchflow.Policy{
	switchflow.PolicySwitchFlow,
	switchflow.PolicyThreadedTF,
	switchflow.PolicyTimeSlice,
	switchflow.PolicyMPS,
}

// Every scheduler adapter — SwitchFlow and the three baselines — must
// reject invalid specs through the same validation path.
func TestAddJobValidatesOnEveryScheduler(t *testing.T) {
	bad := []switchflow.JobSpec{
		{Name: "b", Model: "ResNet50", Batch: 0, Train: true},
		{Name: "m", Model: "NoSuchNet", Batch: 8, Train: true},
		{Name: "g", Model: "ResNet50", Batch: 8, Train: true, GPU: 99},
		{Name: "f", Model: "ResNet50", Batch: 8, Train: true, FallbackGPUs: []int{99}},
		{Name: "c", Model: "ResNet50", Batch: 1, ClosedLoop: true, Saturated: true},
	}
	for _, policy := range allPolicies {
		t.Run(policy.String(), func(t *testing.T) {
			sim := switchflow.NewSimulation(switchflow.V100Server())
			sched, err := sim.NewScheduler(policy)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range bad {
				if _, err := sched.AddJob(spec); !errors.Is(err, switchflow.ErrInvalidJobSpec) {
					t.Errorf("%s: AddJob(%+v) = %v, want ErrInvalidJobSpec", policy, spec, err)
				}
			}
		})
	}
}

func TestNewSchedulerErrors(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	if _, err := sim.NewScheduler(switchflow.Policy(42)); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := sim.NewScheduler(switchflow.PolicySwitchFlow, switchflow.WithTempPoolThreads(0)); err == nil {
		t.Error("zero temp pool threads accepted")
	}
	if _, err := sim.NewScheduler(switchflow.PolicySwitchFlow, switchflow.WithCheckpointEvery(-time.Second)); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
	if _, err := sim.NewScheduler(switchflow.PolicySwitchFlow, switchflow.WithFaultPlan(nil)); err == nil {
		t.Error("nil fault plan accepted")
	}
}

func TestPolicyString(t *testing.T) {
	want := map[switchflow.Policy]string{
		switchflow.PolicySwitchFlow: "switchflow",
		switchflow.PolicyThreadedTF: "threaded-tf",
		switchflow.PolicyTimeSlice:  "timeslice",
		switchflow.PolicyMPS:        "mps",
	}
	for policy, name := range want {
		sim := switchflow.NewSimulation(switchflow.V100Server())
		sched, err := sim.NewScheduler(policy)
		if err != nil {
			t.Fatal(err)
		}
		if policy.String() != name || sched.Name() != name {
			t.Errorf("policy %d: String()=%q Name()=%q, want %q",
				int(policy), policy.String(), sched.Name(), name)
		}
	}
}

type runOutcome struct {
	iters    int
	requests int
	p95      time.Duration
	crashed  bool
}

func runCollocation(t *testing.T, build func(*switchflow.Simulation) switchflow.Scheduler) (runOutcome, runOutcome) {
	t.Helper()
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched := build(sim)
	serve, err := sched.AddJob(switchflow.JobSpec{
		Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2,
		ServeEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "VGG16", Batch: 16, Train: true, Priority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(10 * time.Second)
	out := func(j *switchflow.Job) runOutcome {
		return runOutcome{j.Iterations(), j.Requests(), j.P95Latency(), j.Crashed()}
	}
	return out(serve), out(train)
}

// The deprecated constructors are thin wrappers over NewScheduler; the
// same scenario must produce identical results through either path.
func TestDeprecatedConstructorsMatchNewScheduler(t *testing.T) {
	old := map[switchflow.Policy]func(*switchflow.Simulation) switchflow.Scheduler{
		switchflow.PolicySwitchFlow: func(s *switchflow.Simulation) switchflow.Scheduler { return s.SwitchFlow() },
		switchflow.PolicyThreadedTF: func(s *switchflow.Simulation) switchflow.Scheduler { return s.ThreadedTF() },
		switchflow.PolicyTimeSlice:  func(s *switchflow.Simulation) switchflow.Scheduler { return s.TimeSlice() },
		switchflow.PolicyMPS:        func(s *switchflow.Simulation) switchflow.Scheduler { return s.MPS() },
	}
	for _, policy := range allPolicies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			serveOld, trainOld := runCollocation(t, old[policy])
			serveNew, trainNew := runCollocation(t, func(s *switchflow.Simulation) switchflow.Scheduler {
				sched, err := s.NewScheduler(policy)
				if err != nil {
					t.Fatal(err)
				}
				return sched
			})
			if serveOld != serveNew || trainOld != trainNew {
				t.Errorf("outcomes differ:\nold: serve=%+v train=%+v\nnew: serve=%+v train=%+v",
					serveOld, trainOld, serveNew, trainNew)
			}
		})
	}
}

// TestDeprecatedSwitchFlowOptionsMatchFunctionalOptions pins the legacy
// SchedulerOptions struct to its functional-option translation.
func TestDeprecatedSwitchFlowOptionsMatchFunctionalOptions(t *testing.T) {
	legacy := switchflow.SchedulerOptions{TempPoolThreads: 2, SyncStateTransfer: true}
	serveOld, trainOld := runCollocation(t, func(s *switchflow.Simulation) switchflow.Scheduler {
		return s.SwitchFlow(legacy)
	})
	serveNew, trainNew := runCollocation(t, func(s *switchflow.Simulation) switchflow.Scheduler {
		sched, err := s.NewScheduler(switchflow.PolicySwitchFlow,
			switchflow.WithTempPoolThreads(2), switchflow.WithSyncStateTransfer())
		if err != nil {
			t.Fatal(err)
		}
		return sched
	})
	if serveOld != serveNew || trainOld != trainNew {
		t.Errorf("outcomes differ:\nold: serve=%+v train=%+v\nnew: serve=%+v train=%+v",
			serveOld, trainOld, serveNew, trainNew)
	}
}

// TestFaultRecoveryAcceptance is the ISSUE's headline scenario: under an
// injected GPU loss, SwitchFlow jobs with fallbacks migrate and keep
// serving with bounded tails, while the process-model baseline reports
// the jobs crashed.
func TestFaultRecoveryAcceptance(t *testing.T) {
	const (
		lossAt  = 5 * time.Second
		horizon = 20 * time.Second
	)
	runOne := func(policy switchflow.Policy) (*switchflow.Job, switchflow.Scheduler, *switchflow.Simulation) {
		sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
		plan := switchflow.NewFaultPlan().LoseGPU(lossAt, 0)
		sched, err := sim.NewScheduler(policy,
			switchflow.WithFaultPlan(plan),
			switchflow.WithCheckpointEvery(time.Second))
		if err != nil {
			t.Fatal(err)
		}
		serve, err := sched.AddJob(switchflow.JobSpec{
			Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2,
			GPU: 0, FallbackGPUs: []int{1},
			ServeEvery: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(horizon)
		return serve, sched, sim
	}

	serve, sched, _ := runOne(switchflow.PolicySwitchFlow)
	if serve.Crashed() {
		t.Fatalf("switchflow serving job crashed despite fallback: %v", serve.Err())
	}
	st := sched.FaultStats()
	if st.DeviceLost != 1 || st.Migrations == 0 {
		t.Errorf("switchflow stats = %+v, want the device loss and a migration", st)
	}
	if serve.Restarts() == 0 {
		t.Errorf("serving job Restarts() = 0, want > 0 after fault-driven migration")
	}
	if st.JobsLost != 0 {
		t.Errorf("switchflow lost %d jobs despite fallback", st.JobsLost)
	}
	// The job must keep serving after the loss: ~150 arrivals over 15s
	// remain; require most of them, and a tail bounded well under the
	// outage length.
	if serve.Requests() < 150 {
		t.Errorf("served %d requests, want >= 150 (kept serving after migration)", serve.Requests())
	}
	if p95 := serve.P95Latency(); p95 <= 0 || p95 > 2*time.Second {
		t.Errorf("p95 = %v, want bounded (0, 2s]", p95)
	}
	sf := sched.(*switchflow.SwitchFlowScheduler)
	if dev := sf.JobDeviceName(serve); dev != "gpu:1" {
		t.Errorf("serving job on %s, want gpu:1 after migration", dev)
	}
	if sf.RecoveryP95() <= 0 {
		t.Errorf("RecoveryP95() = %v, want > 0 after a recovery", sf.RecoveryP95())
	}

	serveTF, schedTF, _ := runOne(switchflow.PolicyThreadedTF)
	if !serveTF.Crashed() {
		t.Fatal("threaded-tf serving job survived a device loss")
	}
	if !errors.Is(serveTF.Err(), switchflow.ErrDeviceLost) {
		t.Errorf("crash cause = %v, want ErrDeviceLost", serveTF.Err())
	}
	stTF := schedTF.FaultStats()
	if stTF.JobsLost == 0 || stTF.Migrations != 0 || stTF.Restarts != 0 {
		t.Errorf("threaded-tf stats = %+v, want lost jobs and no recovery", stTF)
	}
	if serveTF.Restarts() != 0 {
		t.Errorf("baseline job Restarts() = %d, want 0", serveTF.Restarts())
	}
	if serveTF.Requests() >= serve.Requests() {
		t.Errorf("threaded-tf served %d >= switchflow %d; the dead job should stop serving",
			serveTF.Requests(), serve.Requests())
	}
}
