package switchflow_test

import (
	"errors"
	"testing"
	"time"

	"switchflow"
)

func TestJobSpecValidate(t *testing.T) {
	valid := switchflow.JobSpec{
		Name: "ok", Model: "ResNet50", Batch: 8, ServeEvery: 50 * time.Millisecond,
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}

	tests := []struct {
		name   string
		mutate func(*switchflow.JobSpec)
	}{
		{"zero batch", func(s *switchflow.JobSpec) { s.Batch = 0 }},
		{"negative batch", func(s *switchflow.JobSpec) { s.Batch = -4 }},
		{"unknown model", func(s *switchflow.JobSpec) { s.Model = "NoSuchNet" }},
		{"negative gpu", func(s *switchflow.JobSpec) { s.GPU = -1 }},
		{"negative fallback", func(s *switchflow.JobSpec) { s.FallbackGPUs = []int{-2} }},
		{"negative serve period", func(s *switchflow.JobSpec) { s.ServeEvery = -time.Second }},
		{"training with arrivals", func(s *switchflow.JobSpec) { s.Train = true }},
		{"training closed loop", func(s *switchflow.JobSpec) { s.Train = true; s.ServeEvery = 0; s.ClosedLoop = true }},
		{"closed loop and saturated", func(s *switchflow.JobSpec) { s.ServeEvery = 0; s.ClosedLoop = true; s.Saturated = true }},
		{"saturated with arrivals", func(s *switchflow.JobSpec) { s.Saturated = true }},
		{"closed loop with arrivals", func(s *switchflow.JobSpec) { s.ClosedLoop = true }},
		{"poisson without rate", func(s *switchflow.JobSpec) { s.ServeEvery = 0; s.PoissonArrivals = true }},
		{"serving without arrivals", func(s *switchflow.JobSpec) { s.ServeEvery = 0 }},
		{"negative SLO", func(s *switchflow.JobSpec) { s.SLO = -time.Millisecond }},
		{"negative max batch", func(s *switchflow.JobSpec) { s.MaxBatch = -1 }},
		{"negative batch wait", func(s *switchflow.JobSpec) { s.MaxBatch = 4; s.BatchWait = -time.Millisecond }},
		{"batch wait without batching", func(s *switchflow.JobSpec) { s.BatchWait = 5 * time.Millisecond }},
		{"training with SLO", func(s *switchflow.JobSpec) { s.Train = true; s.ServeEvery = 0; s.SLO = time.Second }},
		{"training with max batch", func(s *switchflow.JobSpec) { s.Train = true; s.ServeEvery = 0; s.MaxBatch = 4 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := valid
			tt.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatalf("spec %+v accepted", spec)
			}
			if !errors.Is(err, switchflow.ErrInvalidJobSpec) {
				t.Fatalf("error %v does not wrap ErrInvalidJobSpec", err)
			}
		})
	}
}

var allPolicies = []switchflow.Policy{
	switchflow.PolicySwitchFlow,
	switchflow.PolicyThreadedTF,
	switchflow.PolicyTimeSlice,
	switchflow.PolicyMPS,
}

// Every scheduler adapter — SwitchFlow and the three baselines — must
// reject invalid specs through the same validation path.
func TestAddJobValidatesOnEveryScheduler(t *testing.T) {
	bad := []switchflow.JobSpec{
		{Name: "b", Model: "ResNet50", Batch: 0, Train: true},
		{Name: "m", Model: "NoSuchNet", Batch: 8, Train: true},
		{Name: "g", Model: "ResNet50", Batch: 8, Train: true, GPU: 99},
		{Name: "f", Model: "ResNet50", Batch: 8, Train: true, FallbackGPUs: []int{99}},
		{Name: "c", Model: "ResNet50", Batch: 1, ClosedLoop: true, Saturated: true},
	}
	for _, policy := range allPolicies {
		t.Run(policy.String(), func(t *testing.T) {
			sim := switchflow.NewSimulation(switchflow.V100Server())
			sched, err := sim.NewScheduler(policy)
			if err != nil {
				t.Fatal(err)
			}
			for _, spec := range bad {
				if _, err := sched.AddJob(spec); !errors.Is(err, switchflow.ErrInvalidJobSpec) {
					t.Errorf("%s: AddJob(%+v) = %v, want ErrInvalidJobSpec", policy, spec, err)
				}
			}
		})
	}
}

func TestNewSchedulerErrors(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	if _, err := sim.NewScheduler(switchflow.Policy(42)); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := sim.NewScheduler(switchflow.PolicySwitchFlow, switchflow.WithTempPoolThreads(0)); err == nil {
		t.Error("zero temp pool threads accepted")
	}
	if _, err := sim.NewScheduler(switchflow.PolicySwitchFlow, switchflow.WithCheckpointEvery(-time.Second)); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
	if _, err := sim.NewScheduler(switchflow.PolicySwitchFlow, switchflow.WithFaultPlan(nil)); err == nil {
		t.Error("nil fault plan accepted")
	}
}

func TestPolicyString(t *testing.T) {
	want := map[switchflow.Policy]string{
		switchflow.PolicySwitchFlow: "switchflow",
		switchflow.PolicyThreadedTF: "threaded-tf",
		switchflow.PolicyTimeSlice:  "timeslice",
		switchflow.PolicyMPS:        "mps",
	}
	for policy, name := range want {
		sim := switchflow.NewSimulation(switchflow.V100Server())
		sched, err := sim.NewScheduler(policy)
		if err != nil {
			t.Fatal(err)
		}
		if policy.String() != name || sched.Name() != name {
			t.Errorf("policy %d: String()=%q Name()=%q, want %q",
				int(policy), policy.String(), sched.Name(), name)
		}
	}
}

type runOutcome struct {
	iters    int
	requests int
	p95      time.Duration
	crashed  bool
}

func runCollocation(t *testing.T, build func(*switchflow.Simulation) switchflow.Scheduler) (runOutcome, runOutcome) {
	t.Helper()
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched := build(sim)
	serve, err := sched.AddJob(switchflow.JobSpec{
		Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2,
		ServeEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	train, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "VGG16", Batch: 16, Train: true, Priority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(10 * time.Second)
	out := func(j *switchflow.Job) runOutcome {
		return runOutcome{j.Iterations(), j.Requests(), j.P95Latency(), j.Crashed()}
	}
	return out(serve), out(train)
}

// TestPlacementValidation covers the error paths of the redesigned
// placement API: incoherent legacy/new mixes, vnode misuse, fallback
// overlap, and CPU-only training.
func TestPlacementValidation(t *testing.T) {
	trainSpec := switchflow.JobSpec{Name: "t", Model: "ResNet50", Batch: 8, Train: true}
	serveSpec := switchflow.JobSpec{Name: "s", Model: "ResNet50", Batch: 1, ClosedLoop: true}

	good := []switchflow.JobSpec{
		func() switchflow.JobSpec {
			s := trainSpec
			s.Placement = switchflow.Placement{Device: 1, Fallbacks: []int{0}, AllowCPU: true}
			return s
		}(),
		func() switchflow.JobSpec {
			s := trainSpec
			s.Placement = switchflow.Placement{VNodes: []int{0, 1}}
			return s
		}(),
		func() switchflow.JobSpec {
			s := trainSpec
			s.Placement = switchflow.Placement{Device: 1, VNodes: []int{1, 0}}
			return s
		}(),
		func() switchflow.JobSpec {
			s := serveSpec
			s.Placement = switchflow.Placement{Device: switchflow.CPUDevice}
			return s
		}(),
	}
	for i, spec := range good {
		if err := spec.Validate(); err != nil {
			t.Errorf("good spec %d rejected: %v", i, err)
		}
	}

	bad := []struct {
		name   string
		mutate func(*switchflow.JobSpec)
	}{
		{"legacy and placement mixed", func(s *switchflow.JobSpec) {
			s.GPU = 1
			s.Placement = switchflow.Placement{Device: 1}
		}},
		{"legacy fallback and placement mixed", func(s *switchflow.JobSpec) {
			s.FallbackGPUs = []int{1}
			s.Placement = switchflow.Placement{Device: 0, Fallbacks: []int{1}}
		}},
		{"device below CPUDevice", func(s *switchflow.JobSpec) {
			s.Placement = switchflow.Placement{Device: -2}
		}},
		{"cpu-only training", func(s *switchflow.JobSpec) {
			s.Placement = switchflow.Placement{Device: switchflow.CPUDevice}
		}},
		{"negative fallback", func(s *switchflow.JobSpec) {
			s.Placement = switchflow.Placement{Device: 0, Fallbacks: []int{-3}}
		}},
		{"fallback overlaps primary", func(s *switchflow.JobSpec) {
			s.Placement = switchflow.Placement{Device: 1, Fallbacks: []int{1}}
		}},
		{"duplicate fallback", func(s *switchflow.JobSpec) {
			s.Placement = switchflow.Placement{Device: 0, Fallbacks: []int{1, 1}}
		}},
		{"negative vnode index", func(s *switchflow.JobSpec) {
			s.Placement = switchflow.Placement{VNodes: []int{0, -1}}
		}},
		{"device disagrees with vnodes", func(s *switchflow.JobSpec) {
			s.Placement = switchflow.Placement{Device: 1, VNodes: []int{0, 1}}
		}},
		{"more vnodes than batch samples", func(s *switchflow.JobSpec) {
			s.Batch = 2
			s.Placement = switchflow.Placement{VNodes: []int{0, 1, 0}}
		}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			spec := trainSpec
			tt.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatalf("spec %+v accepted", spec)
			}
			if !errors.Is(err, switchflow.ErrInvalidJobSpec) {
				t.Fatalf("error %v does not wrap ErrInvalidJobSpec", err)
			}
		})
	}

	// Vnodes on a serving job are rejected regardless of the rest.
	s := serveSpec
	s.Placement = switchflow.Placement{VNodes: []int{0}}
	if err := s.Validate(); !errors.Is(err, switchflow.ErrInvalidJobSpec) {
		t.Errorf("serving job with vnodes: %v, want ErrInvalidJobSpec", err)
	}
}

// The deprecated GPU/FallbackGPUs/FallbackCPU shims normalize into
// Placement; the same scenario must produce identical results through
// either spelling.
func TestLegacyPlacementShimMatchesPlacement(t *testing.T) {
	withSpec := func(mutate func(*switchflow.JobSpec)) func(*switchflow.Simulation) switchflow.Scheduler {
		return func(s *switchflow.Simulation) switchflow.Scheduler {
			sched, err := s.NewScheduler(switchflow.PolicySwitchFlow)
			if err != nil {
				t.Fatal(err)
			}
			return specMutatingScheduler{Scheduler: sched, mutate: mutate}
		}
	}
	serveOld, trainOld := runCollocation(t, withSpec(func(s *switchflow.JobSpec) {
		s.GPU = 1
		s.FallbackGPUs = []int{0}
		s.FallbackCPU = true
	}))
	serveNew, trainNew := runCollocation(t, withSpec(func(s *switchflow.JobSpec) {
		s.Placement = switchflow.Placement{Device: 1, Fallbacks: []int{0}, AllowCPU: true}
	}))
	if serveOld != serveNew || trainOld != trainNew {
		t.Errorf("outcomes differ:\nlegacy: serve=%+v train=%+v\nplacement: serve=%+v train=%+v",
			serveOld, trainOld, serveNew, trainNew)
	}
}

// specMutatingScheduler rewrites every spec before admission so one
// scenario can run under two placement spellings.
type specMutatingScheduler struct {
	switchflow.Scheduler
	mutate func(*switchflow.JobSpec)
}

func (s specMutatingScheduler) AddJob(spec switchflow.JobSpec) (*switchflow.Job, error) {
	s.mutate(&spec)
	return s.Scheduler.AddJob(spec)
}

// TestElasticOpsRequireSupport pins the ErrNotElastic contract: baselines
// reject elastic specs and operations; SwitchFlow rejects elastic ops on
// legacy jobs.
func TestElasticOpsRequireSupport(t *testing.T) {
	elastic := switchflow.JobSpec{
		Name: "e", Model: "ResNet50", Batch: 8, Train: true,
		Placement: switchflow.Placement{VNodes: []int{0, 1}},
	}
	for _, policy := range []switchflow.Policy{
		switchflow.PolicyThreadedTF,
		switchflow.PolicyTimeSlice,
		switchflow.PolicyMPS,
	} {
		sim := switchflow.NewSimulation(switchflow.V100Server())
		sched, err := sim.NewScheduler(policy)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sched.AddJob(elastic); !errors.Is(err, switchflow.ErrNotElastic) {
			t.Errorf("%s: elastic spec: %v, want ErrNotElastic", policy, err)
		}
		if err := sched.Drain(0); !errors.Is(err, switchflow.ErrNotElastic) {
			t.Errorf("%s: Drain: %v, want ErrNotElastic", policy, err)
		}
	}

	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched, err := sim.NewScheduler(switchflow.PolicySwitchFlow)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := sched.AddJob(switchflow.JobSpec{
		Name: "l", Model: "ResNet50", Batch: 8, Train: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Grow(legacy, 2); !errors.Is(err, switchflow.ErrNotElastic) {
		t.Errorf("Grow on legacy job: %v, want ErrNotElastic", err)
	}
	if err := sched.Rebind(legacy, 0, 1); !errors.Is(err, switchflow.ErrNotElastic) {
		t.Errorf("Rebind on legacy job: %v, want ErrNotElastic", err)
	}
}

// TestElasticGrowDrainPublicAPI drives the elastic lifecycle end to end
// through the public surface: admit with vnodes, grow, drain the primary
// GPU, and verify zero restarts with the binding moved off it.
func TestElasticGrowDrainPublicAPI(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		t.Fatal(err)
	}
	job, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "ResNet50", Batch: 32, Train: true, Priority: 1,
		Placement: switchflow.Placement{VNodes: []int{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !job.Elastic() || job.VNodes() != 1 {
		t.Fatalf("Elastic()=%v VNodes()=%d, want elastic single vnode", job.Elastic(), job.VNodes())
	}
	sim.RunFor(3 * time.Second)
	if err := sched.Grow(job, 2); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(5 * time.Second)
	if job.VNodes() != 2 {
		t.Fatalf("VNodes() = %d after grow, want 2", job.VNodes())
	}
	atDrain := job.Iterations()
	if err := sched.Drain(0); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(8 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.Err())
	}
	if job.Restarts() != 0 {
		t.Fatalf("Restarts() = %d after drain, want 0 (rebind is restart-free)", job.Restarts())
	}
	if job.Iterations() <= atDrain {
		t.Fatal("no progress after drain")
	}
	if b := job.Binding(); b == "" || containsGPU0(b) {
		t.Fatalf("binding %q still on drained gpu:0", b)
	}
}

func containsGPU0(binding string) bool {
	for i := 0; i+5 <= len(binding); i++ {
		if binding[i:i+5] == "gpu:0" {
			return true
		}
	}
	return false
}

// TestFaultRecoveryAcceptance is the ISSUE's headline scenario: under an
// injected GPU loss, SwitchFlow jobs with fallbacks migrate and keep
// serving with bounded tails, while the process-model baseline reports
// the jobs crashed.
func TestFaultRecoveryAcceptance(t *testing.T) {
	const (
		lossAt  = 5 * time.Second
		horizon = 20 * time.Second
	)
	runOne := func(policy switchflow.Policy) (*switchflow.Job, switchflow.Scheduler, *switchflow.Simulation) {
		sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
		plan := switchflow.NewFaultPlan().LoseGPU(lossAt, 0)
		sched, err := sim.NewScheduler(policy,
			switchflow.WithFaultPlan(plan),
			switchflow.WithCheckpointEvery(time.Second))
		if err != nil {
			t.Fatal(err)
		}
		serve, err := sched.AddJob(switchflow.JobSpec{
			Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2,
			GPU: 0, FallbackGPUs: []int{1},
			ServeEvery: 100 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.RunUntil(horizon)
		return serve, sched, sim
	}

	serve, sched, _ := runOne(switchflow.PolicySwitchFlow)
	if serve.Crashed() {
		t.Fatalf("switchflow serving job crashed despite fallback: %v", serve.Err())
	}
	st := sched.FaultStats()
	if st.DeviceLost != 1 || st.Migrations == 0 {
		t.Errorf("switchflow stats = %+v, want the device loss and a migration", st)
	}
	if serve.Restarts() == 0 {
		t.Errorf("serving job Restarts() = 0, want > 0 after fault-driven migration")
	}
	if st.JobsLost != 0 {
		t.Errorf("switchflow lost %d jobs despite fallback", st.JobsLost)
	}
	// The job must keep serving after the loss: ~150 arrivals over 15s
	// remain; require most of them, and a tail bounded well under the
	// outage length.
	if serve.Requests() < 150 {
		t.Errorf("served %d requests, want >= 150 (kept serving after migration)", serve.Requests())
	}
	if p95 := serve.P95Latency(); p95 <= 0 || p95 > 2*time.Second {
		t.Errorf("p95 = %v, want bounded (0, 2s]", p95)
	}
	sf := sched.(*switchflow.SwitchFlowScheduler)
	if dev := sf.JobDeviceName(serve); dev != "gpu:1" {
		t.Errorf("serving job on %s, want gpu:1 after migration", dev)
	}
	if sf.RecoveryP95() <= 0 {
		t.Errorf("RecoveryP95() = %v, want > 0 after a recovery", sf.RecoveryP95())
	}

	serveTF, schedTF, _ := runOne(switchflow.PolicyThreadedTF)
	if !serveTF.Crashed() {
		t.Fatal("threaded-tf serving job survived a device loss")
	}
	if !errors.Is(serveTF.Err(), switchflow.ErrDeviceLost) {
		t.Errorf("crash cause = %v, want ErrDeviceLost", serveTF.Err())
	}
	stTF := schedTF.FaultStats()
	if stTF.JobsLost == 0 || stTF.Migrations != 0 || stTF.Restarts != 0 {
		t.Errorf("threaded-tf stats = %+v, want lost jobs and no recovery", stTF)
	}
	if serveTF.Restarts() != 0 {
		t.Errorf("baseline job Restarts() = %d, want 0", serveTF.Restarts())
	}
	if serveTF.Requests() >= serve.Requests() {
		t.Errorf("threaded-tf served %d >= switchflow %d; the dead job should stop serving",
			serveTF.Requests(), serve.Requests())
	}
}
