// Listing 1 of the paper, reproduced: a launcher program that enables
// input sharing between a master and a secondary model purely through
// TF_* environment variables, then launches both models — here against
// the simulated SwitchFlow runtime instead of a patched TensorFlow.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"switchflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Setup — verbatim from Listing 1.
	os.Setenv("TF_SET_REUSE_INPUTS", "True")
	os.Setenv("TF_REUSE_INPUT_OP_NAME_MASTER_X", "X00")
	os.Setenv("TF_REUSE_INPUT_OP_NAME_MASTER_y", "y00")

	// For a master and a secondary model (X01, y01).
	os.Setenv("TF_REUSE_INPUT_OPS_NAME_SUB_X", "X01")
	os.Setenv("TF_REUSE_INPUT_OPS_NAME_SUB_y", "y01")

	sharing, err := switchflow.InputSharingFromEnv()
	if err != nil {
		return err
	}
	fmt.Printf("input sharing: enabled=%v master=(%s,%s) subs=%v group=%d models\n",
		sharing.Enabled, sharing.MasterX, sharing.MasterY, sharing.SubX, sharing.Models())

	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		return err
	}

	// graph_00 (master) and graph_01 (secondary) — two ResNet50s trained
	// on the same input batches, like the paper's multi-task setup.
	specs := make([]switchflow.JobSpec, 0, sharing.Models())
	specs = append(specs, switchflow.JobSpec{
		Name: "graph_00/" + sharing.MasterX, Model: "ResNet50", Batch: 64, Saturated: true,
	})
	for _, sub := range sharing.SubX {
		specs = append(specs, switchflow.JobSpec{
			Name: "graph_01/" + sub, Model: "ResNet50", Batch: 64, Saturated: true,
		})
	}
	group, err := sched.AddSharedGroup(specs)
	if err != nil {
		return err
	}

	sim.RunFor(30 * time.Second)
	for _, job := range group.Jobs() {
		fmt.Printf("  %-16s %3d iterations (%.1f img/s)\n",
			job.Name(), job.Iterations(), job.Throughput(30*time.Second))
	}
	return nil
}
