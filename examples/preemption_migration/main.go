// Preemption with migration (§3.3, Figure 7 e): a low-priority ResNet50
// trains on the fast RTX 2080 Ti until a high-priority VGG16 arrives. The
// ResNet50 is preempted, its weights stream to the GTX 1080 Ti over the
// peer PCIe path (Table 1), and it resumes there while VGG16 owns the
// 2080 Ti.
package main

import (
	"fmt"
	"log"
	"time"

	"switchflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		return err
	}

	low, err := sched.AddJob(switchflow.JobSpec{
		Name:         "resnet50-low",
		Model:        "ResNet50",
		Batch:        32,
		Train:        true,
		Priority:     1,
		GPU:          1, // the RTX 2080 Ti
		FallbackGPUs: []int{0},
		FallbackCPU:  true,
	})
	if err != nil {
		return err
	}
	sim.RunFor(5 * time.Second)
	soloIters := low.Iterations()
	fmt.Printf("t=%v  low job on %s: %d steps (%.1f img/s solo)\n",
		sim.Now(), sched.JobDeviceName(low), soloIters,
		low.Throughput(sim.Now()))

	high, err := sched.AddJob(switchflow.JobSpec{
		Name:     "vgg16-high",
		Model:    "VGG16",
		Batch:    32,
		Train:    true,
		Priority: 2,
		GPU:      1,
	})
	if err != nil {
		return err
	}
	arrival := sim.Now()
	sim.RunFor(30 * time.Second)
	window := sim.Now() - arrival

	fmt.Printf("t=%v  after high-priority arrival:\n", sim.Now())
	fmt.Printf("  preemptions=%d migrations=%d (grant p95 %v)\n",
		sched.Preemptions(), sched.Migrations(),
		sched.PreemptionP95().Round(time.Microsecond))
	fmt.Printf("  high job on gpu:1: %d steps, %.1f img/s\n",
		high.Iterations(), float64(high.Iterations()*32)/window.Seconds())
	fmt.Printf("  low job migrated to %s: %d more steps, %.1f img/s\n",
		sched.JobDeviceName(low), low.Iterations()-soloIters,
		float64((low.Iterations()-soloIters)*32)/window.Seconds())
	return nil
}
