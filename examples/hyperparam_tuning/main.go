// Hyperparameter tuning (§3.2): a user trains several copies of the same
// model on the same training set to explore learning rates. The copies
// share the data preprocessing stage through a SwitchFlow group, so each
// mini-batch is decoded and augmented once instead of once per trial.
package main

import (
	"fmt"
	"log"
	"time"

	"switchflow"
)

const (
	trials = 3
	batch  = 64
	iters  = 60
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	shared, err := sharedInput()
	if err != nil {
		return err
	}
	sliced, err := timeSliced()
	if err != nil {
		return err
	}
	fmt.Printf("%d ResNet50 trials (BS=%d), %d steps each on a V100:\n", trials, batch, iters)
	fmt.Printf("  session time slicing : %v\n", sliced.Round(time.Millisecond))
	fmt.Printf("  shared input pipeline: %v\n", shared.Round(time.Millisecond))
	fmt.Printf("  sweep finished %.1f%% sooner\n", (1-shared.Seconds()/sliced.Seconds())*100)
	return nil
}

func trialSpecs() []switchflow.JobSpec {
	lrs := []string{"lr=0.1", "lr=0.01", "lr=0.001"}
	specs := make([]switchflow.JobSpec, trials)
	for i := range specs {
		specs[i] = switchflow.JobSpec{
			Name: "trial-" + lrs[i], Model: "ResNet50", Batch: batch, Train: true,
		}
	}
	return specs
}

func sharedInput() (time.Duration, error) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		return 0, err
	}
	group, err := sched.AddSharedGroup(trialSpecs())
	if err != nil {
		return 0, err
	}
	sim.RunWhile(2*time.Hour, func() bool {
		for _, job := range group.Jobs() {
			if job.Iterations() < iters {
				return true
			}
		}
		return false
	})
	return sim.Now(), nil
}

func timeSliced() (time.Duration, error) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched, err := sim.NewScheduler(switchflow.PolicyTimeSlice)
	if err != nil {
		return 0, err
	}
	var jobs []*switchflow.Job
	for _, spec := range trialSpecs() {
		job, err := sched.AddJob(spec)
		if err != nil {
			return 0, err
		}
		jobs = append(jobs, job)
	}
	sim.RunWhile(2*time.Hour, func() bool {
		for _, job := range jobs {
			if job.Iterations() < iters {
				return true
			}
		}
		return false
	})
	return sim.Now(), nil
}
