// Inference collocation (Figure 6): compare the 95th-percentile latency of
// a BS=1 inference stream collocated with a training job under
// multi-threaded TF versus SwitchFlow, across several background models.
package main

import (
	"fmt"
	"log"
	"time"

	"switchflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	backgrounds := []string{"MobileNetV2", "ResNet50", "VGG16"}
	fmt.Println("inference: ResNet50 BS=1, closed-loop, 60 requests per cell")
	fmt.Printf("%-14s %12s %12s %9s\n", "background", "tf p95", "sf p95", "speedup")
	for _, bg := range backgrounds {
		tf, err := measure(bg, switchflow.PolicyThreadedTF)
		if err != nil {
			return err
		}
		sf, err := measure(bg, switchflow.PolicySwitchFlow)
		if err != nil {
			return err
		}
		speedup := 0.0
		if sf > 0 {
			speedup = float64(tf) / float64(sf)
		}
		fmt.Printf("%-14s %12v %12v %8.2fx\n", bg,
			tf.Round(time.Millisecond), sf.Round(time.Millisecond), speedup)
	}
	return nil
}

func measure(background string, policy switchflow.Policy) (time.Duration, error) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched, err := sim.NewScheduler(policy)
	if err != nil {
		return 0, err
	}
	if _, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: background, Batch: 32, Train: true, Priority: 1,
	}); err != nil {
		return 0, err
	}
	sim.RunFor(2 * time.Second)
	serve, err := sched.AddJob(switchflow.JobSpec{
		Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2, ClosedLoop: true,
	})
	if err != nil {
		return 0, err
	}
	sim.RunWhile(10*time.Minute, func() bool { return serve.Requests() < 60 })
	return serve.P95Latency(), nil
}
