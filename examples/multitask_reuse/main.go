// Multi-task learning with input reuse (§3.4, Figure 8): two ResNet50
// inference jobs consume the same preprocessed batches. SwitchFlow runs
// the data pipeline once per batch and the two GPU executors in lockstep,
// beating session-based time slicing which preprocesses everything twice.
package main

import (
	"fmt"
	"log"
	"time"

	"switchflow"
)

const (
	iterations = 100
	batch      = 128
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	base, err := timeSliced()
	if err != nil {
		return err
	}
	reuse, err := sharedInput()
	if err != nil {
		return err
	}
	improve := (1 - reuse.Seconds()/base.Seconds()) * 100
	fmt.Printf("2x ResNet50 inference BS=%d, %d iterations each on a V100\n", batch, iterations)
	fmt.Printf("  session time slicing : %v\n", base.Round(time.Millisecond))
	fmt.Printf("  SwitchFlow input reuse: %v\n", reuse.Round(time.Millisecond))
	fmt.Printf("  improvement          : %.1f%%\n", improve)
	return nil
}

func jobSpecs() []switchflow.JobSpec {
	spec := switchflow.JobSpec{Model: "ResNet50", Batch: batch, Saturated: true}
	a, b := spec, spec
	a.Name, b.Name = "model-a", "model-b"
	return []switchflow.JobSpec{a, b}
}

func timeSliced() (time.Duration, error) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched, err := sim.NewScheduler(switchflow.PolicyTimeSlice)
	if err != nil {
		return 0, err
	}
	jobs := make([]*switchflow.Job, 0, 2)
	for _, spec := range jobSpecs() {
		job, err := sched.AddJob(spec)
		if err != nil {
			return 0, err
		}
		jobs = append(jobs, job)
	}
	sim.RunWhile(time.Hour, func() bool {
		return jobs[0].Iterations() < iterations || jobs[1].Iterations() < iterations
	})
	return sim.Now(), nil
}

func sharedInput() (time.Duration, error) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		return 0, err
	}
	group, err := sched.AddSharedGroup(jobSpecs())
	if err != nil {
		return 0, err
	}
	jobs := group.Jobs()
	sim.RunWhile(time.Hour, func() bool {
		return jobs[0].Iterations() < iterations || jobs[1].Iterations() < iterations
	})
	return sim.Now(), nil
}
