// Quickstart: collocate a latency-sensitive inference stream with a heavy
// training job on one V100 under SwitchFlow, and watch preemption keep the
// tail latency flat while training still makes progress.
package main

import (
	"fmt"
	"log"
	"time"

	"switchflow"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		return err
	}

	train, err := sched.AddJob(switchflow.JobSpec{
		Name:     "vgg16-train",
		Model:    "VGG16",
		Batch:    32,
		Train:    true,
		Priority: 1,
	})
	if err != nil {
		return err
	}

	// Warm the training job up before the request stream starts (§5.2.1).
	sim.RunFor(2 * time.Second)

	serve, err := sched.AddJob(switchflow.JobSpec{
		Name:       "resnet50-serve",
		Model:      "ResNet50",
		Batch:      1,
		Priority:   2, // higher priority: every request preempts training
		ClosedLoop: true,
	})
	if err != nil {
		return err
	}

	start := sim.Now()
	sim.RunFor(30 * time.Second)
	window := sim.Now() - start

	fmt.Printf("machine: %s, scheduler: %s\n", "4x Tesla V100", sched.Name())
	fmt.Printf("served %d requests: p95 = %v, mean = %v\n",
		serve.Requests(), serve.P95Latency().Round(time.Millisecond),
		serve.MeanLatency().Round(time.Millisecond))
	fmt.Printf("training sustained %.1f images/s despite %d preemptions (grant p95 %v)\n",
		train.Throughput(window+2*time.Second), sched.Preemptions(),
		sched.PreemptionP95().Round(time.Microsecond))
	return nil
}
