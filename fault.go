package switchflow

import (
	"time"

	"switchflow/internal/fault"
	"switchflow/internal/metrics"
)

// Fault sentinels, re-exported for errors.Is on Job.Err after an
// injected fault kills a job.
var (
	// ErrDeviceLost is the crash cause of jobs killed by a GPU loss.
	ErrDeviceLost = fault.ErrDeviceLost
	// ErrTransient is the crash cause of baseline jobs killed by a
	// transient kernel/ECC fault (SwitchFlow jobs restart instead).
	ErrTransient = fault.ErrTransient
)

// FaultPlan is a deterministic schedule of injected faults, attached to a
// scheduler with WithFaultPlan. Builder methods append events and return
// the plan for chaining.
type FaultPlan struct {
	inner fault.Plan
}

// NewFaultPlan creates an empty fault plan.
func NewFaultPlan() *FaultPlan { return &FaultPlan{} }

// LoseGPU schedules a device loss: GPU gpu drops off the bus at t, its
// in-flight kernels are dropped and its memory contents are gone.
// SwitchFlow jobs with fallbacks migrate and restore from their host
// checkpoints; baseline jobs on the device die.
func (p *FaultPlan) LoseGPU(at time.Duration, gpu int) *FaultPlan {
	p.inner.LoseGPU(at, gpu)
	return p
}

// TransientError schedules a one-shot kernel/ECC error on GPU gpu at t.
// The SwitchFlow victim rolls back to its last checkpoint and restarts
// after an exponential backoff; a baseline victim's process dies.
func (p *FaultPlan) TransientError(at time.Duration, gpu int) *FaultPlan {
	p.inner.Transient(at, gpu)
	return p
}

// StallInputs schedules an input-pipeline stall of length d at t (a
// storage or preprocessing hiccup); compute drains prefetched batches.
func (p *FaultPlan) StallInputs(at, d time.Duration) *FaultPlan {
	p.inner.StallInputs(at, d)
	return p
}

// DegradeGPU slows GPU gpu's kernels by factor for d (thermal
// throttling), after which the device heals.
func (p *FaultPlan) DegradeGPU(at time.Duration, gpu int, factor float64, d time.Duration) *FaultPlan {
	p.inner.Degrade(at, gpu, factor, d)
	return p
}

// Len returns the number of scheduled fault events.
func (p *FaultPlan) Len() int { return len(p.inner.Events) }

// RandomFaultPlan draws a seed-deterministic fault mix (transient errors
// and input stalls) over [0, horizon) targeting the first gpus devices.
// Identical arguments always produce identical plans.
func RandomFaultPlan(seed int64, horizon time.Duration, gpus int) *FaultPlan {
	return &FaultPlan{inner: fault.Random(seed, horizon, fault.DefaultRandomConfig(gpus))}
}

// FaultStats are a scheduler's fault-injection and recovery counters;
// all fields are zero when no fault plan is attached.
type FaultStats struct {
	// Injected counts fault events delivered to this scheduler.
	Injected int
	// DeviceLost, Transients, and InputStalls break Injected down by kind.
	DeviceLost  int
	Transients  int
	InputStalls int
	// JobsLost counts jobs that died to a fault without recovering.
	JobsLost int
	// Migrations counts fault-driven device migrations (SwitchFlow only).
	Migrations int
	// Restarts counts crash-and-restart recoveries (SwitchFlow only).
	Restarts int
	// Checkpoints counts periodic host snapshots taken.
	Checkpoints int
	// IterationsLost counts training iterations rolled back and re-run.
	IterationsLost int
}

func faultStatsFrom(c metrics.FaultCounters) FaultStats {
	return FaultStats{
		Injected:       c.Injected,
		DeviceLost:     c.DeviceLost,
		Transients:     c.Transients,
		InputStalls:    c.InputStalls,
		JobsLost:       c.JobsLost,
		Migrations:     c.Migrations,
		Restarts:       c.Restarts,
		Checkpoints:    c.Checkpoints,
		IterationsLost: c.IterationsLost,
	}
}
