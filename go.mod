module switchflow

go 1.22
