package switchflow_test

import (
	"testing"
	"time"

	"switchflow"
)

// newSwitchFlow builds the paper's scheduler, failing the test on error.
func newSwitchFlow(t *testing.T, sim *switchflow.Simulation) *switchflow.SwitchFlowScheduler {
	t.Helper()
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// newPolicy builds a scheduler for the given policy, failing on error.
func newPolicy(t *testing.T, sim *switchflow.Simulation, policy switchflow.Policy) switchflow.Scheduler {
	t.Helper()
	sched, err := sim.NewScheduler(policy)
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func TestPublicAPITrainingJob(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched := newSwitchFlow(t, sim)
	job, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "ResNet50", Batch: 16, Train: true, Priority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(5 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.Err())
	}
	// Calibration target: ~226 img/s.
	rate := job.Throughput(5 * time.Second)
	if rate < 140 || rate > 330 {
		t.Fatalf("throughput = %.0f img/s, want ~226", rate)
	}
	if sim.GPUBusy(0) == 0 {
		t.Fatal("GPU idle throughout")
	}
}

func TestPublicAPIServingWithPreemption(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched := newSwitchFlow(t, sim)
	if _, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "VGG16", Batch: 32, Train: true, Priority: 1,
	}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(2 * time.Second)
	serve, err := sched.AddJob(switchflow.JobSpec{
		Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2, ClosedLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunWhile(time.Minute, func() bool { return serve.Requests() < 30 })
	if serve.Requests() < 30 {
		t.Fatalf("only %d requests served", serve.Requests())
	}
	if sched.Preemptions() == 0 {
		t.Fatal("no preemptions")
	}
	if p95 := serve.P95Latency(); p95 > 300*time.Millisecond {
		t.Fatalf("p95 = %v under SwitchFlow, want bounded", p95)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	for _, policy := range []switchflow.Policy{
		switchflow.PolicyThreadedTF,
		switchflow.PolicyTimeSlice,
		switchflow.PolicyMPS,
	} {
		sim := switchflow.NewSimulation(switchflow.V100Server())
		sched := newPolicy(t, sim, policy)
		job, err := sched.AddJob(switchflow.JobSpec{
			Name: "train", Model: "MobileNetV2", Batch: 16, Train: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		sim.RunFor(3 * time.Second)
		if job.Crashed() {
			t.Fatalf("%s: crashed: %v", sched.Name(), job.Err())
		}
		if job.Iterations() == 0 {
			t.Fatalf("%s: no progress", sched.Name())
		}
		sched.StopJob(job)
	}
}

func TestPublicAPISharedGroup(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched := newSwitchFlow(t, sim)
	spec := switchflow.JobSpec{Model: "ResNet50", Batch: 32, Saturated: true}
	a, b := spec, spec
	a.Name, b.Name = "m0", "m1"
	group, err := sched.AddSharedGroup([]switchflow.JobSpec{a, b})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(20 * time.Second)
	jobs := group.Jobs()
	if jobs[0].Iterations() == 0 {
		t.Fatal("group made no progress")
	}
	if diff := jobs[0].Iterations() - jobs[1].Iterations(); diff < 0 || diff > 1 {
		t.Fatalf("lockstep violated: %d vs %d", jobs[0].Iterations(), jobs[1].Iterations())
	}
	group.Stop()
}

func TestPublicAPIMigration(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
	sched := newSwitchFlow(t, sim)
	low, err := sched.AddJob(switchflow.JobSpec{
		Name: "low", Model: "ResNet50", Batch: 32, Train: true, Priority: 1,
		GPU: 1, FallbackGPUs: []int{0}, FallbackCPU: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(2 * time.Second)
	if _, err := sched.AddJob(switchflow.JobSpec{
		Name: "high", Model: "VGG16", Batch: 32, Train: true, Priority: 2, GPU: 1,
	}); err != nil {
		t.Fatal(err)
	}
	sim.RunFor(20 * time.Second)
	if sched.Migrations() == 0 {
		t.Fatal("no migration")
	}
	if got := sched.JobDeviceName(low); got != "gpu:0" {
		t.Fatalf("low job on %s, want gpu:0", got)
	}
}

func TestPublicAPIValidation(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched := newSwitchFlow(t, sim)
	if _, err := sched.AddJob(switchflow.JobSpec{Name: "x", Model: "NoSuchNet", Batch: 8}); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := switchflow.SingleGPU("TPU"); err == nil {
		t.Fatal("unknown GPU accepted")
	}
	if ms, err := switchflow.SingleGPU("V100"); err != nil || ms.Name() != "V100" {
		t.Fatalf("SingleGPU(V100) = %v, %v", ms, err)
	}
}

func TestPublicAPIModelsList(t *testing.T) {
	names := switchflow.Models()
	if len(names) != 12 {
		t.Fatalf("Models() lists %d, want 12", len(names))
	}
}

func TestPublicAPIEagerAndFused(t *testing.T) {
	run := func(eager, fuse bool) int {
		sim := switchflow.NewSimulation(switchflow.V100Server())
		sched := newPolicy(t, sim, switchflow.PolicyThreadedTF)
		job, err := sched.AddJob(switchflow.JobSpec{
			Name: "t", Model: "DenseNet121", Batch: 32, Train: true,
			Eager: eager, Fuse: fuse,
		})
		if err != nil {
			t.Fatal(err)
		}
		sim.RunFor(20 * time.Second)
		return job.Iterations()
	}
	eager, static, fused := run(true, false), run(false, false), run(false, true)
	if !(eager < static && static <= fused) {
		t.Fatalf("iterations eager=%d static=%d fused=%d, want increasing", eager, static, fused)
	}
}

func TestPublicAPIPoissonServing(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.V100Server())
	sched := newSwitchFlow(t, sim)
	job, err := sched.AddJob(switchflow.JobSpec{
		Name: "s", Model: "ResNet50", Batch: 1,
		ServeEvery: 100 * time.Millisecond, PoissonArrivals: true, ArrivalSeed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.RunFor(10 * time.Second)
	if job.Requests() < 50 {
		t.Fatalf("served %d requests at mean 10/s over 10s", job.Requests())
	}
}
