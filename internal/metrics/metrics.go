// Package metrics collects the measurements the paper reports: latency
// percentiles (Figure 6), throughputs (Figure 7), and GPU busy fractions
// (Figure 3).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Latency accumulates duration samples and answers percentile queries.
type Latency struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (l *Latency) Add(d time.Duration) {
	l.samples = append(l.samples, d)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank; zero with no samples.
func (l *Latency) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	if p <= 0 {
		return l.samples[0]
	}
	if p >= 100 {
		return l.samples[len(l.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(l.samples))))
	if rank < 1 {
		rank = 1
	}
	return l.samples[rank-1]
}

// Mean returns the arithmetic mean; zero with no samples.
func (l *Latency) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, s := range l.samples {
		total += s
	}
	return total / time.Duration(len(l.samples))
}

// Max returns the largest sample; zero with no samples.
func (l *Latency) Max() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	return l.samples[len(l.samples)-1]
}

// Min returns the smallest sample; zero with no samples.
func (l *Latency) Min() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	return l.samples[0]
}

// Below returns how many samples are <= d (SLO attainment numerator).
func (l *Latency) Below(d time.Duration) int {
	count := 0
	for _, s := range l.samples {
		if s <= d {
			count++
		}
	}
	return count
}

func (l *Latency) sort() {
	if l.sorted {
		return
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	l.sorted = true
}

// FaultCounters aggregates what a scheduler saw and did about injected
// faults (the §3.4/§5.2 robustness story under induced failures). Every
// scheduler owns one instance; fields are plain ints because all mutation
// happens inside a single simulation's event callbacks.
type FaultCounters struct {
	// Injected counts fault events delivered to the scheduler.
	Injected int
	// DeviceLost, Transients, InputStalls break Injected down by kind.
	DeviceLost  int
	Transients  int
	InputStalls int
	// JobsLost counts jobs that died because of a fault (no recovery
	// path — the baselines, or a SwitchFlow job with no viable fallback).
	JobsLost int
	// Migrations counts fault-triggered device migrations (distinct from
	// preemption migrations).
	Migrations int
	// Restarts counts crash-and-restart recoveries (checkpoint restore
	// after a transient fault or a device loss).
	Restarts int
	// Checkpoints counts background checkpoint snapshots taken.
	Checkpoints int
	// IterationsLost counts training iterations rolled back to the last
	// checkpoint across all recoveries.
	IterationsLost int
}

// Add accumulates other into c (used when aggregating per-node counters
// across a cluster).
func (c *FaultCounters) Add(other FaultCounters) {
	c.Injected += other.Injected
	c.DeviceLost += other.DeviceLost
	c.Transients += other.Transients
	c.InputStalls += other.InputStalls
	c.JobsLost += other.JobsLost
	c.Migrations += other.Migrations
	c.Restarts += other.Restarts
	c.Checkpoints += other.Checkpoints
	c.IterationsLost += other.IterationsLost
}

// Throughput converts a count over a window into items/second.
func Throughput(items int, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(items) / window.Seconds()
}

// BusyFraction is busy/total clamped to [0,1].
func BusyFraction(busy, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	f := float64(busy) / float64(total)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// FormatMs renders a duration as milliseconds with two decimals, the unit
// the paper's tables use.
func FormatMs(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds()*1e3)
}
