// Package metrics collects the measurements the paper reports: latency
// percentiles (Figure 6), throughputs (Figure 7), and GPU busy fractions
// (Figure 3).
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// DefaultReservoir bounds the number of samples a Latency retains. The
// paper's experiments record at most a few thousand samples per job, so
// they stay exact; a long-running swserved process keeps a uniform random
// reservoir instead of growing without bound.
const DefaultReservoir = 8192

// reservoirSeed makes reservoir replacement deterministic: two runs that
// observe the same sample stream keep identical reservoirs.
const reservoirSeed = 1

// Latency accumulates duration samples and answers percentile queries.
// Memory is bounded: once more than DefaultReservoir samples arrive, a
// uniform reservoir (Vitter's algorithm R with a fixed seed) stands in for
// the full population. Count, Mean, Min and Max stay exact regardless.
type Latency struct {
	samples []time.Duration
	sorted  bool
	total   int
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	rng     *rand.Rand
}

// Add records one sample.
func (l *Latency) Add(d time.Duration) {
	l.total++
	l.sum += d
	if l.total == 1 || d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	if len(l.samples) < DefaultReservoir {
		l.samples = append(l.samples, d)
		l.sorted = false
		return
	}
	if l.rng == nil {
		//swlint:allow detrand the reservoir seed is deliberately fixed so percentile tables replay byte-identically
		l.rng = rand.New(rand.NewSource(reservoirSeed))
	}
	if slot := l.rng.Intn(l.total); slot < len(l.samples) {
		l.samples[slot] = d
		l.sorted = false
	}
}

// Count returns the number of samples observed (not the reservoir size).
func (l *Latency) Count() int { return l.total }

// Percentile returns the p-th percentile (p in [0,100]) using
// nearest-rank; zero with no samples.
func (l *Latency) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	if p <= 0 {
		return l.samples[0]
	}
	if p >= 100 {
		return l.samples[len(l.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(l.samples))))
	if rank < 1 {
		rank = 1
	}
	return l.samples[rank-1]
}

// Mean returns the arithmetic mean; zero with no samples. Exact even once
// the reservoir is sampling.
func (l *Latency) Mean() time.Duration {
	if l.total == 0 {
		return 0
	}
	return l.sum / time.Duration(l.total)
}

// Max returns the largest sample observed; zero with no samples.
func (l *Latency) Max() time.Duration { return l.max }

// Min returns the smallest sample observed; zero with no samples.
func (l *Latency) Min() time.Duration {
	if l.total == 0 {
		return 0
	}
	return l.min
}

// Below returns how many samples are <= d (SLO attainment numerator).
// Exact while the population fits the reservoir; a scaled estimate after.
func (l *Latency) Below(d time.Duration) int {
	count := 0
	for _, s := range l.samples {
		if s <= d {
			count++
		}
	}
	if l.total > len(l.samples) && len(l.samples) > 0 {
		return int(math.Round(float64(count) * float64(l.total) / float64(len(l.samples))))
	}
	return count
}

func (l *Latency) sort() {
	if l.sorted {
		return
	}
	sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
	l.sorted = true
}

// FaultCounters aggregates what a scheduler saw and did about injected
// faults (the §3.4/§5.2 robustness story under induced failures). Every
// scheduler owns one instance; fields are plain ints because all mutation
// happens inside a single simulation's event callbacks.
type FaultCounters struct {
	// Injected counts fault events delivered to the scheduler.
	Injected int
	// DeviceLost, Transients, InputStalls break Injected down by kind.
	DeviceLost  int
	Transients  int
	InputStalls int
	// JobsLost counts jobs that died because of a fault (no recovery
	// path — the baselines, or a SwitchFlow job with no viable fallback).
	JobsLost int
	// Migrations counts fault-triggered device migrations (distinct from
	// preemption migrations).
	Migrations int
	// Restarts counts crash-and-restart recoveries (checkpoint restore
	// after a transient fault or a device loss).
	Restarts int
	// Checkpoints counts background checkpoint snapshots taken.
	Checkpoints int
	// IterationsLost counts training iterations rolled back to the last
	// checkpoint across all recoveries.
	IterationsLost int
}

// Add accumulates other into c (used when aggregating per-node counters
// across a cluster).
func (c *FaultCounters) Add(other FaultCounters) {
	c.Injected += other.Injected
	c.DeviceLost += other.DeviceLost
	c.Transients += other.Transients
	c.InputStalls += other.InputStalls
	c.JobsLost += other.JobsLost
	c.Migrations += other.Migrations
	c.Restarts += other.Restarts
	c.Checkpoints += other.Checkpoints
	c.IterationsLost += other.IterationsLost
}

// ServingCounters tracks the admission-control and batching outcomes of
// one serving job: what arrived, what was shed at the door, what was
// served, and how much of it met the job's SLO. Fields are plain ints
// because all mutation happens inside a single simulation's event
// callbacks.
type ServingCounters struct {
	// Offered counts requests generated by the arrival process.
	Offered int
	// Shed counts requests rejected by admission control because their
	// projected queueing delay exceeded the SLO.
	Shed int
	// Served counts requests that completed and recorded a latency.
	Served int
	// SLOMet counts served requests whose latency was within the SLO.
	// Zero when the job has no SLO.
	SLOMet int
	// Batches counts micro-batches formed (equals Served without dynamic
	// batching).
	Batches int
}

// Add accumulates other into c (aggregation across jobs).
func (c *ServingCounters) Add(other ServingCounters) {
	c.Offered += other.Offered
	c.Shed += other.Shed
	c.Served += other.Served
	c.SLOMet += other.SLOMet
	c.Batches += other.Batches
}

// AttainmentPct is the percentage of served requests that met the SLO;
// zero when nothing was served.
func (c ServingCounters) AttainmentPct() float64 {
	if c.Served == 0 {
		return 0
	}
	return 100 * float64(c.SLOMet) / float64(c.Served)
}

// MeanBatch is the average micro-batch size; zero before any batch forms.
func (c ServingCounters) MeanBatch() float64 {
	if c.Batches == 0 {
		return 0
	}
	return float64(c.Served) / float64(c.Batches)
}

// Throughput converts a count over a window into items/second.
func Throughput(items int, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(items) / window.Seconds()
}

// BusyFraction is busy/total clamped to [0,1].
func BusyFraction(busy, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	f := float64(busy) / float64(total)
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// FormatMs renders a duration as milliseconds with two decimals, the unit
// the paper's tables use.
func FormatMs(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds()*1e3)
}
