package metrics

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyPercentiles(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{0, time.Millisecond},
	}
	for _, tt := range tests {
		if got := l.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestLatencyUnsortedInput(t *testing.T) {
	var l Latency
	for _, ms := range []int{30, 10, 20} {
		l.Add(time.Duration(ms) * time.Millisecond)
	}
	if got := l.Min(); got != 10*time.Millisecond {
		t.Fatalf("Min() = %v", got)
	}
	if got := l.Max(); got != 30*time.Millisecond {
		t.Fatalf("Max() = %v", got)
	}
	if got := l.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean() = %v", got)
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Percentile(95) != 0 || l.Mean() != 0 || l.Max() != 0 || l.Min() != 0 {
		t.Fatal("empty latency should report zeros")
	}
	if l.Count() != 0 {
		t.Fatal("empty latency count != 0")
	}
}

func TestLatencyAddAfterQuery(t *testing.T) {
	var l Latency
	l.Add(10 * time.Millisecond)
	_ = l.Percentile(50)
	l.Add(time.Millisecond)
	if got := l.Min(); got != time.Millisecond {
		t.Fatalf("Min() after late add = %v, want 1ms", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(200, 2*time.Second); got != 100 {
		t.Fatalf("Throughput = %v, want 100", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput with zero window = %v", got)
	}
}

func TestBusyFraction(t *testing.T) {
	if got := BusyFraction(time.Second, 4*time.Second); got != 0.25 {
		t.Fatalf("BusyFraction = %v, want 0.25", got)
	}
	if got := BusyFraction(5*time.Second, time.Second); got != 1 {
		t.Fatalf("BusyFraction clamps to 1, got %v", got)
	}
	if got := BusyFraction(time.Second, 0); got != 0 {
		t.Fatalf("BusyFraction zero total = %v", got)
	}
}

func TestFormatMs(t *testing.T) {
	if got := FormatMs(28838 * time.Microsecond); got != "28.84" {
		t.Fatalf("FormatMs = %q, want 28.84", got)
	}
}

// Property: the percentile function is monotone in p and brackets the
// sample range.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latency
		for _, v := range raw {
			l.Add(time.Duration(v) * time.Microsecond)
		}
		sorted := append([]uint16(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := l.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return l.Min() == time.Duration(sorted[0])*time.Microsecond &&
			l.Max() == time.Duration(sorted[len(sorted)-1])*time.Microsecond
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestReservoirBoundsMemory is the unbounded-growth regression: a
// long-running serving job must not retain every latency sample.
func TestReservoirBoundsMemory(t *testing.T) {
	var l Latency
	const n = 4 * DefaultReservoir
	for i := 0; i < n; i++ {
		l.Add(time.Duration(i+1) * time.Microsecond)
	}
	if len(l.samples) > DefaultReservoir {
		t.Fatalf("reservoir holds %d samples, cap %d", len(l.samples), DefaultReservoir)
	}
	if l.Count() != n {
		t.Fatalf("Count() = %d, want %d (total observed, not reservoir size)", l.Count(), n)
	}
	if l.Min() != time.Microsecond || l.Max() != n*time.Microsecond {
		t.Fatalf("Min/Max = %v/%v, want exact extremes", l.Min(), l.Max())
	}
	wantMean := time.Duration(n) * time.Duration(n+1) / 2 * time.Microsecond / time.Duration(n)
	if l.Mean() != wantMean {
		t.Fatalf("Mean() = %v, want exact %v", l.Mean(), wantMean)
	}
	// The median of 1..n microseconds: the reservoir estimate must land
	// within a few percent of n/2.
	med := l.Percentile(50)
	lo := time.Duration(45*n/100) * time.Microsecond
	hi := time.Duration(55*n/100) * time.Microsecond
	if med < lo || med > hi {
		t.Fatalf("reservoir median = %v, want within [%v, %v]", med, lo, hi)
	}
	// Below scales to the population: ~half the samples sit below n/2.
	below := l.Below(time.Duration(n/2) * time.Microsecond)
	if below < 45*n/100 || below > 55*n/100 {
		t.Fatalf("Below(n/2) = %d, want ~%d", below, n/2)
	}
}

// TestReservoirDeterministic: identical sample streams keep identical
// reservoirs (simulation determinism must survive the sampling).
func TestReservoirDeterministic(t *testing.T) {
	run := func() time.Duration {
		var l Latency
		for i := 0; i < 3*DefaultReservoir; i++ {
			l.Add(time.Duration(i%977) * time.Microsecond)
		}
		return l.Percentile(95)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("reservoir not deterministic: %v vs %v", a, b)
	}
}

func TestServingCounters(t *testing.T) {
	c := ServingCounters{Offered: 10, Shed: 2, Served: 8, SLOMet: 6, Batches: 4}
	if got := c.AttainmentPct(); got != 75 {
		t.Fatalf("AttainmentPct = %v, want 75", got)
	}
	if got := c.MeanBatch(); got != 2 {
		t.Fatalf("MeanBatch = %v, want 2", got)
	}
	var zero ServingCounters
	if zero.AttainmentPct() != 0 || zero.MeanBatch() != 0 {
		t.Fatal("zero counters must report zero ratios")
	}
	sum := c
	sum.Add(ServingCounters{Offered: 1, Shed: 1, Batches: 1})
	if sum.Offered != 11 || sum.Shed != 3 || sum.Batches != 5 {
		t.Fatalf("Add = %+v", sum)
	}
}

func TestBelow(t *testing.T) {
	var l Latency
	for _, ms := range []int{10, 50, 100, 200, 500} {
		l.Add(time.Duration(ms) * time.Millisecond)
	}
	if got := l.Below(100 * time.Millisecond); got != 3 {
		t.Fatalf("Below(100ms) = %d, want 3", got)
	}
	if got := l.Below(time.Millisecond); got != 0 {
		t.Fatalf("Below(1ms) = %d, want 0", got)
	}
	if got := l.Below(time.Second); got != 5 {
		t.Fatalf("Below(1s) = %d, want 5", got)
	}
}
