package metrics

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencyPercentiles(t *testing.T) {
	var l Latency
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{95, 95 * time.Millisecond},
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{0, time.Millisecond},
	}
	for _, tt := range tests {
		if got := l.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestLatencyUnsortedInput(t *testing.T) {
	var l Latency
	for _, ms := range []int{30, 10, 20} {
		l.Add(time.Duration(ms) * time.Millisecond)
	}
	if got := l.Min(); got != 10*time.Millisecond {
		t.Fatalf("Min() = %v", got)
	}
	if got := l.Max(); got != 30*time.Millisecond {
		t.Fatalf("Max() = %v", got)
	}
	if got := l.Mean(); got != 20*time.Millisecond {
		t.Fatalf("Mean() = %v", got)
	}
}

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Percentile(95) != 0 || l.Mean() != 0 || l.Max() != 0 || l.Min() != 0 {
		t.Fatal("empty latency should report zeros")
	}
	if l.Count() != 0 {
		t.Fatal("empty latency count != 0")
	}
}

func TestLatencyAddAfterQuery(t *testing.T) {
	var l Latency
	l.Add(10 * time.Millisecond)
	_ = l.Percentile(50)
	l.Add(time.Millisecond)
	if got := l.Min(); got != time.Millisecond {
		t.Fatalf("Min() after late add = %v, want 1ms", got)
	}
}

func TestThroughput(t *testing.T) {
	if got := Throughput(200, 2*time.Second); got != 100 {
		t.Fatalf("Throughput = %v, want 100", got)
	}
	if got := Throughput(10, 0); got != 0 {
		t.Fatalf("Throughput with zero window = %v", got)
	}
}

func TestBusyFraction(t *testing.T) {
	if got := BusyFraction(time.Second, 4*time.Second); got != 0.25 {
		t.Fatalf("BusyFraction = %v, want 0.25", got)
	}
	if got := BusyFraction(5*time.Second, time.Second); got != 1 {
		t.Fatalf("BusyFraction clamps to 1, got %v", got)
	}
	if got := BusyFraction(time.Second, 0); got != 0 {
		t.Fatalf("BusyFraction zero total = %v", got)
	}
}

func TestFormatMs(t *testing.T) {
	if got := FormatMs(28838 * time.Microsecond); got != "28.84" {
		t.Fatalf("FormatMs = %q, want 28.84", got)
	}
}

// Property: the percentile function is monotone in p and brackets the
// sample range.
func TestPercentileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var l Latency
		for _, v := range raw {
			l.Add(time.Duration(v) * time.Microsecond)
		}
		sorted := append([]uint16(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := l.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return l.Min() == time.Duration(sorted[0])*time.Microsecond &&
			l.Max() == time.Duration(sorted[len(sorted)-1])*time.Microsecond
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBelow(t *testing.T) {
	var l Latency
	for _, ms := range []int{10, 50, 100, 200, 500} {
		l.Add(time.Duration(ms) * time.Millisecond)
	}
	if got := l.Below(100 * time.Millisecond); got != 3 {
		t.Fatalf("Below(100ms) = %d, want 3", got)
	}
	if got := l.Below(time.Millisecond); got != 0 {
		t.Fatalf("Below(1ms) = %d, want 0", got)
	}
	if got := l.Below(time.Second); got != 5 {
		t.Fatalf("Below(1s) = %d, want 5", got)
	}
}
