package metrics

import "switchflow/internal/obs"

// FaultSinkKinds are the event kinds a FaultSink must subscribe to.
var FaultSinkKinds = []obs.Kind{
	obs.KindFaultInject, obs.KindJobLost, obs.KindMigrate,
	obs.KindRestore, obs.KindCheckpoint,
}

// FaultSink derives FaultCounters from the observability spine instead of
// hand-plumbed increments: subscribe one to a simulation's bus (with
// FaultSinkKinds) and the counters aggregate themselves as the scheduler
// emits fault and recovery events.
type FaultSink struct {
	counters FaultCounters
}

// Observe implements obs.Sink.
func (s *FaultSink) Observe(e obs.Event) {
	switch e.Kind {
	case obs.KindFaultInject:
		s.counters.Injected++
		switch e.Name {
		case "device-lost":
			s.counters.DeviceLost++
		case "transient":
			s.counters.Transients++
		case "input-stall":
			s.counters.InputStalls++
		}
	case obs.KindJobLost:
		s.counters.JobsLost++
	case obs.KindMigrate:
		// Only fault-triggered migrations count here; preemption
		// migrations are a scheduling decision, tracked separately.
		if e.Name == "fault" {
			s.counters.Migrations++
		}
	case obs.KindRestore:
		// Checkpoint-based preemption also restores state; only
		// fault-recovery restores are crash restarts.
		if e.Name == "device-lost" || e.Name == "transient" {
			s.counters.Restarts++
			s.counters.IterationsLost += e.Count
		}
	case obs.KindCheckpoint:
		// Gandiva-style suspend checkpoints (Name="preempt") are part of
		// the preemption protocol, not the fault-tolerance background
		// snapshot cadence this counter reports.
		if e.Name != "preempt" {
			s.counters.Checkpoints++
		}
	}
}

// Counters returns the current aggregate.
func (s *FaultSink) Counters() FaultCounters { return s.counters }

// ServingSinkKinds are the event kinds a ServingSink must subscribe to.
var ServingSinkKinds = []obs.Kind{
	obs.KindAdmit, obs.KindShed, obs.KindServe, obs.KindBatchFuse,
}

// ServingSink derives one job's ServingCounters from the spine's serving
// events, filtered by context id (a machine bus carries every job's
// events interleaved).
type ServingSink struct {
	// Ctx is the job context this sink accounts for.
	Ctx      int
	counters ServingCounters
}

// Observe implements obs.Sink.
func (s *ServingSink) Observe(e obs.Event) {
	if e.Ctx != s.Ctx {
		return
	}
	switch e.Kind {
	case obs.KindAdmit:
		s.counters.Offered++
	case obs.KindShed:
		s.counters.Offered++
		s.counters.Shed++
	case obs.KindServe:
		s.counters.Served++
		if e.Count > 0 {
			s.counters.SLOMet++
		}
	case obs.KindBatchFuse:
		s.counters.Batches++
	}
}

// Counters returns the current aggregate.
func (s *ServingSink) Counters() ServingCounters { return s.counters }
