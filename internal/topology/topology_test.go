package topology

import (
	"testing"
	"time"
)

// near asserts got is within 1µs of want — the hand-computed values below
// are exact in decimal; the tolerance only absorbs float64 rounding in
// the bytes/bandwidth division.
func near(t *testing.T, what string, got, want time.Duration) {
	t.Helper()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Microsecond {
		t.Fatalf("%s = %v, want %v (±1µs)", what, got, want)
	}
}

// Hand-computed: 4 GPUs all-PCIe at 10 GB/s, hop 5µs, 100 MB gradient.
// N=4 → chunk 25 MB; per-step = 5µs + 25e6/10e9 s = 5µs + 2.5ms;
// 2(N-1)=6 steps → 6 × 2.505ms = 15.03ms.
func TestRingAllReducePCIeOnly(t *testing.T) {
	f := NewPCIe(4, 10)
	got, err := f.RingCost([]int{0, 1, 2, 3}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "pcie ring", got, 15030*time.Microsecond)
}

// Hand-computed on a 4-GPU machine with NVLink islands {0,1} and {2,3}
// (NVLink 50 GB/s, PCIe 10 GB/s, hop 5µs), 100 MB gradient:
//
//	ring {0,1}: N=2, chunk 50 MB over NVLink → 2 × (5µs + 1ms)   = 2.01ms
//	ring {1,2}: N=2, chunk 50 MB over PCIe   → 2 × (5µs + 5ms)   = 10.01ms
//
// The NVLink pair is 5x cheaper — the measurable difference gang
// placement exists to exploit.
func TestRingAllReduceNVLinkIsland(t *testing.T) {
	f := NVLinkIslands(4, 2, 10, 50)
	nv, err := f.RingCost([]int{0, 1}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "nvlink pair", nv, 2010*time.Microsecond)
	px, err := f.RingCost([]int{1, 2}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "cross-island pair", px, 10010*time.Microsecond)
	if nv >= px {
		t.Fatalf("nvlink ring %v should beat pcie ring %v", nv, px)
	}
}

// Hand-computed mixed ring: all four GPUs of the island machine. The
// ring 0-1-2-3-0 crosses PCIe twice (1→2 and 3→0), and the slowest link
// prices every step, so the mixed ring costs exactly what the all-PCIe
// ring does: 6 × (5µs + 25e6/10e9 s) = 15.03ms. One PCIe hop forfeits
// the whole NVLink advantage.
func TestRingAllReduceMixedRing(t *testing.T) {
	island := NVLinkIslands(4, 2, 10, 50)
	pcie := NewPCIe(4, 10)
	mixed, err := island.RingCost([]int{0, 1, 2, 3}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	near(t, "mixed ring", mixed, 15030*time.Microsecond)
	flat, err := pcie.RingCost([]int{0, 1, 2, 3}, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if mixed != flat {
		t.Fatalf("mixed ring %v should price identically to all-PCIe %v (slowest link dominates)", mixed, flat)
	}
}

func TestRingAllReduceDegenerate(t *testing.T) {
	f := NewPCIe(4, 10)
	if d, err := f.RingCost([]int{2}, 1<<30); err != nil || d != 0 {
		t.Fatalf("single-GPU ring = (%v, %v), want free", d, err)
	}
	if d, err := f.RingCost([]int{0, 1}, 0); err != nil || d != 0 {
		t.Fatalf("zero-byte ring = (%v, %v), want free", d, err)
	}
	if _, err := f.RingCost([]int{0, 9}, 1); err == nil {
		t.Fatal("out-of-range GPU should be unpriceable")
	}
}

func TestBestSlotPrefersNVLinkContiguous(t *testing.T) {
	f := NVLinkIslands(4, 2, 10, 50)
	slot, cost, ok := f.BestSlot([]int{0, 1, 2, 3}, 2, 100_000_000)
	if !ok {
		t.Fatal("BestSlot failed")
	}
	if len(slot) != 2 || slot[0] != 0 || slot[1] != 1 {
		t.Fatalf("slot = %v, want [0 1] (first NVLink island)", slot)
	}
	if !f.NVLinkContiguous(slot) {
		t.Fatalf("slot %v should be NVLink-contiguous", slot)
	}
	near(t, "best slot cost", cost, 2010*time.Microsecond)

	// With GPU 0 occupied, the placer should jump to the other island
	// rather than straddle it with {1,2}.
	slot, _, ok = f.BestSlot([]int{1, 2, 3}, 2, 100_000_000)
	if !ok || slot[0] != 2 || slot[1] != 3 {
		t.Fatalf("slot = %v (ok=%v), want [2 3] (second island)", slot, ok)
	}
}

func TestBestSlotDeterministicTieBreak(t *testing.T) {
	f := NewPCIe(4, 10)
	// Every pair prices identically on a flat fabric; the lexicographically
	// smallest subset must win.
	slot, _, ok := f.BestSlot([]int{3, 1, 2, 0}, 2, 1<<20)
	if !ok || slot[0] != 0 || slot[1] != 1 {
		t.Fatalf("slot = %v (ok=%v), want [0 1] tie-break", slot, ok)
	}
	if _, _, ok := f.BestSlot([]int{0, 0, 1}, 3, 1<<20); ok {
		t.Fatal("duplicate candidates should not satisfy k=3")
	}
}

func TestNVLinkContiguous(t *testing.T) {
	f := NVLinkIslands(8, 4, 0, 0)
	if !f.NVLinkContiguous([]int{0, 1, 2, 3}) {
		t.Fatal("island {0..3} should be NVLink-contiguous")
	}
	if f.NVLinkContiguous([]int{2, 3, 4, 5}) {
		t.Fatal("straddling ring should not be NVLink-contiguous")
	}
	if !f.NVLinkContiguous([]int{6}) {
		t.Fatal("singleton is trivially contiguous")
	}
}
