// Package topology models the GPU interconnect fabric of one server —
// which pairs of devices are joined by NVLink and which fall back to the
// PCIe tree — and prices collective operations over it. The SwitchFlow
// paper's testbeds are PCIe-only boxes, but the gang-scheduled
// data-parallel training this reproduction adds (ROADMAP item 4, after
// the synchronous replication design of TensorFlow OSDI'16) lives or
// dies on gradient-sync cost, and that cost is a property of the fabric:
// a ring all-reduce over an NVLink island is several times cheaper than
// the same ring crossing the PCIe switch.
//
// The cost model is the standard alpha-beta formulation: a ring
// all-reduce of B bytes over N devices runs 2(N-1) steps (N-1
// reduce-scatter, N-1 all-gather), each moving a B/N-byte chunk along
// every ring link simultaneously, so a step costs alpha (per-hop link
// latency) plus (B/N)/beta over the *slowest* link on the ring — the
// whole ring advances at the pace of its worst hop. That is what makes
// placement topology-sensitive: one PCIe link in an otherwise-NVLink
// ring prices the entire collective at PCIe bandwidth.
//
// Fabrics are immutable after construction, so one Fabric value may be
// shared read-only across the per-node engines of a sharded cluster.
package topology

import (
	"fmt"
	"sort"
	"time"
)

// LinkKind classifies the interconnect joining a GPU pair.
type LinkKind int

const (
	// PCIe is the default host tree every pair can reach.
	PCIe LinkKind = iota
	// NVLink is a direct high-bandwidth point-to-point link.
	NVLink
)

// String returns the canonical name of the link kind.
func (k LinkKind) String() string {
	if k == NVLink {
		return "nvlink"
	}
	return "pcie"
}

// Modeled defaults. PCIe 3.0 x16 sustains ~11.3 GB/s (the paper's
// measured peer path); a V100-generation NVLink pair sustains ~48 GB/s.
const (
	DefaultPCIeGBps   = 11.3
	DefaultNVLinkGBps = 48.0
	// DefaultHopLatency is the alpha term: per-hop link/launch latency of
	// one ring step.
	DefaultHopLatency = 5 * time.Microsecond
)

// Fabric is the interconnect of one machine's GPU set: a symmetric
// bandwidth/kind matrix plus the per-hop latency term. Build one with
// NewPCIe or NVLinkIslands, customize with ConnectNVLink, then treat it
// as read-only.
type Fabric struct {
	n    int
	hop  time.Duration
	gbps [][]float64
	kind [][]LinkKind
}

// NewPCIe builds an n-GPU fabric where every pair shares the PCIe tree
// at the given bandwidth (gbps <= 0 selects DefaultPCIeGBps).
func NewPCIe(n int, gbps float64) *Fabric {
	if n < 0 {
		n = 0
	}
	if gbps <= 0 {
		gbps = DefaultPCIeGBps
	}
	f := &Fabric{n: n, hop: DefaultHopLatency}
	f.gbps = make([][]float64, n)
	f.kind = make([][]LinkKind, n)
	for i := 0; i < n; i++ {
		f.gbps[i] = make([]float64, n)
		f.kind[i] = make([]LinkKind, n)
		for j := 0; j < n; j++ {
			if i != j {
				f.gbps[i][j] = gbps
			}
		}
	}
	return f
}

// NVLinkIslands builds an n-GPU fabric partitioned into contiguous
// NVLink islands of the given size: GPUs [0,island), [island,2*island),
// ... are fully NVLink-connected within their island; every cross-island
// pair rides PCIe. island <= 1 degenerates to NewPCIe. Bandwidths <= 0
// select the package defaults.
func NVLinkIslands(n, island int, pcieGBps, nvlinkGBps float64) *Fabric {
	f := NewPCIe(n, pcieGBps)
	if island <= 1 {
		return f
	}
	if nvlinkGBps <= 0 {
		nvlinkGBps = DefaultNVLinkGBps
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n && b/island == a/island; b++ {
			f.ConnectNVLink(a, b, nvlinkGBps)
		}
	}
	return f
}

// ConnectNVLink joins GPUs a and b with a symmetric NVLink of the given
// bandwidth (gbps <= 0 selects DefaultNVLinkGBps). Call only during
// construction, before the fabric is shared.
func (f *Fabric) ConnectNVLink(a, b int, gbps float64) {
	if a < 0 || b < 0 || a >= f.n || b >= f.n || a == b {
		return
	}
	if gbps <= 0 {
		gbps = DefaultNVLinkGBps
	}
	f.gbps[a][b], f.gbps[b][a] = gbps, gbps
	f.kind[a][b], f.kind[b][a] = NVLink, NVLink
}

// SetHopLatency overrides the alpha term. Call only during construction.
func (f *Fabric) SetHopLatency(d time.Duration) {
	if d >= 0 {
		f.hop = d
	}
}

// Size returns the number of GPUs the fabric spans.
func (f *Fabric) Size() int { return f.n }

// HopLatency returns the alpha term of one ring step.
func (f *Fabric) HopLatency() time.Duration { return f.hop }

// Bandwidth returns the link bandwidth between GPUs a and b in GB/s;
// zero for out-of-range or identical indices.
func (f *Fabric) Bandwidth(a, b int) float64 {
	if a < 0 || b < 0 || a >= f.n || b >= f.n || a == b {
		return 0
	}
	return f.gbps[a][b]
}

// Kind returns the link kind between GPUs a and b (PCIe for
// out-of-range or identical indices).
func (f *Fabric) Kind(a, b int) LinkKind {
	if a < 0 || b < 0 || a >= f.n || b >= f.n || a == b {
		return PCIe
	}
	return f.kind[a][b]
}

// NVLinkContiguous reports whether the canonical ring over gpus (the
// ascending-index cycle) runs entirely on NVLink — the slot shape the
// gang placer prefers.
func (f *Fabric) NVLinkContiguous(gpus []int) bool {
	if len(gpus) < 2 {
		return true
	}
	ring := canonicalRing(gpus)
	for i := range ring {
		if f.Kind(ring[i], ring[(i+1)%len(ring)]) != NVLink {
			return false
		}
	}
	return true
}

// RingAllReduceTime prices a synchronous ring all-reduce of bytes over
// the ring visiting the GPUs in the given cyclic order: 2(N-1) steps,
// each costing hop latency plus a bytes/N chunk over the slowest link of
// the ring (including the wrap-around link). A ring of fewer than two
// GPUs, or a non-positive byte count, costs nothing. Unknown GPU indices
// make the ring unpriceable and return an error.
func (f *Fabric) RingAllReduceTime(ring []int, bytes int64) (time.Duration, error) {
	n := len(ring)
	if n < 2 || bytes <= 0 {
		return 0, nil
	}
	minGBps := 0.0
	for i := range ring {
		bw := f.Bandwidth(ring[i], ring[(i+1)%n])
		if bw <= 0 {
			return 0, fmt.Errorf("topology: no link gpu:%d -> gpu:%d", ring[i], ring[(i+1)%n])
		}
		if minGBps == 0 || bw < minGBps {
			minGBps = bw
		}
	}
	chunk := float64(bytes) / float64(n)
	perStep := f.hop + time.Duration(chunk/(minGBps*1e9)*float64(time.Second))
	return time.Duration(2*(n-1)) * perStep, nil
}

// RingCost prices the all-reduce over the canonical (ascending-index)
// ring of the given GPU set — the deterministic order every layer of the
// stack uses, so placement decisions and runtime step costs agree.
func (f *Fabric) RingCost(gpus []int, bytes int64) (time.Duration, error) {
	return f.RingAllReduceTime(canonicalRing(gpus), bytes)
}

// BestSlot chooses the size-k subset of the candidate GPUs whose
// canonical ring prices the all-reduce cheapest — the topology-aware
// gang bin-packing primitive. Candidates are deduplicated; ties break
// toward the lexicographically smallest subset (in ascending candidate
// order), so the choice is deterministic. ok is false when fewer than k
// distinct candidates exist or no subset prices successfully.
func (f *Fabric) BestSlot(candidates []int, k int, bytes int64) (slot []int, cost time.Duration, ok bool) {
	cands := canonicalRing(candidates)
	if k <= 0 || len(cands) < k {
		return nil, 0, false
	}
	pick := make([]int, 0, k)
	var walk func(start int)
	walk = func(start int) {
		if len(pick) == k {
			c, err := f.RingCost(pick, bytes)
			if err != nil {
				return
			}
			// Strict <: the first (lexicographically smallest) subset wins
			// ties.
			if !ok || c < cost {
				slot = append(slot[:0], pick...)
				cost, ok = c, true
			}
			return
		}
		for i := start; i <= len(cands)-(k-len(pick)); i++ {
			pick = append(pick, cands[i])
			walk(i + 1)
			pick = pick[:len(pick)-1]
		}
	}
	walk(0)
	return slot, cost, ok
}

// canonicalRing sorts and deduplicates a GPU set into the canonical
// ascending-index ring order.
func canonicalRing(gpus []int) []int {
	out := make([]int, 0, len(gpus))
	out = append(out, gpus...)
	sort.Ints(out)
	dedup := out[:0]
	for i, g := range out {
		if i == 0 || g != out[i-1] {
			dedup = append(dedup, g)
		}
	}
	return dedup
}
