package models

import "strconv"

// Approximate builders for architectures whose exact cell structure is
// impractical to restate (Inception, NASNet): a stem + a pyramid of conv/BN
// stages whose parameter and FLOP totals are calibrated to the published
// Keras numbers. The layer-count and variable-count structure matches the
// real networks closely enough to reproduce Table 1's per-tensor transfer
// overheads, and the activation pyramid reproduces the memory behaviour.

// approxParams groups the calibration targets of an approximated CNN.
type approxParams struct {
	name        string
	input       int   // square input resolution
	convs       int   // convolution count (each followed by BN)
	stages      int   // spatial halvings across the body
	totalParams int64 // published trainable parameter count
	totalFLOPs  float64
	classifier  int   // classifier input width
	actPerImage int64 // total fp32 activation bytes per image
}

// InceptionV3 approximates the 94-conv Inception v3 (input 299).
func InceptionV3() *Spec {
	return approxCNN(approxParams{
		name:        "InceptionV3",
		input:       299,
		convs:       94,
		stages:      5,
		totalParams: 23_851_784,
		totalFLOPs:  11.4e9,
		classifier:  2048,
		actPerImage: 100 << 20,
	})
}

// InceptionResNetV2 approximates the 244-conv Inception-ResNet v2.
func InceptionResNetV2() *Spec {
	return approxCNN(approxParams{
		name:        "InceptionResNetV2",
		input:       299,
		convs:       224,
		stages:      5,
		totalParams: 55_873_736,
		totalFLOPs:  26.4e9,
		classifier:  1536,
		actPerImage: 180 << 20,
	})
}

// NASNetLarge approximates NASNet-A Large (input 331).
func NASNetLarge() *Spec {
	return approxCNN(approxParams{
		name:        "NASNetLarge",
		input:       331,
		convs:       268,
		stages:      5,
		totalParams: 88_949_818,
		totalFLOPs:  47.6e9,
		classifier:  4032,
		actPerImage: 200 << 20,
	})
}

// NASNetMobile approximates NASNet-A Mobile.
func NASNetMobile() *Spec {
	return approxCNN(approxParams{
		name:        "NASNetMobile",
		input:       224,
		convs:       188,
		stages:      5,
		totalParams: 5_326_716,
		totalFLOPs:  1.13e9,
		classifier:  1056,
		actPerImage: 60 << 20,
	})
}

func approxCNN(p approxParams) *Spec {
	var layers []Layer

	// Distribute parameters across convs proportional to depth squared
	// (channel counts grow with depth), FLOPs uniformly with a mild
	// ramp-down (spatial shrinkage offsets channel growth), and
	// activations decaying with depth (early layers dominate memory).
	paramWeights := make([]float64, p.convs)
	flopWeights := make([]float64, p.convs)
	actWeights := make([]float64, p.convs)
	var paramSum, flopSum, actSum float64
	for i := range paramWeights {
		depth := float64(i+1) / float64(p.convs)
		paramWeights[i] = depth * depth
		flopWeights[i] = 1.2 - 0.4*depth
		actWeights[i] = 1.5 - depth
		paramSum += paramWeights[i]
		flopSum += flopWeights[i]
		actSum += actWeights[i]
	}

	// Reserve the classifier's share first.
	fcParams := int64(p.classifier*1000 + 1000)
	fcFLOPs := 2 * float64(p.classifier) * 1000
	bodyParams := p.totalParams - fcParams
	bodyFLOPs := p.totalFLOPs - fcFLOPs

	// BN layers take 4 variables each and a small parameter share.
	const bnParamsPerConv = 256 // ~4 x avg channels / conv, folded in

	for i := 0; i < p.convs; i++ {
		convParams := int64(paramWeights[i] / paramSum * float64(bodyParams))
		if convParams < bnParamsPerConv {
			convParams = bnParamsPerConv
		}
		convFLOPs := flopWeights[i] / flopSum * float64(bodyFLOPs)
		// The conv+bn pair shares the layer's activation budget.
		actBytes := int64(actWeights[i] / actSum * float64(p.actPerImage) / 2)
		layers = append(layers,
			Layer{
				Name:     layerName("conv", i),
				Kind:     LConv,
				FLOPs:    convFLOPs * 0.96,
				Params:   convParams - bnParamsPerConv,
				Vars:     1,
				ActBytes: actBytes,
			},
			Layer{
				Name:  layerName("bn", i),
				Kind:  LBatchNorm,
				FLOPs: convFLOPs * 0.04,
				// Inception/NASNet-family BatchNorms carry no gamma in
				// Keras: beta, moving mean, moving variance only.
				Params:   bnParamsPerConv,
				Vars:     3,
				ActBytes: actBytes,
			},
		)
	}
	layers = append(layers,
		Layer{Name: "gap", Kind: LPool, FLOPs: float64(p.classifier) * 64, ActBytes: int64(p.classifier) * 4},
		Layer{Name: "fc", Kind: LDense, FLOPs: fcFLOPs, Params: fcParams, Vars: 2, ActBytes: 4000},
		Layer{Name: "softmax", Kind: LSoftmax, FLOPs: 5000, ActBytes: 4000},
	)
	return &Spec{
		Name:        p.name,
		InputH:      p.input,
		InputW:      p.input,
		InputC:      3,
		Classes:     1000,
		Layers:      layers,
		Approximate: true,
	}
}

func layerName(prefix string, i int) string {
	return prefix + "_" + strconv.Itoa(i+1)
}
