package models

import (
	"math"
	"testing"
)

// Published Keras parameter counts (keras.applications, ImageNet heads).
var kerasParams = map[string]int64{
	"ResNet50":          25_636_712,
	"VGG16":             138_357_544,
	"VGG19":             143_667_240,
	"DenseNet121":       8_062_504,
	"DenseNet169":       14_307_880,
	"InceptionV3":       23_851_784,
	"InceptionResNetV2": 55_873_736,
	"MobileNet":         4_253_864,
	"MobileNetV2":       3_538_984,
	"NASNetLarge":       88_949_818,
	"NASNetMobile":      5_326_716,
}

func TestParamCountsMatchKeras(t *testing.T) {
	for name, want := range kerasParams {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			got := spec.ParamCount()
			tolerance := 0.05
			if spec.Approximate {
				tolerance = 0.02 // approximations are calibrated, not derived
			}
			if ratio := math.Abs(float64(got-want)) / float64(want); ratio > tolerance {
				t.Errorf("ParamCount() = %d, Keras %d (off by %.1f%%)",
					got, want, ratio*100)
			}
		})
	}
}

func TestStatefulBytesMatchTable1(t *testing.T) {
	// Table 1 "Stateful Variables (MiB)" = weights + one optimizer slot.
	table1 := map[string]float64{
		"ResNet50":          198.53,
		"VGG16":             1055.58,
		"VGG19":             1096.09,
		"DenseNet121":       64.83,
		"DenseNet169":       108.61,
		"InceptionResNetV2": 426.18,
		"InceptionV3":       182.00,
		"MobileNetV2":       27.25,
	}
	for name, wantMiB := range table1 {
		name, wantMiB := name, wantMiB
		t.Run(name, func(t *testing.T) {
			spec, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			gotMiB := float64(spec.StatefulBytes()) / (1 << 20)
			if ratio := gotMiB / wantMiB; ratio < 0.93 || ratio > 1.07 {
				t.Errorf("StatefulBytes = %.2f MiB, Table 1 says %.2f (ratio %.3f)",
					gotMiB, wantMiB, ratio)
			}
		})
	}
}

func TestWeightVarsPlausible(t *testing.T) {
	// Variable counts drive Table 1's per-tensor overhead; check the
	// models whose counts we fitted (see DESIGN.md §3.5).
	tests := []struct {
		model    string
		min, max int
	}{
		{"VGG16", 30, 34},
		{"VGG19", 36, 40},
		{"ResNet50", 260, 330},
		{"DenseNet121", 540, 650},
		{"MobileNetV2", 220, 290},
	}
	for _, tt := range tests {
		spec, err := ByName(tt.model)
		if err != nil {
			t.Fatal(err)
		}
		if got := spec.WeightVars(); got < tt.min || got > tt.max {
			t.Errorf("%s WeightVars() = %d, want in [%d, %d]", tt.model, got, tt.min, tt.max)
		}
	}
}

func TestForwardFLOPsPlausible(t *testing.T) {
	// Published forward GFLOPs (2 x MACs) at the standard resolutions.
	tests := []struct {
		model string
		want  float64 // GFLOPs
	}{
		{"ResNet50", 7.7},
		{"VGG16", 30.9},
		{"VGG19", 39.0},
		{"DenseNet121", 5.7},
		{"MobileNetV2", 0.61},
	}
	for _, tt := range tests {
		spec, err := ByName(tt.model)
		if err != nil {
			t.Fatal(err)
		}
		got := spec.ForwardFLOPs() / 1e9
		if ratio := got / tt.want; ratio < 0.75 || ratio > 1.3 {
			t.Errorf("%s ForwardFLOPs = %.2f GF, want ~%.2f", tt.model, got, tt.want)
		}
	}
}

func TestModelOrderingSanity(t *testing.T) {
	// Relative intensity must hold: the figures depend on which models are
	// heavy vs light.
	flops := func(name string) float64 {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return spec.ForwardFLOPs()
	}
	if !(flops("VGG16") > flops("ResNet50")) {
		t.Error("VGG16 should be heavier than ResNet50")
	}
	if !(flops("ResNet50") > flops("MobileNetV2")) {
		t.Error("ResNet50 should be heavier than MobileNetV2")
	}
	if !(flops("NASNetLarge") > flops("NASNetMobile")*10) {
		t.Error("NASNetLarge should dwarf NASNetMobile")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("AlexNet"); err == nil {
		t.Fatal("ByName(AlexNet) should fail")
	}
}

func TestNamesAndCNNs(t *testing.T) {
	if got := len(Names()); got != 12 {
		t.Fatalf("Names() has %d models, want 12", got)
	}
	cnns := CNNs()
	if len(cnns) != 11 {
		t.Fatalf("CNNs() has %d models, want 11", len(cnns))
	}
	for _, spec := range cnns {
		if spec.SeqLen != 0 {
			t.Errorf("CNN %s has SeqLen %d", spec.Name, spec.SeqLen)
		}
	}
}

func TestNMTStructure(t *testing.T) {
	nmt := NMT()
	if nmt.SeqLen != 30 {
		t.Fatalf("NMT SeqLen = %d, want 30", nmt.SeqLen)
	}
	lstm := 0
	for _, l := range nmt.Layers {
		if l.Kind == LLSTMCell {
			lstm++
		}
	}
	// 2 sides x 2 layers x 30 steps.
	if lstm != 120 {
		t.Fatalf("NMT has %d LSTM cell layers, want 120", lstm)
	}
	// Params ~ embeddings (32.8M) + cells (8.4M) + attn + projection (16.4M).
	params := float64(nmt.ParamCount()) / 1e6
	if params < 50 || params > 65 {
		t.Fatalf("NMT params = %.1fM, want 50-65M", params)
	}
}

func TestActivationBytesOrdering(t *testing.T) {
	// NASNetLarge's huge activations are what OOMs 11 GB GPUs in Figure 7.
	nas, _ := ByName("NASNetLarge")
	mob, _ := ByName("MobileNetV2")
	if nas.ActivationBytes() < 2*mob.ActivationBytes() {
		t.Errorf("NASNetLarge activations (%d) should dwarf MobileNetV2 (%d)",
			nas.ActivationBytes(), mob.ActivationBytes())
	}
}

func TestIntermediateBytesTrainingDominates(t *testing.T) {
	spec, _ := ByName("ResNet50")
	train := spec.IntermediateBytes(32, true)
	infer := spec.IntermediateBytes(32, false)
	if train <= infer {
		t.Fatalf("training intermediate (%d) must exceed inference (%d)", train, infer)
	}
	// §5.2.3: weights are <10% of total training memory for large batches.
	if float64(spec.StatefulBytes()) > 0.25*float64(train) {
		t.Errorf("weights (%d) should be small next to intermediate (%d)",
			spec.StatefulBytes(), train)
	}
}
