// Package models provides the DNN zoo the paper evaluates (§5.1): eleven
// Keras CNNs and one NMT model. Models are described layer by layer with
// forward FLOPs, parameter counts, weight-variable counts, and activation
// sizes; graph builders turn a spec into an inference or training
// computation graph placed across CPU and GPU.
//
// VGG, ResNet, DenseNet and MobileNet builders follow the published
// architectures exactly; Inception and NASNet builders are documented
// structural approximations calibrated to the published parameter counts
// and FLOPs (see DESIGN.md §5).
package models

import (
	"fmt"
	"sort"
)

// FLOPs are counted as 2 x multiply-accumulates throughout.

// Layer describes one logical layer of a model.
type Layer struct {
	// Name labels the layer, e.g. "conv3_2".
	Name string
	// Kind is the layer's operation family (a graph.OpType value; kept as
	// its own type here to avoid exporting graph internals in the zoo).
	Kind LayerKind
	// FLOPs is the forward floating-point work per image (or per sequence
	// for the NMT model).
	FLOPs float64
	// Params is the number of trainable parameters (floats).
	Params int64
	// Vars is the number of weight variables (tensors) the layer owns:
	// 1 for an unbiased conv, 2 for conv+bias or dense, 4 for batch norm.
	// This drives the per-tensor transfer overhead of Table 1.
	Vars int
	// ActBytes is the output activation size per image in bytes (fp32).
	ActBytes int64
}

// LayerKind enumerates the layer families used by the zoo.
type LayerKind int

// Layer kinds.
const (
	LConv LayerKind = iota + 1
	LDepthwiseConv
	LDense
	LBatchNorm
	LActivation
	LPool
	LAdd
	LConcat
	LSoftmax
	LEmbedding
	LLSTMCell
	LAttention
)

// Spec is a complete model description.
type Spec struct {
	// Name is the canonical model name, e.g. "ResNet50".
	Name string
	// InputH, InputW, InputC is the input image shape (ignored for NMT).
	InputH, InputW, InputC int
	// Classes is the classifier output width.
	Classes int
	// Layers in forward order.
	Layers []Layer
	// SeqLen is the sequence length for recurrent models (0 for CNNs).
	SeqLen int
	// Approximate is true for structurally approximated models
	// (Inception, NASNet, NMT) whose totals are calibrated to published
	// numbers rather than derived.
	Approximate bool
}

// ParamCount returns total trainable parameters.
func (s *Spec) ParamCount() int64 {
	var total int64
	for _, l := range s.Layers {
		total += l.Params
	}
	return total
}

// ParamBytes returns the fp32 weight footprint.
func (s *Spec) ParamBytes() int64 { return s.ParamCount() * 4 }

// StatefulBytes returns the cross-iteration state a training job must
// preserve: fp32 weights plus one optimizer slot (SGD momentum). This is
// the "Stateful Variables" column of Table 1.
func (s *Spec) StatefulBytes() int64 { return s.ParamCount() * 8 }

// WeightVars returns the number of weight variables (tensors).
func (s *Spec) WeightVars() int {
	total := 0
	for _, l := range s.Layers {
		total += l.Vars
	}
	return total
}

// ForwardFLOPs returns forward work per image.
func (s *Spec) ForwardFLOPs() float64 {
	var total float64
	for _, l := range s.Layers {
		total += l.FLOPs
	}
	return total
}

// ActivationBytes returns the total activation footprint per image, which
// dominates training memory (§5.2.3: intermediate data dwarfs weights).
func (s *Spec) ActivationBytes() int64 {
	var total int64
	for _, l := range s.Layers {
		total += l.ActBytes
	}
	return total
}

// InputBytes returns the fp32 input tensor size per image.
func (s *Spec) InputBytes() int64 {
	if s.SeqLen > 0 {
		return int64(s.SeqLen) * 4 // token ids
	}
	return int64(s.InputH*s.InputW*s.InputC) * 4
}

// layerBuilder accumulates layers with shape tracking for the exact CNNs.
type layerBuilder struct {
	layers  []Layer
	h, w, c int
	idx     int
}

func newBuilder(h, w, c int) *layerBuilder {
	return &layerBuilder{h: h, w: w, c: c}
}

func (b *layerBuilder) name(prefix string) string {
	b.idx++
	return fmt.Sprintf("%s_%d", prefix, b.idx)
}

// conv adds a KxK convolution with the given output channels and stride.
// bias controls whether a bias variable is added (VGG style).
func (b *layerBuilder) conv(cout, k, stride int, bias bool) {
	b.h = ceilDiv(b.h, stride)
	b.w = ceilDiv(b.w, stride)
	macs := float64(k*k*b.c*cout) * float64(b.h*b.w)
	params := int64(k * k * b.c * cout)
	vars := 1
	if bias {
		params += int64(cout)
		vars = 2
	}
	b.layers = append(b.layers, Layer{
		Name:     b.name("conv"),
		Kind:     LConv,
		FLOPs:    2 * macs,
		Params:   params,
		Vars:     vars,
		ActBytes: int64(b.h*b.w*cout) * 4,
	})
	b.c = cout
}

// dwConv adds a depthwise KxK convolution over the current channels.
func (b *layerBuilder) dwConv(k, stride int) {
	b.h = ceilDiv(b.h, stride)
	b.w = ceilDiv(b.w, stride)
	macs := float64(k*k*b.c) * float64(b.h*b.w)
	b.layers = append(b.layers, Layer{
		Name:     b.name("dwconv"),
		Kind:     LDepthwiseConv,
		FLOPs:    2 * macs,
		Params:   int64(k * k * b.c),
		Vars:     1,
		ActBytes: int64(b.h*b.w*b.c) * 4,
	})
}

// bn adds batch normalization over the current channels (4 variables:
// gamma, beta, moving mean, moving variance).
func (b *layerBuilder) bn() {
	b.layers = append(b.layers, Layer{
		Name:     b.name("bn"),
		Kind:     LBatchNorm,
		FLOPs:    4 * float64(b.h*b.w*b.c),
		Params:   int64(4 * b.c),
		Vars:     4,
		ActBytes: int64(b.h*b.w*b.c) * 4,
	})
}

// relu adds an activation.
func (b *layerBuilder) relu() {
	b.layers = append(b.layers, Layer{
		Name:     b.name("relu"),
		Kind:     LActivation,
		FLOPs:    float64(b.h * b.w * b.c),
		ActBytes: int64(b.h*b.w*b.c) * 4,
	})
}

// pool adds a KxK pooling with the given stride.
func (b *layerBuilder) pool(k, stride int) {
	b.h = ceilDiv(b.h, stride)
	b.w = ceilDiv(b.w, stride)
	b.layers = append(b.layers, Layer{
		Name:     b.name("pool"),
		Kind:     LPool,
		FLOPs:    float64(k*k) * float64(b.h*b.w*b.c),
		ActBytes: int64(b.h*b.w*b.c) * 4,
	})
}

// globalPool collapses spatial dims.
func (b *layerBuilder) globalPool() {
	b.layers = append(b.layers, Layer{
		Name:     b.name("gap"),
		Kind:     LPool,
		FLOPs:    float64(b.h * b.w * b.c),
		ActBytes: int64(b.c) * 4,
	})
	b.h, b.w = 1, 1
}

// add models a residual merge.
func (b *layerBuilder) add() {
	b.layers = append(b.layers, Layer{
		Name:     b.name("add"),
		Kind:     LAdd,
		FLOPs:    float64(b.h * b.w * b.c),
		ActBytes: int64(b.h*b.w*b.c) * 4,
	})
}

// concatTo models a channel concatenation growing to cout channels.
func (b *layerBuilder) concatTo(cout int) {
	b.c = cout
	b.layers = append(b.layers, Layer{
		Name:     b.name("concat"),
		Kind:     LConcat,
		ActBytes: int64(b.h*b.w*b.c) * 4,
	})
}

// flattenTo reinterprets the activation as a vector of n features.
func (b *layerBuilder) flattenTo(n int) {
	b.h, b.w, b.c = 1, 1, n
}

// dense adds a fully connected layer (weights + bias).
func (b *layerBuilder) dense(out int) {
	in := b.h * b.w * b.c
	b.layers = append(b.layers, Layer{
		Name:     b.name("fc"),
		Kind:     LDense,
		FLOPs:    2 * float64(in*out),
		Params:   int64(in*out + out),
		Vars:     2,
		ActBytes: int64(out) * 4,
	})
	b.h, b.w, b.c = 1, 1, out
}

// softmax adds the classifier head activation.
func (b *layerBuilder) softmax() {
	b.layers = append(b.layers, Layer{
		Name:     b.name("softmax"),
		Kind:     LSoftmax,
		FLOPs:    5 * float64(b.c),
		ActBytes: int64(b.c) * 4,
	})
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// sortedNames returns zoo names in stable order, for CLIs and tests.
func sortedNames(m map[string]func() *Spec) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
