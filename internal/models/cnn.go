package models

// Exact-structure builders: VGG, ResNet, DenseNet, MobileNet. Parameter
// totals are asserted against the published Keras counts in tests.

// VGG16 builds the 16-layer VGG network (Simonyan & Zisserman).
func VGG16() *Spec {
	return vgg("VGG16", []int{2, 2, 3, 3, 3})
}

// VGG19 builds the 19-layer VGG network.
func VGG19() *Spec {
	return vgg("VGG19", []int{2, 2, 4, 4, 4})
}

func vgg(name string, convsPerStage []int) *Spec {
	b := newBuilder(224, 224, 3)
	channels := []int{64, 128, 256, 512, 512}
	for stage, convs := range convsPerStage {
		for i := 0; i < convs; i++ {
			b.conv(channels[stage], 3, 1, true)
			b.relu()
		}
		b.pool(2, 2)
	}
	b.flattenTo(7 * 7 * 512)
	b.dense(4096)
	b.relu()
	b.dense(4096)
	b.relu()
	b.dense(1000)
	b.softmax()
	return &Spec{
		Name: name, InputH: 224, InputW: 224, InputC: 3, Classes: 1000,
		Layers: b.layers,
	}
}

// ResNet50 builds the 50-layer residual network (He et al.).
func ResNet50() *Spec {
	b := newBuilder(224, 224, 3)
	b.conv(64, 7, 2, true)
	b.bn()
	b.relu()
	b.pool(3, 2)
	stages := []struct {
		blocks, width, stride int
	}{
		{3, 64, 1},
		{4, 128, 2},
		{6, 256, 2},
		{3, 512, 2},
	}
	for _, st := range stages {
		for blk := 0; blk < st.blocks; blk++ {
			stride := 1
			if blk == 0 {
				stride = st.stride
			}
			bottleneck(b, st.width, stride, blk == 0)
		}
	}
	b.globalPool()
	b.dense(1000)
	b.softmax()
	return &Spec{
		Name: "ResNet50", InputH: 224, InputW: 224, InputC: 3, Classes: 1000,
		Layers: b.layers,
	}
}

// bottleneck appends a ResNet bottleneck block: 1x1 reduce, 3x3, 1x1
// expand (4x width), each with BN, plus a projection shortcut on the first
// block of a stage.
func bottleneck(b *layerBuilder, width, stride int, project bool) {
	inC := b.c
	inH, inW := b.h, b.w
	b.conv(width, 1, stride, true)
	b.bn()
	b.relu()
	b.conv(width, 3, 1, true)
	b.bn()
	b.relu()
	b.conv(4*width, 1, 1, true)
	b.bn()
	if project {
		// Projection shortcut runs in parallel with the main path; model
		// its cost as extra layers on the chain.
		side := newBuilder(inH, inW, inC)
		side.conv(4*width, 1, stride, true)
		side.bn()
		for i := range side.layers {
			side.layers[i].Name = "short_" + side.layers[i].Name
		}
		b.layers = append(b.layers, side.layers...)
	}
	b.add()
	b.relu()
}

// DenseNet121 builds DenseNet-BC-121 (growth 32, compression 0.5).
func DenseNet121() *Spec {
	return denseNet("DenseNet121", []int{6, 12, 24, 16})
}

// DenseNet169 builds DenseNet-BC-169.
func DenseNet169() *Spec {
	return denseNet("DenseNet169", []int{6, 12, 32, 32})
}

func denseNet(name string, blockConfig []int) *Spec {
	const growth = 32
	b := newBuilder(224, 224, 3)
	b.conv(2*growth, 7, 2, false)
	b.bn()
	b.relu()
	b.pool(3, 2)
	for stage, layers := range blockConfig {
		for i := 0; i < layers; i++ {
			denseLayer(b, growth)
		}
		if stage < len(blockConfig)-1 {
			// Transition: BN + 1x1 conv halving channels + 2x2 avg pool.
			b.bn()
			b.relu()
			b.conv(b.c/2, 1, 1, false)
			b.pool(2, 2)
		}
	}
	b.bn()
	b.relu()
	b.globalPool()
	b.dense(1000)
	b.softmax()
	return &Spec{
		Name: name, InputH: 224, InputW: 224, InputC: 3, Classes: 1000,
		Layers: b.layers,
	}
}

// denseLayer appends one DenseNet-BC layer: BN-ReLU-1x1(4k)-BN-ReLU-3x3(k)
// and concatenates the k new channels onto the running feature map.
func denseLayer(b *layerBuilder, growth int) {
	inC := b.c
	b.bn()
	b.relu()
	b.conv(4*growth, 1, 1, false)
	b.bn()
	b.relu()
	b.conv(growth, 3, 1, false)
	b.concatTo(inC + growth)
}

// MobileNet builds MobileNet v1 (alpha=1).
func MobileNet() *Spec {
	b := newBuilder(224, 224, 3)
	b.conv(32, 3, 2, false)
	b.bn()
	b.relu()
	cfg := []struct{ cout, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1}, {512, 2},
		{512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1}, {1024, 2}, {1024, 1},
	}
	for _, c := range cfg {
		b.dwConv(3, c.stride)
		b.bn()
		b.relu()
		b.conv(c.cout, 1, 1, false)
		b.bn()
		b.relu()
	}
	b.globalPool()
	b.dense(1000)
	b.softmax()
	return &Spec{
		Name: "MobileNet", InputH: 224, InputW: 224, InputC: 3, Classes: 1000,
		Layers: b.layers,
	}
}

// MobileNetV2 builds MobileNet v2 (alpha=1, inverted residuals).
func MobileNetV2() *Spec {
	b := newBuilder(224, 224, 3)
	b.conv(32, 3, 2, false)
	b.bn()
	b.relu()
	cfg := []struct{ expand, cout, repeat, stride int }{
		{1, 16, 1, 1},
		{6, 24, 2, 2},
		{6, 32, 3, 2},
		{6, 64, 4, 2},
		{6, 96, 3, 1},
		{6, 160, 3, 2},
		{6, 320, 1, 1},
	}
	for _, c := range cfg {
		for i := 0; i < c.repeat; i++ {
			stride := 1
			if i == 0 {
				stride = c.stride
			}
			invertedResidual(b, c.expand, c.cout, stride)
		}
	}
	b.conv(1280, 1, 1, false)
	b.bn()
	b.relu()
	b.globalPool()
	b.dense(1000)
	b.softmax()
	return &Spec{
		Name: "MobileNetV2", InputH: 224, InputW: 224, InputC: 3, Classes: 1000,
		Layers: b.layers,
	}
}

// invertedResidual appends an MBConv block: 1x1 expand, 3x3 depthwise,
// 1x1 linear project, with a residual add when shapes match.
func invertedResidual(b *layerBuilder, expand, cout, stride int) {
	inC := b.c
	if expand != 1 {
		b.conv(inC*expand, 1, 1, false)
		b.bn()
		b.relu()
	}
	b.dwConv(3, stride)
	b.bn()
	b.relu()
	b.conv(cout, 1, 1, false)
	b.bn()
	if stride == 1 && inC == cout {
		b.add()
	}
}
