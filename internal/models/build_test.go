package models

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/graph"
)

func TestBuildInferenceGraph(t *testing.T) {
	spec, err := ByName("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(BuildConfig{Batch: 32, Device: device.GPUID(0)})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 32 preprocess shards + iterator + one node per layer.
	want := 32 + 1 + len(spec.Layers)
	if g.Len() != want {
		t.Fatalf("graph has %d nodes, want %d", g.Len(), want)
	}
	// Params preserved through the build.
	if got := g.ParamBytes(); got != spec.ParamBytes() {
		t.Fatalf("graph ParamBytes = %d, spec %d", got, spec.ParamBytes())
	}
	if got := g.WeightTensors(); got != spec.WeightVars() {
		t.Fatalf("graph WeightTensors = %d, spec WeightVars %d", got, spec.WeightVars())
	}
}

func TestBuildTrainingGraphAddsBackward(t *testing.T) {
	spec, _ := ByName("MobileNetV2")
	infer, err := spec.Build(BuildConfig{Batch: 8, Device: device.GPUID(0)})
	if err != nil {
		t.Fatal(err)
	}
	train, err := spec.Build(BuildConfig{Batch: 8, Training: true, Device: device.GPUID(0)})
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() <= infer.Len() {
		t.Fatalf("training graph (%d nodes) not larger than inference (%d)",
			train.Len(), infer.Len())
	}
	// Training ~ 3x forward FLOPs (fwd + 2x bwd), plus updates.
	ratio := train.TotalFLOPs() / infer.TotalFLOPs()
	if ratio < 2.8 || ratio > 3.6 {
		t.Fatalf("train/infer FLOPs ratio = %.2f, want ~3", ratio)
	}
}

func TestBuildPartitionsIntoCPUAndGPU(t *testing.T) {
	spec, _ := ByName("VGG16")
	g, err := spec.Build(BuildConfig{Batch: 16, Device: device.GPUID(1)})
	if err != nil {
		t.Fatal(err)
	}
	subs, err := graph.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d subgraphs, want 2", len(subs))
	}
	if subs[0].Device != device.CPUID || subs[1].Device != device.GPUID(1) {
		t.Fatalf("subgraphs on %v and %v", subs[0].Device, subs[1].Device)
	}
	// All weights live on the GPU side.
	if got := subs[1].ParamBytes(); got != spec.ParamBytes() {
		t.Fatalf("GPU subgraph params = %d, want %d", got, spec.ParamBytes())
	}
}

func TestBuildAllCPUGraphHasSingleSubgraph(t *testing.T) {
	spec, _ := ByName("ResNet50")
	g, err := spec.Build(BuildConfig{Batch: 4, Training: true, Device: device.CPUID})
	if err != nil {
		t.Fatal(err)
	}
	subs, err := graph.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].Device != device.CPUID {
		t.Fatalf("CPU-only build produced %d subgraphs", len(subs))
	}
}

func TestBuildShardCPUTimeCoversBatch(t *testing.T) {
	spec, _ := ByName("ResNet50")
	perImage := 10 * time.Millisecond
	g, err := spec.Build(BuildConfig{
		Batch: 100, PreprocShards: 8, PerImageCPU: perImage,
		Device: device.GPUID(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	shards := 0
	for _, n := range g.Nodes() {
		if n.Op == graph.OpPreprocess {
			total += n.CPUTime
			shards++
		}
	}
	if shards != 8 {
		t.Fatalf("got %d shards, want 8", shards)
	}
	if want := 100 * perImage; total != want {
		t.Fatalf("total shard CPU time = %v, want %v", total, want)
	}
}

func TestBuildRejectsZeroBatch(t *testing.T) {
	spec, _ := ByName("ResNet50")
	if _, err := spec.Build(BuildConfig{Batch: 0, Device: device.GPUID(0)}); err == nil {
		t.Fatal("Build with batch 0 should fail")
	}
}

func TestDefaultPerImageCPUScalesWithResolution(t *testing.T) {
	small := DefaultPerImageCPU(224, 224)
	large := DefaultPerImageCPU(331, 331)
	if large <= small {
		t.Fatalf("331px cost %v not above 224px cost %v", large, small)
	}
	if small != 100*time.Millisecond {
		t.Fatalf("base cost = %v, want 100ms", small)
	}
}
