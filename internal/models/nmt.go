package models

import "fmt"

// NMT approximates the German-English WMT'16 sequence-to-sequence model
// used in §5: a 2-layer LSTM encoder, a 2-layer LSTM decoder with
// attention, 512 hidden units, and a 32k vocabulary. Recurrent steps are
// modelled as one LSTMCell layer per (layer, timestep), which is what
// makes RNN inference "fairly expensive on GPU" at batch size 1 — a long
// chain of serialized kernels.
func NMT() *Spec {
	const (
		vocab  = 32000
		hidden = 512
		layers = 2
		seqLen = 30
	)
	var ls []Layer

	embedParams := int64(2 * vocab * hidden) // source + target tables
	ls = append(ls, Layer{
		Name:     "embedding",
		Kind:     LEmbedding,
		FLOPs:    float64(2 * seqLen * hidden),
		Params:   embedParams,
		Vars:     2,
		ActBytes: int64(seqLen*hidden) * 4,
	})

	// One LSTM cell: 4 gates of (input + recurrent + bias) weights.
	cellParams := int64(4 * hidden * (2*hidden + 1))
	cellFLOPs := 2 * float64(4*hidden*2*hidden)
	for _, side := range []string{"enc", "dec"} {
		for l := 0; l < layers; l++ {
			for t := 0; t < seqLen; t++ {
				layer := Layer{
					Name:     fmt.Sprintf("%s_l%d_t%d", side, l, t),
					Kind:     LLSTMCell,
					FLOPs:    cellFLOPs,
					ActBytes: int64(hidden) * 4,
				}
				if t == 0 {
					// The cell's weights are shared across timesteps;
					// attribute them to the first step.
					layer.Params = cellParams
					layer.Vars = 3 // kernel, recurrent kernel, bias
				}
				ls = append(ls, layer)
			}
		}
	}

	// Attention over encoder states, once per decoder step.
	for t := 0; t < seqLen; t++ {
		layer := Layer{
			Name:     fmt.Sprintf("attn_t%d", t),
			Kind:     LAttention,
			FLOPs:    2 * float64(seqLen*hidden) * 2,
			ActBytes: int64(hidden) * 4,
		}
		if t == 0 {
			layer.Params = int64(2 * hidden * hidden)
			layer.Vars = 2
		}
		ls = append(ls, layer)
	}

	// Output projection to the vocabulary, once per decoder step.
	projParams := int64(hidden*vocab + vocab)
	for t := 0; t < seqLen; t++ {
		layer := Layer{
			Name:     fmt.Sprintf("proj_t%d", t),
			Kind:     LDense,
			FLOPs:    2 * float64(hidden*vocab),
			ActBytes: int64(vocab) * 4,
		}
		if t == 0 {
			layer.Params = projParams
			layer.Vars = 2
		}
		ls = append(ls, layer)
	}
	ls = append(ls, Layer{Name: "softmax", Kind: LSoftmax, FLOPs: 5 * vocab, ActBytes: vocab * 4})

	return &Spec{
		Name:        "NMT",
		Classes:     vocab,
		Layers:      ls,
		SeqLen:      seqLen,
		Approximate: true,
	}
}
