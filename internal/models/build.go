package models

import (
	"fmt"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/graph"
)

// BuildConfig controls graph construction from a Spec.
type BuildConfig struct {
	// Batch is the mini-batch size (images, or sequences for NMT).
	Batch int
	// Training selects forward+backward+update; otherwise inference.
	Training bool
	// Device places the compute subgraph; device.CPUID produces an
	// MKL-style all-CPU graph (the migration target of §3.3).
	Device device.ID
	// PreprocShards is the number of parallel data-worker nodes on the
	// CPU input stage (the paper uses 32). Zero selects min(32, Batch).
	PreprocShards int
	// PerImageCPU is the CPU cost of decoding + augmenting one input.
	// Zero selects DefaultPerImageCPU for the model's resolution.
	PerImageCPU time.Duration
	// Fuse applies the static-graph elementwise-fusion pass after
	// construction (grappler-style merging, §2).
	Fuse bool
}

// DefaultPerImageCPU models the full tf.data cost of one raw ImageNet
// image on one Xeon core — JPEG decode, resize, augmentation, plus the
// framework's per-element overheads — scaled by the model's input
// resolution. Calibrated against Figure 3 (d-e): inference at BS=128 with
// 32 data workers leaves the V100 idle most of the session for all but
// the heaviest models.
func DefaultPerImageCPU(h, w int) time.Duration {
	const base = 100 * time.Millisecond // 224x224 pipeline
	scale := float64(h*w) / float64(224*224)
	return time.Duration(float64(base) * scale)
}

// trainIntermediateFactor scales per-image activation bytes into the
// intermediate training footprint (stored activations for backward plus
// cuDNN workspace). §5.2.3: intermediate data dominates model memory.
const trainIntermediateFactor = 1.2

// inferIntermediateFactor reflects that inference frees activations as it
// goes; only a window stays live.
const inferIntermediateFactor = 0.15

// IntermediateBytes returns the per-run device-memory footprint beyond the
// weights for the given batch.
func (s *Spec) IntermediateBytes(batch int, training bool) int64 {
	factor := inferIntermediateFactor
	if training {
		factor = trainIntermediateFactor
	}
	return int64(float64(s.ActivationBytes()*int64(batch)) * factor)
}

// Build constructs a computation graph: a CPU input stage (preprocess
// shards feeding IteratorGetNext) and the model's compute chain on
// cfg.Device, followed by backward and per-variable update ops when
// training. The graph is not yet partitioned; callers run graph.Partition
// to obtain per-device subgraphs with Send/Recv pairs.
func (s *Spec) Build(cfg BuildConfig) (*graph.Graph, error) {
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("models: batch must be positive, got %d", cfg.Batch)
	}
	if cfg.PreprocShards == 0 {
		cfg.PreprocShards = 32
		if cfg.Batch < cfg.PreprocShards {
			cfg.PreprocShards = cfg.Batch
		}
	}
	if cfg.PerImageCPU == 0 {
		if s.SeqLen > 0 {
			cfg.PerImageCPU = 2 * time.Millisecond // tokenization is cheap
		} else {
			cfg.PerImageCPU = DefaultPerImageCPU(s.InputH, s.InputW)
		}
	}

	mode := "infer"
	if cfg.Training {
		mode = "train"
	}
	g := graph.New(fmt.Sprintf("%s-%s-bs%d", s.Name, mode, cfg.Batch))
	batch := int64(cfg.Batch)

	// Input stage: shards of the batch preprocessed in parallel on CPU.
	iterator := &graph.Node{
		Name:        "IteratorGetNext",
		Op:          graph.OpIteratorGetNext,
		Device:      device.CPUID,
		OutputBytes: s.InputBytes() * batch,
	}
	perShard := (cfg.Batch + cfg.PreprocShards - 1) / cfg.PreprocShards
	var shards []*graph.Node
	for i := 0; i < cfg.PreprocShards; i++ {
		images := perShard
		if rem := cfg.Batch - i*perShard; rem < images {
			images = rem
		}
		if images <= 0 {
			break
		}
		shards = append(shards, g.AddNode(&graph.Node{
			Name:        fmt.Sprintf("preprocess_%d", i),
			Op:          graph.OpPreprocess,
			Device:      device.CPUID,
			CPUTime:     time.Duration(images) * cfg.PerImageCPU,
			OutputBytes: s.InputBytes() * int64(images),
		}))
	}
	g.AddNode(iterator)
	for _, shard := range shards {
		g.Connect(shard, iterator)
	}

	// Forward chain on the compute device.
	prev := iterator
	var forward []*graph.Node
	for _, l := range s.Layers {
		n := g.AddNode(&graph.Node{
			Name:        l.Name,
			Op:          opForKind(l.Kind),
			Device:      cfg.Device,
			FLOPs:       l.FLOPs * float64(batch),
			MemBytes:    2*l.ActBytes*batch + l.Params*4,
			OutputBytes: l.ActBytes * batch,
			ParamBytes:  l.Params * 4,
			WeightVars:  l.Vars,
		})
		g.Connect(prev, n)
		prev = n
		forward = append(forward, n)
	}

	if !cfg.Training {
		if cfg.Fuse {
			graph.FuseElementwise(g)
		}
		return g, g.Validate()
	}

	// Loss, backward chain (2x forward work per layer), and per-variable
	// updates feeding a final train step barrier.
	loss := g.AddNode(&graph.Node{
		Name:        "loss",
		Op:          graph.OpLoss,
		Device:      cfg.Device,
		FLOPs:       float64(10*s.Classes) * float64(batch),
		MemBytes:    int64(s.Classes) * 4 * batch,
		OutputBytes: 4,
	})
	g.Connect(prev, loss)
	prev = loss

	step := &graph.Node{Name: "train_step", Op: graph.OpNoOp, Device: cfg.Device}
	for i := len(forward) - 1; i >= 0; i-- {
		fwd := forward[i]
		grad := g.AddNode(&graph.Node{
			Name:        "grad_" + fwd.Name,
			Op:          graph.OpGradient,
			Device:      cfg.Device,
			FLOPs:       2 * fwd.FLOPs,
			MemBytes:    2 * fwd.MemBytes,
			OutputBytes: fwd.OutputBytes,
		})
		g.Connect(prev, grad)
		prev = grad
		if fwd.ParamBytes > 0 {
			apply := g.AddNode(&graph.Node{
				Name:     "apply_" + fwd.Name,
				Op:       graph.OpApplyGradient,
				Device:   cfg.Device,
				FLOPs:    float64(fwd.ParamBytes / 4 * 4), // read+madd per weight
				MemBytes: 3 * fwd.ParamBytes,              // grad + weight + slot
			})
			g.Connect(grad, apply)
			g.Connect(apply, step)
		}
	}
	g.AddNode(step)
	g.Connect(prev, step)
	if cfg.Fuse {
		graph.FuseElementwise(g)
	}
	return g, g.Validate()
}

func opForKind(k LayerKind) graph.OpType {
	switch k {
	case LConv:
		return graph.OpConv2D
	case LDepthwiseConv:
		return graph.OpDepthwiseConv2D
	case LDense:
		return graph.OpDense
	case LBatchNorm:
		return graph.OpBatchNorm
	case LActivation:
		return graph.OpActivation
	case LPool:
		return graph.OpPool
	case LAdd:
		return graph.OpAdd
	case LConcat:
		return graph.OpConcat
	case LSoftmax:
		return graph.OpSoftmax
	case LEmbedding:
		return graph.OpEmbedding
	case LLSTMCell:
		return graph.OpLSTMCell
	case LAttention:
		return graph.OpAttention
	default:
		return graph.OpNoOp
	}
}
