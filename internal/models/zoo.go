package models

import "fmt"

// zoo maps canonical names to builders.
var zoo = map[string]func() *Spec{
	"ResNet50":          ResNet50,
	"VGG16":             VGG16,
	"VGG19":             VGG19,
	"DenseNet121":       DenseNet121,
	"DenseNet169":       DenseNet169,
	"InceptionV3":       InceptionV3,
	"InceptionResNetV2": InceptionResNetV2,
	"MobileNet":         MobileNet,
	"MobileNetV2":       MobileNetV2,
	"NASNetLarge":       NASNetLarge,
	"NASNetMobile":      NASNetMobile,
	"NMT":               NMT,
}

// Names returns all model names in sorted order.
func Names() []string { return sortedNames(zoo) }

// ByName builds the named model.
func ByName(name string) (*Spec, error) {
	build, ok := zoo[name]
	if !ok {
		return nil, fmt.Errorf("models: unknown model %q (known: %v)", name, Names())
	}
	return build(), nil
}

// CNNs returns the eleven image models (everything but NMT), in the order
// the paper's figures list them.
func CNNs() []*Spec {
	names := []string{
		"ResNet50", "VGG16", "VGG19", "DenseNet121", "DenseNet169",
		"InceptionResNetV2", "InceptionV3", "MobileNet", "MobileNetV2",
		"NASNetLarge", "NASNetMobile",
	}
	specs := make([]*Spec, len(names))
	for i, name := range names {
		specs[i] = zoo[name]()
	}
	return specs
}
