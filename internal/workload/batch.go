package workload

import (
	"time"

	"switchflow/internal/cost"
	"switchflow/internal/device"
	"switchflow/internal/obs"
)

// This file is the serving job's dynamic-batching and admission-control
// layer (the TF-Serving-style batching queue §4 sketches as future work):
// requests are preprocessed individually through the input pipeline, and
// the batcher groups *ready* inputs into a micro-batch at compute launch
// under a max-size/max-wait policy. The admission controller prices batch
// execution with internal/cost and sheds an arriving request when its
// projected queueing delay would blow the job's SLO — shedding at the
// door beats serving a reply nobody will wait for.

// batchKey identifies a micro-batch graph version: the device placement
// and the number of requests fused into one execution.
type batchKey struct {
	dev      device.ID
	requests int
}

// batchingEnabled reports whether micro-batching applies: open-loop
// serving with MaxBatch > 1. A closed loop has one outstanding request at
// a time and saturated serving has no request queue, so neither can form
// batches; training always runs its configured mini-batch.
func (j *Job) batchingEnabled() bool {
	return j.Cfg.Kind == KindServing && !j.Cfg.ClosedLoop && !j.Cfg.Saturated &&
		j.Cfg.MaxBatch > 1
}

// TargetBatch returns the micro-batch size the batcher aims for: the
// largest size within MaxBatch whose priced execution still fits the SLO
// after the batch-wait window (a batch that blows the deadline by itself
// is worse than a smaller one). Without an SLO the target is MaxBatch.
func (j *Job) TargetBatch() int {
	if !j.batchingEnabled() {
		return 1
	}
	if j.targetBatch > 0 {
		return j.targetBatch
	}
	target := j.Cfg.MaxBatch
	if j.Cfg.SLO > 0 {
		budget := j.Cfg.SLO - j.Cfg.BatchWait
		target = 1
		for k := j.Cfg.MaxBatch; k > 1; k-- {
			if j.batchEstimate(k) <= budget {
				target = k
				break
			}
		}
	}
	j.targetBatch = target
	return target
}

// batchEstimate prices one execution of a k-request micro-batch on the
// job's preferred device: the serialized sum of kernel launches under the
// roofline model. Launch overheads and minimum kernel times do not grow
// with the batch, so the estimate scales sub-linearly in k — the
// economics that make batching worth the added wait.
func (j *Job) batchEstimate(k int) time.Duration {
	if d, ok := j.batchEst[k]; ok {
		return d
	}
	var d time.Duration
	if v, err := j.versionFor(j.Cfg.Device, k); err == nil {
		if j.Cfg.Device.Kind == device.KindGPU {
			d = cost.SerialGPUEstimate(v.Compute, j.machine.GPU(j.Cfg.Device.Index).Class)
		} else {
			d = cost.SerialCPUEstimate(v.Compute, j.machine.CPU)
		}
	}
	j.batchEst[k] = d
	return d
}

// inputEstimate prices one request's input preprocessing: the serialized
// CPU cost of the input subgraph on the job's machine. Zero for all-CPU
// placements, where preprocessing folds into the compute estimate.
func (j *Job) inputEstimate() time.Duration {
	if j.inputEstKnown {
		return j.inputEst
	}
	j.inputEstKnown = true
	if v, err := j.Version(j.Cfg.Device); err == nil && v.Input != nil {
		j.inputEst = cost.SerialCPUEstimate(v.Input, j.machine.CPU)
	}
	return j.inputEst
}

// versionFor returns the graph version for a micro-batch of the given
// request count on dev, building it on demand. One request is the base
// per-device version; larger batches get their own replicated executors,
// memoized per (device, size) exactly like the per-device versions.
func (j *Job) versionFor(dev device.ID, requests int) (*Version, error) {
	if requests <= 1 {
		return j.Version(dev)
	}
	key := batchKey{dev: dev, requests: requests}
	if v, ok := j.batchVersions[key]; ok {
		return v, nil
	}
	v, err := j.buildVersionBatch(dev, requests*j.Cfg.Batch)
	if err != nil {
		return nil, err
	}
	j.batchVersions[key] = v
	return v, nil
}

// computeBatchSize is the request count of the next compute launch: the
// active micro-batch when one is in flight (a preempted run resuming),
// otherwise as many ready inputs as the target allows, minimum one.
func (j *Job) computeBatchSize() int {
	if j.ComputeRunning && len(j.active) > 0 {
		return len(j.active)
	}
	if !j.batchingEnabled() {
		return 1
	}
	k := j.ready.Len()
	if t := j.TargetBatch(); k > t {
		k = t
	}
	if k < 1 {
		k = 1
	}
	return k
}

// NextComputeVersion returns the graph version the next compute launch on
// dev should execute, sized to the micro-batch that launch will consume.
// Schedulers call it in place of Version for the compute stage.
func (j *Job) NextComputeVersion(dev device.ID) (*Version, error) {
	return j.versionFor(dev, j.computeBatchSize())
}

// admitArrival runs the admission controller on one arriving request and
// reports whether it was enqueued. Shed requests are counted and dropped.
func (j *Job) admitArrival(now time.Duration) bool {
	if j.shouldShed() {
		j.bus.Emit(obs.Event{Kind: obs.KindShed, Ctx: j.Ctx, Job: j.Cfg.Name, Start: now})
		return false
	}
	j.bus.Emit(obs.Event{Kind: obs.KindAdmit, Ctx: j.Ctx, Job: j.Cfg.Name, Start: now})
	j.pending.Push(now)
	return true
}

// shouldShed projects the queueing delay of an arriving request: every
// request ahead of it that still needs preprocessing flows through the
// input pipeline (PrefetchDepth-wide, priced per request by the cost
// model), then everything ahead drains in target-sized micro-batches,
// plus one batch-wait window. When the projection exceeds the SLO the
// request is shed at the door. Closed-loop clients are never shed — they
// self-limit by construction.
func (j *Job) shouldShed() bool {
	if j.Cfg.SLO <= 0 || j.Cfg.ClosedLoop || j.Cfg.Saturated {
		return false
	}
	k := j.TargetBatch()
	queued := j.pending.Len() + j.inflight.Len() + j.ready.Len() + len(j.active) + 1
	batches := (queued + k - 1) / k
	projected := time.Duration(batches) * j.batchEstimate(k)
	if in := j.inputEstimate(); in > 0 {
		depth := j.Cfg.PrefetchDepth
		if depth < 1 {
			depth = 1
		}
		unprocessed := j.pending.Len() + j.inflight.Len() + 1
		projected += time.Duration(unprocessed) * in / time.Duration(depth)
	}
	if j.batchingEnabled() {
		projected += j.Cfg.BatchWait
	}
	return projected > j.Cfg.SLO
}

// noteInputReady opens the batch-wait window when the first input of a
// new micro-batch becomes ready.
func (j *Job) noteInputReady() {
	if !j.batchingEnabled() || j.Cfg.BatchWait <= 0 {
		return
	}
	if j.ready.Len() == 1 {
		j.openBatchWindow()
	}
}

// openBatchWindow starts (or restarts) the max-wait clock and arms a
// timer that re-pumps the scheduler when the window closes, so a held
// sub-target batch always launches by the deadline.
func (j *Job) openBatchWindow() {
	j.batchDeadline = j.eng.Now() + j.Cfg.BatchWait
	j.batchTimer.Cancel()
	wake := j.pumpHook
	j.batchTimer = j.eng.After(j.Cfg.BatchWait, func() {
		if wake != nil {
			wake()
		}
	})
}

// HoldForBatch reports whether a batching-aware scheduler should delay
// the next compute launch to let the micro-batch fill: some inputs are
// ready but fewer than the target, and the max-wait window is still open.
// Only the SwitchFlow manager consults this — the baselines launch
// greedily, and a scheduler that never calls it never waits.
func (j *Job) HoldForBatch() bool {
	if !j.batchingEnabled() || j.Cfg.BatchWait <= 0 {
		return false
	}
	n := j.ready.Len()
	if n == 0 || n >= j.TargetBatch() {
		return false
	}
	return j.eng.Now() < j.batchDeadline
}
