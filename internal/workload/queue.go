package workload

import "time"

// arrivalQueue is a FIFO of request arrival times backed by a ring
// buffer. The serving path used to pop with `q = q[1:]`, which keeps the
// whole backing array reachable — over a long swserved run the queue's
// memory grew with every request ever enqueued. The ring reuses its
// storage, so resident memory tracks the high-water queue depth instead
// of the request count.
type arrivalQueue struct {
	buf  []time.Duration
	head int
	n    int
}

// Len returns the number of queued arrivals.
func (q *arrivalQueue) Len() int { return q.n }

// Push appends an arrival time.
func (q *arrivalQueue) Push(t time.Duration) {
	q.grow(1)
	q.buf[(q.head+q.n)%len(q.buf)] = t
	q.n++
}

// PushFront prepends arrivals, preserving their order (used when an
// aborted compute run returns its micro-batch to the ready queue).
func (q *arrivalQueue) PushFront(ts []time.Duration) {
	q.grow(len(ts))
	for i := len(ts) - 1; i >= 0; i-- {
		q.head = (q.head - 1 + len(q.buf)) % len(q.buf)
		q.buf[q.head] = ts[i]
		q.n++
	}
}

// Pop removes and returns the oldest arrival. Panics when empty, like a
// slice index would.
func (q *arrivalQueue) Pop() time.Duration {
	if q.n == 0 {
		panic("workload: pop from empty arrival queue")
	}
	t := q.buf[q.head]
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return t
}

// PopN removes and returns the k oldest arrivals.
func (q *arrivalQueue) PopN(k int) []time.Duration {
	out := make([]time.Duration, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, q.Pop())
	}
	return out
}

// Cap exposes the backing-array size (memory-bound regression tests).
func (q *arrivalQueue) Cap() int { return len(q.buf) }

func (q *arrivalQueue) grow(need int) {
	if q.n+need <= len(q.buf) {
		return
	}
	size := len(q.buf) * 2
	if size < 8 {
		size = 8
	}
	for size < q.n+need {
		size *= 2
	}
	buf := make([]time.Duration, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = buf, 0
}
