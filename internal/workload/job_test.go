package workload

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/models"
	"switchflow/internal/sim"
)

func testJob(t *testing.T, cfg Config) (*sim.Engine, *Job) {
	t.Helper()
	eng := sim.NewEngine()
	machine := device.NewMachine(eng, device.ClassXeonDual, device.ClassV100, device.ClassV100)
	if cfg.Model == nil {
		spec, err := models.ByName("MobileNetV2")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Model = spec
	}
	if cfg.Batch == 0 {
		cfg.Batch = 8
	}
	if cfg.Device == (device.ID{}) {
		cfg.Device = device.GPUID(0)
	}
	job, err := NewJob(eng, machine, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, job
}

func TestNewJobBuildsVersionsForFallbacks(t *testing.T) {
	_, job := testJob(t, Config{
		Name:      "j",
		Kind:      KindTraining,
		Fallbacks: []device.ID{device.GPUID(1), device.CPUID},
	})
	for _, dev := range []device.ID{device.GPUID(0), device.GPUID(1), device.CPUID} {
		v, err := job.Version(dev)
		if err != nil {
			t.Fatalf("Version(%v): %v", dev, err)
		}
		if v.Compute == nil {
			t.Fatalf("Version(%v) has no compute subgraph", dev)
		}
	}
	// GPU versions split CPU input from GPU compute; CPU version is one
	// subgraph.
	v0, _ := job.Version(device.GPUID(0))
	if v0.Input == nil {
		t.Fatal("GPU version missing input stage")
	}
	vc, _ := job.Version(device.CPUID)
	if vc.Input != nil {
		t.Fatal("CPU version should fold input into compute")
	}
}

func TestVersionBuiltOnDemand(t *testing.T) {
	_, job := testJob(t, Config{Name: "j", Kind: KindTraining})
	if _, err := job.Version(device.GPUID(1)); err != nil {
		t.Fatalf("on-demand version: %v", err)
	}
}

func TestStreamPerGPU(t *testing.T) {
	_, job := testJob(t, Config{Name: "j", Kind: KindTraining})
	s0 := job.Stream(device.GPUID(0))
	if s0 == nil {
		t.Fatal("no stream for gpu:0")
	}
	if job.Stream(device.GPUID(0)) != s0 {
		t.Fatal("stream not cached")
	}
	if job.Stream(device.CPUID) != nil {
		t.Fatal("CPU placement must have no stream")
	}
}

func TestWeightBytesByKind(t *testing.T) {
	_, train := testJob(t, Config{Name: "t", Kind: KindTraining})
	_, serve := testJob(t, Config{Name: "s", Kind: KindServing})
	if train.WeightBytes() != 2*serve.WeightBytes() {
		t.Fatalf("training state %d should be 2x serving %d (optimizer slot)",
			train.WeightBytes(), serve.WeightBytes())
	}
}

func TestMemoryAccounting(t *testing.T) {
	eng, job := testJob(t, Config{Name: "j", Kind: KindTraining})
	_ = eng
	gpu := device.GPUID(0)
	if err := job.AllocWeights(gpu); err != nil {
		t.Fatal(err)
	}
	if !job.WeightsOn(gpu) {
		t.Fatal("weights not tracked")
	}
	if err := job.AllocIntermediate(gpu); err != nil {
		t.Fatal(err)
	}
	job.FreeIntermediate(gpu)
	job.FreeWeights(gpu)
	if job.WeightsOn(gpu) {
		t.Fatal("weights still tracked after free")
	}
	// Double free is a no-op.
	job.FreeWeights(gpu)
	job.FreeIntermediate(gpu)
}

func TestOpenLoopArrivals(t *testing.T) {
	eng, job := testJob(t, Config{
		Name: "s", Kind: KindServing, Batch: 1,
		ArrivalEvery: 100 * time.Millisecond,
	})
	arrivals := 0
	job.StartArrivals(func() { arrivals++ })
	eng.RunUntil(time.Second)
	if arrivals != 10 {
		t.Fatalf("arrivals = %d in 1s at 10/s, want 10", arrivals)
	}
	if job.PendingRequests() != 10 {
		t.Fatalf("PendingRequests() = %d", job.PendingRequests())
	}
	job.StopArrivals()
	eng.RunUntil(2 * time.Second)
	if arrivals != 10 {
		t.Fatal("arrivals after StopArrivals")
	}
}

func TestClosedLoopArrivals(t *testing.T) {
	eng, job := testJob(t, Config{
		Name: "s", Kind: KindServing, Batch: 1, ClosedLoop: true,
	})
	job.StartArrivals(func() {})
	eng.Run()
	if job.PendingRequests() != 1 {
		t.Fatalf("closed loop should start with 1 pending, got %d", job.PendingRequests())
	}
	// Walk one request through the pipeline; completion re-arms.
	job.BeginInput()
	job.FinishInput()
	job.BeginCompute()
	job.FinishCompute()
	eng.Run()
	if job.PendingRequests() != 1 {
		t.Fatalf("closed loop did not re-arm: %d pending", job.PendingRequests())
	}
	if job.Latencies.Count() != 1 {
		t.Fatalf("latency samples = %d, want 1", job.Latencies.Count())
	}
}

// TestStopBeforeFirstClosedLoopArrival is the StartArrivals regression:
// the initial closed-loop request was scheduled through an untracked
// After(0, ...) handle, so a job stopped immediately after submission
// still enqueued a request and invoked the scheduler callback.
func TestStopBeforeFirstClosedLoopArrival(t *testing.T) {
	eng, job := testJob(t, Config{
		Name: "s", Kind: KindServing, Batch: 1, ClosedLoop: true,
	})
	fired := false
	job.StartArrivals(func() { fired = true })
	job.StopArrivals() // same instant, before the initial arrival lands
	eng.Run()
	if fired {
		t.Fatal("scheduler callback fired after StopArrivals")
	}
	if job.PendingRequests() != 0 {
		t.Fatalf("stopped job enqueued %d requests", job.PendingRequests())
	}
}

// The closed-loop re-arm must be cancellable too: stopping between a
// completion and its re-armed arrival drops the next request.
func TestStopCancelsClosedLoopRearm(t *testing.T) {
	eng, job := testJob(t, Config{
		Name: "s", Kind: KindServing, Batch: 1, ClosedLoop: true,
	})
	job.StartArrivals(func() {})
	eng.Run()
	job.BeginInput()
	job.FinishInput()
	job.BeginCompute()
	job.FinishCompute()
	job.StopArrivals()
	eng.Run()
	if job.PendingRequests() != 0 {
		t.Fatalf("re-arm survived StopArrivals: %d pending", job.PendingRequests())
	}
}

func TestSaturatedServingAlwaysHasWork(t *testing.T) {
	_, job := testJob(t, Config{Name: "s", Kind: KindServing, Saturated: true})
	if !job.HasWork() || !job.CanStartInput() {
		t.Fatal("saturated job must always have work")
	}
	job.BeginInput()
	job.FinishInput()
	job.BeginCompute()
	job.FinishCompute()
	if job.Iterations != 1 {
		t.Fatalf("Iterations = %d", job.Iterations)
	}
	if job.Latencies.Count() != 0 {
		t.Fatal("saturated jobs must not record latencies")
	}
}

func TestPrefetchDepthLimitsInput(t *testing.T) {
	_, job := testJob(t, Config{Name: "t", Kind: KindTraining, PrefetchDepth: 2})
	job.BeginInput()
	job.FinishInput()
	job.BeginInput()
	job.FinishInput()
	if job.CanStartInput() {
		t.Fatal("third prefetch allowed beyond depth 2")
	}
	job.BeginCompute()
	if !job.CanStartInput() {
		t.Fatal("consuming an input must free a prefetch slot")
	}
}

func TestAbandonComputeReturnsInput(t *testing.T) {
	_, job := testJob(t, Config{Name: "t", Kind: KindTraining})
	job.BeginInput()
	job.FinishInput()
	job.BeginCompute()
	if job.InputAvailable() {
		t.Fatal("input not consumed by BeginCompute")
	}
	job.AbandonCompute()
	if !job.InputAvailable() {
		t.Fatal("AbandonCompute did not return the input")
	}
	if job.Iterations != 0 {
		t.Fatal("abandoned compute counted as iteration")
	}
}

func TestNewJobValidation(t *testing.T) {
	eng := sim.NewEngine()
	machine := device.NewMachine(eng, device.ClassXeonDual, device.ClassV100)
	if _, err := NewJob(eng, machine, 1, Config{Name: "x"}); err == nil {
		t.Fatal("job without model accepted")
	}
	spec, _ := models.ByName("ResNet50")
	if _, err := NewJob(eng, machine, 1, Config{Name: "x", Model: spec}); err == nil {
		t.Fatal("job without batch accepted")
	}
}

func TestCrashStopsArrivals(t *testing.T) {
	eng, job := testJob(t, Config{
		Name: "s", Kind: KindServing, Batch: 1,
		ArrivalEvery: 10 * time.Millisecond,
	})
	count := 0
	job.StartArrivals(func() { count++ })
	eng.RunUntil(50 * time.Millisecond)
	job.Crash(errTest)
	eng.RunUntil(200 * time.Millisecond)
	if count > 6 {
		t.Fatalf("arrivals continued after crash: %d", count)
	}
	if !job.Crashed() {
		t.Fatal("job not marked crashed")
	}
}

var errTest = &device.OOMError{Device: "test"}

func TestPoissonArrivalsDeterministicPerSeed(t *testing.T) {
	counts := make([]int, 2)
	for trial := range counts {
		eng, job := testJob(t, Config{
			Name: "s", Kind: KindServing, Batch: 1,
			ArrivalEvery: 10 * time.Millisecond, PoissonArrivals: true, ArrivalSeed: 42,
		})
		job.StartArrivals(func() {})
		eng.RunUntil(time.Second)
		counts[trial] = job.PendingRequests()
	}
	if counts[0] != counts[1] {
		t.Fatalf("same seed produced %d vs %d arrivals", counts[0], counts[1])
	}
	// Mean rate 100/s over 1s: allow generous stochastic slack.
	if counts[0] < 60 || counts[0] > 150 {
		t.Fatalf("Poisson arrivals = %d in 1s at mean 100/s", counts[0])
	}
}

func TestPoissonArrivalsVaryWithSeed(t *testing.T) {
	gaps := func(seed int64) []time.Duration {
		eng, job := testJob(t, Config{
			Name: "s", Kind: KindServing, Batch: 1,
			ArrivalEvery: 10 * time.Millisecond, PoissonArrivals: true, ArrivalSeed: seed,
		})
		var times []time.Duration
		job.StartArrivals(func() { times = append(times, eng.Now()) })
		eng.RunUntil(200 * time.Millisecond)
		return times
	}
	a, b := gaps(1), gaps(2)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no arrivals")
	}
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical arrival processes")
	}
}
