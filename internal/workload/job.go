// Package workload provides the job runtime shared by the SwitchFlow
// scheduler and the baselines: a DL job owns replicated graph versions
// (one per device it may run on, §3.2), per-GPU compute streams, weight
// and intermediate memory accounting, an input prefetch pipeline, and
// serving-request bookkeeping.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/executor"
	"switchflow/internal/graph"
	"switchflow/internal/metrics"
	"switchflow/internal/models"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/threadpool"
	"switchflow/internal/vnode"
)

// Kind distinguishes training from serving jobs.
type Kind int

// Job kinds.
const (
	// KindTraining runs iterations continuously, throughput oriented.
	KindTraining Kind = iota + 1
	// KindServing processes an open-loop stream of inference requests,
	// latency oriented.
	KindServing
)

// Config describes one DL job.
type Config struct {
	// Name labels the job.
	Name string
	// Model is the network to run.
	Model *models.Spec
	// Batch is the mini-batch size.
	Batch int
	// Kind selects training or serving.
	Kind Kind
	// Priority orders jobs for preemption; higher preempts lower.
	Priority int
	// Device is the preferred compute device.
	Device device.ID
	// Fallbacks lists migration targets in preference order (§3.3); empty
	// means the job waits on its device when preempted.
	Fallbacks []device.ID
	// VNodes, when non-empty, makes a training job elastic: its batch is
	// split across one virtual node per listed device (devices may repeat
	// to time-multiplex), with shares priced by internal/cost, and the
	// binding becomes a runtime property the scheduler may change at
	// epoch-safe points. Device must equal VNodes[0]. Empty keeps the
	// legacy single implicit vnode covering the whole batch on Device.
	VNodes []device.ID
	// Gang makes an elastic training job a synchronous data-parallel gang
	// (TensorFlow OSDI'16's replicated synchronous training): one replica
	// per vnode on a distinct GPU, computing independently then meeting at
	// a ring all-reduce step barrier priced on the machine's interconnect
	// fabric. The scheduler places, preempts, and resumes the gang
	// all-or-nothing — never a lone replica.
	Gang bool
	// Replicas is the desired gang width for placement layers that choose
	// the GPU set themselves (the cluster's gang bin-packer materializes
	// VNodes on the chosen node). When VNodes is already set it must be
	// empty or match len(VNodes).
	Replicas int
	// PreprocShards and PerImageCPU configure the input stage (zero picks
	// model defaults).
	PreprocShards int
	PerImageCPU   time.Duration
	// ArrivalEvery is the serving request period (open loop).
	ArrivalEvery time.Duration
	// PoissonArrivals draws exponential inter-arrival times with mean
	// ArrivalEvery — §3.1: "online inference queries often arrive
	// unpredictably and stochastically". Deterministic per ArrivalSeed.
	PoissonArrivals bool
	// ArrivalSeed seeds the arrival process (0 uses the job context id).
	ArrivalSeed int64
	// ClosedLoop makes a serving job submit the next request the moment
	// the previous one completes — the paper's "continuous stream" of
	// inference requests (§5.2.1). The first request arrives immediately.
	ClosedLoop bool
	// Saturated makes a serving job iterate continuously with an
	// unbounded backlog and no latency accounting — used to measure
	// inference throughput (Figures 8-10).
	Saturated bool
	// SLO is the per-request latency objective of a serving job. When set,
	// the admission controller sheds arrivals whose projected queueing
	// delay exceeds it, and completions within it count toward SLO
	// attainment. Zero disables both.
	SLO time.Duration
	// MaxBatch caps the dynamic batcher's micro-batch size: up to MaxBatch
	// ready requests fuse into one compute launch (graph batch
	// MaxBatch x Batch). Zero or one disables batching.
	MaxBatch int
	// BatchWait bounds how long a batching-aware scheduler holds a
	// sub-target micro-batch open for more requests. Zero launches
	// greedily with whatever is ready.
	BatchWait time.Duration
	// PrefetchDepth is the input pipeline depth (default 2, the tf.data
	// prefetch the paper's Figure 3 setup uses).
	PrefetchDepth int
	// Eager runs the model in dynamic-graph (eager) mode: every op pays a
	// framework dispatch overhead and no graph-level optimization applies
	// (§1's static-vs-dynamic contrast).
	Eager bool
	// Fuse applies static-graph elementwise fusion (mutually exclusive
	// with Eager).
	Fuse bool
	// CheckpointEvery is the period of background checkpoints to host
	// memory (fault recovery, TF's checkpoint-and-restart story). Zero
	// disables checkpointing; recoveries then roll training back to the
	// admission state.
	CheckpointEvery time.Duration
	// RestartBackoff is the base delay of the crash-and-restart loop;
	// consecutive restarts back off exponentially from it (default
	// 250 ms, capped at 16x the base).
	RestartBackoff time.Duration
}

// Version is one device placement of the job's graph: the replicated
// executors SwitchFlow keeps per device (§3.2).
type Version struct {
	// Graph is the full graph built for this placement.
	Graph *graph.Graph
	// Input is the CPU input stage; nil for all-CPU placements, where
	// Compute covers everything.
	Input *graph.Subgraph
	// Compute is the model's compute subgraph on the target device.
	Compute *graph.Subgraph
}

// Job is the runtime state of one DL job. Schedulers drive it; the fields
// here are the scheduler-independent parts.
type Job struct {
	// Cfg is the job's configuration.
	Cfg Config
	// Ctx tags this job's kernels in traces.
	Ctx int

	// Iterations counts completed session runs (training steps or served
	// requests).
	Iterations int
	// Latencies records per-request latency for serving jobs.
	Latencies metrics.Latency
	// CrashErr is set when the job dies (e.g. OOM under threaded TF).
	CrashErr error
	// Restarts counts crash-and-restart recoveries (fault injection).
	Restarts int

	// InputsInFlight counts concurrently running input-stage activations
	// (tf.data overlaps the preprocessing of several batches); together
	// with ready inputs it is bounded by PrefetchDepth.
	InputsInFlight int
	// ComputeRunning flags an in-flight compute stage.
	ComputeRunning bool

	eng      *sim.Engine
	machine  *device.Machine
	bus      *obs.Bus
	// serving aggregates the job's admission/batching outcomes from the
	// observability spine (it subscribes to the machine bus, filtered by
	// context) instead of being hand-incremented at each call site.
	serving  metrics.ServingSink
	versions map[device.ID]*Version
	streams  map[device.ID]*device.Stream
	dataPool *threadpool.Pool

	// Serving request flow, all carrying arrival times: pending (admitted,
	// not yet preprocessing), inflight (input stage running), ready
	// (prefetched, awaiting compute), active (the micro-batch the current
	// compute run serves).
	pending      arrivalQueue
	inflight     arrivalQueue
	ready        arrivalQueue
	active       []time.Duration
	inputReady   int
	arrivalEvent sim.Event
	// notify gates the closed-loop re-arm; StopArrivals clears it.
	// pumpHook is the scheduler wakeup for batch-wait timers; it survives
	// StopArrivals so admitted requests drain (stopped jobs' pumps are
	// no-ops anyway).
	notify   func()
	pumpHook func()

	// Dynamic-batching state (batch.go): memoized micro-batch graph
	// versions and cost estimates, the resolved target size, and the
	// max-wait window.
	batchVersions map[batchKey]*Version
	batchEst      map[int]time.Duration
	targetBatch   int
	batchTimer    sim.Event
	batchDeadline time.Duration
	inputEst      time.Duration
	inputEstKnown bool

	weightHome   map[device.ID]int64 // allocated weight bytes
	intermediate map[device.ID]int64

	// Virtual-node state: the runtime binding (vnode.go in this package)
	// and memoized share-sized graph versions keyed by (device, samples).
	binding       vnode.Binding
	shardVersions map[shardKey]*Version

	// Checkpoint/restart recovery state (see recovery.go).
	checkpointIters int
	checkpointAt    time.Duration
	backoff         time.Duration
}

// NewJob builds a job and its graph versions for the preferred device and
// every fallback.
func NewJob(eng *sim.Engine, machine *device.Machine, ctx int, cfg Config) (*Job, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("workload: job %q has no model", cfg.Name)
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("workload: job %q batch must be positive", cfg.Name)
	}
	if cfg.MaxBatch < 0 {
		return nil, fmt.Errorf("workload: job %q max batch must not be negative", cfg.Name)
	}
	if cfg.PrefetchDepth == 0 {
		cfg.PrefetchDepth = 2
	}
	if cfg.Kind == KindServing && !cfg.ClosedLoop && !cfg.Saturated &&
		cfg.PrefetchDepth < cfg.MaxBatch {
		// The batcher can only fuse requests that are prefetched and
		// ready, so the pipeline must stage at least a full micro-batch.
		cfg.PrefetchDepth = cfg.MaxBatch
	}
	// Each job owns its tf.data worker pool, as TF datasets do; the
	// paper's setups use 32 parallel data workers, capped by core count.
	dataWorkers := 32
	if dataWorkers > machine.CPU.Cores {
		dataWorkers = machine.CPU.Cores
	}
	j := &Job{
		Cfg:           cfg,
		Ctx:           ctx,
		eng:           eng,
		machine:       machine,
		bus:           machine.Bus(),
		serving:       metrics.ServingSink{Ctx: ctx},
		versions:      make(map[device.ID]*Version),
		streams:       make(map[device.ID]*device.Stream),
		dataPool:      threadpool.New(eng, "data:"+cfg.Name, dataWorkers),
		batchVersions: make(map[batchKey]*Version),
		batchEst:      make(map[int]time.Duration),
		weightHome:    make(map[device.ID]int64),
		intermediate:  make(map[device.ID]int64),
		shardVersions: make(map[shardKey]*Version),
	}
	devices := append([]device.ID{cfg.Device}, cfg.Fallbacks...)
	devices = append(devices, cfg.VNodes...)
	for _, dev := range devices {
		if _, ok := j.versions[dev]; ok {
			continue
		}
		v, err := j.buildVersion(dev)
		if err != nil {
			return nil, err
		}
		j.versions[dev] = v
	}
	if len(cfg.VNodes) > 0 {
		if cfg.Kind != KindTraining {
			return nil, fmt.Errorf("workload: job %q: virtual nodes require a training job", cfg.Name)
		}
		if cfg.VNodes[0] != cfg.Device {
			return nil, fmt.Errorf("workload: job %q: Device %v must equal VNodes[0] %v", cfg.Name, cfg.Device, cfg.VNodes[0])
		}
		if err := j.validateGang(); err != nil {
			return nil, err
		}
		b, err := vnode.Split(cfg.Batch, cfg.VNodes, j.PricerFor(cfg.VNodes))
		if err != nil {
			return nil, fmt.Errorf("workload: job %q: %w", cfg.Name, err)
		}
		j.binding = b
	} else if cfg.Gang {
		return nil, fmt.Errorf("workload: job %q: a gang needs virtual nodes (the placement layer materializes them)", cfg.Name)
	} else {
		j.binding = vnode.Single(cfg.Device, cfg.Batch)
	}
	j.bus.Subscribe(&j.serving, metrics.ServingSinkKinds...)
	return j, nil
}

// ServingStats returns the job's admission-control and batching outcomes
// (offered, shed, served, SLO-met, batches), aggregated from the
// observability spine.
func (j *Job) ServingStats() metrics.ServingCounters { return j.serving.Counters() }

// EventBus returns the observability bus the job publishes to (the
// machine's shared bus).
func (j *Job) EventBus() *obs.Bus { return j.bus }

func (j *Job) buildVersion(dev device.ID) (*Version, error) {
	return j.buildVersionBatch(dev, j.Cfg.Batch)
}

// buildVersionBatch builds a graph version for an explicit graph-level
// batch size (a micro-batch of k requests runs at k x Cfg.Batch).
func (j *Job) buildVersionBatch(dev device.ID, batch int) (*Version, error) {
	g, err := j.Cfg.Model.Build(models.BuildConfig{
		Batch:         batch,
		Training:      j.Cfg.Kind == KindTraining,
		Device:        dev,
		PreprocShards: j.Cfg.PreprocShards,
		PerImageCPU:   j.Cfg.PerImageCPU,
		Fuse:          j.Cfg.Fuse && !j.Cfg.Eager,
	})
	if err != nil {
		return nil, fmt.Errorf("workload: job %q: %w", j.Cfg.Name, err)
	}
	subs, err := graph.Partition(g)
	if err != nil {
		return nil, fmt.Errorf("workload: job %q: %w", j.Cfg.Name, err)
	}
	v := &Version{Graph: g}
	switch len(subs) {
	case 1:
		v.Compute = subs[0]
	case 2:
		v.Input, v.Compute = subs[0], subs[1]
	default:
		return nil, fmt.Errorf("workload: job %q: unexpected %d subgraphs", j.Cfg.Name, len(subs))
	}
	return v, nil
}

// Version returns the graph version for dev, building it on demand (a
// migration target not declared in Fallbacks).
func (j *Job) Version(dev device.ID) (*Version, error) {
	if v, ok := j.versions[dev]; ok {
		return v, nil
	}
	v, err := j.buildVersion(dev)
	if err != nil {
		return nil, err
	}
	j.versions[dev] = v
	return v, nil
}

// Stream returns the job's compute stream on dev, creating it on first
// use. CPU placements have no stream and return nil.
func (j *Job) Stream(dev device.ID) *device.Stream {
	if dev.Kind != device.KindGPU {
		return nil
	}
	s, ok := j.streams[dev]
	if !ok {
		s = device.NewStream(j.machine.GPU(dev.Index))
		j.streams[dev] = s
	}
	return s
}

// Training reports whether the job trains.
func (j *Job) Training() bool { return j.Cfg.Kind == KindTraining }

// WeightBytes is the persistent state the job keeps on its device:
// weights plus optimizer slots when training, weights alone when serving.
func (j *Job) WeightBytes() int64 {
	if j.Training() {
		return j.Cfg.Model.StatefulBytes()
	}
	return j.Cfg.Model.ParamBytes()
}

// IntermediateBytes is the peak per-iteration scratch footprint: the
// full micro-batch for a batching serving job (what an up-front process
// reservation like MPS must cover), the configured mini-batch otherwise.
func (j *Job) IntermediateBytes() int64 {
	batch := j.Cfg.Batch
	if j.batchingEnabled() {
		batch *= j.Cfg.MaxBatch
	}
	return j.Cfg.Model.IntermediateBytes(batch, j.Training())
}

// AllocWeights reserves the job's persistent state on dev. Host memory is
// not modelled (the paper's servers have >250 GB).
func (j *Job) AllocWeights(dev device.ID) error {
	if dev.Kind != device.KindGPU {
		j.weightHome[dev] += j.WeightBytes()
		return nil
	}
	if err := j.machine.GPU(dev.Index).Mem.Alloc(j.WeightBytes()); err != nil {
		return err
	}
	j.weightHome[dev] += j.WeightBytes()
	return nil
}

// FreeWeights releases previously allocated persistent state on dev.
func (j *Job) FreeWeights(dev device.ID) {
	n := j.weightHome[dev]
	if n == 0 {
		return
	}
	delete(j.weightHome, dev)
	if dev.Kind == device.KindGPU {
		j.machine.GPU(dev.Index).Mem.Free(n)
	}
}

// WeightsOn reports whether persistent state is resident on dev.
func (j *Job) WeightsOn(dev device.ID) bool { return j.weightHome[dev] > 0 }

// AllocIntermediate reserves the iteration scratch on dev, sized to the
// micro-batch the next compute launch will consume.
func (j *Job) AllocIntermediate(dev device.ID) error {
	if dev.Kind != device.KindGPU {
		return nil
	}
	n := j.Cfg.Model.IntermediateBytes(j.computeBatchSize()*j.Cfg.Batch, j.Training())
	if err := j.machine.GPU(dev.Index).Mem.Alloc(n); err != nil {
		return err
	}
	j.intermediate[dev] += n
	return nil
}

// FreeIntermediate releases the iteration scratch on dev.
func (j *Job) FreeIntermediate(dev device.ID) {
	n := j.intermediate[dev]
	if n == 0 {
		return
	}
	delete(j.intermediate, dev)
	if dev.Kind == device.KindGPU {
		j.machine.GPU(dev.Index).Mem.Free(n)
	}
}

// StartArrivals begins the serving job's request stream. onNew fires after
// each admitted arrival is enqueued (schedulers pump their pipeline
// there); shed arrivals are counted and dropped without a callback. In
// open loop the first request arrives after one period; in closed loop it
// arrives immediately and each completion triggers the next. Every
// scheduled arrival is tracked in arrivalEvent, so StopArrivals cancels
// the stream even before the first request lands.
func (j *Job) StartArrivals(onNew func()) {
	if j.Cfg.Kind != KindServing {
		return
	}
	j.notify = onNew
	j.pumpHook = onNew
	if j.Cfg.ClosedLoop {
		j.arrivalEvent = j.eng.After(0, func() {
			if j.admitArrival(j.eng.Now()) {
				onNew()
			}
		})
		return
	}
	if j.Cfg.ArrivalEvery <= 0 {
		return
	}
	interval := func() time.Duration { return j.Cfg.ArrivalEvery }
	if j.Cfg.PoissonArrivals {
		seed := j.Cfg.ArrivalSeed
		if seed == 0 {
			seed = int64(j.Ctx)
		}
		rng := rand.New(rand.NewSource(seed))
		interval = func() time.Duration {
			return time.Duration(rng.ExpFloat64() * float64(j.Cfg.ArrivalEvery))
		}
	}
	var tick func()
	tick = func() {
		admitted := j.admitArrival(j.eng.Now())
		j.arrivalEvent = j.eng.After(interval(), tick)
		if admitted {
			onNew()
		}
	}
	j.arrivalEvent = j.eng.After(interval(), tick)
}

// StopArrivals halts the request stream. The batch-wait timer is left
// armed on purpose: a held sub-target micro-batch must still launch at
// its deadline so already-admitted requests drain after the stream stops
// (a stopped or crashed job's pump ignores the wakeup anyway).
func (j *Job) StopArrivals() {
	j.arrivalEvent.Cancel()
	j.arrivalEvent = sim.Event{}
	j.notify = nil
}

// Offer presents one externally generated request arrival — the fleet
// front-end's trace-driven traffic — at the current virtual time. It runs
// the same admission controller as the job's own arrival process (SLO
// projection, shed accounting) and reports whether the request was
// admitted. Only request-driven serving jobs accept offers.
func (j *Job) Offer() bool {
	if j.Cfg.Kind != KindServing || j.Cfg.Saturated {
		return false
	}
	admitted := j.admitArrival(j.eng.Now())
	if admitted && j.pumpHook != nil {
		j.pumpHook()
	}
	return admitted
}

// ShedOffer counts one externally routed request that could not be
// delivered as offered-and-shed, without running admission. The fleet
// router binds arrivals one epoch ahead of delivery, so a scale-in or
// crash can strand an already-scheduled request on a retired replica.
func (j *Job) ShedOffer() {
	j.bus.Emit(obs.Event{Kind: obs.KindShed, Ctx: j.Ctx, Job: j.Cfg.Name, Start: j.eng.Now()})
}

// OutstandingRequests counts admitted requests not yet completed — the
// router's least-loaded signal.
func (j *Job) OutstandingRequests() int {
	return j.pending.Len() + j.inflight.Len() + j.ready.Len() + len(j.active)
}

// PendingRequests returns enqueued-but-unstarted request count.
func (j *Job) PendingRequests() int { return j.pending.Len() }

// HasWork reports whether an iteration could start: training and
// saturated serving always have work; open/closed-loop serving needs a
// pending request or a prefetched input.
func (j *Job) HasWork() bool {
	if j.Training() || j.Cfg.Saturated {
		return true
	}
	return j.pending.Len() > 0 || j.inputReady > 0 || j.inflight.Len() > 0
}

// CanStartInput reports whether another input-stage run may begin: a
// prefetch slot is free (counting runs already in flight) and (for
// serving) a request is waiting.
func (j *Job) CanStartInput() bool {
	if j.inputReady+j.InputsInFlight >= j.Cfg.PrefetchDepth {
		return false
	}
	if !j.Training() && !j.Cfg.Saturated && j.pending.Len() == 0 {
		return false
	}
	return true
}

// BeginInput transitions a request (or training batch) into the input
// stage. Requests preprocess individually — batching happens at compute
// launch, over ready inputs — so one BeginInput moves one request.
// Callers must have checked CanStartInput.
func (j *Job) BeginInput() {
	j.InputsInFlight++
	if !j.Training() && !j.Cfg.Saturated && j.pending.Len() > 0 {
		j.inflight.Push(j.pending.Pop())
	}
}

// FinishInput marks one in-flight input as prefetched and ready. Input
// runs are FIFO with equal per-request cost, so the oldest in-flight
// request is the one that finished.
func (j *Job) FinishInput() {
	if j.InputsInFlight <= 0 {
		panic("workload: FinishInput without BeginInput")
	}
	j.InputsInFlight--
	j.inputReady++
	if !j.Training() && !j.Cfg.Saturated && j.inflight.Len() > 0 {
		j.ready.Push(j.inflight.Pop())
		j.noteInputReady()
	}
}

// InputAvailable reports whether a prefetched input is waiting.
func (j *Job) InputAvailable() bool { return j.inputReady > 0 }

// BeginCompute consumes ready inputs for one compute launch: a serving
// job takes up to TargetBatch requests as the active micro-batch,
// training and saturated jobs take one.
func (j *Job) BeginCompute() {
	if j.inputReady <= 0 {
		panic("workload: BeginCompute without ready input")
	}
	if j.Training() || j.Cfg.Saturated || j.ready.Len() == 0 {
		j.inputReady--
		j.ComputeRunning = true
		return
	}
	k := j.computeBatchSize()
	if k > j.ready.Len() {
		k = j.ready.Len()
	}
	j.active = j.ready.PopN(k)
	j.inputReady -= k
	j.ComputeRunning = true
	if j.ready.Len() > 0 && j.batchingEnabled() && j.Cfg.BatchWait > 0 {
		// Leftover ready requests start the next micro-batch's window.
		j.openBatchWindow()
	}
}

// FinishCompute completes an iteration: every request in the active
// micro-batch records its latency and SLO outcome, and a closed loop
// re-arms its next (tracked, cancellable) arrival.
func (j *Job) FinishCompute() {
	j.ComputeRunning = false
	j.Iterations++
	j.backoff = 0 // a healthy iteration resets the restart backoff
	if j.Training() || j.Cfg.Saturated {
		return
	}
	if len(j.active) > 0 {
		j.bus.Emit(obs.Event{
			Kind:   obs.KindBatchFuse,
			Ctx:    j.Ctx,
			Job:    j.Cfg.Name,
			Device: j.Cfg.Device.String(),
			Count:  len(j.active),
		})
		now := j.eng.Now()
		for _, arrived := range j.active {
			lat := now - arrived
			j.Latencies.Add(lat)
			met := 0
			if j.Cfg.SLO > 0 && lat <= j.Cfg.SLO {
				met = 1
			}
			j.bus.Emit(obs.Event{
				Kind:  obs.KindServe,
				Ctx:   j.Ctx,
				Job:   j.Cfg.Name,
				Start: arrived,
				Dur:   lat,
				Count: met,
			})
		}
		j.active = nil
	}
	if j.Cfg.ClosedLoop && j.notify != nil {
		notify := j.notify
		j.arrivalEvent = j.eng.After(0, func() {
			if j.admitArrival(j.eng.Now()) {
				notify()
			}
		})
	}
}

// AbandonCompute returns the consumed inputs to the ready pool after a
// preemption aborts the compute stage; the new session run is repopulated
// with the same tasks so no work is lost (§3.3). A serving job's whole
// micro-batch goes back to the front of the ready queue in arrival order.
func (j *Job) AbandonCompute() {
	j.ComputeRunning = false
	if len(j.active) > 0 {
		j.inputReady += len(j.active)
		j.ready.PushFront(j.active)
		j.active = nil
		return
	}
	j.inputReady++
}

// DataPool returns the job's private tf.data worker pool.
func (j *Job) DataPool() *threadpool.Pool { return j.dataPool }

// StartExec launches the given subgraph through an executor. The job's
// private data pool handles preprocessing unless the caller overrides it.
func (j *Job) StartExec(sub *graph.Subgraph, cfg executor.Config, onDone func()) (*executor.Run, error) {
	cfg.Ctx = j.Ctx
	cfg.Machine = j.machine
	cfg.CPUClass = j.machine.CPU
	cfg.Bus = j.bus
	if cfg.DataPool == nil {
		cfg.DataPool = j.dataPool
	}
	cfg.Eager = j.Cfg.Eager
	return executor.Start(j.eng, sub, cfg, onDone)
}

// Crash marks the job dead.
func (j *Job) Crash(err error) {
	if j.CrashErr == nil {
		j.CrashErr = err
	}
	j.StopArrivals()
}

// Crashed reports whether the job died.
func (j *Job) Crashed() bool { return j.CrashErr != nil }
