package workload

// Gang-scheduled synchronous data-parallel training (ROADMAP item 4,
// after TensorFlow OSDI'16 §4.4 and arXiv:1603.04467): a gang job's
// vnodes are N replicas, each holding a full copy of the weights and
// computing its batch share independently; the step commits only after
// the replicas exchange gradients in a ring all-reduce priced on the
// machine's interconnect fabric. This file owns the workload-side gang
// surface — validation, sync-cost pricing, and the sync-aware vnode
// pricer. internal/core owns when the barrier runs; internal/cluster
// owns where the gang lands.

import (
	"fmt"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/vnode"
)

// validateGang checks the gang shape of a config whose VNodes are set:
// every replica on its own GPU, and a Replicas hint (if any) consistent
// with the materialized vnode list.
func (j *Job) validateGang() error {
	cfg := &j.Cfg
	if !cfg.Gang {
		if cfg.Replicas != 0 {
			return fmt.Errorf("workload: job %q: Replicas is a gang field; set Gang", cfg.Name)
		}
		return nil
	}
	if cfg.Replicas != 0 && cfg.Replicas != len(cfg.VNodes) {
		return fmt.Errorf("workload: job %q: Replicas %d does not match %d virtual nodes", cfg.Name, cfg.Replicas, len(cfg.VNodes))
	}
	seen := make(map[device.ID]bool, len(cfg.VNodes))
	for _, d := range cfg.VNodes {
		if d.Kind != device.KindGPU {
			return fmt.Errorf("workload: job %q: gang replica on %v; replicas need distinct GPUs", cfg.Name, d)
		}
		if seen[d] {
			return fmt.Errorf("workload: job %q: gang replicas must land on distinct GPUs (%v repeats)", cfg.Name, d)
		}
		seen[d] = true
	}
	return nil
}

// Gang reports whether the job is a synchronous data-parallel gang.
func (j *Job) Gang() bool { return j.Cfg.Gang }

// GradientBytes is the volume each replica contributes to the step
// barrier's all-reduce — one full gradient, the size of the parameters.
func (j *Job) GradientBytes() int64 { return j.Cfg.Model.ParamBytes() }

// SyncCostFor prices the ring all-reduce a gang bound to devs pays at
// each step barrier, over the machine's fabric. Non-gang jobs,
// sub-2-replica bindings, and unpriceable rings cost nothing (the
// binding validation rejects the latter before a job runs).
func (j *Job) SyncCostFor(devs []device.ID) time.Duration {
	if !j.Cfg.Gang || len(devs) < 2 {
		return 0
	}
	gpus := make([]int, 0, len(devs))
	for _, d := range devs {
		if d.Kind == device.KindGPU {
			gpus = append(gpus, d.Index)
		}
	}
	cost, err := j.machine.Fabric().RingCost(gpus, j.GradientBytes())
	if err != nil {
		return 0
	}
	return cost
}

// SyncCost prices the all-reduce of the job's current binding.
func (j *Job) SyncCost() time.Duration {
	return j.SyncCostFor(j.binding.DeviceList())
}

// PricerFor returns the pricer vnode.Split uses to size shares across
// devs. Gang jobs fold the device-set-wide gradient-sync cost into every
// replica's step price — ROADMAP item 3's gradient-sync cost modelling:
// the sync term is identical on every replica (the ring advances
// together), so as it grows it flattens the share skew that pure
// compute-speed pricing would give a heterogeneous device set. Non-gang
// jobs price compute alone, exactly as before.
func (j *Job) PricerFor(devs []device.ID) vnode.Pricer {
	if !j.Cfg.Gang {
		return j.StepPrice
	}
	sync := j.SyncCostFor(devs)
	return func(dev device.ID, samples int) (time.Duration, error) {
		d, err := j.StepPrice(dev, samples)
		if err != nil {
			return 0, err
		}
		return d + sync, nil
	}
}
