package workload

import (
	"testing"
	"time"
)

// TestArrivalQueueBoundsMemory is the unbounded-growth regression: the
// old `q = q[1:]` pop kept the whole backing array live, so a steady
// push/pop stream grew memory with every request ever served. The ring
// must keep its backing array sized to the high-water depth.
func TestArrivalQueueBoundsMemory(t *testing.T) {
	var q arrivalQueue
	for i := 0; i < 100000; i++ {
		q.Push(time.Duration(i))
		if got := q.Pop(); got != time.Duration(i) {
			t.Fatalf("pop %d = %v", i, got)
		}
	}
	if q.Cap() > 8 {
		t.Fatalf("steady-state depth-1 queue grew backing array to %d", q.Cap())
	}
}

func TestArrivalQueueFIFOAcrossWrap(t *testing.T) {
	var q arrivalQueue
	for i := 0; i < 5; i++ {
		q.Push(time.Duration(i))
	}
	q.Pop()
	q.Pop()
	for i := 5; i < 12; i++ {
		q.Push(time.Duration(i)) // forces growth with head offset
	}
	for want := 2; q.Len() > 0; want++ {
		if got := q.Pop(); got != time.Duration(want) {
			t.Fatalf("Pop() = %v, want %v", got, want)
		}
	}
}

func TestArrivalQueuePushFront(t *testing.T) {
	var q arrivalQueue
	q.Push(10)
	q.PushFront([]time.Duration{1, 2, 3})
	want := []time.Duration{1, 2, 3, 10}
	got := q.PopN(4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopN = %v, want %v", got, want)
		}
	}
}
