package workload

import (
	"fmt"
	"time"

	"switchflow/internal/cost"
	"switchflow/internal/device"
	"switchflow/internal/vnode"
)

// This file is the job side of the virtual-node layer (internal/vnode,
// after VirtualFlow arXiv:2009.09523): an elastic training job's batch is
// split across virtual nodes, each computing a share-sized shard of the
// step on its bound device with a full data-parallel weight replica. The
// binding is runtime state — the scheduler core re-splits it at
// epoch-safe points (grow/shrink/rebind/drain/fault healing) and the job
// memoizes one graph version per (device, share) it has ever run.

// shardKey identifies a share-sized graph version of an elastic job.
type shardKey struct {
	dev     device.ID
	samples int
}

// Elastic reports whether the job runs on explicit virtual nodes (it was
// admitted with Config.VNodes). Elastic jobs are driven by the shard
// scheduler path; everything else keeps the legacy single-device path
// byte-for-byte.
func (j *Job) Elastic() bool { return len(j.Cfg.VNodes) > 0 }

// Binding returns the job's current virtual-node binding. Legacy jobs
// report a single implicit vnode covering the whole batch on Device.
func (j *Job) Binding() vnode.Binding { return j.binding }

// SetBinding installs a new binding. Callers (the scheduler core) must
// only do this at epoch-safe points — between steps, with no shard
// compute in flight — and are responsible for moving weight replicas.
func (j *Job) SetBinding(b vnode.Binding) { j.binding = b }

// StepPrice prices one training step of the given sample count on dev:
// the serialized kernel cost of the share-sized compute subgraph under
// the roofline model. It is the vnode.Pricer elastic splits use, so
// heterogeneous devices get throughput-proportional shares.
func (j *Job) StepPrice(dev device.ID, samples int) (time.Duration, error) {
	v, err := j.shardVersion(dev, samples)
	if err != nil {
		return 0, err
	}
	if dev.Kind == device.KindGPU {
		gpu := j.machine.GPU(dev.Index)
		if gpu == nil {
			return 0, fmt.Errorf("workload: job %q: no GPU %d", j.Cfg.Name, dev.Index)
		}
		return cost.SerialGPUEstimate(v.Compute, gpu.Class), nil
	}
	return cost.SerialCPUEstimate(v.Compute, j.machine.CPU), nil
}

// shardVersion returns the graph version for a shard of the given sample
// count on dev, building and memoizing it on demand. The full-batch
// version aliases the job's per-device version.
func (j *Job) shardVersion(dev device.ID, samples int) (*Version, error) {
	if samples == j.Cfg.Batch {
		return j.Version(dev)
	}
	key := shardKey{dev: dev, samples: samples}
	if v, ok := j.shardVersions[key]; ok {
		return v, nil
	}
	v, err := j.buildVersionBatch(dev, samples)
	if err != nil {
		return nil, err
	}
	j.shardVersions[key] = v
	return v, nil
}

// VNodeVersion returns the compute graph version of vnode i under the
// current binding, sized to the vnode's batch share.
func (j *Job) VNodeVersion(i int) (*Version, error) {
	if i < 0 || i >= j.binding.Len() {
		return nil, fmt.Errorf("workload: job %q: vnode %d out of range (%d vnodes)", j.Cfg.Name, i, j.binding.Len())
	}
	n := j.binding.Node(i)
	return j.shardVersion(n.Device, n.Share)
}

// VNodeScratchBytes is the per-step intermediate footprint of vnode i's
// shard: activations sized to the share, not the global batch.
func (j *Job) VNodeScratchBytes(i int) int64 {
	if i < 0 || i >= j.binding.Len() {
		return 0
	}
	return j.Cfg.Model.IntermediateBytes(j.binding.Node(i).Share, j.Training())
}

// AllocScratchBytes reserves n bytes of iteration scratch on dev,
// accumulating into the job's per-device accounting (several vnodes may
// share a device). CPU scratch is not modelled.
func (j *Job) AllocScratchBytes(dev device.ID, n int64) error {
	if dev.Kind != device.KindGPU || n <= 0 {
		return nil
	}
	if err := j.machine.GPU(dev.Index).Mem.Alloc(n); err != nil {
		return err
	}
	j.intermediate[dev] += n
	return nil
}

// FreeScratchBytes releases up to n bytes of iteration scratch on dev.
// The accounting is clamped so a release after ForgetDevice (device-lost
// invalidated the pool wholesale) is a safe no-op.
func (j *Job) FreeScratchBytes(dev device.ID, n int64) {
	have := j.intermediate[dev]
	if n > have {
		n = have
	}
	if n <= 0 {
		return
	}
	if n == have {
		delete(j.intermediate, dev)
	} else {
		j.intermediate[dev] -= n
	}
	if dev.Kind == device.KindGPU {
		j.machine.GPU(dev.Index).Mem.Free(n)
	}
}
