package workload

import (
	"testing"
	"time"

	"switchflow/internal/device"
)

// servingJob builds an open-loop serving job with batching knobs and
// walks arrivals in by hand (admitArrival), so tests control the queue
// state without running the arrival process.
func servingJob(t *testing.T, maxBatch int, slo, wait time.Duration) (*Job, func(n int)) {
	t.Helper()
	_, job := testJob(t, Config{
		Name: "s", Kind: KindServing, Batch: 1,
		ArrivalEvery: 10 * time.Millisecond,
		SLO:          slo, MaxBatch: maxBatch, BatchWait: wait,
	})
	admit := func(n int) {
		for i := 0; i < n; i++ {
			job.admitArrival(job.eng.Now())
		}
	}
	return job, admit
}

func TestMicroBatchFormation(t *testing.T) {
	job, admit := servingJob(t, 4, 0, 0)
	admit(6)
	if job.PendingRequests() != 6 {
		t.Fatalf("pending = %d, want 6 (no SLO, nothing shed)", job.PendingRequests())
	}
	// Preprocess four requests (PrefetchDepth was raised to MaxBatch).
	for i := 0; i < 4; i++ {
		if !job.CanStartInput() {
			t.Fatalf("input slot %d unavailable with prefetch depth >= MaxBatch", i)
		}
		job.BeginInput()
		job.FinishInput()
	}
	job.BeginCompute()
	if len(job.active) != 4 {
		t.Fatalf("micro-batch size = %d, want 4", len(job.active))
	}
	job.FinishCompute()
	if job.Iterations != 1 {
		t.Fatalf("Iterations = %d, want 1 (one fused launch)", job.Iterations)
	}
	if job.ServingStats().Served != 4 || job.ServingStats().Batches != 1 {
		t.Fatalf("Served/Batches = %d/%d, want 4/1", job.ServingStats().Served, job.ServingStats().Batches)
	}
	if job.Latencies.Count() != 4 {
		t.Fatalf("latency samples = %d, want one per request", job.Latencies.Count())
	}
}

func TestBatchedComputeVersionScalesUp(t *testing.T) {
	job, admit := servingJob(t, 4, 0, 0)
	v1, err := job.NextComputeVersion(device.GPUID(0))
	if err != nil {
		t.Fatal(err)
	}
	admit(4)
	for i := 0; i < 4; i++ {
		job.BeginInput()
		job.FinishInput()
	}
	v4, err := job.NextComputeVersion(device.GPUID(0))
	if err != nil {
		t.Fatal(err)
	}
	if v4 == v1 {
		t.Fatal("4-request micro-batch must use its own graph version")
	}
	if again, _ := job.NextComputeVersion(device.GPUID(0)); again != v4 {
		t.Fatal("batched version not memoized")
	}
	c1, c4 := serialNodes(v1), serialNodes(v4)
	if c4 != c1 {
		t.Fatalf("batched graph has %d compute nodes, base %d — batching must scale the batch dimension, not the graph", c4, c1)
	}
}

func serialNodes(v *Version) int { return len(v.Compute.Nodes) }

func TestAdmissionShedsBeyondSLO(t *testing.T) {
	// A 1 microsecond SLO is unmeetable for any real model: every
	// open-loop arrival must be shed and nothing enqueued.
	job, admit := servingJob(t, 4, time.Microsecond, 0)
	admit(5)
	if job.ServingStats().Offered != 5 || job.ServingStats().Shed != 5 {
		t.Fatalf("Offered/Shed = %d/%d, want 5/5", job.ServingStats().Offered, job.ServingStats().Shed)
	}
	if job.PendingRequests() != 0 {
		t.Fatalf("shed requests were enqueued: %d pending", job.PendingRequests())
	}
}

func TestAdmissionAdmitsWithinSLO(t *testing.T) {
	// A 10 s SLO dwarfs any single-batch execution: nothing is shed
	// until the backlog projection actually exceeds it.
	job, admit := servingJob(t, 4, 10*time.Second, 0)
	admit(3)
	if job.ServingStats().Shed != 0 {
		t.Fatalf("Shed = %d with a 10s SLO and 3 requests", job.ServingStats().Shed)
	}
	if job.PendingRequests() != 3 {
		t.Fatalf("pending = %d, want 3", job.PendingRequests())
	}
}

func TestClosedLoopNeverSheds(t *testing.T) {
	eng, job := testJob(t, Config{
		Name: "s", Kind: KindServing, Batch: 1, ClosedLoop: true,
		SLO: time.Microsecond, // unmeetable, but closed loops self-limit
	})
	job.StartArrivals(func() {})
	eng.Run()
	if job.ServingStats().Shed != 0 {
		t.Fatalf("closed-loop request shed: %d", job.ServingStats().Shed)
	}
	if job.PendingRequests() != 1 {
		t.Fatalf("pending = %d, want 1", job.PendingRequests())
	}
}

func TestHoldForBatchWindow(t *testing.T) {
	job, admit := servingJob(t, 4, 0, 5*time.Millisecond)
	notified := 0
	job.StartArrivals(func() { notified++ })
	if job.HoldForBatch() {
		t.Fatal("hold with no ready inputs")
	}
	admit(2)
	job.BeginInput()
	job.FinishInput()
	if !job.HoldForBatch() {
		t.Fatal("one ready input below target must hold while the window is open")
	}
	// The max-wait timer re-pumps at the deadline and the hold lapses.
	job.eng.RunUntil(job.eng.Now() + 6*time.Millisecond)
	if job.HoldForBatch() {
		t.Fatal("hold persisted past the batch-wait deadline")
	}
	if notified == 0 {
		t.Fatal("batch-wait timer did not re-pump the scheduler")
	}
}

func TestHoldEndsAtTargetBatch(t *testing.T) {
	job, admit := servingJob(t, 2, 0, time.Hour)
	admit(2)
	job.BeginInput()
	job.FinishInput()
	if !job.HoldForBatch() {
		t.Fatal("sub-target batch must hold")
	}
	job.BeginInput()
	job.FinishInput()
	if job.HoldForBatch() {
		t.Fatal("full target batch must launch immediately")
	}
}

func TestAbandonComputeReturnsMicroBatch(t *testing.T) {
	job, admit := servingJob(t, 2, 0, 0)
	admit(2)
	for i := 0; i < 2; i++ {
		job.BeginInput()
		job.FinishInput()
	}
	job.BeginCompute()
	first := append([]time.Duration(nil), job.active...)
	job.AbandonCompute()
	if !job.InputAvailable() {
		t.Fatal("abandoned micro-batch not returned to ready queue")
	}
	job.BeginCompute()
	if len(job.active) != 2 || job.active[0] != first[0] || job.active[1] != first[1] {
		t.Fatalf("re-formed batch %v, want original %v in arrival order", job.active, first)
	}
	job.FinishCompute()
	if job.ServingStats().Served != 2 || job.Iterations != 1 {
		t.Fatalf("Served/Iterations = %d/%d after abandon+retry, want 2/1",
			job.ServingStats().Served, job.Iterations)
	}
}

func TestTargetBatchRespectsSLOBudget(t *testing.T) {
	// With no SLO the target is MaxBatch; with a budget only as large a
	// batch as still fits the SLO may form.
	free, _ := servingJob(t, 8, 0, 0)
	if got := free.TargetBatch(); got != 8 {
		t.Fatalf("TargetBatch() = %d with no SLO, want MaxBatch", got)
	}
	tight, _ := servingJob(t, 8, 2*time.Microsecond, 0)
	if got := tight.TargetBatch(); got != 1 {
		t.Fatalf("TargetBatch() = %d with unmeetable SLO, want 1", got)
	}
}
