package workload

import (
	"time"

	"switchflow/internal/device"
)

// Recovery cost model: the TensorFlow fault-tolerance story the paper's
// baselines rely on is periodic checkpoints to host memory plus restart
// from the last checkpoint. SwitchFlow uses the same primitives to
// self-heal after injected faults — a transient kernel/ECC error rolls a
// job back to its checkpoint and restarts it after an exponential
// backoff; a lost device additionally forces a migration with the state
// restored from the host-side checkpoint (the device copy is gone, so the
// cheap peer-to-peer path of §3.3 is unavailable).

// Restart backoff defaults: the first restart waits the base, each
// consecutive failure doubles it, and the cap bounds a crash loop.
const (
	defaultRestartBackoff = 250 * time.Millisecond
	maxBackoffDoublings   = 4 // cap = base << 4 = 16x
)

// CheckpointBytes is the host-side snapshot size: the persistent state
// for training jobs (weights + optimizer slots); serving jobs keep no
// mutable state, so their "checkpoint" is the immutable model itself and
// costs nothing to maintain.
func (j *Job) CheckpointBytes() int64 {
	if j.Training() {
		return j.WeightBytes()
	}
	return 0
}

// RecordCheckpoint marks the current iteration count as durably saved.
// Callers are responsible for paying the device-to-host transfer of
// CheckpointBytes before calling it.
func (j *Job) RecordCheckpoint() {
	j.checkpointIters = j.Iterations
	j.checkpointAt = j.eng.Now()
}

// CheckpointedIterations returns the iteration count of the last
// checkpoint (zero when never checkpointed).
func (j *Job) CheckpointedIterations() int { return j.checkpointIters }

// RollbackToCheckpoint rewinds a training job to its last checkpoint and
// returns how many iterations were lost. Serving jobs are stateless
// across requests, so they lose nothing (in-flight requests were already
// returned to the pending queue by AbandonCompute).
func (j *Job) RollbackToCheckpoint() int {
	if !j.Training() {
		return 0
	}
	lost := j.Iterations - j.checkpointIters
	if lost < 0 {
		lost = 0
	}
	j.Iterations = j.checkpointIters
	return lost
}

// NextRestartBackoff returns the virtual-time delay before the next
// restart attempt and advances the exponential schedule. A completed
// iteration (FinishCompute) resets the schedule.
func (j *Job) NextRestartBackoff() time.Duration {
	base := j.Cfg.RestartBackoff
	if base <= 0 {
		base = defaultRestartBackoff
	}
	if j.backoff == 0 {
		j.backoff = base
		return base
	}
	next := j.backoff * 2
	if cap := base << maxBackoffDoublings; next > cap {
		next = cap
	}
	j.backoff = next
	return next
}

// Restarted records one crash-and-restart recovery.
func (j *Job) Restarted() { j.Restarts++ }

// ClearCrash revives a crashed job so a recovery path can restart it.
func (j *Job) ClearCrash() { j.CrashErr = nil }

// ForgetDevice drops the job's memory accounting on dev without
// returning bytes to the pool — the device's contents are gone
// (device-lost fault invalidates the pool wholesale).
func (j *Job) ForgetDevice(dev device.ID) {
	delete(j.weightHome, dev)
	delete(j.intermediate, dev)
}
