// Package threadpool models TF's executor worker pools in virtual time:
// a fixed set of worker threads with per-worker local queues, work
// stealing, and owner-tagged abort. SwitchFlow shares one global pool
// among all sessions and keeps a temporary pool for preempted jobs (§3.2,
// §3.3); the active-thread limit models its wakeup-signal mechanism.
package threadpool

import (
	"time"

	"switchflow/internal/sim"
)

// Task is one unit of worker-thread work (a CPU op, or the launch of a GPU
// kernel).
type Task struct {
	// Name labels the task for debugging.
	Name string
	// Owner tags the task for Abort; typically an executor run.
	Owner any
	// Duration is how long the task occupies a worker thread.
	Duration time.Duration
	// Run fires when the task's duration elapses, still "on" the worker.
	Run func()
}

// Pool is a set of virtual worker threads.
type Pool struct {
	// Name labels the pool ("global", "temporary").
	Name string

	eng         *sim.Engine
	workers     []*worker
	activeLimit int
	busy        int
	busyTime    time.Duration
}

type worker struct {
	id    int
	queue []*Task
	busy  bool
}

// New creates a pool of n workers, all active.
func New(eng *sim.Engine, name string, n int) *Pool {
	p := &Pool{Name: name, eng: eng, activeLimit: n}
	for i := 0; i < n; i++ {
		p.workers = append(p.workers, &worker{id: i})
	}
	return p
}

// Size returns the number of worker threads.
func (p *Pool) Size() int { return len(p.workers) }

// ActiveLimit returns the current wakeup-signal limit.
func (p *Pool) ActiveLimit() int { return p.activeLimit }

// SetActiveLimit changes how many workers may run concurrently. Lowering
// it does not interrupt running tasks; raising it lets idle workers pick
// up queued work immediately (§3.3: thread counts in the two pools are
// balanced against the core count).
func (p *Pool) SetActiveLimit(n int) {
	if n < 0 {
		n = 0
	}
	if n > len(p.workers) {
		n = len(p.workers)
	}
	p.activeLimit = n
	p.dispatch()
}

// Busy returns the number of workers currently executing a task.
func (p *Pool) Busy() int { return p.busy }

// Queued returns the number of tasks waiting in local queues.
func (p *Pool) Queued() int {
	total := 0
	for _, w := range p.workers {
		total += len(w.queue)
	}
	return total
}

// BusyTime returns accumulated worker-seconds of executed task time.
func (p *Pool) BusyTime() time.Duration { return p.busyTime }

// Submit enqueues t. preferred selects the worker whose local queue should
// hold the task (the parent op's worker for inexpensive successors, §2.1);
// pass -1 for no affinity. front pushes to the head of the local queue
// (inexpensive ops ride immediately after their parent).
func (p *Pool) Submit(t *Task, preferred int, front bool) {
	if t.Duration < 0 {
		t.Duration = 0
	}
	w := p.pickWorker(preferred)
	if !w.busy && p.busy < p.activeLimit {
		p.start(w, t)
		return
	}
	// The preferred worker is busy; an idle worker steals the task right
	// away if the active limit allows (work stealing keeps queues short).
	if idle := p.idleWorker(); idle != nil && p.busy < p.activeLimit {
		p.start(idle, t)
		return
	}
	if front {
		w.queue = append([]*Task{t}, w.queue...)
	} else {
		w.queue = append(w.queue, t)
	}
}

// Abort removes every queued task tagged with owner and returns the count.
// Running tasks are unaffected (a thread cannot be yanked mid-op; the
// paper aborts queued nodes and lets running ones finish).
func (p *Pool) Abort(owner any) int {
	removed := 0
	for _, w := range p.workers {
		kept := w.queue[:0]
		for _, t := range w.queue {
			if t.Owner == owner {
				removed++
				continue
			}
			kept = append(kept, t)
		}
		w.queue = kept
	}
	return removed
}

func (p *Pool) pickWorker(preferred int) *worker {
	if preferred >= 0 && preferred < len(p.workers) {
		return p.workers[preferred]
	}
	// No affinity: prefer an idle worker, else the shortest queue.
	if w := p.idleWorker(); w != nil {
		return w
	}
	best := p.workers[0]
	for _, w := range p.workers[1:] {
		if len(w.queue) < len(best.queue) {
			best = w
		}
	}
	return best
}

func (p *Pool) idleWorker() *worker {
	for _, w := range p.workers {
		if !w.busy {
			return w
		}
	}
	return nil
}

func (p *Pool) start(w *worker, t *Task) {
	w.busy = true
	p.busy++
	p.busyTime += t.Duration
	p.eng.After(t.Duration, func() {
		if t.Run != nil {
			t.Run()
		}
		w.busy = false
		p.busy--
		p.next(w)
	})
}

// next lets worker w pick its next task: own queue first, then steal from
// the longest peer queue, else go idle.
func (p *Pool) next(w *worker) {
	if p.busy >= p.activeLimit {
		return
	}
	if len(w.queue) > 0 {
		t := w.queue[0]
		w.queue = w.queue[1:]
		p.start(w, t)
		return
	}
	if victim := p.longestQueue(); victim != nil {
		t := victim.queue[len(victim.queue)-1] // steal from the tail
		victim.queue = victim.queue[:len(victim.queue)-1]
		p.start(w, t)
	}
}

// dispatch pairs idle workers with queued work, used after raising the
// active limit.
func (p *Pool) dispatch() {
	for p.busy < p.activeLimit {
		w := p.idleWorker()
		if w == nil {
			return
		}
		before := p.busy
		p.next(w)
		if p.busy == before {
			return // no queued work anywhere
		}
	}
}

func (p *Pool) longestQueue() *worker {
	var best *worker
	for _, w := range p.workers {
		if len(w.queue) == 0 {
			continue
		}
		if best == nil || len(w.queue) > len(best.queue) {
			best = w
		}
	}
	return best
}
