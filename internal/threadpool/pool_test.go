package threadpool

import (
	"testing"
	"testing/quick"
	"time"

	"switchflow/internal/sim"
)

func submitN(p *Pool, n int, d time.Duration, owner any, done *int) {
	for i := 0; i < n; i++ {
		p.Submit(&Task{Owner: owner, Duration: d, Run: func() { *done++ }}, -1, false)
	}
}

func TestPoolRunsTasksInParallel(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, "global", 4)
	done := 0
	submitN(p, 4, 10*time.Millisecond, nil, &done)
	eng.Run()
	if done != 4 {
		t.Fatalf("completed %d tasks, want 4", done)
	}
	if eng.Now() != 10*time.Millisecond {
		t.Fatalf("4 tasks on 4 workers took %v, want 10ms", eng.Now())
	}
}

func TestPoolQueuesBeyondWorkers(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, "global", 2)
	done := 0
	submitN(p, 4, 10*time.Millisecond, nil, &done)
	eng.Run()
	if done != 4 {
		t.Fatalf("completed %d tasks, want 4", done)
	}
	if eng.Now() != 20*time.Millisecond {
		t.Fatalf("4 tasks on 2 workers took %v, want 20ms", eng.Now())
	}
}

func TestPoolWorkStealing(t *testing.T) {
	// All tasks queued on worker 0; idle workers must steal them.
	eng := sim.NewEngine()
	p := New(eng, "global", 4)
	done := 0
	// First task starts on worker 0; the rest pile onto its queue only if
	// no one is idle — but workers 1-3 are idle, so they run immediately.
	for i := 0; i < 4; i++ {
		p.Submit(&Task{Duration: 10 * time.Millisecond, Run: func() { done++ }}, 0, false)
	}
	eng.Run()
	if eng.Now() != 10*time.Millisecond {
		t.Fatalf("stealable tasks took %v, want 10ms (ran in parallel)", eng.Now())
	}
	if done != 4 {
		t.Fatalf("completed %d, want 4", done)
	}
}

func TestPoolAffinityQueueWhenSaturated(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, "global", 1)
	var order []string
	p.Submit(&Task{Name: "first", Duration: time.Millisecond,
		Run: func() { order = append(order, "first") }}, 0, false)
	p.Submit(&Task{Name: "back", Duration: time.Millisecond,
		Run: func() { order = append(order, "back") }}, 0, false)
	p.Submit(&Task{Name: "front", Duration: time.Millisecond,
		Run: func() { order = append(order, "front") }}, 0, true)
	eng.Run()
	want := []string{"first", "front", "back"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestPoolAbortRemovesQueuedOnly(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, "global", 1)
	type jobKey struct{ name string }
	victim := &jobKey{"victim"}
	other := &jobKey{"other"}
	var ran []string
	p.Submit(&Task{Owner: victim, Duration: 10 * time.Millisecond,
		Run: func() { ran = append(ran, "running") }}, 0, false)
	p.Submit(&Task{Owner: victim, Duration: time.Millisecond,
		Run: func() { ran = append(ran, "queued-victim") }}, 0, false)
	p.Submit(&Task{Owner: other, Duration: time.Millisecond,
		Run: func() { ran = append(ran, "queued-other") }}, 0, false)
	eng.Schedule(time.Millisecond, func() {
		if got := p.Abort(victim); got != 1 {
			t.Errorf("Abort removed %d, want 1", got)
		}
	})
	eng.Run()
	if len(ran) != 2 || ran[0] != "running" || ran[1] != "queued-other" {
		t.Fatalf("ran %v, want [running queued-other]", ran)
	}
}

func TestPoolActiveLimitThrottles(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, "global", 4)
	p.SetActiveLimit(1)
	done := 0
	submitN(p, 4, 10*time.Millisecond, nil, &done)
	eng.Run()
	if eng.Now() != 40*time.Millisecond {
		t.Fatalf("limit-1 pool took %v, want 40ms", eng.Now())
	}
	if done != 4 {
		t.Fatalf("completed %d, want 4", done)
	}
}

func TestPoolRaisingLimitDispatchesQueued(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, "global", 4)
	p.SetActiveLimit(1)
	done := 0
	submitN(p, 4, 10*time.Millisecond, nil, &done)
	eng.Schedule(5*time.Millisecond, func() { p.SetActiveLimit(4) })
	eng.Run()
	// First task runs 0-10ms; the other three start at 5ms.
	if eng.Now() != 15*time.Millisecond {
		t.Fatalf("after raising limit run took %v, want 15ms", eng.Now())
	}
}

func TestPoolCounters(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, "global", 2)
	done := 0
	submitN(p, 3, 10*time.Millisecond, nil, &done)
	if p.Busy() != 2 {
		t.Fatalf("Busy() = %d, want 2", p.Busy())
	}
	if p.Queued() != 1 {
		t.Fatalf("Queued() = %d, want 1", p.Queued())
	}
	eng.Run()
	if p.Busy() != 0 || p.Queued() != 0 {
		t.Fatalf("after drain Busy=%d Queued=%d", p.Busy(), p.Queued())
	}
	if p.BusyTime() != 30*time.Millisecond {
		t.Fatalf("BusyTime() = %v, want 30ms", p.BusyTime())
	}
}

func TestPoolZeroDurationTask(t *testing.T) {
	eng := sim.NewEngine()
	p := New(eng, "global", 1)
	done := false
	p.Submit(&Task{Duration: 0, Run: func() { done = true }}, -1, false)
	eng.Run()
	if !done {
		t.Fatal("zero-duration task never ran")
	}
}

// Property: every submitted task runs exactly once, for any worker count,
// task count, and duration mix.
func TestPoolCompletionProperty(t *testing.T) {
	prop := func(workerCount uint8, durs []uint8) bool {
		n := int(workerCount%8) + 1
		eng := sim.NewEngine()
		p := New(eng, "global", n)
		count := 0
		for _, d := range durs {
			p.Submit(&Task{
				Duration: time.Duration(d) * 100 * time.Microsecond,
				Run:      func() { count++ },
			}, int(d)%n, d%2 == 0)
		}
		eng.Run()
		return count == len(durs) && p.Busy() == 0 && p.Queued() == 0
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: with W workers and identical task durations d, makespan is
// ceil(n/W) * d — the pool never idles a worker while work is queued.
func TestPoolMakespanProperty(t *testing.T) {
	prop := func(workerCount, taskCount uint8) bool {
		w := int(workerCount%6) + 1
		n := int(taskCount % 40)
		eng := sim.NewEngine()
		p := New(eng, "global", w)
		d := time.Millisecond
		for i := 0; i < n; i++ {
			p.Submit(&Task{Duration: d}, i%w, false)
		}
		eng.Run()
		if n == 0 {
			return eng.Now() == 0
		}
		waves := (n + w - 1) / w
		return eng.Now() == time.Duration(waves)*d
	}
	cfg := &quick.Config{MaxCount: 80}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
