package harness

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func restore(prev int) func() {
	return func() { SetParallelism(prev) }
}

func TestMapPreservesInputOrder(t *testing.T) {
	defer restore(SetParallelism(8))()
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	got := Map(items, func(v int) int { return v * v })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	defer restore(SetParallelism(4))()
	if got := Map(nil, func(v int) int { return v }); len(got) != 0 {
		t.Fatalf("Map(nil) returned %d results", len(got))
	}
	got := Map([]int{7}, func(v int) int { return v + 1 })
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("Map single = %v, want [8]", got)
	}
}

func TestMapSerialWhenParallelismOne(t *testing.T) {
	defer restore(SetParallelism(1))()
	var concurrent, maxConcurrent atomic.Int32
	items := make([]int, 50)
	Map(items, func(int) int {
		c := concurrent.Add(1)
		for {
			m := maxConcurrent.Load()
			if c <= m || maxConcurrent.CompareAndSwap(m, c) {
				break
			}
		}
		concurrent.Add(-1)
		return 0
	})
	if maxConcurrent.Load() != 1 {
		t.Fatalf("parallelism 1 ran %d cells concurrently", maxConcurrent.Load())
	}
}

func TestMapUsesWorkers(t *testing.T) {
	defer restore(SetParallelism(4))()
	var started atomic.Int32
	release := make(chan struct{})
	items := make([]int, 4)
	done := make(chan []int)
	go func() {
		done <- Map(items, func(int) int {
			started.Add(1)
			<-release
			return 1
		})
	}()
	// All four cells must start concurrently; with fewer than 4 workers
	// this would deadlock rather than reach 4.
	for started.Load() < 4 {
		runtime.Gosched()
	}
	close(release)
	<-done
}

func TestMapMatchesSerialAcrossWorkerCounts(t *testing.T) {
	items := make([]int, 37)
	for i := range items {
		items[i] = i * 3
	}
	fn := func(v int) int { return v*v - v }
	defer restore(SetParallelism(1))()
	want := Map(items, fn)
	for _, workers := range []int{2, 3, 8, 64} {
		SetParallelism(workers)
		got := Map(items, fn)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	defer restore(SetParallelism(4))()
	defer func() {
		if v := recover(); v != "cell 13 exploded" {
			t.Fatalf("recovered %v, want cell 13's panic", v)
		}
	}()
	items := make([]int, 40)
	for i := range items {
		items[i] = i
	}
	Map(items, func(v int) int {
		if v == 13 {
			panic("cell 13 exploded")
		}
		return v
	})
	t.Fatal("Map returned instead of panicking")
}

func TestSetParallelismReturnsPrevious(t *testing.T) {
	prev := SetParallelism(3)
	defer SetParallelism(prev)
	if got := SetParallelism(5); got != 3 {
		t.Fatalf("SetParallelism returned %d, want 3", got)
	}
	if Parallelism() != 5 {
		t.Fatalf("Parallelism() = %d, want 5", Parallelism())
	}
	if got := SetParallelism(0); got != 5 {
		t.Fatalf("SetParallelism returned %d, want 5", got)
	}
	if Parallelism() < 1 {
		t.Fatalf("default Parallelism() = %d, want >= 1", Parallelism())
	}
}
