// Package harness fans independent experiment cells out across worker
// goroutines with results returned in input order.
//
// Every table and figure of the paper's evaluation is a sweep over
// independent cells — each cell builds its own sim.Engine and never shares
// mutable state with its neighbours — so the sweeps are embarrassingly
// parallel. Map preserves the exact output a serial loop would produce:
// results land at the index of their input, and each cell's simulation is
// deterministic on its own, so parallel output is bit-for-bit identical to
// serial output regardless of worker count or completion order. That is
// the harness's determinism contract, and tests assert it.
package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism is the configured worker count; <= 0 selects
// runtime.GOMAXPROCS(0). It is read atomically so experiment code can run
// under -race while a CLI flag or test adjusts it.
var parallelism atomic.Int32

// SetParallelism sets the worker count used by Map. Values <= 0 restore
// the default, runtime.GOMAXPROCS(0). It returns the previous setting so
// tests can restore it.
func SetParallelism(n int) int {
	return int(parallelism.Swap(int32(n)))
}

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := parallelism.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Map applies fn to every item and returns the results in input order.
// Cells execute on up to Parallelism() workers; with one worker (or one
// item) Map degenerates to a plain loop on the calling goroutine. If any
// fn panics, Map re-panics with the first panic value on the caller's
// goroutine once all workers have stopped, matching a serial loop's
// behaviour closely enough for the experiments' mustSpec-style failures.
func Map[T, R any](items []T, fn func(T) R) []R {
	out := make([]R, len(items))
	workers := Parallelism()
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, item := range items {
			out[i] = fn(item)
		}
		return out
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || panicked.Load() {
					return
				}
				func() {
					defer func() {
						if v := recover(); v != nil && panicked.CompareAndSwap(false, true) {
							panicVal = v
						}
					}()
					out[i] = fn(items[i])
				}()
			}
		}()
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
	return out
}
