package vnode

import (
	"testing"
	"time"

	"switchflow/internal/device"
)

// flatPrice prices every device identically: shares should split evenly.
func flatPrice(_ device.ID, samples int) (time.Duration, error) {
	return time.Duration(samples) * time.Millisecond, nil
}

func TestSingle(t *testing.T) {
	b := Single(device.GPUID(2), 64)
	if b.Len() != 1 || b.Node(0).Device != device.GPUID(2) || b.Node(0).Share != 64 {
		t.Fatalf("unexpected single binding %v", b)
	}
	if b.Total() != 64 {
		t.Fatalf("total = %d, want 64", b.Total())
	}
}

func TestSplitEven(t *testing.T) {
	devs := []device.ID{device.GPUID(0), device.GPUID(1)}
	b, err := Split(64, devs, flatPrice)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || b.Total() != 64 {
		t.Fatalf("binding %v: want 2 vnodes totalling 64", b)
	}
	if b.Node(0).Share != 32 || b.Node(1).Share != 32 {
		t.Fatalf("equal devices should split evenly, got %v", b)
	}
}

func TestSplitHeterogeneous(t *testing.T) {
	// gpu:1 runs 3x faster than gpu:0; its share should be ~3x larger.
	price := func(dev device.ID, samples int) (time.Duration, error) {
		d := time.Duration(samples) * time.Millisecond
		if dev.Index == 1 {
			d /= 3
		}
		return d, nil
	}
	b, err := Split(100, []device.ID{device.GPUID(0), device.GPUID(1)}, price)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() != 100 {
		t.Fatalf("total = %d, want 100", b.Total())
	}
	s0, s1 := b.Node(0).Share, b.Node(1).Share
	if s0 != 25 || s1 != 75 {
		t.Fatalf("3x-speed split of 100 = (%d, %d), want (25, 75)", s0, s1)
	}
}

func TestSplitRemainderIsDeterministic(t *testing.T) {
	devs := []device.ID{device.GPUID(0), device.GPUID(1), device.GPUID(2)}
	first, err := Split(100, devs, flatPrice)
	if err != nil {
		t.Fatal(err)
	}
	if first.Total() != 100 {
		t.Fatalf("total = %d, want 100", first.Total())
	}
	for i := 0; i < 10; i++ {
		again, err := Split(100, devs, flatPrice)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < first.Len(); j++ {
			if first.Node(j) != again.Node(j) {
				t.Fatalf("run %d differs at vnode %d: %v vs %v", i, j, first.Node(j), again.Node(j))
			}
		}
	}
}

func TestSplitMinimumShare(t *testing.T) {
	// A device 1000x slower than the others still gets one sample.
	price := func(dev device.ID, samples int) (time.Duration, error) {
		d := time.Duration(samples) * time.Millisecond
		if dev.Index == 2 {
			d *= 1000
		}
		return d, nil
	}
	devs := []device.ID{device.GPUID(0), device.GPUID(1), device.GPUID(2)}
	b, err := Split(64, devs, price)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() != 64 {
		t.Fatalf("total = %d, want 64", b.Total())
	}
	for i := 0; i < b.Len(); i++ {
		if b.Node(i).Share < 1 {
			t.Fatalf("vnode %d got share %d, want >= 1", i, b.Node(i).Share)
		}
	}
}

func TestSplitRepeatedDevice(t *testing.T) {
	// Two vnodes time-multiplexed on one device split it evenly.
	devs := []device.ID{device.GPUID(0), device.GPUID(0)}
	b, err := Split(10, devs, flatPrice)
	if err != nil {
		t.Fatal(err)
	}
	if b.Node(0).Share != 5 || b.Node(1).Share != 5 {
		t.Fatalf("repeated device split %v, want 5+5", b)
	}
	if got := b.Devices(); len(got) != 1 || got[0] != device.GPUID(0) {
		t.Fatalf("Devices() = %v, want one distinct device", got)
	}
	if on := b.On(device.GPUID(0)); len(on) != 2 || on[0] != 0 || on[1] != 1 {
		t.Fatalf("On() = %v, want [0 1]", on)
	}
}

func TestSplitErrors(t *testing.T) {
	if _, err := Split(4, nil, flatPrice); err == nil {
		t.Fatal("empty device list should fail")
	}
	devs := []device.ID{device.GPUID(0), device.GPUID(1), device.GPUID(2)}
	if _, err := Split(2, devs, flatPrice); err == nil {
		t.Fatal("batch smaller than vnode count should fail")
	}
}

func TestBindingString(t *testing.T) {
	b := Single(device.GPUID(1), 8)
	if got := b.String(); got != "gpu:1(8)" {
		t.Fatalf("String() = %q", got)
	}
}
