// Package vnode is the virtual-node placement layer between the
// scheduler core and the device model, after VirtualFlow
// (arXiv:2009.09523): a job's global batch is represented as N virtual
// nodes, each carrying a share of the batch and bound to one physical
// device. The binding is a runtime property — the core re-splits it at
// epoch-safe points to grow or shrink a running job's device set, heal
// around a lost device without a restart, or drain a device for
// maintenance. Heterogeneous mixes are first-class: shares are sized in
// inverse proportion to each device's priced step time, so a 1080 Ti and
// a 2080 Ti bound to the same job finish their shards together.
//
// The package is deliberately device-model-thin: it knows device
// identities and a pricing callback, nothing else, so workload and core
// own when bindings change and vnode owns only what a valid binding is.
package vnode

import (
	"fmt"
	"time"

	"switchflow/internal/device"
)

// VNode is one virtual node: a fixed index within its job, the physical
// device it is currently bound to, and the share of the job's global
// batch (in samples) its shard computes per step.
type VNode struct {
	// Index is the vnode's stable position within the job's binding.
	Index int
	// Device is the physical device the vnode is bound to.
	Device device.ID
	// Share is the number of samples of the global batch this vnode
	// computes each step; shares across a binding sum to the batch.
	Share int
}

// Binding is an immutable snapshot of a job's virtual-node placement.
// Operations that change placement (grow, shrink, rebind) produce a new
// Binding via Split; the zero value is an empty binding.
type Binding struct {
	nodes []VNode
}

// Pricer prices one training step of the given sample count on dev (the
// serialized kernel cost under the roofline model — workload supplies it
// from internal/cost). Split uses it to size heterogeneous shares.
type Pricer func(dev device.ID, samples int) (time.Duration, error)

// Single is the degenerate one-vnode binding every legacy job has: the
// whole batch on one device.
func Single(dev device.ID, batch int) Binding {
	return Binding{nodes: []VNode{{Index: 0, Device: dev, Share: batch}}}
}

// Split distributes a global batch of total samples across one vnode per
// entry of devs, sizing each share in inverse proportion to the device's
// priced step time so all shards finish together (VirtualFlow §4:
// throughput-proportional partitioning over heterogeneous GPUs). Every
// vnode receives at least one sample; remainders go to the fastest
// devices first, ties broken by vnode index so the result is
// deterministic. Devices may repeat — repeated entries time-multiplex
// the device and split its throughput evenly.
func Split(total int, devs []device.ID, price Pricer) (Binding, error) {
	n := len(devs)
	if n == 0 {
		return Binding{}, fmt.Errorf("vnode: split needs at least one device")
	}
	if total < n {
		return Binding{}, fmt.Errorf("vnode: batch %d cannot split across %d virtual nodes (each needs >= 1 sample)", total, n)
	}
	if n == 1 {
		return Single(devs[0], total), nil
	}
	// Speed of each vnode ~ 1 / (step price at an equal share). Pricing at
	// the equal split (rather than the full batch) keeps the probe cheap
	// and stays within the monotone region of the roofline model; the
	// relative speeds are what matters.
	probe := total / n
	if probe < 1 {
		probe = 1
	}
	speeds := make([]float64, n)
	var sum float64
	for i, dev := range devs {
		d, err := price(dev, probe)
		if err != nil {
			return Binding{}, fmt.Errorf("vnode: price %v: %w", dev, err)
		}
		if d <= 0 {
			d = time.Nanosecond
		}
		speeds[i] = 1 / d.Seconds()
		sum += speeds[i]
	}
	// Largest-remainder apportionment with a one-sample floor.
	nodes := make([]VNode, n)
	remainders := make([]float64, n)
	assigned := 0
	for i, dev := range devs {
		ideal := float64(total) * speeds[i] / sum
		share := int(ideal)
		if share < 1 {
			share = 1
		}
		nodes[i] = VNode{Index: i, Device: dev, Share: share}
		remainders[i] = ideal - float64(share)
		assigned += share
	}
	for assigned < total {
		best := 0
		for i := 1; i < n; i++ {
			if remainders[i] > remainders[best] {
				best = i
			}
		}
		nodes[best].Share++
		remainders[best]--
		assigned++
	}
	for assigned > total {
		// Over-assignment only happens via the one-sample floor on very
		// slow devices; take the excess back from the largest shares.
		best := 0
		for i := 1; i < n; i++ {
			if nodes[i].Share > nodes[best].Share {
				best = i
			}
		}
		if nodes[best].Share <= 1 {
			break // unreachable given total >= n, kept as a hard stop
		}
		//swlint:allow counterflow repayment loop: each pass takes one unit back from a distinct largest share; `assigned > total` bounds it
		nodes[best].Share--
		//swlint:allow counterflow assigned mirrors the Share repayment above and the loop condition bounds it
		assigned--
	}
	return Binding{nodes: nodes}, nil
}

// Len returns the number of virtual nodes.
func (b Binding) Len() int { return len(b.nodes) }

// Node returns vnode i.
func (b Binding) Node(i int) VNode { return b.nodes[i] }

// Nodes returns a copy of the vnodes in index order.
func (b Binding) Nodes() []VNode {
	out := make([]VNode, len(b.nodes))
	copy(out, b.nodes)
	return out
}

// Devices returns the distinct bound devices in first-use (vnode index)
// order — a deterministic order independent of map iteration.
func (b Binding) Devices() []device.ID {
	var out []device.ID
	for _, n := range b.nodes {
		seen := false
		for _, d := range out {
			if d == n.Device {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, n.Device)
		}
	}
	return out
}

// On returns the indices of the vnodes bound to dev, in index order.
func (b Binding) On(dev device.ID) []int {
	var out []int
	for _, n := range b.nodes {
		if n.Device == dev {
			out = append(out, n.Index)
		}
	}
	return out
}

// Uses reports whether any vnode is bound to dev.
func (b Binding) Uses(dev device.ID) bool { return len(b.On(dev)) > 0 }

// Total returns the summed shares (the job's global batch).
func (b Binding) Total() int {
	t := 0
	for _, n := range b.nodes {
		t += n.Share
	}
	return t
}

// DeviceList returns the per-vnode device assignment in index order —
// the input Split needs to re-split the same topology.
func (b Binding) DeviceList() []device.ID {
	out := make([]device.ID, len(b.nodes))
	for i, n := range b.nodes {
		out[i] = n.Device
	}
	return out
}

// String renders the binding as "gpu:0(42)+gpu:1(86)".
func (b Binding) String() string {
	s := ""
	for i, n := range b.nodes {
		if i > 0 {
			s += "+"
		}
		s += fmt.Sprintf("%s(%d)", n.Device, n.Share)
	}
	return s
}
