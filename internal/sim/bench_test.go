package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineScheduleStep measures the steady-state schedule-then-fire
// cycle with a realistic queue depth (a few hundred outstanding events, the
// regime the experiment sweeps run in).
func BenchmarkEngineScheduleStep(b *testing.B) {
	const depth = 256
	e := NewEngine()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+depth, fn)
		e.Step()
	}
}

// BenchmarkEngineCancel measures the schedule-cancel pattern the GPU model
// hits on every kernel enqueue/retire (reschedule cancels the pending
// completion event and schedules a new one).
func BenchmarkEngineCancel(b *testing.B) {
	const depth = 128
	e := NewEngine()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+depth/2, fn)
		ev.Cancel()
	}
}

// BenchmarkEngineMixed interleaves schedules, cancels, and steps in the
// proportions a serving-plus-training cell produces: most events fire, a
// steady fraction are cancelled completion events.
func BenchmarkEngineMixed(b *testing.B) {
	const depth = 256
	e := NewEngine()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+depth/4, fn)
		e.Schedule(e.Now()+depth, fn)
		if i%4 != 0 {
			ev.Cancel()
		}
		e.Step()
	}
}

// eventQueue abstracts over the wheel Engine and the HeapEngine reference
// so the depth benchmarks below run both from one body and report the
// speedup regime-by-regime.
type eventQueue[E any] interface {
	Schedule(at time.Duration, fn func()) E
	Step() bool
	Now() time.Duration
}

type cancellable interface{ Cancel() }

// benchScheduleStep is the steady-state schedule-then-fire cycle at a fixed
// queue depth — the regime fleet-scale serving sweeps live in once every
// machine has thousands of in-flight arrival/completion events.
func benchScheduleStep[E any](b *testing.B, e eventQueue[E], depth time.Duration) {
	fn := func() {}
	for i := time.Duration(0); i < depth; i++ {
		e.Schedule(i, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+depth, fn)
		e.Step()
	}
}

// benchRescheduleStorm is the cancel-heavy pattern the GPU model produces
// under preemption churn: every iteration cancels a pending completion and
// schedules its replacement, on top of a deep standing queue.
func benchRescheduleStorm[E cancellable](b *testing.B, e eventQueue[E], depth time.Duration) {
	fn := func() {}
	for i := time.Duration(0); i < depth; i++ {
		e.Schedule(i, fn)
	}
	pending := make([]E, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(pending) == cap(pending) {
			for _, ev := range pending {
				ev.Cancel()
			}
			pending = pending[:0]
		}
		pending = append(pending, e.Schedule(e.Now()+depth/2, fn))
		e.Schedule(e.Now()+depth, fn)
		e.Step()
	}
}

// BenchmarkEngineDepth compares wheel vs heap across queue depths. Depth
// 256 is the PR-1 regime; 4k and 64k are the fleet-scale regimes that
// motivated the wheel (ROADMAP item 2).
func BenchmarkEngineDepth(b *testing.B) {
	for _, depth := range []time.Duration{256, 4096, 65536} {
		depth := depth
		b.Run("wheel/"+depth.String(), func(b *testing.B) {
			benchScheduleStep[Event](b, NewEngine(), depth)
		})
		b.Run("heap/"+depth.String(), func(b *testing.B) {
			benchScheduleStep[HeapEvent](b, NewHeapEngine(), depth)
		})
	}
}

// BenchmarkEngineRescheduleStorm compares wheel vs heap under cancel-heavy
// churn at fleet-scale depth.
func BenchmarkEngineRescheduleStorm(b *testing.B) {
	for _, depth := range []time.Duration{4096, 65536} {
		depth := depth
		b.Run("wheel/"+depth.String(), func(b *testing.B) {
			benchRescheduleStorm[Event](b, NewEngine(), depth)
		})
		b.Run("heap/"+depth.String(), func(b *testing.B) {
			benchRescheduleStorm[HeapEvent](b, NewHeapEngine(), depth)
		})
	}
}
