package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineScheduleStep measures the steady-state schedule-then-fire
// cycle with a realistic queue depth (a few hundred outstanding events, the
// regime the experiment sweeps run in).
func BenchmarkEngineScheduleStep(b *testing.B) {
	const depth = 256
	e := NewEngine()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+depth, fn)
		e.Step()
	}
}

// BenchmarkEngineCancel measures the schedule-cancel pattern the GPU model
// hits on every kernel enqueue/retire (reschedule cancels the pending
// completion event and schedules a new one).
func BenchmarkEngineCancel(b *testing.B) {
	const depth = 128
	e := NewEngine()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+depth/2, fn)
		ev.Cancel()
	}
}

// BenchmarkEngineMixed interleaves schedules, cancels, and steps in the
// proportions a serving-plus-training cell produces: most events fire, a
// steady fraction are cancelled completion events.
func BenchmarkEngineMixed(b *testing.B) {
	const depth = 256
	e := NewEngine()
	fn := func() {}
	for i := 0; i < depth; i++ {
		e.Schedule(time.Duration(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+depth/4, fn)
		e.Schedule(e.Now()+depth, fn)
		if i%4 != 0 {
			ev.Cancel()
		}
		e.Step()
	}
}
