package sim

import (
	"fmt"
	"time"
)

// HeapEngine is the PR-1 event queue — an inlined 4-ary min-heap with a
// free list — retained verbatim as a reference implementation. It is not
// used by any production path: the differential property and fuzz tests
// drive it and the timing-wheel Engine with identical schedule/cancel/step
// scripts and assert identical firing sequences, and the swbench engine
// benchmark suite measures the wheel's speedup against it. Its semantics
// (strict (at, seq) firing order, stale-handle-safe cancellation, zero
// allocation at steady state) define the contract the wheel must match.
type HeapEngine struct {
	now   time.Duration
	seq   uint64
	heap  []*heapEvent // 4-ary min-heap ordered by (at, seq)
	free  []*heapEvent // recycled event structs
	fired uint64
}

// HeapEvent is a handle to a scheduled HeapEngine callback, mirroring
// Event.
type HeapEvent struct {
	ev  *heapEvent
	seq uint64
	at  time.Duration
}

// At reports the virtual time the event is (or was) scheduled for.
func (h HeapEvent) At() time.Duration { return h.at }

// Cancel prevents the event from firing; stale or zero handles are no-ops.
func (h HeapEvent) Cancel() {
	ev := h.ev
	if ev == nil || ev.seq != h.seq {
		return
	}
	ev.eng.remove(ev)
}

// Scheduled reports whether the event is still pending.
func (h HeapEvent) Scheduled() bool {
	return h.ev != nil && h.ev.seq == h.seq
}

// heapEvent is the engine-owned state behind a HeapEvent handle.
type heapEvent struct {
	eng   *HeapEngine
	at    time.Duration
	seq   uint64
	fn    func()
	index int32 // position in the heap; -1 while on the free list
}

// NewHeapEngine returns an empty reference engine at virtual time zero.
func NewHeapEngine() *HeapEngine {
	return &HeapEngine{}
}

// Now returns the current virtual time.
func (e *HeapEngine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far.
func (e *HeapEngine) Fired() uint64 { return e.fired }

// Pending returns the number of live events still scheduled.
func (e *HeapEngine) Pending() int { return len(e.heap) }

// Schedule registers fn to run at absolute virtual time at.
func (e *HeapEngine) Schedule(at time.Duration, fn func()) HeapEvent {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *heapEvent
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &heapEvent{eng: e}
	}
	e.seq++
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	e.push(ev)
	return HeapEvent{ev: ev, seq: ev.seq, at: at}
}

// After registers fn to run d from the current virtual time.
func (e *HeapEngine) After(d time.Duration, fn func()) HeapEvent {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Step fires the next event, if any, and reports whether one fired.
func (e *HeapEngine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.at
	fn := ev.fn
	e.recycle(ev)
	e.fired++
	fn()
	return true
}

// Run fires events until the queue drains.
func (e *HeapEngine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
func (e *HeapEngine) RunUntil(t time.Duration) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor is RunUntil relative to the current time.
func (e *HeapEngine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

func heapLess(a, b *heapEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *HeapEngine) push(ev *heapEvent) {
	ev.index = int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.siftUp(int(ev.index))
}

func (e *HeapEngine) popMin() *heapEvent {
	ev := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		last.index = 0
		e.siftDown(0)
	}
	return ev
}

func (e *HeapEngine) remove(ev *heapEvent) {
	i := int(ev.index)
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if i != n {
		e.heap[i] = last
		last.index = int32(i)
		e.siftDown(i)
		if int(last.index) == i {
			e.siftUp(i)
		}
	}
	e.recycle(ev)
}

func (e *HeapEngine) recycle(ev *heapEvent) {
	ev.fn = nil
	ev.seq = 0
	ev.index = -1
	e.free = append(e.free, ev)
}

func (e *HeapEngine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !heapLess(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.heap[i].index = int32(i)
		i = p
	}
	e.heap[i] = ev
	ev.index = int32(i)
}

func (e *HeapEngine) siftDown(i int) {
	ev := e.heap[i]
	n := len(e.heap)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if heapLess(e.heap[k], e.heap[m]) {
				m = k
			}
		}
		if !heapLess(e.heap[m], ev) {
			break
		}
		e.heap[i] = e.heap[m]
		e.heap[i].index = int32(i)
		i = m
	}
	e.heap[i] = ev
	ev.index = int32(i)
}
