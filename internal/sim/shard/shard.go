// Package shard advances a fleet of independent sim.Engines in parallel
// within bounded time epochs, the partitioned-execution idea the TF papers
// apply to dataflow workers brought to the simulator itself: each machine
// owns its engine and runs its own event loop, and cross-machine
// interaction is confined to epoch barriers where every engine sits at the
// same virtual instant.
//
// Determinism contract: between barriers the engines share no mutable
// state, so each advances exactly as it would serially regardless of
// worker count or completion order (the same argument as harness.Map's
// sweep-level contract, one level down). Barrier hooks run serially on the
// calling goroutine in registration order, with every engine stopped at
// the barrier time, so cross-shard decisions (placement, migration,
// routing) see one consistent global state and may schedule work onto any
// engine at or after the barrier. Per-machine observation streams are
// merged with obs.Merge by (virtual time, machine index, emit seq), which
// reproduces the order a serial interleaving would have produced —
// byte-identical traces, serial or parallel.
//
// The epoch length is a fidelity knob, not a correctness knob: machines
// cannot observe each other's intra-epoch progress, so interactions land
// with up to one epoch of latency. Pick an epoch at or below the latency
// the modeled control plane would have (the cluster layer defaults to its
// placement-loop period).
package shard

import (
	"fmt"
	"time"

	"switchflow/internal/harness"
	"switchflow/internal/sim"
)

// Group is a set of per-machine engines advancing in lockstep epochs.
type Group struct {
	engines  []*sim.Engine
	epoch    time.Duration
	now      time.Duration
	barriers []func(now time.Duration)
}

// New creates a group over the given engines with the given epoch length.
// All engines must agree on the current virtual time (freshly built
// engines all sit at zero), and the epoch must be positive.
func New(epoch time.Duration, engines ...*sim.Engine) *Group {
	if epoch <= 0 {
		panic(fmt.Sprintf("shard: epoch %v must be positive", epoch))
	}
	if len(engines) == 0 {
		panic("shard: group needs at least one engine")
	}
	now := engines[0].Now()
	for i, e := range engines {
		if e.Now() != now {
			panic(fmt.Sprintf("shard: engine %d at %v, engine 0 at %v; engines must start aligned", i, e.Now(), now))
		}
	}
	return &Group{engines: engines, epoch: epoch, now: now}
}

// Now returns the group's barrier-aligned virtual time: every engine has
// fired all events up to it.
func (g *Group) Now() time.Duration { return g.now }

// Epoch returns the configured epoch length.
func (g *Group) Epoch() time.Duration { return g.epoch }

// Engines returns the member engines, indexed by machine id. The slice is
// the group's own; callers must not reorder it.
func (g *Group) Engines() []*sim.Engine { return g.engines }

// AtBarrier registers fn to run at every epoch barrier, including the
// final (possibly short) epoch ending exactly at a RunUntil horizon. Hooks
// run serially in registration order with all engines stopped at now; they
// may schedule onto any engine at or after now.
func (g *Group) AtBarrier(fn func(now time.Duration)) {
	g.barriers = append(g.barriers, fn)
}

// RunUntil advances every engine to t in epoch-sized strides. Within an
// epoch the engines advance in parallel via harness.Map; at each stride
// boundary (and at t itself) the barrier hooks run. A horizon at or before
// the current time is a no-op: barriers fire only when time advances, so
// repeated RunUntil calls to the same horizon do not re-run hooks.
func (g *Group) RunUntil(t time.Duration) {
	for g.now < t {
		next := g.now + g.epoch
		if next > t {
			next = t
		}
		if len(g.engines) == 1 {
			g.engines[0].RunUntil(next)
		} else {
			harness.Map(g.engines, func(e *sim.Engine) struct{} {
				e.RunUntil(next)
				return struct{}{}
			})
		}
		g.now = next
		for _, fn := range g.barriers {
			fn(g.now)
		}
	}
}

// RunFor is RunUntil relative to the current barrier time.
func (g *Group) RunFor(d time.Duration) { g.RunUntil(g.now + d) }
