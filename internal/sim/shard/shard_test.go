package shard

import (
	"reflect"
	"testing"
	"time"

	"switchflow/internal/harness"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
)

// buildFleet wires n machines, each with its own engine, bus, and
// recorder, running a self-perpetuating workload whose timing differs per
// machine, plus a barrier hook that does a cross-machine interaction (the
// lowest-time machine schedules onto its right neighbour).
func buildFleet(n int, epoch time.Duration) (*Group, []*obs.Recorder) {
	engines := make([]*sim.Engine, n)
	recs := make([]*obs.Recorder, n)
	buses := make([]*obs.Bus, n)
	for i := range engines {
		engines[i] = sim.NewEngine()
		buses[i] = obs.NewBus(engines[i])
		recs[i] = obs.NewRecorder(0)
		buses[i].Subscribe(recs[i])
	}
	for i := range engines {
		i := i
		period := time.Duration(i+1) * 7 * time.Microsecond
		var tick func()
		tick = func() {
			buses[i].Emit(obs.Event{Kind: obs.KindOpSched, Ctx: i, Name: "tick"})
			engines[i].After(period, tick)
		}
		engines[i].After(period, tick)
	}
	g := New(epoch, engines...)
	g.AtBarrier(func(now time.Duration) {
		// Cross-machine interaction at the barrier: machine 0 pokes each
		// neighbour, which emits on the neighbour's own bus.
		for j := 1; j < n; j++ {
			j := j
			engines[j].Schedule(now, func() {
				buses[j].Emit(obs.Event{Kind: obs.KindPlace, Ctx: j, Name: "barrier-poke"})
			})
		}
	})
	return g, recs
}

func runFleet(n int, epoch, horizon time.Duration) []obs.Event {
	g, recs := buildFleet(n, epoch)
	g.RunUntil(horizon)
	streams := make([][]obs.Event, len(recs))
	for i, r := range recs {
		streams[i] = r.Events()
	}
	return obs.Merge(streams...)
}

// TestSerialParallelIdentical is the epoch-barrier merge proof: the merged
// trace of a sharded fleet must be identical whether the epochs execute on
// one worker or many.
func TestSerialParallelIdentical(t *testing.T) {
	const n, epoch, horizon = 5, 50 * time.Microsecond, 3 * time.Millisecond
	prev := harness.SetParallelism(1)
	serial := runFleet(n, epoch, horizon)
	harness.SetParallelism(8)
	parallel := runFleet(n, epoch, horizon)
	harness.SetParallelism(prev)
	if len(serial) == 0 {
		t.Fatal("fleet produced no events")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial and parallel merged traces differ: %d vs %d events", len(serial), len(parallel))
	}
}

// TestMergeOrdersByTimeThenMachineThenSeq pins the merge key down exactly.
func TestMergeOrdersByTimeThenMachineThenSeq(t *testing.T) {
	a := []obs.Event{{Seq: 1, Time: 10}, {Seq: 2, Time: 30}, {Seq: 3, Time: 30}}
	b := []obs.Event{{Seq: 1, Time: 10}, {Seq: 2, Time: 20}}
	got := obs.Merge(a, b)
	want := []obs.Event{
		{Seq: 1, Time: 10}, // machine 0 wins the t=10 tie
		{Seq: 1, Time: 10},
		{Seq: 2, Time: 20},
		{Seq: 2, Time: 30}, // seq order within machine 0 preserved
		{Seq: 3, Time: 30},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge order = %+v, want %+v", got, want)
	}
	if got[0] != a[0] || got[1] != b[0] {
		t.Fatal("t=10 tie not broken by stream index")
	}
}

func TestBarriersFireAtEpochBoundariesAndHorizon(t *testing.T) {
	engines := []*sim.Engine{sim.NewEngine(), sim.NewEngine()}
	g := New(10*time.Microsecond, engines...)
	var at []time.Duration
	g.AtBarrier(func(now time.Duration) {
		at = append(at, now)
		for _, e := range engines {
			if e.Now() != now {
				t.Fatalf("engine at %v inside barrier at %v", e.Now(), now)
			}
		}
	})
	g.RunUntil(25 * time.Microsecond)
	want := []time.Duration{10 * time.Microsecond, 20 * time.Microsecond, 25 * time.Microsecond}
	if !reflect.DeepEqual(at, want) {
		t.Fatalf("barrier times %v, want %v", at, want)
	}
	// Re-running to the same horizon is a no-op: no duplicate barriers.
	g.RunUntil(25 * time.Microsecond)
	if len(at) != len(want) {
		t.Fatalf("RunUntil to current time re-fired barriers: %v", at)
	}
	g.RunFor(5 * time.Microsecond)
	if g.Now() != 30*time.Microsecond {
		t.Fatalf("Now() = %v after RunFor, want 30µs", g.Now())
	}
}

func TestBarrierMaySchedulePastWork(t *testing.T) {
	eng := sim.NewEngine()
	g := New(time.Microsecond, eng)
	fired := make([]time.Duration, 0, 4)
	g.AtBarrier(func(now time.Duration) {
		if now == 2*time.Microsecond {
			// Scheduling exactly at the barrier instant must fire inside
			// the next epoch, not be lost.
			eng.Schedule(now, func() { fired = append(fired, eng.Now()) })
		}
	})
	g.RunUntil(4 * time.Microsecond)
	if len(fired) != 1 || fired[0] != 2*time.Microsecond {
		t.Fatalf("barrier-scheduled event fired at %v, want [2µs]", fired)
	}
}

func TestNewValidatesInputs(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero epoch", func() { New(0, sim.NewEngine()) })
	mustPanic("no engines", func() { New(time.Microsecond) })
	mustPanic("misaligned engines", func() {
		a, b := sim.NewEngine(), sim.NewEngine()
		b.RunUntil(5)
		New(time.Microsecond, a, b)
	})
}
