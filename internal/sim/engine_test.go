package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.Run()
	want := []time.Duration{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineTiesFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order %v, want ascending", got)
		}
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestEngineAfterNegativeClampsToNow(t *testing.T) {
	e := NewEngine()
	var at time.Duration = -1
	e.Schedule(10, func() {
		e.After(-5, func() { at = e.Now() })
	})
	e.Run()
	if at != 10 {
		t.Fatalf("After(-5) fired at %v, want 10", at)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("schedule in past did not panic")
			}
		}()
		e.Schedule(5, func() {})
	})
	e.Run()
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", e.Fired())
	}
}

func TestEventCancelDuringRun(t *testing.T) {
	e := NewEngine()
	var later Event
	fired := false
	e.Schedule(1, func() { later.Cancel() })
	later = e.Schedule(2, func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	evs := make([]Event, 5)
	for i := range evs {
		evs[i] = e.Schedule(time.Duration(i+1), func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", e.Pending())
	}
	evs[1].Cancel()
	evs[3].Cancel()
	if e.Pending() != 3 {
		t.Fatalf("Pending() after two cancels = %d, want 3", e.Pending())
	}
	evs[3].Cancel() // double cancel is a no-op
	if e.Pending() != 3 {
		t.Fatalf("Pending() after double cancel = %d, want 3", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() after Run = %d, want 0", e.Pending())
	}
	if e.Fired() != 3 {
		t.Fatalf("Fired() = %d, want 3", e.Fired())
	}
}

func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(1, func() {})
	e.Step() // fires first; its event struct returns to the free list
	fired := false
	e.Schedule(2, func() { fired = true }) // reuses the recycled struct
	first.Cancel()                         // stale: must not touch the new event
	if first.Scheduled() {
		t.Fatal("fired handle still reports Scheduled")
	}
	e.Run()
	if !fired {
		t.Fatal("stale Cancel removed an unrelated recycled event")
	}
}

func TestScheduledReflectsLifecycle(t *testing.T) {
	e := NewEngine()
	var zero Event
	if zero.Scheduled() {
		t.Fatal("zero handle reports Scheduled")
	}
	ev := e.Schedule(1, func() {})
	if !ev.Scheduled() {
		t.Fatal("pending event not Scheduled")
	}
	ev.Cancel()
	if ev.Scheduled() {
		t.Fatal("cancelled event still Scheduled")
	}
}

func TestSteadyStateReusesEvents(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {})
	e.Step()
	if len(e.free) != 1 {
		t.Fatalf("free list has %d entries, want 1", len(e.free))
	}
	recycled := e.free[0]
	ev := e.Schedule(2, func() {})
	if ev.ev != recycled {
		t.Fatal("Schedule did not reuse the recycled event struct")
	}
	if len(e.free) != 0 {
		t.Fatalf("free list has %d entries after reuse, want 0", len(e.free))
	}
}

// Property: cancelling an arbitrary subset leaves the survivors firing in
// exactly the original (time, schedule-order) sequence.
func TestCancelPreservesOrderProperty(t *testing.T) {
	type rec struct {
		at  time.Duration
		seq int
	}
	prop := func(delays []uint16, mask []bool) bool {
		e := NewEngine()
		var got []rec
		evs := make([]Event, len(delays))
		for i, d := range delays {
			i, d := i, d
			evs[i] = e.Schedule(time.Duration(d), func() {
				got = append(got, rec{time.Duration(d), i})
			})
		}
		var want []rec
		for i, d := range delays {
			if i < len(mask) && mask[i] {
				evs[i].Cancel()
				continue
			}
			want = append(want, rec{time.Duration(d), i})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		e.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilHonoursHorizon(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	for _, d := range []time.Duration{10, 20, 30} {
		d := d
		e.Schedule(d, func() { got = append(got, d) })
	}
	e.RunUntil(20)
	if len(got) != 2 {
		t.Fatalf("fired %d events, want 2", len(got))
	}
	if e.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", e.Now())
	}
	e.Run()
	if len(got) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(got))
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("Now() = %v, want 500", e.Now())
	}
}

func TestRunUntilFiresEventsScheduledWithinHorizon(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.RunUntil(100)
	if at != 15 {
		t.Fatalf("nested event fired at %v, want 15", at)
	}
}

func TestRunForIsRelative(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	e.RunFor(50)
	if e.Now() != 150 {
		t.Fatalf("Now() = %v, want 150", e.Now())
	}
}

func TestStepSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(1, func() {})
	fired := false
	e.Schedule(2, func() { fired = true })
	ev.Cancel()
	if !e.Step() {
		t.Fatal("Step() = false with live event pending")
	}
	if !fired {
		t.Fatal("live event did not fire")
	}
	if e.Step() {
		t.Fatal("Step() = true on empty queue")
	}
}

func TestFiredCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

// Property: regardless of the (non-negative) delays chosen, events fire in
// nondecreasing time order and the clock never moves backwards.
func TestEngineMonotonicProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		last := time.Duration(-1)
		ok := true
		for _, d := range delays {
			e.Schedule(time.Duration(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok && e.Fired() == uint64(len(delays))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: RunUntil(t) fires exactly the events with timestamp <= t.
func TestRunUntilBoundaryProperty(t *testing.T) {
	prop := func(delays []uint16, horizon uint16) bool {
		e := NewEngine()
		want := 0
		fired := 0
		for _, d := range delays {
			if time.Duration(d) <= time.Duration(horizon) {
				want++
			}
			e.Schedule(time.Duration(d), func() { fired++ })
		}
		e.RunUntil(time.Duration(horizon))
		return fired == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
