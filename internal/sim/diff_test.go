package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// The differential tests in this file drive the timing-wheel Engine and the
// PR-1 HeapEngine reference implementation with byte-for-byte identical
// schedule/cancel/step/run-until scripts and assert that the two produce the
// same firing sequence, the same clock, and the same counters. The heap's
// behaviour is the specification: any divergence is a wheel bug.
//
// Scripts are generated from a handrolled xorshift generator (never
// math/rand — the detrand analyzer bans it) so a failing seed reproduces
// exactly, and the same interpreter backs the quick.Check property and the
// fuzz target.

// diffRNG is a xorshift64* generator; deterministic, seedable, dependency
// free.
type diffRNG uint64

func (r *diffRNG) next() uint64 {
	x := uint64(*r)
	if x == 0 {
		x = 0x9e3779b97f4a7c15
	}
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = diffRNG(x)
	return x * 0x2545f4914f6cdd1d
}

// firing records one event execution: the clock the engine showed the
// callback and the script-assigned id of the event.
type firing struct {
	at time.Duration
	id int
}

// diffScript interprets a byte string as a schedule/cancel/step/run-until
// script over both engines and fails t on any observable divergence.
func diffScript(t *testing.T, data []byte) bool {
	t.Helper()
	wheel := NewEngine()
	heap := NewHeapEngine()
	var wheelLog, heapLog []firing
	var wheelEvs []Event
	var heapEvs []HeapEvent
	nextID := 0

	schedule := func(d time.Duration) {
		id := nextID
		nextID++
		at := wheel.Now() + d
		wheelEvs = append(wheelEvs, wheel.Schedule(at, func() {
			wheelLog = append(wheelLog, firing{wheel.Now(), id})
		}))
		heapEvs = append(heapEvs, heap.Schedule(at, func() {
			heapLog = append(heapLog, firing{heap.Now(), id})
		}))
	}

	rng := diffRNG(0xdeadbeefcafe)
	for i := 0; i < len(data); i++ {
		op := data[i] % 8
		arg := func(n int) uint64 {
			v := uint64(0)
			for ; n > 0 && i+1 < len(data); n-- {
				i++
				v = v<<8 | uint64(data[i])
			}
			return v
		}
		switch op {
		case 0, 1: // near-horizon schedule: lands in wheel level 0/1
			schedule(time.Duration(arg(1)))
		case 2: // mid-horizon schedule: exercises levels 1-2 and cascades
			schedule(time.Duration(arg(2)) << 4)
		case 3: // far-future schedule: overflow heap and retick pressure
			schedule(time.Duration(arg(3)) << 12)
		case 4: // cancel an arbitrary previously issued handle (may be stale)
			if n := len(wheelEvs); n > 0 {
				j := int(arg(2) % uint64(n))
				wheelEvs[j].Cancel()
				heapEvs[j].Cancel()
				if wheelEvs[j].Scheduled() != heapEvs[j].Scheduled() {
					t.Fatalf("op %d: Scheduled() diverges for handle %d: wheel=%v heap=%v",
						i, j, wheelEvs[j].Scheduled(), heapEvs[j].Scheduled())
				}
			}
		case 5: // single step
			if w, h := wheel.Step(), heap.Step(); w != h {
				t.Fatalf("op %d: Step() diverges: wheel=%v heap=%v", i, w, h)
			}
		case 6: // bounded advance
			d := time.Duration(arg(2))
			wheel.RunUntil(wheel.Now() + d)
			heap.RunUntil(heap.Now() + d)
		case 7: // reschedule storm burst: cancel-and-replace, the GPU-model pattern
			for k := uint64(0); k < arg(1)%16; k++ {
				if n := len(wheelEvs); n > 0 {
					j := int(rng.next() % uint64(n))
					wheelEvs[j].Cancel()
					heapEvs[j].Cancel()
				}
				schedule(time.Duration(rng.next() % 4096))
			}
		}
		if wheel.Now() != heap.Now() {
			t.Fatalf("op %d: clock diverges: wheel=%v heap=%v", i, wheel.Now(), heap.Now())
		}
		if wheel.Pending() != heap.Pending() {
			t.Fatalf("op %d: Pending() diverges: wheel=%d heap=%d", i, wheel.Pending(), heap.Pending())
		}
	}

	wheel.Run()
	heap.Run()

	if wheel.Fired() != heap.Fired() {
		t.Fatalf("Fired() diverges: wheel=%d heap=%d", wheel.Fired(), heap.Fired())
	}
	if wheel.Now() != heap.Now() {
		t.Fatalf("final clock diverges: wheel=%v heap=%v", wheel.Now(), heap.Now())
	}
	if len(wheelLog) != len(heapLog) {
		t.Fatalf("firing count diverges: wheel=%d heap=%d", len(wheelLog), len(heapLog))
	}
	for i := range wheelLog {
		if wheelLog[i] != heapLog[i] {
			t.Fatalf("firing %d diverges: wheel=%+v heap=%+v", i, wheelLog[i], heapLog[i])
		}
	}
	return true
}

// scriptFromSeed expands a seed into a pseudo-random op script long enough
// to hit cascades, overflow pulls, and reticks.
func scriptFromSeed(seed uint64, n int) []byte {
	rng := diffRNG(seed)
	data := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := rng.next()
		for j := 0; j < 8 && i+j < n; j++ {
			data[i+j] = byte(v >> (8 * j))
		}
	}
	return data
}

// TestWheelMatchesHeapProperty checks the equivalence contract over
// generated scripts. Long scripts force the wheel through every regime:
// level-0 fast path, cascading drains, overflow spills, and adaptive
// reticks.
func TestWheelMatchesHeapProperty(t *testing.T) {
	prop := func(seed uint64, size uint16) bool {
		n := 64 + int(size)%4096
		return diffScript(t, scriptFromSeed(seed, n))
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWheelMatchesHeapDeepHorizon pins down the far-future path: a spread of
// events many wheel spans ahead must pull from the overflow heap and retick
// without reordering anything.
func TestWheelMatchesHeapDeepHorizon(t *testing.T) {
	wheel := NewEngine()
	heap := NewHeapEngine()
	var wheelLog, heapLog []firing
	rng := diffRNG(42)
	for i := 0; i < 2000; i++ {
		id := i
		// Delays span 1ns to ~18 minutes: level 0 through deep overflow.
		d := time.Duration(rng.next() % (1 << uint(10+rng.next()%31)))
		at := wheel.Now() + d
		wheel.Schedule(at, func() { wheelLog = append(wheelLog, firing{wheel.Now(), id}) })
		heap.Schedule(at, func() { heapLog = append(heapLog, firing{heap.Now(), id}) })
		if i%64 == 0 {
			wheel.Step()
			heap.Step()
		}
	}
	wheel.Run()
	heap.Run()
	if len(wheelLog) != len(heapLog) {
		t.Fatalf("firing count diverges: wheel=%d heap=%d", len(wheelLog), len(heapLog))
	}
	for i := range wheelLog {
		if wheelLog[i] != heapLog[i] {
			t.Fatalf("firing %d diverges: wheel=%+v heap=%+v", i, wheelLog[i], heapLog[i])
		}
	}
	if wheel.Fired() != heap.Fired() || wheel.Now() != heap.Now() {
		t.Fatalf("counters diverge: wheel=(%d,%v) heap=(%d,%v)",
			wheel.Fired(), wheel.Now(), heap.Fired(), heap.Now())
	}
}

// FuzzWheelMatchesHeap lets the fuzzer mutate raw op scripts directly, so
// it can steer into orderings the seeded generator never produces.
func FuzzWheelMatchesHeap(f *testing.F) {
	f.Add([]byte{0, 10, 5, 5, 5})
	f.Add(scriptFromSeed(1, 256))
	f.Add(scriptFromSeed(0xfeed, 1024))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		diffScript(t, data)
	})
}
