// Package sim provides a deterministic discrete-event simulation engine.
//
// All SwitchFlow experiments run in virtual time: durations are
// time.Duration values measured from the start of the simulation, and every
// state change happens inside an event callback. Events scheduled for the
// same instant fire in the order they were scheduled, which makes runs
// bit-for-bit reproducible.
//
// The engine is tuned for the experiment sweeps' hot path: the pending set
// is a 4-ary min-heap specialized to events (no interface boxing), fired
// and cancelled events return to a free list so steady-state Schedule/Step
// cycles allocate nothing, and Cancel physically removes the event from the
// heap instead of leaving a tombstone behind.
package sim

import (
	"fmt"
	"time"
)

// Event is a handle to a scheduled callback, returned by Schedule and
// After. The zero value is a valid "no event" handle. Handles are small
// values; copying one copies the right to cancel the same event.
type Event struct {
	ev  *event
	seq uint64
	at  time.Duration
}

// At reports the virtual time the event is (or was) scheduled for.
func (h Event) At() time.Duration { return h.at }

// Cancel prevents the event from firing and removes it from the engine's
// pending set. Cancelling the zero handle, or an event that already fired
// or was already cancelled, is a no-op: the handle carries the scheduling
// generation, so a stale handle can never cancel a recycled event.
func (h Event) Cancel() {
	ev := h.ev
	if ev == nil || ev.seq != h.seq {
		return
	}
	ev.eng.remove(ev)
}

// Scheduled reports whether the event is still pending: false for the zero
// handle and once the event has fired or been cancelled.
func (h Event) Scheduled() bool {
	return h.ev != nil && h.ev.seq == h.seq
}

// event is the engine-owned state behind an Event handle. Fired and
// cancelled events are recycled through the engine's free list; seq is
// bumped to zero on recycle so outstanding handles go inert.
type event struct {
	eng   *Engine
	at    time.Duration
	seq   uint64
	fn    func()
	index int32 // position in the heap; -1 while on the free list
}

// Engine is a virtual-time event loop. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now   time.Duration
	seq   uint64
	heap  []*event // 4-ary min-heap ordered by (at, seq)
	free  []*event // recycled event structs
	fired uint64
}

// NewEngine returns an empty engine positioned at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far. Useful for tests and
// for guarding against runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live events still scheduled. Cancelled
// events are removed immediately and never counted.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past is an error surfaced as a panic because it always indicates a
// simulation bug, never a recoverable condition.
func (e *Engine) Schedule(at time.Duration, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e}
	}
	e.seq++
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	e.push(ev)
	return Event{ev: ev, seq: ev.seq, at: at}
}

// After registers fn to run d from the current virtual time. Negative d is
// treated as zero.
func (e *Engine) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.at
	fn := ev.fn
	e.recycle(ev)
	e.fired++
	fn()
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled during the run are honoured if they fall within the
// horizon.
func (e *Engine) RunUntil(t time.Duration) {
	for len(e.heap) > 0 && e.heap[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor is RunUntil relative to the current time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

// less orders events by (time, schedule order), the contract that makes
// simulations reproducible.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts ev into the heap.
func (e *Engine) push(ev *event) {
	ev.index = int32(len(e.heap))
	e.heap = append(e.heap, ev)
	e.siftUp(int(ev.index))
}

// popMin removes and returns the earliest event. The heap must be
// non-empty.
func (e *Engine) popMin() *event {
	ev := e.heap[0]
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if n > 0 {
		e.heap[0] = last
		last.index = 0
		e.siftDown(0)
	}
	return ev
}

// remove deletes ev from an arbitrary heap position and recycles it.
func (e *Engine) remove(ev *event) {
	i := int(ev.index)
	n := len(e.heap) - 1
	last := e.heap[n]
	e.heap[n] = nil
	e.heap = e.heap[:n]
	if i != n {
		e.heap[i] = last
		last.index = int32(i)
		e.siftDown(i)
		if int(last.index) == i {
			e.siftUp(i)
		}
	}
	e.recycle(ev)
}

// recycle invalidates outstanding handles to ev and returns it to the free
// list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.seq = 0
	ev.index = -1
	e.free = append(e.free, ev)
}

// siftUp restores heap order above position i.
func (e *Engine) siftUp(i int) {
	ev := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.heap[i].index = int32(i)
		i = p
	}
	e.heap[i] = ev
	ev.index = int32(i)
}

// siftDown restores heap order below position i.
func (e *Engine) siftDown(i int) {
	ev := e.heap[i]
	n := len(e.heap)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if less(e.heap[k], e.heap[m]) {
				m = k
			}
		}
		if !less(e.heap[m], ev) {
			break
		}
		e.heap[i] = e.heap[m]
		e.heap[i].index = int32(i)
		i = m
	}
	e.heap[i] = ev
	ev.index = int32(i)
}
