// Package sim provides a deterministic discrete-event simulation engine.
//
// All SwitchFlow experiments run in virtual time: durations are
// time.Duration values measured from the start of the simulation, and every
// state change happens inside an event callback. Events scheduled for the
// same instant fire in the order they were scheduled, which makes runs
// bit-for-bit reproducible.
//
// The engine is tuned for the experiment sweeps' hot path. The pending set
// is a hierarchical timing wheel: three levels of 256 buckets each hold the
// dense short-horizon events at amortized O(1) per schedule/fire/cancel,
// and a 4-ary min-heap catches the far-future overflow beyond the wheel's
// span. The wheel's tick is adaptive — it is re-derived from the observed
// event density (pending span over pending count) whenever the overflow
// heap or a single bucket shows the current resolution is mismatched — so
// both nanosecond-spaced micro-benchmarks and minute-scale fleet runs stay
// in the O(1) regime. Fired and cancelled events return to a free list so
// steady-state Schedule/Step cycles allocate nothing, and Cancel physically
// unlinks the event instead of leaving a tombstone behind.
//
// Ordering contract: events fire in strict (at, seq) order — virtual time,
// then schedule order — exactly as the PR-1 heap did. HeapEngine retains
// that heap as a reference implementation; differential tests drive both
// with randomized schedule/cancel/step scripts and assert identical firing
// sequences.
package sim

import (
	"fmt"
	"math/bits"
	"slices"
	"time"
)

// Wheel geometry. Three levels of 256 buckets cover 2^24 ticks; events
// beyond that land in the overflow heap until the cursor approaches them.
const (
	wheelBits    = 8
	wheelBuckets = 1 << wheelBits
	wheelMask    = wheelBuckets - 1
	wheelLevels  = 3
	wheelSpan    = wheelBits * wheelLevels // log2(ticks covered by the wheel)

	// spanTargetBits sizes the adaptive tick: after a re-tick the pending
	// span fits in 2^20 ticks, leaving 16x headroom inside the 2^24-tick
	// wheel before overflow pressure builds again.
	spanTargetBits = 20
	// overflowRetickMin is the overflow population that triggers a
	// coarser tick (the wheel's span is too small for the workload).
	overflowRetickMin = 512
	// insertWalkLimit bounds the sorted-insert walk before a finer tick
	// is considered (one bucket is absorbing too many distinct times).
	insertWalkLimit = 64
	// insertWalkCap bounds a single sorted-insert walk. Past it the event
	// is appended and the bucket marked dirty — sorted lazily (at drain,
	// or when it becomes the firing candidate) so one fat bucket costs
	// O(b log b) once instead of O(b) per insert.
	insertWalkCap = 16
)

// Event locations, stored in event.loc: wheel levels are 0..wheelLevels-1.
const (
	locOverflow int8 = -1 // in the overflow heap, at event.index
	locFree     int8 = -2 // fired/cancelled, on the free list
)

// Event is a handle to a scheduled callback, returned by Schedule and
// After. The zero value is a valid "no event" handle. Handles are small
// values; copying one copies the right to cancel the same event.
type Event struct {
	ev  *event
	seq uint64
	at  time.Duration
}

// At reports the virtual time the event is (or was) scheduled for.
func (h Event) At() time.Duration { return h.at }

// Cancel prevents the event from firing and removes it from the engine's
// pending set. Cancelling the zero handle, or an event that already fired
// or was already cancelled, is a no-op: the handle carries the scheduling
// generation, so a stale handle can never cancel a recycled event.
func (h Event) Cancel() {
	ev := h.ev
	if ev == nil || ev.seq != h.seq {
		return
	}
	ev.eng.remove(ev)
}

// Scheduled reports whether the event is still pending: false for the zero
// handle and once the event has fired or been cancelled.
func (h Event) Scheduled() bool {
	return h.ev != nil && h.ev.seq == h.seq
}

// event is the engine-owned state behind an Event handle. Fired and
// cancelled events are recycled through the engine's free list; seq is
// bumped to zero on recycle so outstanding handles go inert.
type event struct {
	eng        *Engine
	at         time.Duration
	seq        uint64
	fn         func()
	next, prev *event // intrusive bucket list links
	index      int32  // overflow-heap position while loc == locOverflow
	loc        int8   // wheel level, locOverflow, or locFree
	bucket     uint8  // bucket index while on a wheel level
}

// bucketList is one wheel slot: a doubly-linked list kept sorted by
// (at, seq) so the head is always the slot's minimum. Inserts walk from
// the tail, which is O(1) for the dominant monotone patterns (rising seq
// at equal or rising times). When an insert would walk too far the list
// goes dirty — unsorted until a lazy sort at drain or firing time.
type bucketList struct {
	head, tail *event
	dirty      bool
}

// wheelLevel is one ring of buckets plus an occupancy bitmap for O(1)
// next-nonempty-bucket scans.
type wheelLevel struct {
	occ     [wheelBuckets / 64]uint64
	buckets [wheelBuckets]bucketList
}

// next returns the first occupied bucket index >= from, scanning the
// occupancy bitmap.
func (l *wheelLevel) next(from uint) (uint, bool) {
	w := from >> 6
	word := l.occ[w] &^ (1<<(from&63) - 1)
	for {
		if word != 0 {
			return w<<6 | uint(bits.TrailingZeros64(word)), true
		}
		w++
		if w == wheelBuckets>>6 {
			return 0, false
		}
		word = l.occ[w]
	}
}

// Engine is a virtual-time event loop. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now   time.Duration
	seq   uint64
	fired uint64

	// pending counts live events across the wheel and the overflow heap.
	pending int

	// Timing wheel. cursor is the wheel's current tick (now >> tickShift,
	// advanced lazily toward the next pending event); the invariant is
	// that no pending wheel event has a tick below the cursor's bucket at
	// its level, so bitmap scans start at the cursor position.
	tickShift uint
	cursor    uint64
	wheelLive int
	levels    [wheelLevels]wheelLevel

	// maxAt is a monotone upper bound on the latest pending timestamp,
	// reset when the engine drains; with pending it yields the observed
	// event density that adaptive re-ticking derives the resolution from.
	maxAt time.Duration

	overflow  []*event // far-future 4-ary min-heap ordered by (at, seq)
	free      []*event // recycled event structs
	scratch   []*event // reused by retick to stage relocations
	sortbuf   []*event // reused by sortBucket to stage dirty buckets
	reticking bool
}

// NewEngine returns an empty engine positioned at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far. Useful for tests and
// for guarding against runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live events still scheduled. Cancelled
// events are removed immediately and never counted.
func (e *Engine) Pending() int { return e.pending }

// TickResolution returns the wheel's current tick as a duration. It is
// adaptive: re-derived from observed event density as the workload's time
// scale reveals itself. Exposed for tests and benchmark reports.
func (e *Engine) TickResolution() time.Duration { return time.Duration(1) << e.tickShift }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past is an error surfaced as a panic because it always indicates a
// simulation bug, never a recoverable condition.
func (e *Engine) Schedule(at time.Duration, fn func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &event{eng: e}
	}
	e.seq++
	ev.at, ev.seq, ev.fn = at, e.seq, fn
	if e.pending == 0 {
		e.maxAt = e.now
	}
	if at > e.maxAt {
		e.maxAt = at
	}
	e.pending++
	walked := e.place(ev)
	if !e.reticking {
		if ev.loc == locOverflow {
			// The wheel's span is too small for the workload's horizon:
			// re-derive the tick from the observed density so the bulk of
			// the pending set lives in the wheel, not the heap.
			if n := len(e.overflow); n >= overflowRetickMin && n >= e.wheelLive {
				e.retick(e.desiredShift())
			}
		} else if walked > insertWalkLimit && e.tickShift > 0 {
			// One bucket is absorbing too many distinct timestamps: the
			// tick is too coarse for how dense events actually are.
			if d := e.desiredShift(); d < e.tickShift {
				e.retick(d)
			}
		}
	}
	return Event{ev: ev, seq: ev.seq, at: at}
}

// After registers fn to run d from the current virtual time. Negative d is
// treated as zero.
func (e *Engine) After(d time.Duration, fn func()) Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	ev := e.findMin()
	if ev == nil {
		return false
	}
	e.fire(ev)
	return true
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled during the run are honoured if they fall within the
// horizon.
func (e *Engine) RunUntil(t time.Duration) {
	for {
		ev := e.findMin()
		if ev == nil || ev.at > t {
			break
		}
		e.fire(ev)
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor is RunUntil relative to the current time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

// less orders events by (time, schedule order), the contract that makes
// simulations reproducible.
func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// fire unlinks ev (the global minimum, on wheel level 0), advances the
// clock, recycles the struct, and runs the callback.
func (e *Engine) fire(ev *event) {
	e.wheelUnlink(ev)
	e.pending--
	e.now = ev.at
	if c := uint64(ev.at) >> e.tickShift; c > e.cursor {
		e.cursor = c
	}
	fn := ev.fn
	e.recycle(ev)
	e.fired++
	fn()
}

// place routes ev to its wheel level (or the overflow heap) relative to
// the current cursor, returning the sorted-insert walk length for the
// adaptive-resolution heuristics.
//
// Level selection is by the highest differing bit between the event's tick
// and the cursor: ticks sharing all but the low 8 bits land in level 0,
// and so on. Events whose tick is below the cursor (the cursor runs ahead
// of the clock after an idle jump) clamp into the cursor's own level-0
// bucket; the bucket's (at, seq) sort keeps them firing first.
func (e *Engine) place(ev *event) int {
	t := uint64(ev.at) >> e.tickShift
	c := e.cursor
	if t < c {
		t = c
	}
	diff := t ^ c
	if diff>>wheelSpan != 0 {
		e.overflowPush(ev)
		return 0
	}
	lvl := 0
	if diff != 0 {
		lvl = (bits.Len64(diff) - 1) / wheelBits
	}
	idx := uint(t>>(uint(lvl)*wheelBits)) & wheelMask
	return e.wheelInsert(lvl, idx, ev)
}

// wheelInsert links ev into the bucket's sorted list, walking from the
// tail (append is O(1) for the monotone common case). A walk past
// insertWalkCap gives up: the event is appended out of order and the
// bucket marked dirty for a lazy sort, so a bucket absorbing events from
// mixed horizons costs one O(b log b) sort instead of O(b) per insert.
func (e *Engine) wheelInsert(lvl int, idx uint, ev *event) int {
	b := &e.levels[lvl].buckets[idx]
	if b.dirty {
		ev.prev, ev.next = b.tail, nil
		b.tail.next = ev
		b.tail = ev
		e.levels[lvl].occ[idx>>6] |= 1 << (idx & 63)
		ev.loc, ev.bucket = int8(lvl), uint8(idx)
		e.wheelLive++
		return 0
	}
	walked := 0
	cur := b.tail
	for cur != nil && less(ev, cur) {
		if walked == insertWalkCap {
			// Give up walking: append at the tail and sort lazily.
			ev.prev, ev.next = b.tail, nil
			b.tail.next = ev
			b.tail = ev
			b.dirty = true
			e.levels[lvl].occ[idx>>6] |= 1 << (idx & 63)
			ev.loc, ev.bucket = int8(lvl), uint8(idx)
			e.wheelLive++
			return walked
		}
		cur = cur.prev
		walked++
	}
	if cur == nil {
		ev.next = b.head
		ev.prev = nil
		if b.head != nil {
			b.head.prev = ev
		} else {
			b.tail = ev
		}
		b.head = ev
	} else {
		ev.next = cur.next
		ev.prev = cur
		if cur.next != nil {
			cur.next.prev = ev
		} else {
			b.tail = ev
		}
		cur.next = ev
	}
	e.levels[lvl].occ[idx>>6] |= 1 << (idx & 63)
	ev.loc, ev.bucket = int8(lvl), uint8(idx)
	e.wheelLive++
	return walked
}

// wheelUnlink removes ev from its bucket list, clearing the occupancy bit
// when the bucket empties.
func (e *Engine) wheelUnlink(ev *event) {
	lvl, idx := int(ev.loc), uint(ev.bucket)
	b := &e.levels[lvl].buckets[idx]
	if ev.prev != nil {
		ev.prev.next = ev.next
	} else {
		b.head = ev.next
	}
	if ev.next != nil {
		ev.next.prev = ev.prev
	} else {
		b.tail = ev.prev
	}
	ev.next, ev.prev = nil, nil
	if b.head == nil {
		e.levels[lvl].occ[idx>>6] &^= 1 << (idx & 63)
		b.dirty = false
	}
	e.wheelLive--
}

// cmpEvent adapts less to slices.SortFunc.
func cmpEvent(a, b *event) int {
	if less(a, b) {
		return -1
	}
	return 1
}

// sortBucket restores a dirty bucket's (at, seq) order by staging its
// list through the reusable sort buffer.
func (e *Engine) sortBucket(b *bucketList) {
	buf := e.sortbuf[:0]
	for ev := b.head; ev != nil; ev = ev.next {
		buf = append(buf, ev)
	}
	slices.SortFunc(buf, cmpEvent)
	var prev *event
	for _, ev := range buf {
		ev.prev = prev
		if prev != nil {
			prev.next = ev
		} else {
			b.head = ev
		}
		prev = ev
	}
	prev.next = nil
	b.tail = prev
	b.dirty = false
	e.sortbuf = buf[:0]
}

// findMin returns the earliest pending event without removing it, lazily
// cascading higher wheel levels down and pulling the overflow heap into
// the wheel as the cursor approaches. Returns nil when nothing is pending.
// The returned event is always the head of the first occupied level-0
// bucket at or after the cursor, which the placement and sort invariants
// make the global (at, seq) minimum.
func (e *Engine) findMin() *event {
	for {
		if e.wheelLive > 0 {
			c := e.cursor
			if idx, ok := e.levels[0].next(uint(c & wheelMask)); ok {
				b := &e.levels[0].buckets[idx]
				if b.dirty {
					e.sortBucket(b)
				}
				return b.head
			}
			cascaded := false
			for lvl := 1; lvl < wheelLevels; lvl++ {
				shift := uint(lvl) * wheelBits
				idx, ok := e.levels[lvl].next(uint(c>>shift) & wheelMask)
				if !ok {
					continue
				}
				// Advance the cursor to the start of that bucket's range
				// (levels below it are empty, so nothing is skipped) and
				// redistribute its events one level down.
				base := c &^ (uint64(1)<<(shift+wheelBits) - 1)
				if nc := base | uint64(idx)<<shift; nc > e.cursor {
					e.cursor = nc
				}
				e.drain(lvl, idx)
				cascaded = true
				break
			}
			if cascaded {
				continue
			}
			panic("sim: wheel occupancy out of sync with wheelLive")
		}
		if len(e.overflow) == 0 {
			return nil
		}
		// The wheel is empty: jump the cursor to the overflow minimum and
		// pull every heap event inside the wheel's new span.
		if minT := uint64(e.overflow[0].at) >> e.tickShift; minT > e.cursor {
			e.cursor = minT
		}
		for len(e.overflow) > 0 {
			t := uint64(e.overflow[0].at) >> e.tickShift
			if (t^e.cursor)>>wheelSpan != 0 {
				break
			}
			e.place(e.overflowPop())
		}
	}
}

// drain redistributes every event of the given bucket one level down,
// relative to the (just advanced) cursor. Dirty buckets are sorted first
// so the redistribution streams in ascending (at, seq) order and every
// target insert is a tail append.
func (e *Engine) drain(lvl int, idx uint) {
	b := &e.levels[lvl].buckets[idx]
	if b.dirty {
		e.sortBucket(b)
	}
	ev := b.head
	b.head, b.tail = nil, nil
	e.levels[lvl].occ[idx>>6] &^= 1 << (idx & 63)
	for ev != nil {
		next := ev.next
		ev.next, ev.prev = nil, nil
		//swlint:allow counterflow one decrement per distinct drained event; place() immediately re-increments when it re-inserts into the wheel
		e.wheelLive--
		e.place(ev)
		ev = next
	}
}

// remove deletes a still-pending ev from the wheel or overflow heap and
// recycles it (the Cancel path).
func (e *Engine) remove(ev *event) {
	if ev.loc == locOverflow {
		e.overflowRemove(ev)
	} else {
		e.wheelUnlink(ev)
	}
	e.pending--
	e.recycle(ev)
}

// recycle invalidates outstanding handles to ev and returns it to the free
// list.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.seq = 0
	ev.index = -1
	ev.loc = locFree
	e.free = append(e.free, ev)
}

// desiredShift derives the tick resolution from the observed event
// density: the pending span is squeezed into 2^spanTargetBits ticks, so
// the wheel's 2^24-tick span keeps 16x headroom. A purely virtual-time
// computation — re-ticking is deterministic.
func (e *Engine) desiredShift() uint {
	span := e.maxAt - e.now
	if span <= 0 {
		return 0
	}
	s := bits.Len64(uint64(span))
	if s <= spanTargetBits {
		return 0
	}
	return uint(s - spanTargetBits)
}

// retick rebuilds the wheel at a new resolution, relocating every pending
// event. Handles stay valid: event structs are relinked, never reallocated.
// Amortized across the overflow/occupancy triggers this is rare; the cost
// is one pass over the pending set.
func (e *Engine) retick(newShift uint) {
	if e.reticking || newShift == e.tickShift {
		return
	}
	e.reticking = true
	evs := e.scratch[:0]
	for lvl := range e.levels {
		l := &e.levels[lvl]
		for w := range l.occ {
			word := l.occ[w]
			l.occ[w] = 0
			for word != 0 {
				idx := w<<6 | bits.TrailingZeros64(word)
				word &= word - 1
				for ev := l.buckets[idx].head; ev != nil; {
					next := ev.next
					ev.next, ev.prev = nil, nil
					evs = append(evs, ev)
					ev = next
				}
				l.buckets[idx] = bucketList{}
			}
		}
	}
	evs = append(evs, e.overflow...)
	e.overflow = e.overflow[:0]
	e.wheelLive = 0
	e.tickShift = newShift
	e.cursor = uint64(e.now) >> newShift
	// Replace in ascending order so every placement is a tail append and
	// the rebuilt buckets come out clean.
	slices.SortFunc(evs, cmpEvent)
	for _, ev := range evs {
		e.place(ev)
	}
	e.scratch = evs[:0]
	e.reticking = false
}

// Overflow heap: the PR-1 4-ary min-heap, now demoted to catching events
// beyond the wheel's span.

// overflowPush inserts ev into the heap.
func (e *Engine) overflowPush(ev *event) {
	ev.loc = locOverflow
	ev.index = int32(len(e.overflow))
	e.overflow = append(e.overflow, ev)
	e.overflowUp(int(ev.index))
}

// overflowPop removes and returns the earliest heap event. The heap must
// be non-empty.
func (e *Engine) overflowPop() *event {
	ev := e.overflow[0]
	n := len(e.overflow) - 1
	last := e.overflow[n]
	e.overflow[n] = nil
	e.overflow = e.overflow[:n]
	if n > 0 {
		e.overflow[0] = last
		last.index = 0
		e.overflowDown(0)
	}
	return ev
}

// overflowRemove deletes ev from an arbitrary heap position.
func (e *Engine) overflowRemove(ev *event) {
	i := int(ev.index)
	n := len(e.overflow) - 1
	last := e.overflow[n]
	e.overflow[n] = nil
	e.overflow = e.overflow[:n]
	if i != n {
		e.overflow[i] = last
		last.index = int32(i)
		e.overflowDown(i)
		if int(last.index) == i {
			e.overflowUp(i)
		}
	}
}

// overflowUp restores heap order above position i.
func (e *Engine) overflowUp(i int) {
	ev := e.overflow[i]
	for i > 0 {
		p := (i - 1) / 4
		if !less(ev, e.overflow[p]) {
			break
		}
		e.overflow[i] = e.overflow[p]
		e.overflow[i].index = int32(i)
		i = p
	}
	e.overflow[i] = ev
	ev.index = int32(i)
}

// overflowDown restores heap order below position i.
func (e *Engine) overflowDown(i int) {
	ev := e.overflow[i]
	n := len(e.overflow)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for k := c + 1; k < end; k++ {
			if less(e.overflow[k], e.overflow[m]) {
				m = k
			}
		}
		if !less(e.overflow[m], ev) {
			break
		}
		e.overflow[i] = e.overflow[m]
		e.overflow[i].index = int32(i)
		i = m
	}
	e.overflow[i] = ev
	ev.index = int32(i)
}
