// Package sim provides a deterministic discrete-event simulation engine.
//
// All SwitchFlow experiments run in virtual time: durations are
// time.Duration values measured from the start of the simulation, and every
// state change happens inside an event callback. Events scheduled for the
// same instant fire in the order they were scheduled, which makes runs
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 once fired or cancelled
}

// At reports the virtual time the event is scheduled for.
func (ev *Event) At() time.Duration { return ev.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was already cancelled) is a no-op.
func (ev *Event) Cancel() {
	ev.fn = nil
}

// Engine is a virtual-time event loop. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	fired  uint64
	inStep bool
}

// NewEngine returns an empty engine positioned at virtual time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far. Useful for tests and
// for guarding against runaway simulations.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled (including cancelled
// events that have not yet been popped).
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule registers fn to run at absolute virtual time at. Scheduling in
// the past is an error surfaced as a panic because it always indicates a
// simulation bug, never a recoverable condition.
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d from the current virtual time. Negative d is
// treated as zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Schedule(e.now+d, fn)
}

// Step fires the next event, if any, and reports whether one fired.
// Cancelled events are skipped transparently.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev, ok := heap.Pop(&e.queue).(*Event)
		if !ok {
			panic("sim: corrupt event queue")
		}
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled during the run are honoured if they fall within the
// horizon.
func (e *Engine) RunUntil(t time.Duration) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunFor is RunUntil relative to the current time.
func (e *Engine) RunFor(d time.Duration) {
	e.RunUntil(e.now + d)
}

func (e *Engine) peek() *Event {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.fn != nil {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic("sim: push of non-event")
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
