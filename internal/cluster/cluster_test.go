package cluster

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/models"
	"switchflow/internal/workload"
)

func spec(t *testing.T, name string) *models.Spec {
	t.Helper()
	s, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func trainCfg(t *testing.T, name, model string) workload.Config {
	return workload.Config{
		Name: name, Model: spec(t, model), Batch: 32,
		Kind: workload.KindTraining, Priority: 1,
	}
}

func serveCfg(t *testing.T, name, model string) workload.Config {
	return workload.Config{
		Name: name, Model: spec(t, model), Batch: 1,
		Kind: workload.KindServing, Priority: 2,
		ArrivalEvery: 100 * time.Millisecond,
	}
}

func TestFirstFitPlacesSequentially(t *testing.T) {
	c := New(FirstFit{}, 2, device.ClassV100, device.ClassV100)
	h1 := c.Submit(0, trainCfg(t, "a", "ResNet50"))
	h2 := c.Submit(0, trainCfg(t, "b", "ResNet50"))
	c.RunUntil(time.Second)
	if !h1.Placed || !h2.Placed {
		t.Fatalf("placements: %v %v", h1.Placed, h2.Placed)
	}
	// First fit stacks both on node0/gpu:0.
	if h1.Where.String() != "node0/gpu:0" || h2.Where.String() != "node0/gpu:0" {
		t.Fatalf("placements %v, %v; want both on node0/gpu:0", h1.Where, h2.Where)
	}
	if d, ok := h1.QueueDelay(); !ok || d != 0 {
		t.Fatalf("queue delay %v (ok=%v), want 0", d, ok)
	}
}

func TestLeastLoadedSpreads(t *testing.T) {
	c := New(LeastLoaded{}, 2, device.ClassV100, device.ClassV100)
	var handles []*JobHandle
	for i := 0; i < 4; i++ {
		handles = append(handles, c.Submit(0, trainCfg(t, "t", "ResNet50")))
	}
	c.RunUntil(time.Second)
	seen := map[string]int{}
	for _, h := range handles {
		if !h.Placed {
			t.Fatal("job not placed")
		}
		seen[h.Where.String()]++
	}
	if len(seen) != 4 {
		t.Fatalf("4 jobs on %d distinct GPUs, want 4: %v", len(seen), seen)
	}
}

func TestDedicateQueuesTrainingWhenFull(t *testing.T) {
	c := New(Dedicate{}, 1, device.ClassV100, device.ClassV100)
	a := c.Submit(0, trainCfg(t, "a", "ResNet50"))
	b := c.Submit(0, trainCfg(t, "b", "ResNet50"))
	queued := c.Submit(0, trainCfg(t, "c", "ResNet50"))
	c.RunUntil(time.Second)
	if !a.Placed || !b.Placed {
		t.Fatal("first two trainings not placed")
	}
	if queued.Placed {
		t.Fatal("third training placed despite no empty GPU (dedicate)")
	}
	if c.Queued() != 1 {
		t.Fatalf("Queued() = %d, want 1", c.Queued())
	}
	// Stopping a training frees its GPU slot for the queued one.
	c.Stop(a)
	c.RunUntil(2 * time.Second)
	if !queued.Placed {
		t.Fatal("queued training not placed after a slot freed")
	}
	if d, ok := queued.QueueDelay(); !ok || d <= 0 {
		t.Fatalf("queue delay = %v (ok=%v), want positive", d, ok)
	}
}

func TestDedicateNeverMixesInferenceWithTraining(t *testing.T) {
	c := New(Dedicate{}, 1, device.ClassV100, device.ClassV100)
	train := c.Submit(0, trainCfg(t, "t", "ResNet50"))
	s1 := c.Submit(0, serveCfg(t, "s1", "MobileNetV2"))
	s2 := c.Submit(0, serveCfg(t, "s2", "ResNet50"))
	c.RunUntil(time.Second)
	if !train.Placed || !s1.Placed || !s2.Placed {
		t.Fatal("placements incomplete")
	}
	if s1.Where.String() == train.Where.String() || s2.Where.String() == train.Where.String() {
		t.Fatalf("inference packed with training under dedicate: %v vs %v/%v",
			train.Where, s1.Where, s2.Where)
	}
	// The two inference services pack together.
	if s1.Where.String() != s2.Where.String() {
		t.Fatalf("inference not packed: %v vs %v", s1.Where, s2.Where)
	}
}

func TestCollocatePrefersTrainingGPUs(t *testing.T) {
	c := New(Collocate{}, 1, device.ClassV100, device.ClassV100)
	train := c.Submit(0, trainCfg(t, "t", "VGG16"))
	c.RunUntil(500 * time.Millisecond)
	s := c.Submit(500*time.Millisecond, serveCfg(t, "s", "ResNet50"))
	c.RunUntil(10 * time.Second)
	if !train.Placed || !s.Placed {
		t.Fatal("placements incomplete")
	}
	if s.Where.String() != train.Where.String() {
		t.Fatalf("collocate put inference on %v, training on %v", s.Where, train.Where)
	}
	// The collocated service still meets tight tails thanks to preemption.
	if s.Job.Latencies.Count() == 0 {
		t.Fatal("no requests served")
	}
	if p95 := s.Job.Latencies.Percentile(95); p95 > 300*time.Millisecond {
		t.Fatalf("collocated p95 = %v", p95)
	}
	// And the training job keeps running on the same GPU.
	if train.Job.Iterations == 0 {
		t.Fatal("training made no progress while collocated")
	}
}

func TestClusterJobsRunIndependentlyPerNode(t *testing.T) {
	c := New(LeastLoaded{}, 2, device.ClassV100)
	a := c.Submit(0, trainCfg(t, "a", "ResNet50"))
	b := c.Submit(0, trainCfg(t, "b", "ResNet50"))
	c.RunUntil(5 * time.Second)
	if a.Where.Node == b.Where.Node {
		t.Fatalf("least-loaded stacked both on %s", a.Where.Node)
	}
	// Two dedicated nodes: both train at full solo speed.
	if a.Job.Iterations == 0 || b.Job.Iterations == 0 {
		t.Fatal("cluster jobs made no progress")
	}
	diff := a.Job.Iterations - b.Job.Iterations
	if diff < -1 || diff > 1 {
		t.Fatalf("identical jobs diverged: %d vs %d", a.Job.Iterations, b.Job.Iterations)
	}
}

func TestPlacementSkipsFailedGPUs(t *testing.T) {
	c := New(FirstFit{}, 2, device.ClassV100, device.ClassV100)
	// Take down node0's first GPU before any placement.
	c.Nodes()[0].Machine().GPU(0).Fail()
	h := c.Submit(0, trainCfg(t, "a", "ResNet50"))
	c.RunUntil(time.Second)
	if !h.Placed {
		t.Fatal("job not placed despite three healthy GPUs")
	}
	if h.Where.String() == "node0/gpu:0" {
		t.Fatalf("placed on the failed GPU: %v", h.Where)
	}
	if h.Where.String() != "node0/gpu:1" {
		t.Fatalf("placement %v, want node0/gpu:1 (first healthy fit)", h.Where)
	}
}

func TestAllGPUsFailedQueuesJobs(t *testing.T) {
	c := New(LeastLoaded{}, 1, device.ClassV100)
	c.Nodes()[0].Machine().GPU(0).Fail()
	h := c.Submit(0, serveCfg(t, "s", "ResNet50"))
	c.RunUntil(time.Second)
	if h.Placed {
		t.Fatalf("placed on a dead fleet: %v", h.Where)
	}
	if c.Queued() != 1 {
		t.Fatalf("queued = %d, want 1", c.Queued())
	}
}
