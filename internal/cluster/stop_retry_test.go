package cluster

import (
	"testing"
	"time"

	"switchflow/internal/device"
)

// TestStopTwiceDecrementsOnce is the regression test for the double-Stop
// accounting bug: a second Stop on the same handle used to decrement the
// node's per-GPU load counters again, driving them negative and skewing
// every load-aware policy afterwards.
func TestStopTwiceDecrementsOnce(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100)
	h1 := c.Submit(0, trainCfg(t, "a", "ResNet50"))
	h2 := c.Submit(0, trainCfg(t, "b", "ResNet50"))
	c.RunUntil(time.Second)
	n := c.nodes[0]
	if n.perGPU[0].jobs != 2 || n.perGPU[0].training != 2 {
		t.Fatalf("perGPU after two placements = %+v, want {2 2}", n.perGPU[0])
	}

	c.Stop(h1)
	if !h1.Stopped() {
		t.Fatal("handle not marked stopped")
	}
	c.Stop(h1) // must be a no-op
	if n.perGPU[0].jobs != 1 || n.perGPU[0].training != 1 {
		t.Fatalf("perGPU after double Stop = %+v, want {1 1}", n.perGPU[0])
	}
	placed := c.Placed()
	if len(placed) != 1 || placed[0] != h2 {
		t.Fatalf("Placed() after Stop = %v, want just the surviving handle", placed)
	}
}

// TestPerGPUCountersNeverNegative stops every job repeatedly and asserts
// the load-counter invariant the policies depend on: counters end at zero
// and never go below it.
func TestPerGPUCountersNeverNegative(t *testing.T) {
	c := New(LeastLoaded{}, 2, device.ClassV100, device.ClassV100)
	var handles []*JobHandle
	for i := 0; i < 6; i++ {
		handles = append(handles, c.Submit(0, trainCfg(t, "t", "ResNet50")))
	}
	c.RunUntil(time.Second)
	for _, h := range handles {
		c.Stop(h)
		c.Stop(h)
		c.Stop(h)
		for _, n := range c.nodes {
			for gpu, load := range n.perGPU {
				if load.jobs < 0 || load.training < 0 {
					t.Fatalf("node %s gpu %d counters went negative: %+v", n.Name, gpu, load)
				}
			}
		}
	}
	for _, n := range c.nodes {
		for gpu, load := range n.perGPU {
			if load.jobs != 0 || load.training != 0 {
				t.Fatalf("node %s gpu %d counters nonzero after stopping all: %+v", n.Name, gpu, load)
			}
		}
	}
}

// TestQueuedSubmissionPlacesAtBarrierWithoutStop is the regression test
// for the lost-retry bug: a submission queued because no capacity existed
// was only ever retried by Cluster.Stop, so capacity freed any other way
// (an undrained GPU, a manager-level stop, an elastic shrink) left it
// queued forever. Barriers now retry the queue every epoch.
func TestQueuedSubmissionPlacesAtBarrierWithoutStop(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100)
	if err := c.nodes[0].mgr.DrainDevice(device.GPUID(0)); err != nil {
		t.Fatal(err)
	}
	h := c.Submit(0, trainCfg(t, "late", "ResNet50"))
	c.RunUntil(20 * time.Millisecond)
	if h.Placed || c.Queued() != 1 {
		t.Fatalf("placed=%v queued=%d, want the submission parked in the queue", h.Placed, c.Queued())
	}
	if _, ok := h.QueueDelay(); ok {
		t.Fatal("QueueDelay reported ok for an unplaced job")
	}

	// Capacity returns without any Cluster.Stop: only the barrier retry
	// can place the queued job now.
	if err := c.nodes[0].mgr.UndrainDevice(device.GPUID(0)); err != nil {
		t.Fatal(err)
	}
	c.RunUntil(40 * time.Millisecond)
	if !h.Placed {
		t.Fatal("queued submission never retried at a barrier")
	}
	if d, ok := h.QueueDelay(); !ok || d <= 0 {
		t.Fatalf("QueueDelay = %v, %v; want a positive queued wait", d, ok)
	}
	if c.Queued() != 0 {
		t.Fatalf("queue still holds %d entries", c.Queued())
	}
}
