package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/harness"
	"switchflow/internal/obs"
	"switchflow/internal/trace"
	"switchflow/internal/workload"
)

func gangCfg(t *testing.T, name, model string, replicas int) workload.Config {
	t.Helper()
	cfg := trainCfg(t, name, model)
	cfg.Gang = true
	cfg.Replicas = replicas
	return cfg
}

// v4 builds the 4-GPU class list of the NVLink testbed nodes.
func v4() []device.GPUClass {
	return []device.GPUClass{device.ClassV100, device.ClassV100, device.ClassV100, device.ClassV100}
}

func TestGangPlacementAllOrNothing(t *testing.T) {
	c := NewNVLink(Collocate{}, 1, 2, v4()...)
	c.Record(obs.KindGangPlace)
	g1 := c.Submit(0, gangCfg(t, "g1", "ResNet50", 2))
	g2 := c.Submit(0, gangCfg(t, "g2", "ResNet50", 2))
	g3 := c.Submit(0, gangCfg(t, "g3", "ResNet50", 2))
	c.RunUntil(time.Second)

	if !g1.Placed || !g2.Placed {
		t.Fatalf("full slots exist; placements g1=%v g2=%v", g1.Placed, g2.Placed)
	}
	if got := g1.Where.String(); got != "node0/gpus:0+1" {
		t.Fatalf("g1 at %s, want the first NVLink island node0/gpus:0+1", got)
	}
	if got := g2.Where.String(); got != "node0/gpus:2+3" {
		t.Fatalf("g2 at %s, want the second NVLink island node0/gpus:2+3", got)
	}
	// No room for a third gang: it waits whole. A partial gang must never
	// exist — an unplaced gang has no Job, no Placement, no GPUs.
	if g3.Placed || g3.Job != nil || len(g3.Where.GPUs) != 0 {
		t.Fatalf("g3 partially placed: %+v", g3)
	}
	if c.GangQueued() != 1 || c.Queued() != 1 {
		t.Fatalf("GangQueued=%d Queued=%d, want 1/1", c.GangQueued(), c.Queued())
	}
	for _, e := range c.Events() {
		if e.Kind == obs.KindGangPlace && e.Count != 2 {
			t.Fatalf("GangPlace with Count=%d, want full width 2: %+v", e.Count, e)
		}
	}

	// Freeing a slot admits the queued gang at the stop (whole, again).
	c.Stop(g1)
	if !g3.Placed {
		t.Fatal("queued gang not placed after a slot freed")
	}
	if got := g3.Where.String(); got != "node0/gpus:0+1" {
		t.Fatalf("g3 at %s, want the freed island node0/gpus:0+1", got)
	}
}

// With the first island half-occupied, the packer must jump to the
// intact island {2,3} rather than straddle the PCIe switch with {1,2} —
// the modeled all-reduce on NVLink is measurably cheaper.
func TestGangPlacementPrefersNVLinkContiguous(t *testing.T) {
	c := NewNVLink(Dedicate{}, 1, 2, v4()...)
	c.Record(obs.KindGangPlace)
	solo := c.Submit(0, trainCfg(t, "solo", "MobileNetV2"))
	gang := c.Submit(0, gangCfg(t, "gang", "VGG16", 2))
	c.RunUntil(time.Second)
	if !solo.Placed || solo.Where.GPU != 0 {
		t.Fatalf("solo trainer at %v, want node0/gpu:0", solo.Where)
	}
	if !gang.Placed {
		t.Fatal("gang not placed")
	}
	if got := gang.Where.String(); got != "node0/gpus:2+3" {
		t.Fatalf("gang at %s, want the intact NVLink island node0/gpus:2+3", got)
	}
	events := c.Events()
	if len(events) != 1 {
		t.Fatalf("want exactly one GangPlace event, got %d", len(events))
	}
	nv := c.Nodes()[0].Machine().Fabric()
	if !nv.NVLinkContiguous(gang.Where.GPUs) {
		t.Fatalf("gang slot %v is not NVLink-contiguous", gang.Where.GPUs)
	}
	// The priced slot must beat the straddling alternative it rejected.
	chosen, err := nv.RingCost(gang.Where.GPUs, gang.Cfg.Model.ParamBytes())
	if err != nil {
		t.Fatal(err)
	}
	straddle, err := nv.RingCost([]int{1, 2}, gang.Cfg.Model.ParamBytes())
	if err != nil {
		t.Fatal(err)
	}
	if chosen >= straddle {
		t.Fatalf("chosen slot costs %v, straddling slot %v; NVLink must win", chosen, straddle)
	}
}

func TestGangQueueDisciplines(t *testing.T) {
	// One 2-GPU node: gang A holds the only slot; B (huge, first), C
	// (small), and D (high priority) queue behind it. Which gang wins the
	// slot when A stops depends on the discipline.
	run := func(order GangOrder) string {
		c := NewNVLink(FirstFit{}, 1, 2, device.ClassV100, device.ClassV100)
		c.SetGangOrder(order)
		a := c.Submit(0, gangCfg(t, "a", "ResNet50", 2))
		b := c.Submit(0, gangCfg(t, "b", "VGG16", 2))
		cc := c.Submit(0, gangCfg(t, "c", "MobileNetV2", 2))
		d := gangCfg(t, "d", "ResNet50", 2)
		d.Priority = 9
		dd := c.Submit(0, d)
		c.RunUntil(time.Second)
		if !a.Placed || c.GangQueued() != 3 {
			t.Fatalf("setup: a placed=%v queued=%d, want true/3", a.Placed, c.GangQueued())
		}
		c.Stop(a)
		for _, h := range []*JobHandle{b, cc, dd} {
			if h.Placed {
				return h.Cfg.Name
			}
		}
		return "none"
	}
	if got := run(GangFIFO); got != "b" {
		t.Fatalf("FIFO admitted %q, want the oldest gang b", got)
	}
	if got := run(GangSRTF); got != "c" {
		t.Fatalf("SRTF admitted %q, want the smallest-sync gang c", got)
	}
	if got := run(GangPriority); got != "d" {
		t.Fatalf("Priority admitted %q, want the high-priority gang d", got)
	}
}

// gangFleetRun drives a fleet where gangs are placed, queued, AND
// preempted: two NVLink nodes, three 2-replica gangs (the third queues
// until capacity frees), and high-priority inference collocated onto the
// gang GPUs so gang preemption fires.
func runGangFleet(t *testing.T) fleetRun {
	t.Helper()
	c := NewNVLink(Collocate{}, 2, 2, v4()...)
	c.Record()
	var handles []*JobHandle
	handles = append(handles,
		c.Submit(0, gangCfg(t, "g-vgg", "VGG16", 2)),
		c.Submit(0, gangCfg(t, "g-res", "ResNet50", 2)),
		c.Submit(time.Second, gangCfg(t, "g-inc", "InceptionV3", 4)),
		c.Submit(2*time.Second, gangCfg(t, "g-late", "ResNet50", 4)))
	for i, model := range []string{"MobileNetV2", "ResNet50"} {
		cfg := serveCfg(t, "s-"+model, model)
		cfg.PoissonArrivals = true
		cfg.ArrivalSeed = int64(700 + i)
		handles = append(handles, c.Submit(time.Duration(i)*time.Second, cfg))
	}
	c.RunUntil(8 * time.Second)

	run := fleetRun{events: c.Events()}
	tl := &trace.Timeline{}
	for _, e := range run.events {
		tl.Observe(e)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	run.traceJSON = buf.Bytes()
	for _, h := range handles {
		if !h.Placed {
			run.placements = append(run.placements, "queued")
			continue
		}
		run.placements = append(run.placements, h.Where.String())
		run.iterations = append(run.iterations, h.Job.Iterations)
		run.latencies = append(run.latencies, h.Job.Latencies.Count())
	}
	return run
}

// TestGangFleetSerialParallelIdentical is the gang-placement determinism
// proof: with gangs queued and preempted across the fleet, the merged
// event stream and trace bytes must be identical on one worker or eight.
func TestGangFleetSerialParallelIdentical(t *testing.T) {
	prev := harness.SetParallelism(1)
	serial := runGangFleet(t)
	harness.SetParallelism(8)
	parallel := runGangFleet(t)
	harness.SetParallelism(prev)

	var places, preempts, resumes int
	for _, e := range serial.events {
		switch e.Kind {
		case obs.KindGangPlace:
			places++
		case obs.KindGangPreempt:
			preempts++
		case obs.KindGangResume:
			resumes++
		}
	}
	if places == 0 || preempts == 0 || resumes == 0 {
		t.Fatalf("scenario must exercise gang place/preempt/resume, got %d/%d/%d",
			places, preempts, resumes)
	}
	if !reflect.DeepEqual(serial.events, parallel.events) {
		t.Fatalf("merged event streams differ: %d vs %d events", len(serial.events), len(parallel.events))
	}
	if !bytes.Equal(serial.traceJSON, parallel.traceJSON) {
		t.Fatal("trace bytes differ between serial and parallel gang runs")
	}
	if !reflect.DeepEqual(serial.placements, parallel.placements) {
		t.Fatalf("placements differ: %v vs %v", serial.placements, parallel.placements)
	}
	if !reflect.DeepEqual(serial.iterations, parallel.iterations) {
		t.Fatalf("iterations differ: %v vs %v", serial.iterations, parallel.iterations)
	}
}
