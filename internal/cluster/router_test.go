package cluster

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/obs"
	"switchflow/internal/traffic"
	"switchflow/internal/workload"
)

// flatProfile is a spike-free constant-rate profile for router tests.
func flatProfile(tenants int, rps float64) traffic.Profile {
	return traffic.Profile{
		Clients:      1000,
		RPSPerClient: rps / 1000,
		Tenants:      traffic.SyntheticTenants(tenants, 5),
		Seed:         11,
	}
}

func TestFrontendRoutesAndServes(t *testing.T) {
	c := New(LeastLoaded{}, 2, device.ClassV100, device.ClassV100)
	c.Record(obs.KindRoute)
	gen, err := traffic.NewGenerator(flatProfile(2, 40))
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend(c, gen, RouteHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	fe.Start(1)
	c.RunUntil(2 * time.Second)

	if fe.Routed() < 40 {
		t.Fatalf("routed %d requests in 2s at 40 rps", fe.Routed())
	}
	if fe.Dropped() != 0 {
		t.Fatalf("dropped %d with live replicas", fe.Dropped())
	}
	served := 0
	for _, svc := range fe.Services() {
		served += svc.Counters().Served
	}
	if served == 0 {
		t.Fatal("no requests served")
	}
	routes := 0
	for _, e := range c.Events() {
		if e.Kind != obs.KindRoute {
			continue
		}
		routes++
		if e.From != "hash" || e.Count <= 0 || e.Job == "" {
			t.Fatalf("malformed Route event: %+v", e)
		}
	}
	if routes == 0 {
		t.Fatal("no Route events recorded")
	}
}

// TestHashRingStability: adding a replica to the ring must remap only a
// minority of keys and leave the rest stuck to their old replica.
func TestHashRingStability(t *testing.T) {
	mk := func(names ...string) []liveReplica {
		var set []liveReplica
		for _, n := range names {
			set = append(set, liveReplica{h: &JobHandle{Cfg: workload.Config{Name: n}}})
		}
		return set
	}
	two := buildRing(mk("t0/r0", "t0/r1"))
	three := buildRing(mk("t0/r0", "t0/r1", "t0/r2"))

	moved, hits := 0, make([]int, 3)
	const keys = 4096
	for k := 0; k < keys; k++ {
		key := uint64(k) * 0x9e3779b97f4a7c15 // spread sequential ints over the ring
		before := two.lookup(key)
		after := three.lookup(key)
		hits[after]++
		if after != 2 && after != before {
			t.Fatalf("key %d moved between surviving replicas: %d -> %d", k, before, after)
		}
		if after == 2 {
			moved++
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Fatalf("%d/%d keys moved to the new replica, want a minority (~1/3)", moved, keys)
	}
	for i, h := range hits {
		if h == 0 {
			t.Fatalf("replica %d owns no keys", i)
		}
	}
}

func TestRouterDropsWithoutLiveReplica(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100)
	gen, err := traffic.NewGenerator(flatProfile(1, 50))
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend(c, gen, RouteHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	fe.Start(1)
	c.RunUntil(time.Second)
	svc := fe.Services()[0]
	c.Stop(svc.Replicas()[0])
	c.RunUntil(2 * time.Second)

	if svc.Dropped() == 0 {
		t.Fatal("no drops after the only replica was retired")
	}
	cnt := svc.Counters()
	if cnt.Shed < svc.Dropped() {
		t.Fatalf("Shed %d < Dropped %d; router drops must count as shed", cnt.Shed, svc.Dropped())
	}
	if cnt.Offered < cnt.Shed {
		t.Fatalf("Offered %d < Shed %d", cnt.Offered, cnt.Shed)
	}
}

// TestAutoscalerScalesOutOnShedAndInOnIdle drives one tenant through a
// 20x flash crowd on a deliberately unbatched replica: the crowd must add
// replicas (shed-rate signal) and the calm after it must remove them
// (idle signal), with the registered elastic training job shrinking under
// pressure and growing back.
func TestAutoscalerScalesOutOnShedAndInOnIdle(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100, device.ClassV100)
	p := flatProfile(1, 20)
	p.Spikes = []traffic.Spike{{
		Start: time.Second, Ramp: 200 * time.Millisecond,
		Hold: 2 * time.Second, Decay: 300 * time.Millisecond, Magnitude: 20,
	}}
	gen, err := traffic.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Unbatched replicas saturate near 150 req/s, so the 400 req/s crowd
	// sheds hard while the 20 req/s baseline is comfortably idle.
	fe, err := NewFrontend(c, gen, RouteLeastLoaded, func(tn traffic.Tenant) (workload.Config, error) {
		cfg, err := DefaultServiceConfig(tn)
		cfg.MaxBatch = 0
		cfg.BatchWait = 0
		return cfg, err
	})
	if err != nil {
		t.Fatal(err)
	}
	scaler := fe.EnableAutoscaler(AutoscaleConfig{
		Interval:    500 * time.Millisecond,
		SustainUp:   2,
		IdleRPS:     50,
		SustainDown: 3,
		MaxReplicas: 3,
		Cooldown:    time.Second,
	})
	train, err := c.nodes[0].mgr.AddJob(workload.Config{
		Name: "train-bg", Model: spec(t, "ResNet50"), Batch: 32,
		Kind: workload.KindTraining, Priority: 1,
		Device: device.GPUID(0),
		VNodes: []device.ID{device.GPUID(0), device.GPUID(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	scaler.RegisterElastic(c.nodes[0], train, 1, 2)

	fe.Start(1)
	c.RunUntil(9 * time.Second)

	if scaler.ScaleOuts() == 0 {
		t.Fatal("flash crowd produced no scale-out")
	}
	if scaler.ScaleIns() == 0 {
		t.Fatal("post-crowd idle produced no scale-in")
	}
	if scaler.Shrinks() == 0 || scaler.Grows() == 0 {
		t.Fatalf("elastic training did not flex: shrinks=%d grows=%d", scaler.Shrinks(), scaler.Grows())
	}
	svc := fe.Services()[0]
	if svc.desired() >= 3 {
		t.Fatalf("tenant still holds %d replicas after the idle tail", svc.desired())
	}
	if train.Binding().Len() != 2 {
		t.Fatalf("elastic training ended at %d vnodes, want grown back to 2", train.Binding().Len())
	}
}
