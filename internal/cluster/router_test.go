package cluster

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/obs"
	"switchflow/internal/traffic"
	"switchflow/internal/workload"
)

// flatProfile is a spike-free constant-rate profile for router tests.
func flatProfile(tenants int, rps float64) traffic.Profile {
	return traffic.Profile{
		Clients:      1000,
		RPSPerClient: rps / 1000,
		Tenants:      traffic.SyntheticTenants(tenants, 5),
		Seed:         11,
	}
}

func TestFrontendRoutesAndServes(t *testing.T) {
	c := New(LeastLoaded{}, 2, device.ClassV100, device.ClassV100)
	c.Record(obs.KindRoute)
	gen, err := traffic.NewGenerator(flatProfile(2, 40))
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend(c, gen, RouteHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	fe.Start(1)
	c.RunUntil(2 * time.Second)

	if fe.Routed() < 40 {
		t.Fatalf("routed %d requests in 2s at 40 rps", fe.Routed())
	}
	if fe.Dropped() != 0 {
		t.Fatalf("dropped %d with live replicas", fe.Dropped())
	}
	served := 0
	for _, svc := range fe.Services() {
		served += svc.Counters().Served
	}
	if served == 0 {
		t.Fatal("no requests served")
	}
	routes := 0
	for _, e := range c.Events() {
		if e.Kind != obs.KindRoute {
			continue
		}
		routes++
		if e.From != "hash" || e.Count <= 0 || e.Job == "" {
			t.Fatalf("malformed Route event: %+v", e)
		}
	}
	if routes == 0 {
		t.Fatal("no Route events recorded")
	}
}

// TestHashRingStability: adding a replica to the ring must remap only a
// minority of keys and leave the rest stuck to their old replica.
func TestHashRingStability(t *testing.T) {
	mk := func(names ...string) []liveReplica {
		var set []liveReplica
		for _, n := range names {
			set = append(set, liveReplica{h: &JobHandle{Cfg: workload.Config{Name: n}}})
		}
		return set
	}
	two := buildRing(mk("t0/r0", "t0/r1"))
	three := buildRing(mk("t0/r0", "t0/r1", "t0/r2"))

	moved, hits := 0, make([]int, 3)
	const keys = 4096
	for k := 0; k < keys; k++ {
		key := uint64(k) * 0x9e3779b97f4a7c15 // spread sequential ints over the ring
		before := two.lookup(key)
		after := three.lookup(key)
		hits[after]++
		if after != 2 && after != before {
			t.Fatalf("key %d moved between surviving replicas: %d -> %d", k, before, after)
		}
		if after == 2 {
			moved++
		}
	}
	if moved == 0 || moved > keys/2 {
		t.Fatalf("%d/%d keys moved to the new replica, want a minority (~1/3)", moved, keys)
	}
	for i, h := range hits {
		if h == 0 {
			t.Fatalf("replica %d owns no keys", i)
		}
	}
}

func TestRouterDropsWithoutLiveReplica(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100)
	gen, err := traffic.NewGenerator(flatProfile(1, 50))
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend(c, gen, RouteHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	fe.Start(1)
	c.RunUntil(time.Second)
	svc := fe.Services()[0]
	c.Stop(svc.Replicas()[0])
	c.RunUntil(2 * time.Second)

	if svc.Dropped() == 0 {
		t.Fatal("no drops after the only replica was retired")
	}
	cnt := svc.Counters()
	if cnt.Shed < svc.Dropped() {
		t.Fatalf("Shed %d < Dropped %d; router drops must count as shed", cnt.Shed, svc.Dropped())
	}
	if cnt.Offered < cnt.Shed {
		t.Fatalf("Offered %d < Shed %d", cnt.Offered, cnt.Shed)
	}
}

// TestAutoscalerScalesOutOnShedAndInOnIdle drives one tenant through a
// 20x flash crowd on a deliberately unbatched replica: the crowd must add
// replicas (shed-rate signal) and the calm after it must remove them
// (idle signal), with the registered elastic training job shrinking under
// pressure and growing back.
func TestAutoscalerScalesOutOnShedAndInOnIdle(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100, device.ClassV100)
	p := flatProfile(1, 20)
	p.Spikes = []traffic.Spike{{
		Start: time.Second, Ramp: 200 * time.Millisecond,
		Hold: 2 * time.Second, Decay: 300 * time.Millisecond, Magnitude: 20,
	}}
	gen, err := traffic.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Unbatched replicas saturate near 150 req/s, so the 400 req/s crowd
	// sheds hard while the 20 req/s baseline is comfortably idle.
	fe, err := NewFrontend(c, gen, RouteLeastLoaded, func(tn traffic.Tenant) (workload.Config, error) {
		cfg, err := DefaultServiceConfig(tn)
		cfg.MaxBatch = 0
		cfg.BatchWait = 0
		return cfg, err
	})
	if err != nil {
		t.Fatal(err)
	}
	scaler := fe.EnableAutoscaler(AutoscaleConfig{
		Interval:    500 * time.Millisecond,
		SustainUp:   2,
		IdleRPS:     50,
		SustainDown: 3,
		MaxReplicas: 3,
		Cooldown:    time.Second,
	})
	train, err := c.nodes[0].mgr.AddJob(workload.Config{
		Name: "train-bg", Model: spec(t, "ResNet50"), Batch: 32,
		Kind: workload.KindTraining, Priority: 1,
		Device: device.GPUID(0),
		VNodes: []device.ID{device.GPUID(0), device.GPUID(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	scaler.RegisterElastic(c.nodes[0], train, 1, 2)

	fe.Start(1)
	c.RunUntil(9 * time.Second)

	if scaler.ScaleOuts() == 0 {
		t.Fatal("flash crowd produced no scale-out")
	}
	if scaler.ScaleIns() == 0 {
		t.Fatal("post-crowd idle produced no scale-in")
	}
	if scaler.Shrinks() == 0 || scaler.Grows() == 0 {
		t.Fatalf("elastic training did not flex: shrinks=%d grows=%d", scaler.Shrinks(), scaler.Grows())
	}
	svc := fe.Services()[0]
	if svc.desired() >= 3 {
		t.Fatalf("tenant still holds %d replicas after the idle tail", svc.desired())
	}
	if train.Binding().Len() != 2 {
		t.Fatalf("elastic training ended at %d vnodes, want grown back to 2", train.Binding().Len())
	}
}

// TestScaleInRacingFlashCrowdOnset times a flash crowd to begin at the
// exact tick where a sustained-idle scale-in fires: the interval that
// triggers the scale-in is still fully idle (the crowd starts as it
// closes), so the controller legitimately shrinks into the onset. The
// required behavior is recovery, not prescience: the crowd's shed signal
// must scale the tenant back out, delayed by at least the cooldown set by
// the racing scale-in, and never wedge the controller.
func TestScaleInRacingFlashCrowdOnset(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100, device.ClassV100)
	c.Record(obs.KindScaleIn, obs.KindScaleOut)
	p := flatProfile(1, 20)
	// Ticks land on 5ms barrier strides: baseline at the first barrier,
	// then every 500ms. With SustainDown=2 the scale-in fires on the
	// second idle tick (~1.005s); the crowd starts right there.
	p.Spikes = []traffic.Spike{{
		Start: 1005 * time.Millisecond, Ramp: 100 * time.Millisecond,
		Hold: 2500 * time.Millisecond, Decay: 300 * time.Millisecond, Magnitude: 20,
	}}
	gen, err := traffic.NewGenerator(p)
	if err != nil {
		t.Fatal(err)
	}
	// Unbatched replicas saturate near 150 req/s: the 400 req/s crowd
	// sheds hard against the single post-scale-in replica.
	fe, err := NewFrontend(c, gen, RouteLeastLoaded, func(tn traffic.Tenant) (workload.Config, error) {
		cfg, err := DefaultServiceConfig(tn)
		cfg.MaxBatch = 0
		cfg.BatchWait = 0
		return cfg, err
	})
	if err != nil {
		t.Fatal(err)
	}
	cooldown := 2 * time.Second
	scaler := fe.EnableAutoscaler(AutoscaleConfig{
		Interval:    500 * time.Millisecond,
		SustainUp:   2,
		IdleRPS:     50,
		SustainDown: 2,
		MaxReplicas: 3,
		Cooldown:    cooldown,
	})
	fe.Start(2)
	c.RunUntil(3500 * time.Millisecond)

	if scaler.ScaleIns() == 0 {
		t.Fatal("sustained idle before the crowd produced no scale-in")
	}
	if scaler.ScaleOuts() == 0 {
		t.Fatal("controller never scaled back out after shrinking into the crowd")
	}
	var inAt, outAt []time.Duration
	for _, e := range c.Events() {
		switch e.Kind {
		case obs.KindScaleIn:
			inAt = append(inAt, e.Time)
		case obs.KindScaleOut:
			outAt = append(outAt, e.Time)
		}
	}
	if len(inAt) == 0 || len(outAt) == 0 {
		t.Fatalf("missing scale events: in=%d out=%d", len(inAt), len(outAt))
	}
	if inAt[0] >= p.Spikes[0].Start+p.Spikes[0].Ramp {
		t.Fatalf("scale-in at %v did not race the crowd onset at %v", inAt[0], p.Spikes[0].Start)
	}
	if gap := outAt[0] - inAt[0]; gap < cooldown {
		t.Fatalf("recovery scale-out at %v only %v after the scale-in at %v; cooldown %v not honored", outAt[0], gap, inAt[0], cooldown)
	}
	if d := fe.Services()[0].desired(); d < 2 {
		t.Fatalf("tenant holds %d replicas at the end of the crowd, want >= 2", d)
	}
}

// TestCooldownBoundaryExactlyAtIntervalEdge pins the boundary semantics
// of the cooldown gate: with Cooldown an exact multiple of Interval,
// every cooldown expiry lands exactly on a tick, and the gate is strict
// (`now < cooldownUntil`), so the tick AT the expiry instant may act.
// Under permanent overload the controller must therefore emit scale-outs
// spaced exactly Cooldown apart — an off-by-one (<=) would slip each
// action a full extra interval.
func TestCooldownBoundaryExactlyAtIntervalEdge(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100, device.ClassV100,
		device.ClassV100, device.ClassV100)
	c.Record(obs.KindScaleOut)
	gen, err := traffic.NewGenerator(flatProfile(1, 2000))
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend(c, gen, RouteLeastLoaded, func(tn traffic.Tenant) (workload.Config, error) {
		cfg, err := DefaultServiceConfig(tn)
		cfg.MaxBatch = 0
		cfg.BatchWait = 0
		return cfg, err
	})
	if err != nil {
		t.Fatal(err)
	}
	cooldown := time.Second // exactly 2 control intervals
	fe.EnableAutoscaler(AutoscaleConfig{
		Interval:    500 * time.Millisecond,
		SustainUp:   2,
		SustainDown: 100, // never scale in
		MaxReplicas: 4,
		Cooldown:    cooldown,
	})
	fe.Start(1)
	c.RunUntil(3200 * time.Millisecond)

	var outAt []time.Duration
	for _, e := range c.Events() {
		if e.Kind == obs.KindScaleOut {
			outAt = append(outAt, e.Time)
		}
	}
	if len(outAt) < 3 {
		t.Fatalf("sustained overload produced %d scale-outs in 3.2s, want >= 3", len(outAt))
	}
	for i := 1; i < len(outAt); i++ {
		if gap := outAt[i] - outAt[i-1]; gap != cooldown {
			t.Fatalf("scale-outs %d and %d are %v apart, want exactly the %v cooldown (tick at the expiry instant must act)", i-1, i, gap, cooldown)
		}
	}
}

// TestElasticFlexGrowsBackAfterDrainMidCooldown: a service scale-in puts
// the tenant in cooldown, and while that cooldown is pending the managed
// elastic training job is externally resized down (a drain). The elastic
// flex loop is not subject to the per-service cooldown — it must observe
// the shrunken binding on the next tick and grow the job back to max
// before the service's cooldown even expires.
func TestElasticFlexGrowsBackAfterDrainMidCooldown(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100, device.ClassV100)
	gen, err := traffic.NewGenerator(flatProfile(1, 20))
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontend(c, gen, RouteHash, nil)
	if err != nil {
		t.Fatal(err)
	}
	scaler := fe.EnableAutoscaler(AutoscaleConfig{
		Interval:    500 * time.Millisecond,
		SustainUp:   2,
		IdleRPS:     50,
		SustainDown: 2,
		MaxReplicas: 3,
		Cooldown:    2 * time.Second,
	})
	train, err := c.nodes[0].mgr.AddJob(workload.Config{
		Name: "train-bg", Model: spec(t, "ResNet50"), Batch: 32,
		Kind: workload.KindTraining, Priority: 1,
		Device: device.GPUID(0),
		VNodes: []device.ID{device.GPUID(0), device.GPUID(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	scaler.RegisterElastic(c.nodes[0], train, 1, 2)

	// 20 req/s over 2 replicas is idle; SustainDown=2 scales in on the
	// second post-baseline tick (~1.005s) and starts the 2s cooldown.
	fe.Start(2)
	c.RunUntil(1200 * time.Millisecond)
	if scaler.ScaleIns() != 1 {
		t.Fatalf("expected the idle scale-in by 1.2s, got %d", scaler.ScaleIns())
	}
	svc := fe.Services()[0]
	if svc.cooldownUntil <= c.Now() {
		t.Fatalf("no pending cooldown after the scale-in (until %v, now %v)", svc.cooldownUntil, c.Now())
	}
	// Drain the elastic job down to one vnode while the cooldown runs.
	if err := c.nodes[0].mgr.Resize(train, 1); err != nil {
		t.Fatal(err)
	}

	// Stop short of the cooldown expiry: the grow must already be done.
	c.RunUntil(svc.cooldownUntil - 100*time.Millisecond)
	if c.Now() >= svc.cooldownUntil {
		t.Fatalf("ran past the cooldown (now %v, until %v); the test no longer isolates mid-cooldown flex", c.Now(), svc.cooldownUntil)
	}
	if scaler.Grows() == 0 {
		t.Fatal("elastic flex did not grow the drained job back during the service cooldown")
	}
	if got := train.Binding().Len(); got != 2 {
		t.Fatalf("elastic job at %d vnodes, want grown back to 2", got)
	}
	if scaler.Shrinks() != 0 {
		t.Fatalf("external drain was miscounted as %d controller shrinks", scaler.Shrinks())
	}
}
