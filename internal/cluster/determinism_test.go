package cluster

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/harness"
	"switchflow/internal/obs"
	"switchflow/internal/trace"
)

// fleetRun captures everything observable about one sharded fleet run:
// the merged event stream, the Chrome-trace bytes rendered from it, and
// the per-job progress counters.
type fleetRun struct {
	events     []obs.Event
	traceJSON  []byte
	iterations []int
	latencies  []int
	placements []string
}

func runShardedFleet(t *testing.T) fleetRun {
	t.Helper()
	c := New(Collocate{}, 3, device.ClassV100, device.ClassV100)
	c.Record()
	var handles []*JobHandle
	for i, model := range []string{"ResNet50", "VGG16", "InceptionV3"} {
		handles = append(handles, c.Submit(time.Duration(i)*2*time.Second, trainCfg(t, "t-"+model, model)))
	}
	for i, model := range []string{"MobileNetV2", "ResNet50", "DenseNet121", "NASNetMobile"} {
		cfg := serveCfg(t, "s-"+model, model)
		cfg.PoissonArrivals = true
		cfg.ArrivalSeed = int64(300 + i)
		handles = append(handles, c.Submit(time.Duration(i)*time.Second, cfg))
	}
	c.RunUntil(10 * time.Second)

	run := fleetRun{events: c.Events()}
	tl := &trace.Timeline{}
	for _, e := range run.events {
		tl.Observe(e)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	run.traceJSON = buf.Bytes()
	for _, h := range handles {
		if !h.Placed {
			run.placements = append(run.placements, "queued")
			continue
		}
		run.placements = append(run.placements, h.Where.String())
		run.iterations = append(run.iterations, h.Job.Iterations)
		run.latencies = append(run.latencies, h.Job.Latencies.Count())
	}
	return run
}

// TestShardedFleetSerialParallelIdentical is the cluster-level epoch-
// barrier merge proof: the merged obs stream, the rendered Chrome trace
// bytes, and every per-job metric must be identical whether the node
// engines advance on one worker or eight.
func TestShardedFleetSerialParallelIdentical(t *testing.T) {
	prev := harness.SetParallelism(1)
	serial := runShardedFleet(t)
	harness.SetParallelism(8)
	parallel := runShardedFleet(t)
	harness.SetParallelism(prev)

	if len(serial.events) == 0 {
		t.Fatal("fleet produced no events")
	}
	if !reflect.DeepEqual(serial.events, parallel.events) {
		t.Fatalf("merged event streams differ: %d vs %d events", len(serial.events), len(parallel.events))
	}
	if !bytes.Equal(serial.traceJSON, parallel.traceJSON) {
		t.Fatal("Chrome trace bytes differ between serial and parallel runs")
	}
	if !reflect.DeepEqual(serial.iterations, parallel.iterations) {
		t.Fatalf("training iterations differ: %v vs %v", serial.iterations, parallel.iterations)
	}
	if !reflect.DeepEqual(serial.latencies, parallel.latencies) {
		t.Fatalf("served request counts differ: %v vs %v", serial.latencies, parallel.latencies)
	}
	if !reflect.DeepEqual(serial.placements, parallel.placements) {
		t.Fatalf("placements differ: %v vs %v", serial.placements, parallel.placements)
	}
}

// TestMergedEventsOrdered pins the merged stream's ordering invariant:
// nondecreasing time; ties broken by node index then emit seq.
func TestMergedEventsOrdered(t *testing.T) {
	run := runShardedFleet(t)
	for i := 1; i < len(run.events); i++ {
		if run.events[i].Time < run.events[i-1].Time {
			t.Fatalf("event %d at %v precedes event %d at %v",
				i, run.events[i].Time, i-1, run.events[i-1].Time)
		}
	}
}

// TestOffEpochSubmissionPlacesAtNextBarrier documents the epoch
// quantization: a submission between barriers places at the next one.
func TestOffEpochSubmissionPlacesAtNextBarrier(t *testing.T) {
	c := New(FirstFit{}, 1, device.ClassV100)
	h := c.Submit(7*time.Millisecond, trainCfg(t, "t", "ResNet50"))
	c.RunUntil(time.Second)
	if !h.Placed {
		t.Fatal("job not placed")
	}
	if h.PlacedAt != 10*time.Millisecond {
		t.Fatalf("PlacedAt = %v, want next barrier 10ms", h.PlacedAt)
	}
	if d, ok := h.QueueDelay(); !ok || d != 3*time.Millisecond {
		t.Fatalf("QueueDelay = %v (ok=%v), want 3ms", d, ok)
	}
}
