package cluster

import "switchflow/internal/workload"

// Policy decides where a job runs.
type Policy interface {
	// Place returns a node and GPU index, or ok=false to queue the job.
	Place(c *Cluster, cfg workload.Config) (node *Node, gpu int, ok bool)
	// Name labels the policy.
	Name() string
}

// FirstFit places on the first GPU whose free memory covers the job's
// persistent state.
type FirstFit struct{}

var _ Policy = FirstFit{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Place implements Policy.
func (FirstFit) Place(c *Cluster, cfg workload.Config) (*Node, int, bool) {
	need := weightsNeeded(cfg)
	for _, n := range c.nodes {
		for gpu := range n.perGPU {
			if freeWeightBytes(n, gpu) >= need {
				return n, gpu, true
			}
		}
	}
	return nil, 0, false
}

// LeastLoaded places on the GPU running the fewest jobs (ties: most free
// memory), spreading load across the fleet.
type LeastLoaded struct{}

var _ Policy = LeastLoaded{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least-loaded" }

// Place implements Policy.
func (LeastLoaded) Place(c *Cluster, cfg workload.Config) (*Node, int, bool) {
	need := weightsNeeded(cfg)
	var (
		bestNode *Node
		bestGPU  int
		found    bool
	)
	better := func(n *Node, gpu int) bool {
		if !found {
			return true
		}
		if n.perGPU[gpu].jobs != bestNode.perGPU[bestGPU].jobs {
			return n.perGPU[gpu].jobs < bestNode.perGPU[bestGPU].jobs
		}
		return freeWeightBytes(n, gpu) > freeWeightBytes(bestNode, bestGPU)
	}
	for _, n := range c.nodes {
		for gpu := range n.perGPU {
			if freeWeightBytes(n, gpu) < need {
				continue
			}
			if better(n, gpu) {
				bestNode, bestGPU, found = n, gpu, true
			}
		}
	}
	return bestNode, bestGPU, found
}

// Dedicate is the status quo the paper describes: training jobs demand an
// *empty* GPU (dedicated), inference jobs pack onto GPUs that host no
// training. Training queues when no empty GPU exists — the "wait for
// hours to access GPU" problem SwitchFlow removes.
type Dedicate struct{}

var _ Policy = Dedicate{}

// Name implements Policy.
func (Dedicate) Name() string { return "dedicate" }

// Place implements Policy.
func (Dedicate) Place(c *Cluster, cfg workload.Config) (*Node, int, bool) {
	need := weightsNeeded(cfg)
	if cfg.Kind == workload.KindTraining {
		for _, n := range c.nodes {
			for gpu := range n.perGPU {
				if n.perGPU[gpu].jobs == 0 && freeWeightBytes(n, gpu) >= need {
					return n, gpu, true
				}
			}
		}
		return nil, 0, false
	}
	// Inference: pack onto the fullest training-free GPU that fits.
	var (
		bestNode *Node
		bestGPU  int
		found    bool
	)
	for _, n := range c.nodes {
		for gpu := range n.perGPU {
			if n.perGPU[gpu].training > 0 {
				continue
			}
			if freeWeightBytes(n, gpu) < need {
				continue
			}
			if !found || n.perGPU[gpu].jobs > bestNode.perGPU[bestGPU].jobs {
				bestNode, bestGPU, found = n, gpu, true
			}
		}
	}
	return bestNode, bestGPU, found
}

// Collocate is the SwitchFlow-enabled policy: inference services prefer
// GPUs that host a training job (their requests preempt it, so tails stay
// bounded while the training soaks up idle capacity); training spreads
// least-loaded. Nothing queues while any GPU has memory to spare.
type Collocate struct{}

var _ Policy = Collocate{}

// Name implements Policy.
func (Collocate) Name() string { return "collocate" }

// Place implements Policy.
func (Collocate) Place(c *Cluster, cfg workload.Config) (*Node, int, bool) {
	need := weightsNeeded(cfg)
	if cfg.Kind == workload.KindTraining {
		return LeastLoaded{}.Place(c, cfg)
	}
	// Prefer a GPU with training and the fewest inference tenants.
	var (
		bestNode *Node
		bestGPU  int
		found    bool
	)
	for _, n := range c.nodes {
		for gpu := range n.perGPU {
			if n.perGPU[gpu].training == 0 || freeWeightBytes(n, gpu) < need {
				continue
			}
			inference := n.perGPU[gpu].jobs - n.perGPU[gpu].training
			if !found || inference < bestNode.perGPU[bestGPU].jobs-bestNode.perGPU[bestGPU].training {
				bestNode, bestGPU, found = n, gpu, true
			}
		}
	}
	if found {
		return bestNode, bestGPU, true
	}
	return LeastLoaded{}.Place(c, cfg)
}
