package cluster

// All-or-nothing topology-aware gang placement (ROADMAP item 4). A gang
// submission asks for Replicas GPUs on ONE node — partial placements
// never happen: either a full slot exists and every replica lands this
// barrier, or the whole gang waits in the gang queue. Slots are priced
// on each node's interconnect fabric, so an NVLink-contiguous set beats
// a PCIe-scattered one whenever both fit, and the cheapest-slot node
// wins the gang. Queued gangs retry at every epoch barrier under a
// selectable discipline: FIFO (arrival order), SRTF (smallest modeled
// sync demand first — gradient bytes x replica width, the term that
// dominates a synchronous step), or Priority (the job priority the
// preemption stack already honors).

import (
	"sort"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/obs"
	"switchflow/internal/topology"
	"switchflow/internal/workload"
)

// GangOrder selects how queued gangs are ranked at each retry barrier.
type GangOrder int

const (
	// GangFIFO retries gangs in arrival order.
	GangFIFO GangOrder = iota
	// GangSRTF retries the gang with the smallest modeled sync demand
	// first (shortest-remaining-time-first proxy: a gang's step length is
	// dominated by gradient bytes times replica width).
	GangSRTF
	// GangPriority retries the highest-priority gang first.
	GangPriority
)

// String returns the discipline's name.
func (o GangOrder) String() string {
	switch o {
	case GangSRTF:
		return "srtf"
	case GangPriority:
		return "priority"
	}
	return "fifo"
}

// SetGangOrder selects the gang queue discipline. Call while the fleet
// is stopped at a barrier (or before it runs).
func (c *Cluster) SetGangOrder(o GangOrder) { c.gangOrder = o }

// GangQueued returns the number of whole gangs waiting for a slot.
func (c *Cluster) GangQueued() int { return len(c.gangQueue) }

// NewNVLink builds a cluster like New, but installs an NVLink-island
// fabric (islands of the given size) on every node, so gang placement
// has real topology to price against.
func NewNVLink(policy Policy, count, island int, gpus ...device.GPUClass) *Cluster {
	c := New(policy, count, gpus...)
	for _, n := range c.nodes {
		fabric := topology.NVLinkIslands(len(gpus), island, maxPCIeGBps(gpus), topology.DefaultNVLinkGBps)
		if err := n.machine.SetFabric(fabric); err != nil {
			panic(err) // unreachable: fabric sized from the same class list
		}
	}
	return c
}

func maxPCIeGBps(gpus []device.GPUClass) float64 {
	bw := 0.0
	for _, g := range gpus {
		if g.PCIeGBps > bw {
			bw = g.PCIeGBps
		}
	}
	return bw
}

// retryGangs re-attempts every queued gang at a barrier, ranked by the
// configured discipline. Placement order affects which gang wins a
// contended slot; the queue itself keeps arrival order so FIFO fairness
// and the determinism contract are preserved across retries.
func (c *Cluster) retryGangs() {
	if len(c.gangQueue) == 0 {
		return
	}
	order := make([]*JobHandle, len(c.gangQueue))
	copy(order, c.gangQueue)
	switch c.gangOrder {
	case GangSRTF:
		sort.SliceStable(order, func(i, j int) bool {
			return gangSyncDemand(order[i]) < gangSyncDemand(order[j])
		})
	case GangPriority:
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].Cfg.Priority > order[j].Cfg.Priority
		})
	}
	placed := make(map[*JobHandle]bool, len(order))
	for _, h := range order {
		if c.tryPlaceGang(h) {
			placed[h] = true
		}
	}
	if len(placed) == 0 {
		return
	}
	kept := c.gangQueue[:0]
	for _, h := range c.gangQueue {
		if !placed[h] {
			kept = append(kept, h)
		}
	}
	for i := len(kept); i < len(c.gangQueue); i++ {
		c.gangQueue[i] = nil
	}
	c.gangQueue = kept
}

// gangSyncDemand is the SRTF ranking key: the bytes the gang moves
// through its all-reduce each step, gradient size times replica width.
func gangSyncDemand(h *JobHandle) int64 {
	return h.Cfg.Model.ParamBytes() * int64(gangWidth(h.Cfg))
}

// gangWidth resolves the gang's replica count from the submission.
func gangWidth(cfg workload.Config) int {
	if len(cfg.VNodes) > 0 {
		return len(cfg.VNodes)
	}
	if cfg.Replicas > 1 {
		return cfg.Replicas
	}
	return 1
}

// tryPlaceGang finds a full slot for the gang: on each node, every
// placeable GPU with room for a whole replica (weights plus optimizer
// state — DDP replicates them all) and no training job already on it
// (§1: "DNN training jobs are usually allocated dedicated GPUs"; a
// replica time-slicing another trainer would gate its whole gang's
// barrier) is a candidate, and the node's fabric picks the cheapest
// size-width ring among them. The cheapest slot across the fleet wins,
// ties to the lowest node index then the lexicographically smallest GPU
// set, so placement is deterministic. Either every replica lands here or
// none does — partial gangs never exist. Inference may still collocate
// onto gang GPUs afterwards; preemption bounds the interference.
func (c *Cluster) tryPlaceGang(h *JobHandle) bool {
	width := gangWidth(h.Cfg)
	need := weightsNeeded(h.Cfg)
	grad := h.Cfg.Model.ParamBytes()
	var bestNode *Node
	var bestSlot []int
	var bestCost time.Duration
	for _, n := range c.nodes {
		var cands []int
		for gpu := range n.perGPU {
			if n.perGPU[gpu].training == 0 && freeWeightBytes(n, gpu) >= need {
				cands = append(cands, gpu)
			}
		}
		if len(cands) < width {
			continue
		}
		slot, cost, ok := n.machine.Fabric().BestSlot(cands, width, grad)
		if !ok {
			continue
		}
		if bestNode == nil || cost < bestCost {
			bestNode, bestSlot, bestCost = n, slot, cost
		}
	}
	if bestNode == nil {
		return false
	}
	cfg := h.Cfg
	cfg.VNodes = make([]device.ID, width)
	for i, gpu := range bestSlot {
		cfg.VNodes[i] = device.GPUID(gpu)
	}
	cfg.Device = cfg.VNodes[0]
	cfg.Replicas = 0 // materialized into VNodes
	job, err := bestNode.mgr.AddJob(cfg)
	if err != nil {
		// The packer believed it fits but admission disagreed; the gang
		// stays whole in the queue.
		return false
	}
	h.Job = job
	h.Placed = true
	h.Where = Placement{Node: bestNode.Name, GPU: bestSlot[0], GPUs: bestSlot}
	h.PlacedAt = c.Now()
	bestNode.machine.Bus().Emit(obs.Event{
		Kind:   obs.KindGangPlace,
		Ctx:    job.Ctx,
		Job:    cfg.Name,
		Device: device.GPUID(bestSlot[0]).String(),
		From:   bestNode.Name,
		Name:   h.Where.String(),
		Dur:    bestCost,
		Count:  width,
	})
	for _, gpu := range bestSlot {
		bestNode.perGPU[gpu].jobs++
		if cfg.Kind == workload.KindTraining {
			bestNode.perGPU[gpu].training++
		}
	}
	c.placed = append(c.placed, h)
	return true
}
