// Package cluster schedules DL jobs across a fleet of machines, each node
// running its own SwitchFlow session manager. It reproduces the
// deployment context of §1-2: "DNN training jobs are usually allocated
// dedicated GPUs while multiple inference jobs may be packed on a single
// GPU" — and lets SwitchFlow relax exactly that constraint, collocating
// inference with training safely because preemption bounds the tails.
package cluster

import (
	"fmt"
	"time"

	"switchflow/internal/core"
	"switchflow/internal/device"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// Node is one machine of the fleet.
type Node struct {
	// Name labels the node.
	Name string

	machine *device.Machine
	mgr     *core.Manager
	perGPU  []gpuLoad
}

type gpuLoad struct {
	jobs     int
	training int
}

// Machine exposes the node's hardware (stats, tests).
func (n *Node) Machine() *device.Machine { return n.machine }

// Manager exposes the node's SwitchFlow manager.
func (n *Node) Manager() *core.Manager { return n.mgr }

// Placement names where a job landed.
type Placement struct {
	Node string
	GPU  int
}

// String implements fmt.Stringer.
func (p Placement) String() string { return fmt.Sprintf("%s/gpu:%d", p.Node, p.GPU) }

// JobHandle tracks one submitted job.
type JobHandle struct {
	// Cfg echoes the submission.
	Cfg workload.Config
	// Job is nil until the job is placed.
	Job *workload.Job
	// Placed reports whether placement succeeded.
	Placed bool
	// Where it landed.
	Where Placement
	// SubmittedAt and PlacedAt bound the queueing delay.
	SubmittedAt time.Duration
	PlacedAt    time.Duration
}

// QueueDelay is the time the job waited for placement.
func (h *JobHandle) QueueDelay() time.Duration {
	if !h.Placed {
		return -1
	}
	return h.PlacedAt - h.SubmittedAt
}

// Cluster places jobs onto nodes.
type Cluster struct {
	eng    *sim.Engine
	policy Policy
	nodes  []*Node
	queue  []*JobHandle
	placed []*JobHandle
}

// New builds a cluster of count identical nodes, each with the given GPU
// classes and a Xeon host.
func New(eng *sim.Engine, policy Policy, count int, gpus ...device.GPUClass) *Cluster {
	c := &Cluster{eng: eng, policy: policy}
	for i := 0; i < count; i++ {
		machine := device.NewMachine(eng, device.ClassXeonDual, gpus...)
		c.nodes = append(c.nodes, &Node{
			Name:    fmt.Sprintf("node%d", i),
			machine: machine,
			mgr:     core.NewManager(eng, machine, core.Options{}),
			perGPU:  make([]gpuLoad, len(gpus)),
		})
	}
	return c
}

// Nodes returns the fleet.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Submit schedules cfg for placement at the given virtual time (>= now).
// The returned handle fills in as placement happens.
func (c *Cluster) Submit(at time.Duration, cfg workload.Config) *JobHandle {
	h := &JobHandle{Cfg: cfg, SubmittedAt: at}
	c.eng.Schedule(at, func() {
		if !c.tryPlace(h) {
			c.queue = append(c.queue, h)
		}
	})
	return h
}

// Queued returns jobs still waiting for placement.
func (c *Cluster) Queued() int { return len(c.queue) }

// Placed returns every placed handle.
func (c *Cluster) Placed() []*JobHandle {
	out := make([]*JobHandle, len(c.placed))
	copy(out, c.placed)
	return out
}

// Stop halts a placed job and retries queued placements (its memory is
// retained until the job object is dropped; this models job completion
// only approximately, so the retry mainly serves load-count policies).
func (c *Cluster) Stop(h *JobHandle) {
	if !h.Placed {
		return
	}
	for _, n := range c.nodes {
		if n.Name == h.Where.Node {
			n.mgr.StopJob(h.Job)
			n.perGPU[h.Where.GPU].jobs--
			if h.Cfg.Kind == workload.KindTraining {
				n.perGPU[h.Where.GPU].training--
			}
		}
	}
	c.retry()
}

func (c *Cluster) retry() {
	kept := c.queue[:0]
	for _, h := range c.queue {
		if !c.tryPlace(h) {
			kept = append(kept, h)
		}
	}
	c.queue = kept
}

// tryPlace asks the policy for a slot and admits the job there.
func (c *Cluster) tryPlace(h *JobHandle) bool {
	node, gpu, ok := c.policy.Place(c, h.Cfg)
	if !ok {
		return false
	}
	cfg := h.Cfg
	cfg.Device = device.GPUID(gpu)
	job, err := node.mgr.AddJob(cfg)
	if err != nil {
		// The policy believed it fits but admission disagreed (e.g. a
		// race with another placement this instant); keep queued.
		return false
	}
	h.Job = job
	h.Placed = true
	h.Where = Placement{Node: node.Name, GPU: gpu}
	h.PlacedAt = c.eng.Now()
	node.machine.Bus().Emit(obs.Event{
		Kind:   obs.KindPlace,
		Ctx:    job.Ctx,
		Job:    cfg.Name,
		Device: device.GPUID(gpu).String(),
		From:   node.Name,
	})
	node.perGPU[gpu].jobs++
	if cfg.Kind == workload.KindTraining {
		node.perGPU[gpu].training++
	}
	c.placed = append(c.placed, h)
	return true
}

// freeWeightBytes estimates the admissible persistent state on a GPU; a
// failed GPU admits nothing.
func freeWeightBytes(n *Node, gpu int) int64 {
	g := n.machine.GPU(gpu)
	if g.Failed() {
		return -1
	}
	return g.Mem.Available()
}

// weightsNeeded returns the job's persistent-state demand.
func weightsNeeded(cfg workload.Config) int64 {
	if cfg.Kind == workload.KindTraining {
		return cfg.Model.StatefulBytes()
	}
	return cfg.Model.ParamBytes()
}
