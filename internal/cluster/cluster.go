// Package cluster schedules DL jobs across a fleet of machines, each node
// running its own SwitchFlow session manager. It reproduces the
// deployment context of §1-2: "DNN training jobs are usually allocated
// dedicated GPUs while multiple inference jobs may be packed on a single
// GPU" — and lets SwitchFlow relax exactly that constraint, collocating
// inference with training safely because preemption bounds the tails.
//
// Execution model: every node owns its own sim.Engine, and the fleet
// advances through a shard.Group — machines run their event loops in
// parallel within bounded epochs, and all cross-machine interaction
// (placement of due submissions, queue retries after Stop) happens at
// epoch barriers where every engine sits at the same virtual instant.
// Per-node observation streams merge by (virtual time, node index, emit
// seq) via Record/Events, so the fleet's trace is byte-identical whether
// the epochs execute on one worker or many.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"switchflow/internal/core"
	"switchflow/internal/device"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/sim/shard"
	"switchflow/internal/workload"
)

// DefaultEpoch is the barrier stride of the fleet: the latency of the
// modeled cluster control plane. Submissions timed at multiples of it
// place at exactly their submission instant, as a serial cluster would.
const DefaultEpoch = 5 * time.Millisecond

// Node is one machine of the fleet.
type Node struct {
	// Name labels the node.
	Name string

	eng     *sim.Engine
	machine *device.Machine
	mgr     *core.Manager
	perGPU  []gpuLoad
}

type gpuLoad struct {
	jobs     int
	training int
}

// Machine exposes the node's hardware (stats, tests).
func (n *Node) Machine() *device.Machine { return n.machine }

// Manager exposes the node's SwitchFlow manager.
func (n *Node) Manager() *core.Manager { return n.mgr }

// Engine exposes the node's private event engine. Schedule onto it only
// while the fleet is stopped at a barrier (between RunUntil calls, or
// inside a shard barrier hook).
func (n *Node) Engine() *sim.Engine { return n.eng }

// Placement names where a job landed.
type Placement struct {
	Node string
	GPU  int
	// GPUs lists every device of a gang placement in ring order (GPU
	// equals GPUs[0]); empty for single-device jobs.
	GPUs []int
}

// String implements fmt.Stringer.
func (p Placement) String() string {
	if len(p.GPUs) > 1 {
		s := fmt.Sprintf("%s/gpus:%d", p.Node, p.GPUs[0])
		for _, g := range p.GPUs[1:] {
			s += fmt.Sprintf("+%d", g)
		}
		return s
	}
	return fmt.Sprintf("%s/gpu:%d", p.Node, p.GPU)
}

// JobHandle tracks one submitted job.
type JobHandle struct {
	// Cfg echoes the submission.
	Cfg workload.Config
	// Job is nil until the job is placed.
	Job *workload.Job
	// Placed reports whether placement succeeded.
	Placed bool
	// Where it landed.
	Where Placement
	// SubmittedAt and PlacedAt bound the queueing delay.
	SubmittedAt time.Duration
	PlacedAt    time.Duration

	// stopped guards Stop against double-decrementing the node's load
	// counters; it also marks the handle dead for the router.
	stopped bool
}

// QueueDelay is the time the job waited for placement; ok is false while
// the job is still queued (an unplaced job has no delay to report — the
// old -1ns sentinel silently poisoned summed statistics).
func (h *JobHandle) QueueDelay() (time.Duration, bool) {
	if !h.Placed {
		return 0, false
	}
	return h.PlacedAt - h.SubmittedAt, true
}

// Stopped reports whether the job was halted via Cluster.Stop.
func (h *JobHandle) Stopped() bool { return h.stopped }

// live reports whether the handle can accept routed traffic.
func (h *JobHandle) live() bool {
	return h.Placed && !h.stopped && h.Job != nil && !h.Job.Crashed()
}

// Cluster places jobs onto nodes. Each node runs on its own engine; the
// cluster advances them together via RunUntil/RunFor and takes every
// cross-node decision at shard epoch barriers.
type Cluster struct {
	policy    Policy
	nodes     []*Node
	group     *shard.Group
	pending   []*JobHandle // submissions not yet due, in Submit order
	queue     []*JobHandle // due but unplaceable, awaiting a Stop retry
	gangQueue []*JobHandle // due gangs whose full slot never fit, in Submit order
	gangOrder GangOrder    // how retryGangs ranks the gang queue
	placed    []*JobHandle
	recorders []*obs.Recorder
}

// New builds a cluster of count identical nodes, each with the given GPU
// classes, a Xeon host, and its own private engine, advancing in
// DefaultEpoch strides.
func New(policy Policy, count int, gpus ...device.GPUClass) *Cluster {
	c := &Cluster{policy: policy}
	engines := make([]*sim.Engine, count)
	for i := 0; i < count; i++ {
		eng := sim.NewEngine()
		engines[i] = eng
		machine := device.NewMachine(eng, device.ClassXeonDual, gpus...)
		c.nodes = append(c.nodes, &Node{
			Name:    fmt.Sprintf("node%d", i),
			eng:     eng,
			machine: machine,
			mgr:     core.NewManager(eng, machine, core.Options{}),
			perGPU:  make([]gpuLoad, len(gpus)),
		})
	}
	c.group = shard.New(DefaultEpoch, engines...)
	c.group.AtBarrier(c.barrier)
	return c
}

// Nodes returns the fleet.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Now returns the fleet's barrier-aligned virtual time.
func (c *Cluster) Now() time.Duration { return c.group.Now() }

// RunUntil advances every node to t in epoch strides, the nodes in
// parallel within each epoch and placements at the barriers.
func (c *Cluster) RunUntil(t time.Duration) { c.group.RunUntil(t) }

// RunFor is RunUntil relative to the current time.
func (c *Cluster) RunFor(d time.Duration) { c.group.RunFor(d) }

// Epoch returns the fleet's barrier stride.
func (c *Cluster) Epoch() time.Duration { return c.group.Epoch() }

// AtBarrier registers fn to run at every fleet epoch barrier, after the
// cluster's own placement pass (hooks run in registration order). fn runs
// with every node engine stopped at the barrier instant and may schedule
// onto any node's engine at or after it — the front-end router and the
// autoscaler live here.
func (c *Cluster) AtBarrier(fn func(now time.Duration)) { c.group.AtBarrier(fn) }

// Record attaches a recorder for the given kinds (all kinds when none are
// given) to every node's bus. Call it before the fleet runs; Events
// returns the merged streams.
func (c *Cluster) Record(kinds ...obs.Kind) {
	for _, n := range c.nodes {
		r := obs.NewRecorder(0)
		n.machine.Bus().Subscribe(r, kinds...)
		c.recorders = append(c.recorders, r)
	}
}

// Events returns every recorded event across the fleet in the
// deterministic merged order: (virtual time, node index, emit seq).
func (c *Cluster) Events() []obs.Event {
	streams := make([][]obs.Event, len(c.recorders))
	for i, r := range c.recorders {
		streams[i] = r.Events()
	}
	return obs.Merge(streams...)
}

// Submit schedules cfg for placement at the given virtual time. A
// submission at or before the current time places immediately (the fleet
// is stopped at a barrier between runs); later ones place at the first
// epoch barrier at or after their submission time, in (time, submission
// order) sequence.
func (c *Cluster) Submit(at time.Duration, cfg workload.Config) *JobHandle {
	h := &JobHandle{Cfg: cfg, SubmittedAt: at}
	if at <= c.Now() {
		c.placeOrQueue(h)
		return h
	}
	c.pending = append(c.pending, h)
	return h
}

// placeOrQueue routes a due submission to its placement path: gangs go
// through the all-or-nothing gang packer and wait in the gang queue;
// everything else uses the node policy and the plain queue.
func (c *Cluster) placeOrQueue(h *JobHandle) {
	if h.Cfg.Gang {
		if !c.tryPlaceGang(h) {
			c.gangQueue = append(c.gangQueue, h)
		}
		return
	}
	if !c.tryPlace(h) {
		c.queue = append(c.queue, h)
	}
}

// barrier runs at every shard epoch boundary with all node engines
// aligned at now: it retries queued submissions (capacity may have freed
// since they were rejected), then releases due submissions, both in
// deterministic (time, submit-order) sequence. The queue holds jobs that
// became due at earlier barriers, so retrying it first preserves the
// global ordering.
func (c *Cluster) barrier(now time.Duration) {
	c.retry()
	c.retryGangs()
	due := c.pending[:0:0]
	kept := c.pending[:0]
	for _, h := range c.pending {
		if h.SubmittedAt <= now {
			due = append(due, h)
		} else {
			kept = append(kept, h)
		}
	}
	for i := len(kept); i < len(c.pending); i++ {
		c.pending[i] = nil
	}
	c.pending = kept
	// Stable: submissions at the same instant place in Submit order.
	sort.SliceStable(due, func(i, j int) bool { return due[i].SubmittedAt < due[j].SubmittedAt })
	for _, h := range due {
		c.placeOrQueue(h)
	}
}

// Queued returns jobs still waiting for placement (gangs included).
func (c *Cluster) Queued() int { return len(c.queue) + len(c.gangQueue) }

// Placed returns every placed handle.
func (c *Cluster) Placed() []*JobHandle {
	out := make([]*JobHandle, len(c.placed))
	copy(out, c.placed)
	return out
}

// Stop halts a placed job and retries queued placements (its memory is
// retained until the job object is dropped; this models job completion
// only approximately, so the retry mainly serves load-count policies).
// A second Stop on the same handle is a no-op: without the guard it
// would double-decrement the per-GPU load counters, driving them
// negative and skewing LeastLoaded/Dedicate/Collocate forever after.
func (c *Cluster) Stop(h *JobHandle) {
	if !h.Placed || h.stopped {
		return
	}
	h.stopped = true
	for _, n := range c.nodes {
		if n.Name == h.Where.Node {
			n.mgr.StopJob(h.Job)
			for _, gpu := range h.gangGPUs() {
				//swlint:allow counterflow one decrement per distinct gang GPU (replicas never share a device), mirroring tryPlaceGang's increments; the h.stopped guard blocks re-entry
				n.perGPU[gpu].jobs--
				if h.Cfg.Kind == workload.KindTraining {
					//swlint:allow counterflow same distinct-GPU loop as jobs above
					n.perGPU[gpu].training--
				}
			}
			break
		}
	}
	// Drop the handle so Placed() reflects the jobs actually running.
	for i, p := range c.placed {
		if p == h {
			c.placed = append(c.placed[:i], c.placed[i+1:]...)
			break
		}
	}
	c.retry()
	c.retryGangs()
}

// gangGPUs returns every GPU the placement occupies: the full gang set,
// or the single device of a plain job. Stop must decrement them all —
// gang load symmetry mirrors gang placement.
func (h *JobHandle) gangGPUs() []int {
	if len(h.Where.GPUs) > 0 {
		return h.Where.GPUs
	}
	return []int{h.Where.GPU}
}

func (c *Cluster) retry() {
	kept := c.queue[:0]
	for _, h := range c.queue {
		if !c.tryPlace(h) {
			kept = append(kept, h)
		}
	}
	c.queue = kept
}

// tryPlace asks the policy for a slot and admits the job there.
func (c *Cluster) tryPlace(h *JobHandle) bool {
	node, gpu, ok := c.policy.Place(c, h.Cfg)
	if !ok {
		return false
	}
	cfg := h.Cfg
	cfg.Device = device.GPUID(gpu)
	job, err := node.mgr.AddJob(cfg)
	if err != nil {
		// The policy believed it fits but admission disagreed (e.g. a
		// race with another placement this instant); keep queued.
		return false
	}
	h.Job = job
	h.Placed = true
	h.Where = Placement{Node: node.Name, GPU: gpu}
	h.PlacedAt = c.Now()
	node.machine.Bus().Emit(obs.Event{
		Kind:   obs.KindPlace,
		Ctx:    job.Ctx,
		Job:    cfg.Name,
		Device: device.GPUID(gpu).String(),
		From:   node.Name,
	})
	node.perGPU[gpu].jobs++
	if cfg.Kind == workload.KindTraining {
		node.perGPU[gpu].training++
	}
	c.placed = append(c.placed, h)
	return true
}

// freeWeightBytes estimates the admissible persistent state on a GPU; a
// failed or draining GPU admits nothing.
func freeWeightBytes(n *Node, gpu int) int64 {
	g := n.machine.GPU(gpu)
	if g.Failed() || g.Draining() {
		return -1
	}
	return g.Mem.Available()
}

// weightsNeeded returns the job's persistent-state demand.
func weightsNeeded(cfg workload.Config) int64 {
	if cfg.Kind == workload.KindTraining {
		return cfg.Model.StatefulBytes()
	}
	return cfg.Model.ParamBytes()
}
