// The fleet front-end: a trace-driven router that takes the traffic
// layer's per-epoch arrival batches and spreads them over per-tenant
// replica sets at shard barriers. All routing state lives on the calling
// goroutine and every decision happens at a barrier with the node engines
// stopped, so fleet traces stay byte-identical serial vs parallel.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"switchflow/internal/metrics"
	"switchflow/internal/models"
	"switchflow/internal/obs"
	"switchflow/internal/traffic"
	"switchflow/internal/workload"
)

// RouteStrategy selects how a tenant's requests spread over its replicas.
type RouteStrategy int

const (
	// RouteHash is consistent hashing: each (aggregated) client sticks to
	// the ring successor of its hash, so replica-set changes only remap
	// the keys adjacent to the change.
	RouteHash RouteStrategy = iota
	// RouteLeastLoaded sends each request to the live replica with the
	// fewest outstanding requests (counting this epoch's routed share).
	RouteLeastLoaded
)

// String names the strategy.
func (s RouteStrategy) String() string {
	if s == RouteLeastLoaded {
		return "least-loaded"
	}
	return "hash"
}

// Service is one tenant's replica set behind the front-end.
type Service struct {
	tenant   traffic.Tenant
	template workload.Config
	replicas []*JobHandle
	seq      int // next replica suffix

	routed  int // requests routed to a replica
	dropped int // arrivals with no live replica (router-level shed)

	// Autoscaler bookkeeping (see autoscale.go).
	hotFor, idleFor       int
	cooldownUntil         time.Duration
	lastOffered, lastShed int
	scaleOuts, scaleIns   int
}

// Tenant returns the tenant this service fronts.
func (s *Service) Tenant() traffic.Tenant { return s.tenant }

// Replicas returns the tenant's submitted replicas, oldest first
// (including queued and stopped handles).
func (s *Service) Replicas() []*JobHandle {
	out := make([]*JobHandle, len(s.replicas))
	copy(out, s.replicas)
	return out
}

// Routed and Dropped count the tenant's requests that reached a replica
// and those that arrived with no live replica to take them.
func (s *Service) Routed() int  { return s.routed }
func (s *Service) Dropped() int { return s.dropped }

// ScaleOuts and ScaleIns count autoscaler actions on this service.
func (s *Service) ScaleOuts() int { return s.scaleOuts }
func (s *Service) ScaleIns() int  { return s.scaleIns }

// Counters aggregates the replicas' serving outcomes; router-level drops
// count as offered-and-shed, so shed rate reflects what clients saw.
func (s *Service) Counters() metrics.ServingCounters {
	var sum metrics.ServingCounters
	for _, h := range s.replicas {
		if h.Job != nil {
			sum.Add(h.Job.ServingStats())
		}
	}
	sum.Offered += s.dropped
	sum.Shed += s.dropped
	return sum
}

// desired counts replicas not yet retired (live or still queued) — the
// autoscaler's notion of current size.
func (s *Service) desired() int {
	n := 0
	for _, h := range s.replicas {
		if !h.stopped {
			n++
		}
	}
	return n
}

// Frontend routes trace-driven traffic onto the fleet. At every cluster
// barrier it pulls the next epoch's arrival batch from the generator,
// picks a replica per arrival, and schedules the request onto the
// replica's node engine at its arrival instant.
type Frontend struct {
	c        *Cluster
	gen      *traffic.Generator
	strategy RouteStrategy
	services []*Service
	scaler   *Autoscaler

	watermark time.Duration // arrivals generated up to here
	started   bool

	routed, dropped int
}

// DefaultServiceConfig is the replica template tenants get unless the
// caller supplies their own: single-image requests with tier SLO and
// priority, dynamic batching up to 8 requests, and the ~10 ms per-image
// decode the paper's serving setups pay.
func DefaultServiceConfig(t traffic.Tenant) (workload.Config, error) {
	spec, err := models.ByName(t.Model)
	if err != nil {
		return workload.Config{}, err
	}
	return workload.Config{
		Model:       spec,
		Batch:       1,
		Kind:        workload.KindServing,
		Priority:    t.Tier.Priority(),
		SLO:         t.Tier.SLO(),
		MaxBatch:    4,
		BatchWait:   2 * time.Millisecond,
		PerImageCPU: 10 * time.Millisecond,
	}, nil
}

// NewFrontend builds the router over the cluster for the generator's
// tenants. template shapes each tenant's replica config (nil uses
// DefaultServiceConfig; Name is overwritten per replica). The front-end
// hooks the cluster's barriers; call Start before running the fleet.
func NewFrontend(c *Cluster, gen *traffic.Generator, strategy RouteStrategy,
	template func(traffic.Tenant) (workload.Config, error)) (*Frontend, error) {
	if template == nil {
		template = DefaultServiceConfig
	}
	f := &Frontend{c: c, gen: gen, strategy: strategy}
	for _, t := range gen.Profile().Tenants {
		cfg, err := template(t)
		if err != nil {
			return nil, fmt.Errorf("cluster: frontend tenant %s: %w", t.ID, err)
		}
		f.services = append(f.services, &Service{tenant: t, template: cfg})
	}
	c.AtBarrier(f.barrier)
	return f, nil
}

// Services returns the per-tenant services in tenant order.
func (f *Frontend) Services() []*Service {
	out := make([]*Service, len(f.services))
	copy(out, f.services)
	return out
}

// Strategy returns the routing strategy.
func (f *Frontend) Strategy() RouteStrategy { return f.strategy }

// Routed and Dropped count requests fleet-wide.
func (f *Frontend) Routed() int  { return f.routed }
func (f *Frontend) Dropped() int { return f.dropped }

// Start submits replicasPerTenant initial replicas for every service and
// routes the first epoch's arrivals. Call it with the fleet stopped at a
// barrier (normally before the first RunUntil); a second call is a no-op.
func (f *Frontend) Start(replicasPerTenant int) {
	if f.started {
		return
	}
	f.started = true
	if replicasPerTenant < 1 {
		replicasPerTenant = 1
	}
	now := f.c.Now()
	for _, svc := range f.services {
		for r := 0; r < replicasPerTenant; r++ {
			f.addReplica(svc, now)
		}
	}
	f.watermark = now
	f.route(now)
}

// addReplica submits one more replica for svc at now; it places
// immediately when the policy finds room and queues otherwise (the
// barrier retry places it when capacity frees).
func (f *Frontend) addReplica(svc *Service, now time.Duration) *JobHandle {
	cfg := svc.template
	cfg.Name = fmt.Sprintf("%s/r%d", svc.tenant.ID, svc.seq)
	svc.seq++
	h := f.c.Submit(now, cfg)
	svc.replicas = append(svc.replicas, h)
	return h
}

// barrier runs after the cluster's placement pass at every epoch
// boundary: autoscaling first (new replicas placed at this barrier are
// immediately routable, retired ones stop receiving traffic before any
// future arrival is bound to them), then routing of the next epoch.
func (f *Frontend) barrier(now time.Duration) {
	if !f.started {
		return
	}
	if f.scaler != nil {
		f.scaler.tick(now)
	}
	f.route(now)
}

// liveReplica pairs a routable replica with its node.
type liveReplica struct {
	h           *JobHandle
	node        *Node
	outstanding int
	routed      int // this epoch
}

// route generates and binds every arrival in (watermark, now+epoch].
// Routing uses replica state observed at this barrier — exactly the one
// epoch of staleness the shard execution model prescribes for any
// cross-machine signal.
func (f *Frontend) route(now time.Duration) {
	target := now + f.c.Epoch()
	if target <= f.watermark {
		return
	}
	batch := f.gen.Batch(f.watermark, target)
	f.watermark = target

	live := make([][]liveReplica, len(f.services))
	rings := make([]hashRing, len(f.services))
	for i, svc := range f.services {
		for _, h := range svc.replicas {
			if !h.live() {
				continue
			}
			live[i] = append(live[i], liveReplica{
				h:           h,
				node:        f.c.nodeByName(h.Where.Node),
				outstanding: h.Job.OutstandingRequests(),
			})
		}
		if f.strategy == RouteHash {
			rings[i] = buildRing(live[i])
		}
	}

	for _, a := range batch {
		svc := f.services[a.Tenant]
		set := live[a.Tenant]
		idx := -1
		switch {
		case len(set) == 0:
		case f.strategy == RouteLeastLoaded:
			idx = 0
			for r := 1; r < len(set); r++ {
				if set[r].outstanding+set[r].routed < set[idx].outstanding+set[idx].routed {
					idx = r
				}
			}
		default:
			idx = rings[a.Tenant].lookup(a.Client)
		}
		if idx < 0 {
			svc.dropped++
			f.dropped++
			continue
		}
		set[idx].routed++
		svc.routed++
		f.routed++
		h := set[idx].h
		job := h.Job
		// Delivery checks liveness again: a later barrier may retire the
		// replica before the arrival instant (handle state only changes at
		// barriers, with the engines parked, so the read is race-free).
		set[idx].node.eng.After(a.At-now, func() {
			if h.stopped || job.Crashed() {
				job.ShedOffer()
				return
			}
			job.Offer()
		})
	}

	// One aggregated Route event per (tenant, replica) with traffic this
	// epoch, on the replica's node bus — the trace scales with epochs, not
	// with clients.
	for i, svc := range f.services {
		for _, lr := range live[i] {
			if lr.routed == 0 || !lr.node.machine.Bus().Wants(obs.KindRoute) {
				continue
			}
			lr.node.machine.Bus().Emit(obs.Event{
				Kind:   obs.KindRoute,
				Ctx:    lr.h.Job.Ctx,
				Job:    svc.tenant.ID,
				Device: lr.h.Where.String(),
				From:   f.strategy.String(),
				Count:  lr.routed,
			})
		}
	}
}

// nodeByName resolves a node by placement name.
func (c *Cluster) nodeByName(name string) *Node {
	for _, n := range c.nodes {
		if n.Name == name {
			return n
		}
	}
	panic(fmt.Sprintf("cluster: unknown node %q", name))
}

// hashRing is a small consistent-hash ring over live replicas.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash uint64
	idx  int // index into the live-replica set
}

// ringVnodes balances the ring; 16 points per replica keeps the spread
// within a few percent for the replica counts a tenant reaches.
const ringVnodes = 16

func buildRing(set []liveReplica) hashRing {
	var r hashRing
	for i, lr := range set {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", lr.h.Cfg.Name, v)),
				idx:  i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// lookup returns the replica owning key (its ring successor), or -1 on an
// empty ring.
func (r hashRing) lookup(key uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].idx
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
