// Shed-rate autoscaling for the fleet front-end. The controller runs at
// barrier time on the routing goroutine: a tenant whose shed rate stays
// above the high-water mark for SustainUp control intervals gains a
// replica (a fresh placement through the cluster policy); one that stays
// idle for SustainDown intervals loses its newest one. Background elastic
// training jobs registered with the controller yield virtual nodes while
// the fleet sheds and grow back when it calms — PR 7's Grow/Shrink means
// that costs a rebind, not a restart.
package cluster

import (
	"time"

	"switchflow/internal/obs"
	"switchflow/internal/workload"
)

// AutoscaleConfig tunes the controller; zero values take the defaults
// noted per field.
type AutoscaleConfig struct {
	// Interval is the control period (default 1s). Decisions happen at the
	// first barrier at or after each interval boundary.
	Interval time.Duration
	// ShedHigh is the shed-rate high-water mark (default 0.05): the
	// fraction of a tenant's arrivals shed — by replica admission control
	// or by the router finding no live replica — above which an interval
	// counts as hot.
	ShedHigh float64
	// SustainUp is how many consecutive hot intervals trigger a scale-out
	// (default 2 — one interval of flash crowd is noise, two are a trend).
	SustainUp int
	// IdleRPS is the per-replica offered rate (default 2 req/s) below
	// which a shed-free interval counts as idle.
	IdleRPS float64
	// SustainDown is how many consecutive idle intervals trigger a
	// scale-in (default 5; scaling in is cheaper to delay than shedding).
	SustainDown int
	// MinReplicas and MaxReplicas bound each tenant's set (defaults 1, 6).
	MinReplicas, MaxReplicas int
	// Cooldown is the per-tenant pause after any scale action (default
	// 2s), giving the previous action time to show in the signal.
	Cooldown time.Duration
}

// withDefaults fills zero fields.
func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.ShedHigh <= 0 {
		c.ShedHigh = 0.05
	}
	if c.SustainUp <= 0 {
		c.SustainUp = 2
	}
	if c.IdleRPS <= 0 {
		c.IdleRPS = 2
	}
	if c.SustainDown <= 0 {
		c.SustainDown = 5
	}
	if c.MinReplicas <= 0 {
		c.MinReplicas = 1
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 6
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// elasticTarget is a background elastic training job the controller may
// shrink under fleet pressure and grow back when idle.
type elasticTarget struct {
	node     *Node
	job      *workload.Job
	min, max int
}

// Autoscaler scales tenant replica sets on shed rate and flexes
// registered elastic training jobs around the serving load.
type Autoscaler struct {
	cfg      AutoscaleConfig
	fe       *Frontend
	lastTick time.Duration
	ticked   bool
	calmFor  int
	elastic  []elasticTarget

	scaleOuts, scaleIns int
	shrinks, grows      int
}

// EnableAutoscaler attaches a controller to the front-end. Call before
// the fleet runs; the returned Autoscaler reports its actions.
func (f *Frontend) EnableAutoscaler(cfg AutoscaleConfig) *Autoscaler {
	a := &Autoscaler{cfg: cfg.withDefaults(), fe: f}
	f.scaler = a
	return a
}

// RegisterElastic puts an elastic training job on node under the
// controller's management, flexing between min and max virtual nodes.
func (a *Autoscaler) RegisterElastic(node *Node, job *workload.Job, min, max int) {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	a.elastic = append(a.elastic, elasticTarget{node: node, job: job, min: min, max: max})
}

// ScaleOuts and ScaleIns count replica-set actions across all tenants.
func (a *Autoscaler) ScaleOuts() int { return a.scaleOuts }
func (a *Autoscaler) ScaleIns() int  { return a.scaleIns }

// Shrinks and Grows count elastic-training resize actions.
func (a *Autoscaler) Shrinks() int { return a.shrinks }
func (a *Autoscaler) Grows() int   { return a.grows }

// tick runs at every barrier but acts once per control interval, in
// deterministic tenant order.
func (a *Autoscaler) tick(now time.Duration) {
	if a.ticked && now < a.lastTick+a.cfg.Interval {
		return
	}
	interval := now - a.lastTick
	a.lastTick = now
	if !a.ticked {
		// First tick only baselines the counters.
		a.ticked = true
		for _, svc := range a.fe.services {
			c := svc.Counters()
			svc.lastOffered, svc.lastShed = c.Offered, c.Shed
		}
		return
	}

	pressure := false
	for _, svc := range a.fe.services {
		c := svc.Counters()
		dOff := c.Offered - svc.lastOffered
		dShed := c.Shed - svc.lastShed
		svc.lastOffered, svc.lastShed = c.Offered, c.Shed

		shedRate := 0.0
		if dOff > 0 {
			shedRate = float64(dShed) / float64(dOff)
		}
		live := 0
		for _, h := range svc.replicas {
			if h.live() {
				live++
			}
		}
		switch {
		case shedRate >= a.cfg.ShedHigh:
			pressure = true
			svc.hotFor++
			svc.idleFor = 0
		case dShed == 0 && live > 0 &&
			float64(dOff)/interval.Seconds()/float64(live) < a.cfg.IdleRPS:
			svc.idleFor++
			svc.hotFor = 0
		default:
			svc.hotFor, svc.idleFor = 0, 0
		}
		if now < svc.cooldownUntil {
			continue
		}
		if svc.hotFor >= a.cfg.SustainUp && svc.desired() < a.cfg.MaxReplicas {
			h := a.fe.addReplica(svc, now)
			svc.cooldownUntil = now + a.cfg.Cooldown
			svc.hotFor = 0
			svc.scaleOuts++
			a.scaleOuts++
			a.emit(obs.Event{
				Kind: obs.KindScaleOut, Ctx: ctxOf(h), Job: svc.tenant.ID,
				Name: h.Cfg.Name, Device: placementOf(h), Count: svc.desired(),
			})
		} else if svc.idleFor >= a.cfg.SustainDown && live > a.cfg.MinReplicas {
			// Retire the newest live replica: the oldest ones carry the
			// consistent-hash ring's stable keys.
			for i := len(svc.replicas) - 1; i >= 0; i-- {
				h := svc.replicas[i]
				if !h.live() {
					continue
				}
				a.fe.c.Stop(h)
				svc.cooldownUntil = now + a.cfg.Cooldown
				svc.idleFor = 0
				svc.scaleIns++
				a.scaleIns++
				a.emit(obs.Event{
					Kind: obs.KindScaleIn, Ctx: ctxOf(h), Job: svc.tenant.ID,
					Name: h.Cfg.Name, Device: placementOf(h), Count: svc.desired(),
				})
				break
			}
		}
	}

	// Elastic training flexes against the serving tide: any pressure
	// shrinks every registered job one vnode per interval toward min;
	// SustainDown calm intervals grow them back one step toward max.
	if pressure {
		a.calmFor = 0
	} else {
		a.calmFor++
	}
	for _, t := range a.elastic {
		if t.job.Crashed() {
			continue
		}
		cur := t.job.Binding().Len()
		if pressure && cur > t.min {
			if t.node.mgr.Resize(t.job, cur-1) == nil {
				a.shrinks++
			}
		} else if a.calmFor >= a.cfg.SustainDown && cur < t.max {
			if t.node.mgr.Resize(t.job, cur+1) == nil {
				a.grows++
			}
		}
	}
}

// emit publishes a control-plane event on the head node's bus (node 0 is
// where the fleet's control loop conceptually runs).
func (a *Autoscaler) emit(e obs.Event) {
	a.fe.c.nodes[0].machine.Bus().Emit(e)
}

func ctxOf(h *JobHandle) int {
	if h.Job != nil {
		return h.Job.Ctx
	}
	return -1
}

func placementOf(h *JobHandle) string {
	if h.Placed {
		return h.Where.String()
	}
	return "queued"
}
