package baseline

import (
	"fmt"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/fault"
	"switchflow/internal/metrics"
	"switchflow/internal/workload"
)

// Baseline fault semantics (§5.2 contrast): the baselines have TF's
// process model and no placement indirection, so a lost device kills
// every process on it and a transient kernel/ECC error kills the process
// whose kernel it corrupted — there is no migration and no checkpoint
// restart. Input stalls gate new input-stage launches, same as
// SwitchFlow (the stall is in the storage layer, not the scheduler).

var (
	_ fault.Handler = (*ThreadedTF)(nil)
	_ fault.Handler = (*TimeSlice)(nil)
	_ fault.Handler = (*MPS)(nil)
)

// stalled reports whether an injected input stall is in force.
func (rt *runtime) stalled() bool { return rt.eng.Now() < rt.stallUntil }

// stallInputs extends the stall window and schedules resume at its end
// (skipped when a longer stall supersedes this one).
func (rt *runtime) stallInputs(d time.Duration, resume func()) {
	until := rt.eng.Now() + d
	if until <= rt.stallUntil {
		return
	}
	rt.stallUntil = until
	rt.eng.Schedule(until, func() {
		if rt.stalled() {
			return
		}
		resume()
	})
}

// loseDevice crashes a process-model job on a lost device. The device's
// memory pool was invalidated wholesale, so accounting is dropped, not
// freed.
func loseDevice(j *workload.Job, name string, dev device.ID) {
	j.ForgetDevice(dev)
	j.Crash(fmt.Errorf("%s: %s: %w (%v)", name, j.Cfg.Name, fault.ErrDeviceLost, dev))
}

// HandleFault implements fault.Handler: device loss and transient errors
// kill the affected jobs outright.
func (s *ThreadedTF) HandleFault(ev fault.Event) {
	s.faults.Injected++
	switch ev.Kind {
	case fault.KindDeviceLost:
		s.faults.DeviceLost++
		for _, tj := range s.jobs {
			tj.job.ForgetDevice(ev.Device)
			if tj.stopped || tj.job.Crashed() || tj.dev != ev.Device {
				continue
			}
			loseDevice(tj.job, "threaded-tf", ev.Device)
			s.faults.JobsLost++
		}
	case fault.KindTransient:
		s.faults.Transients++
		if tj := transientVictim(s.jobs, ev.Device); tj != nil {
			s.rt.crashJob(tj.job, tj.dev, fault.ErrTransient)
			s.faults.JobsLost++
		}
	case fault.KindInputStall:
		s.faults.InputStalls++
		s.rt.stallInputs(ev.Duration, func() {
			for _, tj := range s.jobs {
				s.pump(tj)
			}
		})
	case fault.KindDegraded:
		// Hardware effect only.
	}
}

// FaultStats returns the fault and job-loss counters.
func (s *ThreadedTF) FaultStats() metrics.FaultCounters { return s.faults }

// HandleFault implements fault.Handler.
func (s *TimeSlice) HandleFault(ev fault.Event) {
	s.faults.Injected++
	switch ev.Kind {
	case fault.KindDeviceLost:
		s.faults.DeviceLost++
		for _, sj := range s.jobs {
			sj.job.ForgetDevice(ev.Device)
			if sj.stopped || sj.job.Crashed() || sj.dev != ev.Device {
				continue
			}
			loseDevice(sj.job, "time-slice", ev.Device)
			s.faults.JobsLost++
		}
		// The active session's kernels were dropped with the device, so its
		// completion callback will never fire; force-release the machine
		// lock or every surviving job hangs behind a dead session.
		if s.lockHeld && s.active != nil && s.active.dev == ev.Device {
			s.sessionSeq++
			s.lockHeld = false
			s.active = nil
			s.rt.eng.After(0, s.pump)
		}
	case fault.KindTransient:
		s.faults.Transients++
		if sj := transientVictimSliced(s.jobs, ev.Device); sj != nil {
			s.rt.crashJob(sj.job, sj.dev, fault.ErrTransient)
			s.faults.JobsLost++
			// The in-flight kernels complete on the (healthy) device and the
			// session releases through its normal callback.
		}
	case fault.KindInputStall:
		s.faults.InputStalls++
		s.rt.stallInputs(ev.Duration, s.pump)
	case fault.KindDegraded:
	}
}

// FaultStats returns the fault and job-loss counters.
func (s *TimeSlice) FaultStats() metrics.FaultCounters { return s.faults }

// HandleFault implements fault.Handler. MPS adds reservation cleanup: a
// dead process's headroom reservation is dropped with the device (loss)
// or returned to the pool (transient — the device is healthy).
func (s *MPS) HandleFault(ev fault.Event) {
	s.faults.Injected++
	switch ev.Kind {
	case fault.KindDeviceLost:
		s.faults.DeviceLost++
		for _, tj := range s.jobs {
			tj.job.ForgetDevice(ev.Device)
			if tj.dev == ev.Device {
				delete(s.headroom, tj.job)
			}
			if tj.stopped || tj.job.Crashed() || tj.dev != ev.Device {
				continue
			}
			loseDevice(tj.job, "mps", ev.Device)
			s.faults.JobsLost++
		}
	case fault.KindTransient:
		s.faults.Transients++
		if tj := transientVictim(s.jobs, ev.Device); tj != nil {
			s.rt.crashJob(tj.job, tj.dev, fault.ErrTransient)
			if slack := s.headroom[tj.job]; slack > 0 && tj.dev.Kind == device.KindGPU {
				s.rt.machine.GPU(tj.dev.Index).Mem.Free(slack)
			}
			delete(s.headroom, tj.job)
			s.faults.JobsLost++
		}
	case fault.KindInputStall:
		s.faults.InputStalls++
		s.rt.stallInputs(ev.Duration, func() {
			for _, tj := range s.jobs {
				s.pump(tj)
			}
		})
	case fault.KindDegraded:
	}
}

// FaultStats returns the fault and job-loss counters.
func (s *MPS) FaultStats() metrics.FaultCounters { return s.faults }

// transientVictim picks the job the fault corrupts: the first job
// (admission order, deterministic) computing on dev, or with state
// resident there — ECC errors strike resident memory, not only running
// kernels.
func transientVictim(jobs []*threadedJob, dev device.ID) *threadedJob {
	for _, tj := range jobs {
		if tj.stopped || tj.job.Crashed() || tj.dev != dev {
			continue
		}
		if tj.job.ComputeRunning || tj.job.WeightsOn(dev) {
			return tj
		}
	}
	return nil
}

func transientVictimSliced(jobs []*slicedJob, dev device.ID) *slicedJob {
	for _, sj := range jobs {
		if sj.stopped || sj.job.Crashed() || sj.dev != dev {
			continue
		}
		if sj.job.ComputeRunning || sj.job.WeightsOn(dev) {
			return sj
		}
	}
	return nil
}
