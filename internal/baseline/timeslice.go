package baseline

import (
	"switchflow/internal/device"
	"switchflow/internal/metrics"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// TimeSlice is session-based time slicing in the style of Gandiva [51]:
// during one session run a single job owns the entire machine — both the
// CPU input pipeline and the GPU — and jobs rotate round-robin at session
// boundaries. There is no preemption (an arriving high-priority request
// waits out the current session) and no cross-job overlap of CPU and GPU
// stages, which is exactly the inefficiency §2.2 and Figures 8-10 measure.
type TimeSlice struct {
	rt       runtime
	jobs     []*slicedJob
	next     int
	lockHeld bool
	// active is the session holder; sessionSeq invalidates a session's
	// release callback after a fault force-releases the machine lock.
	active     *slicedJob
	sessionSeq int
	faults     metrics.FaultCounters
}

type slicedJob struct {
	job     *workload.Job
	dev     device.ID
	stopped bool
}

// NewTimeSlice creates the scheduler.
func NewTimeSlice(eng *sim.Engine, machine *device.Machine) *TimeSlice {
	return &TimeSlice{rt: newRuntime(eng, machine)}
}

// AddJob admits a job.
func (s *TimeSlice) AddJob(cfg workload.Config) (*workload.Job, error) {
	job, err := s.rt.newJob(cfg)
	if err != nil {
		return nil, err
	}
	if err := job.AllocWeights(cfg.Device); err != nil {
		return nil, err
	}
	sj := &slicedJob{job: job, dev: cfg.Device}
	s.jobs = append(s.jobs, sj)
	job.StartArrivals(func() { s.pump() })
	s.rt.eng.After(0, s.pump)
	return job, nil
}

// StopJob halts a job's loop; its current session finishes.
func (s *TimeSlice) StopJob(job *workload.Job) {
	for _, sj := range s.jobs {
		if sj.job == job {
			sj.stopped = true
			job.StopArrivals()
			return
		}
	}
}

// pump grants the machine to the next job with work and runs one full
// session (input then compute, serialized).
func (s *TimeSlice) pump() {
	if s.lockHeld || len(s.jobs) == 0 {
		return
	}
	sj := s.pickNext()
	if sj == nil {
		return
	}
	s.lockHeld = true
	s.runSession(sj)
}

// pickNext scans round-robin for a runnable job.
func (s *TimeSlice) pickNext() *slicedJob {
	for i := 0; i < len(s.jobs); i++ {
		sj := s.jobs[(s.next+i)%len(s.jobs)]
		if sj.stopped || sj.job.Crashed() {
			continue
		}
		// During an input stall only jobs with an already-staged input can
		// use the machine; granting a session to one that must run its
		// input stage first would spin at the same instant.
		runnable := sj.job.InputAvailable() ||
			(!s.rt.stalled() && (sj.job.HasWork() || sj.job.CanStartInput()))
		if runnable {
			s.next = (s.next + i + 1) % len(s.jobs)
			return sj
		}
	}
	return nil
}

func (s *TimeSlice) runSession(sj *slicedJob) {
	s.active = sj
	s.sessionSeq++
	seq := s.sessionSeq
	release := func() {
		if s.sessionSeq != seq {
			return // the session was force-released by a device loss
		}
		s.lockHeld = false
		s.active = nil
		s.pump()
	}
	if sj.job.InputAvailable() {
		// A previous turn already staged the input (can happen after a
		// crash path); go straight to compute.
		s.rt.runCompute(sj.job, sj.dev, release)
		return
	}
	if !sj.job.CanStartInput() || s.rt.stalled() {
		release()
		return
	}
	s.rt.runInput(sj.job, sj.dev, func() {
		if sj.job.Crashed() {
			release()
			return
		}
		s.rt.runCompute(sj.job, sj.dev, release)
	})
}
