package baseline

import (
	"errors"
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/fault"
)

func TestThreadedTFLosesJobsOnDeviceLoss(t *testing.T) {
	eng, machine := newMachine(device.ClassV100, device.ClassV100)
	s := NewThreadedTF(eng, machine)
	victim, _ := s.AddJob(trainCfg(t, "victim", "ResNet50", 16, device.GPUID(0)))
	bystander, _ := s.AddJob(trainCfg(t, "bystander", "ResNet50", 16, device.GPUID(1)))
	var p fault.Plan
	p.LoseGPU(3*time.Second, 0)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(s)
	in.Arm()

	eng.RunUntil(10 * time.Second)
	if !victim.Crashed() || !errors.Is(victim.CrashErr, fault.ErrDeviceLost) {
		t.Fatalf("victim should die with the device, got crashed=%v err=%v",
			victim.Crashed(), victim.CrashErr)
	}
	if bystander.Crashed() {
		t.Fatalf("job on the surviving GPU crashed: %v", bystander.CrashErr)
	}
	if victim.Restarts != 0 {
		t.Fatalf("baseline job restarted %d times; baselines have no recovery", victim.Restarts)
	}
	st := s.FaultStats()
	if st.DeviceLost != 1 || st.JobsLost != 1 {
		t.Fatalf("fault stats = %+v", st)
	}
}

func TestThreadedTFTransientKillsComputingJob(t *testing.T) {
	eng, machine := newMachine(device.ClassV100)
	s := NewThreadedTF(eng, machine)
	job, _ := s.AddJob(trainCfg(t, "job", "ResNet50", 16, device.GPUID(0)))
	var p fault.Plan
	p.Transient(3*time.Second, 0)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(s)
	in.Arm()

	eng.RunUntil(10 * time.Second)
	if !job.Crashed() || !errors.Is(job.CrashErr, fault.ErrTransient) {
		t.Fatalf("transient should kill the baseline process, got crashed=%v err=%v",
			job.Crashed(), job.CrashErr)
	}
	if got := machine.GPU(0).Mem.Used(); got != 0 {
		t.Fatalf("dead process left %d bytes reserved on a healthy device", got)
	}
}

func TestTimeSliceReleasesLockWhenActiveSessionDies(t *testing.T) {
	eng, machine := newMachine(device.ClassV100, device.ClassV100)
	s := NewTimeSlice(eng, machine)
	a, _ := s.AddJob(trainCfg(t, "a", "ResNet50", 16, device.GPUID(0)))
	b, _ := s.AddJob(trainCfg(t, "b", "ResNet50", 16, device.GPUID(1)))
	var p fault.Plan
	p.LoseGPU(3*time.Second, 0)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(s)
	in.Arm()

	eng.RunUntil(3*time.Second + time.Millisecond)
	atLoss := b.Iterations
	eng.RunUntil(20 * time.Second)
	if !a.Crashed() {
		t.Fatal("job on the lost device survived")
	}
	if b.Crashed() {
		t.Fatalf("survivor crashed: %v", b.CrashErr)
	}
	// The survivor must keep getting sessions: a dead active session on the
	// lost device would otherwise hold the machine lock forever.
	if b.Iterations <= atLoss {
		t.Fatalf("survivor starved after device loss: %d iterations then, %d now",
			atLoss, b.Iterations)
	}
}

func TestMPSDeviceLossDropsReservations(t *testing.T) {
	eng, machine := newMachine(device.ClassV100)
	s := NewMPS(eng, machine)
	job, _ := s.AddJob(trainCfg(t, "job", "ResNet50", 16, device.GPUID(0)))
	var p fault.Plan
	p.LoseGPU(3*time.Second, 0)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(s)
	in.Arm()

	eng.RunUntil(10 * time.Second)
	if !job.Crashed() || !errors.Is(job.CrashErr, fault.ErrDeviceLost) {
		t.Fatalf("MPS process should die with the device, got %v", job.CrashErr)
	}
	if len(s.headroom) != 0 {
		t.Fatalf("%d headroom reservations left after device loss", len(s.headroom))
	}
	if got := machine.GPU(0).Mem.Used(); got != 0 {
		t.Fatalf("invalidated pool reports %d bytes used", got)
	}
}

func TestBaselineInputStallPausesPrefetch(t *testing.T) {
	eng, machine := newMachine(device.ClassV100)
	s := NewThreadedTF(eng, machine)
	job, _ := s.AddJob(trainCfg(t, "job", "ResNet50", 16, device.GPUID(0)))
	var p fault.Plan
	p.StallInputs(2*time.Second, 3*time.Second)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(s)
	in.Arm()

	eng.RunUntil(10 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed during stall: %v", job.CrashErr)
	}
	if s.FaultStats().InputStalls != 1 {
		t.Fatalf("fault stats = %+v", s.FaultStats())
	}
	if job.Iterations == 0 {
		t.Fatal("job never resumed after the stall")
	}
}
