// Package baseline implements the three comparison schedulers of §5:
// multi-threaded TF (jobs share the GPU freely through separate streams),
// session-based time slicing in the style of Gandiva (one job owns the
// whole machine per session run), and NVIDIA MPS (free spatial sharing
// with per-process memory reservations). All three drive the same
// workload.Job runtime and device substrate as SwitchFlow, so differences
// in outcomes come from scheduling policy alone.
package baseline

import (
	"fmt"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/executor"
	"switchflow/internal/sim"
	"switchflow/internal/threadpool"
	"switchflow/internal/workload"
)

// runtime holds what every baseline scheduler needs. Preprocessing runs in
// each job's private tf.data pool, as TF datasets do.
type runtime struct {
	eng     *sim.Engine
	machine *device.Machine
	pool    *threadpool.Pool
	ctxSeq  int
	// stallUntil gates input-stage starts during an injected input stall.
	stallUntil time.Duration
}

func newRuntime(eng *sim.Engine, machine *device.Machine) runtime {
	return runtime{
		eng:     eng,
		machine: machine,
		pool:    threadpool.New(eng, "global", machine.CPU.Cores),
	}
}

func (rt *runtime) newJob(cfg workload.Config) (*workload.Job, error) {
	rt.ctxSeq++
	return workload.NewJob(rt.eng, rt.machine, rt.ctxSeq, cfg)
}

// runInput executes the job's CPU input stage; for all-CPU placements the
// stage is free. onDone always fires (inline when the stage is trivial).
func (rt *runtime) runInput(j *workload.Job, dev device.ID, onDone func()) {
	v, err := j.Version(dev)
	if err != nil {
		j.Crash(err)
		return
	}
	j.BeginInput()
	if v.Input == nil {
		j.FinishInput()
		onDone()
		return
	}
	_, err = j.StartExec(v.Input, executor.Config{Pool: rt.pool}, func() {
		j.FinishInput()
		onDone()
	})
	if err != nil {
		j.Crash(err)
	}
}

// runCompute executes the job's compute stage, sized to the micro-batch
// the job's batcher hands it (baselines batch greedily — whatever is
// ready launches, with no max-wait hold). A failed intermediate
// allocation crashes the job (the TF-style runtime OOM of Figure 7) and
// releases all of its device memory, as a dying process would.
func (rt *runtime) runCompute(j *workload.Job, dev device.ID, onDone func()) {
	v, err := j.NextComputeVersion(dev)
	if err != nil {
		j.Crash(err)
		return
	}
	if err := j.AllocIntermediate(dev); err != nil {
		rt.crashJob(j, dev, err)
		return
	}
	j.BeginCompute()
	cfg := executor.Config{Pool: rt.pool, Stream: j.Stream(dev)}
	_, err = j.StartExec(v.Compute, cfg, func() {
		j.FreeIntermediate(dev)
		j.FinishCompute()
		onDone()
	})
	if err != nil {
		j.FreeIntermediate(dev)
		rt.crashJob(j, dev, err)
	}
}

// crashJob kills a job and returns its memory, like an exiting process.
func (rt *runtime) crashJob(j *workload.Job, dev device.ID, err error) {
	j.Crash(fmt.Errorf("job %s: %w", j.Cfg.Name, err))
	j.FreeIntermediate(dev)
	j.FreeWeights(dev)
}

// computeConfig wires a compute-stage executor to the runtime's pools and
// the job's stream on dev.
func (rt *runtime) computeConfig(j *workload.Job, dev device.ID) executor.Config {
	return executor.Config{Pool: rt.pool, Stream: j.Stream(dev)}
}
