package baseline

import (
	"fmt"

	"switchflow/internal/device"
	"switchflow/internal/metrics"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// MPS models NVIDIA's Multi-Process Service: each job is its own process
// whose kernels share the GPU spatially (same contention model as
// threaded TF), but device memory is NOT shared between processes — each
// TF process's BFC allocator grabs its peak demand plus growth headroom
// up front. When the aggregate of reservations exceeds GPU capacity, the
// later process crashes at launch (Figure 7 c and §5.2.2: every training
// pair crashes on the 11 GB GPUs; only the 32 GB V100 fits two).
type MPS struct {
	rt       runtime
	jobs     []*threadedJob
	headroom map[*workload.Job]int64
	faults   metrics.FaultCounters
}

// mpsAllocatorHeadroom scales the per-process intermediate reservation:
// TF's region-growing allocator over-reserves well beyond the live
// footprint, and under MPS that slack cannot be shared across processes.
const mpsAllocatorHeadroom = 0.7

// NewMPS creates the scheduler.
func NewMPS(eng *sim.Engine, machine *device.Machine) *MPS {
	return &MPS{
		rt:       newRuntime(eng, machine),
		headroom: make(map[*workload.Job]int64),
	}
}

// AddJob admits a job, reserving its peak memory. A failed reservation
// returns the job with CrashErr set (the process died at launch).
func (s *MPS) AddJob(cfg workload.Config) (*workload.Job, error) {
	job, err := s.rt.newJob(cfg)
	if err != nil {
		return nil, err
	}
	tj := &threadedJob{job: job, dev: cfg.Device}
	s.jobs = append(s.jobs, tj)
	// The process reservation is its peak demand — weights plus the
	// intermediate footprint plus allocator growth headroom — held for
	// the process lifetime.
	if err := job.AllocWeights(cfg.Device); err != nil {
		job.Crash(fmt.Errorf("mps: launch %s: %w", cfg.Name, err))
		return job, nil
	}
	if err := job.AllocIntermediate(cfg.Device); err != nil {
		job.FreeWeights(cfg.Device)
		job.Crash(fmt.Errorf("mps: launch %s: %w", cfg.Name, err))
		return job, nil
	}
	if cfg.Device.Kind == device.KindGPU {
		slack := int64(float64(job.IntermediateBytes()) * mpsAllocatorHeadroom)
		if err := s.rt.machine.GPU(cfg.Device.Index).Mem.Alloc(slack); err != nil {
			job.FreeIntermediate(cfg.Device)
			job.FreeWeights(cfg.Device)
			job.Crash(fmt.Errorf("mps: launch %s: %w", cfg.Name, err))
			return job, nil
		}
		s.headroom[job] = slack
	}
	job.StartArrivals(func() { s.pump(tj) })
	s.rt.eng.After(0, func() { s.pump(tj) })
	return job, nil
}

// StopJob halts a job's loop and releases its reservation.
func (s *MPS) StopJob(job *workload.Job) {
	for _, tj := range s.jobs {
		if tj.job == job {
			tj.stopped = true
			job.StopArrivals()
			return
		}
	}
}

// pump drives a job exactly like threaded TF — MPS changes memory
// semantics, not scheduling. The intermediate stays reserved for the
// process lifetime, so the compute path skips per-iteration allocation.
func (s *MPS) pump(tj *threadedJob) {
	if tj.stopped || tj.job.Crashed() {
		return
	}
	for !s.rt.stalled() && tj.job.CanStartInput() {
		s.rt.runInput(tj.job, tj.dev, func() { s.pump(tj) })
		if tj.job.Crashed() {
			return
		}
	}
	if !tj.job.ComputeRunning && tj.job.InputAvailable() {
		s.runComputeReserved(tj)
	}
}

// runComputeReserved is runCompute without the per-iteration intermediate
// alloc/free (the reservation persists).
func (s *MPS) runComputeReserved(tj *threadedJob) {
	v, err := tj.job.NextComputeVersion(tj.dev)
	if err != nil {
		tj.job.Crash(err)
		return
	}
	tj.job.BeginCompute()
	_, err = tj.job.StartExec(v.Compute, s.rt.computeConfig(tj.job, tj.dev), func() {
		tj.job.FinishCompute()
		s.pump(tj)
	})
	if err != nil {
		tj.job.Crash(err)
	}
}
