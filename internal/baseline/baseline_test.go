package baseline

import (
	"errors"
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/models"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

func spec(t *testing.T, name string) *models.Spec {
	t.Helper()
	s, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func trainCfg(t *testing.T, name, model string, batch int, dev device.ID) workload.Config {
	return workload.Config{
		Name:   name,
		Model:  spec(t, model),
		Batch:  batch,
		Kind:   workload.KindTraining,
		Device: dev,
	}
}

func newMachine(gpus ...device.GPUClass) (*sim.Engine, *device.Machine) {
	eng := sim.NewEngine()
	return eng, device.NewMachine(eng, device.ClassXeonDual, gpus...)
}

func TestThreadedTFSoloJobProgresses(t *testing.T) {
	eng, machine := newMachine(device.ClassV100)
	s := NewThreadedTF(eng, machine)
	job, err := s.AddJob(trainCfg(t, "solo", "ResNet50", 16, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second)
	if job.Crashed() {
		t.Fatalf("solo job crashed: %v", job.CrashErr)
	}
	// Calibration: solo ResNet50 BS=16 on V100 ~ 226 img/s (±40%).
	rate := float64(job.Iterations*16) / 5
	if rate < 140 || rate > 330 {
		t.Fatalf("solo throughput = %.0f img/s, want ~226", rate)
	}
}

func TestThreadedTFCoRunSlowsBothDown(t *testing.T) {
	// Figure 2: two ResNet50s sharing a V100 drop from 226 to ~116 img/s
	// each.
	eng, machine := newMachine(device.ClassV100)
	s := NewThreadedTF(eng, machine)
	a, _ := s.AddJob(trainCfg(t, "a", "ResNet50", 16, device.GPUID(0)))
	b, _ := s.AddJob(trainCfg(t, "b", "ResNet50", 16, device.GPUID(0)))
	eng.RunUntil(10 * time.Second)
	if a.Crashed() || b.Crashed() {
		t.Fatalf("crashes: %v / %v", a.CrashErr, b.CrashErr)
	}
	rateA := float64(a.Iterations*16) / 10
	rateB := float64(b.Iterations*16) / 10
	for _, rate := range []float64{rateA, rateB} {
		if rate < 75 || rate > 165 {
			t.Fatalf("co-run throughput = %.0f img/s, want ~116", rate)
		}
	}
}

func TestThreadedTFCoRunOOMKillsBigModels(t *testing.T) {
	// Figure 7 a: freely co-running two large models on an 11 GB GPU dies
	// of OOM when their combined live memory peaks.
	eng, machine := newMachine(device.ClassGTX1080Ti)
	s := NewThreadedTF(eng, machine)
	a, _ := s.AddJob(trainCfg(t, "a", "NASNetLarge", 32, device.GPUID(0)))
	b, _ := s.AddJob(trainCfg(t, "b", "ResNet50", 32, device.GPUID(0)))
	eng.RunUntil(30 * time.Second)
	if !a.Crashed() && !b.Crashed() {
		t.Fatal("no OOM crash when NASNetLarge+ResNet50 share 11 GB")
	}
	var oom *device.OOMError
	crashed := a
	if b.Crashed() {
		crashed = b
	}
	if !errors.As(crashed.CrashErr, &oom) {
		t.Fatalf("crash was not OOM: %v", crashed.CrashErr)
	}
}

func TestTimeSliceAlternatesJobs(t *testing.T) {
	eng, machine := newMachine(device.ClassV100)
	s := NewTimeSlice(eng, machine)
	a, _ := s.AddJob(trainCfg(t, "a", "ResNet50", 32, device.GPUID(0)))
	b, _ := s.AddJob(trainCfg(t, "b", "ResNet50", 32, device.GPUID(0)))
	eng.RunUntil(20 * time.Second)
	if a.Crashed() || b.Crashed() {
		t.Fatalf("crashes: %v / %v", a.CrashErr, b.CrashErr)
	}
	if a.Iterations == 0 || b.Iterations == 0 {
		t.Fatalf("iterations a=%d b=%d", a.Iterations, b.Iterations)
	}
	if diff := a.Iterations - b.Iterations; diff < -1 || diff > 1 {
		t.Fatalf("round-robin violated: a=%d b=%d", a.Iterations, b.Iterations)
	}
}

func TestTimeSliceNeverOOMs(t *testing.T) {
	eng, machine := newMachine(device.ClassGTX1080Ti)
	s := NewTimeSlice(eng, machine)
	a, _ := s.AddJob(trainCfg(t, "a", "NASNetLarge", 32, device.GPUID(0)))
	b, _ := s.AddJob(trainCfg(t, "b", "ResNet50", 32, device.GPUID(0)))
	eng.RunUntil(60 * time.Second)
	if a.Crashed() || b.Crashed() {
		t.Fatalf("time slicing crashed: %v / %v", a.CrashErr, b.CrashErr)
	}
	if a.Iterations == 0 || b.Iterations == 0 {
		t.Fatalf("iterations a=%d b=%d", a.Iterations, b.Iterations)
	}
}

func TestTimeSliceSerializesPipeline(t *testing.T) {
	// Under time slicing a job's CPU input never overlaps another job's
	// GPU compute, so two inference jobs take ~sum of stage times. The
	// interleaving gain of Figure 10 comes from removing exactly this.
	eng, machine := newMachine(device.ClassV100)
	s := NewTimeSlice(eng, machine)
	cfg := workload.Config{
		Name:   "infer",
		Model:  spec(t, "MobileNetV2"),
		Batch:  128,
		Kind:   workload.KindServing,
		Device: device.GPUID(0),
		// Saturating request stream.
		ArrivalEvery: time.Millisecond,
	}
	a, _ := s.AddJob(cfg)
	cfg.Name = "infer2"
	b, _ := s.AddJob(cfg)
	eng.RunUntil(10 * time.Second)
	total := a.Iterations + b.Iterations
	if total == 0 {
		t.Fatal("no progress")
	}
	// Each session is roughly CPU stage (~200ms for 128 images across 36
	// workers) + GPU stage; serialized sessions mean < ~50 sessions in
	// 10 s. (SwitchFlow overlaps them; see experiments.)
	if total > 60 {
		t.Fatalf("time slicing finished %d sessions in 10s, too fast for a serialized pipeline", total)
	}
}

func TestMPSCrashesOn11GBFitsOnV100(t *testing.T) {
	// Figure 7 c: two training processes under MPS need their combined
	// peak reserved; 11 GB fails, the 32 GB V100 fits.
	eng, machine := newMachine(device.ClassRTX2080Ti)
	s := NewMPS(eng, machine)
	a, _ := s.AddJob(trainCfg(t, "a", "ResNet50", 32, device.GPUID(0)))
	b, _ := s.AddJob(trainCfg(t, "b", "VGG16", 32, device.GPUID(0)))
	eng.RunUntil(time.Second)
	if !a.Crashed() && !b.Crashed() {
		t.Fatal("MPS fit two training reservations in 11 GB")
	}

	eng2, machine2 := newMachine(device.ClassV100)
	s2 := NewMPS(eng2, machine2)
	c, _ := s2.AddJob(trainCfg(t, "c", "ResNet50", 16, device.GPUID(0)))
	d, _ := s2.AddJob(trainCfg(t, "d", "ResNet50", 16, device.GPUID(0)))
	eng2.RunUntil(10 * time.Second)
	if c.Crashed() || d.Crashed() {
		t.Fatalf("MPS crashed on V100: %v / %v", c.CrashErr, d.CrashErr)
	}
	if c.Iterations == 0 || d.Iterations == 0 {
		t.Fatalf("MPS iterations c=%d d=%d", c.Iterations, d.Iterations)
	}
	// Both slowed by contention, like threaded TF.
	rate := float64(c.Iterations*16) / 10
	if rate < 75 || rate > 165 {
		t.Fatalf("MPS co-run throughput %.0f img/s, want ~116", rate)
	}
}

func TestServingUnderThreadedTFSuffersLongTails(t *testing.T) {
	// The Figure 6 baseline: a BS=1 inference stream co-running freely
	// with VGG16 training sees its kernels contend with training kernels.
	eng, machine := newMachine(device.ClassV100)
	s := NewThreadedTF(eng, machine)
	if _, err := s.AddJob(trainCfg(t, "train", "VGG16", 32, device.GPUID(0))); err != nil {
		t.Fatal(err)
	}
	serve, err := s.AddJob(workload.Config{
		Name:         "serve",
		Model:        spec(t, "ResNet50"),
		Batch:        1,
		Kind:         workload.KindServing,
		Device:       device.GPUID(0),
		ArrivalEvery: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(15 * time.Second)
	if serve.Latencies.Count() < 10 {
		t.Fatalf("served %d requests", serve.Latencies.Count())
	}
	// Solo inference latency is well under 100ms; contention should blow
	// this up severely.
	if p95 := serve.Latencies.Percentile(95); p95 < 150*time.Millisecond {
		t.Fatalf("threaded-TF p95 = %v, expected severe contention", p95)
	}
}

func TestStopJobStopsBaselines(t *testing.T) {
	eng, machine := newMachine(device.ClassV100)
	s := NewThreadedTF(eng, machine)
	job, _ := s.AddJob(trainCfg(t, "x", "MobileNetV2", 16, device.GPUID(0)))
	eng.RunUntil(2 * time.Second)
	s.StopJob(job)
	at := job.Iterations
	eng.RunUntil(6 * time.Second)
	if job.Iterations > at+2 {
		t.Fatalf("stopped job kept iterating: %d -> %d", at, job.Iterations)
	}
}

func TestTimeSliceHasNoPreemption(t *testing.T) {
	// The paper's "second TF variant": session-based time slicing with a
	// high-priority inference job still makes requests wait out the
	// current training session — no preemption exists (§5.2.1).
	eng, machine := newMachine(device.ClassV100)
	s := NewTimeSlice(eng, machine)
	train, err := s.AddJob(trainCfg(t, "train", "VGG16", 32, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second)
	serve, err := s.AddJob(workload.Config{
		Name: "serve", Model: spec(t, "ResNet50"), Batch: 1,
		Kind: workload.KindServing, Priority: 2, Device: device.GPUID(0),
		ClosedLoop: true, PerImageCPU: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(20 * time.Second)
	if serve.Latencies.Count() < 5 {
		t.Fatalf("served %d requests", serve.Latencies.Count())
	}
	// A VGG16 training session is ~600ms+ (input + compute); worst-case
	// inference waits a full session, so the max latency must absorb at
	// least a large fraction of one.
	if max := serve.Latencies.Max(); max < 300*time.Millisecond {
		t.Fatalf("max latency %v; time slicing should make requests wait out sessions", max)
	}
	if train.Iterations == 0 {
		t.Fatal("training starved under round-robin time slicing")
	}
}

func TestNMTRunsEndToEnd(t *testing.T) {
	// The RNN path: 120 sequential LSTM cells + attention + projections.
	eng, machine := newMachine(device.ClassV100)
	s := NewThreadedTF(eng, machine)
	job, err := s.AddJob(workload.Config{
		Name: "nmt", Model: spec(t, "NMT"), Batch: 1,
		Kind: workload.KindServing, Device: device.GPUID(0),
		ClosedLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second)
	if job.Crashed() {
		t.Fatalf("NMT crashed: %v", job.CrashErr)
	}
	if job.Latencies.Count() < 10 {
		t.Fatalf("NMT served %d requests in 5s", job.Latencies.Count())
	}
	// "RNN inference itself is fairly expensive on GPU" (§5.2.1): the
	// long kernel chain costs several ms even solo.
	if mean := job.Latencies.Mean(); mean < time.Millisecond {
		t.Fatalf("NMT mean latency %v implausibly fast", mean)
	}
}
