package baseline

import (
	"switchflow/internal/device"
	"switchflow/internal/metrics"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// ThreadedTF is the paper's primary baseline: one TF process running every
// model from its own thread, each with its own compute stream. Nothing
// arbitrates GPU access — kernels from different jobs co-run and contend,
// and memory is allocated on demand, so collocated jobs can die of OOM
// mid-training (Figure 7 a-b).
type ThreadedTF struct {
	rt     runtime
	jobs   []*threadedJob
	faults metrics.FaultCounters
}

type threadedJob struct {
	job     *workload.Job
	dev     device.ID
	stopped bool
}

// NewThreadedTF creates the scheduler.
func NewThreadedTF(eng *sim.Engine, machine *device.Machine) *ThreadedTF {
	return &ThreadedTF{rt: newRuntime(eng, machine)}
}

// AddJob admits a job; weights are allocated eagerly (model load) and a
// failure there crashes the job immediately rather than failing admission,
// matching TF's lazy-discovery of memory exhaustion.
func (s *ThreadedTF) AddJob(cfg workload.Config) (*workload.Job, error) {
	job, err := s.rt.newJob(cfg)
	if err != nil {
		return nil, err
	}
	tj := &threadedJob{job: job, dev: cfg.Device}
	s.jobs = append(s.jobs, tj)
	if err := job.AllocWeights(cfg.Device); err != nil {
		s.rt.eng.After(0, func() { s.rt.crashJob(job, cfg.Device, err) })
		return job, nil
	}
	job.StartArrivals(func() { s.pump(tj) })
	s.rt.eng.After(0, func() { s.pump(tj) })
	return job, nil
}

// StopJob halts a job's loop.
func (s *ThreadedTF) StopJob(job *workload.Job) {
	for _, tj := range s.jobs {
		if tj.job == job {
			tj.stopped = true
			job.StopArrivals()
			return
		}
	}
}

// pump drives a job's pipeline with no gating at all: input prefetches
// freely and compute launches as soon as an input is ready.
func (s *ThreadedTF) pump(tj *threadedJob) {
	if tj.stopped || tj.job.Crashed() {
		return
	}
	for !s.rt.stalled() && tj.job.CanStartInput() {
		s.rt.runInput(tj.job, tj.dev, func() { s.pump(tj) })
		if tj.job.Crashed() {
			return
		}
	}
	if !tj.job.ComputeRunning && tj.job.InputAvailable() {
		s.rt.runCompute(tj.job, tj.dev, func() { s.pump(tj) })
	}
}
