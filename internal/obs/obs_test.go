package obs

import (
	"fmt"
	"testing"
	"time"

	"switchflow/internal/sim"
)

func TestBusSequenceAndFanOut(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng)
	a := NewRecorder(0)
	b := NewRecorder(0)
	bus.Subscribe(a)
	bus.Subscribe(b, KindPreempt)

	eng.Schedule(10*time.Millisecond, func() {
		bus.Emit(Event{Kind: KindKernelSpan, Ctx: 1, Name: "conv"})
		bus.Emit(Event{Kind: KindPreempt, Ctx: 2})
	})
	eng.RunUntil(20 * time.Millisecond)

	if a.Len() != 2 {
		t.Fatalf("all-kinds sink saw %d events, want 2", a.Len())
	}
	got := a.Events()
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("seqs = %d,%d, want 1,2", got[0].Seq, got[1].Seq)
	}
	if got[0].Time != 10*time.Millisecond {
		t.Errorf("event time = %v, want 10ms (virtual emit time)", got[0].Time)
	}
	if b.Len() != 1 || b.Events()[0].Kind != KindPreempt {
		t.Errorf("kind-filtered sink saw %d events (want only the Preempt)", b.Len())
	}
	// The filtered sink still sees the bus-wide numbering.
	if b.Events()[0].Seq != 2 {
		t.Errorf("filtered sink's event Seq = %d, want 2", b.Events()[0].Seq)
	}
}

func TestBusUnwantedKindsConsumeNoSequence(t *testing.T) {
	eng := sim.NewEngine()
	bus := NewBus(eng)
	rec := NewRecorder(0)
	bus.Subscribe(rec, KindPreempt)

	if bus.Wants(KindOpSched) {
		t.Fatal("Wants(OpSched) true with only a Preempt subscriber")
	}
	bus.Emit(Event{Kind: KindOpSched}) // dropped, no seq consumed
	bus.Emit(Event{Kind: KindPreempt})
	if got := rec.Events()[0].Seq; got != 1 {
		t.Errorf("Seq = %d after a dropped event, want 1 (drops must not burn numbers)", got)
	}
}

func TestNilBusIsSafe(t *testing.T) {
	var bus *Bus
	if bus.Wants(KindKernelSpan) || bus.Active() {
		t.Error("nil bus reports subscribers")
	}
	bus.Emit(Event{Kind: KindKernelSpan}) // must not panic
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Observe(Event{Seq: uint64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", r.Dropped())
	}
	got := r.Events()
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Seq != want {
			t.Fatalf("Events()[%d].Seq = %d, want %d (oldest-first order)", i, got[i].Seq, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindKernelSpan; k < numKinds; k++ {
		if s := k.String(); s == "" || s == "Unknown" {
			t.Errorf("Kind(%d) has no name", k)
		}
	}
	if Kind(0).String() != "Unknown" || Kind(200).String() != "Unknown" {
		t.Error("out-of-range kinds should stringify as Unknown")
	}
}

func TestMaskAllCoversEveryKind(t *testing.T) {
	for k := KindKernelSpan; k < numKinds; k++ {
		if MaskAll&kindBit(k) == 0 {
			t.Errorf("MaskAll misses %v", k)
		}
	}
}

func TestSinkFunc(t *testing.T) {
	var seen []string
	s := SinkFunc(func(e Event) { seen = append(seen, fmt.Sprintf("%v:%s", e.Kind, e.Name)) })
	s.Observe(Event{Kind: KindLaunch, Name: "gemm"})
	if len(seen) != 1 || seen[0] != "Launch:gemm" {
		t.Errorf("SinkFunc saw %v", seen)
	}
}
