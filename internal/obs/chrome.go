// Chrome trace-event export: renders a spine event stream as the JSON
// Array Format understood by Perfetto and chrome://tracing. Kernel spans
// become duration events on one track per (GPU, context) pair; scheduler
// decisions (preemptions, migrations, faults, checkpoints, sheds,
// placements) become instant events on a dedicated "scheduler" process so
// they line up visually against the kernel interleavings they caused.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// chromeEvent is one entry of the trace-event array. Field order and
// encoding are fixed by encoding/json's deterministic struct marshalling,
// so identical event streams serialize to identical bytes.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// schedulerPid is the synthetic process hosting decision events; device
// processes are numbered from 1 in first-appearance order.
const schedulerPid = 0

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func metaEvent(pid, tid int, name, value string) chromeEvent {
	return chromeEvent{
		Name: name,
		Ph:   "M",
		Pid:  pid,
		Tid:  tid,
		Args: map[string]any{"name": value},
	}
}

// WriteChrome renders events as Chrome trace-event JSON. The input is
// expected in emission order (as produced by a Recorder); output is
// deterministic — a byte-for-byte function of the event stream.
func WriteChrome(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ms"}
	out.TraceEvents = append(out.TraceEvents,
		metaEvent(schedulerPid, 0, "process_name", "scheduler"))

	// Device processes and per-(device, ctx) threads are numbered in
	// first-appearance order, so the mapping itself replays identically.
	devicePid := map[string]int{}
	type track struct {
		pid, tid int
	}
	ctxTid := map[string]track{}
	pidOf := func(device string) int {
		if pid, ok := devicePid[device]; ok {
			return pid
		}
		pid := len(devicePid) + 1
		devicePid[device] = pid
		out.TraceEvents = append(out.TraceEvents,
			metaEvent(pid, 0, "process_name", device))
		return pid
	}
	tidOf := func(device string, ctx int) (int, int) {
		key := fmt.Sprintf("%s/%d", device, ctx)
		if t, ok := ctxTid[key]; ok {
			return t.pid, t.tid
		}
		pid := pidOf(device)
		tid := ctx + 1 // tid 0 is reserved for the process-name row
		ctxTid[key] = track{pid: pid, tid: tid}
		out.TraceEvents = append(out.TraceEvents,
			metaEvent(pid, tid, "thread_name", fmt.Sprintf("ctx %d", ctx)))
		return pid, tid
	}

	for _, e := range events {
		switch e.Kind {
		case KindKernelSpan:
			pid, tid := tidOf(e.Device, e.Ctx)
			dur := usec(e.Dur)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Name,
				Ph:   "X",
				Ts:   usec(e.Start),
				Dur:  &dur,
				Pid:  pid,
				Tid:  tid,
			})
		case KindOpSched:
			// Executor-level dispatch is far too voluminous for a visual
			// trace; it stays queryable through Recorder.Events.
			continue
		default:
			args := map[string]any{"seq": e.Seq}
			if e.Ctx >= 0 {
				args["ctx"] = e.Ctx
			}
			if e.Job != "" {
				args["job"] = e.Job
			}
			if e.Device != "" {
				args["device"] = e.Device
			}
			if e.From != "" {
				args["from"] = e.From
			}
			if e.Name != "" {
				args["detail"] = e.Name
			}
			if e.Count != 0 {
				args["count"] = e.Count
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind.String(),
				Ph:   "i",
				Ts:   usec(e.Time),
				Pid:  schedulerPid,
				Tid:  0,
				S:    "g",
			})
			out.TraceEvents[len(out.TraceEvents)-1].Args = args
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
