// Package obs is the observability spine: one structured, virtual-time
// event stream that every layer publishes into and every consumer reads
// from. The paper's evidence is timelines and kernel profiles (Figure 2,
// §2.2's nvprof tables); the spine records not just kernel execution but
// the scheduler decisions around it — preemptions, migrations, batch
// fusions, sheds, faults, checkpoints — so a single trace explains what
// ran, what was displaced, and why.
//
// Determinism contract: every event carries a monotonic sequence number
// assigned at emit, in virtual-time order, by the owning Bus. Each
// simulation cell owns its engine and its bus, so serial and parallel
// harness runs of the same cell produce identical event streams and the
// exporters below produce byte-identical files.
package obs

import (
	"time"

	"switchflow/internal/sim"
)

// Kind classifies an event. The taxonomy covers every layer of the stack:
// device execution, executor dispatch, core scheduling decisions, the
// serving path, fault handling, and cluster placement.
type Kind uint8

const (
	// KindKernelSpan is a completed kernel interval on a GPU (the raw
	// material of Figure 2). Start/Dur bound the interval; Time is its end.
	KindKernelSpan Kind = iota + 1
	// KindOpSched is an operator picked off the executor's ready queue and
	// assigned to a worker (dataflow-level scheduling, below kernel level).
	KindOpSched
	// KindLaunch is a kernel handed to a device stream by the executor.
	KindLaunch
	// KindPreempt is a scheduler decision to displace a running job from a
	// GPU in favor of a higher-priority one (§3.3).
	KindPreempt
	// KindResume is a previously suspended job re-entering execution.
	KindResume
	// KindMigrate is a job's GPU state moving between devices; Name says
	// why ("preempt" or "fault"), From/Device give source and destination.
	KindMigrate
	// KindBatchFuse is a micro-batch of requests executing as one fused
	// step; Count is the batch size.
	KindBatchFuse
	// KindAdmit is a request accepted by admission control.
	KindAdmit
	// KindShed is a request rejected at the door because its projected
	// latency would bust the SLO.
	KindShed
	// KindServe is a request completing; Dur is its latency, Count is 1
	// when the latency met the job's SLO.
	KindServe
	// KindFaultInject is a fault delivered to the scheduler; Name is the
	// fault kind ("device-lost", "transient", ...).
	KindFaultInject
	// KindJobLost is a job dying with no recovery path.
	KindJobLost
	// KindCheckpoint is a state snapshot taken (periodic background
	// checkpoints, or Name="preempt" for checkpoint-based preemption).
	KindCheckpoint
	// KindRestore is state restored from a checkpoint; Count is the number
	// of iterations rolled back, Name is the trigger.
	KindRestore
	// KindPlace is a cluster-level placement decision binding a job to a
	// node and device.
	KindPlace
	// KindBind is a virtual node bound to a physical device (admission or
	// grow); Count is the vnode index, Dur-free.
	KindBind
	// KindRebind is a virtual node moving between physical devices at an
	// epoch-safe point; From/Device give source and destination, Name says
	// why ("drain", "fault", "rebind"), Count is the vnode index.
	KindRebind
	// KindResize is a job's virtual-node set growing or shrinking; Name is
	// "grow" or "shrink" and Count the new vnode count.
	KindResize
	// KindRoute is the fleet front-end assigning one epoch's worth of a
	// tenant's requests to a replica: Job is the tenant id, Ctx/Device the
	// replica's context and GPU, From the routing strategy, Count the
	// number of requests routed (arrivals are aggregated per epoch so the
	// trace stays proportional to epochs, not to millions of clients).
	KindRoute
	// KindScaleOut is the autoscaler adding a replica to a tenant's set on
	// sustained shed rate; Job is the tenant id, Name the new replica's
	// job name, Count the new replica count.
	KindScaleOut
	// KindScaleIn is the autoscaler retiring a replica on sustained idle;
	// Job is the tenant id, Name the stopped replica's job name, Count the
	// remaining replica count.
	KindScaleIn
	// KindAllReduce is a gang job's replicas meeting at the step barrier
	// for the topology-priced ring all-reduce: Dur is the modeled sync
	// cost, Count the gang width, Device the gang's first GPU.
	KindAllReduce
	// KindGangPlace is the cluster placing a whole gang all-or-nothing:
	// From is the node, Name the chosen GPU set, Count the gang width, Dur
	// the modeled all-reduce cost of the slot.
	KindGangPlace
	// KindGangPreempt is the scheduler suspending an entire gang because
	// one replica's GPU was claimed: Device is the contended GPU, Count the
	// number of replicas suspended (always the gang width — never a lone
	// worker).
	KindGangPreempt
	// KindGangResume is a displaced gang re-holding every GPU of its
	// binding and restarting as one unit; Count is the gang width.
	KindGangResume

	numKinds
)

// NumKinds is the number of defined event kinds (for sized count arrays).
const NumKinds = int(numKinds) - 1

var kindNames = [numKinds]string{
	KindKernelSpan:  "KernelSpan",
	KindOpSched:     "OpSched",
	KindLaunch:      "Launch",
	KindPreempt:     "Preempt",
	KindResume:      "Resume",
	KindMigrate:     "Migrate",
	KindBatchFuse:   "BatchFuse",
	KindAdmit:       "Admit",
	KindShed:        "Shed",
	KindServe:       "Serve",
	KindFaultInject: "FaultInject",
	KindJobLost:     "JobLost",
	KindCheckpoint:  "Checkpoint",
	KindRestore:     "Restore",
	KindPlace:       "Place",
	KindBind:        "Bind",
	KindRebind:      "Rebind",
	KindResize:      "Resize",
	KindRoute:       "Route",
	KindScaleOut:    "ScaleOut",
	KindScaleIn:     "ScaleIn",
	KindAllReduce:   "AllReduce",
	KindGangPlace:   "GangPlace",
	KindGangPreempt: "GangPreempt",
	KindGangResume:  "GangResume",
}

// String returns the canonical name of the kind.
func (k Kind) String() string {
	if k == 0 || k >= numKinds {
		return "Unknown"
	}
	return kindNames[k]
}

// Event is one record on the spine. Fields beyond Seq/Time/Kind are
// per-kind; unused ones stay at their zero value. Devices are identified
// by their string IDs ("cpu", "gpu:0") rather than device pointers so
// that obs sits below internal/device in the import graph.
type Event struct {
	// Seq is the bus-assigned monotonic sequence number; the total order
	// of the trace and the tie-break for same-instant events.
	Seq uint64
	// Time is the virtual timestamp of emission.
	Time time.Duration
	// Kind classifies the event.
	Kind Kind
	// Ctx is the owning context (job) id; -1 when not job-scoped.
	Ctx int
	// Job is the human-readable job name, when known.
	Job string
	// Device is the device the event concerns ("gpu:0"); destination for
	// migrations and placements.
	Device string
	// From is the source device of a migration, or other origin label.
	From string
	// Name is a per-kind detail: kernel or op name, fault kind, migration
	// or restore reason.
	Name string
	// Start is the beginning of the interval for span-like events
	// (KernelSpan: admission time; Serve: request arrival).
	Start time.Duration
	// Dur is the interval length (KernelSpan: execution; Serve: latency;
	// Launch: predicted solo work).
	Dur time.Duration
	// Count is a per-kind magnitude: batch size for BatchFuse, iterations
	// lost for Restore, SLO-met flag for Serve.
	Count int
}

// Sink consumes events from a Bus. Observe is called synchronously at
// emit, inside the simulation's event loop, in sequence order.
type Sink interface {
	Observe(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// Observe calls f(e).
func (f SinkFunc) Observe(e Event) { f(e) }

type subscription struct {
	sink Sink
	mask uint32
}

func kindBit(k Kind) uint32 { return 1 << uint(k) }

// MaskAll subscribes a sink to every event kind.
const MaskAll uint32 = 1<<uint(numKinds) - 2 // bits 1..numKinds-1

// Bus is the deterministic multi-subscriber event spine of one
// simulation. Emit assigns the next sequence number and fans the event
// out to matching sinks in subscription order; because all emission
// happens inside a single engine's event loop, no locking is needed and
// the sequence order is reproducible run to run.
//
// Subscriptions are expected to be set up before the simulation runs:
// Emit is a no-op (and does not consume a sequence number) when no sink
// wants the kind, so late subscribers would observe a different
// numbering, not a suffix of the same one.
type Bus struct {
	eng  *sim.Engine
	subs []subscription
	mask uint32 // union of all subscription masks
	seq  uint64
}

// NewBus creates a bus stamping events with eng's virtual clock.
func NewBus(eng *sim.Engine) *Bus {
	return &Bus{eng: eng}
}

// Subscribe registers sink for the given kinds (all kinds when none are
// given). Multiple sinks compose; each receives every matching event.
func (b *Bus) Subscribe(sink Sink, kinds ...Kind) {
	mask := MaskAll
	if len(kinds) > 0 {
		mask = 0
		for _, k := range kinds {
			mask |= kindBit(k)
		}
	}
	b.subs = append(b.subs, subscription{sink: sink, mask: mask})
	b.mask |= mask
}

// Wants reports whether any sink subscribes to kind. Hot paths use it to
// skip event construction entirely when nobody is listening. Safe on a
// nil bus.
func (b *Bus) Wants(k Kind) bool {
	return b != nil && b.mask&kindBit(k) != 0
}

// Active reports whether the bus has any subscriber at all. Safe on a
// nil bus.
func (b *Bus) Active() bool { return b != nil && b.mask != 0 }

// Emit stamps e with the current virtual time and the next sequence
// number, then delivers it to every subscribed sink in subscription
// order. Events nobody wants are dropped without consuming a sequence
// number. Safe on a nil bus.
func (b *Bus) Emit(e Event) {
	if b == nil || b.mask&kindBit(e.Kind) == 0 {
		return
	}
	b.seq++
	e.Seq = b.seq
	e.Time = b.eng.Now()
	for _, s := range b.subs {
		if s.mask&kindBit(e.Kind) != 0 {
			s.sink.Observe(e)
		}
	}
}

// Recorder is a sink that retains events in emission order. With a
// positive cap it keeps only the most recent cap events (a ring), so a
// long-running server can expose a bounded trace window.
type Recorder struct {
	cap     int
	events  []Event
	start   int // ring head when wrapped
	wrapped bool
	dropped uint64
}

// NewRecorder creates a recorder retaining at most cap events; cap <= 0
// means unbounded.
func NewRecorder(cap int) *Recorder {
	return &Recorder{cap: cap}
}

// Observe appends e, evicting the oldest event when the cap is reached.
func (r *Recorder) Observe(e Event) {
	if r.cap <= 0 || len(r.events) < r.cap {
		r.events = append(r.events, e)
		return
	}
	r.events[r.start] = e
	r.start++
	if r.start == r.cap {
		r.start = 0
	}
	r.wrapped = true
	r.dropped++
}

// Events returns the retained events in emission order. The returned
// slice is a copy and safe to hold across further emission.
func (r *Recorder) Events() []Event {
	if !r.wrapped {
		out := make([]Event, len(r.events))
		copy(out, r.events)
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns how many events were evicted by the cap.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Merge combines per-machine event streams into one deterministic total
// order. Each input stream must already be in its own emission order (the
// order a Recorder returns): nondecreasing Time with monotonically
// increasing Seq. The merged order is by (Time, stream index, Seq) — when
// two machines emit at the same virtual instant, the lower-indexed machine
// (the one a serial loop would have advanced first) comes first, and within
// one machine the bus sequence numbers keep their order. This is the merge
// key the sharded cluster relies on for byte-identical serial-vs-parallel
// traces.
func Merge(streams ...[]Event) []Event {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]Event, 0, total)
	heads := make([]int, len(streams))
	for len(out) < total {
		best := -1
		for i, s := range streams {
			if heads[i] >= len(s) {
				continue
			}
			// Strict < on Time: the lower stream index wins ties by being
			// scanned first.
			if best < 0 || s[heads[i]].Time < streams[best][heads[best]].Time {
				best = i
			}
		}
		out = append(out, streams[best][heads[best]])
		heads[best]++
	}
	return out
}
