package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func chromeFixture() []Event {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Event{
		{Seq: 1, Time: ms(5), Kind: KindKernelSpan, Ctx: 0, Device: "gpu:0", Name: "conv", Start: ms(0), Dur: ms(5)},
		{Seq: 2, Time: ms(6), Kind: KindPreempt, Ctx: 0, Job: "resnet", Device: "gpu:0", Name: "abort"},
		{Seq: 3, Time: ms(7), Kind: KindOpSched, Ctx: 1, Name: "gemm"}, // excluded from chrome output
		{Seq: 4, Time: ms(9), Kind: KindKernelSpan, Ctx: 1, Device: "gpu:1", Name: "gemm", Start: ms(6), Dur: ms(3)},
	}
}

func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, chromeFixture()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  *float64        `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	var spans, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur == nil {
				t.Errorf("span %q has no dur", e.Name)
			}
		case "i":
			instants++
			if e.Pid != 0 {
				t.Errorf("instant %q on pid %d, want the scheduler track (0)", e.Name, e.Pid)
			}
		}
		if e.Name == "OpSched" {
			t.Error("OpSched leaked into the chrome export")
		}
	}
	if spans != 2 {
		t.Errorf("%d duration events, want 2", spans)
	}
	if instants != 1 {
		t.Errorf("%d instant events, want 1 (the Preempt)", instants)
	}
}

func TestWriteChromeDeterministicBytes(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		if err := WriteChrome(&buf, chromeFixture()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	for i := 0; i < 20; i++ {
		if !bytes.Equal(first, render()) {
			t.Fatalf("iteration %d: chrome export bytes differ", i)
		}
	}
}

func TestWriteChromeEmptyEvents(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty export is not valid JSON: %v", err)
	}
}
