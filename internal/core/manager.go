// Package core implements the SwitchFlow scheduling framework (§3): a
// session manager that shares one global thread pool among all jobs,
// enforces the two scheduling invariants (no two GPU executors co-run on
// one GPU; everything else runs freely), preempts low-priority jobs with
// low latency by aborting queued nodes and letting in-flight kernels
// drain, migrates preempted jobs to replicated executors on other devices
// with asynchronous state transfer, and merges correlated jobs' input
// stages for multi-task learning.
package core

import (
	"fmt"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/executor"
	"switchflow/internal/metrics"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/threadpool"
	"switchflow/internal/workload"
)

// Options configure a Manager. The zero value selects the paper's design;
// the booleans exist for the ablation experiments.
type Options struct {
	// TempPoolThreads sizes the temporary pool (§3.3); default 4.
	TempPoolThreads int
	// DisableGPUExclusive turns off scheduling invariant 1 (ablation):
	// GPU executors co-run and contend.
	DisableGPUExclusive bool
	// DisableFreeCPUExecutors turns off invariant 2 (ablation): a job's
	// input stage only runs while it holds the GPU, degenerating into
	// session-based time slicing.
	DisableFreeCPUExecutors bool
	// SyncStateTransfer makes migration state transfer block the
	// preempting job (ablation of §3.3's async design).
	SyncStateTransfer bool
	// DisableTempPoolIsolation keeps preempted jobs on the global pool
	// (ablation): their task dispatch interferes with the preempter.
	DisableTempPoolIsolation bool
	// DisableDynamicBatching clamps serving jobs to single-request compute
	// launches regardless of their MaxBatch (the batching-off arm of the
	// serving experiment). Admission control still applies.
	DisableDynamicBatching bool
	// CheckpointPreemption replaces SwitchFlow's abort-and-resume with
	// Gandiva-style suspend-resume (§6): the victim finishes its current
	// mini-batch, checkpoints its full state to host memory, and restores
	// it before running again — putting hundreds of MiB of transfer on
	// the preemption critical path.
	CheckpointPreemption bool
	// CheckpointEvery, when positive, snapshots every training job's
	// persistent state to host memory at this period (paying the D2H
	// transfer). Fault recovery rolls jobs back to the last snapshot;
	// without snapshots a recovered job restarts from iteration zero.
	CheckpointEvery time.Duration
}

// Manager is the SwitchFlow session manager.
type Manager struct {
	eng     *sim.Engine
	machine *device.Machine
	opts    Options
	global *threadpool.Pool
	temp   *threadpool.Pool
	// arbs holds one arbiter per GPU, indexed by GPU index. It is a slice,
	// not a map, so every sweep over the arbiters (fault recovery, request
	// purging) runs in ascending device order — map iteration order is
	// randomized and would leak into grant sequencing.
	arbs []*arbiter
	jobs []*jobState
	groups  []*Group
	ctxSeq  int
	// grantSeq orders grant requests FIFO within a priority class. It is
	// per-manager, not package-level, so concurrent experiment cells never
	// share it (and one cell's request order can never leak into another).
	grantSeq int
	// stallUntil gates input-stage starts during an injected input stall.
	stallUntil time.Duration

	// PreemptionLatencies records request-to-grant times for preemptive
	// acquisitions (§5.2.3).
	PreemptionLatencies metrics.Latency
	// Preemptions counts preemption events.
	Preemptions int
	// Migrations counts device migrations.
	Migrations int
	// RecoveryLatencies records fault-to-serving-again times for recovered
	// jobs (device-lost migrations and transient restarts).
	RecoveryLatencies metrics.Latency

	// bus is the machine's observability spine; every scheduling decision
	// is emitted there. faults aggregates the fault/recovery counters from
	// those events instead of being hand-incremented per call site.
	bus    *obs.Bus
	faults metrics.FaultSink
}

type jobState struct {
	job          *workload.Job
	current      device.ID
	weightsReady bool
	inTempPool   bool
	holding      bool
	waiting      bool
	preempting   bool
	stopped      bool
	computeRun   *executor.Run
	acquiredAt   time.Duration

	// Checkpoint-preemption state (Options.CheckpointPreemption).
	checkpointRequested bool
	checkpointed        bool
	restoring           bool

	// Fault-recovery state: restarting gates the pump during a restart
	// backoff window; epoch invalidates stale transfer callbacks after a
	// fault yanks the job off its device mid-flight.
	restarting bool
	epoch      int

	// Elastic state (jobs admitted with Config.VNodes): one shard per
	// virtual node of the current binding, plus binding mutations queued
	// for the next epoch-safe point.
	shards     []*shardState
	pendingOps []func()

	// Gang state (Config.Gang): gangPreempting gates the pump while the
	// whole gang is being suspended; gangSuspended marks a displaced gang
	// whose next full re-hold must emit KindGangResume before any replica
	// restarts.
	gangPreempting bool
	gangSuspended  bool
}

// NewManager creates a SwitchFlow manager over the machine. The global
// pool has one worker per core; the temporary pool's threads come out of
// the same core budget (§3.3).
func NewManager(eng *sim.Engine, machine *device.Machine, opts Options) *Manager {
	if opts.TempPoolThreads <= 0 {
		opts.TempPoolThreads = 4
	}
	if opts.TempPoolThreads >= machine.CPU.Cores {
		opts.TempPoolThreads = machine.CPU.Cores / 2
		if opts.TempPoolThreads == 0 {
			opts.TempPoolThreads = 1
		}
	}
	m := &Manager{
		eng:     eng,
		machine: machine,
		opts:    opts,
		global:  threadpool.New(eng, "global", machine.CPU.Cores-opts.TempPoolThreads),
		temp:    threadpool.New(eng, "temporary", opts.TempPoolThreads),
		arbs:    make([]*arbiter, len(machine.GPUs)),
		bus:     machine.Bus(),
	}
	for i := range m.arbs {
		m.arbs[i] = &arbiter{}
	}
	m.bus.Subscribe(&m.faults, metrics.FaultSinkKinds...)
	return m
}

// EventBus returns the observability spine the manager publishes to.
func (m *Manager) EventBus() *obs.Bus { return m.bus }

// FaultCounters returns the fault-injection and recovery counters,
// aggregated from the observability spine.
func (m *Manager) FaultCounters() metrics.FaultCounters { return m.faults.Counters() }

// GlobalPool exposes the shared inter-op worker pool (tests, experiments).
func (m *Manager) GlobalPool() *threadpool.Pool { return m.global }

// TempPool exposes the temporary pool.
func (m *Manager) TempPool() *threadpool.Pool { return m.temp }

// AddJob admits a job: its persistent state is allocated on the preferred
// device up front, so admission fails (rather than the job crashing later)
// when the aggregate weights of collocated models exceed GPU memory —
// SwitchFlow's OOM-freedom contract (§3.4).
func (m *Manager) AddJob(cfg workload.Config) (*workload.Job, error) {
	m.ctxSeq++
	if m.opts.DisableDynamicBatching {
		cfg.MaxBatch = 0
		cfg.BatchWait = 0
	}
	job, err := workload.NewJob(m.eng, m.machine, m.ctxSeq, cfg)
	if err != nil {
		return nil, err
	}
	if job.Elastic() {
		// One full data-parallel weight replica per distinct bound device;
		// admission fails atomically when any replica does not fit.
		placed := make([]device.ID, 0, len(job.Binding().Devices()))
		for _, dev := range job.Binding().Devices() {
			if err := job.AllocWeights(dev); err != nil {
				for _, d := range placed {
					job.FreeWeights(d)
				}
				return nil, fmt.Errorf("core: admit %s: replica on %v: %w", cfg.Name, dev, err)
			}
			placed = append(placed, dev)
		}
	} else if err := job.AllocWeights(cfg.Device); err != nil {
		return nil, fmt.Errorf("core: admit %s: %w", cfg.Name, err)
	}
	js := &jobState{job: job, current: cfg.Device, weightsReady: true}
	if job.Elastic() {
		m.rebuildShards(js)
		for i := 0; i < job.Binding().Len(); i++ {
			m.bus.Emit(obs.Event{
				Kind:   obs.KindBind,
				Ctx:    job.Ctx,
				Job:    cfg.Name,
				Device: job.Binding().Node(i).Device.String(),
				Count:  i,
			})
		}
	}
	m.jobs = append(m.jobs, js)
	job.StartArrivals(func() { m.pump(js) })
	m.eng.After(0, func() { m.pump(js) })
	if m.opts.CheckpointEvery > 0 && job.Training() {
		// Admission-time state is durable (weights initialize from host),
		// so the job starts with a valid iteration-zero checkpoint.
		job.RecordCheckpoint()
		m.scheduleCheckpoint(js)
	}
	return job, nil
}

// StopJob halts a job's loop after its in-flight stages complete.
func (m *Manager) StopJob(job *workload.Job) {
	for _, js := range m.jobs {
		if js.job == job {
			js.stopped = true
			job.StopArrivals()
			return
		}
	}
}

// JobDevice reports the device a job currently runs on.
func (m *Manager) JobDevice(job *workload.Job) device.ID {
	for _, js := range m.jobs {
		if js.job == job {
			return js.current
		}
	}
	return device.ID{}
}

// pump advances a job's pipeline; it is called on every relevant state
// change and is idempotent.
func (m *Manager) pump(js *jobState) {
	if js.stopped || js.job.Crashed() || js.preempting || js.restarting {
		return
	}
	if js.job.Elastic() {
		// Elastic jobs fan each step out across their virtual-node shards;
		// input stays the free-CPU-executor path (invariant 2 is about CPU
		// stages, which vnodes do not change).
		m.pumpInput(js)
		m.pumpShards(js)
		return
	}
	if m.opts.DisableFreeCPUExecutors {
		m.pumpCoupled(js)
		return
	}
	m.pumpInput(js)
	m.pumpCompute(js)
}

// pumpInput starts the CPU input stage whenever a prefetch slot is free —
// invariant 2: CPU executors run without restriction (§3.4).
func (m *Manager) pumpInput(js *jobState) {
	if m.eng.Now() < m.stallUntil {
		return // input pipelines stalled; handleInputStall re-pumps
	}
	v, err := js.job.Version(js.current)
	if err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, js.current, "no graph version")
		return
	}
	if v.Input == nil {
		// All-CPU placement: the compute subgraph includes preprocessing;
		// input slots fill instantly.
		if js.job.CanStartInput() {
			js.job.BeginInput()
			js.job.FinishInput()
		}
		return
	}
	pool := m.poolFor(js)
	for js.job.CanStartInput() {
		js.job.BeginInput()
		_, err := js.job.StartExec(v.Input, executor.Config{Pool: pool}, func() {
			js.job.FinishInput()
			m.pump(js)
		})
		if err != nil {
			js.job.Crash(err)
			m.emitJobLost(js, js.current, "input start failed")
			return
		}
	}
}

// pumpCompute starts (or resumes) the compute stage when work is ready,
// acquiring the GPU arbiter first — invariant 1 (§3.4).
func (m *Manager) pumpCompute(js *jobState) {
	if !js.weightsReady && !js.checkpointed {
		return
	}
	if js.restoring {
		return
	}
	resumable := js.computeRun != nil && js.computeRun.Suspended()
	if js.job.ComputeRunning && !resumable {
		return
	}
	if !js.job.ComputeRunning && !js.job.InputAvailable() {
		return
	}
	if !js.job.ComputeRunning && js.job.HoldForBatch() {
		// The micro-batch is still filling; the batch-wait timer (or the
		// next ready input) re-pumps by the deadline.
		return
	}
	if js.current.Kind != device.KindGPU || m.opts.DisableGPUExclusive {
		m.startCompute(js)
		return
	}
	if js.holding {
		m.startCompute(js)
		return
	}
	if js.waiting {
		return
	}
	js.waiting = true
	js.acquiredAt = m.eng.Now()
	m.acquire(js.current.Index, js, func() {
		js.waiting = false
		js.holding = true
		m.pump(js)
	})
}

// pumpCoupled is the DisableFreeCPUExecutors ablation: input and compute
// run back-to-back under the GPU grant, like session-based time slicing.
func (m *Manager) pumpCoupled(js *jobState) {
	if !js.weightsReady {
		return
	}
	// A preempted session resumes through the normal compute path.
	if js.computeRun != nil && js.computeRun.Suspended() {
		m.pumpCompute(js)
		return
	}
	if js.job.ComputeRunning || js.job.InputsInFlight > 0 || !js.job.HasWork() {
		return
	}
	if m.eng.Now() < m.stallUntil {
		return // coupled sessions start with input; stalled like pumpInput
	}
	if js.current.Kind != device.KindGPU {
		m.pumpInput(js)
		m.pumpCompute(js)
		return
	}
	if js.holding || js.waiting {
		return
	}
	js.waiting = true
	js.acquiredAt = m.eng.Now()
	m.acquire(js.current.Index, js, func() {
		js.waiting = false
		js.holding = true
		m.runCoupledSession(js)
	})
}

func (m *Manager) runCoupledSession(js *jobState) {
	v, err := js.job.Version(js.current)
	if err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, js.current, "no graph version")
		m.releaseFrom(js)
		return
	}
	if !js.job.CanStartInput() && !js.job.InputAvailable() {
		m.releaseFrom(js)
		return
	}
	if js.job.CanStartInput() {
		js.job.BeginInput()
		if v.Input == nil {
			js.job.FinishInput()
			m.startCompute(js)
			return
		}
		_, err := js.job.StartExec(v.Input, executor.Config{Pool: m.poolFor(js)}, func() {
			js.job.FinishInput()
			m.startCompute(js)
		})
		if err != nil {
			js.job.Crash(err)
			m.emitJobLost(js, js.current, "input start failed")
			m.releaseFrom(js)
			return
		}
		return
	}
	m.startCompute(js)
}

// startCompute runs the compute subgraph on the current device, resuming
// a suspended session run if one is pending and restoring a checkpoint
// first when the job was checkpointed out.
func (m *Manager) startCompute(js *jobState) {
	if js.checkpointed {
		m.restoreCheckpoint(js)
		return
	}
	if js.computeRun != nil && js.computeRun.Suspended() {
		if err := js.job.AllocIntermediate(js.current); err != nil {
			js.job.Crash(err)
			m.emitJobLost(js, js.current, "intermediate alloc failed")
			m.releaseFrom(js)
			return
		}
		m.bus.Emit(obs.Event{
			Kind:   obs.KindResume,
			Ctx:    js.job.Ctx,
			Job:    js.job.Cfg.Name,
			Device: js.current.String(),
		})
		js.computeRun.Resume()
		return
	}
	v, err := js.job.NextComputeVersion(js.current)
	if err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, js.current, "no graph version")
		m.releaseFrom(js)
		return
	}
	if err := js.job.AllocIntermediate(js.current); err != nil {
		// Cannot happen under the exclusivity invariant unless a single
		// job exceeds the device by itself.
		js.job.Crash(err)
		m.emitJobLost(js, js.current, "intermediate alloc failed")
		m.releaseFrom(js)
		return
	}
	js.job.BeginCompute()
	cfg := executor.Config{Pool: m.poolFor(js), Stream: js.job.Stream(js.current)}
	run, err := js.job.StartExec(v.Compute, cfg, func() {
		js.computeRun = nil
		js.job.FreeIntermediate(js.current)
		js.job.FinishCompute()
		// Regaining a full iteration on the GPU completes any pending
		// "stay" preemption recovery: back to the global pool.
		if js.current.Kind == device.KindGPU {
			js.inTempPool = false
		}
		m.afterCompute(js)
	})
	if err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, js.current, "compute start failed")
		js.job.FreeIntermediate(js.current)
		m.releaseFrom(js)
		return
	}
	js.computeRun = run
}

// poolFor returns the inter-op pool a job's tasks go to: the temporary
// pool while the job is being isolated after preemption or while it runs
// on CPU.
func (m *Manager) poolFor(js *jobState) *threadpool.Pool {
	if m.opts.DisableTempPoolIsolation {
		return m.global
	}
	if js.inTempPool || js.current.Kind == device.KindCPU {
		return m.temp
	}
	return m.global
}

// afterCompute runs the post-iteration path: under checkpoint preemption
// a requested checkpoint streams the job's state to host memory before
// the GPU is released (Gandiva's suspend path, §6); otherwise the GPU is
// released immediately.
func (m *Manager) afterCompute(js *jobState) {
	if js.checkpointRequested && js.current.Kind == device.KindGPU {
		js.checkpointRequested = false
		from := js.current
		epoch := js.epoch
		d2h := m.machine.DeviceToHost(from.Index)
		d2h.Transfer(js.job.WeightBytes(), js.job.Cfg.Model.WeightVars(), func() {
			js.job.FreeWeights(from)
			if js.epoch != epoch {
				return // a fault already relocated the job mid-transfer
			}
			m.bus.Emit(obs.Event{
				Kind:   obs.KindCheckpoint,
				Ctx:    js.job.Ctx,
				Job:    js.job.Cfg.Name,
				Device: from.String(),
				Name:   "preempt",
			})
			js.checkpointed = true
			js.weightsReady = false
			m.releaseFrom(js)
			m.pump(js)
		})
		return
	}
	m.releaseFrom(js)
	// A legacy job's epoch-safe point is right here, between iterations
	// with the grant released: apply any queued binding ops (drain
	// migrations) before pumping the next iteration.
	m.applyPendingOps(js)
	m.pump(js)
}

// restoreCheckpoint streams a checkpointed job's state back onto the GPU
// it just re-acquired, then starts its compute. The restore occupies the
// grant — Gandiva's resume cost.
func (m *Manager) restoreCheckpoint(js *jobState) {
	if js.restoring {
		return
	}
	js.restoring = true
	if err := js.job.AllocWeights(js.current); err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, js.current, "restore allocation failed")
		js.restoring = false
		m.releaseFrom(js)
		return
	}
	epoch := js.epoch
	h2d := m.machine.HostToDevice(js.current.Index)
	h2d.Transfer(js.job.WeightBytes(), js.job.Cfg.Model.WeightVars(), func() {
		if js.epoch != epoch {
			return // a fault already relocated the job mid-transfer
		}
		m.bus.Emit(obs.Event{
			Kind:   obs.KindRestore,
			Ctx:    js.job.Ctx,
			Job:    js.job.Cfg.Name,
			Device: js.current.String(),
			Name:   "preempt",
		})
		js.restoring = false
		js.checkpointed = false
		js.weightsReady = true
		m.pump(js)
	})
}

func (m *Manager) releaseFrom(js *jobState) {
	if !js.holding {
		return
	}
	js.holding = false
	m.release(js.current.Index)
}

// DebugJobState renders a job's scheduler state for test diagnostics.
func (m *Manager) DebugJobState(job *workload.Job) string {
	for _, js := range m.jobs {
		if js.job == job {
			suspended := js.computeRun != nil && js.computeRun.Suspended()
			done, total := 0, 0
			if js.computeRun != nil {
				done, total = js.computeRun.Progress()
			}
			return fmt.Sprintf("holding=%v waiting=%v preempting=%v temp=%v run=%v suspended=%v progress=%d/%d",
				js.holding, js.waiting, js.preempting, js.inTempPool,
				js.computeRun != nil, suspended, done, total)
		}
	}
	return "?"
}
