package core

import (
	"sort"

	"switchflow/internal/device"
	"switchflow/internal/obs"
)

// arbiter serializes GPU executors on one GPU (scheduling invariant 1) and
// implements priority preemption.
type arbiter struct {
	owner *jobState
	queue []*grantReq
}

type grantReq struct {
	js      *jobState
	onGrant func()
	seq     int
}

// acquire requests exclusive use of GPU gpu for js. onGrant fires when the
// device is granted. A higher-priority request preempts the current owner
// (§3.3); equal or lower priority waits FIFO within its priority class.
func (m *Manager) acquire(gpu int, js *jobState, onGrant func()) {
	arb := m.arbs[gpu]
	m.grantSeq++
	req := &grantReq{js: js, onGrant: onGrant, seq: m.grantSeq}
	if arb.owner == nil {
		arb.owner = js
		m.recordGrant(js)
		onGrant()
		return
	}
	arb.queue = append(arb.queue, req)
	sort.SliceStable(arb.queue, func(i, j int) bool {
		pi, pj := arb.queue[i].js.job.Cfg.Priority, arb.queue[j].js.job.Cfg.Priority
		if pi != pj {
			return pi > pj
		}
		return arb.queue[i].seq < arb.queue[j].seq
	})
	if js.job.Cfg.Priority > arb.owner.job.Cfg.Priority {
		m.preempt(gpu, arb.owner)
	}
}

// release frees the GPU and grants the highest-priority waiter.
func (m *Manager) release(gpu int) {
	arb := m.arbs[gpu]
	arb.owner = nil
	m.grantNext(gpu)
}

func (m *Manager) grantNext(gpu int) {
	arb := m.arbs[gpu]
	if arb.owner != nil || len(arb.queue) == 0 {
		return
	}
	req := arb.queue[0]
	arb.queue = arb.queue[1:]
	arb.owner = req.js
	m.recordGrant(req.js)
	req.onGrant()
}

func (m *Manager) recordGrant(js *jobState) {
	m.PreemptionLatencies.Add(m.eng.Now() - js.acquiredAt)
}

// emitPreempt publishes a preemption decision: the victim, the device it
// is displaced from, and the protocol used ("abort" for SwitchFlow's
// abort-and-resume, "checkpoint" for the Gandiva-style ablation).
func (m *Manager) emitPreempt(gpu int, victim *jobState, how string) {
	m.bus.Emit(obs.Event{
		Kind:   obs.KindPreempt,
		Ctx:    victim.job.Ctx,
		Job:    victim.job.Cfg.Name,
		Device: device.GPUID(gpu).String(),
		Name:   how,
	})
}

// preempt suspends the victim's compute stage: queued nodes are aborted
// from the thread pools and the stream's backlog is dropped; in-flight
// kernels drain (the only component on the new job's critical path,
// §5.2.3). The victim's unfinished iteration is repopulated, and the
// victim either migrates to a fallback device or waits in the temporary
// pool until it regains the GPU.
func (m *Manager) preempt(gpu int, victim *jobState) {
	if victim.job.Elastic() {
		if victim.job.Gang() {
			// Gang victims suspend whole: a lone displaced replica would
			// stall its siblings at the step barrier while they sit on GPUs
			// other jobs need (gang.go).
			m.preemptGang(gpu, victim)
			return
		}
		// Elastic victims are preempted per shard: only the shard on the
		// contended GPU suspends; siblings keep computing. (The checkpoint
		// ablation does not apply — vnode replicas make it moot.)
		m.preemptShard(gpu, victim)
		return
	}
	if m.opts.CheckpointPreemption {
		// Gandiva-style: no abort; the victim runs its mini-batch to
		// completion, then checkpoints out (§6). The grant follows the
		// checkpoint transfer.
		if !victim.checkpointRequested {
			victim.checkpointRequested = true
			m.Preemptions++
			m.emitPreempt(gpu, victim, "checkpoint")
		}
		return
	}
	if victim.preempting {
		return
	}
	victim.preempting = true
	m.Preemptions++
	m.emitPreempt(gpu, victim, "abort")
	if !m.opts.DisableTempPoolIsolation {
		victim.inTempPool = true
	}

	epoch := victim.epoch
	finish := func() {
		if victim.epoch != epoch {
			// A fault relocated the victim while its kernels drained; the
			// fault handler already settled the arbiter.
			return
		}
		from := victim.current
		// The iteration's intermediate data is discarded either way,
		// freeing the bulk of GPU memory for the preempter (§3.4); the
		// resumed session reallocates it.
		victim.job.FreeIntermediate(from)
		victim.holding = false
		release := func() {
			victim.preempting = false
			m.release(gpu)
			m.pump(victim)
		}
		fallback, ok := m.pickFallback(victim)
		if !ok {
			// Stay and wait: the suspended run is kept and resumed when
			// the job regains the GPU — no work is lost (§3.3).
			release()
			return
		}
		// Migrating to a different device discards the partial iteration
		// (its tasks repopulate a fresh session there) but keeps the
		// prefetched input batch.
		if victim.computeRun != nil {
			victim.computeRun.Discard()
			victim.computeRun = nil
		}
		if victim.job.ComputeRunning {
			victim.job.AbandonCompute()
		}
		if m.opts.SyncStateTransfer {
			// Ablation: the state transfer joins the preemption critical
			// path — the new job waits for it.
			m.migrate(victim, from, fallback, "preempt", release)
			return
		}
		m.migrate(victim, from, fallback, "preempt", nil)
		release()
	}

	if victim.computeRun != nil {
		victim.computeRun.Suspend(finish)
		return
	}
	// Owner was granted but has not started its executor (e.g. waiting on
	// input); nothing to drain.
	m.eng.After(0, finish)
}

// pickFallback chooses the first configured fallback device with room for
// the victim's weights. ok is false when the victim should stay and wait.
func (m *Manager) pickFallback(victim *jobState) (device.ID, bool) {
	for _, dev := range victim.job.Cfg.Fallbacks {
		if dev == victim.current || !m.machine.Healthy(dev) {
			continue
		}
		if dev.Kind == device.KindGPU {
			gpu := m.machine.GPU(dev.Index)
			if gpu == nil || gpu.Mem.Available() < victim.job.WeightBytes() {
				continue
			}
			// The fallback GPU must not currently host a higher-priority
			// owner the victim would immediately be preempted by.
			if owner := m.arbs[dev.Index].owner; owner != nil &&
				owner.job.Cfg.Priority > victim.job.Cfg.Priority {
				continue
			}
		}
		return dev, true
	}
	return device.ID{}, false
}

// migrate moves the victim to dev: weights are copied off the preemption
// critical path; the source GPU retains the weight bytes until the
// transfer completes (§3.3, Table 1). reason tags the migrate event
// ("preempt", "fault", "drain"); onDone, when non-nil, fires at transfer
// completion (used by the synchronous-transfer ablation).
func (m *Manager) migrate(victim *jobState, from, to device.ID, reason string, onDone func()) {
	if _, err := victim.job.Version(to); err != nil {
		victim.job.Crash(err)
		m.emitJobLost(victim, to, "no graph version")
		return
	}
	if err := victim.job.AllocWeights(to); err != nil {
		// No room after all; stay and wait instead.
		if onDone != nil {
			onDone()
		}
		return
	}
	m.Migrations++
	m.bus.Emit(obs.Event{
		Kind:   obs.KindMigrate,
		Ctx:    victim.job.Ctx,
		Job:    victim.job.Cfg.Name,
		From:   from.String(),
		Device: to.String(),
		Name:   reason,
	})
	victim.current = to
	victim.weightsReady = false
	path, err := m.machine.CopyPath(from, to)
	if err != nil {
		victim.job.Crash(err)
		m.emitJobLost(victim, to, "no copy path")
		return
	}
	bytes := victim.job.WeightBytes()
	tensors := victim.job.Cfg.Model.WeightVars()
	epoch := victim.epoch
	path.Transfer(bytes, tensors, func() {
		// Safe even if a fault took `from` down mid-transfer: ForgetDevice
		// zeroed the accounting, so this free is a no-op there.
		victim.job.FreeWeights(from)
		if victim.epoch != epoch {
			// A fault relocated the job again; its handler owns the state
			// now, but the sync-ablation release must still run so the
			// source GPU's arbiter keeps granting.
			if onDone != nil {
				onDone()
			}
			return
		}
		victim.weightsReady = true
		if to.Kind == device.KindGPU {
			victim.inTempPool = false
		}
		m.pump(victim)
		if onDone != nil {
			onDone()
		}
	})
}
