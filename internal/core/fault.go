package core

import (
	"fmt"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/fault"
	"switchflow/internal/obs"
)

// This file is SwitchFlow's self-healing path (§3.4, §5.2 under induced
// faults): the manager implements fault.Handler, reacting to device loss
// by migrating victims through their configured Fallbacks with state
// restored from host checkpoints, to transient kernel/ECC errors by
// crash-and-restart with exponential backoff, and to input stalls by
// pausing the input pipelines while compute drains prefetched batches.

var _ fault.Handler = (*Manager)(nil)

// HandleFault implements fault.Handler. The injector has already applied
// the hardware effect (a lost GPU is failed and its memory invalidated)
// when this runs.
func (m *Manager) HandleFault(ev fault.Event) {
	dev := ""
	if ev.Device != (device.ID{}) {
		dev = ev.Device.String()
	}
	m.bus.Emit(obs.Event{
		Kind:   obs.KindFaultInject,
		Ctx:    -1,
		Device: dev,
		Name:   ev.Kind.String(),
	})
	switch ev.Kind {
	case fault.KindDeviceLost:
		m.handleDeviceLost(ev.Device)
	case fault.KindTransient:
		m.handleTransient(ev.Device)
	case fault.KindInputStall:
		m.handleInputStall(ev.Duration)
	case fault.KindDegraded:
		// Hardware effect only: kernels on the device run slower until it
		// heals; no job state is at risk.
	}
}

// handleDeviceLost migrates every job on the lost device to a healthy
// fallback, restoring weights from the host checkpoint (the device copy
// is gone, so the cheap peer path of §3.3 is unavailable). Jobs without
// a viable fallback crash — even SwitchFlow cannot run a job with
// nowhere to put it.
func (m *Manager) handleDeviceLost(dev device.ID) {
	if dev.Kind != device.KindGPU || dev.Index >= len(m.machine.GPUs) {
		return
	}
	// The arbiter's grant queue only ever holds jobs computing on this GPU
	// (legacy jobs placed here, elastic shards bound here); every one of
	// them is about to be migrated, healed, or crashed, so the whole
	// arbiter resets.
	m.arbs[dev.Index] = &arbiter{}
	faultAt := m.eng.Now()
	for _, js := range m.jobs {
		// Any job may hold stale weight bytes on the lost device (e.g. a
		// migration source not yet freed); the pool was invalidated
		// wholesale, so drop the accounting rather than double-freeing.
		js.job.ForgetDevice(dev)
		if js.stopped || js.job.Crashed() {
			continue
		}
		if js.job.Elastic() {
			// Zero-restart healing: surviving replicas re-seed a re-split
			// binding; no rollback, no Restarts increment.
			m.healElastic(js, dev, faultAt)
			continue
		}
		if js.current != dev {
			continue
		}
		js.epoch++
		if js.computeRun != nil {
			js.computeRun.Discard()
			js.computeRun = nil
		}
		if js.job.ComputeRunning {
			js.job.AbandonCompute()
		}
		js.holding, js.waiting, js.preempting = false, false, false
		js.restoring, js.restarting = false, false
		js.checkpointRequested = false

		to, ok := m.pickRecoveryTarget(js, dev)
		if !ok {
			js.job.Crash(fmt.Errorf("core: %s: %w (%v, no healthy fallback)",
				js.job.Cfg.Name, fault.ErrDeviceLost, dev))
			m.emitJobLost(js, dev, "no healthy fallback")
			continue
		}
		m.Migrations++
		m.bus.Emit(obs.Event{
			Kind:   obs.KindMigrate,
			Ctx:    js.job.Ctx,
			Job:    js.job.Cfg.Name,
			From:   dev.String(),
			Device: to.String(),
			Name:   "fault",
		})
		js.job.Restarted()
		m.bus.Emit(obs.Event{
			Kind:   obs.KindRestore,
			Ctx:    js.job.Ctx,
			Job:    js.job.Cfg.Name,
			Device: to.String(),
			Name:   "device-lost",
			Count:  js.job.RollbackToCheckpoint(),
		})
		js.current = to
		if js.checkpointed {
			// Gandiva-mode job already checkpointed out to host memory; the
			// normal restore path rebuilds it on the new device.
			m.pump(js)
			continue
		}
		m.restoreFromHost(js, faultAt)
	}
}

// pickRecoveryTarget chooses the first healthy configured fallback with
// room for the job's weights. Unlike preemption's pickFallback it ignores
// who currently owns the target — surviving beats avoiding contention.
func (m *Manager) pickRecoveryTarget(js *jobState, lost device.ID) (device.ID, bool) {
	for _, dev := range js.job.Cfg.Fallbacks {
		if dev == lost || !m.machine.Healthy(dev) {
			continue
		}
		if dev.Kind == device.KindGPU {
			gpu := m.machine.GPU(dev.Index)
			if gpu == nil || gpu.Mem.Available() < js.job.WeightBytes() {
				continue
			}
		}
		return dev, true
	}
	return device.ID{}, false
}

// restoreFromHost rebuilds a job's state on js.current from the host
// checkpoint: allocate weights, pay the H2D transfer (free for CPU
// placements — host state is already in host memory), then resume.
func (m *Manager) restoreFromHost(js *jobState, faultAt time.Duration) {
	if _, err := js.job.Version(js.current); err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, js.current, "no graph version")
		return
	}
	if err := js.job.AllocWeights(js.current); err != nil {
		js.job.Crash(fmt.Errorf("core: restore %s: %w", js.job.Cfg.Name, err))
		m.emitJobLost(js, js.current, "restore allocation failed")
		return
	}
	js.weightsReady = false
	epoch := js.epoch
	finish := func() {
		if js.epoch != epoch || js.stopped || js.job.Crashed() {
			return
		}
		js.weightsReady = true
		if js.current.Kind == device.KindGPU {
			js.inTempPool = false
		}
		m.RecoveryLatencies.Add(m.eng.Now() - faultAt)
		m.pump(js)
	}
	if js.current.Kind != device.KindGPU {
		m.eng.After(0, finish)
		return
	}
	h2d := m.machine.HostToDevice(js.current.Index)
	h2d.Transfer(js.job.WeightBytes(), js.job.Cfg.Model.WeightVars(), finish)
}

// handleTransient restarts the job computing on dev from its last
// checkpoint: the in-flight iteration is corrupted and discarded, the
// job backs off exponentially in virtual time, reloads its weights from
// the host checkpoint (ECC faults taint device state), and resumes. The
// hardware itself stays usable, so no migration happens.
func (m *Manager) handleTransient(dev device.ID) {
	js := m.transientVictim(dev)
	if js == nil {
		return
	}
	if js.job.Elastic() {
		m.handleElasticTransient(js, dev)
		return
	}
	js.epoch++
	if js.computeRun != nil {
		js.computeRun.Discard()
		js.computeRun = nil
	}
	if js.job.ComputeRunning {
		js.job.AbandonCompute()
	}
	js.job.FreeIntermediate(dev)
	m.purgeRequests(js)
	m.releaseFrom(js)
	js.preempting = false
	js.restarting = true
	js.job.Restarted()
	m.bus.Emit(obs.Event{
		Kind:   obs.KindRestore,
		Ctx:    js.job.Ctx,
		Job:    js.job.Cfg.Name,
		Device: dev.String(),
		Name:   "transient",
		Count:  js.job.RollbackToCheckpoint(),
	})
	backoff := js.job.NextRestartBackoff()
	faultAt := m.eng.Now()
	epoch := js.epoch
	m.eng.After(backoff, func() {
		if js.epoch != epoch || js.stopped || js.job.Crashed() {
			return
		}
		finish := func() {
			if js.epoch != epoch || js.stopped || js.job.Crashed() {
				return
			}
			js.restarting = false
			m.RecoveryLatencies.Add(m.eng.Now() - faultAt)
			m.pump(js)
		}
		if js.current.Kind == device.KindGPU && m.machine.Healthy(js.current) {
			h2d := m.machine.HostToDevice(js.current.Index)
			h2d.Transfer(js.job.WeightBytes(), js.job.Cfg.Model.WeightVars(), finish)
			return
		}
		finish()
	})
}

// transientVictim picks the job the fault hits: the device's current
// owner, else the first job with state exposed there — computing, or
// merely resident (an ECC error corrupts resident memory just as well as
// a running kernel). Admission order keeps the choice deterministic.
func (m *Manager) transientVictim(dev device.ID) *jobState {
	if dev.Kind == device.KindGPU && dev.Index < len(m.arbs) {
		if arb := m.arbs[dev.Index]; arb.owner != nil &&
			!arb.owner.stopped && !arb.owner.job.Crashed() && !arb.owner.restarting {
			return arb.owner
		}
	}
	for _, js := range m.jobs {
		if js.stopped || js.job.Crashed() || js.restarting {
			continue
		}
		if js.job.Elastic() {
			// An elastic job is exposed on every device its binding touches,
			// not just its primary.
			if js.job.Binding().Uses(dev) || js.job.WeightsOn(dev) {
				return js
			}
			continue
		}
		if js.current != dev {
			continue
		}
		if js.job.ComputeRunning || js.computeRun != nil || js.job.WeightsOn(dev) {
			return js
		}
	}
	return nil
}

// purgeRequests removes a job's pending grant requests from every
// arbiter so a grant cannot fire into a restarting job and stall the
// device for the backoff window.
func (m *Manager) purgeRequests(js *jobState) {
	if !js.waiting {
		return
	}
	for _, arb := range m.arbs {
		kept := arb.queue[:0]
		for _, req := range arb.queue {
			if req.js != js {
				kept = append(kept, req)
			}
		}
		for i := len(kept); i < len(arb.queue); i++ {
			arb.queue[i] = nil
		}
		arb.queue = kept
	}
	js.waiting = false
}

// scheduleCheckpoint arms the next periodic host checkpoint for a
// training job (Options.CheckpointEvery).
func (m *Manager) scheduleCheckpoint(js *jobState) {
	m.eng.After(m.opts.CheckpointEvery, func() { m.takeCheckpoint(js) })
}

// takeCheckpoint snapshots the job's persistent state to host memory,
// paying the D2H transfer when the state lives on a healthy GPU. The
// snapshot is durable (RecordCheckpoint) once the transfer lands; faults
// striking mid-transfer leave the previous checkpoint in force.
func (m *Manager) takeCheckpoint(js *jobState) {
	if js.stopped || js.job.Crashed() {
		return
	}
	bytes := js.job.CheckpointBytes()
	onGPU := js.current.Kind == device.KindGPU && m.machine.Healthy(js.current) &&
		!js.checkpointed && js.weightsReady
	if bytes == 0 || !onGPU {
		// State already host-resident (CPU placement, Gandiva checkpoint-out,
		// or mid-restore) — the snapshot is free.
		js.job.RecordCheckpoint()
		m.emitCheckpoint(js)
		m.scheduleCheckpoint(js)
		return
	}
	d2h := m.machine.DeviceToHost(js.current.Index)
	epoch := js.epoch
	d2h.Transfer(bytes, js.job.Cfg.Model.WeightVars(), func() {
		if js.stopped || js.job.Crashed() {
			return
		}
		if js.epoch == epoch {
			js.job.RecordCheckpoint()
			m.emitCheckpoint(js)
		}
		m.scheduleCheckpoint(js)
	})
}

// emitJobLost publishes a job death (a fault with no recovery path).
func (m *Manager) emitJobLost(js *jobState, dev device.ID, why string) {
	m.bus.Emit(obs.Event{
		Kind:   obs.KindJobLost,
		Ctx:    js.job.Ctx,
		Job:    js.job.Cfg.Name,
		Device: dev.String(),
		Name:   why,
	})
}

// emitCheckpoint publishes a durable periodic host snapshot.
func (m *Manager) emitCheckpoint(js *jobState) {
	m.bus.Emit(obs.Event{
		Kind:   obs.KindCheckpoint,
		Ctx:    js.job.Ctx,
		Job:    js.job.Cfg.Name,
		Device: js.current.String(),
		Name:   "periodic",
	})
}

// handleInputStall pauses every job's input pipeline until the stall
// window passes; compute keeps draining already-prefetched batches
// (invariant 2 in reverse — the GPU stays busy while the CPU side is
// starved). Overlapping stalls extend the window.
func (m *Manager) handleInputStall(d time.Duration) {
	until := m.eng.Now() + d
	if until <= m.stallUntil {
		return
	}
	m.stallUntil = until
	m.eng.Schedule(until, func() {
		if m.eng.Now() < m.stallUntil {
			return // a longer stall superseded this one
		}
		for _, js := range m.jobs {
			m.pump(js)
		}
	})
}
