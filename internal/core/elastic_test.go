package core

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/fault"
	"switchflow/internal/obs"
	"switchflow/internal/workload"
)

func elasticCfg(t *testing.T, name, model string, batch, prio int, devs ...device.ID) workload.Config {
	t.Helper()
	cfg := trainCfg(t, name, model, batch, prio, devs[0])
	cfg.VNodes = devs
	return cfg
}

func TestElasticJobSplitsAcrossTwoGPUs(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
	job, err := m.AddJob(elasticCfg(t, "train", "ResNet50", 32, 1,
		device.GPUID(0), device.GPUID(1)))
	if err != nil {
		t.Fatal(err)
	}
	if b := job.Binding(); b.Len() != 2 || b.Total() != 32 {
		t.Fatalf("binding %v, want 2 vnodes totalling 32", b)
	}
	eng.RunUntil(5 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.CrashErr)
	}
	if job.Iterations < 5 {
		t.Fatalf("elastic job completed %d iterations in 5s, want >= 5", job.Iterations)
	}
	if machine.GPU(0).BusyTime() == 0 || machine.GPU(1).BusyTime() == 0 {
		t.Fatalf("both GPUs should compute shards: busy %v / %v",
			machine.GPU(0).BusyTime(), machine.GPU(1).BusyTime())
	}
	// Two identical V100s should get an even split.
	if s0, s1 := job.Binding().Node(0).Share, job.Binding().Node(1).Share; s0 != 16 || s1 != 16 {
		t.Fatalf("shares (%d, %d), want (16, 16)", s0, s1)
	}
}

func TestElasticJobOutpacesSingleDevice(t *testing.T) {
	run := func(devs ...device.ID) int {
		eng, _, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
		cfg := trainCfg(t, "train", "ResNet50", 32, 1, devs[0])
		if len(devs) > 1 {
			cfg.VNodes = devs
		}
		job, err := m.AddJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(20 * time.Second)
		if job.Crashed() {
			t.Fatalf("job crashed: %v", job.CrashErr)
		}
		return job.Iterations
	}
	single := run(device.GPUID(0))
	split := run(device.GPUID(0), device.GPUID(1))
	if split <= single {
		t.Fatalf("two-GPU elastic job did %d iterations vs %d on one GPU; splitting should win",
			split, single)
	}
}

func TestElasticGrowAndShrink(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
	job, err := m.AddJob(elasticCfg(t, "train", "ResNet50", 32, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	var rec obs.Recorder
	m.EventBus().Subscribe(&rec, obs.KindResize, obs.KindBind)

	eng.RunUntil(3 * time.Second)
	atGrow := job.Iterations
	if err := m.Resize(job, 2); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(8 * time.Second)
	if job.Binding().Len() != 2 {
		t.Fatalf("binding %v after grow, want 2 vnodes", job.Binding())
	}
	if !job.Binding().Uses(device.GPUID(1)) {
		t.Fatalf("grow should extend onto gpu:1, got %v", job.Binding())
	}
	if job.Iterations <= atGrow {
		t.Fatal("no progress after grow")
	}
	if job.Restarts != 0 {
		t.Fatalf("grow restarted the job %d times", job.Restarts)
	}

	if err := m.Resize(job, 1); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(12 * time.Second)
	if job.Binding().Len() != 1 {
		t.Fatalf("binding %v after shrink, want 1 vnode", job.Binding())
	}
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.CrashErr)
	}

	var grows, shrinks int
	for _, e := range rec.Events() {
		if e.Kind == obs.KindResize {
			switch e.Name {
			case "grow":
				grows++
			case "shrink":
				shrinks++
			}
		}
	}
	if grows != 1 || shrinks != 1 {
		t.Fatalf("resize events grow=%d shrink=%d, want 1/1", grows, shrinks)
	}
}

func TestElasticResizeValidation(t *testing.T) {
	_, _, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
	ej, err := m.AddJob(elasticCfg(t, "elastic", "MobileNetV2", 8, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	lj, err := m.AddJob(trainCfg(t, "legacy", "MobileNetV2", 8, 1, device.GPUID(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Resize(lj, 2); err == nil {
		t.Fatal("resizing a legacy job should fail")
	}
	if err := m.Resize(ej, 0); err == nil {
		t.Fatal("resizing to 0 vnodes should fail")
	}
	if err := m.Resize(ej, 9); err == nil {
		t.Fatal("more vnodes than batch samples should fail")
	}
	if err := m.RebindJob(lj, 0, device.GPUID(0)); err == nil {
		t.Fatal("rebinding a legacy job should fail")
	}
	if err := m.RebindJob(ej, 5, device.GPUID(1)); err == nil {
		t.Fatal("rebinding an out-of-range vnode should fail")
	}
}

func TestDrainRebindsElasticJobWithoutRestart(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
	job, err := m.AddJob(elasticCfg(t, "train", "ResNet50", 32, 1,
		device.GPUID(0), device.GPUID(1)))
	if err != nil {
		t.Fatal(err)
	}
	var rec obs.Recorder
	m.EventBus().Subscribe(&rec, obs.KindRebind)

	eng.RunUntil(3 * time.Second)
	atDrain := job.Iterations
	if err := m.DrainDevice(device.GPUID(0)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)

	if job.Crashed() {
		t.Fatalf("job crashed during drain: %v", job.CrashErr)
	}
	if job.Binding().Uses(device.GPUID(0)) {
		t.Fatalf("binding %v still uses the drained gpu:0", job.Binding())
	}
	if job.Iterations <= atDrain {
		t.Fatal("no progress after drain rebind")
	}
	if job.Restarts != 0 {
		t.Fatalf("drain restarted the job %d times; rebind must be restart-free", job.Restarts)
	}
	if !machine.GPU(0).Draining() {
		t.Fatal("gpu:0 should be marked draining")
	}
	var rebinds int
	for _, e := range rec.Events() {
		if e.Kind == obs.KindRebind && e.Name == "drain" {
			rebinds++
		}
	}
	if rebinds == 0 {
		t.Fatal("no drain rebind events emitted")
	}

	busyAtDrain := machine.GPU(0).BusyTime()
	eng.RunUntil(15 * time.Second)
	if got := machine.GPU(0).BusyTime(); got != busyAtDrain {
		t.Fatalf("drained GPU kept computing: busy %v -> %v", busyAtDrain, got)
	}
}

func TestDrainMigratesLegacyJob(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3 * time.Second)
	if err := m.DrainDevice(device.GPUID(0)); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed during drain: %v", job.CrashErr)
	}
	if got := m.JobDevice(job); got != device.GPUID(1) {
		t.Fatalf("legacy job on %v after drain, want gpu:1", got)
	}
	if job.Restarts != 0 {
		t.Fatalf("graceful drain restarted the job %d times", job.Restarts)
	}
	if m.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", m.Migrations)
	}
}

func TestDeviceLossHealsElasticJobWithoutRestart(t *testing.T) {
	eng, _, m := newHarness(t, Options{CheckpointEvery: 2 * time.Second},
		device.ClassV100, device.ClassV100)
	job, err := m.AddJob(elasticCfg(t, "train", "ResNet50", 32, 1,
		device.GPUID(0), device.GPUID(1)))
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	p.LoseGPU(5*time.Second, 0)
	in := fault.NewInjector(eng, m.machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(5*time.Second + time.Millisecond)
	atLoss := job.Iterations

	eng.RunUntil(20 * time.Second)
	if job.Crashed() {
		t.Fatalf("elastic job crashed on device loss: %v", job.CrashErr)
	}
	if job.Binding().Uses(device.GPUID(0)) {
		t.Fatalf("binding %v still uses the lost gpu:0", job.Binding())
	}
	if job.Iterations <= atLoss {
		t.Fatalf("no progress after healing: %d at loss, %d at end", atLoss, job.Iterations)
	}
	if job.Restarts != 0 {
		t.Fatalf("Restarts = %d; replica healing must not restart", job.Restarts)
	}
	if m.RecoveryLatencies.Count() != 1 {
		t.Fatalf("recovery latencies recorded %d times, want 1", m.RecoveryLatencies.Count())
	}
}

func TestDeviceLossCrashesElasticJobWithNoTargets(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(elasticCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	p.LoseGPU(2*time.Second, 0)
	in := fault.NewInjector(eng, m.machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(10 * time.Second)
	if !job.Crashed() {
		t.Fatal("single-GPU elastic job survived losing its only device")
	}
	if m.FaultCounters().JobsLost != 1 {
		t.Fatalf("JobsLost = %d, want 1", m.FaultCounters().JobsLost)
	}
}

func TestElasticPreemptionSuspendsOnlyContendedShard(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
	low, err := m.AddJob(elasticCfg(t, "low", "ResNet50", 32, 1,
		device.GPUID(0), device.GPUID(1)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second)
	hi, err := m.AddJob(trainCfg(t, "hi", "MobileNetV2", 16, 9, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(12 * time.Second)
	if low.Crashed() || hi.Crashed() {
		t.Fatalf("crash: low=%v hi=%v", low.CrashErr, hi.CrashErr)
	}
	if hi.Iterations == 0 {
		t.Fatal("high-priority job never ran on the contended GPU")
	}
	if low.Iterations == 0 {
		t.Fatal("elastic victim made no progress at all")
	}
	if m.Preemptions == 0 {
		t.Fatal("no preemption recorded")
	}
	if machine.GPU(1).BusyTime() == 0 {
		t.Fatal("uncontended sibling shard never computed")
	}
	// The binding must be untouched: preemption never rebinds.
	if b := low.Binding(); b.Len() != 2 || !b.Uses(device.GPUID(0)) || !b.Uses(device.GPUID(1)) {
		t.Fatalf("preemption changed the binding: %v", b)
	}
}

func TestElasticTransientHealsFromSiblingReplica(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
	job, err := m.AddJob(elasticCfg(t, "train", "ResNet50", 32, 1,
		device.GPUID(0), device.GPUID(1)))
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	p.Transient(4*time.Second, 0)
	in := fault.NewInjector(eng, m.machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(20 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.CrashErr)
	}
	if job.Restarts != 0 {
		t.Fatalf("Restarts = %d; a sibling replica should heal transients without restart", job.Restarts)
	}
	if m.RecoveryLatencies.Count() != 1 {
		t.Fatalf("recovery latencies recorded %d times, want 1", m.RecoveryLatencies.Count())
	}
	if job.Iterations < 5 {
		t.Fatalf("only %d iterations after transient healing", job.Iterations)
	}
}

func TestElasticRejectsGroupMembership(t *testing.T) {
	_, _, m := newHarness(t, Options{}, device.ClassV100)
	a := trainCfg(t, "a", "MobileNetV2", 8, 1, device.GPUID(0))
	a.VNodes = []device.ID{device.GPUID(0)}
	b := trainCfg(t, "b", "MobileNetV2", 8, 1, device.GPUID(0))
	if _, _, err := m.AddSharedGroup([]workload.Config{a, b}); err == nil {
		t.Fatal("shared group accepted an elastic member")
	}
}
