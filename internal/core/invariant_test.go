package core

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/trace"
	"switchflow/internal/workload"
)

// TestInvariant1NoGPUCoRun verifies scheduling invariant 1 (§3.4)
// end-to-end: with several mixed jobs collocated on one GPU, kernels from
// different jobs never execute simultaneously. Verified against the
// device's own kernel timeline, not the scheduler's bookkeeping.
func TestInvariant1NoGPUCoRun(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100)
	tl := &trace.Timeline{}
	tl.AttachBus(machine.Bus())

	if _, err := m.AddJob(trainCfg(t, "t1", "ResNet50", 16, 1, device.GPUID(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddJob(trainCfg(t, "t2", "MobileNetV2", 16, 1, device.GPUID(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddJob(workload.Config{
		Name: "serve", Model: spec(t, "InceptionV3"), Batch: 1,
		Kind: workload.KindServing, Priority: 2, Device: device.GPUID(0),
		ArrivalEvery: 150 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)

	ctxs := tl.Contexts()
	if len(ctxs) < 3 {
		t.Fatalf("only %d contexts ran kernels", len(ctxs))
	}
	for i, a := range ctxs {
		for _, b := range ctxs[i+1:] {
			if overlap := tl.OverlapTime(a, b) + tl.OverlapTime(b, a); overlap != 0 {
				t.Errorf("ctx %d and %d kernels overlapped for %v (invariant 1 violated)",
					a, b, overlap)
			}
		}
	}
}

// TestInvariant1ViolatedWhenDisabled checks that the ablation really does
// let GPU executors co-run — the overlap instrument is not vacuous.
func TestInvariant1ViolatedWhenDisabled(t *testing.T) {
	eng, machine, m := newHarness(t, Options{DisableGPUExclusive: true}, device.ClassV100)
	tl := &trace.Timeline{}
	tl.AttachBus(machine.Bus())
	if _, err := m.AddJob(trainCfg(t, "t1", "MobileNetV2", 16, 1, device.GPUID(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddJob(trainCfg(t, "t2", "MobileNetV2", 16, 1, device.GPUID(0))); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second)
	ctxs := tl.Contexts()
	if len(ctxs) != 2 {
		t.Fatalf("contexts = %v", ctxs)
	}
	// Light kernels from two streams admit together once exclusivity is
	// off; some overlap must appear.
	if overlap := tl.OverlapTime(ctxs[0], ctxs[1]) + tl.OverlapTime(ctxs[1], ctxs[0]); overlap == 0 {
		t.Error("no overlap even with exclusivity disabled")
	}
}

// scenarioOutcome captures everything observable about a run.
type scenarioOutcome struct {
	trainIters  int
	serveCount  int
	serveP95    time.Duration
	preemptions int
	migrations  int
	busy        time.Duration
	finalNow    time.Duration
}

func runScenario(t *testing.T) scenarioOutcome {
	t.Helper()
	eng, machine, m := newHarness(t, Options{}, device.ClassRTX2080Ti, device.ClassGTX1080Ti)
	train, err := m.AddJob(workload.Config{
		Name: "train", Model: spec(t, "ResNet50"), Batch: 32,
		Kind: workload.KindTraining, Priority: 1, Device: device.GPUID(0),
		Fallbacks: []device.ID{device.GPUID(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second)
	serve, err := m.AddJob(workload.Config{
		Name: "serve", Model: spec(t, "MobileNetV2"), Batch: 1,
		Kind: workload.KindServing, Priority: 2, Device: device.GPUID(0),
		ClosedLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)
	return scenarioOutcome{
		trainIters:  train.Iterations,
		serveCount:  serve.Latencies.Count(),
		serveP95:    serve.Latencies.Percentile(95),
		preemptions: m.Preemptions,
		migrations:  m.Migrations,
		busy:        machine.GPU(0).BusyTime(),
		finalNow:    eng.Now(),
	}
}

// TestDeterminism: the whole stack — engine, devices, pools, scheduler —
// is deterministic: two identical runs produce bit-identical outcomes.
func TestDeterminism(t *testing.T) {
	a := runScenario(t)
	b := runScenario(t)
	if a != b {
		t.Fatalf("two identical runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
}

// TestMigrationSkipsFullFallback: failure injection — when the fallback
// GPU has no room for the victim's weights, the victim stays and waits
// instead of crashing.
func TestMigrationSkipsFullFallback(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassRTX2080Ti, device.ClassGTX1080Ti)
	// Fill gpu:1 almost completely.
	filler := machine.GPU(1).Mem.Capacity() - (100 << 20)
	if err := machine.GPU(1).Mem.Alloc(filler); err != nil {
		t.Fatal(err)
	}
	low, err := m.AddJob(workload.Config{
		Name: "low", Model: spec(t, "ResNet50"), Batch: 16,
		Kind: workload.KindTraining, Priority: 1, Device: device.GPUID(0),
		Fallbacks: []device.ID{device.GPUID(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second)
	if _, err := m.AddJob(trainCfg(t, "high", "MobileNetV2", 16, 2, device.GPUID(0))); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(20 * time.Second)
	if low.Crashed() {
		t.Fatalf("victim crashed: %v", low.CrashErr)
	}
	if got := m.JobDevice(low); got != device.GPUID(0) {
		t.Fatalf("victim on %v, want to stay on gpu:0 (fallback full)", got)
	}
	if m.Migrations != 0 {
		t.Fatalf("migrations = %d, want 0", m.Migrations)
	}
	if low.Iterations == 0 {
		t.Fatal("staying victim made no progress")
	}
}

// TestCheckpointPreemptionRoundTrip: under checkpoint preemption the
// victim's state leaves the GPU after the grant and returns before its
// next iteration, and progress continues.
func TestCheckpointPreemptionRoundTrip(t *testing.T) {
	eng, machine, m := newHarness(t, Options{CheckpointPreemption: true}, device.ClassV100)
	train, err := m.AddJob(trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second)
	serve, err := m.AddJob(workload.Config{
		Name: "serve", Model: spec(t, "MobileNetV2"), Batch: 1,
		Kind: workload.KindServing, Priority: 2, Device: device.GPUID(0),
		ArrivalEvery: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(15 * time.Second)
	if m.Preemptions == 0 {
		t.Fatal("no checkpoint preemptions")
	}
	if serve.Latencies.Count() == 0 {
		t.Fatal("no requests served")
	}
	if train.Iterations < 5 {
		t.Fatalf("training stalled at %d iterations", train.Iterations)
	}
	if train.Crashed() {
		t.Fatalf("training crashed: %v", train.CrashErr)
	}
	// The checkpoint transfers must have moved real bytes both ways.
	if machine.DeviceToHost(0).Transferred() < train.WeightBytes() {
		t.Error("no checkpoint-out transfer observed")
	}
	if machine.HostToDevice(0).Transferred() < train.WeightBytes() {
		t.Error("no restore transfer observed")
	}
}
