package core

import (
	"errors"
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/fault"
)

func TestDeviceLossMigratesJobToFallback(t *testing.T) {
	eng, machine, m := newHarness(t, Options{CheckpointEvery: 2 * time.Second},
		device.ClassV100, device.ClassV100)
	cfg := trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0))
	cfg.Fallbacks = []device.ID{device.GPUID(1)}
	job, err := m.AddJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	p.LoseGPU(5*time.Second, 0)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(5*time.Second + time.Millisecond)
	atLoss := job.Iterations

	eng.RunUntil(20 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed instead of migrating: %v", job.CrashErr)
	}
	if got := m.JobDevice(job); got != device.GPUID(1) {
		t.Fatalf("job on %v after device loss, want gpu:1", got)
	}
	if job.Iterations <= atLoss {
		t.Fatalf("no progress after migration: %d iterations at loss, %d at end",
			atLoss, job.Iterations)
	}
	if job.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", job.Restarts)
	}
	if m.FaultCounters().DeviceLost != 1 || m.FaultCounters().Migrations != 1 || m.FaultCounters().JobsLost != 0 {
		t.Fatalf("fault counters = %+v", m.FaultCounters())
	}
	if m.FaultCounters().Checkpoints == 0 {
		t.Fatal("periodic checkpointing never ran")
	}
	if m.RecoveryLatencies.Count() != 1 {
		t.Fatalf("recovery latencies recorded %d times, want 1", m.RecoveryLatencies.Count())
	}
}

func TestDeviceLossWithoutFallbackCrashesJob(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	p.LoseGPU(2*time.Second, 0)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(10 * time.Second)
	if !job.Crashed() {
		t.Fatal("job without fallbacks survived a device loss")
	}
	if !errors.Is(job.CrashErr, fault.ErrDeviceLost) {
		t.Fatalf("crash error = %v, want wrapped ErrDeviceLost", job.CrashErr)
	}
	if m.FaultCounters().JobsLost != 1 {
		t.Fatalf("JobsLost = %d, want 1", m.FaultCounters().JobsLost)
	}
}

func TestTransientRestartsFromCheckpoint(t *testing.T) {
	eng, machine, m := newHarness(t, Options{CheckpointEvery: time.Second}, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	p.Transient(3*time.Second, 0)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(3*time.Second + time.Millisecond)
	atFault := job.Iterations

	eng.RunUntil(15 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed on a transient fault: %v", job.CrashErr)
	}
	if job.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", job.Restarts)
	}
	if job.Iterations <= atFault {
		t.Fatalf("no progress after restart: %d at fault, %d at end", atFault, job.Iterations)
	}
	if m.FaultCounters().Transients != 1 || m.FaultCounters().JobsLost != 0 {
		t.Fatalf("fault counters = %+v", m.FaultCounters())
	}
	// The rollback re-runs the iterations since the last 1s checkpoint.
	if m.FaultCounters().IterationsLost == 0 {
		t.Fatal("transient rollback lost no iterations despite mid-interval fault")
	}
}

func TestTransientWithoutCheckpointsRestartsFromZero(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "MobileNetV2", 32, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	p.Transient(3*time.Second, 0)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(3*time.Second + 10*time.Millisecond)
	if got := job.Iterations; got != 0 {
		t.Fatalf("iterations = %d right after uncheckpointed transient, want rollback to 0", got)
	}
	eng.RunUntil(15 * time.Second)
	if job.Crashed() || job.Iterations == 0 {
		t.Fatalf("job did not recover: crashed=%v iterations=%d", job.Crashed(), job.Iterations)
	}
}

func TestInputStallPausesWithoutKillingJobs(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	p.StallInputs(2*time.Second, 3*time.Second)
	in := fault.NewInjector(eng, machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(10 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed during input stall: %v", job.CrashErr)
	}
	if m.FaultCounters().InputStalls != 1 {
		t.Fatalf("InputStalls = %d, want 1", m.FaultCounters().InputStalls)
	}
	stalled := job.Iterations
	// The stall must cost throughput versus an undisturbed run.
	eng2, _, m2 := newHarness(t, Options{}, device.ClassV100)
	clean, err := m2.AddJob(trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng2.RunUntil(10 * time.Second)
	if stalled >= clean.Iterations {
		t.Fatalf("stalled run (%d iterations) not slower than clean run (%d)",
			stalled, clean.Iterations)
	}
}

func TestExponentialBackoffUnderRepeatedTransients(t *testing.T) {
	eng, machine, m := newHarness(t, Options{CheckpointEvery: time.Second}, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	var p fault.Plan
	for i := 1; i <= 4; i++ {
		p.Transient(time.Duration(i)*5*time.Second, 0)
	}
	in := fault.NewInjector(eng, machine, p)
	in.Attach(m)
	in.Arm()

	eng.RunUntil(40 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.CrashErr)
	}
	if job.Restarts != 4 {
		t.Fatalf("Restarts = %d, want 4", job.Restarts)
	}
	if job.Iterations == 0 {
		t.Fatal("job made no progress across four restarts")
	}
}
