package core

import (
	"fmt"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/executor"
	"switchflow/internal/obs"
	"switchflow/internal/vnode"
	"switchflow/internal/workload"
)

// This file drives elastic jobs — jobs admitted with Config.VNodes, whose
// batch is split across virtual nodes by internal/vnode (VirtualFlow,
// arXiv:2009.09523). One training step preprocesses the global batch
// once, then fans a share-sized shard out to every bound device; the step
// completes when all shards do, so heterogeneous shares (priced by
// internal/cost) finish together. The binding is runtime state: Resize,
// RebindJob and DrainDevice re-split it, and every mutation lands at an
// epoch-safe point — between steps, with no shard in flight — via the
// job's pending-op queue. Each distinct bound device holds a full
// data-parallel weight replica, which is what makes zero-restart healing
// possible: losing one device re-seeds its replacement from a surviving
// replica instead of rolling back to a checkpoint.

// shardState is the scheduler-side state of one virtual node.
type shardState struct {
	idx     int
	dev     device.ID
	share   int
	holding bool
	waiting bool
	// preempting gates the shard between Suspend and its drain callback.
	preempting bool
	run        *executor.Run
	scratch    int64
	done       bool
}

// rebuildShards derives fresh shard states from the job's binding. Only
// call at epoch-safe points: any in-flight run must be discarded first.
func (m *Manager) rebuildShards(js *jobState) {
	b := js.job.Binding()
	js.shards = make([]*shardState, b.Len())
	for i := 0; i < b.Len(); i++ {
		n := b.Node(i)
		js.shards[i] = &shardState{idx: i, dev: n.Device, share: n.Share}
	}
}

// pumpShards advances an elastic job's compute side: apply pending
// binding ops between steps, begin the next step when an input is ready,
// and drive every shard toward its device grant.
func (m *Manager) pumpShards(js *jobState) {
	if !js.weightsReady || js.restoring {
		return
	}
	if js.shards == nil {
		m.rebuildShards(js)
	}
	if !js.job.ComputeRunning {
		if m.applyPendingOps(js) {
			// Ops re-split the binding; every op path re-pumps when its
			// transfers land (or pumped inline), so this pass is done.
			m.pump(js)
			return
		}
		if js.stopped || js.job.Crashed() || !js.weightsReady {
			return
		}
		if !js.job.InputAvailable() {
			return
		}
		js.job.BeginCompute()
		for _, sh := range js.shards {
			sh.done = false
		}
	}
	if js.job.Gang() {
		m.pumpGangShards(js)
		return
	}
	for _, sh := range js.shards {
		m.pumpShard(js, sh)
	}
}

// pumpShard drives one shard: CPU shards launch freely; GPU shards
// acquire their device's arbiter first (invariant 1 applies per device).
func (m *Manager) pumpShard(js *jobState, sh *shardState) {
	if sh.done || sh.preempting {
		return
	}
	if sh.run != nil && !sh.run.Suspended() {
		return // executing
	}
	if sh.dev.Kind != device.KindGPU || m.opts.DisableGPUExclusive {
		m.startShard(js, sh)
		return
	}
	if sh.holding {
		m.startShard(js, sh)
		return
	}
	if sh.waiting {
		return
	}
	sh.waiting = true
	js.acquiredAt = m.eng.Now()
	m.acquire(sh.dev.Index, js, func() {
		sh.waiting = false
		sh.holding = true
		m.startShard(js, sh)
	})
}

// startShard launches (or resumes) the shard's share-sized compute run on
// its bound device.
func (m *Manager) startShard(js *jobState, sh *shardState) {
	if sh.run != nil && sh.run.Suspended() {
		n := js.job.VNodeScratchBytes(sh.idx)
		if err := js.job.AllocScratchBytes(sh.dev, n); err != nil {
			js.job.Crash(err)
			m.emitJobLost(js, sh.dev, "scratch alloc failed")
			m.releaseShard(sh)
			return
		}
		sh.scratch = n
		m.bus.Emit(obs.Event{
			Kind:   obs.KindResume,
			Ctx:    js.job.Ctx,
			Job:    js.job.Cfg.Name,
			Device: sh.dev.String(),
		})
		sh.run.Resume()
		return
	}
	v, err := js.job.VNodeVersion(sh.idx)
	if err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, sh.dev, "no graph version")
		m.releaseShard(sh)
		return
	}
	n := js.job.VNodeScratchBytes(sh.idx)
	if err := js.job.AllocScratchBytes(sh.dev, n); err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, sh.dev, "scratch alloc failed")
		m.releaseShard(sh)
		return
	}
	sh.scratch = n
	cfg := executor.Config{Pool: m.poolFor(js), Stream: js.job.Stream(sh.dev)}
	run, err := js.job.StartExec(v.Compute, cfg, func() { m.finishShard(js, sh) })
	if err != nil {
		js.job.Crash(err)
		m.emitJobLost(js, sh.dev, "compute start failed")
		js.job.FreeScratchBytes(sh.dev, sh.scratch)
		sh.scratch = 0
		m.releaseShard(sh)
		return
	}
	sh.run = run
}

// finishShard retires one shard; the last one home completes the step.
func (m *Manager) finishShard(js *jobState, sh *shardState) {
	sh.run = nil
	js.job.FreeScratchBytes(sh.dev, sh.scratch)
	sh.scratch = 0
	sh.done = true
	m.releaseShard(sh)
	for _, s := range js.shards {
		if !s.done {
			return
		}
	}
	if js.job.Gang() && len(js.shards) > 1 {
		// Data-parallel replicas meet at the step barrier: the step commits
		// only after the priced all-reduce (gang.go).
		m.finishGangStep(js)
		return
	}
	js.job.FinishCompute()
	// Regaining a full step across all shards completes any pending
	// "stay" preemption recovery: back to the global pool.
	js.inTempPool = false
	m.pump(js)
}

func (m *Manager) releaseShard(sh *shardState) {
	if !sh.holding {
		return
	}
	sh.holding = false
	m.release(sh.dev.Index)
}

// preemptShard is the elastic arm of preemption: only the shard holding
// the contended GPU is suspended; sibling shards on other devices keep
// computing. The victim shard stays and waits for a re-grant — rebinding
// is an explicit control-plane decision, never a preemption side effect.
func (m *Manager) preemptShard(gpu int, victim *jobState) {
	var sh *shardState
	for _, s := range victim.shards {
		if s.holding && s.dev.Kind == device.KindGPU && s.dev.Index == gpu {
			sh = s
			break
		}
	}
	if sh == nil || sh.preempting {
		return
	}
	sh.preempting = true
	m.Preemptions++
	m.emitPreempt(gpu, victim, "abort")
	if !m.opts.DisableTempPoolIsolation {
		victim.inTempPool = true
	}
	epoch := victim.epoch
	finish := func() {
		if victim.epoch != epoch {
			return // a fault re-split the binding while kernels drained
		}
		victim.job.FreeScratchBytes(sh.dev, sh.scratch)
		sh.scratch = 0
		sh.preempting = false
		m.releaseShard(sh)
		m.pump(victim)
	}
	if sh.run != nil {
		sh.run.Suspend(finish)
		return
	}
	m.eng.After(0, finish)
}

// queueOp schedules a binding mutation for the job's next epoch-safe
// point. Between steps it applies immediately; mid-step it waits for the
// step (or the legacy iteration) to complete.
func (m *Manager) queueOp(js *jobState, op func()) {
	if js.job.Elastic() {
		js.pendingOps = append(js.pendingOps, op)
		m.pump(js)
		return
	}
	if js.job.ComputeRunning || js.computeRun != nil || js.preempting || js.restoring {
		js.pendingOps = append(js.pendingOps, op)
		return
	}
	op()
}

// applyPendingOps runs queued binding ops while the job sits at an
// epoch-safe point; it reports whether any op ran.
func (m *Manager) applyPendingOps(js *jobState) bool {
	ran := false
	for len(js.pendingOps) > 0 && !js.job.ComputeRunning &&
		!js.stopped && !js.job.Crashed() {
		op := js.pendingOps[0]
		js.pendingOps = js.pendingOps[1:]
		op()
		ran = true
	}
	return ran
}

// Resize grows or shrinks a running elastic job to n virtual nodes at
// its next epoch-safe point, re-splitting the batch without a restart.
// New vnodes prefer placeable GPUs not yet in the binding (in index
// order), then time-multiplex the existing set; shrinking drops the
// highest-indexed vnodes and frees replicas on devices left unused.
func (m *Manager) Resize(job *workload.Job, n int) error {
	js := m.stateOf(job)
	if js == nil {
		return fmt.Errorf("core: resize: unknown job")
	}
	if !job.Elastic() {
		return fmt.Errorf("core: resize: job %q was not admitted with virtual nodes", job.Cfg.Name)
	}
	if n < 1 {
		return fmt.Errorf("core: resize: vnode count must be >= 1, got %d", n)
	}
	if n > job.Cfg.Batch {
		return fmt.Errorf("core: resize: %d vnodes exceed batch %d (each needs >= 1 sample)", n, job.Cfg.Batch)
	}
	m.queueOp(js, func() { m.applyResize(js, n) })
	return nil
}

func (m *Manager) applyResize(js *jobState, n int) {
	b := js.job.Binding()
	if n == b.Len() {
		return
	}
	devs := b.DeviceList()
	if n < len(devs) {
		devs = devs[:n]
	} else {
		base := len(devs)
		for i := range m.machine.GPUs {
			if len(devs) >= n {
				break
			}
			d := device.GPUID(i)
			if m.machine.Placeable(d) && !b.Uses(d) {
				devs = append(devs, d)
			}
		}
		for len(devs) < n {
			devs = append(devs, devs[(len(devs)-base)%base])
		}
	}
	// A failed grow leaves the old binding in force; the error surfaced at
	// Resize-call time for everything checkable there.
	_ = m.applyBinding(js, devs, "resize", nil)
}

// RebindJob moves virtual node i of a running elastic job onto dev at
// the job's next epoch-safe point.
func (m *Manager) RebindJob(job *workload.Job, i int, dev device.ID) error {
	js := m.stateOf(job)
	if js == nil {
		return fmt.Errorf("core: rebind: unknown job")
	}
	if !job.Elastic() {
		return fmt.Errorf("core: rebind: job %q was not admitted with virtual nodes", job.Cfg.Name)
	}
	if i < 0 || i >= job.Binding().Len() {
		return fmt.Errorf("core: rebind: vnode %d out of range (%d vnodes)", i, job.Binding().Len())
	}
	if dev.Kind != device.KindGPU || m.machine.GPU(dev.Index) == nil {
		return fmt.Errorf("core: rebind: no such GPU %v", dev)
	}
	if !m.machine.Placeable(dev) {
		return fmt.Errorf("core: rebind: %v is not placeable (failed or draining)", dev)
	}
	m.queueOp(js, func() { m.applyRebindVNode(js, i, dev) })
	return nil
}

func (m *Manager) applyRebindVNode(js *jobState, i int, dev device.ID) {
	b := js.job.Binding()
	if i >= b.Len() || b.Node(i).Device == dev {
		return // the binding changed under the queued op; nothing to do
	}
	devs := b.DeviceList()
	devs[i] = dev
	_ = m.applyBinding(js, devs, "rebind", nil)
}

// DrainDevice marks the GPU as draining and moves every bound virtual
// node off it at each owning job's next epoch-safe point. Elastic jobs
// rebind (paying at most a peer-path replica copy, restart counter
// untouched); legacy single-vnode jobs migrate gracefully through the
// same machinery preemption migration uses. Jobs with nowhere to go keep
// running on the draining device — drain is administrative, not a fault.
func (m *Manager) DrainDevice(dev device.ID) error {
	if dev.Kind != device.KindGPU || dev.Index < 0 || dev.Index >= len(m.machine.GPUs) {
		return fmt.Errorf("core: drain: no such GPU %v", dev)
	}
	m.machine.GPU(dev.Index).SetDraining(true)
	for _, js := range m.jobs {
		js := js
		if js.stopped || js.job.Crashed() {
			continue
		}
		if js.job.Elastic() {
			if js.job.Binding().Uses(dev) {
				m.queueOp(js, func() { m.applyDrainRebind(js, dev) })
			}
			continue
		}
		if js.current == dev {
			m.queueOp(js, func() { m.applyDrainMigrate(js, dev) })
		}
	}
	return nil
}

// UndrainDevice clears the drain mark, making the GPU placeable again.
// Bindings moved away by a drain do not move back automatically.
func (m *Manager) UndrainDevice(dev device.ID) error {
	if dev.Kind != device.KindGPU || dev.Index < 0 || dev.Index >= len(m.machine.GPUs) {
		return fmt.Errorf("core: undrain: no such GPU %v", dev)
	}
	m.machine.GPU(dev.Index).SetDraining(false)
	return nil
}

func (m *Manager) applyDrainRebind(js *jobState, dev device.ID) {
	b := js.job.Binding()
	if !b.Uses(dev) {
		return // a fault (or an earlier op) already moved it
	}
	targets := m.rebindTargets(js, dev)
	if len(targets) == 0 {
		return // nowhere to go; stay on the draining device
	}
	devs := b.DeviceList()
	k := 0
	for i, d := range devs {
		if d == dev {
			devs[i] = targets[k%len(targets)]
			k++
		}
	}
	_ = m.applyBinding(js, devs, "drain", nil)
}

func (m *Manager) applyDrainMigrate(js *jobState, from device.ID) {
	if js.current != from || js.stopped || js.job.Crashed() {
		return
	}
	to, ok := m.drainMigrateTarget(js, from)
	if !ok {
		return // nowhere to go; stay on the draining device
	}
	m.purgeRequests(js)
	m.releaseFrom(js)
	m.migrate(js, from, to, "drain", nil)
}

// drainMigrateTarget picks where a legacy job leaves a draining device:
// the first placeable configured fallback with room, else any placeable
// GPU with room (drain is operator-driven, so liberality beats stalling).
func (m *Manager) drainMigrateTarget(js *jobState, from device.ID) (device.ID, bool) {
	fits := func(d device.ID) bool {
		if d == from || !m.machine.Placeable(d) {
			return false
		}
		if d.Kind == device.KindGPU {
			gpu := m.machine.GPU(d.Index)
			if gpu == nil || gpu.Mem.Available() < js.job.WeightBytes() {
				return false
			}
		}
		return true
	}
	for _, d := range js.job.Cfg.Fallbacks {
		if fits(d) {
			return d, true
		}
	}
	for i := range m.machine.GPUs {
		if d := device.GPUID(i); fits(d) {
			return d, true
		}
	}
	return device.ID{}, false
}

// rebindTargets lists where displaced vnodes may go, in preference
// order: devices already in the binding (a replica is resident — zero
// transfer), then configured GPU fallbacks, then any placeable GPU.
// The excluded device never appears.
func (m *Manager) rebindTargets(js *jobState, exclude device.ID) []device.ID {
	var out []device.ID
	add := func(d device.ID) {
		if d == exclude || d.Kind != device.KindGPU || !m.machine.Placeable(d) {
			return
		}
		for _, e := range out {
			if e == d {
				return
			}
		}
		out = append(out, d)
	}
	for _, d := range js.job.Binding().Devices() {
		add(d)
	}
	for _, d := range js.job.Cfg.Fallbacks {
		add(d)
	}
	for i := range m.machine.GPUs {
		add(device.GPUID(i))
	}
	return out
}

// applyBinding commits a re-split binding at an epoch-safe point: it
// prices the new shares, diffs the replica sets, seeds new devices from
// a surviving replica over the cheap copy path (host restore when no
// replica survives), frees replicas on devices left unused, emits the
// bind/rebind/resize events, and re-pumps when the job is ready.
// onReady, when non-nil, fires once the new binding is runnable.
func (m *Manager) applyBinding(js *jobState, devs []device.ID, reason string, onReady func()) error {
	job := js.job
	old := job.Binding()
	nb, err := vnode.Split(job.Cfg.Batch, devs, job.PricerFor(devs))
	if err != nil {
		return err
	}
	newSet := nb.Devices()
	var gains []device.ID
	for _, d := range newSet {
		if !job.WeightsOn(d) {
			gains = append(gains, d)
		}
	}
	// Pre-flight the memory so a failed grow cannot strand the job with a
	// half-committed binding.
	for _, d := range gains {
		if d.Kind != device.KindGPU {
			continue
		}
		gpu := m.machine.GPU(d.Index)
		if gpu == nil || gpu.Failed() {
			return fmt.Errorf("core: %s: rebind target %v is unusable", job.Cfg.Name, d)
		}
		if gpu.Mem.Available() < job.WeightBytes() {
			return fmt.Errorf("core: %s: no room for a weight replica on %v", job.Cfg.Name, d)
		}
	}
	var src device.ID
	hasSrc := false
	for _, d := range old.Devices() {
		if job.WeightsOn(d) && m.machine.Healthy(d) {
			src, hasSrc = d, true
			break
		}
	}
	var drops []device.ID
	for _, d := range old.Devices() {
		keep := false
		for _, nd := range newSet {
			if nd == d {
				keep = true
				break
			}
		}
		if !keep {
			drops = append(drops, d)
		}
	}

	if nb.Len() != old.Len() {
		name := "grow"
		if nb.Len() < old.Len() {
			name = "shrink"
		}
		m.bus.Emit(obs.Event{
			Kind:   obs.KindResize,
			Ctx:    job.Ctx,
			Job:    job.Cfg.Name,
			Device: nb.Node(0).Device.String(),
			Name:   name,
			Count:  nb.Len(),
		})
	}
	for i := 0; i < nb.Len(); i++ {
		if i >= old.Len() {
			m.bus.Emit(obs.Event{
				Kind:   obs.KindBind,
				Ctx:    job.Ctx,
				Job:    job.Cfg.Name,
				Device: nb.Node(i).Device.String(),
				Count:  i,
			})
			continue
		}
		if od := old.Node(i).Device; od != nb.Node(i).Device {
			m.bus.Emit(obs.Event{
				Kind:   obs.KindRebind,
				Ctx:    job.Ctx,
				Job:    job.Cfg.Name,
				From:   od.String(),
				Device: nb.Node(i).Device.String(),
				Name:   reason,
				Count:  i,
			})
		}
	}

	job.SetBinding(nb)
	js.current = nb.Node(0).Device
	m.rebuildShards(js)

	finish := func() {
		for _, d := range drops {
			job.FreeWeights(d)
		}
		js.weightsReady = true
		if onReady != nil {
			onReady()
		}
		m.pump(js)
	}
	if len(gains) == 0 {
		finish()
		return nil
	}
	js.weightsReady = false
	outstanding := len(gains)
	epoch := js.epoch
	bytes := job.WeightBytes()
	tensors := job.Cfg.Model.WeightVars()
	for _, d := range gains {
		if err := job.AllocWeights(d); err != nil {
			// Pre-flight said it fits; failing here means the device model
			// changed underneath the op — treat it as fatal for the job.
			job.Crash(fmt.Errorf("core: %s: replica alloc on %v: %w", job.Cfg.Name, d, err))
			m.emitJobLost(js, d, "replica allocation failed")
			return nil
		}
		done := func() {
			if js.epoch != epoch || js.stopped || job.Crashed() {
				return
			}
			outstanding--
			if outstanding == 0 {
				finish()
			}
		}
		if d.Kind != device.KindGPU {
			m.eng.After(0, done)
			continue
		}
		if hasSrc {
			path, err := m.machine.CopyPath(src, d)
			if err == nil {
				path.Transfer(bytes, tensors, done)
				continue
			}
		}
		m.machine.HostToDevice(d.Index).Transfer(bytes, tensors, done)
	}
	return nil
}

// healElastic is zero-restart fault healing: a lost device takes one
// replica and any in-flight shards with it, but the surviving replicas
// still hold the current weights, so the step is simply redone on a
// re-split binding — no checkpoint rollback, no Restarts increment.
func (m *Manager) healElastic(js *jobState, lost device.ID, faultAt time.Duration) {
	b := js.job.Binding()
	if !b.Uses(lost) {
		return
	}
	js.epoch++
	m.discardStep(js, lost)
	js.restarting, js.restoring = false, false
	targets := m.rebindTargets(js, lost)
	if len(targets) == 0 {
		js.job.Crash(fmt.Errorf("core: %s: device %v lost with no healthy rebind target", js.job.Cfg.Name, lost))
		m.emitJobLost(js, lost, "no healthy rebind target")
		return
	}
	devs := b.DeviceList()
	k := 0
	for i, d := range devs {
		if d == lost {
			devs[i] = targets[k%len(targets)]
			k++
		}
	}
	err := m.applyBinding(js, devs, "fault", func() {
		m.RecoveryLatencies.Add(m.eng.Now() - faultAt)
	})
	if err != nil {
		js.job.Crash(fmt.Errorf("core: %s: heal after losing %v: %w", js.job.Cfg.Name, lost, err))
		m.emitJobLost(js, lost, "rebind failed")
	}
}

// handleElasticTransient recovers an elastic job from a transient
// kernel/ECC fault on dev. With a surviving sibling replica the
// corrupted one is re-seeded over the peer path — again no rollback and
// no restart; a single-replica binding falls back to the legacy
// checkpoint-restart protocol.
func (m *Manager) handleElasticTransient(js *jobState, dev device.ID) {
	js.epoch++
	m.discardStep(js, device.ID{})
	faultAt := m.eng.Now()
	epoch := js.epoch
	var src device.ID
	hasSrc := false
	for _, d := range js.job.Binding().Devices() {
		if d != dev && js.job.WeightsOn(d) && m.machine.Healthy(d) {
			src, hasSrc = d, true
			break
		}
	}
	if hasSrc && js.job.WeightsOn(dev) {
		if path, err := m.machine.CopyPath(src, dev); err == nil {
			js.weightsReady = false
			m.bus.Emit(obs.Event{
				Kind:   obs.KindRestore,
				Ctx:    js.job.Ctx,
				Job:    js.job.Cfg.Name,
				Device: dev.String(),
				From:   src.String(),
				Name:   "replica-sync",
			})
			path.Transfer(js.job.WeightBytes(), js.job.Cfg.Model.WeightVars(), func() {
				if js.epoch != epoch || js.stopped || js.job.Crashed() {
					return
				}
				js.weightsReady = true
				m.RecoveryLatencies.Add(m.eng.Now() - faultAt)
				m.pump(js)
			})
			return
		}
	}
	// Single replica: the corruption takes the only copy, so this is the
	// legacy story — roll back, back off, reload from the host checkpoint.
	js.restarting = true
	js.job.Restarted()
	m.bus.Emit(obs.Event{
		Kind:   obs.KindRestore,
		Ctx:    js.job.Ctx,
		Job:    js.job.Cfg.Name,
		Device: dev.String(),
		Name:   "transient",
		Count:  js.job.RollbackToCheckpoint(),
	})
	backoff := js.job.NextRestartBackoff()
	m.eng.After(backoff, func() {
		if js.epoch != epoch || js.stopped || js.job.Crashed() {
			return
		}
		finish := func() {
			if js.epoch != epoch || js.stopped || js.job.Crashed() {
				return
			}
			js.restarting = false
			m.RecoveryLatencies.Add(m.eng.Now() - faultAt)
			m.pump(js)
		}
		if dev.Kind == device.KindGPU && m.machine.Healthy(dev) {
			m.machine.HostToDevice(dev.Index).Transfer(js.job.WeightBytes(), js.job.Cfg.Model.WeightVars(), finish)
			return
		}
		finish()
	})
}

// discardStep tears down an elastic job's in-flight step: every shard
// run is discarded, scratch freed, grants released (except on lost,
// whose arbiter the fault handler reset wholesale) and queued grant
// requests purged, then the consumed input returns to the ready pool.
func (m *Manager) discardStep(js *jobState, lost device.ID) {
	for _, sh := range js.shards {
		if sh.run != nil {
			sh.run.Discard()
			sh.run = nil
		}
		if sh.scratch > 0 {
			js.job.FreeScratchBytes(sh.dev, sh.scratch)
			sh.scratch = 0
		}
		if sh.holding && sh.dev != lost {
			m.release(sh.dev.Index)
		}
		sh.holding, sh.waiting, sh.preempting, sh.done = false, false, false, false
	}
	for _, arb := range m.arbs {
		kept := arb.queue[:0]
		for _, req := range arb.queue {
			if req.js != js {
				kept = append(kept, req)
			}
		}
		for i := len(kept); i < len(arb.queue); i++ {
			arb.queue[i] = nil
		}
		arb.queue = kept
	}
	if js.job.ComputeRunning {
		js.job.AbandonCompute()
	}
	// A torn-down step also tears down any in-flight gang suspension; the
	// epoch bump above the call site already invalidates its callbacks.
	js.gangPreempting, js.gangSuspended = false, false
}

// stateOf finds the scheduler state of a job.
func (m *Manager) stateOf(job *workload.Job) *jobState {
	for _, js := range m.jobs {
		if js.job == job {
			return js
		}
	}
	return nil
}
