package core

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/workload"
)

// arbiterHarness builds a manager and bare job states for direct
// acquire/release tests.
func arbiterHarness(t *testing.T, prios ...int) (*Manager, []*jobState) {
	t.Helper()
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	_ = eng
	states := make([]*jobState, len(prios))
	for i, prio := range prios {
		cfg := workload.Config{
			Name: "j", Model: spec(t, "MobileNetV2"), Batch: 1,
			Kind: workload.KindServing, Priority: prio, Device: device.GPUID(0),
		}
		job, err := workload.NewJob(m.eng, m.machine, i+1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		states[i] = &jobState{job: job, current: device.GPUID(0), weightsReady: true}
	}
	return m, states
}

func TestArbiterGrantsImmediatelyWhenFree(t *testing.T) {
	m, js := arbiterHarness(t, 1)
	granted := false
	m.acquire(0, js[0], func() { granted = true })
	if !granted {
		t.Fatal("free GPU not granted inline")
	}
}

func TestArbiterFIFOWithinPriorityClass(t *testing.T) {
	m, js := arbiterHarness(t, 1, 1, 1)
	var order []int
	m.acquire(0, js[0], func() {})
	m.acquire(0, js[1], func() { order = append(order, 1) })
	m.acquire(0, js[2], func() { order = append(order, 2) })
	m.release(0)
	m.release(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("grant order %v, want [1 2]", order)
	}
}

func TestArbiterPriorityJumpsQueue(t *testing.T) {
	m, js := arbiterHarness(t, 1, 1, 2)
	m.acquire(0, js[0], func() {})
	var order []string
	m.acquire(0, js[1], func() { order = append(order, "low") })
	m.acquire(0, js[2], func() { order = append(order, "high") })
	// The owner has no compute run, so preemption completes via the
	// deferred finish; run the engine to let it fire.
	m.eng.RunUntil(time.Second)
	if len(order) == 0 || order[0] != "high" {
		t.Fatalf("grant order %v, want high first", order)
	}
	m.release(0)
	if len(order) != 2 || order[1] != "low" {
		t.Fatalf("grant order %v, want [high low]", order)
	}
}

func TestArbiterPreemptsOnlyLowerPriority(t *testing.T) {
	m, js := arbiterHarness(t, 2, 2)
	m.acquire(0, js[0], func() {})
	granted := false
	m.acquire(0, js[1], func() { granted = true })
	m.eng.RunUntil(time.Second)
	if m.Preemptions != 0 {
		t.Fatalf("equal-priority acquire caused %d preemptions", m.Preemptions)
	}
	if granted {
		t.Fatal("equal-priority waiter granted while owner holds")
	}
	m.release(0)
	if !granted {
		t.Fatal("waiter not granted after release")
	}
}
