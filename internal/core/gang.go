package core

// Gang scheduling semantics for synchronous data-parallel jobs (ROADMAP
// item 4): a gang's replicas are elastic shards with two extra
// invariants layered on top of the vnode machinery.
//
//  1. All-or-nothing occupancy: no replica launches until every replica
//     holds its device grant. Grants are acquired one at a time in
//     ascending GPU index order — ordered acquisition means two gangs
//     contending for overlapping GPU sets can never deadlock in a
//     circular hold-and-wait; the gang that wins the lowest contended
//     GPU wins the set.
//
//  2. Gang-wide preemption: displacing any replica suspends the whole
//     gang and releases every grant. A lone suspended replica would
//     stall its siblings at the all-reduce barrier while they hold GPUs
//     the preempter's peers may need — the classic gang-scheduling
//     argument. The displaced gang re-enters through the same ordered
//     acquisition and resumes as one unit (KindGangResume), so no
//     straggler ever computes against a stale step.
//
// The step itself commits only after the replicas meet at the barrier
// and pay the topology-priced ring all-reduce (finishGangStep).

import (
	"sort"

	"switchflow/internal/device"
	"switchflow/internal/obs"
)

// pumpGangShards drives a gang job's step: ordered grant acquisition
// until the whole gang holds, then a simultaneous launch of every
// replica. Called from pumpShards once the step's input is staged.
func (m *Manager) pumpGangShards(js *jobState) {
	if js.gangPreempting {
		return
	}
	allDone := true
	for _, sh := range js.shards {
		if !sh.done {
			allDone = false
			break
		}
	}
	if allDone {
		return // replicas are at the barrier; finishGangStep owns the step
	}
	if !m.opts.DisableGPUExclusive {
		for _, sh := range gangOrder(js.shards) {
			if sh.holding {
				continue
			}
			if sh.waiting {
				return // the queued request will re-pump on grant
			}
			sh.waiting = true
			js.acquiredAt = m.eng.Now()
			m.acquire(sh.dev.Index, js, func() {
				sh.waiting = false
				sh.holding = true
				m.pump(js)
			})
			// One request in flight at a time: holding only
			// lower-indexed GPUs while waiting is what makes the ordered
			// protocol deadlock-free.
			return
		}
	}
	if js.gangSuspended {
		js.gangSuspended = false
		m.bus.Emit(obs.Event{
			Kind:   obs.KindGangResume,
			Ctx:    js.job.Ctx,
			Job:    js.job.Cfg.Name,
			Device: js.shards[0].dev.String(),
			Count:  len(js.shards),
		})
	}
	for _, sh := range js.shards {
		if sh.done || sh.preempting {
			continue
		}
		if sh.run != nil && !sh.run.Suspended() {
			continue // executing
		}
		m.startShard(js, sh)
	}
}

// finishGangStep meets the replicas at the step barrier: gradients ring
// all-reduce across the binding's devices at the fabric-priced cost, and
// only then does the step commit. Grants are already released — the
// collective rides the interconnect, not the SMs, so other jobs may use
// the GPUs during the sync window.
func (m *Manager) finishGangStep(js *jobState) {
	sync := js.job.SyncCost()
	m.bus.Emit(obs.Event{
		Kind:   obs.KindAllReduce,
		Ctx:    js.job.Ctx,
		Job:    js.job.Cfg.Name,
		Device: js.shards[0].dev.String(),
		Dur:    sync,
		Count:  len(js.shards),
	})
	epoch := js.epoch
	m.eng.After(sync, func() {
		if js.epoch != epoch || js.stopped || js.job.Crashed() || !js.job.ComputeRunning {
			return // a fault or stop tore the step down mid-collective
		}
		js.job.FinishCompute()
		js.inTempPool = false
		m.pump(js)
	})
}

// preemptGang is the gang arm of preemption: the whole gang suspends and
// every grant releases, no matter which single GPU was contended.
func (m *Manager) preemptGang(gpu int, victim *jobState) {
	if victim.gangPreempting {
		return
	}
	victim.gangPreempting = true
	victim.gangSuspended = true
	m.Preemptions++
	m.emitPreempt(gpu, victim, "gang")
	m.bus.Emit(obs.Event{
		Kind:   obs.KindGangPreempt,
		Ctx:    victim.job.Ctx,
		Job:    victim.job.Cfg.Name,
		Device: device.GPUID(gpu).String(),
		Count:  len(victim.shards),
	})
	if !m.opts.DisableTempPoolIsolation {
		victim.inTempPool = true
	}
	epoch := victim.epoch
	// The sweep below holds one reference so a synchronous Suspend cannot
	// re-pump before every replica has been visited.
	outstanding := 1
	finishOne := func() {
		outstanding--
		if outstanding > 0 || victim.epoch != epoch {
			return
		}
		victim.gangPreempting = false
		m.pump(victim)
	}
	for _, sh := range victim.shards {
		sh := sh
		if sh.run != nil && !sh.run.Suspended() && !sh.done {
			outstanding++
			sh.preempting = true
			sh.run.Suspend(func() {
				if victim.epoch != epoch {
					return // a fault re-split the binding while kernels drained
				}
				victim.job.FreeScratchBytes(sh.dev, sh.scratch)
				sh.scratch = 0
				sh.preempting = false
				m.releaseShard(sh)
				finishOne()
			})
			continue
		}
		// Replica merely holding (or already done, or still queued): hand
		// the grant back immediately.
		m.releaseShard(sh)
	}
	m.purgeGangRequests(victim)
	m.eng.After(0, finishOne)
}

// purgeGangRequests removes a suspended gang's queued grant requests
// from every arbiter — a grant must not fire into a gang that is being
// displaced — and resets the per-replica waiting flags so re-entry
// starts the ordered acquisition from scratch.
func (m *Manager) purgeGangRequests(js *jobState) {
	for _, arb := range m.arbs {
		kept := arb.queue[:0]
		for _, req := range arb.queue {
			if req.js != js {
				kept = append(kept, req)
			}
		}
		for i := len(kept); i < len(arb.queue); i++ {
			arb.queue[i] = nil
		}
		arb.queue = kept
	}
	for _, sh := range js.shards {
		sh.waiting = false
	}
}

// gangOrder returns the gang's shards sorted by GPU index — the global
// acquisition order. Gang replicas bind distinct GPUs (validated at
// admission), so the order is total.
func gangOrder(shards []*shardState) []*shardState {
	out := make([]*shardState, len(shards))
	copy(out, shards)
	sort.Slice(out, func(i, j int) bool { return out[i].dev.Index < out[j].dev.Index })
	return out
}
