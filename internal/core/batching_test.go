package core

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/workload"
)

func batchedServeCfg(t *testing.T, name string, prio int) workload.Config {
	t.Helper()
	return workload.Config{
		Name:         name,
		Model:        spec(t, "ResNet50"),
		Batch:        1,
		Kind:         workload.KindServing,
		Priority:     prio,
		Device:       device.GPUID(0),
		ArrivalEvery: 10 * time.Millisecond,
		MaxBatch:     8,
		BatchWait:    20 * time.Millisecond,
	}
}

// TestManagerFormsMicroBatches drives an open-loop serving job fast enough
// that requests queue, and checks the manager launches fused micro-batches
// instead of one compute per request.
func TestManagerFormsMicroBatches(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(batchedServeCfg(t, "serve", 1))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.CrashErr)
	}
	if job.ServingStats().Batches == 0 {
		t.Fatal("no micro-batches launched")
	}
	if job.ServingStats().Served <= job.ServingStats().Batches {
		t.Fatalf("Served=%d Batches=%d: batching never fused requests",
			job.ServingStats().Served, job.ServingStats().Batches)
	}
	if mean := job.ServingStats().MeanBatch(); mean <= 1.0 {
		t.Fatalf("mean batch size %.2f, want > 1", mean)
	}
	if job.ServingStats().Shed != 0 {
		t.Fatalf("shed %d requests with no SLO", job.ServingStats().Shed)
	}
	if got, want := job.Latencies.Count(), job.ServingStats().Served; got != int(want) {
		t.Fatalf("latency samples %d != served %d", got, want)
	}
	// Iterations count fused launches, one per micro-batch.
	if job.Iterations != int(job.ServingStats().Batches) {
		t.Fatalf("Iterations=%d Batches=%d, want equal", job.Iterations, job.ServingStats().Batches)
	}
}

// TestBatchedServingSurvivesPreemption runs a batched serving job under a
// higher-priority request stream that repeatedly preempts it mid-batch,
// then drains both streams and checks no admitted request was lost: every
// offered request is either served or shed, never dropped by preemption.
func TestBatchedServingSurvivesPreemption(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	victim, err := m.AddJob(batchedServeCfg(t, "batched", 1))
	if err != nil {
		t.Fatal(err)
	}
	urgent, err := m.AddJob(workload.Config{
		Name:         "urgent",
		Model:        spec(t, "MobileNetV2"),
		Batch:        1,
		Kind:         workload.KindServing,
		Priority:     2,
		Device:       device.GPUID(0),
		ArrivalEvery: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)
	if m.Preemptions == 0 {
		t.Fatal("high-priority stream never preempted the batched job")
	}
	// Stop the arrival processes only (not the jobs), then drain.
	victim.StopArrivals()
	urgent.StopArrivals()
	eng.Run()
	if victim.Crashed() || urgent.Crashed() {
		t.Fatalf("crashes: victim=%v urgent=%v", victim.CrashErr, urgent.CrashErr)
	}
	if victim.ServingStats().Served+victim.ServingStats().Shed != victim.ServingStats().Offered {
		t.Fatalf("request loss: offered=%d served=%d shed=%d",
			victim.ServingStats().Offered, victim.ServingStats().Served, victim.ServingStats().Shed)
	}
	if victim.ServingStats().Shed != 0 {
		t.Fatalf("shed %d with no SLO configured", victim.ServingStats().Shed)
	}
	if victim.ServingStats().Served <= victim.ServingStats().Batches {
		t.Fatal("batching degenerated to single-request launches under preemption")
	}
}

// TestDisableDynamicBatchingClampsToSingleRequests is the ablation arm:
// with batching disabled every launch carries exactly one request even
// though the job asks for MaxBatch 8.
func TestDisableDynamicBatchingClampsToSingleRequests(t *testing.T) {
	eng, _, m := newHarness(t, Options{DisableDynamicBatching: true}, device.ClassV100)
	job, err := m.AddJob(batchedServeCfg(t, "serve", 1))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.CrashErr)
	}
	if job.ServingStats().Served == 0 {
		t.Fatal("no requests served")
	}
	if job.ServingStats().Batches != job.ServingStats().Served {
		t.Fatalf("Batches=%d Served=%d: batching ran despite DisableDynamicBatching",
			job.ServingStats().Batches, job.ServingStats().Served)
	}
}
