package core

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/models"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

func spec(t *testing.T, name string) *models.Spec {
	t.Helper()
	s, err := models.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newHarness(t *testing.T, opts Options, gpus ...device.GPUClass) (*sim.Engine, *device.Machine, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	machine := device.NewMachine(eng, device.ClassXeonDual, gpus...)
	return eng, machine, NewManager(eng, machine, opts)
}

func trainCfg(t *testing.T, name, model string, batch, prio int, dev device.ID) workload.Config {
	return workload.Config{
		Name:     name,
		Model:    spec(t, model),
		Batch:    batch,
		Kind:     workload.KindTraining,
		Priority: prio,
		Device:   dev,
	}
}

func TestSingleTrainingJobProgresses(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "MobileNetV2", 32, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second)
	if job.Crashed() {
		t.Fatalf("job crashed: %v", job.CrashErr)
	}
	if job.Iterations < 5 {
		t.Fatalf("job completed %d iterations in 5s, want >= 5", job.Iterations)
	}
	if machine.GPU(0).BusyTime() == 0 {
		t.Fatal("GPU never ran a kernel")
	}
}

func TestWeightsResideOnPreferredDevice(t *testing.T) {
	eng, machine, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "ResNet50", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	if !job.WeightsOn(device.GPUID(0)) {
		t.Fatal("weights not allocated on gpu:0 at admission")
	}
	if machine.GPU(0).Mem.Used() < job.WeightBytes() {
		t.Fatalf("GPU memory %d below weight bytes %d", machine.GPU(0).Mem.Used(), job.WeightBytes())
	}
	eng.RunUntil(time.Second)
}

func TestTwoTrainingJobsInterleaveWithoutOOM(t *testing.T) {
	// Two NASNetLarge-class jobs would OOM under free sharing; under
	// SwitchFlow's exclusivity only one intermediate footprint is live at
	// a time, so both make progress (§3.4).
	eng, _, m := newHarness(t, Options{}, device.ClassRTX2080Ti)
	a, err := m.AddJob(trainCfg(t, "a", "NASNetLarge", 32, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddJob(trainCfg(t, "b", "NASNetLarge", 32, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(60 * time.Second)
	if a.Crashed() || b.Crashed() {
		t.Fatalf("crashes: a=%v b=%v", a.CrashErr, b.CrashErr)
	}
	if a.Iterations == 0 || b.Iterations == 0 {
		t.Fatalf("iterations a=%d b=%d, both must progress", a.Iterations, b.Iterations)
	}
	// Fair interleaving: neither job starves.
	ratio := float64(a.Iterations) / float64(b.Iterations)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("unfair interleaving: a=%d b=%d", a.Iterations, b.Iterations)
	}
}

func TestAdmissionFailsWhenWeightsDoNotFit(t *testing.T) {
	// Aggregate persistent state must fit (§3.4). VGG16 training state is
	// ~1 GiB; 11 jobs exceed the 2080 Ti's 11 GiB budget well before the
	// memory pool does the math for us.
	eng, _, m := newHarness(t, Options{}, device.ClassRTX2080Ti)
	var admitted int
	for i := 0; i < 16; i++ {
		_, err := m.AddJob(trainCfg(t, "vgg", "VGG16", 8, 1, device.GPUID(0)))
		if err != nil {
			break
		}
		admitted++
	}
	if admitted >= 16 {
		t.Fatal("admission never failed; OOM contract not enforced")
	}
	if admitted < 5 {
		t.Fatalf("only %d VGG16 jobs admitted on 11 GiB", admitted)
	}
	eng.RunUntil(time.Millisecond)
}

func TestServingJobRecordsLatencies(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(workload.Config{
		Name:         "serve",
		Model:        spec(t, "ResNet50"),
		Batch:        1,
		Kind:         workload.KindServing,
		Priority:     2,
		Device:       device.GPUID(0),
		ArrivalEvery: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(5 * time.Second)
	if job.Latencies.Count() < 10 {
		t.Fatalf("served %d requests in 5s at 5 req/s, want >= 10", job.Latencies.Count())
	}
	// Solo BS=1 latency: preprocess (~50ms) + H2D + compute; comfortably
	// under 200ms.
	if p95 := job.Latencies.Percentile(95); p95 > 200*time.Millisecond {
		t.Fatalf("solo p95 = %v, want < 200ms", p95)
	}
}

func TestHighPriorityPreemptsTraining(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	train, err := m.AddJob(trainCfg(t, "train", "VGG16", 32, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	serve, err := m.AddJob(workload.Config{
		Name:         "serve",
		Model:        spec(t, "ResNet50"),
		Batch:        1,
		Kind:         workload.KindServing,
		Priority:     2,
		Device:       device.GPUID(0),
		ArrivalEvery: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)
	if m.Preemptions == 0 {
		t.Fatal("no preemptions occurred")
	}
	if serve.Latencies.Count() < 20 {
		t.Fatalf("served %d requests, want >= 20", serve.Latencies.Count())
	}
	// VGG16 BS=32 training steps take ~300ms; without preemption p95
	// would absorb whole steps. With preemption the wait is bounded by
	// one in-flight kernel.
	p95 := serve.Latencies.Percentile(95)
	if p95 > 250*time.Millisecond {
		t.Fatalf("p95 with preemption = %v, want < 250ms", p95)
	}
	if train.Iterations == 0 {
		t.Fatal("preempted training job never progressed")
	}
	if train.Crashed() || serve.Crashed() {
		t.Fatalf("crashes: train=%v serve=%v", train.CrashErr, serve.CrashErr)
	}
}

func TestPreemptionLatencyBoundedByInflightKernel(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	if _, err := m.AddJob(trainCfg(t, "train", "ResNet50", 32, 1, device.GPUID(0))); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddJob(workload.Config{
		Name:         "serve",
		Model:        spec(t, "MobileNetV2"),
		Batch:        1,
		Kind:         workload.KindServing,
		Priority:     2,
		Device:       device.GPUID(0),
		ArrivalEvery: 500 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(10 * time.Second)
	if m.Preemptions == 0 {
		t.Fatal("no preemptions")
	}
	// §5.2.3: worst-case preemption latency is a few tens of ms (one
	// outstanding kernel).
	if p := m.PreemptionLatencies.Max(); p > 60*time.Millisecond {
		t.Fatalf("max acquire latency = %v, want <= 60ms", p)
	}
}

func TestPreemptedJobMigratesToSecondGPU(t *testing.T) {
	eng, machine, m := newHarness(t, Options{},
		device.ClassRTX2080Ti, device.ClassGTX1080Ti)
	low, err := m.AddJob(workload.Config{
		Name:      "low",
		Model:     spec(t, "ResNet50"),
		Batch:     32,
		Kind:      workload.KindTraining,
		Priority:  1,
		Device:    device.GPUID(0),
		Fallbacks: []device.ID{device.GPUID(1), device.CPUID},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second) // low-priority job warms up on gpu:0
	high, err := m.AddJob(trainCfg(t, "high", "VGG16", 32, 2, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(30 * time.Second)
	if m.Migrations == 0 {
		t.Fatal("no migration happened")
	}
	if got := m.JobDevice(low); got != device.GPUID(1) {
		t.Fatalf("low-priority job on %v, want gpu:1", got)
	}
	if !low.WeightsOn(device.GPUID(1)) {
		t.Fatal("weights not resident on migration target")
	}
	if low.WeightsOn(device.GPUID(0)) {
		t.Fatal("weights still retained on source after transfer")
	}
	if low.Iterations < 2 {
		t.Fatalf("migrated job made %d iterations, want >= 2", low.Iterations)
	}
	if high.Iterations < 2 {
		t.Fatalf("preempter made %d iterations, want >= 2", high.Iterations)
	}
	// Weight bytes moved across the peer link.
	if machine.Peer().Transferred() < low.WeightBytes() {
		t.Fatalf("peer link moved %d bytes, want >= %d",
			machine.Peer().Transferred(), low.WeightBytes())
	}
}

func TestPreemptedJobFallsBackToCPU(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassRTX2080Ti)
	low, err := m.AddJob(workload.Config{
		Name:      "low",
		Model:     spec(t, "MobileNetV2"),
		Batch:     8,
		Kind:      workload.KindTraining,
		Priority:  1,
		Device:    device.GPUID(0),
		Fallbacks: []device.ID{device.CPUID},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(time.Second)
	if _, err := m.AddJob(trainCfg(t, "high", "ResNet50", 32, 2, device.GPUID(0))); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(120 * time.Second)
	if got := m.JobDevice(low); got != device.CPUID {
		t.Fatalf("low job on %v, want cpu:0", got)
	}
	if low.Iterations < 1 {
		t.Fatal("CPU-migrated job made no progress")
	}
	gpuIters := low.Iterations
	// CPU training (4 temp-pool threads with MKL intra-op parallelism) is
	// drastically slower than GPU (Figure 7 d) but not frozen.
	eng.RunUntil(240 * time.Second)
	cpuRate := float64(low.Iterations-gpuIters) / 120
	if cpuRate > 8 {
		t.Fatalf("CPU iteration rate %.2f/s implausibly fast", cpuRate)
	}
	if cpuRate < 0.2 {
		t.Fatalf("CPU iteration rate %.2f/s implausibly slow", cpuRate)
	}
}

func TestSharedInputGroupLockstep(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	cfg := func(name string) workload.Config {
		return workload.Config{
			Name:   name,
			Model:  spec(t, "ResNet50"),
			Batch:  32,
			Kind:   workload.KindServing,
			Device: device.GPUID(0),
		}
	}
	group, jobs, err := m.AddSharedGroup([]workload.Config{cfg("m0"), cfg("m1")})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(30 * time.Second)
	counts := group.Iterations()
	if counts[0] == 0 {
		t.Fatal("group made no progress")
	}
	if diff := counts[0] - counts[1]; diff < 0 || diff > 1 {
		t.Fatalf("lockstep violated: iterations %v", counts)
	}
	for _, job := range jobs {
		if job.Crashed() {
			t.Fatalf("group member crashed: %v", job.CrashErr)
		}
	}
}

func TestSharedGroupRejectsMismatchedMembers(t *testing.T) {
	_, _, m := newHarness(t, Options{}, device.ClassV100, device.ClassV100)
	a := workload.Config{Name: "a", Model: spec(t, "ResNet50"), Batch: 32,
		Kind: workload.KindServing, Device: device.GPUID(0)}
	b := a
	b.Device = device.GPUID(1)
	if _, _, err := m.AddSharedGroup([]workload.Config{a, b}); err == nil {
		t.Fatal("cross-device group accepted")
	}
	c := a
	c.Batch = 64
	if _, _, err := m.AddSharedGroup([]workload.Config{a, c}); err == nil {
		t.Fatal("mismatched batch group accepted")
	}
	if _, _, err := m.AddSharedGroup([]workload.Config{a}); err == nil {
		t.Fatal("singleton group accepted")
	}
}

func TestStopJobHaltsProgress(t *testing.T) {
	eng, _, m := newHarness(t, Options{}, device.ClassV100)
	job, err := m.AddJob(trainCfg(t, "train", "MobileNetV2", 16, 1, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second)
	m.StopJob(job)
	at := job.Iterations
	eng.RunUntil(10 * time.Second)
	if job.Iterations > at+2 {
		t.Fatalf("stopped job kept iterating: %d -> %d", at, job.Iterations)
	}
}
