package core

import (
	"fmt"

	"switchflow/internal/executor"
	"switchflow/internal/workload"
)

// Group is a set of correlated jobs sharing one input pipeline (§3.4,
// Listing 1): the master's CPU preprocessing stage runs once per batch,
// the processed tensor is cached immutably on the GPU, and every member's
// GPU executor consumes it in lockstep round-robin before the group moves
// to the next batch.
type Group struct {
	m       *Manager
	members []*jobState

	inputReady   int
	inputRunning bool
	depth        int
	turn         int
	busy         bool
	stopped      bool
}

// AddSharedGroup admits a set of jobs that share the data preprocessing
// stage. All members must target the same device and batch size (they are
// trained/served in lockstep on identical input batches).
func (m *Manager) AddSharedGroup(cfgs []workload.Config) (*Group, []*workload.Job, error) {
	if len(cfgs) < 2 {
		return nil, nil, fmt.Errorf("core: a shared group needs at least 2 jobs, got %d", len(cfgs))
	}
	for _, cfg := range cfgs {
		// Groups run in lockstep on one device; an elastic member's binding
		// could move mid-group, so the combination is rejected.
		if len(cfg.VNodes) > 0 {
			return nil, nil, fmt.Errorf("core: shared group member %q cannot use virtual nodes", cfg.Name)
		}
	}
	for _, cfg := range cfgs[1:] {
		if cfg.Device != cfgs[0].Device {
			return nil, nil, fmt.Errorf("core: shared group members must target one device")
		}
		if cfg.Batch != cfgs[0].Batch {
			return nil, nil, fmt.Errorf("core: shared group members must share the batch size")
		}
	}
	g := &Group{m: m, depth: 2}
	var jobs []*workload.Job
	for _, cfg := range cfgs {
		m.ctxSeq++
		job, err := workload.NewJob(m.eng, m.machine, m.ctxSeq, cfg)
		if err != nil {
			return nil, nil, err
		}
		if err := job.AllocWeights(cfg.Device); err != nil {
			return nil, nil, fmt.Errorf("core: admit %s: %w", cfg.Name, err)
		}
		js := &jobState{job: job, current: cfg.Device, weightsReady: true}
		g.members = append(g.members, js)
		jobs = append(jobs, job)
	}
	m.groups = append(m.groups, g)
	m.eng.After(0, g.pump)
	return g, jobs, nil
}

// Stop halts the group after in-flight stages complete.
func (g *Group) Stop() { g.stopped = true }

// Iterations returns the completed iteration count of each member.
func (g *Group) Iterations() []int {
	counts := make([]int, len(g.members))
	for i, js := range g.members {
		counts[i] = js.job.Iterations
	}
	return counts
}

// pump drives the group's lockstep schedule: a shared CPU input stage
// (prefetching up to depth batches ahead) and one member GPU executor at a
// time, round-robin.
func (g *Group) pump() {
	if g.stopped {
		return
	}
	g.pumpInput()
	g.pumpCompute()
}

func (g *Group) pumpInput() {
	if g.inputRunning || g.inputReady >= g.depth {
		return
	}
	master := g.members[0]
	v, err := master.job.Version(master.current)
	if err != nil {
		master.job.Crash(err)
		g.m.emitJobLost(master, master.current, "no graph version")
		return
	}
	if v.Input == nil {
		g.inputReady++
		return
	}
	g.inputRunning = true
	_, err = master.job.StartExec(v.Input, executor.Config{Pool: g.m.global}, func() {
		g.inputRunning = false
		g.inputReady++
		g.pump()
	})
	if err != nil {
		master.job.Crash(err)
		g.m.emitJobLost(master, master.current, "input start failed")
		g.inputRunning = false
	}
}

// pumpCompute runs the next member's GPU executor on the cached batch.
// A batch is consumed once every member has processed it.
func (g *Group) pumpCompute() {
	if g.busy || g.inputReady == 0 {
		return
	}
	js := g.members[g.turn]
	if js.job.Crashed() {
		g.advanceTurn()
		return
	}
	g.busy = true
	dev := js.current
	js.acquiredAt = g.m.eng.Now()
	g.m.acquire(dev.Index, js, func() {
		js.holding = true
		g.runMember(js)
	})
}

func (g *Group) runMember(js *jobState) {
	v, err := js.job.Version(js.current)
	if err != nil {
		g.memberFailed(js, err)
		return
	}
	if err := js.job.AllocIntermediate(js.current); err != nil {
		g.memberFailed(js, err)
		return
	}
	cfg := executor.Config{Pool: g.m.global, Stream: js.job.Stream(js.current)}
	run, err := js.job.StartExec(v.Compute, cfg, func() {
		js.computeRun = nil
		js.job.FreeIntermediate(js.current)
		js.job.Iterations++
		js.holding = false
		g.m.release(js.current.Index)
		g.busy = false
		g.advanceTurn()
	})
	if err != nil {
		js.job.FreeIntermediate(js.current)
		g.memberFailed(js, err)
		return
	}
	js.computeRun = run
}

func (g *Group) memberFailed(js *jobState, err error) {
	js.job.Crash(err)
	g.m.emitJobLost(js, js.current, "coupled member failed")
	js.holding = false
	g.m.release(js.current.Index)
	g.busy = false
	g.advanceTurn()
}

// advanceTurn moves to the next member; when every member has seen the
// batch, it is released and the group fetches the next one.
func (g *Group) advanceTurn() {
	g.turn++
	if g.turn == len(g.members) {
		g.turn = 0
		g.inputReady--
	}
	g.pump()
}
