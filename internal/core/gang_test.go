package core

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// newNVLinkHarness builds a manager over the 4x V100 NVLink testbed
// (islands {0,1} and {2,3}) where gang placement quality is measurable.
func newNVLinkHarness(t *testing.T) (*sim.Engine, *device.Machine, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	machine := device.NewNVLinkV100Server(eng)
	return eng, machine, NewManager(eng, machine, Options{})
}

func gangCfg(t *testing.T, name, model string, batch, prio int, devs ...device.ID) workload.Config {
	t.Helper()
	cfg := elasticCfg(t, name, model, batch, prio, devs...)
	cfg.Gang = true
	return cfg
}

func TestGangStepPaysAllReduceBarrier(t *testing.T) {
	run := func(gang bool) (*workload.Job, []obs.Event) {
		eng, _, m := newNVLinkHarness(t)
		var rec obs.Recorder
		m.EventBus().Subscribe(&rec, obs.KindAllReduce)
		// VGG16's ~550 MB gradient makes the sync term dominate compute,
		// so the barrier tax is unambiguous.
		cfg := elasticCfg(t, "ddp", "VGG16", 32, 1, device.GPUID(0), device.GPUID(1))
		cfg.Gang = gang
		job, err := m.AddJob(cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(10 * time.Second)
		if job.Crashed() {
			t.Fatalf("job crashed: %v", job.CrashErr)
		}
		return job, rec.Events()
	}
	gang, syncs := run(true)
	free, noSyncs := run(false)
	if gang.Iterations == 0 {
		t.Fatal("gang made no progress")
	}
	if len(noSyncs) != 0 {
		t.Fatalf("non-gang elastic job emitted %d AllReduce events", len(noSyncs))
	}
	if len(syncs) < gang.Iterations {
		t.Fatalf("%d AllReduce events for %d committed steps; every step must pay the barrier",
			len(syncs), gang.Iterations)
	}
	for _, e := range syncs {
		if e.Count != 2 || e.Dur <= 0 {
			t.Fatalf("AllReduce event %+v, want Count=2 and positive priced Dur", e)
		}
	}
	// The sync tax is the whole point: the gang must run measurably
	// slower than the same binding without the barrier.
	if gang.Iterations >= free.Iterations {
		t.Fatalf("gang did %d iterations vs %d without sync; the all-reduce must cost time",
			gang.Iterations, free.Iterations)
	}
}

// The NVLink pair {0,1} must out-iterate the cross-island pair {1,2}:
// identical GPUs, identical shares, the only difference is the fabric
// under the ring.
func TestGangNVLinkContiguousBeatsCrossIsland(t *testing.T) {
	run := func(devs ...device.ID) int {
		eng, _, m := newNVLinkHarness(t)
		job, err := m.AddJob(gangCfg(t, "ddp", "VGG16", 32, 1, devs...))
		if err != nil {
			t.Fatal(err)
		}
		eng.RunUntil(10 * time.Second)
		if job.Crashed() {
			t.Fatalf("job crashed: %v", job.CrashErr)
		}
		return job.Iterations
	}
	nvlink := run(device.GPUID(0), device.GPUID(1))
	straddle := run(device.GPUID(1), device.GPUID(2))
	if nvlink <= straddle {
		t.Fatalf("NVLink-contiguous gang did %d iterations vs %d straddling the islands; NVLink must win",
			nvlink, straddle)
	}
}

func TestGangPreemptionSuspendsWholeGang(t *testing.T) {
	eng, _, m := newNVLinkHarness(t)
	var rec obs.Recorder
	m.EventBus().Subscribe(&rec, obs.KindGangPreempt, obs.KindGangResume, obs.KindResume)
	gang, err := m.AddJob(gangCfg(t, "ddp", "ResNet50", 32, 1,
		device.GPUID(0), device.GPUID(1)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second)
	hi, err := m.AddJob(trainCfg(t, "hi", "MobileNetV2", 16, 9, device.GPUID(0)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(4 * time.Second)
	m.StopJob(hi)
	eng.RunUntil(12 * time.Second)
	if gang.Crashed() || hi.Crashed() {
		t.Fatalf("crash: gang=%v hi=%v", gang.CrashErr, hi.CrashErr)
	}
	if hi.Iterations == 0 {
		t.Fatal("high-priority job never ran on the contended GPU")
	}
	if gang.Iterations == 0 {
		t.Fatal("displaced gang never resumed")
	}
	var preempts, resumes int
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindGangPreempt:
			preempts++
			if e.Count != 2 {
				t.Fatalf("GangPreempt suspended %d replicas, want the whole gang (2): %+v", e.Count, e)
			}
		case obs.KindGangResume:
			resumes++
			if e.Count != 2 {
				t.Fatalf("GangResume restarted %d replicas, want the whole gang (2): %+v", e.Count, e)
			}
		}
	}
	if preempts == 0 {
		t.Fatal("no gang preemption recorded")
	}
	if resumes == 0 {
		t.Fatal("gang never resumed as a unit")
	}
	// All-or-nothing resume: no lone replica may restart while the gang
	// is displaced. Every per-shard Resume must be preceded by the gang
	// re-holding its full set (GangResume comes first in the stream).
	sawGangResume := false
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindGangPreempt:
			sawGangResume = false
		case obs.KindGangResume:
			sawGangResume = true
		case obs.KindResume:
			if e.Job == "ddp" && !sawGangResume {
				t.Fatalf("straggler: replica resumed at %v before the gang re-held its set", e.Time)
			}
		}
	}
	// The binding must be untouched: gang preemption never rebinds.
	if b := gang.Binding(); b.Len() != 2 || !b.Uses(device.GPUID(0)) || !b.Uses(device.GPUID(1)) {
		t.Fatalf("gang preemption changed the binding: %v", b)
	}
}

func TestGangValidation(t *testing.T) {
	_, _, m := newNVLinkHarness(t)
	// Gang replicas must land on distinct GPUs.
	cfg := gangCfg(t, "dup", "MobileNetV2", 8, 1, device.GPUID(0), device.GPUID(0))
	if _, err := m.AddJob(cfg); err == nil {
		t.Fatal("duplicate gang GPUs should be rejected")
	}
	// A gang needs vnodes from some placement layer.
	bare := trainCfg(t, "bare", "MobileNetV2", 8, 1, device.GPUID(0))
	bare.Gang = true
	if _, err := m.AddJob(bare); err == nil {
		t.Fatal("gang without vnodes should be rejected")
	}
	// Replicas hint must match materialized vnodes.
	mism := gangCfg(t, "mismatch", "MobileNetV2", 8, 1, device.GPUID(0), device.GPUID(1))
	mism.Replicas = 3
	if _, err := m.AddJob(mism); err == nil {
		t.Fatal("Replicas/VNodes mismatch should be rejected")
	}
}
