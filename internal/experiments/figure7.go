package experiments

import (
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/device"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// Figure7Row is one model group of Figure 7: the throughputs of two
// co-running training jobs, their solo baselines, and crash outcomes.
type Figure7Row struct {
	Subfigure string // "a".."f"
	Scheduler string // "threaded-tf", "mps", "switchflow"
	// Background is the fixed job of the subfigure; Model the varying one.
	Background string
	Model      string
	// Solo and CoRun throughputs in images/s; zero when crashed.
	BackgroundSolo  float64
	BackgroundCoRun float64
	ModelSolo       float64
	ModelCoRun      float64
	// OOM records a crash of either job under free sharing / MPS.
	OOM bool
	// LowDevice reports where SwitchFlow migrated the low-priority job.
	LowDevice string
}

// figure7Models is the varying-model axis.
var figure7Models = []string{
	"ResNet50", "VGG16", "DenseNet121", "DenseNet169",
	"InceptionResNetV2", "InceptionV3", "MobileNetV2",
}

const (
	figure7Batch   = 32
	figure7Measure = 30 * time.Second
	figure7Warm    = 5 * time.Second
)

// Figure7 regenerates all six subfigures.
func Figure7() []Figure7Row {
	var rows []Figure7Row
	for _, model := range figure7Models {
		rows = append(rows, Figure7Threaded("a", "GTX 1080 Ti", "ResNet50", model))
	}
	for _, model := range figure7Models {
		rows = append(rows, Figure7Threaded("b", "RTX 2080 Ti", "VGG16", model))
	}
	for _, model := range figure7Models {
		rows = append(rows, Figure7MPS("c", "V100", "ResNet50", model))
	}
	for _, model := range figure7Models {
		rows = append(rows, Figure7SwitchFlow("d", nil, "ResNet50", model))
	}
	for _, model := range figure7Models {
		rows = append(rows, Figure7SwitchFlow("e", twoGPU(), "ResNet50", model))
	}
	for _, model := range figure7Models {
		rows = append(rows, Figure7SwitchFlow("f", twoGPU(), "VGG16", model))
	}
	return rows
}

// twoGPU describes the 1080 Ti + 2080 Ti server: the high-priority job
// wants the faster 2080 Ti (gpu:1); the low-priority job falls back to the
// 1080 Ti (gpu:0).
func twoGPU() []device.GPUClass {
	return []device.GPUClass{device.ClassGTX1080Ti, device.ClassRTX2080Ti}
}

// soloThroughput measures one training job alone on the machine layout.
func soloThroughput(gpus []device.GPUClass, gpu device.ID, model string) float64 {
	eng := sim.NewEngine()
	machine := device.NewMachine(eng, device.ClassXeonDual, gpus...)
	sched := baseline.NewThreadedTF(eng, machine)
	cfg := trainConfig("solo", model, figure7Batch, 1)
	cfg.Device = gpu
	job, err := sched.AddJob(cfg)
	if err != nil {
		panic(err)
	}
	eng.RunUntil(figure7Warm)
	start := job.Iterations
	eng.RunUntil(figure7Warm + figure7Measure)
	if job.Crashed() {
		return 0
	}
	return float64((job.Iterations-start)*figure7Batch) / figure7Measure.Seconds()
}

// Figure7Threaded runs one threaded-TF co-run cell on the named GPU.
func Figure7Threaded(sub, gpu, background, model string) Figure7Row {
	gpus := []device.GPUClass{gpuByName(gpu)}
	row := Figure7Row{
		Subfigure:      sub,
		Scheduler:      "threaded-tf",
		Background:     background,
		Model:          model,
		BackgroundSolo: soloThroughput(gpus, device.GPUID(0), background),
		ModelSolo:      soloThroughput(gpus, device.GPUID(0), model),
	}
	eng := sim.NewEngine()
	machine := device.NewMachine(eng, device.ClassXeonDual, gpus...)
	sched := baseline.NewThreadedTF(eng, machine)
	bg, err := sched.AddJob(trainConfig("bg", background, figure7Batch, 1))
	if err != nil {
		panic(err)
	}
	other, err := sched.AddJob(trainConfig("model", model, figure7Batch, 1))
	if err != nil {
		panic(err)
	}
	eng.RunUntil(figure7Warm)
	bgStart, otherStart := bg.Iterations, other.Iterations
	eng.RunUntil(figure7Warm + figure7Measure)
	row.OOM = bg.Crashed() || other.Crashed()
	if !bg.Crashed() {
		row.BackgroundCoRun = float64((bg.Iterations-bgStart)*figure7Batch) / figure7Measure.Seconds()
	}
	if !other.Crashed() {
		row.ModelCoRun = float64((other.Iterations-otherStart)*figure7Batch) / figure7Measure.Seconds()
	}
	return row
}

// Figure7MPS runs one MPS co-run cell.
func Figure7MPS(sub, gpu, background, model string) Figure7Row {
	gpus := []device.GPUClass{gpuByName(gpu)}
	row := Figure7Row{
		Subfigure:      sub,
		Scheduler:      "mps",
		Background:     background,
		Model:          model,
		BackgroundSolo: soloThroughput(gpus, device.GPUID(0), background),
		ModelSolo:      soloThroughput(gpus, device.GPUID(0), model),
	}
	eng := sim.NewEngine()
	machine := device.NewMachine(eng, device.ClassXeonDual, gpus...)
	sched := baseline.NewMPS(eng, machine)
	bg, err := sched.AddJob(trainConfig("bg", background, figure7Batch, 1))
	if err != nil {
		panic(err)
	}
	other, err := sched.AddJob(trainConfig("model", model, figure7Batch, 1))
	if err != nil {
		panic(err)
	}
	eng.RunUntil(figure7Warm)
	bgStart, otherStart := bg.Iterations, other.Iterations
	eng.RunUntil(figure7Warm + figure7Measure)
	row.OOM = bg.Crashed() || other.Crashed()
	if !bg.Crashed() {
		row.BackgroundCoRun = float64((bg.Iterations-bgStart)*figure7Batch) / figure7Measure.Seconds()
	}
	if !other.Crashed() {
		row.ModelCoRun = float64((other.Iterations-otherStart)*figure7Batch) / figure7Measure.Seconds()
	}
	return row
}

// Figure7SwitchFlow runs one SwitchFlow cell: the low-priority background
// job starts on the preferred GPU, then the high-priority model arrives
// and preempts it; the background migrates to its fallback (a slower GPU,
// or the CPU when gpus is nil, i.e. subfigure d's CPUs + RTX 2080 Ti).
func Figure7SwitchFlow(sub string, gpus []device.GPUClass, background, model string) Figure7Row {
	var (
		highDev   device.ID
		fallbacks []device.ID
	)
	if gpus == nil {
		gpus = []device.GPUClass{device.ClassRTX2080Ti}
		highDev = device.GPUID(0)
		fallbacks = []device.ID{device.CPUID}
	} else {
		highDev = device.GPUID(1) // the 2080 Ti
		fallbacks = []device.ID{device.GPUID(0), device.CPUID}
	}
	row := Figure7Row{
		Subfigure:      sub,
		Scheduler:      "switchflow",
		Background:     background,
		Model:          model,
		BackgroundSolo: soloThroughput(gpus, highDev, background),
		ModelSolo:      soloThroughput(gpus, highDev, model),
	}
	eng := sim.NewEngine()
	machine := device.NewMachine(eng, device.ClassXeonDual, gpus...)
	m := core.NewManager(eng, machine, core.Options{})
	lowCfg := workload.Config{
		Name:      "low",
		Model:     mustSpec(background),
		Batch:     figure7Batch,
		Kind:      workload.KindTraining,
		Priority:  1,
		Device:    highDev,
		Fallbacks: fallbacks,
	}
	low, err := m.AddJob(lowCfg)
	if err != nil {
		panic(err)
	}
	eng.RunUntil(figure7Warm)
	highCfg := trainConfig("high", model, figure7Batch, 2)
	highCfg.Device = highDev
	high, err := m.AddJob(highCfg)
	if err != nil {
		panic(err)
	}
	// Let the preemption and migration settle before measuring.
	eng.RunUntil(figure7Warm + 5*time.Second)
	lowStart, highStart := low.Iterations, high.Iterations
	eng.RunUntil(figure7Warm + 5*time.Second + figure7Measure)
	row.OOM = low.Crashed() || high.Crashed()
	row.BackgroundCoRun = float64((low.Iterations-lowStart)*figure7Batch) / figure7Measure.Seconds()
	row.ModelCoRun = float64((high.Iterations-highStart)*figure7Batch) / figure7Measure.Seconds()
	row.LowDevice = m.JobDevice(low).String()
	return row
}
