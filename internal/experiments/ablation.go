package experiments

import (
	"time"

	"switchflow/internal/core"
	"switchflow/internal/harness"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// AblationRow evaluates one design choice of §3 by toggling it off and
// re-running the canonical collocation (ResNet50 BS=1 inference stream +
// VGG16 BS=32 training on a V100).
type AblationRow struct {
	Variant     string
	ServeP95MS  float64
	TrainImgPS  float64
	PreemptP95  float64 // grant latency p95, ms
	Description string
}

// ablationVariant is one design-choice toggle.
type ablationVariant struct {
	name string
	opts core.Options
	desc string
}

// ablationVariants are the four ablations plus the full design.
var ablationVariants = []ablationVariant{
	{"full", core.Options{},
		"both invariants, async transfer, temp-pool isolation"},
	{"no-gpu-exclusive", core.Options{DisableGPUExclusive: true},
		"invariant 1 off: GPU executors co-run and contend"},
	{"no-free-cpu", core.Options{DisableFreeCPUExecutors: true},
		"invariant 2 off: input runs only under the GPU grant (time slicing)"},
	{"sync-transfer", core.Options{SyncStateTransfer: true},
		"migration state transfer on the preemption critical path"},
	{"no-temp-pool", core.Options{DisableTempPoolIsolation: true},
		"preempted jobs keep dispatching from the global pool"},
}

// Ablation runs the variants on the parallel harness, in declaration
// order.
func Ablation(requests int) []AblationRow {
	return harness.Map(ablationVariants, func(v ablationVariant) AblationRow {
		return ablationOne(v.name, v.desc, v.opts, requests)
	})
}

func ablationOne(name, desc string, opts core.Options, requests int) AblationRow {
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")
	m := core.NewManager(eng, machine, opts)
	train, err := m.AddJob(trainConfig("train", "VGG16", 32, 1))
	if err != nil {
		panic(err)
	}
	eng.RunUntil(2 * time.Second)
	serve, err := m.AddJob(serveConfig("serve", "ResNet50", 1, 2))
	if err != nil {
		panic(err)
	}
	start, startIters := eng.Now(), train.Iterations
	runUntil(eng, time.Hour, func() bool { return serve.Latencies.Count() >= requests })
	window := eng.Now() - start
	row := AblationRow{
		Variant:     name,
		Description: desc,
		ServeP95MS:  serve.Latencies.Percentile(95).Seconds() * 1e3,
		PreemptP95:  m.PreemptionLatencies.Percentile(95).Seconds() * 1e3,
	}
	if window > 0 {
		row.TrainImgPS = float64((train.Iterations-startIters)*32) / window.Seconds()
	}
	return row
}

// AblationMigration compares async vs sync state transfer in the
// two-GPU migration scenario of Figure 7(e), reporting how long the
// high-priority job waits for its first iteration.
type AblationMigrationRow struct {
	Variant          string
	HighFirstStepSec float64
	LowRecoverySec   float64 // low job's first post-migration iteration
}

// AblationMigration runs both transfer modes on the parallel harness.
func AblationMigration() []AblationMigrationRow {
	variants := []ablationVariant{
		{name: "async-transfer", opts: core.Options{}},
		{name: "sync-transfer", opts: core.Options{SyncStateTransfer: true}},
	}
	return harness.Map(variants, func(v ablationVariant) AblationMigrationRow {
		return ablationMigrationOne(v.name, v.opts)
	})
}

func ablationMigrationOne(name string, opts core.Options) AblationMigrationRow {
	eng := sim.NewEngine()
	machine := newTwoGPUMachine(eng)
	m := core.NewManager(eng, machine, opts)
	low, err := m.AddJob(workload.Config{
		Name:      "low",
		Model:     mustSpec("VGG16"),
		Batch:     32,
		Kind:      workload.KindTraining,
		Priority:  1,
		Device:    gpu1,
		Fallbacks: fallbackToGPU0,
	})
	if err != nil {
		panic(err)
	}
	eng.RunUntil(5 * time.Second)
	highCfg := trainConfig("high", "ResNet50", 32, 2)
	highCfg.Device = gpu1
	high, err := m.AddJob(highCfg)
	if err != nil {
		panic(err)
	}
	arrival := eng.Now()
	lowIters := low.Iterations
	var highFirst, lowFirst time.Duration
	runUntil(eng, time.Hour, func() bool {
		if highFirst == 0 && high.Iterations > 0 {
			highFirst = eng.Now() - arrival
		}
		if lowFirst == 0 && low.Iterations > lowIters {
			lowFirst = eng.Now() - arrival
		}
		return highFirst > 0 && lowFirst > 0
	})
	return AblationMigrationRow{
		Variant:          name,
		HighFirstStepSec: highFirst.Seconds(),
		LowRecoverySec:   lowFirst.Seconds(),
	}
}
