package experiments

import (
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/harness"
	"switchflow/internal/sim"
)

// Figure6Row is one bar pair of Figure 6: the 95th-percentile latency of a
// high-priority BS=1 inference stream collocated with a background
// training job, under multi-threaded TF and under SwitchFlow.
type Figure6Row struct {
	TrainModel string
	InferModel string
	TFP95MS    float64
	SFP95MS    float64
	Speedup    float64 // TF / SwitchFlow
}

// figure6InferModels is the x-axis of subfigures (a)-(c).
var figure6InferModels = []string{
	"ResNet50", "VGG16", "VGG19", "DenseNet121", "DenseNet169",
	"InceptionV3", "MobileNetV2", "NASNetMobile",
}

// figure6TrainBackgrounds are subfigures (a)-(c).
var figure6TrainBackgrounds = []string{"MobileNetV2", "ResNet50", "VGG16"}

// figure6NMTTrainJobs is subfigure (d): NMT inference against CNN
// training jobs.
var figure6NMTTrainJobs = []string{
	"ResNet50", "VGG16", "VGG19", "DenseNet121", "InceptionV3", "MobileNetV2",
}

// Figure6 measures requests tail latency per (training, inference) pair.
// requests is the number of completed inference requests sampled per cell
// (after warmup). Cells run on the parallel harness in the serial sweep
// order: subfigures (a)-(c) background-major, then the NMT column (d).
func Figure6(requests int) []Figure6Row {
	type cell struct{ train, infer string }
	var cells []cell
	for _, bg := range figure6TrainBackgrounds {
		for _, infer := range figure6InferModels {
			cells = append(cells, cell{bg, infer})
		}
	}
	for _, bg := range figure6NMTTrainJobs {
		cells = append(cells, cell{bg, "NMT"})
	}
	return harness.Map(cells, func(c cell) Figure6Row {
		return figure6Cell(c.train, c.infer, requests)
	})
}

// Figure6Cell runs one (training, inference) pair.
func Figure6Cell(trainModel, inferModel string, requests int) Figure6Row {
	return figure6Cell(trainModel, inferModel, requests)
}

func figure6Cell(trainModel, inferModel string, requests int) Figure6Row {
	tf := figure6TF(trainModel, inferModel, requests)
	sf := figure6SF(trainModel, inferModel, requests)
	row := Figure6Row{
		TrainModel: trainModel,
		InferModel: inferModel,
		TFP95MS:    tf,
		SFP95MS:    sf,
	}
	if sf > 0 {
		row.Speedup = tf / sf
	}
	return row
}

const (
	figure6TrainBatch = 32
	figure6Warmup     = 2 * time.Second
	figure6Horizon    = 30 * time.Minute
)

func figure6TF(trainModel, inferModel string, requests int) float64 {
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")
	sched := baseline.NewThreadedTF(eng, machine)
	if _, err := sched.AddJob(trainConfig("train", trainModel, figure6TrainBatch, 1)); err != nil {
		panic(err)
	}
	eng.RunUntil(figure6Warmup)
	serve, err := sched.AddJob(serveConfig("serve", inferModel, 1, 2))
	if err != nil {
		panic(err)
	}
	runUntil(eng, figure6Horizon, func() bool {
		return serve.Latencies.Count() >= requests
	})
	return serve.Latencies.Percentile(95).Seconds() * 1e3
}

func figure6SF(trainModel, inferModel string, requests int) float64 {
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")
	m := core.NewManager(eng, machine, core.Options{})
	if _, err := m.AddJob(trainConfig("train", trainModel, figure6TrainBatch, 1)); err != nil {
		panic(err)
	}
	eng.RunUntil(figure6Warmup)
	serve, err := m.AddJob(serveConfig("serve", inferModel, 1, 2))
	if err != nil {
		panic(err)
	}
	runUntil(eng, figure6Horizon, func() bool {
		return serve.Latencies.Count() >= requests
	})
	return serve.Latencies.Percentile(95).Seconds() * 1e3
}
