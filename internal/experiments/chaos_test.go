package experiments

import (
	"reflect"
	"testing"

	"switchflow/internal/harness"
)

func TestChaosContrastsRecoveryAgainstBaselines(t *testing.T) {
	rows := Chaos([]int64{7})
	byName := map[string]ChaosRow{}
	for _, r := range rows {
		byName[r.Scheduler] = r
	}

	sf, ok := byName["switchflow"]
	if !ok {
		t.Fatalf("no switchflow row in %+v", rows)
	}
	if !sf.ServeAlive {
		t.Fatalf("switchflow serving job died despite fallbacks: %+v", sf)
	}
	if sf.Migrations == 0 {
		t.Errorf("switchflow should migrate off the lost GPU, got %+v", sf)
	}
	if sf.Restarts == 0 {
		t.Errorf("switchflow should record restarts, got %+v", sf)
	}
	if sf.JobsLost != 0 {
		t.Errorf("switchflow lost %d jobs despite fallbacks", sf.JobsLost)
	}

	ttf, ok := byName["threaded-tf"]
	if !ok {
		t.Fatalf("no threaded-tf row in %+v", rows)
	}
	if ttf.ServeAlive {
		t.Errorf("threaded-tf serving job should die with its GPU: %+v", ttf)
	}
	if ttf.JobsLost == 0 {
		t.Errorf("threaded-tf should lose jobs to the injected faults: %+v", ttf)
	}
	if ttf.Migrations != 0 || ttf.Restarts != 0 {
		t.Errorf("baselines have no recovery path, got %+v", ttf)
	}

	if sf.Served <= ttf.Served {
		t.Errorf("switchflow should keep serving past the fault: switchflow=%d threaded-tf=%d",
			sf.Served, ttf.Served)
	}
}

func TestParallelChaosMatchesSerial(t *testing.T) {
	seeds := []int64{1, 2}

	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)
	serial := Chaos(seeds)

	harness.SetParallelism(8)
	parallel := Chaos(seeds)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("chaos sweep is not deterministic under parallelism:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
