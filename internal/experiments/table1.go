package experiments

import (
	"switchflow/internal/device"
	"switchflow/internal/sim"
)

// Table1Row is one row of Table 1: the stateful variables a training job
// must preserve across a migration and the GPU-to-GPU transfer time over
// PCIe 3.0 x16.
type Table1Row struct {
	Model      string
	StatefulMB float64 // MiB
	Tensors    int
	TransferMS float64
	// PaperMB and PaperMS are the published values, for EXPERIMENTS.md.
	PaperMB float64
	PaperMS float64
}

// table1Paper holds the published Table 1 values.
var table1Paper = []struct {
	model string
	mib   float64
	ms    float64
}{
	{"ResNet50", 198.53, 28.838},
	{"VGG16", 1055.58, 103.747},
	{"VGG19", 1096.09, 109.416},
	{"DenseNet121", 64.83, 39.823},
	{"DenseNet169", 108.61, 45.236},
	{"InceptionResNetV2", 426.18, 82.137},
	{"InceptionV3", 182.00, 31.613},
	{"MobileNetV2", 27.25, 17.505},
}

// Table1 regenerates the model-state-transfer table: per model, the
// stateful-variable footprint (weights + optimizer slot) and the time to
// move it between two GPUs.
func Table1() []Table1Row {
	eng := sim.NewEngine()
	peer := device.NewCopyEngine(eng, device.ClassV100.PCIeGBps)
	rows := make([]Table1Row, 0, len(table1Paper))
	for _, p := range table1Paper {
		spec := mustSpec(p.model)
		bytes := spec.StatefulBytes()
		tensors := spec.WeightVars()
		d := peer.TransferTime(bytes, tensors)
		rows = append(rows, Table1Row{
			Model:      p.model,
			StatefulMB: float64(bytes) / (1 << 20),
			Tensors:    tensors,
			TransferMS: d.Seconds() * 1e3,
			PaperMB:    p.mib,
			PaperMS:    p.ms,
		})
	}
	return rows
}
