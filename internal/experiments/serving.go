package experiments

import (
	"time"

	"switchflow/internal/core"
	"switchflow/internal/device"
	"switchflow/internal/harness"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// ServingArm is one side of a serving-sweep cell: the same offered load
// with dynamic batching either enabled or disabled. Admission control
// runs in both arms, so the comparison isolates batching itself.
type ServingArm struct {
	GoodputPS float64 // SLO-met requests per second of the window
	P95MS     float64
	P99MS     float64
	Offered int
	Served  int
	Shed    int
	// AttainPct is the SLO-met fraction of the OFFERED load — a shed
	// request is a missed SLO from the client's perspective, so shedding
	// keeps the served tail clean but still costs attainment here.
	AttainPct float64
	MeanBatch float64
}

// ServingRow is one point of the SLO-aware serving sweep: a Poisson
// stream of BS=1 ResNet50 requests against one V100 under SwitchFlow.
type ServingRow struct {
	RatePerSec float64
	Batched    ServingArm
	Unbatched  ServingArm
}

// Serving sweep parameters: the SLO and batching policy every cell uses,
// and the offered loads. The top rates exceed what single-request
// launches sustain, which is where batching has to earn its keep.
const (
	servingSLO       = 200 * time.Millisecond
	servingMaxBatch  = 8
	servingBatchWait = 2 * time.Millisecond
)

var defaultServingRates = []float64{25, 50, 100, 200, 400}

// ServingSweep measures goodput and tail latency across offered loads,
// batching on vs off, on the parallel harness in rate order.
func ServingSweep(window time.Duration) []ServingRow {
	return harness.Map(defaultServingRates, func(rate float64) ServingRow {
		return ServingPoint(rate, window)
	})
}

// ServingPoint measures one offered load under both arms. Both arms see
// the identical arrival process (same seed, same mean), so every
// difference is the scheduler's doing.
func ServingPoint(ratePerSec float64, window time.Duration) ServingRow {
	return ServingRow{
		RatePerSec: ratePerSec,
		Batched:    servingOne(ratePerSec, window, true),
		Unbatched:  servingOne(ratePerSec, window, false),
	}
}

func servingOne(ratePerSec float64, window time.Duration, batched bool) ServingArm {
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")
	m := core.NewManager(eng, machine, core.Options{DisableDynamicBatching: !batched})
	job, err := m.AddJob(workload.Config{
		Name:            "serve",
		Model:           mustSpec("ResNet50"),
		Batch:           1,
		Kind:            workload.KindServing,
		Priority:        2,
		Device:          device.GPUID(0),
		ArrivalEvery:    time.Duration(float64(time.Second) / ratePerSec),
		PoissonArrivals: true,
		ArrivalSeed:     11,
		PerImageCPU:     10 * time.Millisecond,
		SLO:             servingSLO,
		MaxBatch:        servingMaxBatch,
		BatchWait:       servingBatchWait,
	})
	if err != nil {
		panic(err)
	}
	eng.RunUntil(window)
	// Stop the stream and drain, so every admitted request resolves and
	// the accounting closes: Served + Shed == Offered.
	job.StopArrivals()
	eng.Run()
	if job.Crashed() {
		panic(job.CrashErr)
	}
	st := job.ServingStats()
	arm := ServingArm{
		GoodputPS: float64(st.SLOMet) / window.Seconds(),
		P95MS:     job.Latencies.Percentile(95).Seconds() * 1e3,
		P99MS:     job.Latencies.Percentile(99).Seconds() * 1e3,
		Offered:   st.Offered,
		Served:    st.Served,
		Shed:      st.Shed,
		MeanBatch: st.MeanBatch(),
	}
	if st.Offered > 0 {
		arm.AttainPct = 100 * float64(st.SLOMet) / float64(st.Offered)
	}
	return arm
}
