package experiments

import (
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/sim"
	"switchflow/internal/trace"
)

// Figure2Result reproduces Figure 2: the kernel timeline of two ResNet50
// training jobs sharing one V100 under multi-threaded TF, and the
// throughput collapse the paper reports (226 -> 116 images/s per model).
type Figure2Result struct {
	// Timeline holds the per-kernel spans of the co-run (Figure 2's
	// nvprof view).
	Timeline *trace.Timeline
	// SoloImgPerSec is one ResNet50 training alone.
	SoloImgPerSec float64
	// CoRunImgPerSec is each model's throughput when sharing.
	CoRunImgPerSec [2]float64
	// OverlapFraction is the share of ctx-1 kernel time during which a
	// ctx-2 kernel was simultaneously executing — near zero, showing the
	// serialization the paper observed.
	OverlapFraction float64
}

// Figure2 runs the experiment over the given virtual window.
func Figure2(window time.Duration) Figure2Result {
	const batch = 16

	// Solo run.
	soloEng := sim.NewEngine()
	soloMachine := machineFor(soloEng, "V100")
	solo := baseline.NewThreadedTF(soloEng, soloMachine)
	soloJob, err := solo.AddJob(trainConfig("solo", "ResNet50", batch, 1))
	if err != nil {
		panic(err)
	}
	soloEng.RunUntil(window)
	result := Figure2Result{
		SoloImgPerSec: float64(soloJob.Iterations*batch) / window.Seconds(),
	}

	// Co-run with a timeline attached.
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")
	tl := &trace.Timeline{}
	tl.AttachBus(machine.Bus())
	sched := baseline.NewThreadedTF(eng, machine)
	a, err := sched.AddJob(trainConfig("resnet50-a", "ResNet50", batch, 1))
	if err != nil {
		panic(err)
	}
	b, err := sched.AddJob(trainConfig("resnet50-b", "ResNet50", batch, 1))
	if err != nil {
		panic(err)
	}
	eng.RunUntil(window)
	result.Timeline = tl
	result.CoRunImgPerSec[0] = float64(a.Iterations*batch) / window.Seconds()
	result.CoRunImgPerSec[1] = float64(b.Iterations*batch) / window.Seconds()
	ctxs := tl.Contexts()
	if len(ctxs) >= 2 {
		busy := tl.BusyTime(ctxs[0])
		if busy > 0 {
			overlap := tl.OverlapTime(ctxs[0], ctxs[1]) + tl.OverlapTime(ctxs[1], ctxs[0])
			result.OverlapFraction = float64(overlap) / float64(busy)
		}
	}
	return result
}
