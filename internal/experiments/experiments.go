// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate. Each Figure*/Table* function
// returns the rows/series the paper plots; cmd/swbench prints them and
// bench_test.go wraps them as benchmarks. Iteration counts are
// parameterised so benchmarks can run reduced versions.
package experiments

import (
	"time"

	"switchflow/internal/device"
	"switchflow/internal/models"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// runUntil steps the engine until cond returns true or the virtual horizon
// passes; it reports whether cond was met.
func runUntil(eng *sim.Engine, horizon time.Duration, cond func() bool) bool {
	for {
		if cond != nil && cond() {
			return true
		}
		if eng.Now() >= horizon {
			return false
		}
		if !eng.Step() {
			if cond != nil && cond() {
				return true
			}
			eng.RunUntil(horizon)
			return cond != nil && cond()
		}
	}
}

// mustSpec resolves a model name; experiment tables only reference models
// in the zoo, so failure is a programming error.
func mustSpec(name string) *models.Spec {
	spec, err := models.ByName(name)
	if err != nil {
		panic(err)
	}
	return spec
}

// gpuByName maps the paper's GPU names to classes.
func gpuByName(name string) device.GPUClass {
	switch name {
	case "V100":
		return device.ClassV100
	case "RTX 2080 Ti":
		return device.ClassRTX2080Ti
	case "GTX 1080 Ti":
		return device.ClassGTX1080Ti
	case "Jetson TX2":
		return device.ClassJetsonTX2
	default:
		panic("unknown GPU " + name)
	}
}

// machineFor builds a single-GPU machine with the CPU that accompanies the
// GPU in the paper's testbeds.
func machineFor(eng *sim.Engine, gpu string) *device.Machine {
	class := gpuByName(gpu)
	cpu := device.ClassXeonDual
	if gpu == "Jetson TX2" {
		cpu = device.ClassCortexA57
	}
	return device.NewMachine(eng, cpu, class)
}

// Common placements on the two-GPU server (GTX 1080 Ti = gpu:0,
// RTX 2080 Ti = gpu:1).
var (
	gpu1           = device.GPUID(1)
	fallbackToGPU0 = []device.ID{device.GPUID(0), device.CPUID}
)

// newTwoGPUMachine builds the GTX 1080 Ti + RTX 2080 Ti server.
func newTwoGPUMachine(eng *sim.Engine) *device.Machine {
	return device.NewTwoGPUServer(eng)
}

// trainConfig is a standard training-job config.
func trainConfig(name, model string, batch, priority int) workload.Config {
	return workload.Config{
		Name:     name,
		Model:    mustSpec(model),
		Batch:    batch,
		Kind:     workload.KindTraining,
		Priority: priority,
		Device:   device.GPUID(0),
	}
}

// serveConfig is a closed-loop serving-job config (the paper's continuous
// request stream, §5.2.1). Serving requests arrive as single decoded
// images, so per-request CPU work is the ~10 ms of one decode rather than
// the batched tf.data pipeline's amortized cost.
func serveConfig(name, model string, batch, priority int) workload.Config {
	return workload.Config{
		Name:        name,
		Model:       mustSpec(model),
		Batch:       batch,
		Kind:        workload.KindServing,
		Priority:    priority,
		Device:      device.GPUID(0),
		ClosedLoop:  true,
		PerImageCPU: 10 * time.Millisecond,
	}
}

// saturatedConfig is a throughput-oriented inference config (Figures
// 8-10). Collocated throughput jobs share one priority class so the GPU
// arbiter round-robins instead of starving anyone.
func saturatedConfig(name, model string, batch int) workload.Config {
	return workload.Config{
		Name:      name,
		Model:     mustSpec(model),
		Batch:     batch,
		Kind:      workload.KindServing,
		Priority:  1,
		Device:    device.GPUID(0),
		Saturated: true,
	}
}
