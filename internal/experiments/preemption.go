package experiments

import (
	"time"

	"switchflow/internal/core"
	"switchflow/internal/sim"
)

// PreemptionResult reproduces the §5.2.3 analysis: the latency from a
// high-priority arrival to GPU grant (bounded by the in-flight kernel) and
// the state-transfer window during which the source GPU retains weights.
type PreemptionResult struct {
	TrainModel   string
	Preemptions  int
	MeanGrantMS  float64
	P95GrantMS   float64
	MaxGrantMS   float64
	StateMB      float64 // retained during migration (Table 1 column)
	TransferMS   float64
	ServedP95MS  float64
	TrainStepsPS float64 // background progress while being preempted
}

// PreemptionOverhead collocates a BS=1 inference stream with a background
// training job on one V100 and reports preemption-grant latencies over the
// given number of requests.
func PreemptionOverhead(trainModel string, requests int) PreemptionResult {
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")
	m := core.NewManager(eng, machine, core.Options{})
	train, err := m.AddJob(trainConfig("train", trainModel, 32, 1))
	if err != nil {
		panic(err)
	}
	eng.RunUntil(2 * time.Second)
	serve, err := m.AddJob(serveConfig("serve", "ResNet50", 1, 2))
	if err != nil {
		panic(err)
	}
	start := eng.Now()
	runUntil(eng, time.Hour, func() bool { return serve.Latencies.Count() >= requests })
	window := eng.Now() - start

	spec := mustSpec(trainModel)
	peerMS := machine.Peer().TransferTime(spec.StatefulBytes(), spec.WeightVars())
	res := PreemptionResult{
		TrainModel:  trainModel,
		Preemptions: m.Preemptions,
		MeanGrantMS: m.PreemptionLatencies.Mean().Seconds() * 1e3,
		P95GrantMS:  m.PreemptionLatencies.Percentile(95).Seconds() * 1e3,
		MaxGrantMS:  m.PreemptionLatencies.Max().Seconds() * 1e3,
		StateMB:     float64(spec.StatefulBytes()) / (1 << 20),
		TransferMS:  peerMS.Seconds() * 1e3,
		ServedP95MS: serve.Latencies.Percentile(95).Seconds() * 1e3,
	}
	if window > 0 {
		res.TrainStepsPS = float64(train.Iterations) / window.Seconds()
	}
	return res
}
