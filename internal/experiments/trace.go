package experiments

import (
	"io"
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/harness"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
)

// ChromeTraceResult is one scheduler's canned co-run captured off the
// observability spine, ready for Chrome trace-event export.
type ChromeTraceResult struct {
	// Sched names the scheduler ("threaded" or "switchflow").
	Sched string
	// Events is the full recorded spine stream, in emission order.
	Events []obs.Event
	// Spans counts kernel spans; Preempts counts preemption decisions
	// (always zero under threaded TF — it has no preemption mechanism).
	Spans    int
	Preempts int
}

// traceKinds is what the canned trace records: kernel spans plus every
// scheduler decision. Executor-level OpSched/Launch dispatch is omitted —
// it multiplies the artifact size without adding to the Figure 2 story.
var traceKinds = []obs.Kind{
	obs.KindKernelSpan, obs.KindPreempt, obs.KindResume, obs.KindMigrate,
	obs.KindBatchFuse, obs.KindAdmit, obs.KindShed, obs.KindServe,
	obs.KindFaultInject, obs.KindJobLost, obs.KindCheckpoint,
	obs.KindRestore, obs.KindPlace,
}

// ChromeTrace runs the canned observability experiment: two ResNet50
// training jobs co-running on one V100, once under multi-threaded TF and
// once under SwitchFlow with a priority ladder (job 1 outranks job 0, so
// every iteration of the high-priority job preempts the other). The
// cells run through the parallel harness; each owns its engine and bus,
// so the recorded streams are identical in serial and parallel runs.
func ChromeTrace(window time.Duration) []ChromeTraceResult {
	cells := []string{"threaded", "switchflow"}
	return harness.Map(cells, func(sched string) ChromeTraceResult {
		const batch = 16
		eng := sim.NewEngine()
		machine := machineFor(eng, "V100")
		rec := obs.NewRecorder(0)
		machine.Bus().Subscribe(rec, traceKinds...)

		cfgA := trainConfig("resnet50-a", "ResNet50", batch, 0)
		cfgB := trainConfig("resnet50-b", "ResNet50", batch, 1)
		switch sched {
		case "threaded":
			s := baseline.NewThreadedTF(eng, machine)
			mustAdd(s.AddJob(cfgA))
			mustAdd(s.AddJob(cfgB))
		case "switchflow":
			m := core.NewManager(eng, machine, core.Options{})
			mustAdd(m.AddJob(cfgA))
			mustAdd(m.AddJob(cfgB))
		}
		eng.RunUntil(window)

		res := ChromeTraceResult{Sched: sched, Events: rec.Events()}
		for _, e := range res.Events {
			switch e.Kind {
			case obs.KindKernelSpan:
				res.Spans++
			case obs.KindPreempt:
				res.Preempts++
			}
		}
		return res
	})
}

// WriteChromeTrace renders one result as Chrome trace-event JSON.
func (r ChromeTraceResult) WriteChromeTrace(w io.Writer) error {
	return obs.WriteChrome(w, r.Events)
}

func mustAdd[T any](v T, err error) {
	if err != nil {
		panic(err)
	}
}
