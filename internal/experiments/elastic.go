package experiments

import (
	"time"

	"switchflow"
	"switchflow/internal/harness"
	"switchflow/internal/obs"
)

// ElasticRow is one arm of the elastic-recovery comparison: a training
// job on the two-GPU server whose home GPU is taken away mid-run.
//
//   - "elastic":  SwitchFlow with virtual-node placement. The job grows
//     from one to two virtual nodes at the quarter mark, then gpu:0 is
//     drained at the half mark and the job rebinds onto the survivor.
//     It keeps its optimizer state — Restarts and IterationsLost stay 0.
//   - "restart":  SwitchFlow with the PR-2 checkpoint/restart path: a
//     legacy (non-elastic) job with a fallback device loses gpu:0 to a
//     fault, rolls back to its last host checkpoint, and restarts.
//   - "threaded" / "timeslice": process-model baselines. They can
//     neither drain nor migrate, so losing gpu:0 loses the job.
type ElasticRow struct {
	Mode      string
	Scheduler string
	// Iterations completed by the training job at the horizon.
	Iterations int
	// Alive reports whether the job survived the device loss.
	Alive bool
	// Restarts / IterationsLost are the recovery costs (zero for the
	// elastic arm, positive for restart-based recovery).
	Restarts       int
	IterationsLost int
	// Grows / Rebinds count KindResize("grow") and KindRebind events.
	Grows   int
	Rebinds int
	// Binding is the job's final virtual-node binding ("" for
	// non-elastic arms).
	Binding string
}

const (
	elasticHorizon = 60 * time.Second
	elasticGrowAt  = elasticHorizon / 4
	elasticLossAt  = elasticHorizon / 2
	elasticCkpt    = 5 * time.Second
)

var elasticModes = []string{"elastic", "restart", "threaded", "timeslice"}

// Elastic runs the four arms on the parallel harness. Every arm owns its
// engine and machine, so serial and parallel runs are byte-identical.
func Elastic() []ElasticRow {
	return harness.Map(elasticModes, elasticCell)
}

func elasticCell(mode string) ElasticRow {
	switch mode {
	case "elastic":
		return elasticArm()
	case "restart":
		return restartArm()
	case "threaded":
		return baselineArm(mode, switchflow.PolicyThreadedTF)
	case "timeslice":
		return baselineArm(mode, switchflow.PolicyTimeSlice)
	default:
		panic("unknown elastic mode " + mode)
	}
}

// elasticArm: grow 1→2 virtual nodes, then drain gpu:0. The rebind
// reuses the replica already resident on gpu:1, so recovery is free.
func elasticArm() ElasticRow {
	sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
	rec := obs.NewRecorder(0)
	sim.EventBus().Subscribe(rec, obs.KindRebind, obs.KindResize)
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		panic(err)
	}
	train, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "ResNet50", Batch: 16, Train: true,
		Priority:  1,
		Placement: switchflow.Placement{Device: 0, VNodes: []int{0}},
	})
	if err != nil {
		panic(err)
	}
	sim.RunUntil(elasticGrowAt)
	if err := sched.Grow(train, 2); err != nil {
		panic(err)
	}
	sim.RunUntil(elasticLossAt)
	if err := sched.Drain(0); err != nil {
		panic(err)
	}
	sim.RunUntil(elasticHorizon)

	row := ElasticRow{
		Mode:       "elastic",
		Scheduler:  sched.Name(),
		Iterations: train.Iterations(),
		Alive:      !train.Crashed(),
		Restarts:   train.Restarts(),
		Binding:    train.Binding(),
	}
	for _, e := range rec.Events() {
		switch {
		case e.Kind == obs.KindRebind:
			row.Rebinds++
		case e.Kind == obs.KindResize && e.Name == "grow":
			row.Grows++
		}
	}
	return row
}

// restartArm: the PR-2 recovery path. gpu:0 dies, the job migrates to
// its fallback and restarts from the last host checkpoint, paying
// rollback in lost iterations.
func restartArm() ElasticRow {
	sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
	plan := switchflow.NewFaultPlan().LoseGPU(elasticLossAt, 0)
	sched, err := sim.NewSwitchFlowScheduler(
		switchflow.WithFaultPlan(plan),
		switchflow.WithCheckpointEvery(elasticCkpt))
	if err != nil {
		panic(err)
	}
	train, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "ResNet50", Batch: 16, Train: true,
		Priority:  1,
		Placement: switchflow.Placement{Device: 0, Fallbacks: []int{1}},
	})
	if err != nil {
		panic(err)
	}
	sim.RunUntil(elasticHorizon)
	st := sched.FaultStats()
	return ElasticRow{
		Mode:           "restart",
		Scheduler:      sched.Name(),
		Iterations:     train.Iterations(),
		Alive:          !train.Crashed(),
		Restarts:       train.Restarts(),
		IterationsLost: st.IterationsLost,
	}
}

// baselineArm: the process-model baselines cannot move a job, so losing
// its device loses the job.
func baselineArm(mode string, policy switchflow.Policy) ElasticRow {
	sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
	plan := switchflow.NewFaultPlan().LoseGPU(elasticLossAt, 0)
	sched, err := sim.NewScheduler(policy, switchflow.WithFaultPlan(plan))
	if err != nil {
		panic(err)
	}
	train, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "ResNet50", Batch: 16, Train: true,
		Priority: 1, Placement: switchflow.Placement{Device: 0},
	})
	if err != nil {
		panic(err)
	}
	sim.RunUntil(elasticHorizon)
	return ElasticRow{
		Mode:       mode,
		Scheduler:  sched.Name(),
		Iterations: train.Iterations(),
		Alive:      !train.Crashed(),
		Restarts:   train.Restarts(),
	}
}
