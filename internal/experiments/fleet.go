package experiments

import (
	"time"

	"switchflow/internal/cluster"
	"switchflow/internal/device"
	"switchflow/internal/harness"
	"switchflow/internal/workload"
)

// FleetRow summarizes one placement policy over the synthetic fleet
// scenario: the status-quo "dedicate GPUs to training, pack inference"
// policy versus SwitchFlow-enabled collocation (§1-2's deployment story).
type FleetRow struct {
	Policy          string
	TrainingPlaced  int
	TrainingQueued  int
	MeanQueueDelayS float64 // over placed training jobs
	TrainImgPS      float64 // aggregate across the fleet
	WorstServeP95MS float64 // across services
	SLOAttainPct    float64 // requests <= SLO across all services
}

// fleetSLO is the serving latency objective.
const fleetSLO = 200 * time.Millisecond

// Fleet runs the scenario under each policy: a 2-node, 4-GPU V100 fleet;
// four training jobs and six inference services arriving over the first
// minute; measured over the following window.
func Fleet(window time.Duration) []FleetRow {
	policies := []cluster.Policy{cluster.Dedicate{}, cluster.FirstFit{}, cluster.Collocate{}}
	return harness.Map(policies, func(p cluster.Policy) FleetRow {
		return fleetOne(p, window)
	})
}

// fleetOne runs one policy's cell. The cluster shards the two nodes onto
// their own engines and advances them in parallel epochs; submission
// times are multiples of the cluster epoch, so placements land at exactly
// the instants a serial single-engine run would have produced.
func fleetOne(policy cluster.Policy, window time.Duration) FleetRow {
	c := cluster.New(policy, 2, device.ClassV100, device.ClassV100)

	trainModels := []string{"ResNet50", "VGG16", "InceptionV3", "DenseNet121"}
	var trainings []*cluster.JobHandle
	for i, model := range trainModels {
		cfg := workload.Config{
			Name: "train-" + model, Model: mustSpec(model), Batch: 32,
			Kind: workload.KindTraining, Priority: 1,
		}
		trainings = append(trainings, c.Submit(time.Duration(i)*10*time.Second, cfg))
	}
	serveModels := []string{"ResNet50", "MobileNetV2", "DenseNet121", "InceptionV3", "NASNetMobile", "VGG16"}
	var services []*cluster.JobHandle
	for i, model := range serveModels {
		cfg := workload.Config{
			Name: "serve-" + model, Model: mustSpec(model), Batch: 1,
			Kind: workload.KindServing, Priority: 2,
			ArrivalEvery:    150 * time.Millisecond,
			PoissonArrivals: true,
			ArrivalSeed:     int64(100 + i),
			PerImageCPU:     10 * time.Millisecond,
		}
		services = append(services, c.Submit(time.Duration(i)*5*time.Second, cfg))
	}

	const settle = 60 * time.Second
	c.RunUntil(settle)
	trainStart := make([]int, len(trainings))
	for i, h := range trainings {
		if h.Placed {
			trainStart[i] = h.Job.Iterations
		}
	}
	c.RunUntil(settle + window)

	row := FleetRow{Policy: policy.Name()}
	var delays time.Duration
	for i, h := range trainings {
		if !h.Placed {
			row.TrainingQueued++
			continue
		}
		row.TrainingPlaced++
		delays += h.QueueDelay()
		row.TrainImgPS += float64((h.Job.Iterations-trainStart[i])*32) / window.Seconds()
	}
	if row.TrainingPlaced > 0 {
		row.MeanQueueDelayS = delays.Seconds() / float64(row.TrainingPlaced)
	}
	total, below := 0, 0
	for _, h := range services {
		if !h.Placed || h.Job == nil {
			continue
		}
		p95 := h.Job.Latencies.Percentile(95).Seconds() * 1e3
		if p95 > row.WorstServeP95MS {
			row.WorstServeP95MS = p95
		}
		total += h.Job.Latencies.Count()
		below += h.Job.Latencies.Below(fleetSLO)
	}
	if total > 0 {
		row.SLOAttainPct = float64(below) / float64(total) * 100
	}
	return row
}
