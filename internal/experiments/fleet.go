package experiments

import (
	"fmt"
	"time"

	"switchflow/internal/cluster"
	"switchflow/internal/device"
	"switchflow/internal/harness"
	"switchflow/internal/traffic"
	"switchflow/internal/workload"
)

// FleetTierStats summarizes one SLO tier of the serving fleet.
type FleetTierStats struct {
	// Tenants in the tier.
	Tenants int
	// Served requests and the share of them inside the tier SLO.
	Served    int
	AttainPct float64
	// WorstP99MS is the highest per-replica P99 latency in the tier
	// (milliseconds), over replicas that served at least one request.
	WorstP99MS float64
}

// FleetRow is one routing arm of the million-user fleet scenario.
type FleetRow struct {
	// Strategy is "hash" or "least-loaded"; Autoscaled tells whether the
	// shed-rate controller ran (the static arm pins the initial replicas).
	Strategy   string
	Autoscaled bool
	// Nodes and Clients describe the scenario scale.
	Nodes   int
	Clients int
	// Offered counts every generated request (routed + dropped); Routed
	// reached a replica, Dropped found no live replica, Shed is everything
	// clients saw fail (router drops + admission sheds + strandings).
	// Requests still in flight when the horizon lands are offered but
	// neither served nor shed.
	Offered int
	Routed  int
	Dropped int
	Shed    int
	// Served counts completed requests; GoodputPS is SLO-met completions
	// per second across the fleet.
	Served    int
	GoodputPS float64
	// Autoscaler actions: serving replica sets out/in, elastic training
	// vnode shrinks/grows. FinalReplicas is the fleet-wide replica count
	// (live or queued) at the horizon.
	ScaleOuts, ScaleIns int
	Shrinks, Grows      int
	FinalReplicas       int
	// MeanPlaceDelayMS averages the placement queue delay over replicas
	// that placed (milliseconds); most place instantly at submit.
	MeanPlaceDelayMS float64
	// Gold, Silver, Bronze break attainment down by tier.
	Gold, Silver, Bronze FleetTierStats
	// TrainImgPS is the background elastic training throughput.
	TrainImgPS float64
}

// Fleet scenario constants: the node count and the traffic shape, sized
// in fractions of the window so reduced test runs keep the same story —
// a compressed diurnal day with a flash crowd landing near the peak.
const (
	fleetNodes    = 8
	fleetSeed     = 97
	fleetTenants  = 12
	fleetBaseRPS  = 360.0
	fleetReplicas = 1 // initial replicas per tenant
)

// FleetProfile is the load shape swbench -exp fleet drives: clients
// aggregate to a fixed base rate (the population scales the per-client
// rate down, so one flag sweeps "how many users" without resizing the
// fleet), shaped by a diurnal sinusoid and a 6x flash crowd at ~0.28 of
// the window, with the diurnal trough after the crowd decays so the
// autoscaler's scale-in shows inside the same run.
func FleetProfile(window time.Duration, clients int) traffic.Profile {
	return traffic.Profile{
		Clients:       clients,
		RPSPerClient:  fleetBaseRPS / float64(clients),
		DiurnalPeriod: window * 4 / 5,
		DiurnalMin:    0.35,
		Spikes: []traffic.Spike{{
			Start:     window * 28 / 100,
			Ramp:      window * 4 / 100,
			Hold:      window * 10 / 100,
			Decay:     window * 5 / 100,
			Magnitude: 6,
		}},
		Tenants: traffic.SyntheticTenants(fleetTenants, fleetSeed),
		Seed:    fleetSeed,
	}
}

// fleetArm is one cell of the comparison.
type fleetArm struct {
	strategy   cluster.RouteStrategy
	autoscaled bool
}

// Fleet runs the million-user serving scenario over an 8-node, 16-GPU
// V100 fleet: a static consistent-hash arm (no autoscaler) against
// autoscaled consistent-hash and least-loaded routing. Each arm owns its
// cluster, so the harness can run them in parallel with byte-identical
// results.
func Fleet(window time.Duration, clients int) []FleetRow {
	arms := []fleetArm{
		{cluster.RouteHash, false},
		{cluster.RouteHash, true},
		{cluster.RouteLeastLoaded, true},
	}
	return harness.Map(arms, func(a fleetArm) FleetRow {
		return fleetOne(a, window, clients)
	})
}

// fleetOne runs one routing arm end to end.
func fleetOne(arm fleetArm, window time.Duration, clients int) FleetRow {
	gpus := []device.GPUClass{device.ClassV100, device.ClassV100}
	c := cluster.New(cluster.Collocate{}, fleetNodes, gpus...)

	gen, err := traffic.NewGenerator(FleetProfile(window, clients))
	if err != nil {
		panic(err)
	}
	fe, err := cluster.NewFrontend(c, gen, arm.strategy, nil)
	if err != nil {
		panic(err)
	}

	// Background elastic training on the tail nodes, spanning both GPUs.
	// Added through the node managers directly (virtual-node placements
	// name their own devices, which the cluster policy would rewrite);
	// the autoscaler flexes them between 1 and 2 vnodes around the
	// serving tide.
	var scaler *cluster.Autoscaler
	if arm.autoscaled {
		// IdleRPS sits well under one replica's capacity (hundreds of
		// req/s batched) but above the diurnal trough's per-replica rate,
		// so the fleet consolidates between crowds.
		scaler = fe.EnableAutoscaler(cluster.AutoscaleConfig{
			IdleRPS:     40,
			MaxReplicas: 4,
		})
	}
	nodes := c.Nodes()
	trainModels := []string{"ResNet50", "InceptionV3"}
	var elastics []*workload.Job
	for i, model := range trainModels {
		n := nodes[len(nodes)-1-i]
		job, err := n.Manager().AddJob(workload.Config{
			Name:     fmt.Sprintf("train-%s", model),
			Model:    mustSpec(model),
			Batch:    32,
			Kind:     workload.KindTraining,
			Priority: 1,
			Device:   device.GPUID(0),
			VNodes:   []device.ID{device.GPUID(0), device.GPUID(1)},
		})
		if err != nil {
			panic(err)
		}
		elastics = append(elastics, job)
		if scaler != nil {
			scaler.RegisterElastic(n, job, 1, 2)
		}
	}

	fe.Start(fleetReplicas)
	c.RunUntil(window)

	row := FleetRow{
		Strategy:   arm.strategy.String(),
		Autoscaled: arm.autoscaled,
		Nodes:      fleetNodes,
		Clients:    clients,
		Routed:     fe.Routed(),
		Dropped:    fe.Dropped(),
		Offered:    fe.Routed() + fe.Dropped(),
	}
	var placeDelay time.Duration
	placedReplicas := 0
	for _, svc := range fe.Services() {
		cnt := svc.Counters()
		row.Shed += cnt.Shed
		row.Served += cnt.Served
		row.GoodputPS += float64(cnt.SLOMet) / window.Seconds()
		row.ScaleOuts += svc.ScaleOuts()
		row.ScaleIns += svc.ScaleIns()

		tier := tierStatsOf(&row, svc.Tenant().Tier)
		tier.Tenants++
		tier.Served += cnt.Served

		for _, h := range svc.Replicas() {
			if d, ok := h.QueueDelay(); ok {
				placeDelay += d
				placedReplicas++
			}
			if !h.Stopped() {
				row.FinalReplicas++
			}
			if h.Job == nil || h.Job.Latencies.Count() == 0 {
				continue
			}
			if p99 := h.Job.Latencies.Percentile(99).Seconds() * 1e3; p99 > tier.WorstP99MS {
				tier.WorstP99MS = p99
			}
		}
	}
	fleetAttainment(fe, &row)
	if placedReplicas > 0 {
		row.MeanPlaceDelayMS = placeDelay.Seconds() * 1e3 / float64(placedReplicas)
	}
	if scaler != nil {
		row.Shrinks = scaler.Shrinks()
		row.Grows = scaler.Grows()
	}
	for _, job := range elastics {
		row.TrainImgPS += float64(job.Iterations*32) / window.Seconds()
	}
	return row
}

// tierStatsOf maps a tier to its row slot.
func tierStatsOf(row *FleetRow, t traffic.Tier) *FleetTierStats {
	switch t {
	case traffic.TierGold:
		return &row.Gold
	case traffic.TierSilver:
		return &row.Silver
	default:
		return &row.Bronze
	}
}

// fleetAttainment fills per-tier attainment from the service counters.
func fleetAttainment(fe *cluster.Frontend, row *FleetRow) {
	var met [3]int
	for _, svc := range fe.Services() {
		met[svc.Tenant().Tier] += svc.Counters().SLOMet
	}
	fill := func(tier *FleetTierStats, slomet int) {
		if tier.Served > 0 {
			tier.AttainPct = 100 * float64(slomet) / float64(tier.Served)
		}
	}
	fill(&row.Gold, met[traffic.TierGold])
	fill(&row.Silver, met[traffic.TierSilver])
	fill(&row.Bronze, met[traffic.TierBronze])
}
