package experiments

import (
	"time"

	"switchflow"
	"switchflow/internal/cluster"
	"switchflow/internal/device"
	"switchflow/internal/harness"
	"switchflow/internal/models"
	"switchflow/internal/obs"
	"switchflow/internal/workload"
)

// GangRow is one arm of the gang-scheduling comparison.
//
//   - "nvlink" / "straddle": a two-replica VGG16 gang on the NVLink
//     testbed, bound to the NVLink island {0,1} vs straddling the PCIe
//     switch {1,2}. Identical GPUs and shares; only the fabric under
//     the all-reduce ring differs, so the iteration gap is the modeled
//     sync cost made visible.
//   - "gang": three two-replica gangs contend for one 4-GPU NVLink
//     node. All-or-nothing placement admits two whole gangs onto the
//     two islands and queues the third whole — PartialGangs must be 0.
//   - "independent": the same six replicas submitted as six independent
//     trainers. Everything places (they stack freely), nothing syncs,
//     and nothing waits — the contrast arm for gang semantics.
//   - "preempt": a gang on {0,1} loses gpu:0 to high-priority serving.
//     The whole gang suspends and resumes as one unit; Stragglers
//     counts lone replicas resumed against a displaced gang (must be
//     0).
type GangRow struct {
	Mode string
	// Iterations completed by the observed training job at the horizon.
	Iterations int
	// AllReduces counts priced sync barriers; MeanSyncMillis is their
	// mean modeled cost.
	AllReduces     int
	MeanSyncMillis float64
	// GangPlaces / GangPreempts / GangResumes count whole-gang events.
	GangPlaces   int
	GangPreempts int
	GangResumes  int
	// Stragglers counts per-replica resumes while the gang was
	// displaced; whole-gang semantics require 0.
	Stragglers int
	// QueuedWhole is how many gangs wait whole (no partial placement) at
	// the horizon; PartialGangs counts placement states that violate
	// all-or-nothing and must be 0.
	QueuedWhole  int
	PartialGangs int
}

const gangHorizon = 30 * time.Second

var gangModes = []string{"nvlink", "straddle", "gang", "independent", "preempt"}

// Gang runs the five arms on the parallel harness. Every arm owns its
// engine and machine, so serial and parallel runs are byte-identical.
func Gang() []GangRow {
	return harness.Map(gangModes, gangCell)
}

func gangCell(mode string) GangRow {
	switch mode {
	case "nvlink":
		return gangFabricArm(mode, []int{0, 1})
	case "straddle":
		return gangFabricArm(mode, []int{1, 2})
	case "gang":
		return gangContentionArm(true)
	case "independent":
		return gangContentionArm(false)
	case "preempt":
		return gangPreemptArm()
	default:
		panic("unknown gang mode " + mode)
	}
}

// gangFabricArm pins a two-replica VGG16 gang to the given GPU pair and
// measures how the fabric under the ring prices every step.
func gangFabricArm(mode string, gpus []int) GangRow {
	sim := switchflow.NewSimulation(switchflow.NVLinkV100Server())
	rec := obs.NewRecorder(0)
	sim.EventBus().Subscribe(rec, obs.KindAllReduce)
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		panic(err)
	}
	train, err := sched.AddJob(switchflow.JobSpec{
		Name: "ddp", Model: "VGG16", Batch: 32, Train: true, Priority: 1,
		Gang:      true,
		Placement: switchflow.Placement{Device: gpus[0], VNodes: gpus},
	})
	if err != nil {
		panic(err)
	}
	sim.RunUntil(gangHorizon)
	row := GangRow{Mode: mode, Iterations: train.Iterations()}
	row.AllReduces, row.MeanSyncMillis = syncStats(rec.Events())
	return row
}

// gangContentionArm submits three two-replica ResNet50 gangs — or the
// same six replicas as independent trainers — to one 4-GPU NVLink node.
func gangContentionArm(gang bool) GangRow {
	resnet, err := models.ByName("ResNet50")
	if err != nil {
		panic(err)
	}
	c := cluster.NewNVLink(cluster.Collocate{}, 1, 2,
		device.ClassV100, device.ClassV100, device.ClassV100, device.ClassV100)
	c.Record()
	var handles []*cluster.JobHandle
	if gang {
		for _, name := range []string{"g1", "g2", "g3"} {
			handles = append(handles, c.Submit(0, workload.Config{
				Name: name, Model: resnet, Batch: 32,
				Kind: workload.KindTraining, Priority: 1,
				Gang: true, Replicas: 2,
			}))
		}
	} else {
		for _, name := range []string{"w1", "w2", "w3", "w4", "w5", "w6"} {
			handles = append(handles, c.Submit(0, workload.Config{
				Name: name, Model: resnet, Batch: 16,
				Kind: workload.KindTraining, Priority: 1,
			}))
		}
	}
	c.RunUntil(gangHorizon)

	mode := "independent"
	if gang {
		mode = "gang"
	}
	row := GangRow{Mode: mode, QueuedWhole: c.GangQueued()}
	if handles[0].Placed {
		row.Iterations = handles[0].Job.Iterations
	}
	width := 2
	for _, h := range handles {
		partial := (h.Placed && gang && len(h.Where.GPUs) != width) ||
			(!h.Placed && h.Job != nil)
		if partial {
			row.PartialGangs++
		}
	}
	var syncs []obs.Event
	for _, e := range c.Events() {
		switch e.Kind {
		case obs.KindGangPlace:
			row.GangPlaces++
		case obs.KindAllReduce:
			syncs = append(syncs, e)
		}
	}
	row.AllReduces, row.MeanSyncMillis = syncStats(syncs)
	return row
}

// gangPreemptArm collocates high-priority serving onto one replica's GPU
// and checks the gang suspends and resumes as a unit, never a lone
// replica.
func gangPreemptArm() GangRow {
	sim := switchflow.NewSimulation(switchflow.NVLinkV100Server())
	rec := obs.NewRecorder(0)
	sim.EventBus().Subscribe(rec,
		obs.KindAllReduce, obs.KindGangPreempt, obs.KindGangResume, obs.KindResume)
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		panic(err)
	}
	train, err := sched.AddJob(switchflow.JobSpec{
		Name: "ddp", Model: "ResNet50", Batch: 32, Train: true, Priority: 1,
		Gang:      true,
		Placement: switchflow.Placement{Device: 0, VNodes: []int{0, 1}},
	})
	if err != nil {
		panic(err)
	}
	sim.RunUntil(5 * time.Second)
	if _, err := sched.AddJob(switchflow.JobSpec{
		Name: "serve", Model: "MobileNetV2", Batch: 1, Priority: 9,
		ClosedLoop: true,
		Placement:  switchflow.Placement{Device: 0},
	}); err != nil {
		panic(err)
	}
	sim.RunUntil(gangHorizon)

	row := GangRow{Mode: "preempt", Iterations: train.Iterations()}
	var syncs []obs.Event
	gangHeld := true
	for _, e := range rec.Events() {
		switch e.Kind {
		case obs.KindAllReduce:
			syncs = append(syncs, e)
		case obs.KindGangPreempt:
			row.GangPreempts++
			gangHeld = false
		case obs.KindGangResume:
			row.GangResumes++
			gangHeld = true
		case obs.KindResume:
			if e.Job == "ddp" && !gangHeld {
				row.Stragglers++
			}
		}
	}
	row.AllReduces, row.MeanSyncMillis = syncStats(syncs)
	return row
}

// syncStats reduces AllReduce events to a count and mean priced cost.
func syncStats(events []obs.Event) (int, float64) {
	var n int
	var total time.Duration
	for _, e := range events {
		if e.Kind != obs.KindAllReduce {
			continue
		}
		n++
		total += e.Dur
	}
	if n == 0 {
		return 0, 0
	}
	return n, (total / time.Duration(n)).Seconds() * 1e3
}
