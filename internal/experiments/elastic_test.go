package experiments

import (
	"reflect"
	"testing"

	"switchflow/internal/harness"
)

// TestElasticRecoveryBeatsRestart is the acceptance contract of the
// elastic experiment: the elastic arm survives the drain by rebinding
// (zero restarts, zero rollback), the restart arm survives but pays a
// restart plus checkpoint rollback, and the process-model baselines
// lose the job outright.
func TestElasticRecoveryBeatsRestart(t *testing.T) {
	rows := Elastic()
	byMode := make(map[string]ElasticRow, len(rows))
	for _, r := range rows {
		byMode[r.Mode] = r
	}

	el, ok := byMode["elastic"]
	if !ok {
		t.Fatal("no elastic row")
	}
	if !el.Alive {
		t.Fatal("elastic job did not survive the drain")
	}
	if el.Restarts != 0 {
		t.Fatalf("elastic job restarted %d times; want 0", el.Restarts)
	}
	if el.IterationsLost != 0 {
		t.Fatalf("elastic job lost %d iterations; want 0", el.IterationsLost)
	}
	if el.Grows == 0 {
		t.Fatal("elastic arm recorded no grow event")
	}
	if el.Rebinds == 0 {
		t.Fatal("elastic arm recorded no rebind events")
	}
	if el.Binding == "" {
		t.Fatal("elastic row has empty final binding")
	}

	re, ok := byMode["restart"]
	if !ok {
		t.Fatal("no restart row")
	}
	if !re.Alive {
		t.Fatal("restart-based job did not survive the device loss")
	}
	if re.Restarts == 0 {
		t.Fatal("restart arm recorded no restart; the comparison is vacuous")
	}
	if re.IterationsLost == 0 {
		t.Fatal("restart arm lost no iterations; checkpoint rollback did not engage")
	}

	for _, mode := range []string{"threaded", "timeslice"} {
		row, ok := byMode[mode]
		if !ok {
			t.Fatalf("no %s row", mode)
		}
		if row.Alive {
			t.Fatalf("%s baseline survived losing its device; it cannot migrate and should lose the job", mode)
		}
	}
}

// TestParallelElasticMatchesSerial extends the harness determinism
// contract to the elastic sweep: arms that mutate bindings mid-run
// (grow, drain) must still be byte-identical across worker counts.
func TestParallelElasticMatchesSerial(t *testing.T) {
	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)

	serial := Elastic()

	harness.SetParallelism(4)
	parallel := Elastic()

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Elastic rows differ from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
