package experiments

import (
	"reflect"
	"testing"
	"time"

	"switchflow/internal/harness"
)

// TestBatchingImprovesHighLoadServing is the acceptance check for the
// serving sweep: at the highest offered load, dynamic batching must
// strictly beat the unbatched arm on both goodput and SLO attainment of
// the offered stream, and the unbatched arm must actually be shedding —
// otherwise the load point is too light to prove anything.
func TestBatchingImprovesHighLoadServing(t *testing.T) {
	const window = 10 * time.Second
	row := ServingPoint(defaultServingRates[len(defaultServingRates)-1], window)
	b, u := row.Batched, row.Unbatched
	t.Logf("rate=%.0f/s batched: goodput=%.1f attain=%.1f%% shed=%d mean-batch=%.2f",
		row.RatePerSec, b.GoodputPS, b.AttainPct, b.Shed, b.MeanBatch)
	t.Logf("rate=%.0f/s unbatched: goodput=%.1f attain=%.1f%% shed=%d",
		row.RatePerSec, u.GoodputPS, u.AttainPct, u.Shed)

	if u.Shed == 0 {
		t.Errorf("unbatched arm shed nothing at %.0f req/s; load point too light to exercise admission", row.RatePerSec)
	}
	if b.GoodputPS <= u.GoodputPS {
		t.Errorf("batching did not improve goodput: batched %.1f <= unbatched %.1f", b.GoodputPS, u.GoodputPS)
	}
	if b.AttainPct <= u.AttainPct {
		t.Errorf("batching did not improve SLO attainment of offered load: batched %.1f%% <= unbatched %.1f%%",
			b.AttainPct, u.AttainPct)
	}
	if b.MeanBatch <= 1 {
		t.Errorf("batched arm never formed a multi-request batch: mean batch %.2f", b.MeanBatch)
	}
	// Both arms saw the identical arrival process.
	if b.Offered != u.Offered {
		t.Errorf("arms saw different arrival streams: batched offered %d, unbatched %d", b.Offered, u.Offered)
	}
}

// TestServingAccountingConserved checks the request ledger closes in both
// arms at every rate: after the stream stops and the queues drain, every
// offered request was either served or shed, never lost or double-counted.
func TestServingAccountingConserved(t *testing.T) {
	const window = 3 * time.Second
	for _, rate := range []float64{50, 400} {
		row := ServingPoint(rate, window)
		for _, arm := range []struct {
			name string
			a    ServingArm
		}{{"batched", row.Batched}, {"unbatched", row.Unbatched}} {
			if arm.a.Offered == 0 {
				t.Errorf("%.0f req/s %s: no requests offered", rate, arm.name)
			}
			if got := arm.a.Served + arm.a.Shed; got != arm.a.Offered {
				t.Errorf("%.0f req/s %s: served %d + shed %d = %d, want offered %d",
					rate, arm.name, arm.a.Served, arm.a.Shed, got, arm.a.Offered)
			}
		}
	}
}

// TestParallelServingMatchesSerial extends the harness determinism
// contract to the serving sweep: parallel execution must reproduce the
// serial rows exactly, including shed counts and tail percentiles.
func TestParallelServingMatchesSerial(t *testing.T) {
	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)

	const window = 2 * time.Second
	serial := ServingSweep(window)

	harness.SetParallelism(8)
	parallel := ServingSweep(window)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel ServingSweep rows differ from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
