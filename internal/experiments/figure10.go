package experiments

import (
	"switchflow/internal/harness"
	"switchflow/internal/workload"
)

// Figure10Row is one bar of Figure 10: the gain of SwitchFlow's executor
// interleaving (invariant 2: CPU executors run freely while another job
// holds the GPU) over session-based time slicing, for *independent* models
// with no input sharing.
type Figure10Row struct {
	Subfigure   string // "a", "b", "c"
	Partner     string // the fixed co-runner
	PartnerMode string // "inference" or "training"
	Model       string
	BaselineSec float64
	SFSec       float64
	ImprovePct  float64
}

// figure10Models is the varying-model axis (inference, BS=128).
var figure10Models = []string{
	"ResNet50", "VGG16", "DenseNet121", "InceptionV3",
	"MobileNet", "MobileNetV2", "NASNetMobile",
}

// figure10Setups are the three subfigures.
var figure10Setups = []struct {
	sub      string
	partner  string
	training bool
}{
	{"a", "VGG16", false},
	{"b", "NASNetLarge", false},
	{"c", "VGG16", true},
}

// Figure10 measures interleaving on the V100; iters is sessions per model.
// Cells run on the parallel harness in the serial sweep order
// (subfigure-major).
func Figure10(iters int) []Figure10Row {
	type cell struct {
		sub      string
		partner  string
		training bool
		model    string
	}
	var cells []cell
	for _, setup := range figure10Setups {
		for _, model := range figure10Models {
			cells = append(cells, cell{setup.sub, setup.partner, setup.training, model})
		}
	}
	return harness.Map(cells, func(c cell) Figure10Row {
		return Figure10Cell(c.sub, c.partner, c.training, c.model, iters)
	})
}

// Figure10Cell runs one cell: model (inference BS=128) co-run with the
// partner under time slicing vs SwitchFlow (independent jobs).
func Figure10Cell(sub, partner string, partnerTrains bool, model string, iters int) Figure10Row {
	const batch = 128
	cfgs := []workload.Config{
		saturatedConfig("measured", model, batch),
		collocatedConfig("partner", partner, partnerTrains, batch),
	}
	base := measureTimeSlice("V100", cfgs, iters)
	sf := measureSwitchFlowIndependent("V100", cfgs, iters)
	mode := "inference"
	if partnerTrains {
		mode = "training"
	}
	row := Figure10Row{
		Subfigure:   sub,
		Partner:     partner,
		PartnerMode: mode,
		Model:       model,
		BaselineSec: base.Seconds(),
		SFSec:       sf.Seconds(),
	}
	if base > 0 {
		row.ImprovePct = (1 - sf.Seconds()/base.Seconds()) * 100
	}
	return row
}
