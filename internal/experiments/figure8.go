package experiments

import (
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/harness"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// Figure8Row is one bar of Figure 8: the performance improvement of
// SwitchFlow's input reuse over session-based time slicing for two
// identical collocated models.
type Figure8Row struct {
	GPU         string
	Mode        string // "training" or "inference"
	Batch       int
	Model       string
	BaselineSec float64 // time slicing: completion of N iterations each
	ReuseSec    float64 // SwitchFlow shared-input group
	ImprovePct  float64 // (baseline - reuse) / baseline * 100
}

// figure8Setups are the five subfigures (a)-(e).
var figure8Setups = []struct {
	gpu      string
	training bool
	batch    int
}{
	{"RTX 2080 Ti", true, 32},
	{"V100", true, 32},
	{"RTX 2080 Ti", false, 128},
	{"V100", false, 128},
	{"Jetson TX2", false, 8},
}

// figure8Models follows the paper's model set, minus the largest two that
// do not fit twice on the small GPUs.
var figure8Models = []string{
	"ResNet50", "VGG16", "DenseNet121", "InceptionV3",
	"MobileNet", "MobileNetV2", "NASNetMobile",
}

// Figure8 measures identical-model input reuse; iters is the per-model
// session count (the paper uses 200). Cells run on the parallel harness in
// the serial sweep order.
func Figure8(iters int) []Figure8Row {
	type cell struct {
		gpu      string
		training bool
		batch    int
		model    string
	}
	var cells []cell
	for _, setup := range figure8Setups {
		for _, model := range figure8Models {
			cells = append(cells, cell{setup.gpu, setup.training, setup.batch, model})
		}
	}
	return harness.Map(cells, func(c cell) Figure8Row {
		return Figure8Cell(c.gpu, c.model, c.training, c.batch, iters)
	})
}

// Figure8Cell runs one (gpu, model, mode) cell with two identical models.
func Figure8Cell(gpu, model string, training bool, batch, iters int) Figure8Row {
	mode := "inference"
	if training {
		mode = "training"
	}
	cfgs := []workload.Config{
		collocatedConfig("m0", model, training, batch),
		collocatedConfig("m1", model, training, batch),
	}
	base := measureTimeSlice(gpu, cfgs, iters)
	reuse := measureSharedGroup(gpu, cfgs, iters)
	row := Figure8Row{
		GPU:         gpu,
		Mode:        mode,
		Batch:       batch,
		Model:       model,
		BaselineSec: base.Seconds(),
		ReuseSec:    reuse.Seconds(),
	}
	if base > 0 {
		row.ImprovePct = (1 - reuse.Seconds()/base.Seconds()) * 100
	}
	return row
}

// collocatedConfig builds a throughput-style job config for the reuse and
// interleaving experiments.
func collocatedConfig(name, model string, training bool, batch int) workload.Config {
	if training {
		return trainConfig(name, model, batch, 1)
	}
	return saturatedConfig(name, model, batch)
}

// measurementHorizon bounds one measurement run.
const measurementHorizon = 6 * time.Hour

// measureTimeSlice returns the virtual time for every job to complete
// iters sessions under session-based time slicing.
func measureTimeSlice(gpu string, cfgs []workload.Config, iters int) time.Duration {
	eng := sim.NewEngine()
	machine := machineFor(eng, gpu)
	sched := baseline.NewTimeSlice(eng, machine)
	jobs := make([]*workload.Job, 0, len(cfgs))
	for _, cfg := range cfgs {
		job, err := sched.AddJob(cfg)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, job)
	}
	runUntil(eng, measurementHorizon, func() bool { return allDone(jobs, iters) })
	return eng.Now()
}

// measureSharedGroup returns the time for a SwitchFlow shared-input group
// to complete iters sessions per member.
func measureSharedGroup(gpu string, cfgs []workload.Config, iters int) time.Duration {
	eng := sim.NewEngine()
	machine := machineFor(eng, gpu)
	m := core.NewManager(eng, machine, core.Options{})
	_, jobs, err := m.AddSharedGroup(cfgs)
	if err != nil {
		panic(err)
	}
	runUntil(eng, measurementHorizon, func() bool { return allDone(jobs, iters) })
	return eng.Now()
}

// measureSwitchFlowIndependent returns the time for independent SwitchFlow
// jobs (no input sharing, invariants only) to complete iters sessions.
func measureSwitchFlowIndependent(gpu string, cfgs []workload.Config, iters int) time.Duration {
	eng := sim.NewEngine()
	machine := machineFor(eng, gpu)
	m := core.NewManager(eng, machine, core.Options{})
	jobs := make([]*workload.Job, 0, len(cfgs))
	for _, cfg := range cfgs {
		job, err := m.AddJob(cfg)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, job)
	}
	runUntil(eng, measurementHorizon, func() bool { return allDone(jobs, iters) })
	return eng.Now()
}

func allDone(jobs []*workload.Job, iters int) bool {
	for _, j := range jobs {
		if j.Crashed() {
			continue
		}
		if j.Iterations < iters {
			return false
		}
	}
	return true
}
