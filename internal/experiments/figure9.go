package experiments

import (
	"strings"

	"switchflow/internal/harness"
	"switchflow/internal/workload"
)

// Figure9Row is one bar of Figure 9: input reuse among *different* CNN
// models on a V100, across batch sizes and collocation degrees.
type Figure9Row struct {
	Models      []string
	Batch       int
	BaselineSec float64
	ReuseSec    float64
	ImprovePct  float64
}

// Label renders the model set compactly.
func (r Figure9Row) Label() string { return strings.Join(r.Models, "+") }

// figure9Sets are the collocated model groups (2, 3, and 4 models).
var figure9Sets = [][]string{
	{"ResNet50", "VGG16"},
	{"ResNet50", "InceptionV3"},
	{"MobileNetV2", "NASNetMobile"},
	{"ResNet50", "VGG16", "InceptionV3"},
	{"ResNet50", "VGG16", "InceptionV3", "DenseNet121"},
}

// figure9Batches are the batch sizes of the two subfigures.
var figure9Batches = []int{32, 64, 128}

// Figure9 measures mixed-model input reuse on the V100 (inference). Cells
// run on the parallel harness in the serial sweep order (batch-major).
func Figure9(iters int) []Figure9Row {
	type cell struct {
		set   []string
		batch int
	}
	var cells []cell
	for _, batch := range figure9Batches {
		for _, set := range figure9Sets {
			cells = append(cells, cell{set, batch})
		}
	}
	return harness.Map(cells, func(c cell) Figure9Row {
		return Figure9Cell(c.set, c.batch, iters)
	})
}

// Figure9Cell runs one (model set, batch) cell.
func Figure9Cell(set []string, batch, iters int) Figure9Row {
	cfgs := make([]workload.Config, len(set))
	for i, model := range set {
		cfgs[i] = saturatedConfig(model, model, batch)
	}
	base := measureTimeSlice("V100", cfgs, iters)
	reuse := measureSharedGroup("V100", cfgs, iters)
	row := Figure9Row{
		Models:      append([]string(nil), set...),
		Batch:       batch,
		BaselineSec: base.Seconds(),
		ReuseSec:    reuse.Seconds(),
	}
	if base > 0 {
		row.ImprovePct = (1 - reuse.Seconds()/base.Seconds()) * 100
	}
	return row
}
