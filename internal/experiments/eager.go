package experiments

import (
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/sim"
)

// EagerRow compares execution modes for one model (§1's static-vs-dynamic
// contrast): dynamic-graph (eager) execution pays per-op dispatch and
// cannot optimize the graph; static execution replays a planned graph;
// fused static execution additionally merges elementwise ops into their
// producers (grappler-style).
type EagerRow struct {
	Model        string
	Batch        int
	EagerImgPS   float64
	StaticImgPS  float64
	FusedImgPS   float64
	StaticSpeedX float64 // static vs eager
	FusedSpeedX  float64 // fused vs eager
}

// eagerModels spans kernel-count extremes: many tiny kernels
// (MobileNetV2, DenseNet121) vs few huge ones (VGG16).
var eagerModels = []string{"MobileNetV2", "DenseNet121", "ResNet50", "VGG16"}

// EagerComparison measures solo training throughput per mode on a V100.
func EagerComparison() []EagerRow {
	rows := make([]EagerRow, 0, len(eagerModels))
	for _, model := range eagerModels {
		rows = append(rows, EagerCell(model, 32))
	}
	return rows
}

// EagerCell measures one model at the given batch.
func EagerCell(model string, batch int) EagerRow {
	row := EagerRow{
		Model:       model,
		Batch:       batch,
		EagerImgPS:  eagerOne(model, batch, true, false),
		StaticImgPS: eagerOne(model, batch, false, false),
		FusedImgPS:  eagerOne(model, batch, false, true),
	}
	if row.EagerImgPS > 0 {
		row.StaticSpeedX = row.StaticImgPS / row.EagerImgPS
		row.FusedSpeedX = row.FusedImgPS / row.EagerImgPS
	}
	return row
}

func eagerOne(model string, batch int, eager, fuse bool) float64 {
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")
	sched := baseline.NewThreadedTF(eng, machine)
	cfg := trainConfig("solo", model, batch, 1)
	cfg.Eager = eager
	cfg.Fuse = fuse
	job, err := sched.AddJob(cfg)
	if err != nil {
		panic(err)
	}
	const (
		warm    = 3 * time.Second
		measure = 20 * time.Second
	)
	eng.RunUntil(warm)
	start := job.Iterations
	eng.RunUntil(warm + measure)
	if job.Crashed() {
		return 0
	}
	return float64((job.Iterations-start)*batch) / measure.Seconds()
}
