package experiments

import (
	"reflect"
	"testing"
	"time"

	"switchflow/internal/harness"
)

// TestParallelSweepMatchesSerial is the determinism contract of the
// parallel harness: running a sweep with many workers must produce rows
// identical (values and order) to the serial run, because every cell owns
// its own engine and the harness writes results at the cell's input index.
func TestParallelSweepMatchesSerial(t *testing.T) {
	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)

	const iters = 3
	serial := Figure3(iters)

	harness.SetParallelism(8)
	parallel := Figure3(iters)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Figure3 rows differ from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestParallelFleetMatchesSerial covers the sharded-cluster path: each
// Fleet cell advances its per-node engines through shard epoch barriers,
// so this asserts determinism across BOTH levels of parallelism — the
// sweep over policies and the intra-cell fan-out over node engines.
func TestParallelFleetMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy cells; skipped in -short mode")
	}
	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)

	const window = 10 * time.Second
	serial := Fleet(window, 100_000)

	harness.SetParallelism(8)
	parallel := Fleet(window, 100_000)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Fleet rows differ from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}

// TestParallelGandivaMatchesSerial covers a sweep whose cells are heavier
// (each runs two full manager scenarios), catching shared-state races that
// a light sweep might not exercise.
func TestParallelGandivaMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy cells; skipped in -short mode")
	}
	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)

	const requests = 10
	serial := Gandiva(requests)

	harness.SetParallelism(4)
	parallel := Gandiva(requests)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Gandiva rows differ from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
