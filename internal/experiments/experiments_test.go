package experiments

import (
	"testing"
	"time"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 8 {
		t.Fatalf("Table1 has %d rows, want 8", len(rows))
	}
	for _, row := range rows {
		sizeRatio := row.StatefulMB / row.PaperMB
		if sizeRatio < 0.9 || sizeRatio > 1.1 {
			t.Errorf("%s: stateful %.2f MiB vs paper %.2f (ratio %.2f)",
				row.Model, row.StatefulMB, row.PaperMB, sizeRatio)
		}
		timeRatio := row.TransferMS / row.PaperMS
		if timeRatio < 0.75 || timeRatio > 1.3 {
			t.Errorf("%s: transfer %.2f ms vs paper %.2f (ratio %.2f)",
				row.Model, row.TransferMS, row.PaperMS, timeRatio)
		}
	}
}

func TestFigure2ShowsSerializationAndSlowdown(t *testing.T) {
	res := Figure2(10 * time.Second)
	// Paper: 226 img/s solo, 116 each co-run.
	if res.SoloImgPerSec < 150 || res.SoloImgPerSec > 320 {
		t.Errorf("solo = %.0f img/s, want ~226", res.SoloImgPerSec)
	}
	for i, rate := range res.CoRunImgPerSec {
		slowdown := res.SoloImgPerSec / rate
		if slowdown < 1.6 || slowdown > 2.5 {
			t.Errorf("co-run[%d] = %.0f img/s (slowdown %.2f), want ~2x", i, rate, slowdown)
		}
	}
	// "Spatial multiplexing is barely beneficial": heavy kernels almost
	// never overlap.
	if res.OverlapFraction > 0.2 {
		t.Errorf("kernel overlap fraction = %.2f, want near zero", res.OverlapFraction)
	}
	if len(res.Timeline.Spans()) == 0 {
		t.Error("timeline empty")
	}
}

func TestFigure3InferenceIdlesMoreThanTraining(t *testing.T) {
	const iters = 15
	trainRow := figure3One("V100", "ResNet50", true, 32, iters)
	inferRow := figure3One("V100", "ResNet50", false, 128, iters)
	if trainRow.SessionMS == 0 || inferRow.SessionMS == 0 {
		t.Fatalf("empty rows: %+v %+v", trainRow, inferRow)
	}
	// Figure 3 (b) vs (e): training overlaps CPU and GPU better, so
	// inference idles more.
	if inferRow.IdleFrac <= trainRow.IdleFrac {
		t.Errorf("inference idle %.2f not above training idle %.2f",
			inferRow.IdleFrac, trainRow.IdleFrac)
	}
	// Lightweight models idle most on fast GPUs (the NASNetMobile ~90%
	// observation).
	mob := figure3One("V100", "MobileNetV2", false, 128, iters)
	if mob.IdleFrac < 0.6 {
		t.Errorf("MobileNetV2 V100 inference idle = %.2f, want > 0.6", mob.IdleFrac)
	}
	// The embedded TX2 is GPU-bound instead.
	tx2 := figure3One("Jetson TX2", "ResNet50", false, 8, iters)
	if tx2.IdleFrac > mob.IdleFrac {
		t.Errorf("TX2 idle %.2f should be below V100 MobileNetV2 idle %.2f",
			tx2.IdleFrac, mob.IdleFrac)
	}
}

func TestFigure6SwitchFlowBeatsTF(t *testing.T) {
	row := Figure6Cell("VGG16", "ResNet50", 40)
	if row.TFP95MS == 0 || row.SFP95MS == 0 {
		t.Fatalf("empty row: %+v", row)
	}
	// Heavier training -> larger gap; VGG16 should show a clear multiple.
	if row.Speedup < 2 {
		t.Errorf("speedup = %.2fx (TF %.1f ms vs SF %.1f ms), want >= 2x",
			row.Speedup, row.TFP95MS, row.SFP95MS)
	}
	// Light training job: near parity (its kernels are tiny, so the TF
	// baseline barely contends; see EXPERIMENTS.md).
	light := Figure6Cell("MobileNetV2", "ResNet50", 40)
	if light.Speedup < 0.9 {
		t.Errorf("MobileNetV2 background speedup %.2f < 0.9", light.Speedup)
	}
	if light.Speedup > row.Speedup {
		t.Errorf("light background speedup %.2f exceeds heavy %.2f",
			light.Speedup, row.Speedup)
	}
}

func TestFigure6NMTHasLargestGap(t *testing.T) {
	nmt := Figure6Cell("VGG16", "NMT", 30)
	cnn := Figure6Cell("VGG16", "MobileNetV2", 30)
	if nmt.Speedup <= cnn.Speedup {
		t.Errorf("NMT speedup %.2f not above MobileNetV2 %.2f (paper: NMT+VGG16 is the 19x maximum)",
			nmt.Speedup, cnn.Speedup)
	}
}

func TestFigure7ThreadedSlowsOrOOMs(t *testing.T) {
	row := Figure7Threaded("a", "GTX 1080 Ti", "ResNet50", "InceptionResNetV2")
	if row.OOM {
		return // a crash is an acceptable Figure 7 outcome
	}
	if row.BackgroundCoRun >= row.BackgroundSolo {
		t.Errorf("co-run bg %.0f img/s not below solo %.0f", row.BackgroundCoRun, row.BackgroundSolo)
	}
	if row.ModelCoRun >= row.ModelSolo {
		t.Errorf("co-run model %.0f img/s not below solo %.0f", row.ModelCoRun, row.ModelSolo)
	}
}

func TestFigure7ThreadedOOMOnBigPair(t *testing.T) {
	// NASNetLarge-class activations cannot share 11 GB with ResNet50.
	row := Figure7Threaded("a", "GTX 1080 Ti", "ResNet50", "InceptionResNetV2")
	big := Figure7Threaded("a", "GTX 1080 Ti", "ResNet50", "VGG16")
	if !row.OOM && !big.OOM {
		t.Skip("no OOM for these pairs at BS=32; covered by baseline tests with NASNetLarge")
	}
}

func TestFigure7MPSCrashesOn11GB(t *testing.T) {
	row := Figure7MPS("x", "GTX 1080 Ti", "ResNet50", "ResNet50")
	if !row.OOM {
		t.Error("MPS fit two reservations in 11 GB")
	}
	v100 := Figure7MPS("c", "V100", "ResNet50", "MobileNetV2")
	if v100.OOM {
		t.Error("MPS crashed on the 32 GB V100")
	}
	if v100.ModelCoRun == 0 || v100.BackgroundCoRun == 0 {
		t.Errorf("MPS V100 throughputs: %+v", v100)
	}
}

func TestFigure7SwitchFlowMigratesWithoutCrash(t *testing.T) {
	row := Figure7SwitchFlow("e", twoGPU(), "ResNet50", "VGG16")
	if row.OOM {
		t.Fatalf("SwitchFlow crashed: %+v", row)
	}
	if row.LowDevice != "gpu:0" {
		t.Errorf("low job on %s, want gpu:0 (the 1080 Ti)", row.LowDevice)
	}
	if row.ModelCoRun == 0 {
		t.Error("high-priority job made no progress")
	}
	if row.BackgroundCoRun == 0 {
		t.Error("migrated low-priority job made no progress")
	}
	// High-priority throughput should approach its solo rate (it owns the
	// 2080 Ti), far better than threaded sharing.
	if row.ModelSolo > 0 && row.ModelCoRun < 0.5*row.ModelSolo {
		t.Errorf("high-prio co-run %.0f below half of solo %.0f", row.ModelCoRun, row.ModelSolo)
	}
}

func TestFigure7SwitchFlowCPUFallback(t *testing.T) {
	row := Figure7SwitchFlow("d", nil, "MobileNetV2", "ResNet50")
	if row.OOM {
		t.Fatalf("crash: %+v", row)
	}
	if row.LowDevice != "cpu:0" {
		t.Errorf("low job on %s, want cpu:0", row.LowDevice)
	}
	// The CPU-migrated job suffers drastically (Figure 7 d).
	if row.BackgroundSolo > 0 && row.BackgroundCoRun > 0.3*row.BackgroundSolo {
		t.Errorf("CPU fallback throughput %.1f img/s suspiciously close to GPU solo %.1f",
			row.BackgroundCoRun, row.BackgroundSolo)
	}
}

func TestFigure8InferenceGainsExceedTraining(t *testing.T) {
	const iters = 12
	train := Figure8Cell("V100", "ResNet50", true, 32, iters)
	infer := Figure8Cell("V100", "ResNet50", false, 128, iters)
	if train.BaselineSec == 0 || infer.BaselineSec == 0 {
		t.Fatalf("empty cells: %+v %+v", train, infer)
	}
	// Figure 8: training gains are marginal, inference gains are large.
	if infer.ImprovePct <= train.ImprovePct {
		t.Errorf("inference gain %.1f%% not above training gain %.1f%%",
			infer.ImprovePct, train.ImprovePct)
	}
	if infer.ImprovePct < 15 {
		t.Errorf("inference input-reuse gain = %.1f%%, want substantial", infer.ImprovePct)
	}
	if train.ImprovePct < -10 {
		t.Errorf("training gain = %.1f%%, regression too large", train.ImprovePct)
	}
}

func TestFigure9MoreModelsDiminishingGains(t *testing.T) {
	const iters = 10
	two := Figure9Cell([]string{"ResNet50", "VGG16"}, 64, iters)
	four := Figure9Cell([]string{"ResNet50", "VGG16", "InceptionV3", "DenseNet121"}, 64, iters)
	if two.ImprovePct <= 0 {
		t.Errorf("2-model reuse gain %.1f%% not positive", two.ImprovePct)
	}
	if four.ImprovePct <= 0 {
		t.Errorf("4-model reuse gain %.1f%% not positive", four.ImprovePct)
	}
	// Bigger batches help more (CPU becomes the bottleneck).
	small := Figure9Cell([]string{"ResNet50", "VGG16"}, 32, iters)
	big := Figure9Cell([]string{"ResNet50", "VGG16"}, 128, iters)
	if big.ImprovePct < small.ImprovePct-5 {
		t.Errorf("BS=128 gain %.1f%% well below BS=32 gain %.1f%%", big.ImprovePct, small.ImprovePct)
	}
}

func TestFigure10InterleavingBeatsTimeSlicing(t *testing.T) {
	const iters = 10
	row := Figure10Cell("a", "VGG16", false, "MobileNetV2", iters)
	if row.BaselineSec == 0 || row.SFSec == 0 {
		t.Fatalf("empty row: %+v", row)
	}
	if row.ImprovePct <= 5 {
		t.Errorf("interleaving gain = %.1f%%, want clearly positive (paper: ~30%%)",
			row.ImprovePct)
	}
}

func TestPreemptionOverheadBounded(t *testing.T) {
	res := PreemptionOverhead("ResNet50", 30)
	if res.Preemptions == 0 {
		t.Fatal("no preemptions recorded")
	}
	// §5.2.3: worst-case preemption latency is a few tens of ms.
	if res.MaxGrantMS > 60 {
		t.Errorf("max grant latency = %.1f ms, want <= 60", res.MaxGrantMS)
	}
	if res.TransferMS <= 0 || res.StateMB <= 0 {
		t.Errorf("transfer stats empty: %+v", res)
	}
}

func TestAblationShapes(t *testing.T) {
	rows := Ablation(25)
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	full := byName["full"]
	if full.ServeP95MS == 0 {
		t.Fatal("full variant produced no latencies")
	}
	// Invariant 1 off: contention returns, tails grow.
	if noEx := byName["no-gpu-exclusive"]; noEx.ServeP95MS < full.ServeP95MS {
		t.Errorf("no-gpu-exclusive p95 %.1f ms below full %.1f ms", noEx.ServeP95MS, full.ServeP95MS)
	}
	// Invariant 2 off: the training job loses pipeline overlap.
	if noCPU := byName["no-free-cpu"]; noCPU.TrainImgPS > full.TrainImgPS {
		t.Errorf("no-free-cpu training %.1f img/s above full %.1f", noCPU.TrainImgPS, full.TrainImgPS)
	}
}

func TestAblationMigrationSyncIsSlower(t *testing.T) {
	rows := AblationMigration()
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	async, sync := rows[0], rows[1]
	if sync.HighFirstStepSec < async.HighFirstStepSec {
		t.Errorf("sync transfer first step %.3fs faster than async %.3fs",
			sync.HighFirstStepSec, async.HighFirstStepSec)
	}
}

func TestGandivaCheckpointPreemptionIsSlower(t *testing.T) {
	row := GandivaCell("VGG16", 25)
	if row.SFP95MS == 0 || row.CkptP95MS == 0 {
		t.Fatalf("empty row: %+v", row)
	}
	// §6: checkpoint suspend-resume saves/restores hundreds of MiB and
	// waits out the mini-batch — intolerable for inference. SwitchFlow's
	// abort-and-resume must be clearly faster.
	if row.CkptP95MS < 2*row.SFP95MS {
		t.Errorf("checkpoint p95 %.1f ms not >> SwitchFlow %.1f ms", row.CkptP95MS, row.SFP95MS)
	}
	if row.CkptGrantP95MS < row.SFGrantP95MS {
		t.Errorf("checkpoint grant %.1f ms below SwitchFlow %.1f ms",
			row.CkptGrantP95MS, row.SFGrantP95MS)
	}
}

func TestGandivaCheckpointScalesWithStateSize(t *testing.T) {
	small := GandivaCell("MobileNetV2", 20)
	big := GandivaCell("VGG16", 20)
	// VGG16's 1 GiB checkpoint plus its long mini-batch dwarf
	// MobileNetV2's 27 MiB.
	if big.CkptGrantP95MS <= small.CkptGrantP95MS {
		t.Errorf("VGG16 checkpoint grant %.1f ms not above MobileNetV2 %.1f ms",
			big.CkptGrantP95MS, small.CkptGrantP95MS)
	}
}

func TestLoadSweepShapes(t *testing.T) {
	light := LoadPoint(2, 40)
	heavy := LoadPoint(20, 40)
	// SwitchFlow stays flat as load grows; the TF baseline's queue blows
	// up well before 20 req/s because contention inflates its service
	// time.
	if light.SFP95MS <= 0 || light.TFP95MS <= 0 {
		t.Fatalf("empty load point: %+v", light)
	}
	if heavy.SFP95MS > 5*light.SFP95MS {
		t.Errorf("SwitchFlow p95 exploded with load: %.1f -> %.1f ms",
			light.SFP95MS, heavy.SFP95MS)
	}
	if heavy.TFP95MS < 3*heavy.SFP95MS {
		t.Errorf("TF p95 %.1f ms not well above SwitchFlow %.1f ms at 20 req/s",
			heavy.TFP95MS, heavy.SFP95MS)
	}
	if light.TFP99MS < light.TFP95MS || light.SFP99MS < light.SFP95MS {
		t.Errorf("p99 below p95: %+v", light)
	}
}

func TestEagerModeOrdering(t *testing.T) {
	// DenseNet121 has hundreds of small kernels per step — the worst case
	// for per-op eager dispatch (§1: static graphs are "significantly
	// faster than dynamic graphs").
	dense := EagerCell("DenseNet121", 32)
	if dense.EagerImgPS <= 0 || dense.StaticImgPS <= 0 || dense.FusedImgPS <= 0 {
		t.Fatalf("empty row: %+v", dense)
	}
	if dense.StaticSpeedX < 1.2 {
		t.Errorf("static speedup %.2fx over eager for DenseNet121, want >= 1.2", dense.StaticSpeedX)
	}
	if dense.FusedSpeedX < dense.StaticSpeedX-0.05 {
		t.Errorf("fusion (%.2fx) regressed below static (%.2fx)",
			dense.FusedSpeedX, dense.StaticSpeedX)
	}
	// Kernel-count sensitivity: VGG16's few huge kernels barely notice
	// eager dispatch (allow quantization noise around 1.0).
	vgg := EagerCell("VGG16", 32)
	if vgg.StaticSpeedX < 0.93 || vgg.StaticSpeedX > 1.15 {
		t.Errorf("VGG16 static speedup %.2fx, want ~1.0 (few kernels)", vgg.StaticSpeedX)
	}
	if dense.StaticSpeedX <= vgg.StaticSpeedX {
		t.Errorf("DenseNet121 eager penalty (%.2fx) not above VGG16 (%.2fx)",
			dense.StaticSpeedX, vgg.StaticSpeedX)
	}
}

func TestExperimentsAreDeterministic(t *testing.T) {
	a := Figure6Cell("ResNet50", "MobileNetV2", 20)
	b := Figure6Cell("ResNet50", "MobileNetV2", 20)
	if a != b {
		t.Fatalf("identical experiment runs diverged:\n  a=%+v\n  b=%+v", a, b)
	}
	t1a, t1b := Table1(), Table1()
	for i := range t1a {
		if t1a[i] != t1b[i] {
			t.Fatalf("Table1 rows diverged: %+v vs %+v", t1a[i], t1b[i])
		}
	}
}
