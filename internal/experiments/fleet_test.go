package experiments

import (
	"reflect"
	"testing"
	"time"

	"switchflow/internal/harness"
)

// TestFleetScenario runs the million-user scenario once at a reduced
// window and checks both halves of its contract: the rows are
// byte-identical serial vs parallel (the sweep AND the per-node engines
// inside each cell fan out), and the autoscaler demonstrably acts — out
// on shed during the flash crowd, in on the idle trough after it.
func TestFleetScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy cells; skipped in -short mode")
	}
	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)

	const window = 30 * time.Second
	const clients = 100_000
	serial := Fleet(window, clients)

	harness.SetParallelism(8)
	parallel := Fleet(window, clients)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Fleet rows differ from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}

	if len(serial) != 3 {
		t.Fatalf("got %d rows, want static + 2 autoscaled arms", len(serial))
	}
	static := serial[0]
	if static.Autoscaled || static.ScaleOuts != 0 || static.ScaleIns != 0 ||
		static.Shrinks != 0 || static.Grows != 0 {
		t.Fatalf("static arm shows autoscaler actions: %+v", static)
	}
	for _, r := range serial {
		if r.Nodes != 8 {
			t.Fatalf("arm %s ran %d nodes, want 8", r.Strategy, r.Nodes)
		}
		if r.Clients != clients {
			t.Fatalf("arm %s reports %d clients", r.Strategy, r.Clients)
		}
		if r.Offered != r.Routed+r.Dropped {
			t.Fatalf("arm %s: offered %d != routed %d + dropped %d",
				r.Strategy, r.Offered, r.Routed, r.Dropped)
		}
		if r.Served == 0 || r.GoodputPS <= 0 {
			t.Fatalf("arm %s served nothing: %+v", r.Strategy, r)
		}
		if r.Gold.Tenants == 0 || r.Silver.Tenants == 0 || r.Bronze.Tenants == 0 {
			t.Fatalf("arm %s missing a tier: %+v", r.Strategy, r)
		}
		if r.Gold.AttainPct <= 0 || r.Gold.WorstP99MS <= 0 {
			t.Fatalf("arm %s has empty gold-tier stats: %+v", r.Strategy, r.Gold)
		}
		if r.TrainImgPS <= 0 {
			t.Fatalf("arm %s background training made no progress", r.Strategy)
		}
	}
	for _, r := range serial[1:] {
		if !r.Autoscaled {
			t.Fatalf("arm %s should be autoscaled", r.Strategy)
		}
		if r.ScaleOuts == 0 {
			t.Fatalf("arm %s: flash crowd produced no scale-out", r.Strategy)
		}
		if r.ScaleIns == 0 {
			t.Fatalf("arm %s: idle trough produced no scale-in", r.Strategy)
		}
		if r.Shrinks == 0 || r.Grows == 0 {
			t.Fatalf("arm %s: elastic training did not flex (shr=%d grw=%d)",
				r.Strategy, r.Shrinks, r.Grows)
		}
		if r.Shed >= static.Shed {
			t.Fatalf("arm %s shed %d, not better than the static arm's %d",
				r.Strategy, r.Shed, static.Shed)
		}
	}
}
