package experiments

import (
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/harness"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// Figure3Row is one bar of Figure 3: for a solo model on one GPU, the
// average session length, the GPU-busy time within it, and the resulting
// idle fraction caused by pipeline imbalance.
type Figure3Row struct {
	GPU       string
	Mode      string // "training" or "inference"
	Model     string
	Batch     int
	SessionMS float64
	GPUBusyMS float64
	IdleFrac  float64 // 1 - busy/session
}

// figure3Models are the nine CNNs of Figure 3.
var figure3Models = []string{
	"ResNet50", "VGG16", "VGG19", "DenseNet121", "DenseNet169",
	"InceptionResNetV2", "InceptionV3", "MobileNetV2", "NASNetMobile",
}

// figure3Setups are the six subfigures (a)-(f).
var figure3Setups = []struct {
	gpu      string
	training bool
	batch    int
}{
	{"RTX 2080 Ti", true, 32},
	{"V100", true, 32},
	{"Jetson TX2", true, 8},
	{"RTX 2080 Ti", false, 128},
	{"V100", false, 128},
	{"Jetson TX2", false, 8},
}

// Figure3 measures each model/GPU/mode combination over iters sessions
// (the paper averages 200). Cells run on the parallel harness; rows come
// back in the serial sweep order (setup-major, model-minor).
func Figure3(iters int) []Figure3Row {
	type cell struct {
		gpu      string
		training bool
		batch    int
		model    string
	}
	var cells []cell
	for _, setup := range figure3Setups {
		for _, model := range figure3Models {
			cells = append(cells, cell{setup.gpu, setup.training, setup.batch, model})
		}
	}
	return harness.Map(cells, func(c cell) Figure3Row {
		return figure3One(c.gpu, c.model, c.training, c.batch, iters)
	})
}

func figure3One(gpu, model string, training bool, batch, iters int) Figure3Row {
	eng := sim.NewEngine()
	machine := machineFor(eng, gpu)
	sched := baseline.NewThreadedTF(eng, machine)

	var cfg workload.Config
	mode := "inference"
	if training {
		cfg = trainConfig("solo", model, batch, 1)
		mode = "training"
	} else {
		cfg = saturatedConfig("solo", model, batch)
	}
	job, err := sched.AddJob(cfg)
	if err != nil {
		panic(err)
	}

	const warmup = 3
	horizon := 24 * time.Hour // the condition, not the horizon, terminates
	runUntil(eng, horizon, func() bool { return job.Iterations >= warmup || job.Crashed() })
	if job.Crashed() {
		return Figure3Row{GPU: gpu, Mode: mode, Model: model, Batch: batch}
	}
	startTime := eng.Now()
	startBusy := machine.GPU(0).BusyTime()
	runUntil(eng, horizon, func() bool { return job.Iterations >= warmup+iters || job.Crashed() })
	span := eng.Now() - startTime
	busy := machine.GPU(0).BusyTime() - startBusy
	n := job.Iterations - warmup
	if n <= 0 {
		return Figure3Row{GPU: gpu, Mode: mode, Model: model, Batch: batch}
	}
	session := span / time.Duration(n)
	busyPer := busy / time.Duration(n)
	idle := 1 - float64(busyPer)/float64(session)
	if idle < 0 {
		idle = 0
	}
	return Figure3Row{
		GPU:       gpu,
		Mode:      mode,
		Model:     model,
		Batch:     batch,
		SessionMS: session.Seconds() * 1e3,
		GPUBusyMS: busyPer.Seconds() * 1e3,
		IdleFrac:  idle,
	}
}
