package experiments

import (
	"time"

	"switchflow"
	"switchflow/internal/harness"
)

// ChaosRow is one cell of the fault-injection sweep: a serving job with
// fallbacks collocated with a training job on the two-GPU server, under a
// seed-deterministic fault mix (random transient kernel/ECC errors and
// input stalls, plus one guaranteed GPU loss mid-run). SwitchFlow
// self-heals — the serving job migrates through its fallbacks and keeps
// serving — while the process-model baselines lose the jobs outright.
type ChaosRow struct {
	Scheduler string
	Seed      int64
	// Injected counts fault events delivered.
	Injected int
	// Served / ServeP95MS / ServeAlive describe the serving job at the end.
	Served     int
	ServeP95MS float64
	ServeAlive bool
	// ServeDevice is the serving job's final placement (SwitchFlow only;
	// empty for the baselines, which cannot move jobs).
	ServeDevice string
	// TrainIters is the training job's completed iterations.
	TrainIters int
	// Recovery counters (all zero for baselines except JobsLost).
	JobsLost       int
	Migrations     int
	Restarts       int
	IterationsLost int
}

const (
	chaosHorizon = 60 * time.Second
	chaosLossAt  = 20 * time.Second
	chaosCkpt    = 5 * time.Second
)

var chaosPolicies = []switchflow.Policy{
	switchflow.PolicySwitchFlow,
	switchflow.PolicyThreadedTF,
	switchflow.PolicyTimeSlice,
	switchflow.PolicyMPS,
}

// Chaos runs the fault sweep for each (policy, seed) cell on the parallel
// harness. Rows are deterministic for fixed seeds: every cell owns its
// engine, machine, and fault plan, so serial and parallel runs produce
// byte-identical output.
func Chaos(seeds []int64) []ChaosRow {
	type cell struct {
		policy switchflow.Policy
		seed   int64
	}
	var cells []cell
	for _, seed := range seeds {
		for _, policy := range chaosPolicies {
			cells = append(cells, cell{policy, seed})
		}
	}
	return harness.Map(cells, func(c cell) ChaosRow { return chaosCell(c.policy, c.seed) })
}

func chaosCell(policy switchflow.Policy, seed int64) ChaosRow {
	sim := switchflow.NewSimulation(switchflow.TwoGPUServer())
	// Seeded mix of transients and input stalls, plus a guaranteed loss of
	// gpu:0 at a fixed time so every row exercises the migrate-or-die path.
	plan := switchflow.RandomFaultPlan(seed, chaosHorizon, sim.GPUCount()).
		LoseGPU(chaosLossAt, 0)
	sched, err := sim.NewScheduler(policy,
		switchflow.WithFaultPlan(plan),
		switchflow.WithCheckpointEvery(chaosCkpt))
	if err != nil {
		panic(err)
	}
	serve, err := sched.AddJob(switchflow.JobSpec{
		Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2,
		GPU: 0, FallbackGPUs: []int{1}, FallbackCPU: true,
		ServeEvery: 100 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	train, err := sched.AddJob(switchflow.JobSpec{
		Name: "train", Model: "ResNet50", Batch: 16, Train: true,
		Priority: 1, GPU: 1,
	})
	if err != nil {
		panic(err)
	}
	sim.RunUntil(chaosHorizon)

	st := sched.FaultStats()
	row := ChaosRow{
		Scheduler:      sched.Name(),
		Seed:           seed,
		Injected:       st.Injected,
		Served:         serve.Requests(),
		ServeP95MS:     serve.P95Latency().Seconds() * 1e3,
		ServeAlive:     !serve.Crashed(),
		TrainIters:     train.Iterations(),
		JobsLost:       st.JobsLost,
		Migrations:     st.Migrations,
		Restarts:       st.Restarts,
		IterationsLost: st.IterationsLost,
	}
	if sf, ok := sched.(*switchflow.SwitchFlowScheduler); ok {
		row.ServeDevice = sf.JobDeviceName(serve)
	}
	return row
}
