package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"switchflow/internal/harness"
)

const traceTestWindow = 1500 * time.Millisecond

func renderTraces(t *testing.T, results []ChromeTraceResult) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(results))
	for _, r := range results {
		var buf bytes.Buffer
		if err := r.WriteChromeTrace(&buf); err != nil {
			t.Fatalf("WriteChromeTrace(%s): %v", r.Sched, err)
		}
		out[r.Sched] = buf.Bytes()
	}
	return out
}

// The spine determinism guarantee: the chrome-trace export of the canned
// experiment is byte-identical whether the harness runs its cells
// serially or in parallel.
func TestChromeTraceSerialParallelByteIdentical(t *testing.T) {
	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)
	serial := renderTraces(t, ChromeTrace(traceTestWindow))

	harness.SetParallelism(4)
	parallel := renderTraces(t, ChromeTrace(traceTestWindow))

	for _, sched := range []string{"threaded", "switchflow"} {
		if !bytes.Equal(serial[sched], parallel[sched]) {
			t.Errorf("%s: serial and parallel chrome traces differ (%d vs %d bytes)",
				sched, len(serial[sched]), len(parallel[sched]))
		}
		if len(serial[sched]) == 0 {
			t.Errorf("%s: empty chrome trace", sched)
		}
	}
}

// The acceptance shape of the artifact: valid JSON, kernel spans from
// both contexts, and at least one Preempt decision under switchflow.
func TestChromeTraceContainsBothContextsAndPreemption(t *testing.T) {
	results := ChromeTrace(traceTestWindow)
	var sf ChromeTraceResult
	for _, r := range results {
		if r.Sched == "switchflow" {
			sf = r
		} else if r.Preempts != 0 {
			t.Errorf("%s: %d preemptions, want 0 (no preemption mechanism)", r.Sched, r.Preempts)
		}
	}
	if sf.Preempts == 0 {
		t.Fatal("switchflow co-run recorded no Preempt events despite the priority ladder")
	}
	if sf.Spans == 0 {
		t.Fatal("switchflow co-run recorded no kernel spans")
	}

	var buf bytes.Buffer
	if err := sf.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	ctxTracks := map[int]bool{}
	sawPreempt := false
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			ctxTracks[e.Tid] = true
		}
		if e.Ph == "i" && e.Name == "Preempt" {
			sawPreempt = true
		}
	}
	if len(ctxTracks) < 2 {
		t.Errorf("kernel spans on %d context tracks, want 2", len(ctxTracks))
	}
	if !sawPreempt {
		t.Error("no Preempt instant event in the chrome export")
	}
}
