package experiments

import (
	"time"

	"switchflow/internal/core"
	"switchflow/internal/harness"
	"switchflow/internal/sim"
)

// GandivaRow compares preemption mechanisms (§6): SwitchFlow's
// abort-and-resume against Gandiva-style checkpoint suspend-resume, for a
// BS=1 inference stream preempting a training job on a V100.
type GandivaRow struct {
	TrainModel string
	// SwitchFlow's numbers.
	SFP95MS      float64
	SFGrantP95MS float64
	SFTrainPS    float64 // training steps/s while serving
	// Checkpoint suspend-resume's numbers.
	CkptP95MS      float64
	CkptGrantP95MS float64
	CkptTrainPS    float64
}

// gandivaModels spans light to heavy checkpoint sizes (Table 1).
var gandivaModels = []string{"MobileNetV2", "ResNet50", "InceptionV3", "VGG16"}

// Gandiva runs the comparison for each background model, on the
// parallel harness in declaration order.
func Gandiva(requests int) []GandivaRow {
	return harness.Map(gandivaModels, func(model string) GandivaRow {
		return GandivaCell(model, requests)
	})
}

// GandivaCell runs one background model under both mechanisms.
func GandivaCell(trainModel string, requests int) GandivaRow {
	sfP95, sfGrant, sfTrain := gandivaOne(trainModel, requests, core.Options{})
	ckP95, ckGrant, ckTrain := gandivaOne(trainModel, requests, core.Options{CheckpointPreemption: true})
	return GandivaRow{
		TrainModel:     trainModel,
		SFP95MS:        sfP95,
		SFGrantP95MS:   sfGrant,
		SFTrainPS:      sfTrain,
		CkptP95MS:      ckP95,
		CkptGrantP95MS: ckGrant,
		CkptTrainPS:    ckTrain,
	}
}

func gandivaOne(trainModel string, requests int, opts core.Options) (p95, grantP95, trainPS float64) {
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")
	m := core.NewManager(eng, machine, opts)
	train, err := m.AddJob(trainConfig("train", trainModel, 32, 1))
	if err != nil {
		panic(err)
	}
	eng.RunUntil(2 * time.Second)
	serve, err := m.AddJob(serveConfig("serve", "ResNet50", 1, 2))
	if err != nil {
		panic(err)
	}
	start, startIters := eng.Now(), train.Iterations
	runUntil(eng, time.Hour, func() bool { return serve.Latencies.Count() >= requests })
	window := eng.Now() - start
	p95 = serve.Latencies.Percentile(95).Seconds() * 1e3
	grantP95 = m.PreemptionLatencies.Percentile(95).Seconds() * 1e3
	if window > 0 {
		trainPS = float64(train.Iterations-startIters) / window.Seconds()
	}
	return p95, grantP95, trainPS
}
