package experiments

import (
	"reflect"
	"testing"

	"switchflow/internal/harness"
)

// TestGangArmsDemonstrateSemantics pins the experiment's claims: NVLink
// beats the straddling ring, all-or-nothing placement queues the
// overflow gang whole, gang preemption never resumes a lone replica.
func TestGangArmsDemonstrateSemantics(t *testing.T) {
	rows := map[string]GangRow{}
	for _, r := range Gang() {
		rows[r.Mode] = r
	}
	nvlink, straddle := rows["nvlink"], rows["straddle"]
	if nvlink.Iterations <= straddle.Iterations {
		t.Fatalf("NVLink ring did %d iterations vs %d straddling; the fabric must price the difference",
			nvlink.Iterations, straddle.Iterations)
	}
	if nvlink.MeanSyncMillis <= 0 || nvlink.MeanSyncMillis >= straddle.MeanSyncMillis {
		t.Fatalf("mean sync nvlink=%.2fms straddle=%.2fms, want 0 < nvlink < straddle",
			nvlink.MeanSyncMillis, straddle.MeanSyncMillis)
	}
	gang, indep := rows["gang"], rows["independent"]
	if gang.GangPlaces != 2 || gang.QueuedWhole != 1 || gang.PartialGangs != 0 {
		t.Fatalf("contended gangs: places=%d queued=%d partial=%d, want 2/1/0",
			gang.GangPlaces, gang.QueuedWhole, gang.PartialGangs)
	}
	if indep.QueuedWhole != 0 || indep.AllReduces != 0 {
		t.Fatalf("independent workers queued=%d allreduces=%d, want 0/0",
			indep.QueuedWhole, indep.AllReduces)
	}
	pre := rows["preempt"]
	if pre.GangPreempts == 0 || pre.GangResumes == 0 {
		t.Fatalf("preempt arm recorded %d preempts / %d resumes, want both > 0",
			pre.GangPreempts, pre.GangResumes)
	}
	if pre.Stragglers != 0 {
		t.Fatalf("%d lone replicas resumed against a displaced gang, want 0", pre.Stragglers)
	}
}

// TestParallelGangMatchesSerial extends the determinism contract to the
// gang arms: cluster gang placement, queueing, and whole-gang preemption
// must be byte-identical on one worker or eight.
func TestParallelGangMatchesSerial(t *testing.T) {
	prev := harness.SetParallelism(1)
	defer harness.SetParallelism(prev)
	serial := Gang()

	harness.SetParallelism(8)
	parallel := Gang()

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel Gang rows differ from serial:\nserial:   %+v\nparallel: %+v",
			serial, parallel)
	}
}
