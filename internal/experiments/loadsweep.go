package experiments

import (
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/harness"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// LoadRow is one point of the open-loop load sweep: a Poisson stream of
// BS=1 ResNet50 inference requests (§3.1's "unpredictable and stochastic"
// arrivals) collocated with VGG16 training on a V100, under threaded TF
// and under SwitchFlow.
type LoadRow struct {
	RatePerSec float64
	TFP95MS    float64
	TFP99MS    float64
	SFP95MS    float64
	SFP99MS    float64
}

// defaultLoadRates spans light load to beyond the TF baseline's
// saturation point.
var defaultLoadRates = []float64{1, 2, 5, 10, 20, 40}

// LoadSweep measures tail latency across arrival rates, on the
// parallel harness in rate order.
func LoadSweep(requests int) []LoadRow {
	return harness.Map(defaultLoadRates, func(rate float64) LoadRow {
		return LoadPoint(rate, requests)
	})
}

// LoadPoint measures one arrival rate under both schedulers.
func LoadPoint(ratePerSec float64, requests int) LoadRow {
	tf95, tf99 := loadOne(ratePerSec, requests, false)
	sf95, sf99 := loadOne(ratePerSec, requests, true)
	return LoadRow{
		RatePerSec: ratePerSec,
		TFP95MS:    tf95,
		TFP99MS:    tf99,
		SFP95MS:    sf95,
		SFP99MS:    sf99,
	}
}

func loadOne(ratePerSec float64, requests int, switchFlow bool) (p95, p99 float64) {
	eng := sim.NewEngine()
	machine := machineFor(eng, "V100")

	serveCfg := serveConfig("serve", "ResNet50", 1, 2)
	serveCfg.ClosedLoop = false
	serveCfg.PoissonArrivals = true
	serveCfg.ArrivalSeed = 7
	serveCfg.ArrivalEvery = time.Duration(float64(time.Second) / ratePerSec)
	// A deep prefetch window lets queued requests pipeline.
	serveCfg.PrefetchDepth = 4

	var serve *workload.Job
	if switchFlow {
		m := core.NewManager(eng, machine, core.Options{})
		if _, err := m.AddJob(trainConfig("train", "VGG16", 32, 1)); err != nil {
			panic(err)
		}
		eng.RunUntil(2 * time.Second)
		job, err := m.AddJob(serveCfg)
		if err != nil {
			panic(err)
		}
		serve = job
	} else {
		s := baseline.NewThreadedTF(eng, machine)
		if _, err := s.AddJob(trainConfig("train", "VGG16", 32, 1)); err != nil {
			panic(err)
		}
		eng.RunUntil(2 * time.Second)
		job, err := s.AddJob(serveCfg)
		if err != nil {
			panic(err)
		}
		serve = job
	}
	runUntil(eng, 30*time.Minute, func() bool { return serve.Latencies.Count() >= requests })
	return serve.Latencies.Percentile(95).Seconds() * 1e3,
		serve.Latencies.Percentile(99).Seconds() * 1e3
}
