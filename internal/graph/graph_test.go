package graph

import (
	"testing"
	"testing/quick"

	"switchflow/internal/device"
)

func chain(names ...string) (*Graph, []*Node) {
	g := New("chain")
	var nodes []*Node
	for _, name := range names {
		n := g.AddNode(&Node{Name: name, Op: OpNoOp})
		if len(nodes) > 0 {
			g.Connect(nodes[len(nodes)-1], n)
		}
		nodes = append(nodes, n)
	}
	return g, nodes
}

func TestAddNodeAssignsSequentialIDs(t *testing.T) {
	g, nodes := chain("a", "b", "c")
	for i, n := range nodes {
		if n.ID != i {
			t.Fatalf("node %s ID = %d, want %d", n.Name, n.ID, i)
		}
	}
	if g.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", g.Len())
	}
}

func TestConnectLinksBothDirections(t *testing.T) {
	_, nodes := chain("a", "b")
	a, b := nodes[0], nodes[1]
	if len(a.Outputs()) != 1 || a.Outputs()[0] != b {
		t.Fatal("a.Outputs() missing b")
	}
	if len(b.Inputs()) != 1 || b.Inputs()[0] != a {
		t.Fatal("b.Inputs() missing a")
	}
}

func TestTopoOrderChain(t *testing.T) {
	g, nodes := chain("a", "b", "c", "d")
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		if order[i] != nodes[i] {
			t.Fatalf("order[%d] = %s, want %s", i, order[i].Name, nodes[i].Name)
		}
	}
}

func TestTopoOrderDiamond(t *testing.T) {
	g := New("diamond")
	a := g.AddNode(&Node{Name: "a"})
	b := g.AddNode(&Node{Name: "b"})
	c := g.AddNode(&Node{Name: "c"})
	d := g.AddNode(&Node{Name: "d"})
	g.Connect(a, b)
	g.Connect(a, c)
	g.Connect(b, d)
	g.Connect(c, d)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n.Name] = i
	}
	if pos["a"] != 0 || pos["d"] != 3 {
		t.Fatalf("diamond order %v", pos)
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g, nodes := chain("a", "b", "c")
	g.Connect(nodes[2], nodes[0]) // close the loop
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted cyclic graph")
	}
}

func TestValidateAcceptsDAG(t *testing.T) {
	g, _ := chain("a", "b", "c")
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAggregates(t *testing.T) {
	g := New("agg")
	g.AddNode(&Node{Name: "w1", FLOPs: 100, ParamBytes: 400})
	g.AddNode(&Node{Name: "w2", FLOPs: 50, ParamBytes: 600})
	g.AddNode(&Node{Name: "x", FLOPs: 25})
	if got := g.TotalFLOPs(); got != 175 {
		t.Fatalf("TotalFLOPs() = %v, want 175", got)
	}
	if got := g.ParamBytes(); got != 1000 {
		t.Fatalf("ParamBytes() = %d, want 1000", got)
	}
	if got := g.WeightTensors(); got != 2 {
		t.Fatalf("WeightTensors() = %d, want 2", got)
	}
}

func TestOpTypeStrings(t *testing.T) {
	if OpConv2D.String() != "Conv2D" {
		t.Fatalf("OpConv2D.String() = %q", OpConv2D.String())
	}
	if OpType(999).String() != "OpType(999)" {
		t.Fatalf("unknown op string = %q", OpType(999).String())
	}
}

func TestPartitionSingleDevice(t *testing.T) {
	g, _ := chain("a", "b")
	for _, n := range g.Nodes() {
		n.Device = device.GPUID(0)
	}
	subs, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 {
		t.Fatalf("got %d subgraphs, want 1", len(subs))
	}
	if subs[0].Device != device.GPUID(0) || len(subs[0].Nodes) != 2 {
		t.Fatalf("subgraph = %s with %d nodes", subs[0].Name(), len(subs[0].Nodes))
	}
}

func TestPartitionInsertsSendRecv(t *testing.T) {
	g := New("xdev")
	pre := g.AddNode(&Node{Name: "pre", Op: OpPreprocess, Device: device.CPUID, OutputBytes: 1 << 20})
	conv := g.AddNode(&Node{Name: "conv", Op: OpConv2D, Device: device.GPUID(0)})
	g.Connect(pre, conv)
	subs, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("got %d subgraphs, want 2 (cpu, gpu)", len(subs))
	}
	cpu, gpu := subs[0], subs[1]
	if cpu.Device != device.CPUID || gpu.Device != device.GPUID(0) {
		t.Fatalf("subgraph order %s, %s", cpu.Name(), gpu.Name())
	}
	// CPU side: pre -> send. GPU side: recv -> conv.
	if len(cpu.Nodes) != 2 || cpu.Nodes[1].Op != OpSend {
		t.Fatalf("cpu nodes %v", nodeNames(cpu.Nodes))
	}
	if len(gpu.Nodes) != 2 || gpu.Nodes[0].Op != OpRecv {
		t.Fatalf("gpu nodes %v", nodeNames(gpu.Nodes))
	}
	if cpu.Nodes[1].OutputBytes != 1<<20 || gpu.Nodes[0].OutputBytes != 1<<20 {
		t.Fatal("send/recv did not inherit tensor size")
	}
	// Original direct edge must be gone.
	for _, succ := range pre.Outputs() {
		if succ == conv {
			t.Fatal("direct cross-device edge survived partitioning")
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after partition: %v", err)
	}
}

func TestPartitionThreeDevices(t *testing.T) {
	g := New("multi")
	pre := g.AddNode(&Node{Name: "pre", Device: device.CPUID})
	a := g.AddNode(&Node{Name: "a", Device: device.GPUID(0)})
	b := g.AddNode(&Node{Name: "b", Device: device.GPUID(1)})
	g.Connect(pre, a)
	g.Connect(pre, b)
	subs, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 {
		t.Fatalf("got %d subgraphs, want 3", len(subs))
	}
	wantDevices := []device.ID{device.CPUID, device.GPUID(0), device.GPUID(1)}
	for i, want := range wantDevices {
		if subs[i].Device != want {
			t.Fatalf("subs[%d].Device = %v, want %v", i, subs[i].Device, want)
		}
	}
}

func TestPartitionPreservesParamAccounting(t *testing.T) {
	g := New("params")
	pre := g.AddNode(&Node{Name: "pre", Device: device.CPUID})
	conv := g.AddNode(&Node{Name: "conv", Device: device.GPUID(0), ParamBytes: 1024})
	dense := g.AddNode(&Node{Name: "dense", Device: device.GPUID(0), ParamBytes: 2048})
	g.Connect(pre, conv)
	g.Connect(conv, dense)
	subs, err := Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	gpu := subs[1]
	if got := gpu.ParamBytes(); got != 3072 {
		t.Fatalf("gpu subgraph ParamBytes = %d, want 3072", got)
	}
	if got := gpu.WeightTensors(); got != 2 {
		t.Fatalf("gpu subgraph WeightTensors = %d, want 2", got)
	}
}

// Property: partitioning any random two-device layered DAG yields subgraphs
// that (a) cover every original node exactly once, (b) contain only nodes
// of their own device, and (c) leave the graph acyclic.
func TestPartitionProperty(t *testing.T) {
	prop := func(layerSizes []uint8, placements []bool) bool {
		g := New("prop")
		var prev []*Node
		pi := 0
		place := func() device.ID {
			if pi < len(placements) && placements[pi] {
				pi++
				return device.GPUID(0)
			}
			pi++
			return device.CPUID
		}
		layers := 0
		for _, sz := range layerSizes {
			if layers == 4 {
				break
			}
			width := int(sz%3) + 1
			var cur []*Node
			for i := 0; i < width; i++ {
				n := g.AddNode(&Node{Name: "n", Device: place()})
				for _, p := range prev {
					g.Connect(p, n)
				}
				cur = append(cur, n)
			}
			prev = cur
			layers++
		}
		original := g.Len()
		subs, err := Partition(g)
		if err != nil {
			return false
		}
		seen := 0
		for _, s := range subs {
			for _, n := range s.Nodes {
				if n.Device != s.Device {
					return false
				}
				seen++
			}
		}
		// Every node (original + synthesized) appears in exactly one
		// subgraph, and at least the original count survives.
		if seen != g.Len() || g.Len() < original {
			return false
		}
		return g.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func nodeNames(nodes []*Node) []string {
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	return names
}
