// Package graph implements static computation graphs in the TensorFlow
// style (§2.1 of the paper): nodes are operations placed on devices, edges
// are dataflow dependencies, and a graph is partitioned into per-device
// subgraphs connected by Send/Recv node pairs, each subgraph executed by
// its own executor.
package graph

import (
	"fmt"
	"time"

	"switchflow/internal/device"
)

// OpType classifies a node's operation. The cost model maps each type to
// kernel durations and occupancy.
type OpType int

// Operation types. The set covers the CNN and RNN models of the paper's
// evaluation plus the framework-internal ops (iterator, send/recv, apply).
const (
	OpInput OpType = iota + 1
	OpPreprocess
	OpIteratorGetNext
	OpConv2D
	OpDepthwiseConv2D
	OpDense
	OpBatchNorm
	OpActivation
	OpPool
	OpAdd
	OpConcat
	OpSoftmax
	OpEmbedding
	OpLSTMCell
	OpAttention
	OpLoss
	OpGradient
	OpApplyGradient
	OpSend
	OpRecv
	OpNoOp
)

var opNames = map[OpType]string{
	OpInput:           "Input",
	OpPreprocess:      "Preprocess",
	OpIteratorGetNext: "IteratorGetNext",
	OpConv2D:          "Conv2D",
	OpDepthwiseConv2D: "DepthwiseConv2D",
	OpDense:           "Dense",
	OpBatchNorm:       "BatchNorm",
	OpActivation:      "Activation",
	OpPool:            "Pool",
	OpAdd:             "Add",
	OpConcat:          "Concat",
	OpSoftmax:         "Softmax",
	OpEmbedding:       "Embedding",
	OpLSTMCell:        "LSTMCell",
	OpAttention:       "Attention",
	OpLoss:            "Loss",
	OpGradient:        "Gradient",
	OpApplyGradient:   "ApplyGradient",
	OpSend:            "Send",
	OpRecv:            "Recv",
	OpNoOp:            "NoOp",
}

// String implements fmt.Stringer.
func (op OpType) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("OpType(%d)", int(op))
}

// Node is one operation in a computation graph.
type Node struct {
	// ID is the node's index within its graph, assigned by AddNode.
	ID int
	// Name is a unique human-readable label.
	Name string
	// Op is the operation type.
	Op OpType
	// Device is the placement decided at session construction.
	Device device.ID
	// FLOPs is the floating-point work of the op (already scaled by batch).
	FLOPs float64
	// MemBytes is the device-memory traffic of the op (activations +
	// weights read/written), used by the roofline cost model.
	MemBytes int64
	// OutputBytes is the size of the op's output tensor, which crosses
	// Send/Recv edges.
	OutputBytes int64
	// ParamBytes is the size of trainable parameters the op owns (zero for
	// stateless ops). Summed per device it gives the stateful variables of
	// Table 1 (together with optimizer slots).
	ParamBytes int64
	// WeightVars is the number of weight variables (tensors) behind
	// ParamBytes; per-tensor overhead dominates small-tensor state
	// transfer (Table 1). Zero with ParamBytes set counts as one tensor.
	WeightVars int
	// CPUTime, when non-zero, overrides the cost model for CPU-placed ops
	// (e.g. JPEG preprocessing shards).
	CPUTime time.Duration

	in  []*Node
	out []*Node

	// Kernel-duration cache maintained by internal/cost. A node is
	// re-costed on every iteration of its job, always for the same GPU
	// class (until a migration), so one slot per node removes the cost
	// model from the executor's hot path. The node, like its graph, is
	// owned by a single engine, so no locking is needed.
	memoClass device.GPUClass
	memoDur   time.Duration
	memoSet   bool
}

// CachedKernelDuration returns the memoized kernel duration for class, if
// one is cached.
func (n *Node) CachedKernelDuration(class device.GPUClass) (time.Duration, bool) {
	if n.memoSet && n.memoClass == class {
		return n.memoDur, true
	}
	return 0, false
}

// SetCachedKernelDuration memoizes the kernel duration for class,
// replacing any previously cached class.
func (n *Node) SetCachedKernelDuration(class device.GPUClass, d time.Duration) {
	n.memoClass, n.memoDur, n.memoSet = class, d, true
}

// Inputs returns the node's predecessors. The slice is shared; callers must
// not mutate it.
func (n *Node) Inputs() []*Node { return n.in }

// Outputs returns the node's successors. The slice is shared; callers must
// not mutate it.
func (n *Node) Outputs() []*Node { return n.out }

// Graph is a directed acyclic computation graph.
type Graph struct {
	// Name labels the graph (usually the model name).
	Name string

	nodes []*Node
}

// New creates an empty graph.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// AddNode appends a node and assigns its ID. The node's Name must be unique
// only for readability; uniqueness is not enforced.
func (g *Graph) AddNode(n *Node) *Node {
	n.ID = len(g.nodes)
	g.nodes = append(g.nodes, n)
	return n
}

// Connect adds a dataflow edge from src to dst.
func (g *Graph) Connect(src, dst *Node) {
	src.out = append(src.out, dst)
	dst.in = append(dst.in, src)
}

// Nodes returns all nodes in insertion order. The slice is shared; callers
// must not mutate it.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Len returns the node count.
func (g *Graph) Len() int { return len(g.nodes) }

// Validate checks that the graph is acyclic and edges are consistent.
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for _, n := range g.nodes {
		for _, in := range n.in {
			if !containsNode(in.out, n) {
				return fmt.Errorf("graph %s: edge %s->%s missing forward link", g.Name, in.Name, n.Name)
			}
		}
	}
	return nil
}

// TopoOrder returns the nodes in a topological order (stable with respect
// to insertion order), or an error if the graph has a cycle.
func (g *Graph) TopoOrder() ([]*Node, error) {
	indeg := make(map[*Node]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] = len(n.in)
	}
	// Breadth-first from the roots, preserving insertion order among ties:
	// this is the order TF's executor fills its ready queue in (§2.1).
	var order, frontier []*Node
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		next := frontier[0]
		frontier = frontier[1:]
		order = append(order, next)
		for _, succ := range next.out {
			indeg[succ]--
			if indeg[succ] == 0 {
				frontier = append(frontier, succ)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("graph %s: cycle detected (%d of %d nodes ordered)",
			g.Name, len(order), len(g.nodes))
	}
	return order, nil
}

// TotalFLOPs sums FLOPs over all nodes.
func (g *Graph) TotalFLOPs() float64 {
	var total float64
	for _, n := range g.nodes {
		total += n.FLOPs
	}
	return total
}

// ParamBytes sums trainable-parameter bytes over all nodes.
func (g *Graph) ParamBytes() int64 {
	var total int64
	for _, n := range g.nodes {
		total += n.ParamBytes
	}
	return total
}

// WeightTensors counts weight variables across the graph, which drives the
// per-tensor transfer overhead of Table 1.
func (g *Graph) WeightTensors() int {
	count := 0
	for _, n := range g.nodes {
		count += nodeWeightVars(n)
	}
	return count
}

func nodeWeightVars(n *Node) int {
	if n.WeightVars > 0 {
		return n.WeightVars
	}
	if n.ParamBytes > 0 {
		return 1
	}
	return 0
}

func containsNode(list []*Node, n *Node) bool {
	for _, x := range list {
		if x == n {
			return true
		}
	}
	return false
}
