package graph

import (
	"testing"

	"switchflow/internal/device"
)

func convBNReluChain() *Graph {
	g := New("fuse")
	conv := g.AddNode(&Node{Name: "conv", Op: OpConv2D, Device: device.GPUID(0),
		FLOPs: 100, MemBytes: 10, OutputBytes: 5})
	bn := g.AddNode(&Node{Name: "bn", Op: OpBatchNorm, Device: device.GPUID(0),
		FLOPs: 10, MemBytes: 4, ParamBytes: 16, WeightVars: 4, OutputBytes: 5})
	relu := g.AddNode(&Node{Name: "relu", Op: OpActivation, Device: device.GPUID(0),
		FLOPs: 1, MemBytes: 2, OutputBytes: 6})
	next := g.AddNode(&Node{Name: "conv2", Op: OpConv2D, Device: device.GPUID(0), FLOPs: 50})
	g.Connect(conv, bn)
	g.Connect(bn, relu)
	g.Connect(relu, next)
	return g
}

func TestFuseElementwiseMergesChain(t *testing.T) {
	g := convBNReluChain()
	beforeFLOPs := g.TotalFLOPs()
	beforeParams := g.ParamBytes()
	beforeTensors := g.WeightTensors()

	fused := FuseElementwise(g)
	if fused != 2 {
		t.Fatalf("fused %d nodes, want 2 (bn, relu)", fused)
	}
	if g.Len() != 2 {
		t.Fatalf("graph has %d nodes after fusion, want 2", g.Len())
	}
	// Conservation: fusion moves work, never loses it.
	if g.TotalFLOPs() != beforeFLOPs {
		t.Errorf("FLOPs %v != %v", g.TotalFLOPs(), beforeFLOPs)
	}
	if g.ParamBytes() != beforeParams {
		t.Errorf("params %d != %d", g.ParamBytes(), beforeParams)
	}
	if g.WeightTensors() != beforeTensors {
		t.Errorf("tensors %d != %d", g.WeightTensors(), beforeTensors)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The fused kernel's output is the last member's output tensor.
	fusedNode := g.Nodes()[0]
	if fusedNode.OutputBytes != 6 {
		t.Errorf("fused OutputBytes = %d, want relu's 6", fusedNode.OutputBytes)
	}
	if len(fusedNode.Outputs()) != 1 || fusedNode.Outputs()[0].Name != "conv2" {
		t.Errorf("fused node not rewired to conv2")
	}
}

func TestFuseSkipsCrossDeviceAndFanOut(t *testing.T) {
	g := New("nofuse")
	conv := g.AddNode(&Node{Name: "conv", Op: OpConv2D, Device: device.GPUID(0), FLOPs: 10})
	cpuRelu := g.AddNode(&Node{Name: "relu", Op: OpActivation, Device: device.CPUID})
	g.Connect(conv, cpuRelu)
	if fused := FuseElementwise(g); fused != 0 {
		t.Fatalf("fused %d across devices", fused)
	}

	g2 := New("fanout")
	conv2 := g2.AddNode(&Node{Name: "conv", Op: OpConv2D, Device: device.GPUID(0), FLOPs: 10})
	reluA := g2.AddNode(&Node{Name: "a", Op: OpActivation, Device: device.GPUID(0)})
	reluB := g2.AddNode(&Node{Name: "b", Op: OpActivation, Device: device.GPUID(0)})
	g2.Connect(conv2, reluA)
	g2.Connect(conv2, reluB)
	if fused := FuseElementwise(g2); fused != 0 {
		t.Fatalf("fused %d despite fan-out producer", fused)
	}
}

func TestFuseLargeModelGraphConserves(t *testing.T) {
	// Build a realistic-size synthetic network and check conservation.
	g := New("big")
	var prev *Node
	for i := 0; i < 50; i++ {
		conv := g.AddNode(&Node{Name: "conv", Op: OpConv2D, Device: device.GPUID(0),
			FLOPs: 1e9, ParamBytes: 1 << 20, WeightVars: 1, OutputBytes: 1 << 16})
		bn := g.AddNode(&Node{Name: "bn", Op: OpBatchNorm, Device: device.GPUID(0),
			FLOPs: 1e6, ParamBytes: 1 << 10, WeightVars: 4, OutputBytes: 1 << 16})
		relu := g.AddNode(&Node{Name: "relu", Op: OpActivation, Device: device.GPUID(0),
			FLOPs: 1e5, OutputBytes: 1 << 16})
		if prev != nil {
			g.Connect(prev, conv)
		}
		g.Connect(conv, bn)
		g.Connect(bn, relu)
		prev = relu
	}
	flops, params, tensors := g.TotalFLOPs(), g.ParamBytes(), g.WeightTensors()
	fused := FuseElementwise(g)
	if fused != 100 {
		t.Fatalf("fused %d, want 100 (bn+relu per block)", fused)
	}
	if g.Len() != 50 {
		t.Fatalf("len = %d, want 50", g.Len())
	}
	if g.TotalFLOPs() != flops || g.ParamBytes() != params || g.WeightTensors() != tensors {
		t.Fatal("fusion lost work")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}
