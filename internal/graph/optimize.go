package graph

// Static-graph optimization (§2: "the execution of a learning algorithm
// can be accelerated by optimizing the directed graph, e.g., pruning,
// merging"). FuseElementwise is the merging pass TF's grappler applies to
// static graphs — and precisely what dynamic (eager) execution cannot do,
// which is one reason the paper targets static graphs.

// fusableOps are elementwise ops a producer kernel can absorb.
var fusableOps = map[OpType]bool{
	OpActivation: true,
	OpBatchNorm:  true,
	OpAdd:        true,
}

// FuseElementwise merges single-input elementwise nodes into their
// producers when both live on the same device: the fused kernel carries
// the combined FLOPs, memory traffic, and parameters, and one launch
// replaces several. Returns the number of nodes fused away. Node IDs are
// reassigned; callers must re-partition afterwards.
func FuseElementwise(g *Graph) int {
	fused := 0
	for {
		n := findFusable(g)
		if n == nil {
			break
		}
		pred := n.in[0]
		// Absorb the elementwise op into its producer.
		pred.FLOPs += n.FLOPs
		pred.MemBytes += n.MemBytes
		pred.ParamBytes += n.ParamBytes
		pred.WeightVars += nodeWeightVars(n)
		pred.OutputBytes = n.OutputBytes
		pred.Name = pred.Name + "+" + n.Name
		// Rewire pred -> n's successors.
		pred.out = deleteNode(pred.out, n)
		for _, succ := range n.out {
			succ.in = deleteNode(succ.in, n)
			g.Connect(pred, succ)
		}
		g.remove(n)
		fused++
	}
	return fused
}

// findFusable locates one mergeable node: a fusable op with exactly one
// input, whose producer is a compute op on the same device and has no
// other consumers (so fusion cannot duplicate the producer's work).
func findFusable(g *Graph) *Node {
	for _, n := range g.nodes {
		if !fusableOps[n.Op] {
			continue
		}
		if len(n.in) != 1 {
			continue
		}
		pred := n.in[0]
		if pred.Device != n.Device {
			continue
		}
		if len(pred.out) != 1 {
			continue
		}
		switch pred.Op {
		case OpConv2D, OpDepthwiseConv2D, OpDense, OpBatchNorm, OpActivation,
			OpAdd, OpPool, OpLSTMCell, OpAttention, OpGradient:
			return n
		}
	}
	return nil
}

// remove deletes n from the node list and reassigns IDs.
func (g *Graph) remove(n *Node) {
	kept := g.nodes[:0]
	for _, x := range g.nodes {
		if x != n {
			kept = append(kept, x)
		}
	}
	g.nodes = kept
	for i, x := range g.nodes {
		x.ID = i
	}
}
