package graph

import (
	"fmt"

	"switchflow/internal/device"
)

// Subgraph is the slice of a graph placed on one device, executed by one
// executor (§2.1: "there could be multiple executors in a session, each
// including nodes to be executed on a single device").
type Subgraph struct {
	// Graph is the parent graph.
	Graph *Graph
	// Device is the placement all member nodes share.
	Device device.ID
	// Nodes are the member nodes in parent topological order, including
	// the Send/Recv nodes synthesized at partition boundaries.
	Nodes []*Node

	plan *ExecPlan
}

// ExecPlan is the per-activation executor bootstrap for a subgraph:
// intra-subgraph dependency counts and the initially-ready frontier. It is
// identical for every iteration of a job, so the executor copies the
// template instead of recomputing membership maps each activation.
type ExecPlan struct {
	// NumNodes is the parent graph's node count; per-node executor state
	// is indexed by Node.ID, which is dense in the parent graph.
	NumNodes int
	// Deps holds, per node ID, the number of intra-subgraph dependencies;
	// -1 marks nodes that belong to other subgraphs.
	Deps []int32
	// Ready lists member nodes with no intra-subgraph dependencies, in
	// subgraph order.
	Ready []*Node
}

// Plan returns the subgraph's executor bootstrap, computing and caching it
// on first use. The subgraph must not gain or lose nodes afterwards (it
// never does: partitioning is the last structural change to a graph).
func (s *Subgraph) Plan() *ExecPlan {
	if s.plan != nil {
		return s.plan
	}
	p := &ExecPlan{NumNodes: len(s.Graph.nodes)}
	p.Deps = make([]int32, p.NumNodes)
	for i := range p.Deps {
		p.Deps[i] = -1
	}
	for _, n := range s.Nodes {
		p.Deps[n.ID] = 0
	}
	for _, n := range s.Nodes {
		deps := int32(0)
		for _, in := range n.in {
			if p.Deps[in.ID] >= 0 {
				deps++
			}
		}
		p.Deps[n.ID] = deps
		if deps == 0 {
			p.Ready = append(p.Ready, n)
		}
	}
	s.plan = p
	return p
}

// Name returns a readable label, e.g. "resnet50@gpu:0".
func (s *Subgraph) Name() string {
	return fmt.Sprintf("%s@%s", s.Graph.Name, s.Device)
}

// ParamBytes sums parameter bytes of member nodes.
func (s *Subgraph) ParamBytes() int64 {
	var total int64
	for _, n := range s.Nodes {
		total += n.ParamBytes
	}
	return total
}

// WeightTensors counts weight variables across member nodes.
func (s *Subgraph) WeightTensors() int {
	count := 0
	for _, n := range s.Nodes {
		count += nodeWeightVars(n)
	}
	return count
}

// Partition splits g into per-device subgraphs, inserting a Send node on
// the producer's device and a Recv node on the consumer's device for every
// edge that crosses devices. It mutates g by appending the Send/Recv nodes.
// Subgraphs come back ordered CPU first, then GPUs by index, matching the
// executor creation order in TF sessions.
func Partition(g *Graph) ([]*Subgraph, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	// Rewire cross-device edges through Send/Recv pairs. Iterate over a
	// snapshot because we append nodes while rewiring.
	for _, n := range order {
		outs := append([]*Node(nil), n.out...)
		for _, succ := range outs {
			if succ.Device == n.Device || succ.Op == OpSend || succ.Op == OpRecv {
				continue
			}
			insertSendRecv(g, n, succ)
		}
	}
	// Bucket nodes per device, preserving a fresh topological order that
	// includes the synthesized nodes.
	order, err = g.TopoOrder()
	if err != nil {
		return nil, err
	}
	buckets := make(map[device.ID][]*Node)
	for _, n := range order {
		buckets[n.Device] = append(buckets[n.Device], n)
	}
	var subs []*Subgraph
	if nodes, ok := buckets[device.CPUID]; ok {
		subs = append(subs, &Subgraph{Graph: g, Device: device.CPUID, Nodes: nodes})
	}
	maxGPU := -1
	for id := range buckets {
		if id.Kind == device.KindGPU && id.Index > maxGPU {
			maxGPU = id.Index
		}
	}
	for i := 0; i <= maxGPU; i++ {
		if nodes, ok := buckets[device.GPUID(i)]; ok {
			subs = append(subs, &Subgraph{Graph: g, Device: device.GPUID(i), Nodes: nodes})
		}
	}
	return subs, nil
}

// insertSendRecv replaces the direct edge src->dst with
// src -> send(src.Device) -> recv(dst.Device) -> dst.
func insertSendRecv(g *Graph, src, dst *Node) {
	send := g.AddNode(&Node{
		Name:        fmt.Sprintf("send_%s_to_%s", src.Name, dst.Device),
		Op:          OpSend,
		Device:      src.Device,
		OutputBytes: src.OutputBytes,
	})
	recv := g.AddNode(&Node{
		Name:        fmt.Sprintf("recv_%s_on_%s", src.Name, dst.Device),
		Op:          OpRecv,
		Device:      dst.Device,
		OutputBytes: src.OutputBytes,
	})
	removeEdge(src, dst)
	g.Connect(src, send)
	g.Connect(send, recv)
	g.Connect(recv, dst)
}

func removeEdge(src, dst *Node) {
	src.out = deleteNode(src.out, dst)
	dst.in = deleteNode(dst.in, src)
}

func deleteNode(list []*Node, n *Node) []*Node {
	for i, x := range list {
		if x == n {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}
