// Package traffic is the trace-driven open-loop load layer of the fleet
// scenario: millions of simulated clients, aggregated into per-epoch
// arrival batches, hitting a multi-tenant serving fleet. The paper's
// deployment story (§1-2) is inference services collocating with training
// because preemption bounds the tails; this package supplies the "heavy
// traffic from millions of users" side of that story.
//
// The aggregate request rate is shaped by a diurnal sinusoid (a compressed
// day) multiplied by flash-crowd spikes (trapezoidal ramp/hold/decay
// envelopes), and split across tenants by heavy-tailed Zipf weights — a
// few tenants carry most of the load, a long tail carries the rest.
// Clients are never simulated individually: a Generator turns the rate
// integral over an epoch window into a Poisson arrival count per tenant,
// so cost scales with epochs and request rate, not client population.
//
// Determinism contract: every tenant owns a seeded RNG stream advanced
// only by that tenant's draws, and Batch windows must be requested in
// nondecreasing, non-overlapping order (the cluster's barrier hooks do
// exactly that, serially, at the same virtual instants whether the node
// engines run on one worker or many). Identical profiles therefore yield
// byte-identical arrival sequences, serial or parallel.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Tier is a tenant's SLO class. Higher tiers buy tighter latency
// objectives and higher scheduler priority (gold preempts silver preempts
// bronze preempts background training).
type Tier int

// SLO tiers, bronze lowest.
const (
	TierBronze Tier = iota
	TierSilver
	TierGold
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierGold:
		return "gold"
	case TierSilver:
		return "silver"
	default:
		return "bronze"
	}
}

// SLO is the tier's per-request latency objective: admission control
// sheds beyond it, and completions within it count toward attainment.
func (t Tier) SLO() time.Duration {
	switch t {
	case TierGold:
		return 150 * time.Millisecond
	case TierSilver:
		return 300 * time.Millisecond
	default:
		return 600 * time.Millisecond
	}
}

// Priority maps the tier onto the scheduler's preemption ladder, above
// background training (which conventionally runs at priority 1).
func (t Tier) Priority() int {
	switch t {
	case TierGold:
		return 4
	case TierSilver:
		return 3
	default:
		return 2
	}
}

// Tenant is one service of the multi-tenant fleet.
type Tenant struct {
	// ID names the tenant ("t00-gold").
	ID string
	// Tier is the tenant's SLO class.
	Tier Tier
	// Model is the model the tenant serves (a zoo name).
	Model string
	// Weight is the tenant's relative share of the aggregate request rate;
	// the Generator normalizes weights across tenants.
	Weight float64
	// Seed decorrelates the tenant's arrival stream from its neighbours'.
	Seed int64
}

// Spike is one flash crowd: a trapezoidal rate multiplier that ramps from
// 1 to Magnitude over Ramp, holds for Hold, and decays back over Decay.
type Spike struct {
	// Start is when the ramp begins.
	Start time.Duration
	// Ramp, Hold, Decay shape the trapezoid.
	Ramp  time.Duration
	Hold  time.Duration
	Decay time.Duration
	// Magnitude is the peak rate multiplier (>= 1).
	Magnitude float64
}

// multiplier evaluates the spike envelope at t.
func (s Spike) multiplier(t time.Duration) float64 {
	if s.Magnitude <= 1 || t <= s.Start {
		return 1
	}
	el := t - s.Start
	switch {
	case el < s.Ramp:
		return 1 + (s.Magnitude-1)*float64(el)/float64(s.Ramp)
	case el < s.Ramp+s.Hold:
		return s.Magnitude
	case el < s.Ramp+s.Hold+s.Decay:
		rem := el - s.Ramp - s.Hold
		return s.Magnitude - (s.Magnitude-1)*float64(rem)/float64(s.Decay)
	default:
		return 1
	}
}

// Profile describes the full load shape of one fleet scenario.
type Profile struct {
	// Clients is the simulated client population (aggregated, never
	// individually simulated); RPSPerClient its mean per-client request
	// rate at the diurnal baseline. Their product is the base rate.
	Clients      int
	RPSPerClient float64
	// DiurnalPeriod compresses a day into virtual time (0 disables the
	// sinusoid); DiurnalMin is the trough rate as a fraction of the
	// baseline (1 flattens the curve). The baseline is the sinusoid peak.
	DiurnalPeriod time.Duration
	DiurnalMin    float64
	// Spikes are flash crowds layered multiplicatively on the diurnal
	// curve, applied to every tenant.
	Spikes []Spike
	// Tenants is the tenant mix (see SyntheticTenants).
	Tenants []Tenant
	// Seed decorrelates whole profiles; each tenant stream is seeded by
	// Seed combined with the tenant's own Seed.
	Seed int64
}

// BaseRPS is the aggregate request rate at the diurnal baseline.
func (p Profile) BaseRPS() float64 { return float64(p.Clients) * p.RPSPerClient }

// Rate is the aggregate request rate at virtual time t: base x diurnal x
// every spike envelope.
func (p Profile) Rate(t time.Duration) float64 {
	r := p.BaseRPS()
	if p.DiurnalPeriod > 0 && p.DiurnalMin < 1 {
		// Sinusoid between DiurnalMin and 1, peaking a quarter-period in so
		// a run starting at t=0 starts mid-slope.
		phase := 2 * math.Pi * float64(t) / float64(p.DiurnalPeriod)
		mid := (1 + p.DiurnalMin) / 2
		amp := (1 - p.DiurnalMin) / 2
		r *= mid + amp*math.Sin(phase)
	}
	for _, s := range p.Spikes {
		r *= s.multiplier(t)
	}
	return r
}

// SyntheticTenants builds n tenants with Zipf(1.1) heavy-tailed traffic
// weights: tenant i carries weight 1/(i+1)^1.1, so the head of the
// distribution dominates. The heaviest fifth are gold, the next third
// silver, the tail bronze — paying tenants are the busy ones — and models
// cycle through the serving zoo heaviest-first. Seeds derive from seed so
// two profiles with different seeds draw decorrelated streams.
func SyntheticTenants(n int, seed int64) []Tenant {
	models := []string{"ResNet50", "MobileNetV2", "InceptionV3", "DenseNet121", "NASNetMobile"}
	tenants := make([]Tenant, n)
	for i := range tenants {
		tier := TierBronze
		switch {
		case i < (n+4)/5:
			tier = TierGold
		case i < (n+4)/5+(n+2)/3:
			tier = TierSilver
		}
		tenants[i] = Tenant{
			ID:     fmt.Sprintf("t%02d-%s", i, tier),
			Tier:   tier,
			Model:  models[i%len(models)],
			Weight: 1 / math.Pow(float64(i+1), 1.1),
			Seed:   seed + int64(i)*7919,
		}
	}
	return tenants
}

// Arrival is one request: which tenant it belongs to, which of the
// tenant's (aggregated) clients sent it, and when it lands.
type Arrival struct {
	// Tenant indexes Profile.Tenants.
	Tenant int
	// Client is a pseudo-client identity drawn from the tenant's client
	// population — the consistent-hash router's affinity key.
	Client uint64
	// At is the arrival instant.
	At time.Duration
}

// Generator turns a Profile into deterministic per-epoch arrival batches.
type Generator struct {
	profile Profile
	share   []float64 // normalized tenant weights
	rngs    []*rand.Rand
	from    time.Duration // next window must start here
}

// NewGenerator validates the profile and seeds one RNG stream per tenant.
func NewGenerator(p Profile) (*Generator, error) {
	if p.Clients <= 0 || p.RPSPerClient <= 0 {
		return nil, fmt.Errorf("traffic: profile needs Clients > 0 and RPSPerClient > 0")
	}
	if len(p.Tenants) == 0 {
		return nil, fmt.Errorf("traffic: profile has no tenants")
	}
	if p.DiurnalMin < 0 || p.DiurnalMin > 1 {
		return nil, fmt.Errorf("traffic: DiurnalMin %v outside [0, 1]", p.DiurnalMin)
	}
	g := &Generator{profile: p}
	total := 0.0
	for i, t := range p.Tenants {
		if t.Weight <= 0 {
			return nil, fmt.Errorf("traffic: tenant %d (%s) weight must be positive", i, t.ID)
		}
		total += t.Weight
	}
	for _, t := range p.Tenants {
		g.share = append(g.share, t.Weight/total)
		g.rngs = append(g.rngs, rand.New(rand.NewSource(p.Seed^t.Seed)))
	}
	return g, nil
}

// Profile returns the generator's profile.
func (g *Generator) Profile() Profile { return g.profile }

// Batch draws every arrival in the window (from, to], sorted by (time,
// tenant). Windows must be requested in order without gaps or overlap —
// each tenant's RNG stream advances with its draws, so the sequence of
// windows is part of the deterministic replay state.
func (g *Generator) Batch(from, to time.Duration) []Arrival {
	if from != g.from {
		panic(fmt.Sprintf("traffic: Batch(%v, %v) out of order; next window starts at %v", from, to, g.from))
	}
	if to <= from {
		panic(fmt.Sprintf("traffic: Batch window (%v, %v] is empty", from, to))
	}
	g.from = to
	dt := to - from
	// Midpoint rate x window approximates the rate integral; epochs are
	// milliseconds against diurnal periods of tens of seconds, so the
	// error is negligible and the evaluation stays cheap.
	rate := g.profile.Rate(from + dt/2)
	var out []Arrival
	for i := range g.profile.Tenants {
		rng := g.rngs[i]
		mean := g.share[i] * rate * dt.Seconds()
		n := poisson(rng, mean)
		for k := 0; k < n; k++ {
			// to - u*dt lands in (from, to]: strictly after the barrier that
			// schedules the batch, at or before the next one.
			at := to - time.Duration(rng.Float64()*float64(dt))
			out = append(out, Arrival{Tenant: i, Client: rng.Uint64(), At: at})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].At != out[b].At {
			return out[a].At < out[b].At
		}
		if out[a].Tenant != out[b].Tenant {
			return out[a].Tenant < out[b].Tenant
		}
		return out[a].Client < out[b].Client
	})
	return out
}

// poisson draws a Poisson variate by inversion for small means and a
// normal approximation beyond — epoch x rate products stay small in
// practice, but a caller with second-long epochs must not overflow the
// inversion's e^-mean term.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		n := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	n, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return n
		}
		n++
	}
}
