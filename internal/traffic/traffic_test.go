package traffic

import (
	"math"
	"reflect"
	"testing"
	"time"
)

func testProfile() Profile {
	return Profile{
		Clients:       200_000,
		RPSPerClient:  0.002, // 400 rps base
		DiurnalPeriod: 60 * time.Second,
		DiurnalMin:    0.4,
		Spikes: []Spike{{
			Start: 20 * time.Second, Ramp: 2 * time.Second,
			Hold: 5 * time.Second, Decay: 3 * time.Second, Magnitude: 4,
		}},
		Tenants: SyntheticTenants(8, 42),
		Seed:    1,
	}
}

func TestSyntheticTenantsHeavyTailAndTiers(t *testing.T) {
	tenants := SyntheticTenants(10, 7)
	if len(tenants) != 10 {
		t.Fatalf("got %d tenants", len(tenants))
	}
	for i := 1; i < len(tenants); i++ {
		if tenants[i].Weight >= tenants[i-1].Weight {
			t.Fatalf("weights not strictly decreasing at %d: %v >= %v", i, tenants[i].Weight, tenants[i-1].Weight)
		}
	}
	// Head dominates: tenant 0 alone outweighs the bottom half.
	var tail float64
	for _, tn := range tenants[5:] {
		tail += tn.Weight
	}
	if tenants[0].Weight <= tail {
		t.Fatalf("head weight %v does not dominate tail %v", tenants[0].Weight, tail)
	}
	if tenants[0].Tier != TierGold {
		t.Fatalf("heaviest tenant tier = %v, want gold", tenants[0].Tier)
	}
	if tenants[len(tenants)-1].Tier != TierBronze {
		t.Fatalf("lightest tenant tier = %v, want bronze", tenants[len(tenants)-1].Tier)
	}
	if !(TierGold.SLO() < TierSilver.SLO() && TierSilver.SLO() < TierBronze.SLO()) {
		t.Fatal("tier SLOs not ordered gold < silver < bronze")
	}
	if !(TierGold.Priority() > TierSilver.Priority() && TierSilver.Priority() > TierBronze.Priority()) {
		t.Fatal("tier priorities not ordered gold > silver > bronze")
	}
}

func TestRateShape(t *testing.T) {
	p := testProfile()
	base := p.BaseRPS()
	if base != 400 {
		t.Fatalf("base rps = %v, want 400", base)
	}
	// The spike peak multiplies whatever the diurnal curve gives by 4.
	atPeak := p.Rate(24 * time.Second)
	noSpike := p
	noSpike.Spikes = nil
	if want := noSpike.Rate(24*time.Second) * 4; math.Abs(atPeak-want) > 1e-6 {
		t.Fatalf("spike-hold rate %v, want %v", atPeak, want)
	}
	// Diurnal trough (3/4 period) sits at DiurnalMin x base.
	trough := noSpike.Rate(45 * time.Second)
	if want := base * 0.4; math.Abs(trough-want) > 1e-6 {
		t.Fatalf("trough rate %v, want %v", trough, want)
	}
	// Before the spike starts the envelope is inert.
	if got := p.Rate(10 * time.Second); got != noSpike.Rate(10*time.Second) {
		t.Fatalf("pre-spike rate %v differs from diurnal %v", got, noSpike.Rate(10*time.Second))
	}
}

func TestBatchDeterministicReplay(t *testing.T) {
	g1, err := NewGenerator(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	epoch := 5 * time.Millisecond
	total := 0
	for at := time.Duration(0); at < 2*time.Second; at += epoch {
		b1 := g1.Batch(at, at+epoch)
		b2 := g2.Batch(at, at+epoch)
		if !reflect.DeepEqual(b1, b2) {
			t.Fatalf("window (%v, %v]: batches diverge", at, at+epoch)
		}
		for i, a := range b1 {
			if a.At <= at || a.At > at+epoch {
				t.Fatalf("arrival %d at %v outside window (%v, %v]", i, a.At, at, at+epoch)
			}
			if i > 0 && b1[i-1].At > a.At {
				t.Fatalf("arrivals not time-sorted at %d", i)
			}
			if a.Tenant < 0 || a.Tenant >= 8 {
				t.Fatalf("arrival tenant %d out of range", a.Tenant)
			}
		}
		total += len(b1)
	}
	// ~400 rps x 2s = ~800 arrivals; Poisson noise stays well inside 3x.
	if total < 400 || total > 1600 {
		t.Fatalf("2s of arrivals = %d, want ~800", total)
	}
}

func TestBatchRejectsOutOfOrderWindows(t *testing.T) {
	g, err := NewGenerator(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	g.Batch(0, 5*time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping Batch window did not panic")
		}
	}()
	g.Batch(0, 5*time.Millisecond)
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Profile{}); err == nil {
		t.Fatal("empty profile accepted")
	}
	p := testProfile()
	p.Tenants = nil
	if _, err := NewGenerator(p); err == nil {
		t.Fatal("tenantless profile accepted")
	}
	p = testProfile()
	p.Tenants[0].Weight = 0
	if _, err := NewGenerator(p); err == nil {
		t.Fatal("zero-weight tenant accepted")
	}
	p = testProfile()
	p.DiurnalMin = 1.5
	if _, err := NewGenerator(p); err == nil {
		t.Fatal("DiurnalMin > 1 accepted")
	}
}

func TestPoissonMean(t *testing.T) {
	g, err := NewGenerator(testProfile())
	if err != nil {
		t.Fatal(err)
	}
	rng := g.rngs[0]
	for _, mean := range []float64{0, 0.5, 4, 40, 2000} {
		n, draws := 0, 2000
		for i := 0; i < draws; i++ {
			n += poisson(rng, mean)
		}
		got := float64(n) / float64(draws)
		if math.Abs(got-mean) > 0.1*mean+0.2 {
			t.Fatalf("poisson(%v) sample mean %v", mean, got)
		}
	}
}
