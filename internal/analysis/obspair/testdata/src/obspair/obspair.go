// Package obspair is testdata: state transitions must emit their obs
// events, on all paths. The shapes mirror internal/core driving
// executor.Run and workload.Job without importing them.
package obspair

type Kind int

const (
	KindPreempt Kind = iota + 1
	KindResume
	KindCheckpoint
	KindRestore
	KindJobLost
)

type Event struct {
	Kind Kind
	Job  string
}

type Bus struct{}

func (b *Bus) Emit(e Event) {}

type Run struct{}

func (r *Run) Suspend(finish func()) {}
func (r *Run) Resume()               {}

type Job struct{}

func (j *Job) Crash(err error)           {}
func (j *Job) Restarted()                {}
func (j *Job) RollbackToCheckpoint() int { return 0 }

type sched struct {
	bus Bus
}

// emitPreempt is the helper shape the real core uses; its emission
// counts for callers through the call-graph closure.
func (s *sched) emitPreempt(job string) {
	s.bus.Emit(Event{Kind: KindPreempt, Job: job})
}

// preemptDirect emits on the only path before suspending: clean.
func (s *sched) preemptDirect(r *Run, job string) {
	s.bus.Emit(Event{Kind: KindPreempt, Job: job})
	r.Suspend(nil)
}

// preemptViaHelper emits through the helper: clean.
func (s *sched) preemptViaHelper(r *Run, job string) {
	s.emitPreempt(job)
	r.Suspend(nil)
}

// preemptOnePath emits only when urgent: the other path suspends
// silently.
func (s *sched) preemptOnePath(r *Run, job string, urgent bool) {
	if urgent {
		s.bus.Emit(Event{Kind: KindPreempt, Job: job})
	}
	r.Suspend(nil) // want `a path reaches Run\.Suspend without a prior KindPreempt emission`
}

// preemptSilent never emits at all.
func (s *sched) preemptSilent(r *Run) {
	r.Suspend(nil) // want `a path reaches Run\.Suspend without a prior KindPreempt emission`
}

// resumeLoud emits before resuming: clean.
func (s *sched) resumeLoud(r *Run) {
	s.bus.Emit(Event{Kind: KindResume})
	r.Resume()
}

// resumeSilent resumes without the event.
func (s *sched) resumeSilent(r *Run) {
	r.Resume() // want `a path reaches Run\.Resume without a prior KindResume emission`
}

// fail pairs the crash with its JobLost event (after the call is fine —
// the pairing is function-level): clean.
func (s *sched) fail(j *Job) {
	j.Crash(nil)
	s.bus.Emit(Event{Kind: KindJobLost, Job: "x"})
}

// failSilent crashes with no JobLost anywhere in the function.
func (s *sched) failSilent(j *Job) {
	j.Crash(nil) // want `call to Job\.Crash is not paired with a KindJobLost emission anywhere in failSilent`
}

// heal pairs rollback/restart with a Restore event: clean.
func (s *sched) heal(j *Job) {
	s.bus.Emit(Event{Kind: KindRestore, Job: "x"})
	j.Restarted()
}

// healSilent rolls back without the Restore event.
func (s *sched) healSilent(j *Job) int {
	return j.RollbackToCheckpoint() // want `call to Job\.RollbackToCheckpoint is not paired with a KindRestore emission anywhere in healSilent`
}

// snapshot emits the Checkpoint partner of the Restores above.
func (s *sched) snapshot() {
	s.bus.Emit(Event{Kind: KindCheckpoint})
}

// restartSelf is Job-internal plumbing: the pairing obligation sits with
// the scheduler, not inside the state object, so sibling calls are
// exempt.
func (j *Job) restartSelf() {
	j.Restarted()
}

// Gang kinds: whole-gang suspension must pair with whole-gang resume
// program-wide, and the per-replica Suspend calls inside a gang preempt
// still need the per-replica KindPreempt on every path.
const (
	KindGangPreempt Kind = iota + 100
	KindGangResume
)

// preemptGang mirrors the real core: the per-replica Preempt helper
// fires first, then the gang-wide marker, then each replica suspends.
func (s *sched) preemptGang(rs []*Run, job string) {
	s.emitPreempt(job)
	s.bus.Emit(Event{Kind: KindGangPreempt, Job: job})
	for _, r := range rs {
		r.Suspend(nil)
	}
}

// resumeGang re-holds the full set before any replica restarts.
func (s *sched) resumeGang(rs []*Run, job string) {
	s.bus.Emit(Event{Kind: KindGangResume, Job: job})
	s.bus.Emit(Event{Kind: KindResume, Job: job})
	for _, r := range rs {
		r.Resume()
	}
}

// preemptGangSilent suspends the gang with neither the per-replica nor
// the gang-wide event.
func (s *sched) preemptGangSilent(rs []*Run) {
	s.bus.Emit(Event{Kind: KindGangPreempt})
	for _, r := range rs {
		r.Suspend(nil) // want `a path reaches Run\.Suspend without a prior KindPreempt emission`
	}
}
