// Package obspairmissing is testdata: a package that emits one side of a
// paired kind in a program where nothing emits the partner.
package obspairmissing

type Kind int

const (
	KindPreempt Kind = iota + 1
	KindFaultInject
)

type Event struct{ Kind Kind }

type Bus struct{}

func (b *Bus) Emit(e Event) {}

// Inject delivers faults but the program has no JobLost, Restore, or
// Rebind emission: every fault outcome is invisible.
func Inject(b *Bus) {
	b.Emit(Event{Kind: KindFaultInject}) // want `package emits KindFaultInject but nothing in the program emits its partner \(KindJobLost or KindRestore or KindRebind\)`
}

// Preempt displaces jobs that can never be seen resuming.
func Preempt(b *Bus) {
	b.Emit(Event{Kind: KindPreempt}) // want `package emits KindPreempt but nothing in the program emits its partner \(KindResume\)`
}

const KindGangPreempt Kind = 100

// PreemptGang suspends whole gangs in a program where nothing ever
// emits the gang-wide resume.
func PreemptGang(b *Bus) {
	b.Emit(Event{Kind: KindGangPreempt}) // want `package emits KindGangPreempt but nothing in the program emits its partner \(KindGangResume\)`
}
