// Package obspair checks that state transitions and their observability
// events stay paired. The reproduction's traces are the ground truth for
// every experiment — sweep comparisons, preemption-latency CDFs, fault
// timelines — so a transition that happens without its event silently
// corrupts results, and an event kind whose partner never fires breaks
// every pairing-based analysis (Preempt↔Resume spans, Checkpoint↔Restore
// recovery accounting, FaultInject↔heal-or-JobLost outcomes). Three
// checks, all name-based so they read the same in the real tree and in
// isolated testdata:
//
//  1. Emit-before-transition, on all paths: a call to `Run.Suspend` must
//     be preceded by a KindPreempt emission on every path through the
//     calling function, and `Run.Resume` by KindResume. A must-analysis
//     over the CFG; emissions inside called helpers count (transitive
//     may-emit closure over the call graph).
//
//  2. Paired recovery events: a function that calls `Job.Crash` must
//     (possibly via helpers) emit KindJobLost; one that calls
//     `Job.RollbackToCheckpoint` or `Job.Restarted` must emit
//     KindRestore. These are function-level: the event may follow the
//     call.
//
//  3. Partner-kind existence: a package that emits one side of a paired
//     kind (Preempt/Resume, Checkpoint/Restore, FaultInject needing
//     JobLost, Restore, or Rebind) in a program where nothing emits the
//     partner indicates the pairing was never wired up.
//
// Methods calling sibling methods of their own type (workload-internal
// plumbing) are exempt: the pairing obligation sits with the scheduler
// that drives the transition, not inside the state object. Packages that
// emit no events at all (the no-instrumentation baselines) are exempt
// from checks 1–2.
package obspair

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"switchflow/internal/analysis"
)

// Analyzer is the obspair check.
var Analyzer = &analysis.Analyzer{
	Name:    "obspair",
	Doc:     "state transitions emit their obs events, and paired kinds pair on all paths",
	Collect: collect,
	Run:     run,
}

// emitFact is the set of kind names (without the Kind prefix) a function
// emits directly.
type emitFact map[string]bool

// transitions maps a transition method, identified by receiver type name
// and method name, to the kind that must be emitted before the call on
// every path.
var transitions = map[[2]string]string{
	{"Run", "Suspend"}: "Preempt",
	{"Run", "Resume"}:  "Resume",
}

// pairedCalls maps a recovery method to the kind the calling function
// must emit somewhere (before or after the call).
var pairedCalls = map[[2]string]string{
	{"Job", "Crash"}:                "JobLost",
	{"Job", "RollbackToCheckpoint"}: "Restore",
	{"Job", "Restarted"}:            "Restore",
}

// partners lists, for each kind, the kinds any of which completes the
// pair program-wide.
var partners = map[string][]string{
	"Preempt":     {"Resume"},
	"Resume":      {"Preempt"},
	"Checkpoint":  {"Restore"},
	"Restore":     {"Checkpoint"},
	"FaultInject": {"JobLost", "Restore", "Rebind"},
	"GangPreempt": {"GangResume"},
	"GangResume":  {"GangPreempt"},
}

func collect(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			emits := emitFact{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if k, ok := emittedKind(n); ok {
					emits[k] = true
				}
				return true
			})
			if len(emits) > 0 {
				pass.ExportFact(fn, emits)
			}
		}
	}
	return nil
}

// emittedKind recognizes an event emission: a composite literal with a
// `Kind: KindX` (or `Kind: obs.KindX`) element, returning "X".
func emittedKind(n ast.Node) (string, bool) {
	kv, ok := n.(*ast.KeyValueExpr)
	if !ok {
		return "", false
	}
	key, ok := kv.Key.(*ast.Ident)
	if !ok || key.Name != "Kind" {
		return "", false
	}
	name := ""
	switch v := kv.Value.(type) {
	case *ast.Ident:
		name = v.Name
	case *ast.SelectorExpr:
		name = v.Sel.Name
	}
	if !strings.HasPrefix(name, "Kind") || len(name) == len("Kind") {
		return "", false
	}
	return name[len("Kind"):], true
}

func run(pass *analysis.Pass) error {
	closure := emitClosures(pass)
	pkgEmits := map[string]bool{}
	var firstEmit map[string]ast.Node
	progEmits := map[string]bool{}
	for _, fn := range pass.Prog.Funcs() {
		if fact, ok := pass.ImportFact(fn); ok {
			for _, k := range sortedKeys(fact.(emitFact)) {
				progEmits[k] = true
			}
		}
	}
	firstEmit = map[string]ast.Node{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if k, ok := emittedKind(n); ok {
				pkgEmits[k] = true
				if firstEmit[k] == nil {
					firstEmit[k] = n
				}
			}
			return true
		})
	}
	// Partner-existence check runs even for single-emission packages;
	// the flow checks only where the package participates in tracing.
	for _, k := range sortedKeys(pkgEmits) {
		want, ok := partners[k]
		if !ok {
			continue
		}
		found := false
		for _, w := range want {
			if progEmits[w] {
				found = true
			}
		}
		if !found {
			pass.Reportf(firstEmit[k].Pos(), "package emits Kind%s but nothing in the program emits its partner (%s)", k, strings.Join(prefixKind(want), " or "))
		}
	}
	if len(pkgEmits) == 0 {
		return nil // uninstrumented package (baselines): no pairing duties
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, closure, fd)
		}
	}
	return nil
}

func prefixKind(ks []string) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = "Kind" + k
	}
	return out
}

// emitClosures computes every function's transitive may-emit set: its
// direct emissions plus those of everything it can call. Iterated to a
// fixpoint in deterministic function order (the graph has cycles).
func emitClosures(pass *analysis.Pass) map[*types.Func]emitFact {
	prog := pass.Prog
	out := map[*types.Func]emitFact{}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs() {
			set := out[fn]
			if set == nil {
				set = emitFact{}
				out[fn] = set
			}
			grow := func(src emitFact) {
				for _, k := range sortedKeys(src) {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
			if fact, ok := pass.ImportFact(fn); ok {
				grow(fact.(emitFact))
			}
			for _, callee := range prog.Callees(fn) {
				grow(out[callee])
			}
		}
	}
	return out
}

// mustState is the set of kinds emitted on every path so far.
type mustState map[string]bool

// sortedKeys returns the set's keys in sorted order so every iteration
// below is deterministic (the suite dogfoods its own maporder rule).
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func cloneSet(s mustState) mustState {
	out := mustState{}
	for _, k := range sortedKeys(s) {
		out[k] = true
	}
	return out
}

func intersect(a, b mustState) mustState {
	out := mustState{}
	for _, k := range sortedKeys(a) {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func equalSet(a, b mustState) bool {
	if len(a) != len(b) {
		return false
	}
	for _, k := range sortedKeys(a) {
		if !b[k] {
			return false
		}
	}
	return true
}

func checkFunc(pass *analysis.Pass, closure map[*types.Func]emitFact, fd *ast.FuncDecl) {
	recv := receiverTypeName(fd)
	// Transition calls and their required kinds, found shallowly per
	// statement during the walk below.
	type callSite struct {
		call *ast.CallExpr
		kind string
		name string
	}
	// stmtEffect gathers what one statement contributes: kinds emitted
	// directly or via callees, and the transition calls to check.
	stmtEffect := func(n ast.Node) (emits mustState, sites []callSite) {
		emits = mustState{}
		analysis.InspectShallow(n, func(c ast.Node) bool {
			if k, ok := emittedKind(c); ok {
				emits[k] = true
			}
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.CalleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			for _, k := range sortedKeys(closure[callee]) {
				emits[k] = true
			}
			ct := calleeRecvType(callee)
			if ct == recv {
				return true // sibling-method plumbing is the type's own business
			}
			if kind, ok := transitions[[2]string{ct, callee.Name()}]; ok {
				sites = append(sites, callSite{call: call, kind: kind, name: ct + "." + callee.Name()})
			}
			return true
		})
		return emits, sites
	}
	// Function-level pairing: recovery calls need their event somewhere
	// in the function's may-emit closure (before or after the call,
	// literals included — they fold into this declaration).
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	ast.Inspect(fd.Body, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		ct := calleeRecvType(callee)
		if ct == recv {
			return true
		}
		if kind, ok := pairedCalls[[2]string{ct, callee.Name()}]; ok {
			if fn == nil || !closure[fn][kind] {
				pass.Reportf(call.Pos(), "call to %s.%s is not paired with a Kind%s emission anywhere in %s", ct, callee.Name(), kind, fd.Name.Name)
			}
		}
		return true
	})
	cfg := analysis.NewCFG(fd.Body)
	step := func(n ast.Node, st mustState, report bool) mustState {
		emits, sites := stmtEffect(n)
		if report {
			for _, s := range sites {
				if !st[s.kind] && !emits[s.kind] {
					pass.Reportf(s.call.Pos(), "a path reaches %s without a prior Kind%s emission", s.name, s.kind)
				}
			}
		}
		if len(emits) == 0 {
			return st
		}
		st = cloneSet(st)
		for _, k := range sortedKeys(emits) {
			st[k] = true
		}
		return st
	}
	transfer := func(b *analysis.Block, in mustState) mustState {
		st := in
		for _, n := range b.Nodes {
			st = step(n, st, false)
		}
		return st
	}
	in := analysis.Forward(cfg, mustState{}, intersect, equalSet, transfer)
	for _, b := range cfg.Blocks {
		st, reachable := in[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			st = step(n, st, true)
		}
	}
}

func receiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		default:
			return ""
		}
	}
}

func calleeRecvType(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}
