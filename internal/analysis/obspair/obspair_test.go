package obspair_test

import (
	"testing"

	"switchflow/internal/analysis/analysistest"
	"switchflow/internal/analysis/obspair"
)

func TestObspair(t *testing.T) {
	analysistest.Run(t, obspair.Analyzer, "obspair")
}

func TestObspairMissingPartner(t *testing.T) {
	analysistest.Run(t, obspair.Analyzer, "obspairmissing")
}
