// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (rebuilt here because the
// build environment has no module proxy).
//
// Test packages live under testdata/src/<name>/ next to the analyzer. A
// line expecting a diagnostic carries a trailing comment of the form
//
//	x = append(x, k) // want `appends to x`
//
// with one or more backquoted or double-quoted regular expressions, each
// of which must match the message of a distinct diagnostic reported on
// that line. Diagnostics without a matching want, and wants without a
// matching diagnostic, fail the test. //swlint:allow directives are
// honored before matching, so suppressed cases are written with a
// directive and no want.
package analysistest

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"switchflow/internal/analysis"
	"switchflow/internal/analysis/load"
)

// wantRx extracts the quoted regexes of a want comment.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	rx       *regexp.Regexp
	line     int
	consumed bool
}

// Run loads testdata/src/<pkg> and checks the analyzer's findings against
// the package's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", pkg))
	if err != nil {
		t.Fatal(err)
	}
	l := load.New("", "")
	p, err := l.LoadDir(dir, pkg)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	prog := analysis.NewProgram(l.Fset(), []*analysis.PackageUnit{{
		Path: p.Path, Files: p.Files, Pkg: p.Types, Info: p.Info,
	}})
	// reportUnused is on: a testdata suppression that stops matching is a
	// bug in the test, and it lets testdata assert the unused-suppression
	// findings themselves (analyzer "directive").
	findings, err := analysis.RunProgram(prog, []*analysis.Analyzer{a}, []string{a.Name}, true)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, l, p.Files)
	for _, f := range findings {
		key := f.Position.Filename + ":" + strconv.Itoa(f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.consumed && w.rx.MatchString(f.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", f.Position, f.Analyzer, f.Message)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, w := range wants[key] {
			if !w.consumed {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.rx)
			}
		}
	}
}

// collectWants parses the want comments of every file.
func collectWants(t *testing.T, l *load.Loader, files []*ast.File) map[string][]*expectation {
	t.Helper()
	wants := make(map[string][]*expectation)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := l.Fset().Position(c.Pos())
				quoted := wantRx.FindAllString(text, -1)
				if len(quoted) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, q := range quoted {
					var pattern string
					if strings.HasPrefix(q, "`") {
						pattern = strings.Trim(q, "`")
					} else {
						var err error
						pattern, err = strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					key := pos.Filename + ":" + strconv.Itoa(pos.Line)
					wants[key] = append(wants[key], &expectation{rx: rx, line: pos.Line})
				}
			}
		}
	}
	return wants
}
