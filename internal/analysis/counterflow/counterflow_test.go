package counterflow_test

import (
	"testing"

	"switchflow/internal/analysis/analysistest"
	"switchflow/internal/analysis/counterflow"
)

func TestCounterflow(t *testing.T) {
	analysistest.Run(t, counterflow.Analyzer, "counterflow")
}
