// Package counterflow is testdata: conservation-counter flow hazards.
// The types mirror internal/cluster's shapes (perGPU load counters on
// nodes, a placement handle) without importing it, since testdata
// packages load in isolation.
package counterflow

import "errors"

type gpuLoad struct {
	jobs     int
	training int
}

type placement struct {
	Node string
	GPU  int
}

type jobCfg struct{ Kind int }

const kindTraining = 1

type jobHandle struct {
	Placed  bool
	stopped bool
	Where   placement
	Cfg     jobCfg
	Job     string
}

type manager struct{}

func (manager) StopJob(string) {}

type node struct {
	Name   string
	perGPU []gpuLoad
	mgr    manager
}

type cluster struct {
	nodes []*node
}

// tryPlace pairs the counters: increments balanced by Stop's decrements.
func (c *cluster) tryPlace(h *jobHandle, n *node, gpu int) {
	n.perGPU[gpu].jobs++
	if h.Cfg.Kind == kindTraining {
		n.perGPU[gpu].training++
	}
	h.Placed = true
	h.Where = placement{Node: n.Name, GPU: gpu}
}

// StopPrePR8 is the pre-PR-8 Cluster.Stop body, verbatim in shape: no
// stopped guard, no break, no placed removal. The loop back edge lets a
// second iteration (or a second call) decrement the same counters again.
func (c *cluster) StopPrePR8(h *jobHandle) {
	if !h.Placed {
		return
	}
	for _, n := range c.nodes {
		if n.Name == h.Where.Node {
			n.mgr.StopJob(h.Job)
			n.perGPU[h.Where.GPU].jobs-- // want `decrement n\.perGPU\[h\.Where\.GPU\]\.jobs twice`
			if h.Cfg.Kind == kindTraining {
				n.perGPU[h.Where.GPU].training-- // want `decrement n\.perGPU\[h\.Where\.GPU\]\.training twice`
			}
		}
	}
}

// StopFixed is the post-PR-8 shape: idempotence guard plus break, so no
// path reaches the decrement twice.
func (c *cluster) StopFixed(h *jobHandle) {
	if !h.Placed || h.stopped {
		return
	}
	h.stopped = true
	for _, n := range c.nodes {
		if n.Name == h.Where.Node {
			n.mgr.StopJob(h.Job)
			n.perGPU[h.Where.GPU].jobs--
			if h.Cfg.Kind == kindTraining {
				n.perGPU[h.Where.GPU].training--
			}
			break
		}
	}
	h.Placed = false
}

// Release decrements with no guard at all: any caller invoking it twice
// drives the counter negative. Exported, so the unguarded check fires.
func (n *node) Release(gpu int) {
	n.perGPU[gpu].jobs-- // want `exported Release decrements n\.perGPU\[gpu\]\.jobs unconditionally`
}

// release is the same body unexported: internal helpers may rely on
// caller discipline, so only the exported surface is checked.
func (n *node) release(gpu int) {
	n.perGPU[gpu].jobs--
}

// Retire guards the decrement behind a branch, so a repeated call on an
// already-retired handle is a no-op.
func (n *node) Retire(h *jobHandle, gpu int) {
	if h.stopped {
		return
	}
	h.stopped = true
	n.perGPU[gpu].jobs--
}

// sequentialDouble decrements twice on one straight-line path.
func (n *node) sequentialDouble(gpu int) {
	n.perGPU[gpu].jobs--
	n.perGPU[gpu].jobs-- // want `decrement n\.perGPU\[gpu\]\.jobs twice`
}

// balancedPair re-increments between the decrements, so the count is
// conserved on every path.
func (n *node) balancedPair(gpu int) {
	n.perGPU[gpu].jobs--
	n.perGPU[gpu].jobs++
	n.perGPU[gpu].jobs--
}

// place increments and then fails: the error return leaks the increment.
func (n *node) place(gpu int, ok bool) error {
	n.perGPU[gpu].jobs++
	if !ok {
		return errors.New("no capacity") // want `error return leaks increment of n\.perGPU\[gpu\]\.jobs`
	}
	return nil
}

// placeRollback undoes the increment before failing: clean.
func (n *node) placeRollback(gpu int, ok bool) error {
	n.perGPU[gpu].jobs++
	if !ok {
		n.perGPU[gpu].jobs--
		return errors.New("no capacity")
	}
	return nil
}

// onlyUp is a one-directional tally, not a conservation counter: no
// decrement anywhere in the package, so nothing fires.
type metrics struct{ served int }

func (m *metrics) Serve() {
	m.served++
	m.served++
}

// bulk arithmetic is accounting, not unit-step conservation: -= with a
// non-unit step never pairs, so free-list style code stays clean.
type mem struct{ free int }

func (m *mem) Alloc(nb int) { m.free -= nb }
func (m *mem) Free(nb int)  { m.free += nb }

// Drain decrements inside a loop but breaks right after, mirroring the
// fixed Stop: no path reaches the decrement twice.
func (c *cluster) Drain(name string, gpu int) {
	for _, n := range c.nodes {
		if n.Name == name {
			n.perGPU[gpu].jobs--
			break
		}
	}
}
