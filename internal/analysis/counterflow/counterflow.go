// Package counterflow checks conservation counters — integer variables
// or fields that the package both increments and decrements in unit
// steps, like `perGPU[g].jobs`, shard occupancy, or offered/routed
// tallies. Such counters encode a resource invariant (every increment is
// balanced by exactly one decrement), and the PR 8 `Cluster.Stop` bug
// showed how it breaks: a repeated or looped decrement silently drives
// the count negative and every later placement decision is wrong. Three
// flow-aware checks over the per-function CFG:
//
//  1. Double decrement: a path (including loop back edges) that
//     decrements the same counter expression twice with no intervening
//     increment. The pre-PR-8 Stop body — decrementing inside a `range`
//     loop with no break — is the canonical catch.
//
//  2. Unguarded decrement: an exported function that decrements a
//     counter unconditionally on entry (no branch between the function's
//     start and the decrement). Exported mutators can be called twice;
//     without an idempotence guard the second call double-decrements.
//
//  3. Leaked increment: a path that increments a counter and then
//     returns a non-nil error. The caller sees failure and will not undo
//     the increment, so the resource leaks.
package counterflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"switchflow/internal/analysis"
)

// Analyzer is the counterflow check.
var Analyzer = &analysis.Analyzer{
	Name: "counterflow",
	Doc:  "conservation-counter flow: no double decrements, no unguarded exported decrements, no increments leaked on error returns",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	counters := pairedCounters(pass)
	if len(counters) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		analysis.ForEachFuncBody(f, func(decl *ast.FuncDecl, body *ast.BlockStmt) {
			checkBody(pass, counters, decl, body)
		})
	}
	return nil
}

// pairedCounters finds the conservation counters of the package: integer
// variables (locals or fields) with at least one unit-step increment AND
// one unit-step decrement somewhere in the package. One-directional
// tallies (metrics that only go up) and bulk arithmetic (`-= n` memory
// accounting) are not counters.
func pairedCounters(pass *analysis.Pass) map[*types.Var]bool {
	inc := map[*types.Var]bool{}
	dec := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lhs, isDec, unit := counterStep(pass.TypesInfo, n); lhs != nil && unit {
				if v := targetVar(pass.TypesInfo, lhs); v != nil && isInteger(v) {
					if isDec {
						dec[v] = true
					} else {
						inc[v] = true
					}
				}
			}
			return true
		})
	}
	paired := map[*types.Var]bool{}
	for v := range inc {
		if dec[v] {
			paired[v] = true
		}
	}
	return paired
}

// counterStep recognizes an increment/decrement statement: x++/x--, or
// x += c / x -= c. It returns the mutated expression, the direction, and
// whether the step is the unit constant 1.
func counterStep(info *types.Info, n ast.Node) (lhs ast.Expr, isDec, unit bool) {
	switch s := n.(type) {
	case *ast.IncDecStmt:
		return s.X, s.Tok == token.DEC, true
	case *ast.AssignStmt:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return nil, false, false
		}
		switch s.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			unit := false
			if tv, ok := info.Types[s.Rhs[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if v, exact := constant.Int64Val(tv.Value); exact && v == 1 {
					unit = true
				}
			}
			return s.Lhs[0], s.Tok == token.SUB_ASSIGN, unit
		}
	}
	return nil, false, false
}

// targetVar resolves the variable or struct field a counter expression
// ultimately names: `count` → count, `n.perGPU[g].jobs` → the jobs field.
func targetVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := e.(type) {
	case *ast.ParenExpr:
		return targetVar(info, x.X)
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
		v, _ := info.Defs[x].(*types.Var)
		return v
	}
	return nil
}

func isInteger(v *types.Var) bool {
	b, ok := v.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// flowState is the per-path fact set: counter expressions (by syntactic
// key) decremented on some path since the last increment, and counter
// expressions incremented on some path since the last decrement. Both
// are may-sets (union join) — a violation on any path is a finding.
type flowState struct {
	deced map[string]bool
	inced map[string]bool
}

// sortedKeys returns the map's keys in sorted order, so every iteration
// below is deterministic (the suite dogfoods its own maporder rule).
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (s flowState) clone() flowState {
	out := flowState{deced: map[string]bool{}, inced: map[string]bool{}}
	for _, k := range sortedKeys(s.deced) {
		out.deced[k] = true
	}
	for _, k := range sortedKeys(s.inced) {
		out.inced[k] = true
	}
	return out
}

func joinState(a, b flowState) flowState {
	out := a.clone()
	for _, k := range sortedKeys(b.deced) {
		out.deced[k] = true
	}
	for _, k := range sortedKeys(b.inced) {
		out.inced[k] = true
	}
	return out
}

func equalState(a, b flowState) bool {
	return equalSet(a.deced, b.deced) && equalSet(a.inced, b.inced)
}

func equalSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for _, k := range sortedKeys(a) {
		if !b[k] {
			return false
		}
	}
	return true
}

func checkBody(pass *analysis.Pass, counters map[*types.Var]bool, decl *ast.FuncDecl, body *ast.BlockStmt) {
	cfg := analysis.NewCFG(body)
	// step applies one block node to the state; report is nil during the
	// fixpoint and non-nil during the single post-fixpoint reporting walk,
	// so each violation is reported exactly once with converged IN states.
	step := func(n ast.Node, st flowState, report bool) flowState {
		if lhs, isDec, unit := counterStep(pass.TypesInfo, n); lhs != nil {
			v := targetVar(pass.TypesInfo, lhs)
			if v == nil || !counters[v] {
				return st
			}
			key := types.ExprString(lhs)
			st = st.clone()
			if isDec {
				if unit && st.deced[key] && report {
					pass.Reportf(n.Pos(), "a path can decrement %s twice with no intervening increment (conservation counter goes negative)", key)
				}
				if unit {
					st.deced[key] = true
				}
				delete(st.inced, key)
			} else {
				st.inced[key] = true
				delete(st.deced, key)
			}
			return st
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && report {
			checkErrorReturn(pass, ret, st)
		}
		return st
	}
	transfer := func(b *analysis.Block, in flowState) flowState {
		st := in
		for _, n := range b.Nodes {
			st = step(n, st, false)
		}
		return st
	}
	entry := flowState{deced: map[string]bool{}, inced: map[string]bool{}}
	in := analysis.Forward(cfg, entry, joinState, equalState, transfer)
	for _, b := range cfg.Blocks {
		st, reachable := in[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			st = step(n, st, true)
		}
	}
	checkUnguarded(pass, counters, decl, cfg)
}

// checkErrorReturn reports counters incremented on a path that ends in a
// non-nil error return: the caller sees failure and never balances the
// increment.
func checkErrorReturn(pass *analysis.Pass, ret *ast.ReturnStmt, st flowState) {
	if len(ret.Results) == 0 || len(st.inced) == 0 {
		return
	}
	last := ret.Results[len(ret.Results)-1]
	tv, ok := pass.TypesInfo.Types[last]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return
	}
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return
	}
	for _, k := range sortedKeys(st.inced) {
		pass.Reportf(ret.Pos(), "error return leaks increment of %s (no decrement on this path); roll the counter back before returning", k)
	}
}

// checkUnguarded reports a unit-step decrement of a paired counter on the
// unconditional entry spine of an exported function: every call executes
// it, so a repeated call double-decrements. An idempotence guard (any
// branch before the decrement) clears the path.
func checkUnguarded(pass *analysis.Pass, counters map[*types.Var]bool, decl *ast.FuncDecl, cfg *analysis.CFG) {
	if decl == nil || !decl.Name.IsExported() {
		return
	}
	b := cfg.Entry
	visited := map[*analysis.Block]bool{}
	for !visited[b] {
		visited[b] = true
		for _, n := range b.Nodes {
			lhs, isDec, unit := counterStep(pass.TypesInfo, n)
			if lhs == nil || !isDec || !unit {
				continue
			}
			if v := targetVar(pass.TypesInfo, lhs); v != nil && counters[v] {
				pass.Reportf(n.Pos(), "exported %s decrements %s unconditionally; add an idempotence guard so a repeated call cannot double-decrement", decl.Name.Name, types.ExprString(lhs))
			}
		}
		if len(b.Succs) != 1 || b.Succs[0] == cfg.Exit {
			return
		}
		b = b.Succs[0]
	}
}
