package analysis

import (
	"go/ast"
	"go/types"
)

// PkgCall reports whether call invokes a package-level function of the
// package with the given import path (e.g. time.Now, rand.Intn), and
// returns the function name. Method calls and calls through variables do
// not match.
func PkgCall(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// IsConversion reports whether call is a type conversion rather than a
// function call.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// CalleeFunc returns the declared function or method a call statically
// resolves to, or nil for dynamic calls (function values), conversions,
// and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// NamedTypePath renders the full path of a (possibly pointer-wrapped)
// named type, e.g. "sync.Mutex" or "net/http.ResponseWriter"; ok is false
// for unnamed types.
func NamedTypePath(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name(), true
	}
	return obj.Pkg().Path() + "." + obj.Name(), true
}
