package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces a swlint source directive. Like go:build and
// nolint directives, it is a //-comment with no space after the slashes.
const directivePrefix = "//swlint:"

// allowDirective records one parsed //swlint:allow comment.
type allowDirective struct {
	analyzer string
	reason   string
	// lines are the source lines the directive suppresses: its own line,
	// and the following line when the comment stands alone.
	lines [2]int
	file  string
	pos   token.Position
	// used flips when the directive suppresses at least one finding; a
	// directive that never fires is stale and is itself reported.
	used bool
}

// Directives indexes the allow directives of one package.
type Directives struct {
	allows []allowDirective
}

// CollectDirectives parses every //swlint: comment in the files. Malformed
// directives (wrong verb, missing analyzer, unknown analyzer, missing
// reason) are returned as findings — a suppression that silently does
// nothing is worse than none at all. known lists the analyzer names valid
// in directives.
func CollectDirectives(fset *token.FileSet, files []*ast.File, known []string) (*Directives, []Finding) {
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}
	d := &Directives{}
	var bad []Finding
	report := func(pos token.Pos, msg string) {
		bad = append(bad, Finding{Position: fset.Position(pos), Analyzer: "directive", Message: msg})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				verb, args, _ := strings.Cut(rest, " ")
				if verb != "allow" {
					report(c.Pos(), "unknown swlint directive //swlint:"+verb+" (only //swlint:allow <analyzer> <reason> is recognized)")
					continue
				}
				analyzer, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
				reason = strings.TrimSpace(reason)
				if analyzer == "" {
					report(c.Pos(), "swlint:allow directive is missing an analyzer name")
					continue
				}
				if !knownSet[analyzer] {
					report(c.Pos(), "swlint:allow names unknown analyzer "+analyzer)
					continue
				}
				if reason == "" {
					report(c.Pos(), "swlint:allow "+analyzer+" is missing a reason; exceptions must say why")
					continue
				}
				line := fset.Position(c.Pos()).Line
				d.allows = append(d.allows, allowDirective{
					analyzer: analyzer,
					reason:   reason,
					lines:    [2]int{line, line + 1},
					file:     fset.Position(c.Pos()).Filename,
					pos:      fset.Position(c.Pos()),
				})
			}
		}
	}
	return d, bad
}

// Suppressed reports whether a finding by the named analyzer at pos is
// covered by an allow directive, marking every covering directive used.
func (d *Directives) Suppressed(analyzer string, pos token.Position) bool {
	hit := false
	for i := range d.allows {
		a := &d.allows[i]
		if a.analyzer != analyzer || a.file != pos.Filename {
			continue
		}
		if pos.Line == a.lines[0] || pos.Line == a.lines[1] {
			a.used = true
			hit = true
		}
	}
	return hit
}

// Unused returns one finding per allow directive that suppressed nothing,
// so stale suppressions cannot silently accumulate. Only meaningful after
// the full suite has run (a subset run legitimately leaves other
// analyzers' directives idle).
func (d *Directives) Unused() []Finding {
	var out []Finding
	for _, a := range d.allows {
		if a.used {
			continue
		}
		out = append(out, Finding{
			Position: a.pos,
			Analyzer: "directive",
			Message:  "unused suppression: //swlint:allow " + a.analyzer + " no longer matches any finding; delete it",
		})
	}
	return out
}
