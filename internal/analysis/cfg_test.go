package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// buildCFG parses a single function body and returns its CFG.
func buildCFG(t *testing.T, body string) (*token.FileSet, *CFG) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return fset, NewCFG(fd.Body)
}

// reachable returns the set of blocks reachable from the entry.
func reachable(c *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	work := []*Block{c.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[b] {
			continue
		}
		seen[b] = true
		work = append(work, b.Succs...)
	}
	return seen
}

// nodeLines renders each reachable block as the sorted source lines of its
// nodes, for structural assertions that survive block renumbering.
func nodeLines(fset *token.FileSet, c *CFG) map[*Block][]int {
	out := map[*Block][]int{}
	for b := range reachable(c) {
		var lines []int
		for _, n := range b.Nodes {
			lines = append(lines, fset.Position(n.Pos()).Line)
		}
		sort.Ints(lines)
		out[b] = lines
	}
	return out
}

func TestCFGStraightLine(t *testing.T) {
	_, c := buildCFG(t, "x := 1\nx++\n_ = x")
	if len(c.Entry.Nodes) != 3 {
		t.Fatalf("entry nodes = %d, want 3", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("straight-line entry should flow to exit, got succs %v", c.Entry.Succs)
	}
}

func TestCFGIfElse(t *testing.T) {
	_, c := buildCFG(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	// Entry (x:=1, cond) branches to then and else; both rejoin.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("if entry should have 2 successors, got %d", len(c.Entry.Succs))
	}
	j0, j1 := c.Entry.Succs[0].Succs, c.Entry.Succs[1].Succs
	if len(j0) != 1 || len(j1) != 1 || j0[0] != j1[0] {
		t.Fatalf("then/else must rejoin at one block: %v vs %v", j0, j1)
	}
}

func TestCFGIfNoElseHasFallEdge(t *testing.T) {
	_, c := buildCFG(t, "x := 1\nif x > 0 {\n x = 2\n}\n_ = x")
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("if-without-else entry should branch to body and join, got %d succs", len(c.Entry.Succs))
	}
}

func TestCFGForLoopBackEdge(t *testing.T) {
	fset, c := buildCFG(t, "for i := 0; i < 3; i++ {\n _ = i\n}")
	lines := nodeLines(fset, c)
	// The body block (line 4) must reach, via the post block, a block that
	// loops back to the condition head (line 3) — i.e. the head has an
	// in-edge from inside the loop.
	var head *Block
	for b, ls := range lines {
		for _, l := range ls {
			if l == 3 && b != c.Entry {
				head = b
			}
		}
	}
	// The head may be the entry block when init folds in; find any block
	// whose successor set contains a block containing line 3's condition.
	backEdge := false
	for b := range lines {
		if b == c.Entry {
			continue
		}
		for _, s := range b.Succs {
			if s == head || (head == nil && containsLine(fset, s, 3)) {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Fatal("for loop must have a back edge to its condition head")
	}
}

func containsLine(fset *token.FileSet, b *Block, line int) bool {
	for _, n := range b.Nodes {
		if fset.Position(n.Pos()).Line == line {
			return true
		}
	}
	return false
}

func TestCFGRangeMayBeEmpty(t *testing.T) {
	_, c := buildCFG(t, "xs := []int{1}\nfor _, x := range xs {\n _ = x\n}\n_ = xs")
	// Some path from entry must bypass the body: the range head has ≥2
	// successors (body and after).
	found := false
	for b := range reachable(c) {
		if len(b.Succs) >= 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("range head must branch (loop may be empty)")
	}
}

func TestCFGReturnTerminatesPath(t *testing.T) {
	fset, c := buildCFG(t, "x := 1\nif x > 0 {\n return\n}\nx = 2\n_ = x")
	// The then-block containing return must flow only to exit; line 7
	// (x = 2) must not be reachable from it.
	for b := range reachable(c) {
		if containsLine(fset, b, 5) { // the return
			for _, s := range b.Succs {
				if s != c.Exit {
					t.Fatalf("return block has non-exit successor with nodes %v", s.Nodes)
				}
			}
		}
	}
}

func TestCFGBreakSkipsRestOfLoop(t *testing.T) {
	fset, c := buildCFG(t, "for i := 0; i < 3; i++ {\n if i == 1 {\n  break\n }\n _ = i\n}")
	// The break block must not have the loop's post/head among its
	// successors — only the after block.
	for b := range reachable(c) {
		if containsLine(fset, b, 5) { // break
			for _, s := range b.Succs {
				if containsLine(fset, s, 3) {
					t.Fatal("break must not loop back to the condition")
				}
			}
		}
	}
}

func TestCFGSwitchNoDefaultFallsThrough(t *testing.T) {
	_, c := buildCFG(t, "x := 1\nswitch x {\ncase 1:\n x = 2\n}\n_ = x")
	// The switch head must reach the after block directly (no default).
	// Head is entry here; one successor is the case, another skips it.
	if len(c.Entry.Succs) < 2 {
		t.Fatalf("switch without default needs a skip edge, got %d succs", len(c.Entry.Succs))
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	fset, c := buildCFG(t, "x := 1\nif x > 0 {\n panic(\"no\")\n}\nx = 2\n_ = x")
	for b := range reachable(c) {
		if containsLine(fset, b, 5) { // panic
			for _, s := range b.Succs {
				if s != c.Exit {
					t.Fatal("panic block must flow only to exit")
				}
			}
		}
	}
}

func TestCFGGotoResolves(t *testing.T) {
	fset, c := buildCFG(t, "x := 1\ngoto L\nL:\nx = 2\n_ = x")
	// The goto block must have an edge to the block holding line 6 (x = 2).
	ok := false
	for b := range reachable(c) {
		if containsLine(fset, b, 4) { // goto L
			for _, s := range b.Succs {
				if containsLine(fset, s, 6) || anySuccContains(fset, s, 6, 3) {
					ok = true
				}
			}
		}
	}
	if !ok {
		t.Fatal("goto must reach its label target")
	}
}

func anySuccContains(fset *token.FileSet, b *Block, line, depth int) bool {
	if depth == 0 {
		return false
	}
	for _, s := range b.Succs {
		if containsLine(fset, s, line) || anySuccContains(fset, s, line, depth-1) {
			return true
		}
	}
	return false
}

func TestCFGEveryNodeAppearsOnce(t *testing.T) {
	_, c := buildCFG(t, strings.TrimSpace(`
x := 0
for i := 0; i < 4; i++ {
	switch {
	case i == 0:
		x++
	default:
		x--
	}
}
_ = x`))
	seen := map[ast.Node]int{}
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			seen[n]++
		}
	}
	for n, count := range seen {
		if count != 1 {
			t.Fatalf("node %T appears %d times across blocks; want exactly once", n, count)
		}
	}
}

func TestForwardReachingDec(t *testing.T) {
	// A tiny may-analysis: does any path reach the end having executed a
	// `--` twice without an intervening `++`? Mirrors counterflow's core.
	fset, c := buildCFG(t, strings.TrimSpace(`
n := 10
for i := 0; i < 3; i++ {
	n--
}
_ = n`))
	type state = map[string]bool
	join := func(a, b state) state {
		out := state{}
		for k := range a {
			out[k] = true
		}
		for k := range b {
			out[k] = true
		}
		return out
	}
	equal := func(a, b state) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	var doubleDec bool
	transfer := func(b *Block, in state) state {
		out := join(in, state{})
		for _, n := range b.Nodes {
			id, ok := n.(*ast.IncDecStmt)
			if !ok {
				continue
			}
			name := id.X.(*ast.Ident).Name
			if id.Tok == token.DEC {
				if out[name] {
					doubleDec = true
				}
				out[name] = true
			} else {
				delete(out, name)
			}
		}
		return out
	}
	Forward(c, state{}, join, equal, transfer)
	_ = fset
	if !doubleDec {
		t.Fatal("loop back edge must expose the second decrement to the fixpoint")
	}
}
