package analysis

// This file builds per-function control-flow graphs — the substrate for
// the flow-aware analyzers (counterflow, obspair). The CFG is
// deliberately small: basic blocks hold the statements and controlling
// expressions in execution order, edges follow Go's structured control
// flow (if/for/range/switch/select, break/continue/goto with labels,
// return, panic). Function literals are NOT inlined: a literal is an
// opaque value in its enclosing block, and analyzers that care build a
// separate CFG for its body via ForEachFuncBody.

import (
	"go/ast"
)

// Block is one basic block: Nodes execute in order, then control moves to
// one of Succs (none for the exit block or terminating blocks).
type Block struct {
	// Index is the block's position in CFG.Blocks (entry is 0, exit 1).
	Index int
	// Nodes are the statements and controlling expressions of the block,
	// in execution order. Control statements contribute only their
	// decision expression (an If contributes Cond, a Switch its Tag, a
	// Range its operand); their nested bodies live in successor blocks,
	// so walking every block's Nodes visits each source node exactly once.
	Nodes []ast.Node
	// Succs are the possible next blocks.
	Succs []*Block
}

// CFG is the control-flow graph of a single function body.
type CFG struct {
	// Entry is where the function starts; Exit is the single synthetic
	// block every return (and the fall-off-the-end path) reaches.
	Entry, Exit *Block
	// Blocks lists every block, entry first, exit second, then body
	// blocks in construction order. Blocks unreachable from Entry appear
	// here too (dead code after return/break still parses).
	Blocks []*Block
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*Block{}}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	b.edge(b.cur, b.cfg.Exit)
	for _, g := range b.gotos {
		if target, ok := b.labels[g.label]; ok {
			b.edge(g.from, target)
		} else {
			// A goto to a label this builder did not see (should not
			// happen in type-checked code); fail safe toward the exit.
			b.edge(g.from, b.cfg.Exit)
		}
	}
	return b.cfg
}

// loopFrame records the jump targets of one enclosing loop or switch.
type loopFrame struct {
	label      string // of the enclosing LabeledStmt, or ""
	breakTo    *Block
	continueTo *Block // nil for switch/select frames (break-only)
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	frames []loopFrame
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel is the label of a LabeledStmt whose statement is about
	// to be built; loops consume it so `break L`/`continue L` resolve.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startBlock begins a new block with an edge from pred and makes it
// current.
func (b *cfgBuilder) startBlock(pred *Block) *Block {
	blk := b.newBlock()
	b.edge(pred, blk)
	b.cur = blk
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminate ends the current path (return, branch, panic): control moved
// elsewhere, so subsequent statements build into a fresh unreachable
// block.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		// The label targets the start of the labeled statement: gotos
		// jump here, and loops/switches consume it for break/continue.
		target := b.startBlock(b.cur)
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		b.startBlock(cond)
		b.stmts(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		if s.Else != nil {
			b.startBlock(cond)
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		b.edge(thenEnd, join)
		if s.Else != nil {
			b.edge(elseEnd, join)
		} else {
			b.edge(cond, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock(b.cur)
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head)
		if s.Cond != nil {
			b.edge(head, after)
		}
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: post})
		b.startBlock(head)
		b.stmts(s.Body.List)
		b.edge(b.cur, post)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.startBlock(b.cur)
		after := b.newBlock()
		b.edge(head, after) // the range may be empty
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after, continueTo: head})
		b.startBlock(head)
		b.stmts(s.Body.List)
		b.edge(b.cur, head)
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		head := b.cur
		after := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, breakTo: after})
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			b.startBlock(head)
			if cc.Comm != nil {
				b.add(cc.Comm)
			} else {
				hasDefault = true
			}
			b.stmts(cc.Body)
			b.edge(b.cur, after)
		}
		// A select without a default and without cases never proceeds;
		// with cases, one always fires eventually, so no head→after edge
		// is needed — but an empty select must still terminate the path.
		if len(s.Body.List) == 0 && !hasDefault {
			b.edge(head, b.cfg.Exit)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.terminate()

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok.String() {
		case "break":
			if t := b.frameFor(s.Label, true); t != nil {
				b.edge(b.cur, t)
			}
		case "continue":
			if t := b.frameFor(s.Label, false); t != nil {
				b.edge(b.cur, t)
			}
		case "goto":
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
		case "fallthrough":
			// Handled by switchClauses (the edge to the next case); the
			// statement itself carries no other flow.
			return
		}
		b.terminate()

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.edge(b.cur, b.cfg.Exit)
				b.terminate()
			}
		}

	default:
		// Decl, assign, inc/dec, send, go, defer, empty: straight-line.
		b.add(s)
	}
}

// switchClauses builds the case blocks of a switch or type switch.
// allowFallthrough wires `fallthrough` edges between adjacent cases.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, allowFallthrough bool) {
	head := b.cur
	after := b.newBlock()
	b.frames = append(b.frames, loopFrame{label: label, breakTo: after})
	// Pre-create the case blocks so fallthrough can target the successor.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		for _, s := range cc.Body {
			if br, ok := s.(*ast.BranchStmt); ok && allowFallthrough && br.Tok.String() == "fallthrough" {
				if i+1 < len(blocks) {
					b.edge(b.cur, blocks[i+1])
				}
				b.terminate()
				continue
			}
			b.stmt(s)
		}
		b.edge(b.cur, after)
	}
	if !hasDefault {
		b.edge(head, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = after
}

// frameFor resolves a break/continue target, innermost first; wantBreak
// selects the break target, otherwise the continue target.
func (b *cfgBuilder) frameFor(label *ast.Ident, wantBreak bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label != nil && f.label != label.Name {
			continue
		}
		if wantBreak {
			return f.breakTo
		}
		if f.continueTo != nil {
			return f.continueTo
		}
		if label != nil {
			// `continue L` where L names a switch: ill-formed, but keep
			// scanning outward rather than mis-wiring.
			continue
		}
	}
	return nil
}

// ForEachFuncBody calls fn once for every function body in the file: each
// declared function and each function literal, with the literal NOT
// revisited as part of its encloser (decl is the enclosing FuncDecl for
// literals, or the declaration itself; it is nil for literals in
// package-level variable initializers).
func ForEachFuncBody(f *ast.File, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	var enclosing *ast.FuncDecl
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			enclosing = n
			fn(n, n.Body)
			return true
		case *ast.FuncLit:
			fn(enclosing, n.Body)
			return true
		}
		return true
	}
	for _, d := range f.Decls {
		enclosing = nil
		ast.Inspect(d, walk)
	}
}

// InspectShallow walks n without descending into function literals — the
// per-block node walk for analyzers that treat literal bodies as separate
// scopes.
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(child ast.Node) bool {
		if child == nil {
			return true
		}
		if _, ok := child.(*ast.FuncLit); ok && child != n {
			return false
		}
		return fn(child)
	})
}
