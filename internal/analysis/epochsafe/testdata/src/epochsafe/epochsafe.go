// Package epochsafe is testdata: placement/binding state must move only
// inside barrier hooks or pending-op application. Type and field names
// mirror the real fleet layer (Cluster.placed/queue, Node.perGPU,
// Service.replicas) without importing it.
package epochsafe

type gpuLoad struct{ jobs int }

type Node struct {
	perGPU []gpuLoad
}

type handle struct{ name string }

type Cluster struct {
	placed    map[string]*handle
	queue     []*handle
	gangQueue []*handle
	hooks     []func(int64)
}

type Service struct {
	replicas []string
}

type binding struct{ dev int }

type job struct{ b binding }

func (j *job) SetBinding(b binding) { j.b = b }

// AtBarrier registers a hook to run at every epoch boundary.
func (c *Cluster) AtBarrier(hook func(int64)) {
	c.hooks = append(c.hooks, hook)
}

// NewCluster builds fresh state no epoch can see yet: constructors are
// exempt.
func NewCluster() *Cluster {
	c := &Cluster{}
	c.placed = map[string]*handle{}
	return c
}

// retire is registered as a barrier hook below, so its mutations — and
// those of everything it calls — are epoch-safe.
func (c *Cluster) retire(now int64) {
	delete(c.placed, "old")
	c.dropQueued()
}

// dropQueued is reachable from the hook: safe by closure.
func (c *Cluster) dropQueued() {
	c.queue = c.queue[:0]
}

func (c *Cluster) wire() {
	c.AtBarrier(c.retire)
	c.AtBarrier(func(now int64) {
		// A literal hook folds into its encloser, so wire's own
		// mutations are safe too.
		c.placed["x"] = &handle{}
	})
}

// Evict mutates placement state but is reachable from no barrier hook:
// every mutation is a finding.
func (c *Cluster) Evict(name string) {
	delete(c.placed, name)             // want `Evict mutates Cluster\.placed outside a barrier hook`
	c.queue = append(c.queue, &handle{ // want `Evict mutates Cluster\.queue outside a barrier hook`
		name: name,
	})
}

// Rebalance touches Node and Service state from outside the epoch
// machinery.
func Rebalance(n *Node, s *Service, j *job) {
	n.perGPU[0].jobs++                   // want `Rebalance mutates Node\.perGPU outside a barrier hook`
	s.replicas = append(s.replicas, "r") // want `Rebalance mutates Service\.replicas outside a barrier hook`
	j.SetBinding(binding{dev: 1})        // want `Rebalance calls SetBinding outside a barrier hook`
	n.perGPU[0] = gpuLoad{jobs: 0}       // want `Rebalance mutates Node\.perGPU outside a barrier hook`
}

// retryGangs is registered as a barrier hook below: gangs are admitted
// whole at epoch boundaries, so draining the gang queue there is safe.
func (c *Cluster) retryGangs(now int64) {
	c.gangQueue = c.gangQueue[:0]
}

func (c *Cluster) wireGangs() {
	c.AtBarrier(c.retryGangs)
}

// AdmitGang mutates the gang queue from outside the epoch machinery:
// a gang sneaking into the queue mid-epoch could be placed against a
// stale view of free GPUs.
func (c *Cluster) AdmitGang(h *handle) {
	c.gangQueue = append(c.gangQueue, h) // want `AdmitGang mutates Cluster\.gangQueue outside a barrier hook`
}

// pendingOp machinery: ops queued through queueOp apply at the barrier,
// so the queuing function is a safe root.
type op func()

var pending []op

func queueOp(o op) { pending = append(pending, o) }

func applyPendingOps() {
	for _, o := range pending {
		o()
	}
	pending = pending[:0]
}

// grow queues its mutation as a pending op: safe.
func grow(s *Service) {
	queueOp(func() {
		s.replicas = append(s.replicas, "r")
	})
}

// reads are never findings, only mutations.
func Peek(c *Cluster, name string) bool {
	_, ok := c.placed[name]
	return ok && len(c.queue) == 0
}
