// Package epochsafe checks that placement and binding state moves only
// at epoch boundaries. The reproduction's fleet layer mutates shared
// scheduling state — `Cluster.placed/queue/pending`, `Node.perGPU`,
// `Service.replicas`, vnode bindings via `Job.SetBinding` — and its
// determinism story requires every such mutation to happen inside a
// barrier hook (a function registered with AtBarrier) or inside
// pending-op application (`queueOp` → `applyPendingOps`), where the
// single-threaded epoch step owns the world. A mutation in a function
// not reachable from any of those safe roots can interleave with an
// epoch in progress and is a finding.
//
// The analysis is call-graph based: the Collect phase records, for every
// package, the functions registered as barrier hooks or queued as
// pending ops (function literals fold into their enclosing declaration);
// Run then flags protected-state mutations in any function outside the
// transitive closure of those roots. Constructors (New*) are exempt —
// they build state no epoch can see yet.
package epochsafe

import (
	"go/ast"
	"go/types"
	"strings"

	"switchflow/internal/analysis"
)

// Analyzer is the epochsafe check.
var Analyzer = &analysis.Analyzer{
	Name:    "epochsafe",
	Doc:     "placement/binding state mutates only inside barrier hooks or pending-op application",
	Collect: collect,
	Run:     run,
}

// protectedFields maps a type name to the fields whose mutation is
// epoch-gated. Matching is by name so the rule reads the same in the
// real packages and in isolated testdata.
var protectedFields = map[string]map[string]bool{
	"Cluster": {"placed": true, "queue": true, "pending": true, "gangQueue": true},
	"Node":    {"perGPU": true},
	"Service": {"replicas": true},
}

// protectedCalls are methods that rebind placement state wholesale.
var protectedCalls = map[string]bool{
	"SetBinding": true,
}

// registrars are the calls whose function-valued arguments become safe
// roots: AtBarrier installs a barrier hook, queueOp defers the op to
// pending-op application at the next barrier.
var registrars = map[string]bool{
	"AtBarrier": true,
	"queueOp":   true,
}

// safeNames are functions that ARE the epoch machinery regardless of how
// they are reached.
var safeNames = map[string]bool{
	"applyPendingOps": true,
	"barrier":         true,
}

// seedFact marks a function as a safe root.
type seedFact struct{}

func collect(pass *analysis.Pass) error {
	export := func(fn *types.Func) {
		if fn != nil {
			pass.ExportFact(fn, seedFact{})
		}
	}
	for _, f := range pass.Files {
		var enclosing *ast.FuncDecl
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				enclosing = n
				if n.Body != nil && safeNames[n.Name.Name] {
					fn, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
					export(fn)
				}
			case *ast.CallExpr:
				if calleeName(n) == "" || !registrars[calleeName(n)] {
					return true
				}
				for _, arg := range n.Args {
					switch arg := arg.(type) {
					case *ast.FuncLit:
						// Literal hooks fold into their encloser in the
						// call graph, so the encloser is the root.
						if enclosing != nil {
							fn, _ := pass.TypesInfo.Defs[enclosing.Name].(*types.Func)
							export(fn)
						}
					case *ast.Ident:
						fn, _ := pass.TypesInfo.Uses[arg].(*types.Func)
						export(fn)
					case *ast.SelectorExpr:
						fn, _ := pass.TypesInfo.Uses[arg.Sel].(*types.Func)
						export(fn)
					}
				}
			}
			return true
		})
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func run(pass *analysis.Pass) error {
	safe := pass.Prog.ReachableFrom(pass.FactFuncs())
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil || safe[fn] || exemptDecl(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// exemptDecl: constructors build fresh state invisible to the epoch loop.
func exemptDecl(fd *ast.FuncDecl) bool {
	return strings.HasPrefix(fd.Name.Name, "New") || fd.Name.Name == "init"
}

// checkFunc flags protected mutations in a function outside the safe
// closure. The whole declaration is scanned, literals included — a
// literal's mutations execute with its encloser's (unsafe) provenance.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if typ, field, ok := protectedTarget(pass.TypesInfo, lhs); ok {
					pass.Reportf(lhs.Pos(), "%s mutates %s.%s outside a barrier hook or pending-op application", fd.Name.Name, typ, field)
				}
			}
		case *ast.IncDecStmt:
			if typ, field, ok := protectedTarget(pass.TypesInfo, n.X); ok {
				pass.Reportf(n.Pos(), "%s mutates %s.%s outside a barrier hook or pending-op application", fd.Name.Name, typ, field)
			}
		case *ast.CallExpr:
			name := calleeName(n)
			if protectedCalls[name] {
				pass.Reportf(n.Pos(), "%s calls %s outside a barrier hook or pending-op application", fd.Name.Name, name)
			}
			// delete(c.placed, k) and append-to-field both appear as
			// calls; delete's first arg is the mutated map.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if typ, field, ok := protectedTarget(pass.TypesInfo, n.Args[0]); ok {
					pass.Reportf(n.Pos(), "%s mutates %s.%s outside a barrier hook or pending-op application", fd.Name.Name, typ, field)
				}
			}
		}
		return true
	})
}

// protectedTarget reports whether e is (or indexes into) a protected
// field of a protected type, returning the type and field names.
func protectedTarget(info *types.Info, e ast.Expr) (string, string, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			field := x.Sel.Name
			if tv, ok := info.Types[x.X]; ok && tv.Type != nil {
				typ := namedName(tv.Type)
				if fields, ok := protectedFields[typ]; ok && fields[field] {
					return typ, field, true
				}
			}
			// `n.perGPU[0].jobs` mutates an element inside the protected
			// collection: keep descending toward the base.
			e = x.X
		default:
			return "", "", false
		}
	}
}

// namedName unwraps pointers and returns the named type's name.
func namedName(t types.Type) string {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}
