package epochsafe_test

import (
	"testing"

	"switchflow/internal/analysis/analysistest"
	"switchflow/internal/analysis/epochsafe"
)

func TestEpochsafe(t *testing.T) {
	analysistest.Run(t, epochsafe.Analyzer, "epochsafe")
}
