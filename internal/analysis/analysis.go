// Package analysis is a self-contained, stdlib-only static-analysis
// framework in the shape of golang.org/x/tools/go/analysis, sized for
// this repository's needs. It exists because the reproduction's headline
// property — byte-identical serial vs -parallel sweep results and
// deterministic fault plans — rests on invariants (no wall-clock reads in
// the simulated world, no shared global randomness, no order derived from
// map iteration, no blocking work under the control-plane mutex) that
// used to live only in reviewers' heads. The analyzers under
// internal/analysis/* encode them as compiler-checked rules; cmd/swlint
// runs the whole suite and make lint / CI enforce it.
//
// The framework deliberately mirrors go/analysis: an Analyzer bundles a
// name, documentation, and a Run function over a Pass; a Pass hands the
// analyzer one type-checked package and collects Diagnostics. Legitimate
// exceptions are annotated in source with
//
//	//swlint:allow <analyzer> <reason>
//
// which suppresses that analyzer's findings on the directive's line (for
// trailing comments) or on the line below (for standalone comments). A
// reason is mandatory; malformed directives are themselves findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run reports findings through the Pass; it
// must not retain the Pass after returning.
type Analyzer struct {
	// Name identifies the analyzer in output and in //swlint:allow
	// directives. It must be a lowercase identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is a diagnostic with its position resolved, ready to print.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to the package and returns the findings that
// survive //swlint:allow suppression, plus findings for malformed
// directives, sorted by position. known lists every analyzer name valid
// in directives (usually the full suite, even when running a subset, so
// suppressions for other analyzers are not reported as unknown).
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, known []string) ([]Finding, error) {
	dirs, bad := CollectDirectives(fset, files, known)
	findings := append([]Finding(nil), bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
		for _, d := range pass.diagnostics {
			pos := fset.Position(d.Pos)
			if dirs.Suppressed(a.Name, pos) {
				continue
			}
			findings = append(findings, Finding{Position: pos, Analyzer: d.Analyzer, Message: d.Message})
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, analyzer, message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
