// Package analysis is a self-contained, stdlib-only static-analysis
// framework in the shape of golang.org/x/tools/go/analysis, sized for
// this repository's needs. It exists because the reproduction's headline
// property — byte-identical serial vs -parallel sweep results and
// deterministic fault plans — rests on invariants (no wall-clock reads in
// the simulated world, no shared global randomness, no order derived from
// map iteration, no blocking work under the control-plane mutex) that
// used to live only in reviewers' heads. The analyzers under
// internal/analysis/* encode them as compiler-checked rules; cmd/swlint
// runs the whole suite and make lint / CI enforce it.
//
// The framework deliberately mirrors go/analysis: an Analyzer bundles a
// name, documentation, and a Run function over a Pass; a Pass hands the
// analyzer one type-checked package and collects Diagnostics. Legitimate
// exceptions are annotated in source with
//
//	//swlint:allow <analyzer> <reason>
//
// which suppresses that analyzer's findings on the directive's line (for
// trailing comments) or on the line below (for standalone comments). A
// reason is mandatory; malformed directives are themselves findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one static check. Run reports findings through the Pass; it
// must not retain the Pass after returning.
type Analyzer struct {
	// Name identifies the analyzer in output and in //swlint:allow
	// directives. It must be a lowercase identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Collect, when non-nil, runs over every package of the program
	// before any Run, exporting per-function facts (Pass.ExportFact) for
	// the Run phase to import. Collect must not report diagnostics.
	Collect func(*Pass) error
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Prog is the whole-program view (call graph, facts). It is always
	// non-nil under RunProgram; a bare Run gives each package a private
	// single-package program.
	Prog *Program

	diagnostics []Diagnostic
}

// Diagnostic is a single finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Finding is a diagnostic with its position resolved, ready to print.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s",
		f.Position.Filename, f.Position.Line, f.Position.Column, f.Analyzer, f.Message)
}

// Run applies every analyzer to one free-standing package and returns the
// findings that survive //swlint:allow suppression, plus findings for
// malformed directives, sorted by position. known lists every analyzer
// name valid in directives. The package gets a private single-package
// Program, so fact-based analyzers see just this package — whole-module
// callers use RunProgram instead.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, known []string) ([]Finding, error) {
	path := ""
	if pkg != nil {
		path = pkg.Path()
	}
	prog := NewProgram(fset, []*PackageUnit{{
		Path: path, Files: files, Pkg: pkg, Info: info,
	}})
	return RunProgram(prog, analyzers, known, false)
}

// RunProgram applies every analyzer to every package of the program:
// first each analyzer's Collect phase over all packages (fact export),
// then each Run, with //swlint:allow suppression applied per package.
// known lists every analyzer name valid in directives (usually the full
// suite, even when running a subset, so suppressions for other analyzers
// are not reported as unknown). reportUnused additionally reports allow
// directives that suppressed nothing — only sensible when running the
// full suite, since a subset run leaves other analyzers' suppressions
// legitimately idle.
func RunProgram(prog *Program, analyzers []*Analyzer, known []string, reportUnused bool) ([]Finding, error) {
	var findings []Finding
	dirs := make([]*Directives, len(prog.Packages))
	for i, u := range prog.Packages {
		d, bad := CollectDirectives(prog.Fset, u.Files, known)
		dirs[i] = d
		findings = append(findings, bad...)
	}
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, u := range prog.Packages {
			pass := &Pass{
				Analyzer: a, Fset: prog.Fset, Files: u.Files,
				Pkg: u.Pkg, TypesInfo: u.Info, Prog: prog,
			}
			if err := a.Collect(pass); err != nil {
				return nil, fmt.Errorf("%s: collect %s: %w", a.Name, u.Path, err)
			}
		}
	}
	for i, u := range prog.Packages {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a, Fset: prog.Fset, Files: u.Files,
				Pkg: u.Pkg, TypesInfo: u.Info, Prog: prog,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
			}
			for _, d := range pass.diagnostics {
				pos := prog.Fset.Position(d.Pos)
				if dirs[i].Suppressed(a.Name, pos) {
					continue
				}
				findings = append(findings, Finding{Position: pos, Analyzer: d.Analyzer, Message: d.Message})
			}
		}
		if reportUnused {
			findings = append(findings, dirs[i].Unused()...)
		}
	}
	SortFindings(findings)
	return findings, nil
}

// SortFindings orders findings by file, line, column, analyzer, message.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
