// Package sentinelval checks exported surfaces for magic-value
// sentinels: a negative duration meaning "not available" or a negative
// index meaning "not found" forces every caller to remember the special
// value, and a forgotten check silently flows the sentinel into
// arithmetic (PR 8's `-1ns` QueueDelay fed straight into a latency
// histogram). Exported functions must use the `(T, bool)` comma-ok shape
// instead.
//
// Two rules, both on exported functions returning through exported
// types:
//
//   - A result slot typed time.Duration must never return a negative
//     constant.
//   - An integer result slot must not mix a negative constant sentinel
//     with computed values. The three-way comparison idiom — every
//     return of the slot is a constant in {-1, 0, 1} — is the one
//     accepted negative-constant shape.
//
// Unexported helpers may use sentinels internally; only the exported
// surface is held to the comma-ok contract.
package sentinelval

import (
	"go/ast"
	"go/constant"
	"go/types"

	"switchflow/internal/analysis"
)

// Analyzer is the sentinelval check.
var Analyzer = &analysis.Analyzer{
	Name: "sentinelval",
	Doc:  "no negative-duration or negative-index sentinels on exported surfaces; use (T, bool)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if fd.Type.Results == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// returnSite is one constant value returned for one result slot.
type returnSite struct {
	expr    ast.Expr
	val     int64 // constant value, valid when isConst
	isConst bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	resultTypes := flattenResults(pass, fd.Type.Results)
	if len(resultTypes) == 0 {
		return
	}
	// Gather every return's expressions per slot. Naked returns and
	// returns through function literals are skipped — literals are their
	// own (unexported) surface.
	sites := make([][]returnSite, len(resultTypes))
	analysis.InspectShallow(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != len(resultTypes) {
			return true
		}
		for i, e := range ret.Results {
			s := returnSite{expr: e}
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
				if v, exact := constant.Int64Val(tv.Value); exact {
					s.val, s.isConst = v, true
				}
			}
			sites[i] = append(sites[i], s)
		}
		return true
	})
	for i, rt := range resultTypes {
		dur := isDuration(rt)
		if !dur && !isIntegerType(rt) {
			continue
		}
		if !dur && comparisonIdiom(sites[i]) {
			continue
		}
		for _, s := range sites[i] {
			if !s.isConst || s.val >= 0 {
				continue
			}
			if dur {
				pass.Reportf(s.expr.Pos(), "exported %s returns negative duration sentinel %d; return (time.Duration, bool) instead", fd.Name.Name, s.val)
			} else {
				pass.Reportf(s.expr.Pos(), "exported %s returns negative sentinel %d; return (%s, bool) instead", fd.Name.Name, s.val, rt.String())
			}
		}
	}
}

// comparisonIdiom accepts the strcmp shape: every return of the slot is
// a constant and all values lie in {-1, 0, 1}. A slot that mixes -1 with
// computed indexes is a sentinel, not a comparison.
func comparisonIdiom(sites []returnSite) bool {
	if len(sites) == 0 {
		return false
	}
	for _, s := range sites {
		if !s.isConst || s.val < -1 || s.val > 1 {
			return false
		}
	}
	return true
}

// flattenResults expands the result field list (a field may declare
// several names) into one type per slot.
func flattenResults(pass *analysis.Pass, results *ast.FieldList) []types.Type {
	var out []types.Type
	for _, f := range results.List {
		tv, ok := pass.TypesInfo.Types[f.Type]
		if !ok || tv.Type == nil {
			return nil
		}
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, tv.Type)
		}
	}
	return out
}

// isDuration matches time.Duration and named types whose underlying
// declaration is it.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Duration" && obj.Pkg() != nil && obj.Pkg().Path() == "time"
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
