package sentinelval_test

import (
	"testing"

	"switchflow/internal/analysis/analysistest"
	"switchflow/internal/analysis/sentinelval"
)

func TestSentinelval(t *testing.T) {
	analysistest.Run(t, sentinelval.Analyzer, "sentinelval")
}
