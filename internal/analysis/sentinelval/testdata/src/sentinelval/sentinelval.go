// Package sentinelval is testdata: no magic negative sentinels on
// exported surfaces.
package sentinelval

import "time"

type queue struct {
	heads []int64
	now   int64
}

// QueueDelayOld is the pre-PR-8 shape: -1ns means "empty queue", and any
// caller that forgets the check feeds -1 into a histogram.
func (q *queue) QueueDelayOld() time.Duration {
	if len(q.heads) == 0 {
		return -1 // want `exported QueueDelayOld returns negative duration sentinel -1; return \(time.Duration, bool\) instead`
	}
	return time.Duration(q.now - q.heads[0])
}

// QueueDelay is the comma-ok shape PR 8 migrated to: clean.
func (q *queue) QueueDelay() (time.Duration, bool) {
	if len(q.heads) == 0 {
		return 0, false
	}
	return time.Duration(q.now - q.heads[0]), true
}

// IndexOf mixes a computed index with a -1 sentinel.
func IndexOf(xs []int, want int) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1 // want `exported IndexOf returns negative sentinel -1; return \(int, bool\) instead`
}

// Lookup is the comma-ok shape: clean.
func Lookup(xs []int, want int) (int, bool) {
	for i, x := range xs {
		if x == want {
			return i, true
		}
	}
	return 0, false
}

// Compare is the three-way comparison idiom: every return is a constant
// in {-1, 0, 1}, which is a contract, not a sentinel.
func Compare(a, b int) int {
	if a < b {
		return -1
	}
	if a > b {
		return 1
	}
	return 0
}

// indexOf is unexported: internal helpers may use sentinels, the caller
// is in the same file.
func indexOf(xs []int, want int) int {
	for i, x := range xs {
		if x == want {
			return i
		}
	}
	return -1
}

// Scale returns a negative constant that is not an index or duration
// result... it still trips the integer rule on the exported surface.
func Scale() int {
	return -100 // want `exported Scale returns negative sentinel -100; return \(int, bool\) instead`
}

// Delta legitimately computes negative values at runtime; only constant
// sentinels are flagged.
func Delta(a, b int) int {
	return a - b
}
