package suite_test

import (
	"os"
	"testing"

	"switchflow/internal/analysis"
	"switchflow/internal/analysis/load"
	"switchflow/internal/analysis/suite"
)

// TestRepoIsClean runs the full suite over the whole module, the same
// sweep cmd/swlint performs. The tree must stay finding-free: every
// legitimate exception carries an //swlint:allow directive, so any
// output here is either a real regression or a missing annotation.
func TestRepoIsClean(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modulePath, err := load.ModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	l := load.New(root, modulePath)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	units := make([]*analysis.PackageUnit, len(pkgs))
	for i, p := range pkgs {
		units[i] = &analysis.PackageUnit{Path: p.Path, Files: p.Files, Pkg: p.Types, Info: p.Info}
	}
	prog := analysis.NewProgram(l.Fset(), units)
	// reportUnused: a suppression that no longer fires is itself a
	// finding, so stale //swlint:allow directives cannot accumulate.
	findings, err := analysis.RunProgram(prog, suite.Analyzers(), suite.Names(), true)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestSuiteShape pins the registry: analyzer names are unique, sorted,
// documented, and usable in directives.
func TestSuiteShape(t *testing.T) {
	names := suite.Names()
	if len(names) < 8 {
		t.Fatalf("suite has %d analyzers, want at least 8", len(names))
	}
	seen := make(map[string]bool)
	prev := ""
	for i, a := range suite.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %d is missing name, doc, or run", i)
			continue
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Name < prev {
			t.Errorf("analyzers out of order: %q after %q", a.Name, prev)
		}
		prev = a.Name
	}
}
