// Package suite registers the full swlint analyzer suite. cmd/swlint and
// the repo-wide self-check test both consume it, so adding an analyzer
// here wires it into the CLI, make lint, CI, and the smoke test at once.
package suite

import (
	"switchflow/internal/analysis"
	"switchflow/internal/analysis/counterflow"
	"switchflow/internal/analysis/detrand"
	"switchflow/internal/analysis/epochsafe"
	"switchflow/internal/analysis/locksafe"
	"switchflow/internal/analysis/maporder"
	"switchflow/internal/analysis/obspair"
	"switchflow/internal/analysis/sentinelval"
	"switchflow/internal/analysis/simclock"
)

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		counterflow.Analyzer,
		detrand.Analyzer,
		epochsafe.Analyzer,
		locksafe.Analyzer,
		maporder.Analyzer,
		obspair.Analyzer,
		sentinelval.Analyzer,
		simclock.Analyzer,
	}
}

// Names returns the analyzer names, for directive validation and -run
// filters.
func Names() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}
