// Package maporder exercises the maporder analyzer: order-dependent
// loop bodies over maps are flagged; commuting reductions, blessed
// collect-then-sort, per-entry mutation, and loop-local work are not.
package maporder

import (
	"fmt"
	"sort"
)

// badAppend collects map keys without ever sorting them.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to keys which is never sorted afterwards`
		keys = append(keys, k)
	}
	return keys
}

// goodCollectSort is the blessed fix: collect, then sort.
func goodCollectSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// badCall emits output in map order.
func badCall(m map[string]int) {
	for k := range m { // want `calls a function with effects`
		fmt.Println(k)
	}
}

// badSend feeds a channel in map order.
func badSend(m map[string]int, ch chan string) {
	for k := range m { // want `sends on a channel`
		ch <- k
	}
}

// badReturn returns the first hit, which is a coin flip on ties.
func badReturn(m map[string]int) (string, bool) {
	for k, v := range m { // want `returns from inside the loop`
		if v > 0 {
			return k, true
		}
	}
	return "", false
}

// badFloat accumulates floats, whose rounding depends on order.
func badFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `accumulates floating-point state`
		sum += v
	}
	return sum
}

// badNested hides the effect inside an inner loop.
func badNested(m map[string][]int, out []int) []int {
	for _, vs := range m { // want `order-dependent control flow`
		for _, v := range vs {
			out = append(out, v)
		}
	}
	return out
}

// goodIntSum commutes: integer addition is order-insensitive.
func goodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodGuardedMax is a guarded reduction.
func goodGuardedMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

type stat struct{ mean float64 }

// goodPerEntry mutates each entry through the loop value.
func goodPerEntry(m map[string]*stat) {
	for _, st := range m {
		st.mean = 0
	}
}

// goodDelete prunes entries; delete during range is defined and commutes.
func goodDelete(m map[string]int) {
	for k := range m {
		if m[k] == 0 {
			delete(m, k)
		}
	}
}

// goodLocals confines everything to per-iteration locals.
func goodLocals(m map[string]int) int {
	count := 0
	for _, v := range m {
		doubled := v * 2
		if doubled > 10 {
			count++
		}
	}
	return count
}

// badRebindTarget picks a replacement device for a virtual node straight
// out of map order: two runs heal the same fault onto different GPUs.
func badRebindTarget(replicas map[int]bool) (int, bool) {
	for dev, healthy := range replicas { // want `returns from inside the loop`
		if healthy {
			return dev, true
		}
	}
	return -1, false
}

// goodRebindTarget is the rebind-at-epoch idiom: collect the candidate
// devices, sort, then bind the lowest — the choice is deterministic, so
// the epoch-safe rebind replays identically.
func goodRebindTarget(replicas map[int]bool) (int, bool) {
	var devs []int
	for dev, healthy := range replicas {
		if healthy {
			devs = append(devs, dev)
		}
	}
	sort.Ints(devs)
	if len(devs) == 0 {
		return -1, false
	}
	return devs[0], true
}

// allowedDump carries a directive: order genuinely does not matter.
func allowedDump(m map[string]int) {
	//swlint:allow maporder debug dump, consumer sorts lines before diffing
	for k := range m {
		fmt.Println(k)
	}
}
