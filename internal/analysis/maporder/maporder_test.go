package maporder_test

import (
	"testing"

	"switchflow/internal/analysis/analysistest"
	"switchflow/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "maporder")
}
