// Package maporder flags range statements over maps whose loop bodies
// have iteration-order-dependent effects. Go randomizes map iteration
// order on purpose; a map-ordered append, channel send, scheduled event,
// or output write makes two runs of the same simulation diverge — exactly
// the drift the serial-vs-parallel byte-identity tests exist to catch.
//
// The analyzer permits loop bodies whose effects commute, so the common
// benign shapes stay silent:
//
//   - collecting keys/values into a slice that a later statement in the
//     same block sorts (sort.* or slices.Sort*) — the blessed fix;
//   - guarded reductions (max/min/first-match under an if) and
//     commutative accumulation (integer +=, counters, |=) into outer
//     variables;
//   - per-entry mutation through the loop variables (st.Mean = ... where
//     st is the map value) and delete(m, k);
//   - anything confined to locals declared inside the loop.
//
// Everything else — calls with effects, nested loops, returns (first
// match wins), channel operations, unsorted appends, floating-point
// accumulation (rounding is order-dependent) — is reported. Guarded
// reductions are assumed commutative; a guarded assignment that selects
// between tied candidates is still order-dependent and needs sorting —
// the analyzer cannot see ties, so reviewers still must.
package maporder

import (
	"go/ast"
	"go/types"

	"switchflow/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-dependent effects; sort the keys first",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		walkBlocks(f, func(stmts []ast.Stmt) {
			for i, s := range stmts {
				rs, ok := unlabel(s).(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypesInfo.Types[rs.X].Type
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				c := &checker{pass: pass, rng: rs, followers: stmts[i+1:]}
				if cause := c.cause(rs.Body); cause != "" {
					pass.Reportf(rs.Pos(),
						"iteration over map %s %s, so the result depends on random map order; iterate sorted keys instead", types.ExprString(rs.X), cause)
				}
			}
		})
	}
	return nil
}

// walkBlocks invokes fn on every statement list in the file (blocks and
// switch/select case bodies).
func walkBlocks(f *ast.File, fn func([]ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

type checker struct {
	pass *analysis.Pass
	// rng is the map range under scrutiny; objects declared within its
	// span (the loop variables and body locals) are private per iteration.
	rng *ast.RangeStmt
	// followers are the statements after the range in its enclosing
	// block, searched for sort calls that bless collector appends.
	followers []ast.Stmt
}

// cause classifies the loop body; it returns "" when every effect
// commutes, else a description of the first order-dependent effect.
func (c *checker) cause(body *ast.BlockStmt) string {
	for _, s := range body.List {
		if cause := c.stmtCause(unlabel(s)); cause != "" {
			return cause
		}
	}
	return ""
}

func (c *checker) stmtCause(s ast.Stmt) string {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt, *ast.BranchStmt:
		return ""
	case *ast.BlockStmt:
		return c.cause(s)
	case *ast.IfStmt:
		if s.Init != nil {
			if cause := c.stmtCause(s.Init); cause != "" {
				return cause
			}
		}
		if !c.pure(s.Cond) {
			return "has an effectful condition"
		}
		if cause := c.cause(s.Body); cause != "" {
			return cause
		}
		if s.Else != nil {
			return c.stmtCause(unlabel(s.Else))
		}
		return ""
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return "declares non-var state"
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if !c.pure(v) {
						return "initializes a local with an effectful expression"
					}
				}
			}
		}
		return ""
	case *ast.AssignStmt:
		return c.assignCause(s)
	case *ast.IncDecStmt:
		if !c.assignableTarget(s.X, false) {
			return "increments order-sensitive state"
		}
		return ""
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return ""
				}
			}
		}
		return "calls a function with effects"
	case *ast.SendStmt:
		return "sends on a channel"
	case *ast.ReturnStmt:
		return "returns from inside the loop (first match wins)"
	default:
		return "contains a nested statement with order-dependent control flow"
	}
}

// assignCause classifies one assignment inside the loop body.
func (c *checker) assignCause(s *ast.AssignStmt) string {
	// The collector pattern: x = append(x, ...) blessed by a later sort.
	if lhs, ok := c.collectorAppend(s); ok {
		if c.sortedAfter(lhs) {
			return ""
		}
		return "appends to " + lhs.Name + " which is never sorted afterwards"
	}
	for _, rhs := range s.Rhs {
		if !c.pure(rhs) {
			return "assigns the result of an effectful call"
		}
	}
	define := s.Tok.String() == ":="
	commutative := false
	switch s.Tok.String() {
	case "+=", "-=", "*=", "|=", "&=", "^=":
		commutative = true
	}
	for _, lhs := range s.Lhs {
		if define {
			continue // fresh local each iteration
		}
		if commutative {
			if !c.commutativeTarget(lhs) {
				return "accumulates floating-point state (rounding depends on order)"
			}
			continue
		}
		if !c.assignableTarget(lhs, true) {
			return "writes order-sensitive state"
		}
	}
	return ""
}

// collectorAppend matches x = append(x, ...) with an identifier target.
func (c *checker) collectorAppend(s *ast.AssignStmt) (*ast.Ident, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil, false
	}
	if _, isBuiltin := c.pass.TypesInfo.Uses[fn].(*types.Builtin); !isBuiltin {
		return nil, false
	}
	first, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || c.obj(first) != c.obj(lhs) || c.obj(lhs) == nil {
		return nil, false
	}
	for _, a := range call.Args[1:] {
		if !c.pure(a) {
			return nil, false
		}
	}
	return lhs, true
}

// sortFuncs names the sorting entry points that bless a collector.
var sortFuncs = []struct {
	pkg   string
	names map[string]bool
}{
	{"sort", map[string]bool{"Ints": true, "Strings": true, "Float64s": true,
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true}},
	{"slices", map[string]bool{"Sort": true, "SortFunc": true, "SortStableFunc": true}},
}

// sortedAfter reports whether a statement following the range sorts the
// collected slice.
func (c *checker) sortedAfter(collector *ast.Ident) bool {
	target := c.obj(collector)
	if target == nil {
		return false
	}
	for _, s := range c.followers {
		es, ok := unlabel(s).(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		for _, sf := range sortFuncs {
			name, ok := analysis.PkgCall(c.pass.TypesInfo, call, sf.pkg)
			if !ok || !sf.names[name] {
				continue
			}
			if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && c.obj(arg) == target {
				return true
			}
		}
	}
	return false
}

// obj resolves an identifier to its object (definition or use).
func (c *checker) obj(id *ast.Ident) types.Object {
	if o := c.pass.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return c.pass.TypesInfo.Uses[id]
}

// local reports whether the identifier's object is declared within the
// range statement (loop variables and body locals are per-iteration).
func (c *checker) local(id *ast.Ident) bool {
	o := c.obj(id)
	return o != nil && o.Pos() >= c.rng.Pos() && o.Pos() < c.rng.End()
}

// rootIdent returns the base identifier of a selector/index/deref chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// assignableTarget reports whether a plain assignment to e commutes:
// targets rooted in loop-locals always do; outer targets only under a
// guard (guarded selections are assumed to be max/min-style reductions).
func (c *checker) assignableTarget(e ast.Expr, requireGuard bool) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	if c.local(root) {
		return true
	}
	if !requireGuard {
		return true // x++ on an outer counter commutes
	}
	// An unguarded plain write to outer state is last-write-wins; under an
	// if it is read as a guarded reduction.
	return c.guarded(e)
}

// guarded reports whether pos lies inside an if statement within the loop
// body.
func (c *checker) guarded(e ast.Expr) bool {
	found := false
	ast.Inspect(c.rng.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || found {
			return !found
		}
		if e.Pos() >= ifs.Body.Pos() && e.Pos() < ifs.Body.End() {
			found = true
		}
		return !found
	})
	return found
}

// commutativeTarget reports whether compound accumulation into e is
// order-insensitive: any loop-local target, or an outer target of
// non-float type (float rounding depends on summation order).
func (c *checker) commutativeTarget(e ast.Expr) bool {
	root := rootIdent(e)
	if root == nil {
		return false
	}
	if c.local(root) {
		return true
	}
	t := c.pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat == 0 && b.Info()&types.IsComplex == 0
}

// pure reports whether evaluating e has no effects beyond allocation:
// no calls except conversions and the pure builtins, no channel
// receives, no function literals.
func (c *checker) pure(e ast.Expr) bool {
	if e == nil {
		return true
	}
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !pure {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if analysis.IsConversion(c.pass.TypesInfo, n) {
				return true
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "len", "cap", "append", "make", "new", "min", "max":
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pure = false
				return false
			}
		case *ast.FuncLit:
			pure = false
			return false
		}
		return true
	})
	return pure
}
