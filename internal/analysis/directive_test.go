package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"switchflow/internal/analysis"
)

func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dir.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// TestMalformedDirectives checks that every malformed //swlint: shape is
// itself a finding: a suppression that silently does nothing is worse
// than none at all.
func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		wantMsg string
	}{
		{"unknown verb", "//swlint:deny simclock reason", "unknown swlint directive //swlint:deny"},
		{"missing analyzer", "//swlint:allow", "missing an analyzer name"},
		{"unknown analyzer", "//swlint:allow nosuchcheck some reason", "unknown analyzer nosuchcheck"},
		{"missing reason", "//swlint:allow simclock", "missing a reason"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, files := parseOne(t, "package p\n\n"+tc.comment+"\nvar x int\n")
			_, bad := analysis.CollectDirectives(fset, files, []string{"simclock"})
			if len(bad) != 1 {
				t.Fatalf("got %d findings, want 1: %v", len(bad), bad)
			}
			if bad[0].Analyzer != "directive" {
				t.Errorf("finding analyzer = %q, want %q", bad[0].Analyzer, "directive")
			}
			if !strings.Contains(bad[0].Message, tc.wantMsg) {
				t.Errorf("finding message %q does not contain %q", bad[0].Message, tc.wantMsg)
			}
		})
	}
}

// TestDirectiveSuppression checks the reach of a well-formed directive:
// its own line (trailing form), the next line (standalone form), and
// nothing else — and only for the named analyzer.
func TestDirectiveSuppression(t *testing.T) {
	src := `package p

//swlint:allow simclock reason one
var a int
var b int
`
	fset, files := parseOne(t, src)
	dirs, bad := analysis.CollectDirectives(fset, files, []string{"simclock", "detrand"})
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed-directive findings: %v", bad)
	}
	at := func(line int) token.Position {
		return token.Position{Filename: "dir.go", Line: line}
	}
	if !dirs.Suppressed("simclock", at(3)) {
		t.Error("directive line itself not suppressed")
	}
	if !dirs.Suppressed("simclock", at(4)) {
		t.Error("line below directive not suppressed")
	}
	if dirs.Suppressed("simclock", at(5)) {
		t.Error("two lines below directive wrongly suppressed")
	}
	if dirs.Suppressed("detrand", at(4)) {
		t.Error("directive suppressed a different analyzer")
	}
	if dirs.Suppressed("simclock", token.Position{Filename: "other.go", Line: 4}) {
		t.Error("directive suppressed a different file")
	}
}

// TestRunSuppression drives the whole pipeline: a toy analyzer that
// flags every function declaration, with one decl carrying an allow
// directive.
func TestRunSuppression(t *testing.T) {
	src := `package p

func flagged() {}

//swlint:allow toy this one is fine
func allowed() {}
`
	fset, files := parseOne(t, src)
	toy := &analysis.Analyzer{
		Name: "toy",
		Doc:  "flags every function declaration",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok {
						pass.Reportf(fd.Pos(), "function %s", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
	findings, err := analysis.Run(fset, files, nil, nil, []*analysis.Analyzer{toy}, []string{"toy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Message != "function flagged" || f.Analyzer != "toy" || f.Position.Line != 3 {
		t.Errorf("unexpected finding: %+v", f)
	}
	want := "dir.go:3:1: toy: function flagged"
	if f.String() != want {
		t.Errorf("finding.String() = %q, want %q", f.String(), want)
	}
}
