package analysis

// Generic intraprocedural forward dataflow over a CFG. Analyzers supply
// the lattice (join, equality) and the block transfer function; Forward
// iterates a worklist to the fixpoint and returns each reachable block's
// IN state. Blocks unreachable from the entry get no state and should not
// be reported on — dead code cannot execute, so it cannot violate a flow
// invariant.

// Forward computes the fixpoint of a forward dataflow problem.
//
//   - entry is the state on function entry.
//   - join merges two states at a control-flow merge; it must be
//     commutative and associative (the analysis result must not depend on
//     edge order) and must not mutate its arguments.
//   - equal detects convergence.
//   - transfer applies one block's effects to a state; it must not mutate
//     its input (return a fresh or copied state).
func Forward[S any](c *CFG, entry S, join func(a, b S) S, equal func(a, b S) bool, transfer func(b *Block, in S) S) map[*Block]S {
	in := make(map[*Block]S, len(c.Blocks))
	in[c.Entry] = entry
	// The worklist is a queue of block indices; seen tracks membership so
	// a block queues at most once per change.
	queued := make([]bool, len(c.Blocks))
	worklist := []*Block{c.Entry}
	queued[c.Entry.Index] = true
	for len(worklist) > 0 {
		b := worklist[0]
		worklist = worklist[1:]
		queued[b.Index] = false
		out := transfer(b, in[b])
		for _, s := range b.Succs {
			cur, ok := in[s]
			next := out
			if ok {
				next = join(cur, out)
				if equal(next, cur) {
					continue
				}
			}
			in[s] = next
			if !queued[s.Index] {
				queued[s.Index] = true
				worklist = append(worklist, s)
			}
		}
	}
	return in
}
