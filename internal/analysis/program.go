package analysis

// Program is the whole-module view behind the flow-aware analyzers: every
// loaded package, a static call graph over declared functions, and a
// per-analyzer fact store in the spirit of go/analysis facts. Analyzers
// that need cross-package knowledge (which functions emit which events,
// which functions are barrier hooks) export facts during their Collect
// phase — which RunProgram drives over every package before any Run — and
// import them, or walk the call graph, during Run.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PackageUnit is one type-checked package handed to NewProgram (the
// analysis-side mirror of load.Package, so this package does not depend
// on the loader).
type PackageUnit struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Program is the analysis view of the whole module (or, in tests, of a
// single testdata package).
type Program struct {
	Fset     *token.FileSet
	Packages []*PackageUnit

	// callees is the static call graph: for every declared function with
	// a body, the set of declared functions it may call. Calls inside
	// function literals are attributed to the enclosing declaration —
	// closures run with their encloser's responsibilities.
	callees map[*types.Func]map[*types.Func]bool
	// declOf maps a function object to its declaration (functions with
	// bodies in the loaded packages only).
	declOf map[*types.Func]*ast.FuncDecl
	// funcOrder lists declared functions in deterministic (position)
	// order, for fact iteration that must not depend on map order.
	funcOrder []*types.Func

	facts map[string]map[*types.Func]any
}

// NewProgram indexes the packages: declared functions, the static call
// graph, and an empty fact store.
func NewProgram(fset *token.FileSet, units []*PackageUnit) *Program {
	p := &Program{
		Fset:     fset,
		Packages: units,
		callees:  make(map[*types.Func]map[*types.Func]bool),
		declOf:   make(map[*types.Func]*ast.FuncDecl),
		facts:    make(map[string]map[*types.Func]any),
	}
	for _, u := range units {
		if u.Info == nil {
			continue // syntax-only unit (directive tests); no call graph
		}
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.declOf[fn] = fd
				p.funcOrder = append(p.funcOrder, fn)
				set := make(map[*types.Func]bool)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeFunc(u.Info, call); callee != nil {
						set[callee] = true
					}
					return true
				})
				p.callees[fn] = set
			}
		}
	}
	sort.Slice(p.funcOrder, func(i, j int) bool {
		return p.funcOrder[i].Pos() < p.funcOrder[j].Pos()
	})
	return p
}

// Funcs returns every declared function with a body, in deterministic
// source-position order.
func (p *Program) Funcs() []*types.Func {
	return p.funcOrder
}

// DeclOf returns the declaration of fn, or nil if fn has no body in the
// loaded packages.
func (p *Program) DeclOf(fn *types.Func) *ast.FuncDecl { return p.declOf[fn] }

// Callees returns the functions fn may call (static calls only, closures
// folded into their encloser), in deterministic order.
func (p *Program) Callees(fn *types.Func) []*types.Func {
	set := p.callees[fn]
	out := make([]*types.Func, 0, len(set))
	for callee := range set {
		out = append(out, callee)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos() != out[j].Pos() {
			return out[i].Pos() < out[j].Pos()
		}
		return out[i].FullName() < out[j].FullName()
	})
	return out
}

// ReachableFrom returns the transitive closure of seeds over the call
// graph (seeds included). The result is a set; membership does not depend
// on traversal order.
func (p *Program) ReachableFrom(seeds []*types.Func) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	work := append([]*types.Func(nil), seeds...)
	for len(work) > 0 {
		fn := work[len(work)-1]
		work = work[:len(work)-1]
		if fn == nil || reach[fn] {
			continue
		}
		reach[fn] = true
		work = append(work, p.Callees(fn)...)
	}
	return reach
}

// ExportFact records an analyzer-scoped fact about fn, overwriting any
// previous fact by the same analyzer. Facts are how the Collect phase
// publishes per-function knowledge (e.g. "may emit KindPreempt") for
// every Run to import, whichever package it is analyzing.
func (p *Pass) ExportFact(fn *types.Func, fact any) {
	if p.Prog == nil || fn == nil {
		return
	}
	m := p.Prog.facts[p.Analyzer.Name]
	if m == nil {
		m = make(map[*types.Func]any)
		p.Prog.facts[p.Analyzer.Name] = m
	}
	m[fn] = fact
}

// ImportFact retrieves the fact this pass's analyzer exported for fn.
func (p *Pass) ImportFact(fn *types.Func) (any, bool) {
	if p.Prog == nil {
		return nil, false
	}
	fact, ok := p.Prog.facts[p.Analyzer.Name][fn]
	return fact, ok
}

// FactFuncs returns the functions this pass's analyzer exported facts
// for, in deterministic source-position order.
func (p *Pass) FactFuncs() []*types.Func {
	if p.Prog == nil {
		return nil
	}
	m := p.Prog.facts[p.Analyzer.Name]
	out := make([]*types.Func, 0, len(m))
	for fn := range m {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos() != out[j].Pos() {
			return out[i].Pos() < out[j].Pos()
		}
		return out[i].FullName() < out[j].FullName()
	})
	return out
}
