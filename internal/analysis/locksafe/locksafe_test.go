package locksafe_test

import (
	"testing"

	"switchflow/internal/analysis/analysistest"
	"switchflow/internal/analysis/locksafe"
)

func TestLocksafe(t *testing.T) {
	analysistest.Run(t, locksafe.Analyzer, "locksafe")
}
