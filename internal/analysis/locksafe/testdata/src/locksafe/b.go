// Epoch-barrier fan-out — the shard.Group idiom: engines advance on
// worker goroutines with no shared mutable state, then barrier hooks run
// serially on the caller's goroutine. The pattern is lock-free by
// design; the analyzer must stay quiet on it, and must still flag a
// barrier hook that reintroduces callback-under-lock.
package locksafe

import "sync"

type engine struct{ now int64 }

func (e *engine) runUntil(t int64) { e.now = t }

type group struct {
	engines  []*engine
	now      int64
	epoch    int64
	barriers []func(now int64)
}

// advance is the shard.Group shape: parallel strides between barriers,
// hooks after the wait. No locks anywhere — determinism comes from the
// barrier, not mutual exclusion — so locksafe reports nothing.
func (g *group) advance(t int64) {
	for g.now < t {
		next := g.now + g.epoch
		if next > t {
			next = t
		}
		var wg sync.WaitGroup
		for _, e := range g.engines {
			wg.Add(1)
			go func(e *engine) {
				defer wg.Done()
				e.runUntil(next)
			}(e)
		}
		wg.Wait()
		g.now = next
		for _, fn := range g.barriers {
			fn(g.now)
		}
	}
}

// lockedGroup wraps the same shape in a mutex "for safety" — and then
// runs the barrier hooks while holding it, the classic re-entrancy
// deadlock: a hook that submits work (and so re-enters the group) hangs.
type lockedGroup struct {
	mu       sync.Mutex
	now      int64
	barriers []func(now int64)
}

func (g *lockedGroup) advance(t int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.now = t
	for _, fn := range g.barriers {
		fn(g.now) // want `calls a function value while holding g\.mu`
	}
}

// snapshotThenFire is the corrected locked variant: hooks are copied
// under the lock and invoked after release.
func (g *lockedGroup) snapshotThenFire(t int64) {
	g.mu.Lock()
	g.now = t
	hooks := make([]func(int64), len(g.barriers))
	copy(hooks, g.barriers)
	now := g.now
	g.mu.Unlock()
	for _, fn := range hooks {
		fn(now)
	}
}
