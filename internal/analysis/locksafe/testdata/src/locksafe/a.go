// Package locksafe exercises the locksafe analyzer: leaked locks,
// callbacks and HTTP response writes under a held mutex, and by-value
// lock copies are flagged; the unlocked equivalents are not.
package locksafe

import (
	"encoding/json"
	"net/http"
	"sync"
)

type server struct {
	mu   sync.Mutex
	n    int
	hook func()
}

// leak locks and never unlocks.
func (s *server) leak() {
	s.mu.Lock() // want `s\.mu\.Lock has no matching Unlock`
	s.n++
}

// balanced is the ordinary safe shape.
func (s *server) balanced() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
}

// callbackUnderLock invokes a stored function value while holding the
// lock; if the callback re-locks, the server deadlocks.
func (s *server) callbackUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook() // want `calls a function value while holding s\.mu`
}

// callbackAfterUnlock snapshots the callback under the lock and invokes
// it after releasing — the safe shape.
func (s *server) callbackAfterUnlock() {
	s.mu.Lock()
	hook := s.hook
	s.mu.Unlock()
	if hook != nil {
		hook()
	}
}

// statusUnderLock writes the response while holding the lock, so one
// slow client stalls every other request.
func (s *server) statusUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = json.NewEncoder(w).Encode(s.n) // want `writes an HTTP response while holding s\.mu`
}

// statusAfter builds the payload under the lock and writes after.
func (s *server) statusAfter(w http.ResponseWriter) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	_ = json.NewEncoder(w).Encode(n)
}

// lockAndReturn intentionally returns holding the lock; the directive
// names the contract.
func (s *server) lockAndReturn() {
	//swlint:allow locksafe returns locked by contract; the caller must call unlockNow
	s.mu.Lock()
	s.n++
}

func (s *server) unlockNow() {
	s.mu.Unlock()
}

type guarded struct {
	mu sync.Mutex
	n  int
}

// copyParam takes the lock-bearing struct by value.
func copyParam(g guarded) int { // want `parameter passes .*guarded by value \(contains sync\.Mutex\)`
	return g.n
}

// copyRange copies the struct into the range value each iteration.
func copyRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies .*guarded \(contains sync\.Mutex\)`
		total += g.n
	}
	return total
}

// copyDeref copies the struct out of a pointer.
func copyDeref(p *guarded) {
	g := *p // want `assignment copies .*guarded \(contains sync\.Mutex\)`
	_ = g
}

// pointersFine moves lock-bearing state the legal way.
func pointersFine(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}
