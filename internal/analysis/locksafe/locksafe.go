// Package locksafe checks the concurrency surface (the HTTP control
// plane and the parallel experiment harness) for three mutex hazards:
//
//  1. Leaked locks: a function that calls X.Lock() (or RLock) must also
//     unlock X — via defer or explicitly — in the same function. Helpers
//     that intentionally return holding the lock carry
//     //swlint:allow locksafe <reason>.
//
//  2. Work under the lock that can re-enter or block indefinitely:
//     - calling a function *value* (parameter, field, stored callback)
//       while a mutex is held — the callback may try to take the same
//       lock, and the single-threaded simulation behind the control
//       plane deadlocks;
//     - writing an HTTP response while a mutex is held — the write
//       blocks on the client's socket, so one slow reader stalls every
//       other request on the control plane. Build the payload under the
//       lock; write after unlocking.
//
//  3. Mutex copies: passing or copying a sync.Mutex (or a struct
//     containing one) by value splits the critical section in two. This
//     overlaps go vet's copylocks on purpose — swlint also runs on
//     configurations where vet is skipped, and the testdata documents
//     the rule next to the others.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"switchflow/internal/analysis"
)

// Analyzer is the locksafe check.
var Analyzer = &analysis.Analyzer{
	Name: "locksafe",
	Doc:  "mutex hygiene: no leaked locks, no callbacks or response writes under a held lock, no mutex copies",
	Run:  run,
}

// lockTypes are the sync types whose value-copy or leak is reported.
var lockTypes = map[string]bool{
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.Once":      true,
	"sync.WaitGroup": true,
	"sync.Cond":      true,
}

// mutexTypes are the subset with Lock/Unlock pairs tracked by the
// held-region checks.
var mutexTypes = map[string]bool{
	"sync.Mutex":   true,
	"sync.RWMutex": true,
}

var unlockOf = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkBody(pass, n.Type, n.Body)
			case *ast.RangeStmt:
				checkRangeCopy(pass, n)
			case *ast.AssignStmt:
				checkAssignCopy(pass, n)
			}
			return true
		})
	}
	return nil
}

// lockCall matches a call to a mutex's Lock/RLock/Unlock/RUnlock and
// returns the receiver's printed form as a key.
func lockCall(pass *analysis.Pass, call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	t := pass.TypesInfo.Types[sel.X].Type
	if t == nil {
		return "", "", false
	}
	path, named := analysis.NamedTypePath(t)
	if !named || !mutexTypes[path] {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkBody runs the leak and held-region checks over one function body,
// treating nested function literals as separate scopes.
func checkBody(pass *analysis.Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	checkSignatureCopy(pass, ftype)

	type lockSite struct {
		pos    token.Pos
		recv   string
		method string
	}
	var locks []lockSite
	type unlockSite struct {
		pos      token.Pos
		recv     string
		method   string
		deferred bool
	}
	var unlocks []unlockSite

	ownStmts(body, func(n ast.Node, inDefer bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, method, ok := lockCall(pass, call)
		if !ok {
			return
		}
		switch method {
		case "Lock", "RLock":
			locks = append(locks, lockSite{call.Pos(), recv, method})
		case "Unlock", "RUnlock":
			unlocks = append(unlocks, unlockSite{call.Pos(), recv, method, inDefer})
		}
	})

	for _, l := range locks {
		want := unlockOf[l.method]
		// The held region runs from the Lock to the first later matching
		// non-deferred Unlock, or to the end of the function when the
		// unlock is deferred (or missing).
		end := body.End()
		found := false
		for _, u := range unlocks {
			if u.recv != l.recv || u.method != want {
				continue
			}
			found = true
			if !u.deferred && u.pos > l.pos && u.pos < end {
				end = u.pos
			}
		}
		if !found {
			pass.Reportf(l.pos,
				"%s.%s has no matching %s in this function; a leaked lock wedges every later caller", l.recv, l.method, want)
			continue
		}
		checkHeldRegion(pass, body, l.recv, l.pos, end)
	}
}

// checkHeldRegion flags calls inside [from, to) that must not run while
// recv's mutex is held.
func checkHeldRegion(pass *analysis.Pass, body *ast.BlockStmt, recv string, from, to token.Pos) {
	ownStmts(body, func(n ast.Node, inDefer bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= from || call.Pos() >= to {
			return
		}
		if _, _, isLockOp := lockCall(pass, call); isLockOp {
			return
		}
		if analysis.IsConversion(pass.TypesInfo, call) {
			return
		}
		// Response writes under the lock: any argument or receiver typed
		// http.ResponseWriter.
		for _, arg := range call.Args {
			if isResponseWriter(pass, arg) {
				pass.Reportf(call.Pos(),
					"writes an HTTP response while holding %s; a slow client blocks the whole control plane — build the payload under the lock and write after unlocking", recv)
				return
			}
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isResponseWriter(pass, sel.X) {
			pass.Reportf(call.Pos(),
				"writes an HTTP response while holding %s; a slow client blocks the whole control plane — build the payload under the lock and write after unlocking", recv)
			return
		}
		// Dynamic calls under the lock: function values can re-enter.
		if isDynamicCall(pass, call) {
			pass.Reportf(call.Pos(),
				"calls a function value while holding %s; a callback that re-locks it deadlocks — invoke callbacks after unlocking", recv)
		}
	})
}

// isDynamicCall reports whether call invokes a function value (parameter,
// field, variable) rather than a declared function, method, builtin,
// conversion, or immediately invoked literal.
func isDynamicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if _, ok := fun.(*ast.FuncLit); ok {
		return false
	}
	if analysis.IsConversion(pass.TypesInfo, call) {
		return false
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			return false
		}
	}
	if analysis.CalleeFunc(pass.TypesInfo, call) != nil {
		return false
	}
	t := pass.TypesInfo.Types[fun].Type
	if t == nil {
		return false
	}
	_, isSig := t.Underlying().(*types.Signature)
	return isSig
}

func isResponseWriter(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.Types[e].Type
	if t == nil {
		return false
	}
	path, ok := analysis.NamedTypePath(t)
	return ok && path == "net/http.ResponseWriter"
}

// ownStmts walks the nodes of a function body without descending into
// nested function literals (separate lock scopes), reporting whether each
// node sits under a defer statement.
func ownStmts(body *ast.BlockStmt, fn func(n ast.Node, inDefer bool)) {
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.DeferStmt:
			fn(n.Call, true)
			for _, arg := range n.Call.Args {
				walk(arg, true)
			}
			return
		}
		fn(n, inDefer)
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil || child == n {
				return true
			}
			switch child.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				walk(child, inDefer)
				return false
			}
			fn(child, inDefer)
			return true
		})
	}
	for _, s := range body.List {
		walk(s, false)
	}
}

// --- mutex copy checks ---

// checkSignatureCopy flags parameters and results that carry a lock by
// value.
func checkSignatureCopy(pass *analysis.Pass, ftype *ast.FuncType) {
	fields := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.TypesInfo.Types[f.Type].Type
			if t == nil {
				continue
			}
			if name, bad := containsLock(t); bad {
				pass.Reportf(f.Type.Pos(),
					"%s passes %s by value (contains %s); copying a lock splits its critical section — use a pointer", kind, t.String(), name)
			}
		}
	}
	fields(ftype.Params, "parameter")
	fields(ftype.Results, "result")
}

// checkRangeCopy flags range loops whose value variable copies a lock.
func checkRangeCopy(pass *analysis.Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	t := exprType(pass, rs.Value)
	if t == nil {
		return
	}
	if name, bad := containsLock(t); bad {
		pass.Reportf(rs.Value.Pos(),
			"range value copies %s (contains %s) each iteration; iterate by index or store pointers", t.String(), name)
	}
}

// checkAssignCopy flags assignments that copy a lock-bearing value out of
// a dereference, field, or element (fresh composite literals are fine).
func checkAssignCopy(pass *analysis.Pass, s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue
		}
		t := pass.TypesInfo.Types[rhs].Type
		if t == nil {
			continue
		}
		if name, bad := containsLock(t); bad {
			pass.Reportf(rhs.Pos(),
				"assignment copies %s (contains %s); copying a lock splits its critical section — use a pointer", t.String(), name)
		}
	}
}

// exprType resolves an expression's type, falling back to the ident's
// object for `:=`-defined names (recorded in Defs, not Types).
func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if o := pass.TypesInfo.Defs[id]; o != nil {
			return o.Type()
		}
		if o := pass.TypesInfo.Uses[id]; o != nil {
			return o.Type()
		}
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// containsLock reports whether t holds one of the sync lock types by
// value, naming the offending type.
func containsLock(t types.Type) (string, bool) {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true
	if path, ok := analysis.NamedTypePath(t); ok && lockTypes[path] {
		if _, isPtr := t.(*types.Pointer); !isPtr {
			return path, true
		}
		return "", false
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, bad := containsLockSeen(u.Field(i).Type(), seen); bad {
				return name, true
			}
		}
	case *types.Array:
		return containsLockSeen(u.Elem(), seen)
	}
	return "", false
}
