// Package simclock exercises the simclock analyzer: wall-clock reads
// are flagged, virtual-time arithmetic on time.Duration is not, and an
// //swlint:allow directive silences an intentional read.
package simclock

import (
	"fmt"
	"time"
)

// bad hits every forbidden wall-clock entry point.
func bad() {
	start := time.Now()            // want `time\.Now reads the wall clock`
	time.Sleep(time.Second)        // want `time\.Sleep reads the wall clock`
	fmt.Println(time.Since(start)) // want `time\.Since reads the wall clock`
	fmt.Println(time.Until(start)) // want `time\.Until reads the wall clock`
	<-time.After(time.Second)      // want `time\.After reads the wall clock`
	_ = time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
	_ = time.Tick(time.Second)     // want `time\.Tick reads the wall clock`
}

// good uses time only as a unit: the simulation measures virtual time
// in time.Duration, which never touches the wall clock.
func good(millis int) time.Duration {
	d := time.Duration(millis) * time.Millisecond
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	_ = d.Seconds()
	return d
}

// goodParse reaches for non-clock time helpers, which stay legal.
func goodParse() (time.Duration, error) {
	return time.ParseDuration("150ms")
}

// allowedTrailing suppresses with a trailing directive on the same line.
func allowedTrailing() time.Time {
	return time.Now() //swlint:allow simclock wall clock feeds a stderr progress line only
}

// allowedStandalone suppresses the line below a standalone directive.
func allowedStandalone() {
	//swlint:allow simclock http server deadline, not simulation time
	time.Sleep(time.Millisecond)
}
