// Epoch-barrier virtual-time advance — the shard.Group idiom. The loop
// is pure virtual-time arithmetic (Duration comparisons, stride
// addition), which the analyzer must not confuse with wall-clock reads;
// a "progress heartbeat" that reaches for the wall clock inside the
// barrier is still flagged.
package simclock

import "time"

type shardEngine struct{ now time.Duration }

func (e *shardEngine) runUntil(t time.Duration) { e.now = t }

type shardGroup struct {
	engines  []*shardEngine
	now      time.Duration
	epoch    time.Duration
	barriers []func(now time.Duration)
}

// runUntil advances in epoch strides entirely on virtual time: clean.
func (g *shardGroup) runUntil(t time.Duration) {
	for g.now < t {
		next := g.now + g.epoch
		if next > t {
			next = t
		}
		for _, e := range g.engines {
			e.runUntil(next)
		}
		g.now = next
		for _, fn := range g.barriers {
			fn(g.now)
		}
	}
}

// heartbeatBarrier sneaks a wall-clock read into a barrier hook — the
// exact contamination the epoch-barrier contract forbids (barrier
// decisions must be functions of virtual state only).
func (g *shardGroup) heartbeatBarrier() {
	g.barriers = append(g.barriers, func(now time.Duration) {
		_ = time.Now() // want `time\.Now reads the wall clock`
	})
}

// benchBarrier measures host wall time around an epoch for a benchmark
// artifact, never feeding it back into simulation state: allowed, with
// the directive saying why.
func (g *shardGroup) benchBarrier(out *time.Duration) {
	g.barriers = append(g.barriers, func(now time.Duration) {
		//swlint:allow simclock benchmark harness measures host wall time; never a simulation input
		*out = time.Since(time.Unix(0, 0))
	})
}
