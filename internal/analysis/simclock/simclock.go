// Package simclock forbids wall-clock reads in simulated code. All time
// inside the simulated world must flow from the virtual clock
// (sim.Engine.Now / Schedule / After): a single time.Now or time.Sleep in
// a scheduler, device, executor, or workload path silently breaks the
// serial-vs-parallel byte-identity the experiment harness guarantees,
// because wall time differs run to run and across worker goroutines.
//
// Flagged: calls to time.Now, time.Since, time.Until, time.Sleep,
// time.After, time.AfterFunc, time.Tick, time.NewTimer and
// time.NewTicker. time.Duration values and arithmetic are fine — the
// simulation measures virtual time in time.Duration.
//
// Legitimate wall-clock uses (harness elapsed-time reporting on stderr,
// HTTP server deadlines) carry //swlint:allow simclock <reason>.
package simclock

import (
	"go/ast"

	"switchflow/internal/analysis"
)

// forbidden maps each banned time function to the virtual-time
// replacement named in the diagnostic.
var forbidden = map[string]string{
	"Now":       "sim.Engine.Now",
	"Since":     "subtraction of sim.Engine.Now values",
	"Until":     "subtraction of sim.Engine.Now values",
	"Sleep":     "sim.Engine.After",
	"After":     "sim.Engine.After",
	"AfterFunc": "sim.Engine.After",
	"Tick":      "a rescheduling sim.Engine.After callback",
	"NewTimer":  "sim.Engine.After",
	"NewTicker": "a rescheduling sim.Engine.After callback",
}

// Analyzer is the simclock check.
var Analyzer = &analysis.Analyzer{
	Name: "simclock",
	Doc:  "forbid wall-clock reads (time.Now etc.); simulated components take time from the virtual clock",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := analysis.PkgCall(pass.TypesInfo, call, "time")
			if !ok {
				return true
			}
			if repl, bad := forbidden[name]; bad {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock, which breaks deterministic replay; use %s (virtual time)", name, repl)
			}
			return true
		})
	}
	return nil
}
