package simclock_test

import (
	"testing"

	"switchflow/internal/analysis/analysistest"
	"switchflow/internal/analysis/simclock"
)

func TestSimclock(t *testing.T) {
	analysistest.Run(t, simclock.Analyzer, "simclock")
}
