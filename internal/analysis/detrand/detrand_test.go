package detrand_test

import (
	"testing"

	"switchflow/internal/analysis/analysistest"
	"switchflow/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, detrand.Analyzer, "detrand")
}
