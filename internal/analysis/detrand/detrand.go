// Package detrand forbids nondeterministic or shared randomness. Every
// random draw in the simulation must come from a locally owned *rand.Rand
// seeded from a spec or plan seed — the way internal/fault derives its
// injection schedule from FaultPlan.Seed and internal/workload derives
// Poisson arrivals from ArrivalSeed. Two rules:
//
//  1. Top-level math/rand (and math/rand/v2) functions are banned: they
//     draw from process-global state, so concurrent experiment cells
//     steal draws from each other and no run is reproducible. rand.Seed
//     is banned for the same reason — it mutates the shared source.
//
//  2. Constant seeds are banned in source constructors (rand.NewSource,
//     rand.NewPCG, rand.NewChaCha8): a literal seed hard-wires one
//     stream into the binary, which correlates components that are
//     supposed to sample independently and hides the seed from sweep
//     configuration. Seeds must flow in from a spec, plan, or flag.
//     Deliberate fixed seeds carry //swlint:allow detrand <reason>.
package detrand

import (
	"go/ast"

	"switchflow/internal/analysis"
)

// constructors are the math/rand entry points allowed at top level —
// everything else on the package is shared-state.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 additions.
	"NewPCG":     true,
	"NewChaCha8": true,
	"N":          false, // v2 top-level generic draw — still global state
}

// seedSources are the constructors whose arguments are seeds.
var seedSources = map[string]bool{
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand state and constant seeds; randomness must be a locally owned *rand.Rand seeded from a spec/plan seed",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, pkg := range []string{"math/rand", "math/rand/v2"} {
				name, ok := analysis.PkgCall(pass.TypesInfo, call, pkg)
				if !ok {
					continue
				}
				if !constructors[name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the process-global source, which is shared across experiment cells and unseeded; use a locally owned *rand.Rand seeded from the spec/plan seed", name)
					return true
				}
				if seedSources[name] && allConstant(pass, call.Args) {
					pass.Reportf(call.Pos(),
						"rand.%s with a constant seed bakes one fixed stream into the binary; derive the seed from a spec/plan seed so runs are configurable and components sample independently", name)
				}
				return true
			}
			return true
		})
	}
	return nil
}

// allConstant reports whether every argument is a compile-time constant
// (and there is at least one argument).
func allConstant(pass *analysis.Pass, args []ast.Expr) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		tv, ok := pass.TypesInfo.Types[a]
		if !ok || tv.Value == nil {
			return false
		}
	}
	return true
}
