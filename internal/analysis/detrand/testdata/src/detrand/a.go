// Package detrand exercises the detrand analyzer: top-level math/rand
// draws and constant seeds are flagged; locally owned generators seeded
// from configuration are not.
package detrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// Spec models a config-sourced seed, the blessed way in.
type Spec struct{ Seed int64 }

// bad draws from the process-global source.
func bad() {
	_ = rand.Intn(10)                  // want `rand\.Intn draws from the process-global source`
	_ = rand.Float64()                 // want `rand\.Float64 draws from the process-global source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle draws from the process-global source`
	_ = randv2.IntN(10)                // want `rand\.IntN draws from the process-global source`
}

// constSeed hard-wires one stream into the binary.
func constSeed() {
	_ = rand.New(rand.NewSource(42)) // want `rand\.NewSource with a constant seed`
	_ = randv2.NewPCG(1, 2)          // want `rand\.NewPCG with a constant seed`
}

// good owns its generator and takes the seed from the spec.
func good(spec Spec) int {
	rng := rand.New(rand.NewSource(spec.Seed))
	return rng.Intn(10)
}

// goodDerived may transform the configured seed arbitrarily.
func goodDerived(spec Spec, cell int) *rand.Rand {
	return rand.New(rand.NewSource(spec.Seed + int64(cell)*7919))
}

// allowed pins a seed on purpose and says why.
func allowed() *rand.Rand {
	//swlint:allow detrand fixed seed keeps the percentile reservoir replayable
	return rand.New(rand.NewSource(7))
}
