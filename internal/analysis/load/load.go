// Package load type-checks Go packages from source using only the
// standard library. It is the substrate for cmd/swlint and the
// analysistest harness: the container this repository builds in has no
// module proxy access, so golang.org/x/tools/go/packages is unavailable
// and dependencies are resolved by hand — module-local import paths map
// onto directories under the module root, everything else resolves into
// GOROOT/src (with the stdlib's vendored modules under GOROOT/src/vendor).
//
// Packages under analysis are checked with full function bodies and a
// populated types.Info; dependencies are checked exports-only
// (IgnoreFuncBodies), which keeps a whole-repo run — including the
// net/http and go/types trees — around a second. Cgo is disabled in the
// file-selection context so that packages like net type-check from their
// pure-Go fallback files.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("switchflow/internal/core").
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Files are the parsed non-test Go files, in file-name order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type information for Files.
	Info *types.Info
}

// Loader loads and type-checks packages. It caches dependencies, so one
// Loader amortizes the stdlib across many Load calls.
type Loader struct {
	ctxt       build.Context
	fset       *token.FileSet
	moduleDir  string
	modulePath string
	deps       map[string]*types.Package
	// local caches module-local packages, which are always checked in full
	// — a single types.Package instance per path, whether the package is
	// being analyzed or merely imported. Mixing a full and an exports-only
	// instance of the same path would make identical named types compare
	// unequal in importers' eyes.
	local   map[string]*Package
	loading map[string]bool
}

// New returns a Loader rooted at the module directory. modulePath is the
// module's import path from go.mod (e.g. "switchflow"); moduleDir may be
// empty for loaders that only check free-standing directories (testdata).
func New(moduleDir, modulePath string) *Loader {
	ctxt := build.Default
	ctxt.CgoEnabled = false
	return &Loader{
		ctxt:       ctxt,
		fset:       token.NewFileSet(),
		moduleDir:  moduleDir,
		modulePath: modulePath,
		deps:       make(map[string]*types.Package),
		local:      make(map[string]*Package),
		loading:    make(map[string]bool),
	}
}

// Fset returns the loader's file set; positions in every loaded package
// resolve through it.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer for dependency resolution.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.deps[path]; ok {
		return pkg, nil
	}
	if l.isLocal(path) {
		pkg, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, _, _, err := l.check(dir, path, false)
	if err != nil {
		return nil, err
	}
	l.deps[path] = pkg
	return pkg, nil
}

// isLocal reports whether path names a package of the module itself.
func (l *Loader) isLocal(path string) bool {
	return l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/"))
}

// loadLocal fully checks (or returns the cached) module-local package.
func (l *Loader) loadLocal(path string) (*Package, error) {
	if pkg, ok := l.local[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	pkg, files, info, err := l.check(dir, path, true)
	if err != nil {
		return nil, err
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: pkg, Info: info}
	l.local[path] = p
	return p, nil
}

// dirFor resolves an import path to a source directory.
func (l *Loader) dirFor(path string) (string, error) {
	if l.modulePath != "" && (path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		return filepath.Join(l.moduleDir, filepath.FromSlash(rel)), nil
	}
	goroot := l.ctxt.GOROOT
	for _, base := range []string{
		filepath.Join(goroot, "src"),
		filepath.Join(goroot, "src", "vendor"),
	} {
		dir := filepath.Join(base, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q (not in module %q or GOROOT)", path, l.modulePath)
}

// check parses and type-checks the package in dir. full selects
// function-body checking and types.Info collection (for packages under
// analysis); dependencies use exports-only mode.
func (l *Loader) check(dir, path string, full bool) (*types.Package, []*ast.File, *types.Info, error) {
	bp, err := l.ctxt.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if full {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
	}
	var firstErr error
	conf := types.Config{
		Importer:         l,
		IgnoreFuncBodies: !full,
		FakeImportC:      true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, nil, nil, fmt.Errorf("typecheck %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return pkg, files, info, nil
}

// LoadDir fully type-checks the single package in dir under the given
// import path (which need not be resolvable — testdata packages use their
// directory name).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if l.isLocal(path) {
		return l.loadLocal(path)
	}
	pkg, files, info, err := l.check(dir, path, true)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: pkg, Info: info}, nil
}

// LoadModule fully type-checks every package of the module, in import-path
// order. Directories named testdata, hidden directories, and directories
// without buildable Go files are skipped, matching the go tool's own
// package walk.
func (l *Loader) LoadModule() ([]*Package, error) {
	if l.moduleDir == "" {
		return nil, fmt.Errorf("loader has no module root")
	}
	var dirs []string
	err := filepath.WalkDir(l.moduleDir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.moduleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		if _, err := l.ctxt.ImportDir(dir, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				continue
			}
			return nil, err
		}
		rel, err := filepath.Rel(l.moduleDir, dir)
		if err != nil {
			return nil, err
		}
		path := l.modulePath
		if rel != "." {
			path = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// ModuleRoot walks up from dir to the nearest directory containing go.mod
// and returns it with the module path parsed from the file.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if after, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(after), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
