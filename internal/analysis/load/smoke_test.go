package load

import "testing"

// TestSmokeLoadModule type-checks the whole module through the loader —
// the same path cmd/swlint takes. It pins the properties the analyzers
// depend on: every package loads with full type information, and the
// package list is sorted so findings print in a stable order.
func TestSmokeLoadModule(t *testing.T) {
	root, mod, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := New(root, mod)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded %d packages, expected the whole module (>= 10)", len(pkgs))
	}
	seen := make(map[string]bool)
	prev := ""
	for _, p := range pkgs {
		if p.Types == nil || p.Info == nil || len(p.Files) == 0 {
			t.Errorf("%s: loaded without full type information", p.Path)
		}
		if seen[p.Path] {
			t.Errorf("%s: loaded twice", p.Path)
		}
		seen[p.Path] = true
		if p.Path < prev {
			t.Errorf("packages out of order: %s after %s", p.Path, prev)
		}
		prev = p.Path
	}
	for _, want := range []string{mod, mod + "/internal/core", mod + "/cmd/swlint"} {
		if !seen[want] {
			t.Errorf("package %s missing from module load", want)
		}
	}
}

// TestModuleRootFromSubdir checks go.mod discovery walks upward.
func TestModuleRootFromSubdir(t *testing.T) {
	fromHere, mod1, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fromParent, mod2, err := ModuleRoot("../../..")
	if err != nil {
		t.Fatal(err)
	}
	if fromHere != fromParent || mod1 != mod2 {
		t.Errorf("ModuleRoot disagrees: (%s, %s) from subdir vs (%s, %s) from root",
			fromHere, mod1, fromParent, mod2)
	}
}
