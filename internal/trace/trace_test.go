package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/sim"
)

func span(ctx int, startMS, endMS int) device.Span {
	return device.Span{
		Name:  "k",
		Ctx:   ctx,
		Start: time.Duration(startMS) * time.Millisecond,
		End:   time.Duration(endMS) * time.Millisecond,
	}
}

func TestTimelineSpansSorted(t *testing.T) {
	var tl Timeline
	tl.Add(span(1, 20, 30))
	tl.Add(span(2, 0, 10))
	spans := tl.Spans()
	if spans[0].Ctx != 2 || spans[1].Ctx != 1 {
		t.Fatalf("spans not sorted by start: %+v", spans)
	}
}

func TestTimelineContextsAndBusy(t *testing.T) {
	var tl Timeline
	tl.Add(span(7, 0, 10))
	tl.Add(span(3, 5, 10))
	tl.Add(span(7, 20, 25))
	ctxs := tl.Contexts()
	if len(ctxs) != 2 || ctxs[0] != 3 || ctxs[1] != 7 {
		t.Fatalf("Contexts() = %v", ctxs)
	}
	if got := tl.BusyTime(7); got != 15*time.Millisecond {
		t.Fatalf("BusyTime(7) = %v, want 15ms", got)
	}
}

func TestTimelineOverlap(t *testing.T) {
	var tl Timeline
	tl.Add(span(1, 0, 10))
	tl.Add(span(2, 5, 15))  // 5ms overlap with first
	tl.Add(span(2, 20, 30)) // no overlap
	if got := tl.OverlapTime(1, 2); got != 5*time.Millisecond {
		t.Fatalf("OverlapTime = %v, want 5ms", got)
	}
}

func TestTimelineAttachBusRecordsKernels(t *testing.T) {
	eng := sim.NewEngine()
	gpu := device.NewGPU(eng, device.GPUID(0), device.ClassV100)
	var tl Timeline
	tl.AttachBus(gpu.EventBus())
	gpu.Submit(device.Kernel{Name: "a", Ctx: 1, Work: time.Millisecond, Occupancy: 0.9})
	eng.Run()
	if len(tl.Spans()) != 1 {
		t.Fatalf("recorded %d spans, want 1", len(tl.Spans()))
	}
}

func TestWriteJSON(t *testing.T) {
	var tl Timeline
	tl.Add(span(1, 0, 10))
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 1 || decoded[0]["endMicros"].(float64) != 10000 {
		t.Fatalf("decoded %v", decoded)
	}
}

func TestRenderASCII(t *testing.T) {
	var tl Timeline
	tl.Add(span(1, 0, 50))
	tl.Add(span(2, 50, 100))
	var buf bytes.Buffer
	if err := tl.RenderASCII(&buf, 10*time.Millisecond, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "#####.....") {
		t.Errorf("ctx 1 row = %q, want first half busy", lines[0])
	}
	if !strings.Contains(lines[1], ".....#####") {
		t.Errorf("ctx 2 row = %q, want second half busy", lines[1])
	}
}

func TestRenderASCIIRejectsBadArgs(t *testing.T) {
	var tl Timeline
	if err := tl.RenderASCII(&bytes.Buffer{}, 0, 10); err == nil {
		t.Fatal("zero bucket accepted")
	}
	if err := tl.RenderASCII(&bytes.Buffer{}, time.Millisecond, 0); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestProfileAggregation(t *testing.T) {
	var tl Timeline
	tl.Add(device.Span{Name: "conv", Ctx: 1, Start: 0, End: 10 * time.Millisecond})
	tl.Add(device.Span{Name: "conv", Ctx: 1, Start: 20 * time.Millisecond, End: 50 * time.Millisecond})
	tl.Add(device.Span{Name: "bn", Ctx: 1, Start: 50 * time.Millisecond, End: 60 * time.Millisecond})
	tl.Add(device.Span{Name: "conv", Ctx: 2, Start: 0, End: 5 * time.Millisecond})
	stats := tl.Profile()
	if len(stats) != 3 {
		t.Fatalf("got %d stats, want 3 (per kernel+ctx)", len(stats))
	}
	top := stats[0]
	if top.Name != "conv" || top.Ctx != 1 {
		t.Fatalf("top kernel = %s ctx %d, want conv ctx 1", top.Name, top.Ctx)
	}
	if top.Count != 2 || top.Total != 40*time.Millisecond {
		t.Fatalf("top stat = %+v", top)
	}
	if top.Mean != 20*time.Millisecond || top.Max != 30*time.Millisecond {
		t.Fatalf("mean/max = %v/%v", top.Mean, top.Max)
	}
	// 40 of 55 ms total.
	if top.Share < 0.72 || top.Share > 0.73 {
		t.Fatalf("share = %.3f, want ~0.727", top.Share)
	}
}

func TestWriteProfileTopN(t *testing.T) {
	var tl Timeline
	for i := 0; i < 5; i++ {
		tl.Add(device.Span{Name: "k", Ctx: i, Start: 0, End: time.Millisecond})
	}
	var buf bytes.Buffer
	if err := tl.WriteProfile(&buf, 2); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
}

func TestProfileEmptyTimeline(t *testing.T) {
	var tl Timeline
	if got := tl.Profile(); len(got) != 0 {
		t.Fatalf("empty profile has %d rows", len(got))
	}
	var buf bytes.Buffer
	if err := tl.WriteProfile(&buf, 10); err != nil {
		t.Fatal(err)
	}
}
