package trace

import (
	"math"
	"testing"
	"time"

	"switchflow/internal/device"
)

func namedSpan(name string, ctx int, startMS, endMS int) device.Span {
	return device.Span{
		Name:  name,
		Ctx:   ctx,
		Start: time.Duration(startMS) * time.Millisecond,
		End:   time.Duration(endMS) * time.Millisecond,
	}
}

func TestProfileSharesSumToOne(t *testing.T) {
	var tl Timeline
	tl.Add(namedSpan("conv", 1, 0, 10))
	tl.Add(namedSpan("conv", 1, 10, 30))
	tl.Add(namedSpan("gemm", 2, 0, 15))
	tl.Add(namedSpan("relu", 1, 30, 31))
	stats := tl.Profile()
	if len(stats) != 3 {
		t.Fatalf("got %d kernel stats, want 3", len(stats))
	}
	var sum float64
	for _, st := range stats {
		if st.Share < 0 || st.Share > 1 {
			t.Fatalf("%s: Share = %v outside [0,1]", st.Name, st.Share)
		}
		sum += st.Share
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Fatalf("shares sum to %v, want ~1.0", sum)
	}
}

func TestProfileAggregatesAndOrdersByTotalDescending(t *testing.T) {
	var tl Timeline
	tl.Add(namedSpan("small", 1, 0, 2))
	tl.Add(namedSpan("big", 1, 2, 22))
	tl.Add(namedSpan("mid", 1, 22, 30))
	tl.Add(namedSpan("big", 1, 30, 40)) // second call of "big"
	stats := tl.Profile()
	if stats[0].Name != "big" || stats[1].Name != "mid" || stats[2].Name != "small" {
		t.Fatalf("profile order = %s,%s,%s, want big,mid,small",
			stats[0].Name, stats[1].Name, stats[2].Name)
	}
	if stats[0].Count != 2 || stats[0].Total != 30*time.Millisecond {
		t.Fatalf("big: count=%d total=%v, want 2/30ms", stats[0].Count, stats[0].Total)
	}
	if stats[0].Mean != 15*time.Millisecond || stats[0].Max != 20*time.Millisecond {
		t.Fatalf("big: mean=%v max=%v, want 15ms/20ms", stats[0].Mean, stats[0].Max)
	}
}

func TestProfileEqualTotalsHaveStableOrder(t *testing.T) {
	build := func() *Timeline {
		var tl Timeline
		// Three distinct (name, ctx) rows with identical totals: order
		// must fall back to (Name, Ctx) and replay identically.
		tl.Add(namedSpan("b", 2, 0, 10))
		tl.Add(namedSpan("a", 1, 10, 20))
		tl.Add(namedSpan("a", 2, 20, 30))
		return &tl
	}
	want := build().Profile()
	if want[0].Name != "a" || want[0].Ctx != 1 ||
		want[1].Name != "a" || want[1].Ctx != 2 ||
		want[2].Name != "b" {
		t.Fatalf("tie-break order = %v", want)
	}
	for i := 0; i < 50; i++ {
		got := build().Profile()
		for j := range want {
			if got[j].Name != want[j].Name || got[j].Ctx != want[j].Ctx {
				t.Fatalf("iteration %d: order changed: %v vs %v", i, got, want)
			}
		}
	}
}

func TestSpansTieBreakByEmitSequence(t *testing.T) {
	// Zero-duration spans with identical (Start, Ctx): the emit order is
	// the only defensible order, and it must replay identically.
	build := func() *Timeline {
		var tl Timeline
		tl.Add(namedSpan("first", 1, 5, 5))
		tl.Add(namedSpan("second", 1, 5, 5))
		tl.Add(namedSpan("third", 1, 5, 5))
		return &tl
	}
	for i := 0; i < 50; i++ {
		spans := build().Spans()
		if spans[0].Name != "first" || spans[1].Name != "second" || spans[2].Name != "third" {
			t.Fatalf("iteration %d: identical-key spans reordered: %v", i, spans)
		}
	}
}
