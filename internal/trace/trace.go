// Package trace records per-kernel GPU timelines, the data behind the
// paper's Figure 2 (two ResNet50s interleaving on one V100).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/obs"
)

// record pairs a span with its arrival order. Spans reach the timeline in
// bus-emission order, so the arrival index doubles as the emit sequence
// and gives Spans() a total, reproducible order even for identical
// (Start, Ctx) pairs.
type record struct {
	span device.Span
	seq  uint64
}

// Timeline accumulates kernel spans from one or more GPUs. It is an
// obs.Sink over the observability spine: subscribe it to a bus with
// AttachBus.
type Timeline struct {
	recs    []record
	nextSeq uint64
}

// Observe implements obs.Sink: kernel-span events are recorded, all
// other kinds are ignored, so a Timeline may share a bus subscription
// with richer consumers.
func (t *Timeline) Observe(e obs.Event) {
	if e.Kind != obs.KindKernelSpan {
		return
	}
	t.Add(device.Span{Name: e.Name, Ctx: e.Ctx, Start: e.Start, End: e.Start + e.Dur})
}

// AttachBus subscribes the timeline to every kernel span published on
// bus. Sinks compose: other subscribers on the same bus are unaffected.
func (t *Timeline) AttachBus(bus *obs.Bus) {
	bus.Subscribe(t, obs.KindKernelSpan)
}

// Add records a span directly.
func (t *Timeline) Add(s device.Span) {
	t.nextSeq++
	t.recs = append(t.recs, record{span: s, seq: t.nextSeq})
}

// Spans returns the recorded spans ordered by start time. Ties (same
// Start and Ctx — e.g. zero-duration kernels) break by emit sequence, so
// the order is total and identical across runs.
func (t *Timeline) Spans() []device.Span {
	recs := make([]record, len(t.recs))
	copy(recs, t.recs)
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].span.Start != recs[j].span.Start {
			return recs[i].span.Start < recs[j].span.Start
		}
		if recs[i].span.Ctx != recs[j].span.Ctx {
			return recs[i].span.Ctx < recs[j].span.Ctx
		}
		return recs[i].seq < recs[j].seq
	})
	out := make([]device.Span, len(recs))
	for i, r := range recs {
		out[i] = r.span
	}
	return out
}

// Contexts returns the distinct kernel contexts observed, sorted.
func (t *Timeline) Contexts() []int {
	seen := make(map[int]bool)
	for _, r := range t.recs {
		seen[r.span.Ctx] = true
	}
	ctxs := make([]int, 0, len(seen))
	for ctx := range seen {
		ctxs = append(ctxs, ctx)
	}
	sort.Ints(ctxs)
	return ctxs
}

// BusyTime returns the total kernel time attributed to ctx.
func (t *Timeline) BusyTime(ctx int) time.Duration {
	var total time.Duration
	for _, r := range t.recs {
		if r.span.Ctx == ctx {
			total += r.span.End - r.span.Start
		}
	}
	return total
}

// OverlapTime returns how long kernels from two different contexts were
// simultaneously in flight — Figure 2's measure of (in)effective spatial
// sharing.
func (t *Timeline) OverlapTime(ctxA, ctxB int) time.Duration {
	var overlap time.Duration
	spans := t.Spans()
	for i, a := range spans {
		if a.Ctx != ctxA {
			continue
		}
		for _, b := range spans[i+1:] {
			if b.Ctx != ctxB {
				continue
			}
			if b.Start >= a.End {
				break
			}
			lo, hi := b.Start, a.End
			if a.Start > lo {
				lo = a.Start
			}
			if b.End < hi {
				hi = b.End
			}
			if hi > lo {
				overlap += hi - lo
			}
		}
	}
	return overlap
}

// WriteJSON emits the spans as a JSON array.
func (t *Timeline) WriteJSON(w io.Writer) error {
	type jsonSpan struct {
		Name    string `json:"name"`
		Ctx     int    `json:"ctx"`
		StartUS int64  `json:"startMicros"`
		EndUS   int64  `json:"endMicros"`
	}
	spans := t.Spans()
	out := make([]jsonSpan, len(spans))
	for i, s := range spans {
		out[i] = jsonSpan{
			Name:    s.Name,
			Ctx:     s.Ctx,
			StartUS: s.Start.Microseconds(),
			EndUS:   s.End.Microseconds(),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// RenderASCII draws a Figure 2 style timeline: one row per context, one
// column per bucket, '#' where the context had a kernel in flight.
func (t *Timeline) RenderASCII(w io.Writer, bucket time.Duration, width int) error {
	if bucket <= 0 || width <= 0 {
		return fmt.Errorf("trace: bucket and width must be positive")
	}
	ctxs := t.Contexts()
	spans := t.Spans()
	for _, ctx := range ctxs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range spans {
			if s.Ctx != ctx {
				continue
			}
			lo := int(s.Start / bucket)
			hi := int((s.End + bucket - 1) / bucket)
			for i := lo; i < hi && i < width; i++ {
				row[i] = '#'
			}
		}
		if _, err := fmt.Fprintf(w, "ctx %2d |%s|\n", ctx, string(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "        %s (1 col = %v)\n", strings.Repeat("-", width), bucket)
	return err
}
