package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// KernelStat aggregates one kernel's executions, nvprof style (§2.2's
// methodology: "We used nvprof to collect statistics of primitive
// routines").
type KernelStat struct {
	// Name is the kernel label.
	Name string
	// Ctx is the owning context (job).
	Ctx int
	// Count is the number of executions.
	Count int
	// Total, Mean, Max summarize execution time.
	Total time.Duration
	Mean  time.Duration
	Max   time.Duration
	// Share is Total as a fraction of all kernel time in the profile.
	Share float64
}

// Profile aggregates the timeline's spans per (kernel, ctx), ordered by
// total time descending.
func (t *Timeline) Profile() []KernelStat {
	type key struct {
		name string
		ctx  int
	}
	agg := make(map[key]*KernelStat)
	var grandTotal time.Duration
	for _, r := range t.recs {
		s := r.span
		k := key{name: s.Name, ctx: s.Ctx}
		st, ok := agg[k]
		if !ok {
			st = &KernelStat{Name: s.Name, Ctx: s.Ctx}
			agg[k] = st
		}
		d := s.End - s.Start
		st.Count++
		st.Total += d
		if d > st.Max {
			st.Max = d
		}
		grandTotal += d
	}
	stats := make([]KernelStat, 0, len(agg))
	for _, st := range agg {
		st.Mean = st.Total / time.Duration(st.Count)
		if grandTotal > 0 {
			st.Share = float64(st.Total) / float64(grandTotal)
		}
		stats = append(stats, *st)
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Total != stats[j].Total {
			return stats[i].Total > stats[j].Total
		}
		if stats[i].Name != stats[j].Name {
			return stats[i].Name < stats[j].Name
		}
		return stats[i].Ctx < stats[j].Ctx
	})
	return stats
}

// WriteProfile renders the top-n kernels as an nvprof-like table. n <= 0
// prints everything.
func (t *Timeline) WriteProfile(w io.Writer, n int) error {
	stats := t.Profile()
	if n > 0 && n < len(stats) {
		stats = stats[:n]
	}
	if _, err := fmt.Fprintf(w, "%7s %5s %9s %12s %12s %12s  %s\n",
		"time%", "ctx", "calls", "total", "avg", "max", "name"); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "%6.2f%% %5d %9d %12s %12s %12s  %s\n",
			st.Share*100, st.Ctx, st.Count,
			round(st.Total), round(st.Mean), round(st.Max), st.Name); err != nil {
			return err
		}
	}
	return nil
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
