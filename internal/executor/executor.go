// Package executor runs one subgraph on one device, reproducing TF's
// executor mechanics (§2.1): nodes become ready as their in-subgraph
// dependencies complete; worker threads from a shared pool process CPU ops
// (occupying the thread) and launch GPU ops (occupying the thread only for
// the launch, with the kernel executing asynchronously on the device's
// stream); expensive successors are dispatched to any worker while
// inexpensive ones ride their parent's local queue.
package executor

import (
	"fmt"
	"time"

	"switchflow/internal/cost"
	"switchflow/internal/device"
	"switchflow/internal/graph"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/threadpool"
)

// Config wires a Run to its resources.
type Config struct {
	// Pool supplies inter-op worker threads (CPU ops, kernel launches).
	Pool *threadpool.Pool
	// DataPool, when set, runs Preprocess nodes — tf.data's parallel data
	// workers live in their own pool, separate from the executor's
	// inter-op threads, so preprocessing cannot starve kernel launches.
	// Nil falls back to Pool.
	DataPool *threadpool.Pool
	// CPUClass scales CPU op durations.
	CPUClass device.CPUClass
	// Stream is the GPU compute stream; nil for CPU subgraphs. The
	// stream's GPU class also drives kernel durations.
	Stream *device.Stream
	// Machine provides copy engines for Send nodes.
	Machine *device.Machine
	// Ctx tags kernels for traces (one id per job).
	Ctx int
	// Bus, when set, receives OpSched and Launch events on the
	// observability spine. Emission is gated on active subscribers, so an
	// unobserved run pays only a nil-check on this hot path.
	Bus *obs.Bus
	// Eager charges every GPU op a framework dispatch overhead — dynamic
	// graph execution interprets user code per op instead of replaying a
	// pre-optimized plan (§1).
	Eager bool
}

// eagerDispatchOverhead is the per-op cost of dynamic-graph dispatch
// (Python-level op construction and bookkeeping).
const eagerDispatchOverhead = 75 * time.Microsecond

// Run is one activation of a subgraph (one iteration's worth of its
// nodes). Create with Start.
//
// A Run can be suspended (queued work aborted, in-flight work drained,
// progress kept) and later resumed — the paper's preemption semantics:
// "the new session is populated with the tasks of the aborted session run
// so that no work is lost" (§3.3). Abort is a terminal suspend.
type Run struct {
	sub *graph.Subgraph
	cfg Config
	eng *sim.Engine
	// pending counts unmet intra-subgraph dependencies per node ID; -1
	// marks nodes of other subgraphs (dependencies across subgraphs are
	// satisfied by stage sequencing). doneSet is indexed the same way.
	// Slices, not maps: a Run is created for every iteration of every
	// job, and the dependency bookkeeping is the executor's hottest path.
	pending    []int32
	doneSet    []bool
	shardsLeft map[int]int // lazily allocated; only sharded CPU ops use it
	done       int
	total      int
	suspended  bool
	aborted    bool
	epoch      int
	onDone     func()
}

// Start begins executing sub and returns its Run handle. onDone fires when
// every node has completed (never after Abort).
func Start(eng *sim.Engine, sub *graph.Subgraph, cfg Config, onDone func()) (*Run, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("executor: %s: nil pool", sub.Name())
	}
	if sub.Device.Kind == device.KindGPU && cfg.Stream == nil {
		return nil, fmt.Errorf("executor: %s: GPU subgraph needs a stream", sub.Name())
	}
	plan := sub.Plan()
	r := &Run{
		sub:     sub,
		cfg:     cfg,
		eng:     eng,
		pending: make([]int32, plan.NumNodes),
		doneSet: make([]bool, plan.NumNodes),
		total:   len(sub.Nodes),
		onDone:  onDone,
	}
	copy(r.pending, plan.Deps)
	if r.total == 0 {
		eng.After(0, r.finish)
		return r, nil
	}
	// Initial dispatch: the ready queue is drained breadth-first onto
	// separate local queues (§2.1).
	for _, n := range plan.Ready {
		r.dispatch(n, -1, false)
	}
	return r, nil
}

// Done reports whether every node completed.
func (r *Run) Done() bool { return r.done == r.total && !r.aborted }

// Aborted reports whether the run was cancelled terminally.
func (r *Run) Aborted() bool { return r.aborted }

// Suspended reports whether the run is paused and resumable.
func (r *Run) Suspended() bool { return r.suspended && !r.aborted }

// Progress returns completed and total node counts.
func (r *Run) Progress() (completed, total int) { return r.done, r.total }

// Suspend pauses the run: queued worker tasks are removed from the pool
// and the stream's backlog is discarded; the in-flight kernel (if any)
// drains and its completion is kept (§3.3: dispatched kernels finish).
// onDrained fires once in-flight work ends — the preemption critical
// path. Resume continues from the retained progress.
func (r *Run) Suspend(onDrained func()) {
	if r.aborted || r.suspended {
		if onDrained != nil {
			onDrained()
		}
		return
	}
	r.suspended = true
	r.epoch++
	r.cfg.Pool.Abort(r)
	if r.cfg.DataPool != nil {
		r.cfg.DataPool.Abort(r)
	}
	if r.cfg.Stream != nil {
		r.cfg.Stream.Abort()
		if onDrained != nil {
			r.cfg.Stream.Drain(onDrained)
		}
		return
	}
	if onDrained != nil {
		onDrained()
	}
}

// Resume re-dispatches every ready-but-incomplete node of a suspended run.
// Callers must wait for Suspend's drain callback first.
func (r *Run) Resume() {
	if r.aborted || !r.suspended {
		return
	}
	r.suspended = false
	if r.done == r.total {
		r.finish()
		return
	}
	for _, n := range r.sub.Nodes {
		if !r.doneSet[n.ID] && r.pending[n.ID] == 0 {
			r.dispatch(n, -1, false)
		}
	}
}

// Abort cancels the run terminally; it can never resume and onDone never
// fires. onDrained follows Suspend's contract.
func (r *Run) Abort(onDrained func()) {
	if r.aborted {
		if onDrained != nil {
			onDrained()
		}
		return
	}
	wasSuspended := r.suspended
	r.aborted = true
	r.suspended = true
	if wasSuspended {
		if onDrained != nil {
			onDrained()
		}
		return
	}
	r.cfg.Pool.Abort(r)
	if r.cfg.DataPool != nil {
		r.cfg.DataPool.Abort(r)
	}
	if r.cfg.Stream != nil {
		r.cfg.Stream.Abort()
		if onDrained != nil {
			r.cfg.Stream.Drain(onDrained)
		}
		return
	}
	if onDrained != nil {
		onDrained()
	}
}

// Discard is Abort without a drain callback, for runs already suspended.
func (r *Run) Discard() { r.Abort(nil) }

// dispatch hands node n to a worker. preferred/front implement the
// expensive/inexpensive local-queue policy. The captured epoch invalidates
// callbacks from before a suspension, so a node cannot be processed twice
// when a suspend races with a worker mid-task.
func (r *Run) dispatch(n *graph.Node, preferred int, front bool) {
	duration := r.workerTime(n)
	epoch := r.epoch
	pool := r.cfg.Pool
	if n.Op == graph.OpPreprocess && r.cfg.DataPool != nil {
		pool = r.cfg.DataPool
	}
	if r.cfg.Bus.Wants(obs.KindOpSched) {
		from := "any"
		if preferred >= 0 {
			from = "local"
		}
		r.cfg.Bus.Emit(obs.Event{
			Kind:   obs.KindOpSched,
			Ctx:    r.cfg.Ctx,
			Device: r.sub.Device.String(),
			From:   from,
			Name:   n.Name,
			Dur:    duration,
		})
	}
	if r.sub.Device.Kind == device.KindCPU {
		if shards := intraOpShards(n, duration, pool.Size()); shards > 1 {
			r.dispatchSharded(n, pool, duration, shards)
			return
		}
	}
	pool.Submit(&threadpool.Task{
		Name:     n.Name,
		Owner:    r,
		Duration: duration,
		Run: func() {
			if epoch == r.epoch {
				r.process(n)
			}
		},
	}, preferred, front)
}

// dispatchSharded fans a heavy CPU op over several worker threads with
// MKL-style imperfect scaling; the node completes when every shard does.
func (r *Run) dispatchSharded(n *graph.Node, pool *threadpool.Pool, total time.Duration, shards int) {
	if r.shardsLeft == nil {
		r.shardsLeft = make(map[int]int)
	}
	r.shardsLeft[n.ID] = shards
	epoch := r.epoch
	per := time.Duration(float64(total) / (float64(shards) * mklScalingEfficiency))
	for i := 0; i < shards; i++ {
		pool.Submit(&threadpool.Task{
			Name:     n.Name + "/shard",
			Owner:    r,
			Duration: per,
			Run: func() {
				if epoch != r.epoch {
					return
				}
				r.shardsLeft[n.ID]--
				if r.shardsLeft[n.ID] == 0 {
					r.process(n)
				}
			},
		}, -1, false)
	}
}

// workerTime is how long node n occupies the worker thread itself.
func (r *Run) workerTime(n *graph.Node) time.Duration {
	if r.sub.Device.Kind == device.KindCPU {
		return cost.CPUDuration(n, r.cfg.CPUClass)
	}
	// GPU subgraph: the thread only pays launch overhead; ops without a
	// kernel (Recv, NoOp) still cost a moment of bookkeeping.
	var eager time.Duration
	if r.cfg.Eager {
		eager = eagerDispatchOverhead
	}
	if cost.KernelDuration(n, r.cfg.Stream.GPU().Class) > 0 {
		return eager + cost.LaunchOverhead(r.cfg.Stream.GPU().Class)
	}
	return eager + time.Microsecond
}

// intraOpShards is the MKL-style intra-op parallelism of a CPU compute
// op: heavy dense math fans out over several worker threads (at reduced
// per-thread efficiency), which is both why a migrated-to-CPU job runs at
// usable speed and why the paper keeps such jobs in the temporary pool —
// their shards would otherwise occupy many global workers (§3.3).
func intraOpShards(n *graph.Node, total time.Duration, poolSize int) int {
	if n.Op == graph.OpPreprocess || n.CPUTime > 0 {
		return 1 // data ops are sharded at graph-build time already
	}
	if total < 10*time.Millisecond {
		return 1
	}
	shards := 8
	if shards > poolSize {
		shards = poolSize
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// mklScalingEfficiency discounts intra-op parallel speedup.
const mklScalingEfficiency = 0.75

// process runs after node n's worker time elapsed: CPU ops are then
// complete; GPU ops enqueue their kernel; Send ops start their transfer.
func (r *Run) process(n *graph.Node) {
	if r.aborted || r.suspended {
		return
	}
	switch {
	case n.Op == graph.OpSend:
		r.startSend(n)
	case r.sub.Device.Kind == device.KindGPU:
		class := r.cfg.Stream.GPU().Class
		work := cost.KernelDuration(n, class)
		if work == 0 {
			r.complete(n)
			return
		}
		if r.cfg.Bus.Wants(obs.KindLaunch) {
			r.cfg.Bus.Emit(obs.Event{
				Kind:   obs.KindLaunch,
				Ctx:    r.cfg.Ctx,
				Device: r.sub.Device.String(),
				Name:   n.Name,
				Dur:    work,
			})
		}
		r.cfg.Stream.Enqueue(device.Kernel{
			Name:      n.Name,
			Work:      work,
			Occupancy: cost.Occupancy(n),
			Ctx:       r.cfg.Ctx,
			OnDone:    func() { r.complete(n) },
		})
	default:
		r.complete(n)
	}
}

// startSend moves n's tensor over the copy path toward its Recv peer.
func (r *Run) startSend(n *graph.Node) {
	if r.cfg.Machine == nil || len(n.Outputs()) == 0 {
		r.complete(n)
		return
	}
	dst := n.Outputs()[0].Device
	engine, err := r.cfg.Machine.CopyPath(n.Device, dst)
	if err != nil {
		r.complete(n)
		return
	}
	epoch := r.epoch
	engine.Transfer(n.OutputBytes, 1, func() {
		if epoch == r.epoch && !r.aborted && !r.suspended {
			r.complete(n)
		}
	})
}

// complete marks n done and dispatches newly ready successors. While
// suspended, progress is recorded (an in-flight kernel finishing during
// the drain) but no new work is dispatched.
func (r *Run) complete(n *graph.Node) {
	if r.aborted || r.doneSet[n.ID] {
		return
	}
	r.doneSet[n.ID] = true
	r.done++
	for _, succ := range n.Outputs() {
		deps := r.pending[succ.ID]
		if deps < 0 {
			continue // successor lives in another subgraph
		}
		r.pending[succ.ID] = deps - 1
		if deps-1 > 0 || r.suspended {
			continue
		}
		class := device.GPUClass{}
		if r.cfg.Stream != nil {
			class = r.cfg.Stream.GPU().Class
		}
		if cost.IsExpensive(succ, class) {
			// Expensive nodes get their own local queue (any worker).
			r.dispatch(succ, -1, false)
		} else {
			// Inexpensive nodes ride the parent's queue.
			r.dispatch(succ, n.ID%r.cfg.Pool.Size(), true)
		}
	}
	if r.done == r.total && !r.suspended {
		r.finish()
	}
}

func (r *Run) finish() {
	if r.aborted {
		return
	}
	if r.onDone != nil {
		r.onDone()
	}
}
