package executor

import (
	"testing"
	"testing/quick"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/graph"
	"switchflow/internal/models"
	"switchflow/internal/sim"
	"switchflow/internal/threadpool"
)

type fixture struct {
	eng     *sim.Engine
	machine *device.Machine
	pool    *threadpool.Pool
}

func newFixture(workers int) *fixture {
	eng := sim.NewEngine()
	return &fixture{
		eng:     eng,
		machine: device.NewMachine(eng, device.ClassXeonDual, device.ClassV100),
		pool:    threadpool.New(eng, "global", workers),
	}
}

func (f *fixture) gpuConfig(stream *device.Stream) Config {
	return Config{Pool: f.pool, CPUClass: f.machine.CPU, Stream: stream, Machine: f.machine}
}

func (f *fixture) cpuConfig() Config {
	return Config{Pool: f.pool, CPUClass: f.machine.CPU, Machine: f.machine}
}

// buildSubgraphs builds and partitions a model graph.
func buildSubgraphs(t *testing.T, spec *models.Spec, cfg models.BuildConfig) []*graph.Subgraph {
	t.Helper()
	g, err := spec.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	subs, err := graph.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	return subs
}

func TestRunCPUSubgraphCompletes(t *testing.T) {
	f := newFixture(4)
	g := graph.New("cpu")
	for i := 0; i < 4; i++ {
		g.AddNode(&graph.Node{
			Name: "shard", Op: graph.OpPreprocess,
			Device: device.CPUID, CPUTime: 10 * time.Millisecond,
		})
	}
	subs, err := graph.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	run, err := Start(f.eng, subs[0], f.cpuConfig(), func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if !done || !run.Done() {
		t.Fatal("CPU run did not complete")
	}
	// 4 independent shards on 4 workers run in parallel.
	if f.eng.Now() != 10*time.Millisecond {
		t.Fatalf("parallel shards took %v, want 10ms", f.eng.Now())
	}
}

func TestRunCPUShardsSerializeOnFewWorkers(t *testing.T) {
	f := newFixture(2)
	g := graph.New("cpu")
	for i := 0; i < 4; i++ {
		g.AddNode(&graph.Node{
			Name: "shard", Op: graph.OpPreprocess,
			Device: device.CPUID, CPUTime: 10 * time.Millisecond,
		})
	}
	subs, _ := graph.Partition(g)
	if _, err := Start(f.eng, subs[0], f.cpuConfig(), nil); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if f.eng.Now() != 20*time.Millisecond {
		t.Fatalf("4 shards on 2 workers took %v, want 20ms", f.eng.Now())
	}
}

func TestRunGPUChainSerializesOnStream(t *testing.T) {
	f := newFixture(8)
	g := graph.New("gpu")
	var prev *graph.Node
	const kernels = 5
	for i := 0; i < kernels; i++ {
		n := g.AddNode(&graph.Node{
			Name: "conv", Op: graph.OpConv2D,
			Device: device.GPUID(0), FLOPs: 5.6e9, // ~1 ms on V100
		})
		if prev != nil {
			g.Connect(prev, n)
		}
		prev = n
	}
	subs, _ := graph.Partition(g)
	stream := device.NewStream(f.machine.GPU(0))
	done := false
	if _, err := Start(f.eng, subs[0], f.gpuConfig(stream), func() { done = true }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if !done {
		t.Fatal("GPU run did not complete")
	}
	// Chain of ~1ms kernels plus launch overheads: roughly 5ms total.
	if f.eng.Now() < 5*time.Millisecond || f.eng.Now() > 6*time.Millisecond {
		t.Fatalf("5-kernel chain took %v, want ~5ms", f.eng.Now())
	}
}

func TestRunSendTransfersTensor(t *testing.T) {
	f := newFixture(4)
	g := graph.New("xfer")
	pre := g.AddNode(&graph.Node{
		Name: "pre", Op: graph.OpPreprocess, Device: device.CPUID,
		CPUTime: time.Millisecond, OutputBytes: 113 << 20, // ~10ms at 11.3 GB/s
	})
	conv := g.AddNode(&graph.Node{Name: "conv", Op: graph.OpConv2D,
		Device: device.GPUID(0), FLOPs: 1e6})
	g.Connect(pre, conv)
	subs, _ := graph.Partition(g)
	cpuDone := false
	if _, err := Start(f.eng, subs[0], f.cpuConfig(), func() { cpuDone = true }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if !cpuDone {
		t.Fatal("CPU stage incomplete")
	}
	// Preprocess 1ms + H2D ~10ms: the Send's transfer is on the stage's
	// critical path.
	if f.eng.Now() < 10*time.Millisecond {
		t.Fatalf("stage with H2D took %v, want >= 10ms", f.eng.Now())
	}
	if f.machine.HostToDevice(0).Transferred() != 113<<20 {
		t.Fatalf("H2D moved %d bytes", f.machine.HostToDevice(0).Transferred())
	}
}

func TestRunFullModelInferencePipeline(t *testing.T) {
	f := newFixture(32)
	spec, err := models.ByName("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	subs := buildSubgraphs(t, spec, models.BuildConfig{Batch: 16, Device: device.GPUID(0)})
	stream := device.NewStream(f.machine.GPU(0))
	// Stage 1: input.
	inputDone := false
	if _, err := Start(f.eng, subs[0], f.cpuConfig(), func() { inputDone = true }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if !inputDone {
		t.Fatal("input stage incomplete")
	}
	inputEnd := f.eng.Now()
	// Stage 2: compute.
	computeDone := false
	if _, err := Start(f.eng, subs[1], f.gpuConfig(stream), func() { computeDone = true }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if !computeDone {
		t.Fatal("compute stage incomplete")
	}
	computeTime := f.eng.Now() - inputEnd
	// BS=16 inference: ~16 x 7.7 GF at ~5.6 TF/s effective -> ~25ms, plus
	// memory-bound layers; accept a broad band.
	if computeTime < 10*time.Millisecond || computeTime > 150*time.Millisecond {
		t.Fatalf("ResNet50 BS=16 inference compute = %v, want 10-150ms", computeTime)
	}
	if got := f.machine.GPU(0).Launched(); got == 0 {
		t.Fatal("no kernels launched")
	}
}

func TestRunAbortStopsQueuedWork(t *testing.T) {
	f := newFixture(4)
	g := graph.New("abort")
	var prev *graph.Node
	for i := 0; i < 10; i++ {
		n := g.AddNode(&graph.Node{Name: "conv", Op: graph.OpConv2D,
			Device: device.GPUID(0), FLOPs: 5.6e9})
		if prev != nil {
			g.Connect(prev, n)
		}
		prev = n
	}
	subs, _ := graph.Partition(g)
	stream := device.NewStream(f.machine.GPU(0))
	completed := false
	run, err := Start(f.eng, subs[0], f.gpuConfig(stream), func() { completed = true })
	if err != nil {
		t.Fatal(err)
	}
	drained := false
	f.eng.Schedule(2500*time.Microsecond, func() {
		run.Abort(func() { drained = true })
	})
	f.eng.Run()
	if completed {
		t.Fatal("aborted run reported completion")
	}
	if !drained {
		t.Fatal("drain callback never fired")
	}
	if !run.Aborted() {
		t.Fatal("run not marked aborted")
	}
	// The chain would take ~10ms; abort at 2.5ms waits only for the
	// in-flight kernel (ends at ~3ms).
	if f.eng.Now() > 5*time.Millisecond {
		t.Fatalf("abort drained at %v, want well before chain end (10ms)", f.eng.Now())
	}
	done, total := run.Progress()
	if done >= total {
		t.Fatalf("progress %d/%d after abort", done, total)
	}
}

func TestRunAbortIsIdempotent(t *testing.T) {
	f := newFixture(2)
	g := graph.New("a")
	g.AddNode(&graph.Node{Name: "x", Op: graph.OpPreprocess,
		Device: device.CPUID, CPUTime: 10 * time.Millisecond})
	subs, _ := graph.Partition(g)
	run, err := Start(f.eng, subs[0], f.cpuConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	run.Abort(func() { calls++ })
	run.Abort(func() { calls++ })
	f.eng.Run()
	if calls != 2 {
		t.Fatalf("drain callbacks = %d, want 2 (idempotent abort still answers)", calls)
	}
}

func TestStartRequiresStreamForGPU(t *testing.T) {
	f := newFixture(2)
	g := graph.New("g")
	g.AddNode(&graph.Node{Name: "conv", Op: graph.OpConv2D, Device: device.GPUID(0), FLOPs: 1e6})
	subs, _ := graph.Partition(g)
	if _, err := Start(f.eng, subs[0], f.cpuConfig(), nil); err == nil {
		t.Fatal("Start accepted GPU subgraph without stream")
	}
}

func TestEmptySubgraphCompletesImmediately(t *testing.T) {
	f := newFixture(2)
	sub := &graph.Subgraph{Graph: graph.New("empty"), Device: device.CPUID}
	done := false
	if _, err := Start(f.eng, sub, f.cpuConfig(), func() { done = true }); err != nil {
		t.Fatal(err)
	}
	f.eng.Run()
	if !done {
		t.Fatal("empty subgraph never completed")
	}
}

// Property: under randomly timed suspend/resume cycles, a run still
// completes with every node executed exactly once.
func TestSuspendResumeProperty(t *testing.T) {
	prop := func(layerWidths []uint8, suspendAtUS []uint16) bool {
		f := newFixture(8)
		g := graph.New("prop")
		var prev []*graph.Node
		layers := 0
		for _, w := range layerWidths {
			if layers == 5 {
				break
			}
			width := int(w%3) + 1
			var cur []*graph.Node
			for i := 0; i < width; i++ {
				n := g.AddNode(&graph.Node{
					Name: "conv", Op: graph.OpConv2D,
					Device: device.GPUID(0), FLOPs: 1e9,
				})
				for _, p := range prev {
					g.Connect(p, n)
				}
				cur = append(cur, n)
			}
			prev = cur
			layers++
		}
		if g.Len() == 0 {
			return true
		}
		subs, err := graph.Partition(g)
		if err != nil {
			return false
		}
		stream := device.NewStream(f.machine.GPU(0))
		done := false
		run, err := Start(f.eng, subs[0], f.gpuConfig(stream), func() { done = true })
		if err != nil {
			return false
		}
		// Schedule suspend/resume cycles at arbitrary instants.
		for i, at := range suspendAtUS {
			if i == 4 {
				break
			}
			f.eng.Schedule(time.Duration(at)*time.Microsecond, func() {
				run.Suspend(func() {
					f.eng.After(time.Duration(at%97)*time.Microsecond, run.Resume)
				})
			})
		}
		f.eng.Run()
		completed, total := run.Progress()
		return done && completed == total
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: a suspended run retains monotone progress — resuming never
// loses completed nodes.
func TestSuspendKeepsProgress(t *testing.T) {
	f := newFixture(8)
	g := graph.New("chain")
	var prev *graph.Node
	for i := 0; i < 10; i++ {
		n := g.AddNode(&graph.Node{Name: "conv", Op: graph.OpConv2D,
			Device: device.GPUID(0), FLOPs: 5.6e9})
		if prev != nil {
			g.Connect(prev, n)
		}
		prev = n
	}
	subs, _ := graph.Partition(g)
	stream := device.NewStream(f.machine.GPU(0))
	done := false
	run, err := Start(f.eng, subs[0], f.gpuConfig(stream), func() { done = true })
	if err != nil {
		t.Fatal(err)
	}
	f.eng.Schedule(3500*time.Microsecond, func() {
		run.Suspend(nil)
	})
	f.eng.RunUntil(50 * time.Millisecond)
	mid, total := run.Progress()
	if mid == 0 || mid >= total {
		t.Fatalf("progress at suspension = %d/%d", mid, total)
	}
	run.Resume()
	f.eng.Run()
	after, _ := run.Progress()
	if after != total || !done {
		t.Fatalf("after resume: %d/%d done=%v", after, total, done)
	}
}
