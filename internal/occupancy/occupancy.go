// Package occupancy implements the CUDA occupancy calculation the paper
// used to diagnose kernel concurrency (§2.2): NVIDIA's occupancy
// calculator showed that 10 of the 13 cuDNN convolution kernels were
// bottlenecked by the register file and could not run concurrently with
// other kernels. This package reproduces that analysis: given a kernel's
// launch configuration and an SM's resource limits, it computes how many
// blocks fit per SM, which resource binds, and the resulting warp
// occupancy and whole-device footprint.
package occupancy

import "fmt"

// LaunchConfig is a kernel's per-block resource demand.
type LaunchConfig struct {
	// ThreadsPerBlock is the block size.
	ThreadsPerBlock int
	// RegistersPerThread as reported by nvcc/nvprof.
	RegistersPerThread int
	// SharedMemPerBlock in bytes (static + dynamic).
	SharedMemPerBlock int
	// GridBlocks is the launch's total block count.
	GridBlocks int
}

// SMLimits are one streaming multiprocessor's resource capacities.
type SMLimits struct {
	// MaxThreads is the thread residency limit (2048 on Pascal-Volta).
	MaxThreads int
	// MaxBlocks is the resident-block limit.
	MaxBlocks int
	// Registers is the register-file size in 32-bit registers.
	Registers int
	// SharedMem is the shared-memory capacity in bytes.
	SharedMem int
	// WarpSize is 32 on all NVIDIA hardware.
	WarpSize int
}

// Architecture limits for the paper's GPUs.
var (
	// Volta is the V100's SM (also a good Turing approximation).
	Volta = SMLimits{
		MaxThreads: 2048,
		MaxBlocks:  32,
		Registers:  65536,
		SharedMem:  96 << 10,
		WarpSize:   32,
	}
	// Pascal covers the GTX 1080 Ti and the Jetson TX2's GPU.
	Pascal = SMLimits{
		MaxThreads: 2048,
		MaxBlocks:  32,
		Registers:  65536,
		SharedMem:  96 << 10,
		WarpSize:   32,
	}
	// Turing is the RTX 2080 Ti's SM.
	Turing = SMLimits{
		MaxThreads: 1024,
		MaxBlocks:  16,
		Registers:  65536,
		SharedMem:  64 << 10,
		WarpSize:   32,
	}
)

// Limiter names the resource that bounds residency.
type Limiter int

// Limiters, in the order the calculator evaluates them.
const (
	LimitThreads Limiter = iota + 1
	LimitBlocks
	LimitRegisters
	LimitSharedMem
)

// String implements fmt.Stringer.
func (l Limiter) String() string {
	switch l {
	case LimitThreads:
		return "threads"
	case LimitBlocks:
		return "blocks"
	case LimitRegisters:
		return "registers"
	case LimitSharedMem:
		return "shared-memory"
	default:
		return fmt.Sprintf("limiter(%d)", int(l))
	}
}

// Analysis is the occupancy calculator's output for one kernel.
type Analysis struct {
	// BlocksPerSM is the resident-block count.
	BlocksPerSM int
	// Limiter is the binding resource.
	Limiter Limiter
	// WarpOccupancy is active warps / max warps, in [0,1].
	WarpOccupancy float64
	// RegisterBound reports whether the register file binds (the §2.2
	// diagnosis for heavy cuDNN kernels).
	RegisterBound bool
}

// Analyze runs the occupancy calculation for one launch config.
func Analyze(cfg LaunchConfig, sm SMLimits) (Analysis, error) {
	if cfg.ThreadsPerBlock <= 0 {
		return Analysis{}, fmt.Errorf("occupancy: threads per block must be positive, got %d", cfg.ThreadsPerBlock)
	}
	if cfg.ThreadsPerBlock > sm.MaxThreads {
		return Analysis{}, fmt.Errorf("occupancy: block of %d threads exceeds SM limit %d",
			cfg.ThreadsPerBlock, sm.MaxThreads)
	}

	byThreads := sm.MaxThreads / cfg.ThreadsPerBlock
	byBlocks := sm.MaxBlocks
	byRegs := byBlocks
	if cfg.RegistersPerThread > 0 {
		regsPerBlock := cfg.RegistersPerThread * cfg.ThreadsPerBlock
		byRegs = sm.Registers / regsPerBlock
	}
	bySmem := byBlocks
	if cfg.SharedMemPerBlock > 0 {
		bySmem = sm.SharedMem / cfg.SharedMemPerBlock
	}

	blocks := byThreads
	limiter := LimitThreads
	for _, cand := range []struct {
		n int
		l Limiter
	}{
		{byBlocks, LimitBlocks},
		{byRegs, LimitRegisters},
		{bySmem, LimitSharedMem},
	} {
		if cand.n < blocks {
			blocks = cand.n
			limiter = cand.l
		}
	}
	if blocks < 1 {
		// Not even one block fits: CUDA would fail the launch.
		return Analysis{}, fmt.Errorf("occupancy: launch config exceeds SM %v capacity", limiter)
	}

	warpsPerBlock := (cfg.ThreadsPerBlock + sm.WarpSize - 1) / sm.WarpSize
	maxWarps := sm.MaxThreads / sm.WarpSize
	warpOcc := float64(blocks*warpsPerBlock) / float64(maxWarps)
	if warpOcc > 1 {
		warpOcc = 1
	}
	return Analysis{
		BlocksPerSM:   blocks,
		Limiter:       limiter,
		WarpOccupancy: warpOcc,
		RegisterBound: limiter == LimitRegisters,
	}, nil
}

// DeviceFootprint estimates the fraction of the whole GPU a kernel's grid
// consumes: grids larger than the device's resident-block capacity
// saturate it (footprint 1), preventing any concurrent kernel — the §2.2
// serialization.
func DeviceFootprint(cfg LaunchConfig, sm SMLimits, smCount int) (float64, error) {
	a, err := Analyze(cfg, sm)
	if err != nil {
		return 0, err
	}
	if smCount <= 0 {
		return 1, nil
	}
	capacity := a.BlocksPerSM * smCount
	if cfg.GridBlocks >= capacity {
		return 1, nil
	}
	return float64(cfg.GridBlocks) / float64(capacity), nil
}
