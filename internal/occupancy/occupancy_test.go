package occupancy

import (
	"testing"
	"testing/quick"
)

// cuDNN-style implicit-GEMM convolution launch: 256 threads, 96 registers
// per thread, 40 KiB shared memory — the profile nvprof reports for heavy
// conv kernels.
var convLaunch = LaunchConfig{
	ThreadsPerBlock:    256,
	RegistersPerThread: 96,
	SharedMemPerBlock:  40 << 10,
	GridBlocks:         4096,
}

// Elementwise kernel: 256 threads, 24 registers, no shared memory.
var elementwiseLaunch = LaunchConfig{
	ThreadsPerBlock:    256,
	RegistersPerThread: 24,
	GridBlocks:         128,
}

func TestConvKernelIsRegisterBound(t *testing.T) {
	// §2.2: "10 of the 13 kernels were bottlenecked by GPU register files
	// and cannot run concurrently."
	a, err := Analyze(convLaunch, Volta)
	if err != nil {
		t.Fatal(err)
	}
	if !a.RegisterBound {
		t.Fatalf("conv launch not register bound: limiter = %v", a.Limiter)
	}
	// 65536 regs / (96 x 256) = 2 blocks; 2x8 warps of 64 = 25%.
	if a.BlocksPerSM != 2 {
		t.Fatalf("BlocksPerSM = %d, want 2", a.BlocksPerSM)
	}
	if a.WarpOccupancy < 0.2 || a.WarpOccupancy > 0.3 {
		t.Fatalf("WarpOccupancy = %.2f, want ~0.25", a.WarpOccupancy)
	}
}

func TestElementwiseKernelIsThreadBound(t *testing.T) {
	a, err := Analyze(elementwiseLaunch, Volta)
	if err != nil {
		t.Fatal(err)
	}
	if a.RegisterBound {
		t.Fatal("elementwise launch should not be register bound")
	}
	if a.Limiter != LimitThreads {
		t.Fatalf("limiter = %v, want threads", a.Limiter)
	}
	if a.WarpOccupancy != 1.0 {
		t.Fatalf("WarpOccupancy = %.2f, want 1.0", a.WarpOccupancy)
	}
}

func TestSharedMemoryLimiter(t *testing.T) {
	cfg := LaunchConfig{
		ThreadsPerBlock:    128,
		RegistersPerThread: 32,
		SharedMemPerBlock:  48 << 10, // 2 blocks of 48 KiB fill 96 KiB
	}
	a, err := Analyze(cfg, Volta)
	if err != nil {
		t.Fatal(err)
	}
	if a.Limiter != LimitSharedMem {
		t.Fatalf("limiter = %v, want shared-memory", a.Limiter)
	}
	if a.BlocksPerSM != 2 {
		t.Fatalf("BlocksPerSM = %d, want 2", a.BlocksPerSM)
	}
}

func TestBlockLimitOnTuring(t *testing.T) {
	cfg := LaunchConfig{ThreadsPerBlock: 32, RegistersPerThread: 16}
	a, err := Analyze(cfg, Turing)
	if err != nil {
		t.Fatal(err)
	}
	// 1024/32 = 32 by threads, but Turing caps at 16 blocks.
	if a.Limiter != LimitBlocks || a.BlocksPerSM != 16 {
		t.Fatalf("got %+v, want block-limited at 16", a)
	}
}

func TestAnalyzeRejectsBadConfigs(t *testing.T) {
	if _, err := Analyze(LaunchConfig{ThreadsPerBlock: 0}, Volta); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := Analyze(LaunchConfig{ThreadsPerBlock: 4096}, Volta); err == nil {
		t.Fatal("oversized block accepted")
	}
}

func TestDeviceFootprintSaturation(t *testing.T) {
	// A huge conv grid saturates all 80 V100 SMs: footprint 1 — a second
	// heavy kernel must wait (Figure 2's serialization).
	f, err := DeviceFootprint(convLaunch, Volta, 80)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1 {
		t.Fatalf("conv footprint = %.2f, want 1 (saturating)", f)
	}
	// A small elementwise grid leaves room.
	small, err := DeviceFootprint(elementwiseLaunch, Volta, 80)
	if err != nil {
		t.Fatal(err)
	}
	if small >= 0.5 {
		t.Fatalf("small grid footprint = %.2f, want < 0.5", small)
	}
}

func TestLimiterStrings(t *testing.T) {
	tests := []struct {
		l    Limiter
		want string
	}{
		{LimitThreads, "threads"},
		{LimitBlocks, "blocks"},
		{LimitRegisters, "registers"},
		{LimitSharedMem, "shared-memory"},
		{Limiter(42), "limiter(42)"},
	}
	for _, tt := range tests {
		if got := tt.l.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.l), got, tt.want)
		}
	}
}

// Property: occupancy is in (0,1], monotonically non-increasing in
// register pressure, and the footprint never exceeds 1.
func TestOccupancyMonotoneProperty(t *testing.T) {
	prop := func(threadsRaw, regsRaw uint8) bool {
		threads := (int(threadsRaw%31) + 1) * 32 // 32..992
		regs := int(regsRaw%128) + 1
		lo, err := Analyze(LaunchConfig{ThreadsPerBlock: threads, RegistersPerThread: regs}, Volta)
		if err != nil {
			return true // unlaunchable config; CUDA rejects it too
		}
		hi, err := Analyze(LaunchConfig{ThreadsPerBlock: threads, RegistersPerThread: regs * 2}, Volta)
		if err != nil {
			return true
		}
		if lo.WarpOccupancy <= 0 || lo.WarpOccupancy > 1 {
			return false
		}
		if hi.WarpOccupancy > lo.WarpOccupancy {
			return false
		}
		f, err := DeviceFootprint(LaunchConfig{
			ThreadsPerBlock: threads, RegistersPerThread: regs, GridBlocks: int(threadsRaw) * 64,
		}, Volta, 80)
		return err == nil && f <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
