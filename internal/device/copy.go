package device

import (
	"time"

	"switchflow/internal/sim"
)

// Copy-engine constants calibrated against Table 1 of the paper: transfer
// time fits bytes/11.3 GBps + 50 µs per weight tensor across all eight
// reported models.
const (
	// PerTensorOverhead is the fixed cost of issuing one tensor copy.
	PerTensorOverhead = 50 * time.Microsecond
	// baseCopyLatency is the setup latency of a bulk DMA.
	baseCopyLatency = 10 * time.Microsecond
)

// CopyEngine is a FIFO DMA channel (one direction of a PCIe link, or a
// GPU-to-GPU path). Transfers queue behind each other.
type CopyEngine struct {
	eng           *sim.Engine
	bandwidthGBps float64
	busyUntil     time.Duration
	transferred   int64
}

// NewCopyEngine creates a channel with the given bulk bandwidth.
func NewCopyEngine(eng *sim.Engine, bandwidthGBps float64) *CopyEngine {
	return &CopyEngine{eng: eng, bandwidthGBps: bandwidthGBps}
}

// TransferTime returns the service time (excluding queueing) of moving
// n bytes split across tensors tensor objects.
func (c *CopyEngine) TransferTime(n int64, tensors int) time.Duration {
	if n <= 0 {
		return 0
	}
	if tensors < 1 {
		tensors = 1
	}
	bulk := time.Duration(float64(n) / (c.bandwidthGBps * 1e9) * float64(time.Second))
	return baseCopyLatency + bulk + time.Duration(tensors)*PerTensorOverhead
}

// Transfer enqueues a copy of n bytes in tensors tensor objects and returns
// its completion time. onDone (optional) fires at completion.
func (c *CopyEngine) Transfer(n int64, tensors int, onDone func()) time.Duration {
	start := c.eng.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	done := start + c.TransferTime(n, tensors)
	c.busyUntil = done
	c.transferred += n
	if onDone != nil {
		c.eng.Schedule(done, onDone)
	}
	return done
}

// Transferred returns total bytes moved through this engine.
func (c *CopyEngine) Transferred() int64 { return c.transferred }

// BusyUntil returns the time the engine drains its queue.
func (c *CopyEngine) BusyUntil() time.Duration { return c.busyUntil }
