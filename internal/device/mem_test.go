package device

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestMemPoolAllocFree(t *testing.T) {
	p := NewMemPool("gpu:0", 100)
	if err := p.Alloc(60); err != nil {
		t.Fatalf("Alloc(60): %v", err)
	}
	if got := p.Used(); got != 60 {
		t.Fatalf("Used() = %d, want 60", got)
	}
	if got := p.Available(); got != 40 {
		t.Fatalf("Available() = %d, want 40", got)
	}
	p.Free(20)
	if got := p.Used(); got != 40 {
		t.Fatalf("Used() after free = %d, want 40", got)
	}
}

func TestMemPoolOOM(t *testing.T) {
	p := NewMemPool("gpu:0", 100)
	if err := p.Alloc(90); err != nil {
		t.Fatalf("Alloc(90): %v", err)
	}
	err := p.Alloc(20)
	if err == nil {
		t.Fatal("Alloc(20) beyond capacity succeeded")
	}
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("error %T, want *OOMError", err)
	}
	if oom.Requested != 20 || oom.Used != 90 || oom.Capacity != 100 {
		t.Fatalf("OOM fields = %+v", oom)
	}
	// A failed allocation must not change usage.
	if got := p.Used(); got != 90 {
		t.Fatalf("Used() after OOM = %d, want 90", got)
	}
}

func TestMemPoolZeroAndNegativeAreNoOps(t *testing.T) {
	p := NewMemPool("gpu:0", 10)
	if err := p.Alloc(0); err != nil {
		t.Fatalf("Alloc(0): %v", err)
	}
	if err := p.Alloc(-5); err != nil {
		t.Fatalf("Alloc(-5): %v", err)
	}
	p.Free(0)
	p.Free(-5)
	if p.Used() != 0 {
		t.Fatalf("Used() = %d, want 0", p.Used())
	}
}

func TestMemPoolPeakTracksHighWater(t *testing.T) {
	p := NewMemPool("gpu:0", 100)
	_ = p.Alloc(70)
	p.Free(50)
	_ = p.Alloc(30)
	if got := p.Peak(); got != 70 {
		t.Fatalf("Peak() = %d, want 70", got)
	}
}

func TestMemPoolOverFreePanics(t *testing.T) {
	p := NewMemPool("gpu:0", 100)
	_ = p.Alloc(10)
	defer func() {
		if recover() == nil {
			t.Error("over-free did not panic")
		}
	}()
	p.Free(20)
}

// Property: any sequence of allocations that all succeed keeps
// used <= capacity and used equals the sum of live allocations.
func TestMemPoolInvariantProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		p := NewMemPool("gpu:0", 1<<20)
		var live int64
		for _, s := range sizes {
			n := int64(s)
			if err := p.Alloc(n); err != nil {
				var oom *OOMError
				if !errors.As(err, &oom) {
					return false
				}
				continue
			}
			live += n
			if p.Used() > p.Capacity() {
				return false
			}
		}
		return p.Used() == live
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
