package device

import (
	"testing"

	"switchflow/internal/sim"
)

func TestMachineDeviceEnumeration(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTwoGPUServer(eng)
	ids := m.Devices()
	if len(ids) != 3 {
		t.Fatalf("Devices() = %v, want cpu + 2 gpus", ids)
	}
	if ids[0] != CPUID || ids[1] != GPUID(0) || ids[2] != GPUID(1) {
		t.Fatalf("Devices() = %v", ids)
	}
	if m.GPU(0).Class.Name != ClassGTX1080Ti.Name {
		t.Fatalf("gpu:0 = %s, want GTX 1080 Ti", m.GPU(0).Class.Name)
	}
	if m.GPU(1).Class.Name != ClassRTX2080Ti.Name {
		t.Fatalf("gpu:1 = %s, want RTX 2080 Ti", m.GPU(1).Class.Name)
	}
	if m.GPU(2) != nil {
		t.Fatal("GPU(2) should be nil on a two-GPU server")
	}
}

func TestMachineCopyPaths(t *testing.T) {
	eng := sim.NewEngine()
	m := NewTwoGPUServer(eng)
	tests := []struct {
		src, dst ID
		want     *CopyEngine
		wantErr  bool
	}{
		{CPUID, GPUID(0), m.HostToDevice(0), false},
		{CPUID, GPUID(1), m.HostToDevice(1), false},
		{GPUID(1), CPUID, m.DeviceToHost(1), false},
		{GPUID(0), GPUID(1), m.Peer(), false},
		{CPUID, CPUID, nil, true},
	}
	for _, tt := range tests {
		got, err := m.CopyPath(tt.src, tt.dst)
		if tt.wantErr {
			if err == nil {
				t.Errorf("CopyPath(%v,%v): want error", tt.src, tt.dst)
			}
			continue
		}
		if err != nil {
			t.Errorf("CopyPath(%v,%v): %v", tt.src, tt.dst, err)
			continue
		}
		if got != tt.want {
			t.Errorf("CopyPath(%v,%v) wrong engine", tt.src, tt.dst)
		}
	}
}

func TestV100ServerHasFourGPUs(t *testing.T) {
	m := NewV100Server(sim.NewEngine())
	if len(m.GPUs) != 4 {
		t.Fatalf("V100 server has %d GPUs, want 4", len(m.GPUs))
	}
	for _, g := range m.GPUs {
		if g.Mem.Capacity() != 32<<30 {
			t.Fatalf("V100 memory = %d, want 32 GiB", g.Mem.Capacity())
		}
	}
}

func TestJetsonTX2Profile(t *testing.T) {
	m := NewJetsonTX2(sim.NewEngine())
	if m.CPU.Cores != 4 {
		t.Fatalf("TX2 cores = %d, want 4", m.CPU.Cores)
	}
	if len(m.GPUs) != 1 {
		t.Fatalf("TX2 GPUs = %d, want 1", len(m.GPUs))
	}
}

func TestDeviceIDString(t *testing.T) {
	tests := []struct {
		id   ID
		want string
	}{
		{CPUID, "cpu:0"},
		{GPUID(0), "gpu:0"},
		{GPUID(3), "gpu:3"},
	}
	for _, tt := range tests {
		if got := tt.id.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", tt.id, got, tt.want)
		}
	}
}
