// Package device models the hardware substrate SwitchFlow schedules onto:
// GPUs with finite memory and processor-shared kernel execution, CPU
// classes, and PCIe copy engines. All devices advance in virtual time via a
// sim.Engine.
package device

import (
	"fmt"
	"time"
)

// Kind discriminates device categories.
type Kind int

// Device kinds.
const (
	KindCPU Kind = iota + 1
	KindGPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindGPU:
		return "gpu"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ID names a device within a machine, e.g. gpu:0 or cpu:0.
type ID struct {
	Kind  Kind
	Index int
}

// CPUID is the canonical identifier of the (single) CPU device.
var CPUID = ID{Kind: KindCPU}

// GPUID returns the identifier of the i-th GPU.
func GPUID(i int) ID { return ID{Kind: KindGPU, Index: i} }

// String implements fmt.Stringer.
func (id ID) String() string { return fmt.Sprintf("%s:%d", id.Kind, id.Index) }

// GPUClass describes a GPU model's capabilities. Durations produced by the
// cost model are derived from these numbers.
type GPUClass struct {
	// Name is the marketing name, e.g. "Tesla V100".
	Name string
	// FP32TFLOPS is peak single-precision throughput.
	FP32TFLOPS float64
	// MemBandwidthGBps is peak device-memory bandwidth.
	MemBandwidthGBps float64
	// MemoryBytes is usable device memory.
	MemoryBytes int64
	// PCIeGBps is the effective host-link bandwidth for bulk copies.
	PCIeGBps float64
	// SMs is the number of streaming multiprocessors.
	SMs int
	// LaunchOverhead is the CPU-side cost of issuing one kernel.
	LaunchOverhead time.Duration
	// Efficiency is the fraction of peak a well-tuned DL kernel achieves.
	Efficiency float64
}

// The GPU classes used in the paper's evaluation (§5.1).
var (
	// ClassV100 is the NVIDIA Tesla V100 SXM2 32 GB.
	ClassV100 = GPUClass{
		Name:             "Tesla V100",
		FP32TFLOPS:       15.7,
		MemBandwidthGBps: 900,
		MemoryBytes:      32 << 30,
		PCIeGBps:         11.3,
		SMs:              80,
		LaunchOverhead:   6 * time.Microsecond,
		Efficiency:       0.55,
	}
	// ClassRTX2080Ti is the NVIDIA GeForce RTX 2080 Ti 11 GB.
	ClassRTX2080Ti = GPUClass{
		Name:             "RTX 2080 Ti",
		FP32TFLOPS:       13.4,
		MemBandwidthGBps: 616,
		MemoryBytes:      11 << 30,
		PCIeGBps:         11.3,
		SMs:              68,
		LaunchOverhead:   6 * time.Microsecond,
		Efficiency:       0.50,
	}
	// ClassGTX1080Ti is the NVIDIA GeForce GTX 1080 Ti 11 GB.
	ClassGTX1080Ti = GPUClass{
		Name:             "GTX 1080 Ti",
		FP32TFLOPS:       11.3,
		MemBandwidthGBps: 484,
		MemoryBytes:      11 << 30,
		PCIeGBps:         11.3,
		SMs:              28,
		LaunchOverhead:   7 * time.Microsecond,
		Efficiency:       0.45,
	}
	// ClassJetsonTX2 is the embedded Jetson TX2 (256-core Pascal, memory
	// shared with the CPU).
	ClassJetsonTX2 = GPUClass{
		Name:             "Jetson TX2",
		FP32TFLOPS:       0.67,
		MemBandwidthGBps: 58.3,
		MemoryBytes:      8 << 30,
		PCIeGBps:         8.0, // shared DRAM; copies are cheap but not free
		SMs:              2,
		LaunchOverhead:   25 * time.Microsecond,
		Efficiency:       0.40,
	}
)

// CPUClass describes the host CPU: core count and a relative speed factor
// (1.0 = one dual-socket Xeon core from the paper's servers).
type CPUClass struct {
	// Name is a human-readable label.
	Name string
	// Cores is the number of hardware threads usable by worker pools.
	Cores int
	// SpeedFactor scales per-op CPU durations (<1 is slower).
	SpeedFactor float64
	// GFLOPS is the per-core dense-math throughput, used when a graph is
	// migrated to run its GPU ops on the CPU (e.g. via an MKL executor).
	GFLOPS float64
}

// The CPU classes used in the paper's evaluation.
var (
	// ClassXeonDual models the dual 18-core Intel Xeon servers.
	ClassXeonDual = CPUClass{
		Name:        "2x Xeon 18-core",
		Cores:       36,
		SpeedFactor: 1.0,
		GFLOPS:      32,
	}
	// ClassCortexA57 models the Jetson TX2's quad-core ARM complex.
	ClassCortexA57 = CPUClass{
		Name:        "4x Cortex-A57",
		Cores:       4,
		SpeedFactor: 0.50,
		GFLOPS:      8,
	}
)
