package device

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"switchflow/internal/obs"
	"switchflow/internal/sim"
)

func newTestGPU() (*sim.Engine, *GPU) {
	eng := sim.NewEngine()
	return eng, NewGPU(eng, GPUID(0), ClassV100)
}

func TestGPUSingleKernelRunsAtSoloSpeed(t *testing.T) {
	eng, gpu := newTestGPU()
	var done time.Duration = -1
	gpu.Submit(Kernel{
		Name:      "k",
		Work:      10 * time.Millisecond,
		Occupancy: 0.9,
		OnDone:    func() { done = eng.Now() },
	})
	eng.Run()
	if done != 10*time.Millisecond {
		t.Fatalf("kernel finished at %v, want 10ms", done)
	}
}

func TestGPUHeavyKernelsSerialize(t *testing.T) {
	// Two register-bound kernels cannot co-run (§2.2): the second waits
	// for the first, completing at exactly 2x solo time.
	eng, gpu := newTestGPU()
	var ends []time.Duration
	for i := 0; i < 2; i++ {
		gpu.Submit(Kernel{
			Name:      "heavy",
			Work:      10 * time.Millisecond,
			Occupancy: 0.9,
			Ctx:       i,
			OnDone:    func() { ends = append(ends, eng.Now()) },
		})
	}
	if gpu.Active() != 1 || gpu.Waiting() != 1 {
		t.Fatalf("active=%d waiting=%d, want 1/1", gpu.Active(), gpu.Waiting())
	}
	eng.Run()
	if ends[0] != 10*time.Millisecond || ends[1] != 20*time.Millisecond {
		t.Fatalf("completions %v, want [10ms 20ms]", ends)
	}
}

func TestGPULightKernelsOverlap(t *testing.T) {
	// Two low-occupancy kernels fit together and co-run with only the
	// mild contention factor.
	eng, gpu := newTestGPU()
	var last time.Duration
	for i := 0; i < 2; i++ {
		gpu.Submit(Kernel{
			Name:      "light",
			Work:      10 * time.Millisecond,
			Occupancy: 0.3,
			OnDone:    func() { last = eng.Now() },
		})
	}
	if gpu.Active() != 2 {
		t.Fatalf("active = %d, want 2 (0.3+0.3 fits)", gpu.Active())
	}
	eng.Run()
	solo := 10 * time.Millisecond
	want := time.Duration(float64(solo) * (1 + contentionBeta))
	if diff := (last - want).Abs(); diff > 100*time.Microsecond {
		t.Fatalf("overlapped kernels finished at %v, want ~%v", last, want)
	}
}

func TestGPUHeavyBlocksLight(t *testing.T) {
	// A 0.9-occupancy kernel leaves no room: a light kernel behind it in
	// the lane waits (head-of-line, like a hardware work queue).
	eng, gpu := newTestGPU()
	var lightEnd time.Duration
	gpu.Submit(Kernel{Name: "heavy", Work: 10 * time.Millisecond, Occupancy: 0.9})
	gpu.Submit(Kernel{Name: "light", Work: time.Millisecond, Occupancy: 0.3,
		OnDone: func() { lightEnd = eng.Now() }})
	eng.Run()
	if lightEnd != 11*time.Millisecond {
		t.Fatalf("light kernel ended at %v, want 11ms (after heavy)", lightEnd)
	}
}

func TestGPUStaggeredHeavySubmission(t *testing.T) {
	// k1 runs 0-10ms; k2 arrives at 5ms, waits, runs 10-20ms — the
	// "waiting to be issued" serialization of Figure 2.
	eng, gpu := newTestGPU()
	ends := map[string]time.Duration{}
	gpu.Submit(Kernel{Name: "k1", Work: 10 * time.Millisecond, Occupancy: 0.9,
		OnDone: func() { ends["k1"] = eng.Now() }})
	eng.After(5*time.Millisecond, func() {
		gpu.Submit(Kernel{Name: "k2", Work: 10 * time.Millisecond, Occupancy: 0.9,
			OnDone: func() { ends["k2"] = eng.Now() }})
	})
	eng.Run()
	if ends["k1"] != 10*time.Millisecond {
		t.Fatalf("k1 ended at %v, want 10ms", ends["k1"])
	}
	if ends["k2"] != 20*time.Millisecond {
		t.Fatalf("k2 ended at %v, want 20ms", ends["k2"])
	}
}

func TestGPUBusyTimeAccounting(t *testing.T) {
	eng, gpu := newTestGPU()
	gpu.Submit(Kernel{Name: "a", Work: 4 * time.Millisecond, Occupancy: 0.9})
	eng.Run()
	eng.RunUntil(20 * time.Millisecond) // idle gap
	eng.Schedule(20*time.Millisecond, func() {
		gpu.Submit(Kernel{Name: "b", Work: 6 * time.Millisecond, Occupancy: 0.9})
	})
	eng.Run()
	if got, want := gpu.BusyTime(), 10*time.Millisecond; got != want {
		t.Fatalf("BusyTime() = %v, want %v", got, want)
	}
}

func TestGPUOutstandingWorkIncludesQueue(t *testing.T) {
	eng, gpu := newTestGPU()
	gpu.Submit(Kernel{Name: "a", Work: 10 * time.Millisecond, Occupancy: 0.9})
	gpu.Submit(Kernel{Name: "b", Work: 10 * time.Millisecond, Occupancy: 0.9})
	var outstanding time.Duration
	eng.Schedule(4*time.Millisecond, func() { outstanding = gpu.OutstandingWork() })
	eng.Run()
	if diff := (outstanding - 16*time.Millisecond).Abs(); diff > 10*time.Microsecond {
		t.Fatalf("OutstandingWork() = %v, want ~16ms (6 running + 10 queued)", outstanding)
	}
}

// collectSpans subscribes a sink to the GPU's bus and returns the slice
// kernel-span events accumulate into.
func collectSpans(gpu *GPU) *[]Span {
	spans := &[]Span{}
	gpu.EventBus().Subscribe(obs.SinkFunc(func(e obs.Event) {
		*spans = append(*spans, Span{Name: e.Name, Ctx: e.Ctx, Start: e.Start, End: e.Start + e.Dur})
	}), obs.KindKernelSpan)
	return spans
}

func TestGPUEmitsKernelSpans(t *testing.T) {
	eng, gpu := newTestGPU()
	spansp := collectSpans(gpu)
	gpu.Submit(Kernel{Name: "k", Ctx: 7, Work: 3 * time.Millisecond, Occupancy: 0.9})
	eng.Run()
	spans := *spansp
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "k" || s.Ctx != 7 || s.Start != 0 || s.End != 3*time.Millisecond {
		t.Fatalf("span = %+v", s)
	}
}

func TestGPUSpanSinksCompose(t *testing.T) {
	eng, gpu := newTestGPU()
	first := collectSpans(gpu)
	second := collectSpans(gpu)
	gpu.Submit(Kernel{Name: "k", Ctx: 1, Work: time.Millisecond, Occupancy: 0.9})
	eng.Run()
	if len(*first) != 1 || len(*second) != 1 {
		t.Fatalf("both sinks should observe the span: first=%d second=%d", len(*first), len(*second))
	}
}

func TestGPUSpanStartIsAdmissionTime(t *testing.T) {
	eng, gpu := newTestGPU()
	spansp := collectSpans(gpu)
	gpu.Submit(Kernel{Name: "a", Work: 10 * time.Millisecond, Occupancy: 0.9})
	gpu.Submit(Kernel{Name: "b", Work: 5 * time.Millisecond, Occupancy: 0.9})
	eng.Run()
	spans := *spansp
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[1].Start != 10*time.Millisecond {
		t.Fatalf("queued kernel's span starts at %v, want 10ms (admission)", spans[1].Start)
	}
}

func TestGPUChainedSubmissionFromCallback(t *testing.T) {
	eng, gpu := newTestGPU()
	var ends []time.Duration
	gpu.Submit(Kernel{Name: "first", Work: time.Millisecond, Occupancy: 0.9,
		OnDone: func() {
			ends = append(ends, eng.Now())
			gpu.Submit(Kernel{Name: "second", Work: time.Millisecond, Occupancy: 0.9,
				OnDone: func() { ends = append(ends, eng.Now()) }})
		}})
	eng.Run()
	if len(ends) != 2 {
		t.Fatalf("got %d completions, want 2", len(ends))
	}
	if ends[0] != time.Millisecond || ends[1] != 2*time.Millisecond {
		t.Fatalf("completions at %v, want [1ms 2ms]", ends)
	}
}

func TestGPUCoTrainSlowdownMatchesCalibration(t *testing.T) {
	// Serialized heavy kernels halve per-job throughput: 226 img/s solo
	// drops to ~113, matching the paper's 116 (Figure 2).
	if got := 226.0 / 2; math.Abs(got-116) > 5 {
		t.Fatalf("co-run throughput = %.1f img/s, want ~116", got)
	}
}

// Property: under any submission pattern, total GPU work conserves — every
// kernel eventually completes exactly once, and the device drains.
func TestGPUWorkConservationProperty(t *testing.T) {
	prop := func(works []uint8, delays []uint8, occs []uint8) bool {
		eng, gpu := newTestGPU()
		completions := 0
		n := len(works)
		if n > len(delays) {
			n = len(delays)
		}
		if n > len(occs) {
			n = len(occs)
		}
		for i := 0; i < n; i++ {
			w := time.Duration(works[i]+1) * 100 * time.Microsecond
			d := time.Duration(delays[i]) * 50 * time.Microsecond
			occ := float64(occs[i]%10) / 10
			eng.Schedule(d, func() {
				gpu.Submit(Kernel{Name: "p", Work: w, Occupancy: occ,
					OnDone: func() { completions++ }})
			})
		}
		eng.Run()
		return completions == n && gpu.Active() == 0 && gpu.Waiting() == 0
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO admission — among same-occupancy kernels, completion
// order equals submission order.
func TestGPUFIFOProperty(t *testing.T) {
	prop := func(works []uint8) bool {
		eng, gpu := newTestGPU()
		var order []int
		for i, w := range works {
			i := i
			gpu.Submit(Kernel{
				Name: "k", Work: time.Duration(w+1) * 10 * time.Microsecond,
				Occupancy: 0.9,
				OnDone:    func() { order = append(order, i) },
			})
		}
		eng.Run()
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return len(order) == len(works)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
