package device

import (
	"fmt"

	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/topology"
)

// Machine assembles the devices of one server: a CPU class, zero or more
// GPUs, and per-GPU copy engines (host-to-device, device-to-host, and a
// peer path used for migration).
type Machine struct {
	// Eng is the virtual clock every device shares.
	Eng *sim.Engine
	// CPU describes the host processor.
	CPU CPUClass
	// GPUs are the attached accelerators, indexed by GPUID.
	GPUs []*GPU

	bus    *obs.Bus
	h2d    []*CopyEngine
	d2h    []*CopyEngine
	peer   *CopyEngine
	fabric *topology.Fabric
}

// NewMachine builds a machine with the given CPU and GPU classes. All of
// the machine's devices publish to one shared observability bus, so a
// single subscriber sees every layer's events in one sequence.
func NewMachine(eng *sim.Engine, cpu CPUClass, gpuClasses ...GPUClass) *Machine {
	m := &Machine{Eng: eng, CPU: cpu, bus: obs.NewBus(eng)}
	peerBW := 0.0
	for i, class := range gpuClasses {
		gpu := NewGPU(eng, GPUID(i), class)
		gpu.SetBus(m.bus)
		m.GPUs = append(m.GPUs, gpu)
		m.h2d = append(m.h2d, NewCopyEngine(eng, class.PCIeGBps))
		m.d2h = append(m.d2h, NewCopyEngine(eng, class.PCIeGBps))
		if class.PCIeGBps > peerBW {
			peerBW = class.PCIeGBps
		}
	}
	if peerBW == 0 {
		peerBW = 11.3
	}
	m.peer = NewCopyEngine(eng, peerBW)
	// Default interconnect: every GPU pair shares the PCIe tree at the
	// peer-path bandwidth. Testbeds with NVLink install a richer fabric
	// via SetFabric before jobs arrive.
	m.fabric = topology.NewPCIe(len(gpuClasses), peerBW)
	return m
}

// Fabric returns the machine's GPU interconnect model.
func (m *Machine) Fabric() *topology.Fabric { return m.fabric }

// SetFabric installs an interconnect model spanning exactly the
// machine's GPUs. Call at construction time, before jobs are admitted —
// all-reduce pricing reads the fabric on every gang step.
func (m *Machine) SetFabric(f *topology.Fabric) error {
	if f == nil || f.Size() != len(m.GPUs) {
		return fmt.Errorf("device: fabric spans %d GPUs, machine has %d", sizeOf(f), len(m.GPUs))
	}
	m.fabric = f
	return nil
}

func sizeOf(f *topology.Fabric) int {
	if f == nil {
		return 0
	}
	return f.Size()
}

// Bus returns the machine's shared observability bus.
func (m *Machine) Bus() *obs.Bus { return m.bus }

// GPU returns the i-th GPU or nil when out of range.
func (m *Machine) GPU(i int) *GPU {
	if i < 0 || i >= len(m.GPUs) {
		return nil
	}
	return m.GPUs[i]
}

// HostToDevice returns the upload channel of GPU i.
func (m *Machine) HostToDevice(i int) *CopyEngine { return m.h2d[i] }

// DeviceToHost returns the download channel of GPU i.
func (m *Machine) DeviceToHost(i int) *CopyEngine { return m.d2h[i] }

// Peer returns the GPU-to-GPU copy path (PCIe 3.0 x16 in the paper's
// servers; Table 1 measures state transfer over this path).
func (m *Machine) Peer() *CopyEngine { return m.peer }

// CopyPath returns the channel a transfer from src to dst uses.
func (m *Machine) CopyPath(src, dst ID) (*CopyEngine, error) {
	switch {
	case src.Kind == KindCPU && dst.Kind == KindGPU:
		return m.h2d[dst.Index], nil
	case src.Kind == KindGPU && dst.Kind == KindCPU:
		return m.d2h[src.Index], nil
	case src.Kind == KindGPU && dst.Kind == KindGPU:
		return m.peer, nil
	default:
		return nil, fmt.Errorf("no copy path %v -> %v", src, dst)
	}
}

// Healthy reports whether id can run work: the CPU always can; a GPU can
// unless it has failed (out-of-range GPU indices are unhealthy too).
func (m *Machine) Healthy(id ID) bool {
	if id.Kind != KindGPU {
		return true
	}
	gpu := m.GPU(id.Index)
	return gpu != nil && !gpu.Failed()
}

// Placeable reports whether id may receive new placements: healthy and,
// for GPUs, not administratively draining. Drained devices keep running
// what they already host until the scheduler moves it off.
func (m *Machine) Placeable(id ID) bool {
	if id.Kind != KindGPU {
		return true
	}
	gpu := m.GPU(id.Index)
	return gpu != nil && !gpu.Failed() && !gpu.Draining()
}

// HealthyGPUs returns how many GPUs have not failed.
func (m *Machine) HealthyGPUs() int {
	n := 0
	for _, gpu := range m.GPUs {
		if !gpu.Failed() {
			n++
		}
	}
	return n
}

// Devices returns all device identifiers: the CPU first, then each GPU.
func (m *Machine) Devices() []ID {
	ids := make([]ID, 0, len(m.GPUs)+1)
	ids = append(ids, CPUID)
	for i := range m.GPUs {
		ids = append(ids, GPUID(i))
	}
	return ids
}

// The paper's testbeds (§5.1).

// NewTwoGPUServer models the server with a GTX 1080 Ti (gpu:0) and an
// RTX 2080 Ti (gpu:1).
func NewTwoGPUServer(eng *sim.Engine) *Machine {
	return NewMachine(eng, ClassXeonDual, ClassGTX1080Ti, ClassRTX2080Ti)
}

// NewV100Server models the 4x Tesla V100 server.
func NewV100Server(eng *sim.Engine) *Machine {
	return NewMachine(eng, ClassXeonDual, ClassV100, ClassV100, ClassV100, ClassV100)
}

// NewJetsonTX2 models the embedded board (CPU and GPU share DRAM; the
// shared pool is attached to the GPU device).
func NewJetsonTX2(eng *sim.Engine) *Machine {
	return NewMachine(eng, ClassCortexA57, ClassJetsonTX2)
}

// NewNVLinkV100Server models the 4x Tesla V100 server with NVLink pairs:
// GPUs {0,1} and {2,3} are NVLink islands; cross-island traffic rides
// PCIe. This is the testbed where gang placement quality is measurable —
// a 2-replica gang on one island syncs gradients several times faster
// than the same gang straddling the PCIe switch.
func NewNVLinkV100Server(eng *sim.Engine) *Machine {
	m := NewV100Server(eng)
	fabric := topology.NVLinkIslands(len(m.GPUs), 2, ClassV100.PCIeGBps, topology.DefaultNVLinkGBps)
	if err := m.SetFabric(fabric); err != nil {
		panic(err) // unreachable: fabric is sized from the machine itself
	}
	return m
}
