package device

import (
	"math"
	"time"

	"switchflow/internal/obs"
	"switchflow/internal/sim"
)

// Kernel is one unit of GPU work submitted for execution.
type Kernel struct {
	// Name labels the kernel in traces, e.g. "conv2d_3/fwd".
	Name string
	// Work is the solo execution time of the kernel on this GPU.
	Work time.Duration
	// Occupancy in [0,1] is the fraction of GPU resources (registers,
	// SMs) the kernel's launch configuration consumes. Heavy cuDNN-style
	// kernels are near 1 and cannot co-run (§2.2: 10 of 13 conv kernels
	// were register-bottlenecked), so a second heavy kernel waits — the
	// serialization visible in Figure 2.
	Occupancy float64
	// Ctx identifies the owning context (job) for traces and accounting.
	Ctx int
	// OnDone fires at kernel completion, in virtual time.
	OnDone func()
}

// Span records one executed kernel interval, for Figure 2 style timelines.
type Span struct {
	Name  string
	Ctx   int
	Start time.Duration
	End   time.Duration
}

// kernelExec is a kernel in flight or queued at the device.
type kernelExec struct {
	Kernel

	remaining float64 // seconds of solo work left
	started   time.Duration
	occ       float64
}

// contentionBeta is the per-extra-kernel slowdown when kernels do co-run
// (shared memory bandwidth and cache pressure).
const contentionBeta = 0.06

// GPU is a simulated graphics processor. Kernels are admitted in FIFO
// order while their combined occupancy fits the device (capacity 1.0);
// admitted kernels run concurrently at a mildly contended rate, everything
// else waits. Exclusive use is a scheduler-level policy, not a device
// property, exactly as on real hardware.
type GPU struct {
	// Class describes the hardware.
	Class GPUClass
	// Mem is the device memory pool.
	Mem *MemPool

	bus        *obs.Bus
	id         ID
	eng        *sim.Engine
	running    []*kernelExec
	queue      []*kernelExec
	usedOcc    float64
	lastUpdate time.Duration
	completion sim.Event
	busy       time.Duration
	busySince  time.Duration
	launched   uint64
	dropped    uint64
	failed     bool
	draining   bool
	slowdown   float64 // execution slowdown while degraded; 0 or 1 = healthy
}

// NewGPU creates a GPU of the given class bound to the engine.
func NewGPU(eng *sim.Engine, id ID, class GPUClass) *GPU {
	return &GPU{
		Class: class,
		Mem:   NewMemPool(id.String()+" ("+class.Name+")", class.MemoryBytes),
		id:    id,
		eng:   eng,
	}
}

// ID returns the device identifier.
func (g *GPU) ID() ID { return g.id }

// EventBus returns the observability bus this GPU publishes to. GPUs
// built through NewMachine share the machine's bus; a standalone GPU
// lazily creates a private one so tests can subscribe directly.
func (g *GPU) EventBus() *obs.Bus {
	if g.bus == nil {
		g.bus = obs.NewBus(g.eng)
	}
	return g.bus
}

// SetBus points the GPU at a shared bus (called by NewMachine).
func (g *GPU) SetBus(b *obs.Bus) { g.bus = b }

// Submit queues k for execution. It starts immediately if its occupancy
// fits alongside the kernels already running, otherwise it waits FIFO.
// Kernels submitted to a failed device are dropped and never complete,
// like launches against a lost CUDA context; schedulers are expected to
// abort the owning executor runs when they handle the device-lost fault.
func (g *GPU) Submit(k Kernel) {
	if g.failed {
		g.dropped++
		return
	}
	g.advance()
	occ := k.Occupancy
	if occ < 0.05 {
		occ = 0.05
	}
	if occ > 1 {
		occ = 1
	}
	exec := &kernelExec{
		Kernel:    k,
		remaining: k.Work.Seconds(),
		occ:       occ,
	}
	g.queue = append(g.queue, exec)
	g.launched++
	g.admit()
	g.reschedule()
}

// Active returns the number of kernels currently executing.
func (g *GPU) Active() int { return len(g.running) }

// Waiting returns the number of kernels queued at the device.
func (g *GPU) Waiting() int { return len(g.queue) }

// Launched returns the total number of kernels ever submitted.
func (g *GPU) Launched() uint64 { return g.launched }

// Draining reports whether the device is being drained for maintenance:
// it still executes work, but placement layers must stop assigning new
// jobs or virtual nodes to it.
func (g *GPU) Draining() bool { return g.draining }

// SetDraining marks (or clears) the device's administrative drain state.
// Unlike Fail it has no hardware effect — in-flight kernels finish and
// resident memory stays valid, so schedulers can migrate state off the
// device over the cheap peer path.
func (g *GPU) SetDraining(v bool) { g.draining = v }

// BusyTime returns the accumulated time during which at least one kernel
// was executing, for utilization accounting (Figure 3).
func (g *GPU) BusyTime() time.Duration {
	if len(g.running) > 0 {
		return g.busy + (g.eng.Now() - g.busySince)
	}
	return g.busy
}

// Failed reports whether the device has been lost (fault injection).
func (g *GPU) Failed() bool { return g.failed }

// Slowdown returns the current degraded-mode slowdown factor (1 while
// healthy).
func (g *GPU) Slowdown() float64 {
	if g.slowdown <= 1 {
		return 1
	}
	return g.slowdown
}

// DroppedKernels returns how many kernels were discarded — in flight or
// queued at Fail time, or submitted after it.
func (g *GPU) DroppedKernels() uint64 { return g.dropped }

// Fail takes the device off the bus: every in-flight and queued kernel is
// discarded without completing (their OnDone callbacks never fire) and
// the memory pool's contents are lost. It returns the number of kernels
// dropped. Further Submits are dropped too, until Heal.
func (g *GPU) Fail() int {
	if g.failed {
		return 0
	}
	g.advance()
	if len(g.running) > 0 {
		g.busy += g.eng.Now() - g.busySince
	}
	lost := len(g.running) + len(g.queue)
	g.dropped += uint64(lost)
	g.running = g.running[:0]
	g.queue = g.queue[:0]
	g.usedOcc = 0
	g.completion.Cancel()
	g.completion = sim.Event{}
	g.failed = true
	g.Mem.Invalidate()
	return lost
}

// Degrade slows kernel execution by factor (>= 1), modelling a device in
// a throttled or error-retry state (e.g. after correctable ECC errors).
// Degrading a failed device has no effect until it heals.
func (g *GPU) Degrade(factor float64) {
	if factor < 1 {
		factor = 1
	}
	g.advance()
	g.slowdown = factor
	g.reschedule()
}

// Heal returns the device to healthy full-speed operation. Memory lost at
// Fail time stays lost; jobs must restore state from host checkpoints.
func (g *GPU) Heal() {
	g.advance()
	g.failed = false
	g.slowdown = 0
	g.reschedule()
}

// OutstandingWork returns the remaining solo-time of executing plus queued
// kernels. Preemption must wait out (at worst) this backlog (§3.3).
func (g *GPU) OutstandingWork() time.Duration {
	g.advance()
	var total float64
	for _, e := range g.running {
		total += e.remaining
	}
	for _, e := range g.queue {
		total += e.remaining
	}
	return time.Duration(total * float64(time.Second))
}

// admit moves queued kernels into execution while they fit, in FIFO order
// (a big kernel at the head blocks the lane, like a hardware work queue).
func (g *GPU) admit() {
	for len(g.queue) > 0 {
		head := g.queue[0]
		if g.usedOcc+head.occ > 1.0001 {
			return
		}
		g.queue = g.queue[1:]
		if len(g.running) == 0 {
			g.busySince = g.eng.Now()
		}
		head.started = g.eng.Now()
		g.usedOcc += head.occ
		g.running = append(g.running, head)
	}
}

// advance applies elapsed virtual time to running kernels at the current
// contention rate, without completing any of them.
func (g *GPU) advance() {
	now := g.eng.Now()
	elapsed := (now - g.lastUpdate).Seconds()
	g.lastUpdate = now
	if elapsed <= 0 || len(g.running) == 0 {
		return
	}
	rate := g.rate()
	for _, e := range g.running {
		e.remaining -= elapsed * rate
		if e.remaining < 0 {
			e.remaining = 0
		}
	}
}

// rate is the execution speed of each co-running kernel: full speed alone,
// mildly degraded when kernels genuinely overlap, further scaled down
// while the device is in a degraded fault state.
func (g *GPU) rate() float64 {
	rate := 1.0
	if n := len(g.running); n > 1 {
		rate = 1 / (1 + contentionBeta*float64(n-1))
	}
	if g.slowdown > 1 {
		rate /= g.slowdown
	}
	return rate
}

// reschedule cancels any pending completion event and schedules one for
// the earliest-finishing running kernel.
func (g *GPU) reschedule() {
	g.completion.Cancel()
	if len(g.running) == 0 {
		return
	}
	rate := g.rate()
	minLeft := math.MaxFloat64
	for _, e := range g.running {
		if left := e.remaining / rate; left < minLeft {
			minLeft = left
		}
	}
	// Round up to a whole nanosecond so a kernel with sub-nanosecond
	// residue cannot reschedule a zero-delay completion forever.
	delay := time.Duration(math.Ceil(minLeft * float64(time.Second)))
	g.completion = g.eng.After(delay, g.complete)
}

// complete retires every kernel whose work has drained, fires callbacks,
// admits waiters, and reschedules.
func (g *GPU) complete() {
	g.advance()
	// Anything under a nanosecond of solo work is done: the event queue's
	// resolution is 1 ns, so finer residues can never drain.
	const eps = 1e-9
	var done []*kernelExec
	remaining := g.running[:0]
	for _, e := range g.running {
		if e.remaining <= eps {
			done = append(done, e)
			g.usedOcc -= e.occ
		} else {
			remaining = append(remaining, e)
		}
	}
	g.running = remaining
	if len(g.running) == 0 {
		if len(done) > 0 {
			g.busy += g.eng.Now() - g.busySince
		}
		g.usedOcc = 0 // absorb float drift at idle points
	}
	g.admit()
	emitSpans := g.bus.Wants(obs.KindKernelSpan)
	for _, e := range done {
		if emitSpans {
			g.bus.Emit(obs.Event{
				Kind:   obs.KindKernelSpan,
				Ctx:    e.Ctx,
				Device: g.id.String(),
				Name:   e.Name,
				Start:  e.started,
				Dur:    g.eng.Now() - e.started,
			})
		}
		if e.OnDone != nil {
			e.OnDone()
		}
	}
	// Callbacks may have submitted new kernels (Submit reschedules), but
	// if they did not we still need a completion event for survivors.
	if !g.completion.Scheduled() {
		g.reschedule()
	}
}
