package device

import "fmt"

// OOMError reports a failed device-memory allocation. It carries enough
// context to render the paper's "model crashes due to OOM" outcomes.
type OOMError struct {
	Device    string
	Requested int64
	Used      int64
	Capacity  int64
}

// Error implements the error interface.
func (e *OOMError) Error() string {
	return fmt.Sprintf("%s: out of memory: requested %d B with %d/%d B in use",
		e.Device, e.Requested, e.Used, e.Capacity)
}

// MemPool is a byte-granular device memory accountant. It tracks the
// current usage and the high-water mark; allocation beyond capacity fails
// with *OOMError. It does not model fragmentation.
type MemPool struct {
	device   string
	capacity int64
	used     int64
	peak     int64
}

// NewMemPool returns a pool of the given capacity labelled with the device
// name (used in OOM errors).
func NewMemPool(deviceName string, capacity int64) *MemPool {
	return &MemPool{device: deviceName, capacity: capacity}
}

// Alloc reserves n bytes, failing with *OOMError when the pool would
// overflow. Zero and negative sizes are no-ops.
func (p *MemPool) Alloc(n int64) error {
	if n <= 0 {
		return nil
	}
	if p.used+n > p.capacity {
		return &OOMError{
			Device:    p.device,
			Requested: n,
			Used:      p.used,
			Capacity:  p.capacity,
		}
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

// Free releases n bytes. Freeing more than is in use indicates an
// accounting bug and panics.
func (p *MemPool) Free(n int64) {
	if n <= 0 {
		return
	}
	if n > p.used {
		panic(fmt.Sprintf("%s: free of %d B exceeds %d B in use", p.device, n, p.used))
	}
	p.used -= n
}

// Invalidate discards every allocation at once: the device's memory
// contents are gone (device-lost fault). Jobs that held bytes here must
// drop their accounting with workload's ForgetDevice rather than Free,
// which would otherwise underflow the pool.
func (p *MemPool) Invalidate() { p.used = 0 }

// Used returns bytes currently allocated.
func (p *MemPool) Used() int64 { return p.used }

// Capacity returns the pool size.
func (p *MemPool) Capacity() int64 { return p.capacity }

// Available returns bytes that can still be allocated.
func (p *MemPool) Available() int64 { return p.capacity - p.used }

// Peak returns the high-water mark of usage.
func (p *MemPool) Peak() int64 { return p.peak }
