package device

import (
	"testing"
	"time"

	"switchflow/internal/sim"
)

func TestCopyEngineTransferTimeMatchesTable1(t *testing.T) {
	// Table 1 of the paper: stateful-variable size (MiB) and GPU-to-GPU
	// transfer time (ms) over PCIe 3.0 x16. Our model is
	// bytes/11.3 GBps + 50 us per tensor; verify it lands within 20% of
	// every published row.
	eng := sim.NewEngine()
	ce := NewCopyEngine(eng, 11.3)
	tests := []struct {
		model   string
		mib     float64
		tensors int
		paperMS float64
	}{
		{"ResNet50", 198.53, 265, 28.838},
		{"VGG16", 1055.58, 32, 103.747},
		{"VGG19", 1096.09, 38, 109.416},
		{"DenseNet121", 64.83, 606, 39.823},
		{"DenseNet169", 108.61, 846, 45.236},
		{"InceptionResNetV2", 426.18, 898, 82.137},
		{"InceptionV3", 182.00, 378, 31.613},
		{"MobileNetV2", 27.25, 262, 17.505},
	}
	for _, tt := range tests {
		t.Run(tt.model, func(t *testing.T) {
			bytes := int64(tt.mib * (1 << 20))
			got := ce.TransferTime(bytes, tt.tensors).Seconds() * 1e3
			ratio := got / tt.paperMS
			if ratio < 0.8 || ratio > 1.25 {
				t.Errorf("transfer time %.2f ms, paper %.2f ms (ratio %.2f)",
					got, tt.paperMS, ratio)
			}
		})
	}
}

func TestCopyEngineFIFOQueueing(t *testing.T) {
	eng := sim.NewEngine()
	ce := NewCopyEngine(eng, 10) // 10 GB/s
	var first, second time.Duration
	d1 := ce.Transfer(100<<20, 1, func() { first = eng.Now() })
	d2 := ce.Transfer(100<<20, 1, func() { second = eng.Now() })
	if d2 <= d1 {
		t.Fatalf("second transfer completes at %v, not after first %v", d2, d1)
	}
	eng.Run()
	if first != d1 || second != d2 {
		t.Fatalf("callbacks at (%v, %v), want (%v, %v)", first, second, d1, d2)
	}
	// Second waits for the first: done2 - done1 == service time of 2nd.
	if gap := second - first; gap != ce.TransferTime(100<<20, 1) {
		t.Fatalf("queueing gap %v, want %v", gap, ce.TransferTime(100<<20, 1))
	}
}

func TestCopyEngineZeroBytes(t *testing.T) {
	eng := sim.NewEngine()
	ce := NewCopyEngine(eng, 10)
	if d := ce.TransferTime(0, 5); d != 0 {
		t.Fatalf("TransferTime(0) = %v, want 0", d)
	}
}

func TestCopyEngineTracksBytes(t *testing.T) {
	eng := sim.NewEngine()
	ce := NewCopyEngine(eng, 10)
	ce.Transfer(1<<20, 1, nil)
	ce.Transfer(2<<20, 1, nil)
	if got := ce.Transferred(); got != 3<<20 {
		t.Fatalf("Transferred() = %d, want %d", got, 3<<20)
	}
}
