package device

// Stream is a CUDA-style compute stream: kernels enqueued on one stream
// execute on the GPU strictly in FIFO order, one at a time. Kernels from
// different streams co-run on the GPU under its contention model — this is
// exactly the structure behind Figure 2: each TF session drives its own
// stream, so one model's kernels serialize while two models' kernels
// interleave and contend.
type Stream struct {
	gpu      *GPU
	queue    []Kernel
	inflight bool
	aborted  uint64
	drainFns []func()
}

// NewStream creates a stream bound to gpu.
func NewStream(gpu *GPU) *Stream {
	return &Stream{gpu: gpu}
}

// GPU returns the device the stream issues to.
func (s *Stream) GPU() *GPU { return s.gpu }

// Enqueue appends k to the stream. It begins executing once all earlier
// kernels on this stream have completed.
func (s *Stream) Enqueue(k Kernel) {
	s.queue = append(s.queue, k)
	s.pump()
}

// Pending returns the number of kernels waiting behind the in-flight one.
func (s *Stream) Pending() int { return len(s.queue) }

// InFlight reports whether a kernel from this stream is executing.
func (s *Stream) InFlight() bool { return s.inflight }

// Abort discards every queued (not yet issued) kernel. The in-flight
// kernel, if any, runs to completion — the paper's preemption lets
// dispatched kernels finish because there is no mechanism to selectively
// stop them (§3.3). Returns the number of kernels discarded. Aborted
// kernels' OnDone callbacks never fire.
func (s *Stream) Abort() int {
	n := len(s.queue)
	s.queue = nil
	s.aborted += uint64(n)
	return n
}

// Aborted returns the total number of kernels ever discarded by Abort.
func (s *Stream) Aborted() uint64 { return s.aborted }

// Drain invokes fn once the in-flight kernel (if any) completes and the
// queue is empty. With an empty stream it fires immediately (inline).
func (s *Stream) Drain(fn func()) {
	if !s.inflight && len(s.queue) == 0 {
		fn()
		return
	}
	s.drainFns = append(s.drainFns, fn)
}

func (s *Stream) pump() {
	if s.inflight || len(s.queue) == 0 {
		return
	}
	k := s.queue[0]
	s.queue = s.queue[1:]
	s.inflight = true
	userDone := k.OnDone
	k.OnDone = func() {
		s.inflight = false
		if userDone != nil {
			userDone()
		}
		s.pump()
		s.notifyDrained()
	}
	s.gpu.Submit(k)
}

func (s *Stream) notifyDrained() {
	if s.inflight || len(s.queue) != 0 || len(s.drainFns) == 0 {
		return
	}
	fns := s.drainFns
	s.drainFns = nil
	for _, fn := range fns {
		fn()
	}
}
