package device

import (
	"testing"
	"time"
)

func TestStreamSerializesKernels(t *testing.T) {
	eng, gpu := newTestGPU()
	s := NewStream(gpu)
	var ends []time.Duration
	for i := 0; i < 3; i++ {
		s.Enqueue(Kernel{Name: "k", Work: 10 * time.Millisecond, Occupancy: 0.9,
			OnDone: func() { ends = append(ends, eng.Now()) }})
	}
	eng.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(ends) != 3 {
		t.Fatalf("got %d completions, want 3", len(ends))
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("completions %v, want %v", ends, want)
		}
	}
}

func TestTwoStreamsContendLikeFigure2(t *testing.T) {
	// Two streams of heavy kernels on one GPU: per-stream progress should
	// be roughly half of solo speed (the paper's 226 -> 116 img/s drop).
	eng, gpu := newTestGPU()
	s1, s2 := NewStream(gpu), NewStream(gpu)
	var end1, end2 time.Duration
	const kernels = 10
	for i := 0; i < kernels; i++ {
		s1.Enqueue(Kernel{Name: "m1", Ctx: 1, Work: time.Millisecond, Occupancy: 0.9,
			OnDone: func() { end1 = eng.Now() }})
		s2.Enqueue(Kernel{Name: "m2", Ctx: 2, Work: time.Millisecond, Occupancy: 0.9,
			OnDone: func() { end2 = eng.Now() }})
	}
	eng.Run()
	solo := kernels * time.Millisecond
	slowdown1 := float64(end1) / float64(solo)
	slowdown2 := float64(end2) / float64(solo)
	for _, sd := range []float64{slowdown1, slowdown2} {
		if sd < 1.85 || sd > 2.0 {
			t.Fatalf("co-run slowdown = %.2f, want ~1.94 (paper: 226/116)", sd)
		}
	}
}

func TestStreamAbortDiscardsQueueOnly(t *testing.T) {
	eng, gpu := newTestGPU()
	s := NewStream(gpu)
	finished := map[string]bool{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		s.Enqueue(Kernel{Name: name, Work: 10 * time.Millisecond, Occupancy: 0.9,
			OnDone: func() { finished[name] = true }})
	}
	// Abort mid-way through kernel "a": b and c are queued, a in flight.
	eng.Schedule(5*time.Millisecond, func() {
		if got := s.Abort(); got != 2 {
			t.Errorf("Abort() discarded %d kernels, want 2", got)
		}
	})
	eng.Run()
	if !finished["a"] {
		t.Error("in-flight kernel a must run to completion")
	}
	if finished["b"] || finished["c"] {
		t.Errorf("aborted kernels ran: %v", finished)
	}
	if s.Aborted() != 2 {
		t.Errorf("Aborted() = %d, want 2", s.Aborted())
	}
	// Worst-case preemption latency = remainder of the in-flight kernel.
	if eng.Now() != 10*time.Millisecond {
		t.Errorf("drain completed at %v, want 10ms", eng.Now())
	}
}

func TestStreamDrainFiresWhenEmpty(t *testing.T) {
	eng, gpu := newTestGPU()
	s := NewStream(gpu)
	fired := false
	s.Drain(func() { fired = true })
	if !fired {
		t.Fatal("Drain on empty stream must fire inline")
	}
	// Now with work in flight.
	s.Enqueue(Kernel{Name: "k", Work: 5 * time.Millisecond, Occupancy: 0.9})
	var at time.Duration = -1
	s.Drain(func() { at = eng.Now() })
	eng.Run()
	if at != 5*time.Millisecond {
		t.Fatalf("Drain fired at %v, want 5ms", at)
	}
}

func TestStreamDrainAfterAbort(t *testing.T) {
	eng, gpu := newTestGPU()
	s := NewStream(gpu)
	s.Enqueue(Kernel{Name: "a", Work: 10 * time.Millisecond, Occupancy: 0.9})
	s.Enqueue(Kernel{Name: "b", Work: 10 * time.Millisecond, Occupancy: 0.9})
	var at time.Duration = -1
	eng.Schedule(2*time.Millisecond, func() {
		s.Abort()
		s.Drain(func() { at = eng.Now() })
	})
	eng.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("post-abort drain at %v, want 10ms (in-flight kernel end)", at)
	}
}

func TestStreamEnqueueAfterAbortResumes(t *testing.T) {
	eng, gpu := newTestGPU()
	s := NewStream(gpu)
	s.Enqueue(Kernel{Name: "a", Work: 2 * time.Millisecond, Occupancy: 0.9})
	s.Abort() // no queued kernels; a stays in flight
	done := false
	eng.Schedule(5*time.Millisecond, func() {
		s.Enqueue(Kernel{Name: "b", Work: time.Millisecond, Occupancy: 0.9,
			OnDone: func() { done = true }})
	})
	eng.Run()
	if !done {
		t.Fatal("kernel enqueued after abort never ran")
	}
}

func TestStreamMultipleDrainWaiters(t *testing.T) {
	eng, gpu := newTestGPU()
	s := NewStream(gpu)
	s.Enqueue(Kernel{Name: "k", Work: 5 * time.Millisecond, Occupancy: 0.9})
	fired := 0
	s.Drain(func() { fired++ })
	s.Drain(func() { fired++ })
	eng.Run()
	if fired != 2 {
		t.Fatalf("drain waiters fired %d times, want 2", fired)
	}
}

func TestStreamDrainNotFiredWhileBacklog(t *testing.T) {
	eng, gpu := newTestGPU()
	s := NewStream(gpu)
	s.Enqueue(Kernel{Name: "a", Work: time.Millisecond, Occupancy: 0.9})
	s.Enqueue(Kernel{Name: "b", Work: time.Millisecond, Occupancy: 0.9})
	var at time.Duration = -1
	s.Drain(func() { at = eng.Now() })
	eng.Run()
	if at != 2*time.Millisecond {
		t.Fatalf("drain fired at %v, want 2ms (after the backlog)", at)
	}
}
