package control

import (
	"bytes"
	"testing"
	"time"
)

// TestScenarioWithTraffic drives a scenario's serve jobs from the traffic
// block instead of their own clocks and checks the trace is delivered
// through normal admission control, deterministically.
func TestScenarioWithTraffic(t *testing.T) {
	raw := `{
		"machine": "v100",
		"scheduler": "switchflow",
		"durationMillis": 10000,
		"jobs": [
			{"name": "serve-a", "model": "MobileNetV2", "batch": 1, "priority": 2,
			 "sloMillis": 150, "maxBatch": 4, "batchWaitMillis": 2, "closedLoop": true},
			{"name": "serve-b", "model": "ResNet50", "batch": 1, "priority": 2, "gpu": 1},
			{"name": "train", "model": "VGG16", "batch": 16, "train": true, "priority": 1, "gpu": 2}
		],
		"traffic": {
			"rps": 120,
			"clients": 50000,
			"diurnalMillis": 8000,
			"diurnalMin": 0.5,
			"spikes": [
				{"startMillis": 3000, "rampMillis": 500, "holdMillis": 2000,
				 "decayMillis": 1000, "magnitude": 4}
			],
			"seed": 3
		}
	}`
	sc, err := ParseScenario(bytes.NewBufferString(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrafficOffered == 0 {
		t.Fatal("traffic block generated no arrivals")
	}
	if res.TrafficAdmitted == 0 || res.TrafficAdmitted > res.TrafficOffered {
		t.Fatalf("admitted %d of %d offered", res.TrafficAdmitted, res.TrafficOffered)
	}
	// serve-a's closedLoop is overridden by the traffic block, so both
	// serve jobs should report trace-shaped offered counts (Zipf: the
	// first tenant gets the larger share) and the training job none.
	a, b, train := res.Jobs[0], res.Jobs[1], res.Jobs[2]
	if a.Offered == 0 || b.Offered == 0 {
		t.Fatalf("serve jobs saw no trace arrivals: a=%d b=%d", a.Offered, b.Offered)
	}
	if a.Offered <= b.Offered {
		t.Fatalf("Zipf share inverted: first tenant offered %d, second %d", a.Offered, b.Offered)
	}
	if a.Offered+b.Offered != res.TrafficOffered {
		t.Fatalf("per-job offered %d+%d != trace offered %d", a.Offered, b.Offered, res.TrafficOffered)
	}
	if train.Requests != 0 || train.Iterations == 0 {
		t.Fatalf("training job misbehaved under traffic: %+v", train)
	}

	// Same scenario, same seed: byte-identical outcome.
	again, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if again.TrafficOffered != res.TrafficOffered || again.TrafficAdmitted != res.TrafficAdmitted ||
		again.Jobs[0].Served != res.Jobs[0].Served || again.Jobs[1].Served != res.Jobs[1].Served {
		t.Fatalf("traffic scenario is not deterministic:\nfirst:  %+v\nsecond: %+v", res, again)
	}
}

// TestTrafficRequestValidation covers the profile builder's error paths.
func TestTrafficRequestValidation(t *testing.T) {
	if _, err := (TrafficRequest{RPS: 0}).Profile([]string{"a"}); err == nil {
		t.Fatal("zero rps accepted")
	}
	if _, err := (TrafficRequest{RPS: 10}).Profile(nil); err == nil {
		t.Fatal("traffic with no serve jobs accepted")
	}
	p, err := TrafficRequest{RPS: 10, DiurnalMillis: 1000, DiurnalMin: 0.5,
		Spikes: []SpikeRequest{{StartMillis: 100, RampMillis: 10, HoldMillis: 10, DecayMillis: 10, Magnitude: 3}},
	}.Profile([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Clients != 1_000_000 || p.Seed != 1 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if len(p.Tenants) != 2 || p.Tenants[0].Weight <= p.Tenants[1].Weight {
		t.Fatalf("tenant shares not Zipf-ordered: %+v", p.Tenants)
	}
	if p.DiurnalPeriod != time.Second || len(p.Spikes) != 1 {
		t.Fatalf("shape fields lost: %+v", p)
	}
}
