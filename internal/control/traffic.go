// Trace-driven traffic for single-machine runs: the same generator the
// fleet router uses, mapped onto a scenario's serve jobs. Each serve job
// becomes one tenant with a Zipf(1.1) share of the aggregate rate, and
// every arrival is delivered at its exact virtual instant through the
// job's normal admission control.
package control

import (
	"fmt"
	"math"
	"time"

	"switchflow"
	"switchflow/internal/traffic"
)

// TrafficRequest is the scenario JSON's "traffic" block: an aggregate
// open-loop request stream spread over the scenario's serve jobs.
type TrafficRequest struct {
	// RPS is the aggregate base request rate across all serve jobs.
	RPS float64 `json:"rps"`
	// Clients is the simulated client population the rate aggregates
	// (cosmetic for delivery, but it keys per-client routing affinity in
	// fleet runs; defaults to 1_000_000).
	Clients int `json:"clients,omitempty"`
	// DiurnalMillis/DiurnalMin shape the compressed-day sinusoid (see
	// traffic.Profile); zero disables it.
	DiurnalMillis int     `json:"diurnalMillis,omitempty"`
	DiurnalMin    float64 `json:"diurnalMin,omitempty"`
	// Spikes are flash crowds layered on the base rate.
	Spikes []SpikeRequest `json:"spikes,omitempty"`
	// Seed decorrelates arrival streams between runs.
	Seed int64 `json:"seed,omitempty"`
}

// SpikeRequest is one flash crowd in scenario JSON.
type SpikeRequest struct {
	StartMillis int     `json:"startMillis"`
	RampMillis  int     `json:"rampMillis"`
	HoldMillis  int     `json:"holdMillis"`
	DecayMillis int     `json:"decayMillis"`
	Magnitude   float64 `json:"magnitude"`
}

// Profile converts the request into a traffic.Profile over n tenants
// (one per serve job, Zipf(1.1) shares in listing order).
func (r TrafficRequest) Profile(names []string) (traffic.Profile, error) {
	if r.RPS <= 0 {
		return traffic.Profile{}, fmt.Errorf("control: traffic rps must be positive, got %v", r.RPS)
	}
	if len(names) == 0 {
		return traffic.Profile{}, fmt.Errorf("control: traffic block needs at least one request-driven serve job")
	}
	clients := r.Clients
	if clients <= 0 {
		clients = 1_000_000
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	tenants := make([]traffic.Tenant, len(names))
	for i, name := range names {
		tenants[i] = traffic.Tenant{
			ID:     name,
			Weight: 1 / math.Pow(float64(i+1), 1.1),
			Seed:   seed + int64(i)*7919,
		}
	}
	p := traffic.Profile{
		Clients:       clients,
		RPSPerClient:  r.RPS / float64(clients),
		DiurnalPeriod: time.Duration(r.DiurnalMillis) * time.Millisecond,
		DiurnalMin:    r.DiurnalMin,
		Tenants:       tenants,
		Seed:          seed,
	}
	for _, s := range r.Spikes {
		p.Spikes = append(p.Spikes, traffic.Spike{
			Start:     time.Duration(s.StartMillis) * time.Millisecond,
			Ramp:      time.Duration(s.RampMillis) * time.Millisecond,
			Hold:      time.Duration(s.HoldMillis) * time.Millisecond,
			Decay:     time.Duration(s.DecayMillis) * time.Millisecond,
			Magnitude: s.Magnitude,
		})
	}
	return p, nil
}

// trafficStride is the generator window for single-machine delivery —
// coarse enough to stay cheap, fine enough that the midpoint-rate
// approximation tracks diurnal curves and spike ramps.
const trafficStride = 100 * time.Millisecond

// DriveTraffic generates the profile's arrivals over the window and
// delivers each to its tenant's job at the exact arrival instant
// (advancing the simulation between deliveries). jobs[i] receives tenant
// i's stream. It returns offered/admitted counts; the remainder was shed
// at admission.
func DriveTraffic(sim *switchflow.Simulation, jobs []*switchflow.Job,
	p traffic.Profile, window time.Duration) (offered, admitted int, err error) {
	if len(jobs) != len(p.Tenants) {
		return 0, 0, fmt.Errorf("control: %d jobs for %d tenants", len(jobs), len(p.Tenants))
	}
	gen, err := traffic.NewGenerator(p)
	if err != nil {
		return 0, 0, err
	}
	for from := time.Duration(0); from < window; from += trafficStride {
		to := from + trafficStride
		if to > window {
			to = window
		}
		for _, a := range gen.Batch(from, to) {
			sim.RunUntil(a.At)
			offered++
			if jobs[a.Tenant].Offer() {
				admitted++
			}
		}
	}
	sim.RunUntil(window)
	return offered, admitted, nil
}
